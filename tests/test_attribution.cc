/**
 * @file
 * Prefetch lifecycle attribution (prefetch/attribution.hh): unit
 * semantics of the lineage tracker, the hard conservation invariant
 * (issued == sum of terminal outcomes) re-checked over seeded
 * workloads for EVERY prefetcher backend, and the determinism
 * contract — the prefetch.attrib.* subtree is byte-identical across
 * identical runs and across SweepEngine job counts.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "prefetch/attribution.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "util/stats_json.hh"
#include "workloads/workload.hh"

namespace psb
{
namespace
{

// ------------------------------------------------------------------ //
// Unit semantics
// ------------------------------------------------------------------ //

PrefetchOrigin
origin(PredictionSource src)
{
    PrefetchOrigin o;
    o.source = src;
    o.slot = 0;
    return o;
}

TEST(AttributionUnit, LineageIdsAreMonotonicFromOne)
{
    PrefetchAttribution a;
    EXPECT_EQ(a.issue(origin(PredictionSource::Stride), BlockAddr{1},
                      Cycle(10), Cycle(20), false),
              1u);
    EXPECT_EQ(a.issue(origin(PredictionSource::Markov), BlockAddr{2},
                      Cycle(11), Cycle(21), false),
              2u);
    EXPECT_EQ(a.issued(), 2u);
    EXPECT_EQ(a.liveCount(), 2u);
}

TEST(AttributionUnit, UseClassifiesTimelyVersusLate)
{
    PrefetchAttribution a;
    uint64_t timely = a.issue(origin(PredictionSource::Stride),
                              BlockAddr{1}, Cycle(0), Cycle(50), false);
    uint64_t late = a.issue(origin(PredictionSource::Stride),
                            BlockAddr{2}, Cycle(0), Cycle(200), false);

    a.use(timely, Cycle(100), Cycle(50)); // data arrived at 50
    a.use(late, Cycle(100), Cycle(200));  // 100 cycles short

    EXPECT_EQ(a.outcome(PrefetchOutcomeKind::UsedTimely), 1u);
    EXPECT_EQ(a.outcome(PrefetchOutcomeKind::UsedLate), 1u);
    EXPECT_EQ(a.useDistance().total(), 2u);
    EXPECT_EQ(a.lateness().total(), 1u);
    EXPECT_EQ(a.lateness().percentile(0.5), 100u);
    EXPECT_EQ(a.liveCount(), 0u);
}

TEST(AttributionUnit, RedundantIssueReclassifiesNonUseTerminals)
{
    PrefetchAttribution a;
    uint64_t id = a.issue(origin(PredictionSource::NextLine),
                          BlockAddr{1}, Cycle(0), Cycle(10),
                          /*redundant_with_demand=*/true);
    a.terminal(id, PrefetchOutcomeKind::EvictedUnused);
    EXPECT_EQ(a.outcome(PrefetchOutcomeKind::EvictedUnused), 0u);
    EXPECT_EQ(a.outcome(PrefetchOutcomeKind::RedundantDemand), 1u);

    // ...but an actual use keeps its used_* classification: the block
    // may have been re-fetched into the buffer legitimately.
    uint64_t id2 = a.issue(origin(PredictionSource::NextLine),
                           BlockAddr{2}, Cycle(0), Cycle(10), true);
    a.use(id2, Cycle(20), Cycle(10));
    EXPECT_EQ(a.outcome(PrefetchOutcomeKind::UsedTimely), 1u);
}

TEST(AttributionUnit, UnknownAndZeroLineagesDoNotBreakConservation)
{
    PrefetchAttribution a;
    a.terminal(0, PrefetchOutcomeKind::Replaced); // "no lineage"
    a.use(0, Cycle(5), Cycle(5));
    EXPECT_EQ(a.staleTerminals(), 0u);

    a.terminal(12345, PrefetchOutcomeKind::Replaced); // never issued
    a.use(54321, Cycle(5), Cycle(5));
    EXPECT_EQ(a.staleTerminals(), 2u);
    EXPECT_EQ(a.outcomeTotal(), 0u);
    a.finalize(Cycle(10)); // conservation: 0 issued == 0 settled
}

TEST(AttributionUnit, FinalizeSquashesLiveRecordsAndConserves)
{
    PrefetchAttribution a;
    a.issue(origin(PredictionSource::Stride), BlockAddr{1}, Cycle(0),
            Cycle(10), false);
    a.issue(origin(PredictionSource::Stride), BlockAddr{2}, Cycle(0),
            Cycle(10), true); // redundant at issue, never used
    a.finalize(Cycle(100));
    EXPECT_EQ(a.outcome(PrefetchOutcomeKind::Squashed), 1u);
    EXPECT_EQ(a.outcome(PrefetchOutcomeKind::RedundantDemand), 1u);
    EXPECT_EQ(a.outcomeTotal(), a.issued());
    EXPECT_EQ(a.liveCount(), 0u);
}

TEST(AttributionUnit, ResetKeepsLineageCounterMonotonic)
{
    PrefetchAttribution a;
    uint64_t warm = a.issue(origin(PredictionSource::Stride),
                            BlockAddr{1}, Cycle(0), Cycle(10), false);
    a.resetStats();
    EXPECT_EQ(a.issued(), 0u);
    EXPECT_EQ(a.liveCount(), 0u);

    // Post-reset ids continue — a pre-reset id must never alias a
    // measured-region prefetch.
    uint64_t fresh = a.issue(origin(PredictionSource::Stride),
                             BlockAddr{2}, Cycle(20), Cycle(30), false);
    EXPECT_GT(fresh, warm);

    // A terminal for the warm-up-era id is a stale terminal, not an
    // outcome: the measured conservation sum stays exact.
    a.use(warm, Cycle(25), Cycle(10));
    EXPECT_EQ(a.staleTerminals(), 1u);
    EXPECT_EQ(a.outcomeTotal(), 0u);
    a.use(fresh, Cycle(40), Cycle(30));
    a.finalize(Cycle(50));
    EXPECT_EQ(a.outcomeTotal(), a.issued());
}

TEST(AttributionUnit, RegisterStatsExportsTheSubtree)
{
    PrefetchAttribution a;
    StatsRegistry reg;
    a.registerStats(reg, "prefetch.attrib");
    std::string json = reg.toJson();
    for (const char *key :
         {"\"prefetch.attrib.issued\"",
          "\"prefetch.attrib.live\"",
          "\"prefetch.attrib.stale_terminals\"",
          "\"prefetch.attrib.outcome.used_timely\"",
          "\"prefetch.attrib.outcome.redundant_demand\"",
          "\"prefetch.attrib.source.stride.issued\"",
          "\"prefetch.attrib.use_distance.p99\"",
          "\"prefetch.attrib.lateness.samples\"",
          "\"prefetch.attrib.accuracy\"",
          "\"prefetch.attrib.timeliness\""}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << key << " missing from the registered subtree";
    }
}

TEST(AttributionUnit, DoubleUseIsStaleNotDoubleCounted)
{
    // A second terminal for an already-settled lineage must not
    // inflate an outcome bucket — that would break the conservation
    // sum finalize() fatally asserts.
    PrefetchAttribution a;
    uint64_t id = a.issue(origin(PredictionSource::Stride),
                          BlockAddr{1}, Cycle(0), Cycle(10), false);
    a.use(id, Cycle(20), Cycle(10));
    a.use(id, Cycle(21), Cycle(10));
    a.terminal(id, PrefetchOutcomeKind::Replaced);
    EXPECT_EQ(a.outcomeTotal(), 1u);
    EXPECT_EQ(a.staleTerminals(), 2u);
    a.finalize(Cycle(30)); // would abort if the books were cooked
}

// ------------------------------------------------------------------ //
// Conservation across every backend, end to end
// ------------------------------------------------------------------ //

const PrefetcherKind kAllKinds[] = {
    PrefetcherKind::None,       PrefetcherKind::PcStride,
    PrefetcherKind::Psb,        PrefetcherKind::Sequential,
    PrefetcherKind::NextLine,   PrefetcherKind::MarkovDemand,
    PrefetcherKind::MinDelta,
};

SimConfig
smallConfig(PrefetcherKind kind)
{
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.prefetcher = kind;
    cfg.warmupInstructions = 2000;
    cfg.maxInstructions = 12000;
    return cfg;
}

std::string
runOnce(PrefetcherKind kind, const std::string &workload, uint64_t seed)
{
    auto trace = makeWorkload(workload, seed);
    Simulator sim(smallConfig(kind), *trace);
    sim.run();
    return sim.statsJson();
}

double
stat(const std::map<std::string, ParsedStat> &stats,
     const std::string &key)
{
    auto it = stats.find(key);
    EXPECT_NE(it, stats.end()) << key << " missing from stats JSON";
    return it == stats.end() ? 0.0 : it->second.value;
}

class AttributionBackendTest
    : public ::testing::TestWithParam<PrefetcherKind>
{
};

TEST_P(AttributionBackendTest, IssuedEqualsSumOfTerminalOutcomes)
{
    // finalize() already asserts this fatally inside run(); re-check
    // from the exported document so the invariant is also visible at
    // the observability surface (and exercise two workloads).
    for (const char *workload : {"health", "gs"}) {
        std::string json = runOnce(GetParam(), workload, 1);
        std::map<std::string, ParsedStat> stats;
        std::string error;
        ASSERT_TRUE(parseStatsJson(json, stats, error)) << error;

        double settled = 0.0;
        for (const char *outcome :
             {"used_timely", "used_late", "evicted_unused", "replaced",
              "squashed", "redundant_demand"}) {
            settled += stat(stats, std::string(
                                       "prefetch.attrib.outcome.") +
                                       outcome);
        }
        EXPECT_EQ(stat(stats, "prefetch.attrib.issued"), settled)
            << prefetcherKindName(GetParam()) << "/" << workload;
        EXPECT_EQ(stat(stats, "prefetch.attrib.live"), 0.0)
            << prefetcherKindName(GetParam()) << "/" << workload;
    }
}

TEST_P(AttributionBackendTest, SubtreeIsByteIdenticalAcrossRuns)
{
    std::string first = runOnce(GetParam(), "health", 1);
    std::string second = runOnce(GetParam(), "health", 1);
    EXPECT_EQ(first, second)
        << prefetcherKindName(GetParam())
        << ": two identical runs exported different stats JSON";
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AttributionBackendTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto &pinfo) {
                             return std::string(
                                 prefetcherKindName(pinfo.param));
                         });

TEST(AttributionBackendTest, PsbIssuesAndSettlesNonTrivially)
{
    // Guard against the conservation test passing vacuously: the PSB
    // backend must actually issue prefetches in the measured region
    // and classify at least one of them as used.
    std::string json = runOnce(PrefetcherKind::Psb, "health", 1);
    std::map<std::string, ParsedStat> stats;
    std::string error;
    ASSERT_TRUE(parseStatsJson(json, stats, error)) << error;
    EXPECT_GT(stat(stats, "prefetch.attrib.issued"), 0.0);
    EXPECT_GT(stat(stats, "prefetch.attrib.outcome.used_timely") +
                  stat(stats, "prefetch.attrib.outcome.used_late"),
              0.0);
    EXPECT_GT(stat(stats, "prefetch.attrib.use_distance.samples"), 0.0);
}

// ------------------------------------------------------------------ //
// Sweep-engine invariance of the merged attribution numbers
// ------------------------------------------------------------------ //

std::string
mergedSweep(unsigned jobs)
{
    std::vector<SweepJob> sweep;
    for (PrefetcherKind kind :
         {PrefetcherKind::Psb, PrefetcherKind::PcStride,
          PrefetcherKind::NextLine, PrefetcherKind::MarkovDemand}) {
        for (const char *workload : {"health", "gs"}) {
            SweepJob job;
            job.key = std::string(prefetcherKindName(kind)) + "/" +
                      workload;
            job.run = [kind, workload](const JobContext &) {
                JobOutcome out;
                out.ok = true;
                out.payload = runOnce(kind, workload, 1);
                return out;
            };
            sweep.push_back(std::move(job));
        }
    }
    SweepOptions opts;
    opts.jobs = jobs;
    SweepEngine engine(opts);
    return SweepEngine::mergeStatsJson(engine.run(sweep));
}

TEST(AttributionSweepTest, MergedDocumentInvariantUnderJobCount)
{
    std::string serial = mergedSweep(1);
    std::string parallel = mergedSweep(8);
    ASSERT_NE(serial.find("prefetch.attrib.issued"), std::string::npos)
        << "merged sweep document carries no attribution stats";
    EXPECT_EQ(serial, parallel)
        << "prefetch.attrib.* differs between --jobs 1 and --jobs 8";
}

} // namespace
} // namespace psb
