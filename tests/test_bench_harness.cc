/**
 * @file
 * Pins the psb-bench determinism contract (src/sim/bench_harness.hh):
 * every non-"wall_" field of the emitted document is a pure function
 * of the options, JSON object keys are sorted, and two in-process
 * emissions are byte-identical once the wall fields are masked. Also
 * covers the bench-diff comparison semantics the CI regression gate
 * relies on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/bench_harness.hh"
#include "util/json.hh"

namespace psb
{
namespace
{

BenchHarnessOptions
quickOptions()
{
    BenchHarnessOptions opts;
    opts.quick = true;
    opts.repeats = 1;
    opts.skipSims = true;
    return opts;
}

/** Every object's keys must be emitted in strictly sorted order. */
void
expectSortedKeys(const JsonValue &value, const std::string &path)
{
    if (value.isObject()) {
        for (size_t i = 0; i + 1 < value.object.size(); ++i) {
            EXPECT_LT(value.object[i].first, value.object[i + 1].first)
                << "unsorted keys in object " << path;
        }
        for (const auto &[key, child] : value.object)
            expectSortedKeys(child, path + "." + key);
    } else if (value.isArray()) {
        for (size_t i = 0; i < value.array.size(); ++i)
            expectSortedKeys(value.array[i],
                             path + "[" + std::to_string(i) + "]");
    }
}

TEST(BenchHarnessTest, DefaultRegistryCoversTheHotPaths)
{
    BenchHarness harness(quickOptions());
    registerDefaultKernels(harness);
    std::vector<std::string> names = harness.kernelNames();
    EXPECT_GE(names.size(), 8u);
    for (const char *expected :
         {"cache_lookup", "tlb_lookup", "mshr_search", "stride_probe",
          "markov_probe", "sfm_predict", "stream_buffer_sched",
          "satcounter_update", "ooo_core_loop"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing kernel " << expected;
    }
}

TEST(BenchHarnessTest, KernelCountersAreDeterministicAcrossRuns)
{
    BenchHarness harness(quickOptions());
    registerDefaultKernels(harness);
    auto first = harness.runKernels();
    auto second = harness.runKernels();
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].name, second[i].name);
        EXPECT_EQ(first[i].iterations, second[i].iterations);
        EXPECT_EQ(first[i].checksum, second[i].checksum)
            << first[i].name;
        EXPECT_EQ(first[i].counters, second[i].counters)
            << first[i].name;
    }
}

TEST(BenchHarnessTest, FilterSelectsMatchingKernelsOnly)
{
    BenchHarnessOptions opts = quickOptions();
    opts.filter = "mshr";
    BenchHarness harness(opts);
    registerDefaultKernels(harness);
    auto results = harness.runKernels();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].name, "mshr_search");
}

TEST(BenchHarnessTest, SimMatrixCellsAreDeterministic)
{
    BenchHarnessOptions opts;
    opts.quick = true;
    opts.repeats = 1;
    opts.simInstructions = 5000;
    opts.simWarmup = 1000;
    BenchHarness harness(opts);
    auto first = harness.runSimMatrix();
    auto second = harness.runSimMatrix();
    // 2x2 quick matrix plus the aggregate row.
    ASSERT_EQ(first.size(), 5u);
    ASSERT_EQ(second.size(), first.size());
    EXPECT_EQ(first.back().name, "total");
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].name, second[i].name);
        EXPECT_EQ(first[i].cycles, second[i].cycles) << first[i].name;
        EXPECT_EQ(first[i].instructions, second[i].instructions)
            << first[i].name;
        EXPECT_GT(first[i].cycles, 0u) << first[i].name;
    }
}

TEST(BenchHarnessTest, EmittedJsonParsesWithSortedKeys)
{
    BenchHarnessOptions opts = quickOptions();
    BenchHarness harness(opts);
    registerDefaultKernels(harness);
    std::string json =
        benchJson(harness.runKernels(), harness.runSimMatrix(), opts);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, doc, error)) << error;
    expectSortedKeys(doc, "$");

    const JsonValue *kernels = doc.find("kernels");
    ASSERT_NE(kernels, nullptr);
    EXPECT_GE(kernels->object.size(), 8u);
    const JsonValue *meta = doc.find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_NE(meta->find("schema_version"), nullptr);
}

TEST(BenchHarnessTest, TwoEmissionsByteIdenticalAfterWallMasking)
{
    BenchHarnessOptions opts = quickOptions();
    BenchHarness harness(opts);
    registerDefaultKernels(harness);
    std::string first =
        benchJson(harness.runKernels(), harness.runSimMatrix(), opts);
    std::string second =
        benchJson(harness.runKernels(), harness.runSimMatrix(), opts);
    EXPECT_EQ(maskWallFields(first), maskWallFields(second));
}

TEST(BenchHarnessTest, MaskWallFieldsTouchesOnlyWallValues)
{
    std::string json = "{\n"
                       "  \"checksum\": 42,\n"
                       "  \"wall_ms\": 12.345,\n"
                       "  \"wall_ns_per_iter\": 0.5\n"
                       "}\n";
    std::string masked = maskWallFields(json);
    EXPECT_NE(masked.find("\"checksum\": 42"), std::string::npos);
    EXPECT_NE(masked.find("\"wall_ms\": 0"), std::string::npos);
    EXPECT_NE(masked.find("\"wall_ns_per_iter\": 0"),
              std::string::npos);
    EXPECT_EQ(masked.find("12.345"), std::string::npos);
    EXPECT_EQ(masked.find("0.5"), std::string::npos);
}

// ---------------------------------------------------------------- //
// bench-diff comparison semantics (the CI regression gate)
// ---------------------------------------------------------------- //

TEST(BenchCompareTest, IdenticalDocumentsCompareClean)
{
    std::string doc = "{\"checksum\": 7, \"wall_ms\": 10.0}";
    BenchCompareResult result = compareBenchJson(doc, doc, 25.0);
    EXPECT_FALSE(result.mismatch);
    EXPECT_FALSE(result.regression);
    EXPECT_TRUE(result.messages.empty());
}

TEST(BenchCompareTest, DeterministicFieldDriftIsAMismatch)
{
    BenchCompareResult result = compareBenchJson(
        "{\"checksum\": 7, \"wall_ms\": 10.0}",
        "{\"checksum\": 8, \"wall_ms\": 10.0}", 25.0);
    EXPECT_TRUE(result.mismatch);
    EXPECT_FALSE(result.regression);
}

TEST(BenchCompareTest, MissingAndExtraKeysAreMismatches)
{
    BenchCompareResult missing =
        compareBenchJson("{\"a\": 1, \"b\": 2}", "{\"a\": 1}", 25.0);
    EXPECT_TRUE(missing.mismatch);
    BenchCompareResult extra =
        compareBenchJson("{\"a\": 1}", "{\"a\": 1, \"b\": 2}", 25.0);
    EXPECT_TRUE(extra.mismatch);
}

TEST(BenchCompareTest, WallTimeBeyondThresholdIsARegression)
{
    BenchCompareResult result = compareBenchJson(
        "{\"wall_ms\": 10.0}", "{\"wall_ms\": 14.0}", 25.0);
    EXPECT_FALSE(result.mismatch);
    EXPECT_TRUE(result.regression);
}

TEST(BenchCompareTest, WallTimeWithinThresholdIsClean)
{
    BenchCompareResult result = compareBenchJson(
        "{\"wall_ms\": 10.0}", "{\"wall_ms\": 12.0}", 25.0);
    EXPECT_FALSE(result.mismatch);
    EXPECT_FALSE(result.regression);
}

TEST(BenchCompareTest, ThroughputFieldsGateOnTheLowSide)
{
    // cycles_per_sec dropping is the regression; rising is fine.
    BenchCompareResult slower = compareBenchJson(
        "{\"wall_cycles_per_sec\": 1000.0}",
        "{\"wall_cycles_per_sec\": 700.0}", 25.0);
    EXPECT_TRUE(slower.regression);
    BenchCompareResult faster = compareBenchJson(
        "{\"wall_cycles_per_sec\": 1000.0}",
        "{\"wall_cycles_per_sec\": 2000.0}", 25.0);
    EXPECT_FALSE(faster.regression);
    EXPECT_FALSE(faster.mismatch);
}

TEST(BenchCompareTest, WallImprovementsNeverFail)
{
    BenchCompareResult result = compareBenchJson(
        "{\"wall_ms\": 10.0}", "{\"wall_ms\": 1.0}", 25.0);
    EXPECT_FALSE(result.mismatch);
    EXPECT_FALSE(result.regression);
}

TEST(BenchCompareTest, ParseFailureReportsAsMismatch)
{
    BenchCompareResult result =
        compareBenchJson("{not json", "{\"a\": 1}", 25.0);
    EXPECT_TRUE(result.mismatch);
    ASSERT_FALSE(result.messages.empty());
}

} // namespace
} // namespace psb
