#!/bin/sh
# Seed-stability check for the fuzz workload (DESIGN.md §15).
#
#   check_fuzz_seeds.sh PSB_SWEEP PSB_SIM SPEC_FILE
#
# Two determinism contracts, end to end through the shipped binaries:
#
#  1. psb-sweep over a grid of fuzz seeds must merge to byte-identical
#     stats documents at --jobs 1, 2, and 8 — the generated workloads
#     may not leak state across worker threads.
#  2. psb-sim --workload fuzz --fuzz-spec must be a pure function of
#     the spec file: two runs of the same spec (one derived from a
#     seed and re-emitted via the canonical grammar) byte-compare.
set -eu

PSB_SWEEP=$1
PSB_SIM=$2
SPEC=$3

TMP=$(mktemp -d "${TMPDIR:-/tmp}/fuzz_seeds.XXXXXX")
trap 'rm -rf "$TMP"' EXIT

for jobs in 1 2 8; do
    "$PSB_SWEEP" "$SPEC" --jobs "$jobs" --quiet \
        --out "$TMP/merged_$jobs.json"
done

for jobs in 2 8; do
    if ! cmp -s "$TMP/merged_1.json" "$TMP/merged_$jobs.json"; then
        echo "check_fuzz_seeds.sh: fuzz sweep differs between" \
             "--jobs 1 and --jobs $jobs" >&2
        diff "$TMP/merged_1.json" "$TMP/merged_$jobs.json" >&2 || true
        exit 1
    fi
done

cat > "$TMP/spec.json" <<'EOF'
{
  "seed": 19,
  "footprint-kb": 256,
  "phase-len": 2048,
  "phases": [
    {"stride": 5, "chase": 2},
    {"markov": 3, "scatter": 1}
  ]
}
EOF

for run in 1 2; do
    "$PSB_SIM" --workload fuzz --fuzz-spec "$TMP/spec.json" \
        --insts 8000 --warmup 1500 \
        --stats-json "$TMP/spec_run$run.json" > /dev/null
done

if ! cmp -s "$TMP/spec_run1.json" "$TMP/spec_run2.json"; then
    echo "check_fuzz_seeds.sh: --fuzz-spec reruns differ" >&2
    diff "$TMP/spec_run1.json" "$TMP/spec_run2.json" >&2 || true
    exit 1
fi

echo "check_fuzz_seeds.sh: fuzz sweeps and spec replays byte-identical"
