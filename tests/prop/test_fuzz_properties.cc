/**
 * @file
 * Property-style testing of every prefetcher backend over generated
 * fuzz scenarios (DESIGN.md §15). Instead of asserting exact numbers
 * on hand-picked workloads, these tests draw N seeded FuzzSpecs
 * (PSB_FUZZ_SEEDS, default 32) and check invariants that must hold
 * for ANY scenario:
 *
 *   conservation   prefetch.attrib.issued == sum of terminal
 *                  outcomes, and nothing left live after finalize;
 *   determinism    identical runs export byte-identical stats JSON,
 *                  including through the sweep engine at different
 *                  job counts;
 *   demand stream  the committed instruction stream is a property of
 *                  the trace, not the prefetcher: core counters agree
 *                  across all backends;
 *   monotone footprint  a spec declaring a larger footprint touches
 *                  more distinct blocks;
 *   starvation-freedom  the PSB scheduler keeps granting: every
 *                  issued prefetch got a grant, and allocated streams
 *                  imply predictor grants.
 *
 * A failing scenario is dumped as canonical spec JSON to stderr (and
 * to $PSB_FUZZ_ARTIFACT_DIR when set, as the CI fuzz job does), so it
 * can be replayed directly with
 * `psb-sim --workload fuzz --fuzz-spec FILE`.
 *
 * The FuzzSpec grammar itself is property-tested here too: canonical
 * emission round-trips byte-identically and malformed specs are
 * rejected (see kRejectCases).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "util/stats_json.hh"
#include "workloads/fuzz_workload.hh"
#include "workloads/workload.hh"

namespace psb
{
namespace
{

/** Scenario count: PSB_FUZZ_SEEDS env override, default 32. */
uint64_t
fuzzSeedCount()
{
    const char *env = std::getenv("PSB_FUZZ_SEEDS");
    if (!env)
        return 32;
    char *end = nullptr;
    uint64_t n = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || n == 0)
        return 32;
    return n;
}

/**
 * Publish a failing scenario: canonical spec JSON to stderr (directly
 * replayable via --fuzz-spec) and, when $PSB_FUZZ_ARTIFACT_DIR is
 * set, to a file the CI fuzz job uploads as an artifact.
 */
void
dumpFailingSpec(const FuzzSpec &spec, const std::string &context)
{
    std::string json = spec.toJson();
    std::fprintf(stderr,
                 "--- failing fuzz spec (%s); replay with "
                 "psb-sim --workload fuzz --fuzz-spec FILE ---\n%s",
                 context.c_str(), json.c_str());
    if (const char *dir = std::getenv("PSB_FUZZ_ARTIFACT_DIR")) {
        std::string path = std::string(dir) + "/fuzz-spec-seed-" +
                           std::to_string(spec.seed) + ".json";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (out)
            out << json;
    }
}

SimConfig
propConfig(PrefetcherKind kind)
{
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.prefetcher = kind;
    cfg.warmupInstructions = 1500;
    cfg.maxInstructions = 8000;
    return cfg;
}

std::string
runSpec(PrefetcherKind kind, const FuzzSpec &spec)
{
    FuzzWorkload trace(spec);
    Simulator sim(propConfig(kind), trace);
    sim.run();
    return sim.statsJson();
}

double
stat(const std::map<std::string, ParsedStat> &stats,
     const std::string &key)
{
    auto it = stats.find(key);
    EXPECT_NE(it, stats.end()) << key << " missing from stats JSON";
    return it == stats.end() ? 0.0 : it->second.value;
}

const PrefetcherKind kAllKinds[] = {
    PrefetcherKind::None,       PrefetcherKind::PcStride,
    PrefetcherKind::Psb,        PrefetcherKind::Sequential,
    PrefetcherKind::NextLine,   PrefetcherKind::MarkovDemand,
    PrefetcherKind::MinDelta,
};

// ------------------------------------------------------------------ //
// Per-backend properties over every drawn scenario
// ------------------------------------------------------------------ //

class FuzzBackendProperty
    : public ::testing::TestWithParam<PrefetcherKind>
{
};

TEST_P(FuzzBackendProperty, AttributionConservesOnEveryScenario)
{
    uint64_t n = fuzzSeedCount();
    for (uint64_t seed = 1; seed <= n; ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        FuzzSpec spec = FuzzSpec::fromSeed(seed);
        std::string json = runSpec(GetParam(), spec);
        std::map<std::string, ParsedStat> stats;
        std::string error;
        ASSERT_TRUE(parseStatsJson(json, stats, error)) << error;

        double settled = 0.0;
        for (const char *outcome :
             {"used_timely", "used_late", "evicted_unused", "replaced",
              "squashed", "redundant_demand"}) {
            settled += stat(stats, std::string(
                                       "prefetch.attrib.outcome.") +
                                       outcome);
        }
        EXPECT_EQ(stat(stats, "prefetch.attrib.issued"), settled);
        EXPECT_EQ(stat(stats, "prefetch.attrib.live"), 0.0);
        if (::testing::Test::HasNonfatalFailure()) {
            dumpFailingSpec(spec,
                            std::string("conservation, backend ") +
                                prefetcherKindName(GetParam()));
            break;
        }
    }
}

TEST_P(FuzzBackendProperty, GoldenFreeDeterminism)
{
    // No golden needed: whatever the numbers are, two identical runs
    // must export byte-identical stats JSON. A handful of scenarios
    // per backend keeps the default lane fast.
    uint64_t n = fuzzSeedCount();
    for (uint64_t seed : {uint64_t(1), (n + 1) / 2, n}) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        FuzzSpec spec = FuzzSpec::fromSeed(seed);
        std::string first = runSpec(GetParam(), spec);
        std::string second = runSpec(GetParam(), spec);
        EXPECT_EQ(first, second);
        if (::testing::Test::HasNonfatalFailure()) {
            dumpFailingSpec(spec,
                            std::string("determinism, backend ") +
                                prefetcherKindName(GetParam()));
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FuzzBackendProperty,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto &pinfo) {
                             return std::string(
                                 prefetcherKindName(pinfo.param));
                         });

// ------------------------------------------------------------------ //
// Cross-backend and scheduler properties
// ------------------------------------------------------------------ //

TEST(FuzzCrossBackend, DemandStreamIsEquivalentAcrossPrefetchers)
{
    // The committed instruction stream is decided by the trace, not
    // by what the prefetchers fetched: the core counters must agree
    // across every backend, scenario by scenario. The warm-up/measure
    // boundary snaps to a cycle edge, so timing differences between
    // backends may shift a single commit window of ops across it —
    // allow that much slack and nothing more.
    constexpr double kBoundarySlack = 64;
    uint64_t n = std::min<uint64_t>(fuzzSeedCount(), 6);
    for (uint64_t seed = 1; seed <= n; ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        FuzzSpec spec = FuzzSpec::fromSeed(seed);
        std::map<std::string, double> reference;
        for (PrefetcherKind kind : kAllKinds) {
            std::map<std::string, ParsedStat> stats;
            std::string error;
            ASSERT_TRUE(parseStatsJson(runSpec(kind, spec), stats,
                                       error))
                << error;
            for (const char *key :
                 {"core.instructions", "core.loads", "core.stores",
                  "core.branches"}) {
                double value = stat(stats, key);
                auto [it, fresh] = reference.try_emplace(key, value);
                EXPECT_NEAR(it->second, value, kBoundarySlack)
                    << key << " diverged under backend "
                    << prefetcherKindName(kind);
                (void)fresh;
            }
        }
        if (::testing::Test::HasNonfatalFailure()) {
            dumpFailingSpec(spec, "demand-stream equivalence");
            break;
        }
    }
}

TEST(FuzzCrossBackend, PsbSchedulerIsStarvationFree)
{
    // Every issued prefetch was granted by the scheduler, and any
    // allocated stream implies the predictor got lookup grants — a
    // scheduler that wedges on some generated phase mix fails here.
    uint64_t n = fuzzSeedCount();
    for (uint64_t seed = 1; seed <= n; ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        FuzzSpec spec = FuzzSpec::fromSeed(seed);
        std::map<std::string, ParsedStat> stats;
        std::string error;
        ASSERT_TRUE(parseStatsJson(runSpec(PrefetcherKind::Psb, spec),
                                   stats, error))
            << error;
        EXPECT_EQ(stat(stats, "psb.sched.prefetch.grants"),
                  stat(stats, "prefetch.attrib.issued"));
        if (stat(stats, "psb.allocations") > 0) {
            EXPECT_GT(stat(stats, "psb.sched.predict.grants"), 0.0);
        }
        if (::testing::Test::HasNonfatalFailure()) {
            dumpFailingSpec(spec, "scheduler starvation-freedom");
            break;
        }
    }
}

TEST(FuzzCrossBackend, DeclaredFootprintIsMonotone)
{
    // Same scenario, bigger declared footprint => more distinct
    // blocks actually touched (the knob is not a dead parameter).
    uint64_t n = std::min<uint64_t>(fuzzSeedCount(), 8);
    for (uint64_t seed = 1; seed <= n; ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        FuzzSpec small = FuzzSpec::fromSeed(seed);
        small.footprintKb = 128;
        FuzzSpec large = small;
        large.footprintKb = 1024;

        auto touched = [](const FuzzSpec &spec) {
            FuzzWorkload w(spec);
            std::set<Addr> blocks;
            MicroOp op;
            for (int i = 0; i < 200000; ++i) {
                w.next(op);
                if (op.isLoad())
                    blocks.insert(op.effAddr.alignDown(64));
            }
            return blocks.size();
        };
        EXPECT_GT(touched(large), touched(small));
    }
}

TEST(FuzzSweepProperty, MergedDocumentInvariantUnderJobCount)
{
    // The registry workload "fuzz" through the sweep engine: the
    // merged stats document must not depend on the job count.
    auto merged = [](unsigned jobs) {
        std::vector<SweepJob> sweep;
        for (uint64_t seed = 1; seed <= 4; ++seed) {
            for (PrefetcherKind kind :
                 {PrefetcherKind::Psb, PrefetcherKind::PcStride}) {
                SweepJob job;
                job.key = std::string(prefetcherKindName(kind)) +
                          "/fuzz/" + std::to_string(seed);
                job.run = [kind, seed](const JobContext &) {
                    JobOutcome out;
                    out.ok = true;
                    auto trace = makeWorkload("fuzz", seed);
                    Simulator sim(propConfig(kind), *trace);
                    sim.run();
                    out.payload = sim.statsJson();
                    return out;
                };
                sweep.push_back(std::move(job));
            }
        }
        SweepOptions opts;
        opts.jobs = jobs;
        SweepEngine engine(opts);
        return SweepEngine::mergeStatsJson(engine.run(sweep));
    };
    std::string serial = merged(1);
    ASSERT_NE(serial.find("prefetch.attrib.issued"), std::string::npos);
    EXPECT_EQ(serial, merged(8));
}

TEST(FuzzRegistry, SeedWorkloadMatchesExplicitSpec)
{
    // makeWorkload("fuzz", seed) and FuzzWorkload(fromSeed(seed))
    // must be the same scenario: the sweep/CLI seed path and the
    // --fuzz-spec path cannot drift apart.
    auto viaRegistry = makeWorkload("fuzz", 11);
    ASSERT_NE(viaRegistry, nullptr);
    FuzzWorkload viaSpec(FuzzSpec::fromSeed(11));
    MicroOp a, b;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(viaRegistry->next(a));
        ASSERT_TRUE(viaSpec.next(b));
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.effAddr, b.effAddr);
    }
}

// ------------------------------------------------------------------ //
// FuzzSpec grammar properties
// ------------------------------------------------------------------ //

TEST(FuzzSpecGrammar, EmitParseEmitIsByteIdentity)
{
    uint64_t n = fuzzSeedCount();
    for (uint64_t seed = 1; seed <= n; ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        FuzzSpec spec = FuzzSpec::fromSeed(seed);
        std::string json = spec.toJson();
        FuzzSpec reparsed;
        std::string error;
        ASSERT_TRUE(parseFuzzSpec(json, reparsed, error)) << error;
        EXPECT_EQ(reparsed, spec);
        EXPECT_EQ(reparsed.toJson(), json);
    }
}

TEST(FuzzSpecGrammar, MissingKeysFallBackToDefaults)
{
    FuzzSpec spec;
    std::string error;
    ASSERT_TRUE(parseFuzzSpec("{}", spec, error)) << error;
    EXPECT_EQ(spec, FuzzSpec{});
}

TEST(FuzzSpecGrammar, PhaseListsOnlyTheGeneratorsItWants)
{
    FuzzSpec spec;
    std::string error;
    ASSERT_TRUE(parseFuzzSpec(R"({"phases": [{"stride": 3}]})", spec,
                              error))
        << error;
    ASSERT_EQ(spec.phases.size(), 1u);
    EXPECT_EQ(spec.phases[0], (FuzzPhase{3, 0, 0, 0}));
}

struct RejectCase
{
    const char *label;
    const char *text;
};

const RejectCase kRejectCases[] = {
    {"UnknownTopLevelKey", R"({"seed": 1, "bogus": 2})"},
    {"UnknownPhaseKey", R"({"phases": [{"stride": 1, "pace": 2}]})"},
    {"NegativeWeight", R"({"phases": [{"stride": -1}]})"},
    {"FractionalWeight", R"({"phases": [{"stride": 1.5}]})"},
    {"OversizedWeight", R"({"phases": [{"stride": 65537}]})"},
    {"AllZeroPhase", R"({"phases": [{"stride": 0, "chase": 0}]})"},
    {"EmptyPhaseList", R"({"phases": []})"},
    {"PhaseNotAnObject", R"({"phases": [7]})"},
    {"FootprintTooSmall", R"({"footprint-kb": 32})"},
    {"FootprintTooLarge", R"({"footprint-kb": 131072})"},
    {"ZeroPhaseLen", R"({"phase-len": 0})"},
    {"NegativeSeed", R"({"seed": -4})"},
    {"TopLevelNotObject", R"([1, 2])"},
    {"MalformedJson", R"({"seed": )"},
};

class FuzzSpecRejectTest
    : public ::testing::TestWithParam<RejectCase>
{
};

TEST_P(FuzzSpecRejectTest, IsRejectedWithDiagnostic)
{
    FuzzSpec spec;
    std::string error;
    EXPECT_FALSE(parseFuzzSpec(GetParam().text, spec, error))
        << GetParam().text;
    EXPECT_NE(error.find("fuzz spec"), std::string::npos) << error;
}

INSTANTIATE_TEST_SUITE_P(Grammar, FuzzSpecRejectTest,
                         ::testing::ValuesIn(kRejectCases),
                         [](const auto &pinfo) {
                             return std::string(pinfo.param.label);
                         });

} // namespace
} // namespace psb
