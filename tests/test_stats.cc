/**
 * @file
 * Unit tests for the StatsRegistry, the deterministic JSON
 * serialisation and its parser, and the counter-width regression
 * tests that drive more than 2^32 events through the accumulators
 * (all cycle/event counters must be uint64_t; saturating counters
 * must clamp, not wrap).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "util/sat_counter.hh"
#include "util/stats.hh"
#include "util/stats_json.hh"

namespace psb
{
namespace
{

// ---------------------------------------------------------------- //
// Registry basics
// ---------------------------------------------------------------- //

TEST(StatsRegistry, ScalarAndRealReadLiveValues)
{
    StatsRegistry reg;
    uint64_t counter = 0;
    reg.addScalar("comp.events", &counter);
    reg.addReal("comp.rate", [&counter] { return double(counter) / 2.0; });

    counter = 10;
    auto snap = reg.snapshot();
    EXPECT_EQ(snap.at("comp.events").scalar, 10u);
    EXPECT_DOUBLE_EQ(snap.at("comp.rate").real, 5.0);

    // The registry holds readers, not copies: a later change (e.g. a
    // warm-up reset) is visible in the next snapshot.
    counter = 0;
    snap = reg.snapshot();
    EXPECT_EQ(snap.at("comp.events").scalar, 0u);
}

TEST(StatsRegistry, SnapshotIsSortedByPath)
{
    StatsRegistry reg;
    reg.addScalar("z.last", [] { return uint64_t(1); });
    reg.addScalar("a.first", [] { return uint64_t(2); });
    reg.addScalar("m.middle", [] { return uint64_t(3); });

    auto snap = reg.snapshot();
    std::vector<std::string> keys;
    for (const auto &[path, value] : snap) {
        (void)value;
        keys.push_back(path);
    }
    EXPECT_EQ(keys,
              (std::vector<std::string>{"a.first", "m.middle", "z.last"}));
}

TEST(StatsRegistryDeathTest, DuplicateRegistrationPanics)
{
    StatsRegistry reg;
    reg.addScalar("dup.path", [] { return uint64_t(0); });
    EXPECT_DEATH(reg.addScalar("dup.path", [] { return uint64_t(0); }),
                 "duplicate stat registration");
}

TEST(StatsRegistry, AverageExpandsToCountSumMean)
{
    StatsRegistry reg;
    Average avg;
    reg.addAverage("lat", &avg);
    avg.sample(4.0);
    avg.sample(8.0);

    auto snap = reg.snapshot();
    EXPECT_EQ(snap.at("lat.count").scalar, 2u);
    EXPECT_DOUBLE_EQ(snap.at("lat.sum").real, 12.0);
    EXPECT_DOUBLE_EQ(snap.at("lat.mean").real, 6.0);
}

TEST(StatsRegistry, HistogramExpandsToPaddedBuckets)
{
    StatsRegistry reg;
    Histogram hist(12);
    reg.addHistogram("h", &hist);
    hist.sample(3);
    hist.sample(3);
    hist.sample(100); // overflow

    auto snap = reg.snapshot();
    EXPECT_EQ(snap.at("h.bucket003").scalar, 2u);
    EXPECT_EQ(snap.at("h.bucket011").scalar, 0u);
    EXPECT_EQ(snap.at("h.overflow").scalar, 1u);
    EXPECT_EQ(snap.at("h.samples").scalar, 3u);
    // Zero-padding keeps lexicographic order numeric.
    EXPECT_TRUE(snap.count("h.bucket000"));
    EXPECT_FALSE(snap.count("h.bucket012"));
}

// ---------------------------------------------------------------- //
// JSON serialisation and parsing
// ---------------------------------------------------------------- //

TEST(StatsJson, DeterministicAndSorted)
{
    StatsRegistry reg;
    uint64_t big = 0xFFFFFFFFFFFFull;
    reg.addScalar("b.counter", &big);
    reg.addReal("a.ratio", [] { return 1.0 / 3.0; });

    std::string one = reg.toJson();
    std::string two = reg.toJson();
    EXPECT_EQ(one, two);
    EXPECT_LT(one.find("a.ratio"), one.find("b.counter"));
}

TEST(StatsJson, RoundTripsExactly)
{
    StatsRegistry reg;
    uint64_t counter = 1234567890123456789ull;
    reg.addScalar("x.counter", &counter);
    reg.addReal("x.third", [] { return 1.0 / 3.0; });
    reg.addReal("x.zero", [] { return 0.0; });

    std::map<std::string, ParsedStat> parsed;
    std::string error;
    ASSERT_TRUE(parseStatsJson(reg.toJson(), parsed, error)) << error;
    ASSERT_EQ(parsed.size(), 3u);
    EXPECT_EQ(parsed.at("x.counter").value,
              double(1234567890123456789ull));
    EXPECT_EQ(parsed.at("x.third").value, 1.0 / 3.0); // %.17g is exact
    EXPECT_EQ(parsed.at("x.zero").value, 0.0);
}

TEST(StatsJson, ParserRejectsMalformedInput)
{
    std::map<std::string, ParsedStat> parsed;
    std::string error;
    EXPECT_FALSE(parseStatsJson("", parsed, error));
    EXPECT_FALSE(parseStatsJson("{\"a\": }", parsed, error));
    EXPECT_FALSE(parseStatsJson("{\"a\": 1", parsed, error));
    EXPECT_FALSE(parseStatsJson("{\"a\": 1, \"a\": 2}", parsed, error));
    EXPECT_TRUE(parseStatsJson("{}", parsed, error));
    EXPECT_TRUE(parsed.empty());
}

TEST(StatsJson, EmptyRegistrySerialises)
{
    StatsRegistry reg;
    std::map<std::string, ParsedStat> parsed;
    std::string error;
    ASSERT_TRUE(parseStatsJson(reg.toJson(), parsed, error)) << error;
    EXPECT_TRUE(parsed.empty());
}

// ---------------------------------------------------------------- //
// Counter widths: >2^32 events must neither wrap nor lose precision
// ---------------------------------------------------------------- //

TEST(CounterWidth, SatCounterSurvivesBeyond32BitEventCounts)
{
    // Drive > 2^32 increment events (in large deterministic steps so
    // the test stays fast) and confirm the counter clamps at its
    // ceiling rather than wrapping through a narrow intermediate.
    SatCounter counter(12);
    uint64_t events = 0;
    const uint32_t step = 1u << 20;
    while (events <= (uint64_t(1) << 32)) {
        counter.increment(step);
        events += step;
    }
    EXPECT_GT(events, uint64_t(1) << 32);
    EXPECT_EQ(counter.value(), 12u);
    EXPECT_TRUE(counter.saturated());

    // And the same off the floor.
    while (events <= (uint64_t(1) << 33)) {
        counter.decrement(step);
        events += step;
    }
    EXPECT_EQ(counter.value(), 0u);
}

TEST(CounterWidth, AverageCountsBeyond32Bits)
{
    Average avg;
    const uint64_t chunk = uint64_t(1) << 28;
    for (int i = 0; i < 20; ++i) // 20 * 2^28 = 5 * 2^30 > 2^32
        avg.sampleN(2.0, chunk);
    EXPECT_EQ(avg.count(), 20 * chunk);
    EXPECT_GT(avg.count(), uint64_t(1) << 32);
    EXPECT_DOUBLE_EQ(avg.mean(), 2.0);
}

// ---------------------------------------------------------------- //
// Histogram percentiles
// ---------------------------------------------------------------- //

TEST(HistogramPercentile, EmptyHistogramReturnsZero)
{
    Histogram hist(16);
    EXPECT_EQ(hist.percentile(0.0), 0u);
    EXPECT_EQ(hist.percentile(0.5), 0u);
    EXPECT_EQ(hist.percentile(1.0), 0u);
}

TEST(HistogramPercentile, KnownDistribution)
{
    // 100 samples: 50 at value 2, 40 at value 5, 10 at value 9.
    Histogram hist(16);
    hist.sampleN(2, 50);
    hist.sampleN(5, 40);
    hist.sampleN(9, 10);
    EXPECT_EQ(hist.percentile(0.50), 2u);
    EXPECT_EQ(hist.percentile(0.51), 5u);
    EXPECT_EQ(hist.percentile(0.90), 5u);
    EXPECT_EQ(hist.percentile(0.91), 9u);
    EXPECT_EQ(hist.percentile(0.99), 9u);
    // p == 0 still selects an observed sample (the smallest), and
    // p == 1 the largest.
    EXPECT_EQ(hist.percentile(0.0), 2u);
    EXPECT_EQ(hist.percentile(1.0), 9u);
}

TEST(HistogramPercentile, ClampsOutOfRangeP)
{
    Histogram hist(8);
    hist.sampleN(3, 10);
    EXPECT_EQ(hist.percentile(-0.5), 3u);
    EXPECT_EQ(hist.percentile(2.0), 3u);
}

TEST(HistogramPercentile, OverflowSamplesResolveToOverflowIndex)
{
    // Samples past the bucket range land in the overflow bucket; the
    // percentile can only say "at least numBuckets()".
    Histogram hist(4);
    hist.sampleN(1, 5);
    hist.sampleN(100, 5); // overflow (>= 4)
    EXPECT_EQ(hist.percentile(0.5), 1u);
    EXPECT_EQ(hist.percentile(0.99), hist.numBuckets());
    EXPECT_EQ(hist.percentile(1.0), hist.numBuckets());

    Histogram only_overflow(4);
    only_overflow.sampleN(1000, 3);
    EXPECT_EQ(only_overflow.percentile(0.5), only_overflow.numBuckets());
}

TEST(HistogramPercentile, SingleSample)
{
    Histogram hist(8);
    hist.sample(6);
    EXPECT_EQ(hist.percentile(0.0), 6u);
    EXPECT_EQ(hist.percentile(0.5), 6u);
    EXPECT_EQ(hist.percentile(1.0), 6u);
}

TEST(CounterWidth, HistogramTotalsBeyond32Bits)
{
    Histogram hist(4);
    const uint64_t chunk = uint64_t(1) << 30;
    for (int i = 0; i < 5; ++i)
        hist.sampleN(1, chunk);
    EXPECT_EQ(hist.total(), 5 * chunk);
    EXPECT_GT(hist.total(), uint64_t(1) << 32);
    EXPECT_EQ(hist.bucket(1), 5 * chunk);
}

TEST(CounterWidth, RegistryScalarsCarry64BitValues)
{
    StatsRegistry reg;
    uint64_t counter = (uint64_t(1) << 32) + 17;
    reg.addScalar("wide.counter", &counter);

    std::map<std::string, ParsedStat> parsed;
    std::string error;
    ASSERT_TRUE(parseStatsJson(reg.toJson(), parsed, error)) << error;
    EXPECT_EQ(parsed.at("wide.counter").raw, "4294967313");
}

} // namespace
} // namespace psb
