/**
 * @file
 * Tests for the report renderers in src/sim/report.cc: formatReport's
 * headline numbers must agree with the registry's JSON export, and
 * formatStatsReport must render every registered stat with the exact
 * same value spelling as the JSON (so the two never disagree).
 */

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "util/stats_json.hh"
#include "workloads/workload.hh"

namespace psb
{
namespace
{

struct SimRun
{
    std::unique_ptr<Workload> trace; // must outlive sim (held by ref)
    std::unique_ptr<Simulator> sim;
    SimResult result;
};

SimRun
runSmall(const char *workload = "turb3d")
{
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.warmupInstructions = 5000;
    cfg.maxInstructions = 20000;
    SimRun run;
    run.trace = makeWorkload(workload, 1);
    run.sim = std::make_unique<Simulator>(cfg, *run.trace);
    run.result = run.sim->run();
    return run;
}

std::map<std::string, ParsedStat>
parsedStats(const Simulator &sim)
{
    std::map<std::string, ParsedStat> parsed;
    std::string error;
    EXPECT_TRUE(parseStatsJson(sim.statsJson(), parsed, error)) << error;
    return parsed;
}

TEST(FormatReport, HeadlineNumbersMatchJsonExport)
{
    SimRun run = runSmall();
    auto stats = parsedStats(*run.sim);
    std::string report = formatReport("t", run.result);

    // The exact counters the report prints must equal the registry's
    // exported values — SimResult is a view over the same numbers.
    EXPECT_EQ(stats.at("core.instructions").value,
              double(run.result.core.instructions));
    EXPECT_EQ(stats.at("core.cycles").value,
              double(run.result.core.cycles));
    EXPECT_DOUBLE_EQ(stats.at("core.ipc").value, run.result.ipc);
    EXPECT_DOUBLE_EQ(stats.at("l1d.miss_rate").value,
                     run.result.l1dMissRate);
    EXPECT_DOUBLE_EQ(stats.at("core.load_latency.mean").value,
                     run.result.avgLoadLatency);
    EXPECT_DOUBLE_EQ(stats.at("sim.l1_l2_bus_util").value,
                     run.result.l1L2BusUtil);
    EXPECT_DOUBLE_EQ(stats.at("psb.accuracy").value,
                     run.result.prefetchAccuracy);

    // And the rendered text carries them (spot-check the integers,
    // whose spelling is format-independent).
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64,
                  run.result.core.instructions);
    EXPECT_NE(report.find(buf), std::string::npos);
    std::snprintf(buf, sizeof(buf), "%" PRIu64, run.result.core.cycles);
    EXPECT_NE(report.find(buf), std::string::npos);
    EXPECT_NE(report.find("IPC"), std::string::npos);
    EXPECT_NE(report.find("prefetches"), std::string::npos);
}

TEST(FormatStatsReport, RendersEveryRegisteredStat)
{
    SimRun run = runSmall();
    const StatsRegistry &reg = run.sim->statsRegistry();
    std::string report = formatStatsReport("stats", reg);

    auto snapshot = reg.snapshot();
    ASSERT_FALSE(snapshot.empty());
    for (const auto &[path, value] : snapshot) {
        (void)value;
        EXPECT_NE(report.find("  " + path + " "), std::string::npos)
            << "stat missing from report: " << path;
    }
}

TEST(FormatStatsReport, ValueSpellingMatchesJsonExport)
{
    SimRun run = runSmall("gs");
    const StatsRegistry &reg = run.sim->statsRegistry();
    std::string report = formatStatsReport("stats", reg);
    auto parsed = parsedStats(*run.sim);

    // Each report line is "  path<spaces>value"; the value text must
    // be byte-identical to the JSON spelling for the same path.
    std::istringstream lines(report);
    std::string line;
    std::getline(lines, line); // "=== stats ===" header
    size_t checked = 0;
    while (std::getline(lines, line)) {
        std::istringstream fields(line);
        std::string path, value;
        fields >> path >> value;
        ASSERT_TRUE(parsed.count(path)) << "unexported stat: " << path;
        EXPECT_EQ(value, parsed.at(path).raw) << "for " << path;
        ++checked;
    }
    EXPECT_EQ(checked, parsed.size());
    EXPECT_EQ(checked, reg.size());
}

TEST(FormatStatsReport, JsonRoundTripMatchesSnapshotExactly)
{
    SimRun run = runSmall("health");
    const StatsRegistry &reg = run.sim->statsRegistry();
    auto snapshot = reg.snapshot();
    auto parsed = parsedStats(*run.sim);

    ASSERT_EQ(parsed.size(), snapshot.size());
    for (const auto &[path, value] : snapshot) {
        ASSERT_TRUE(parsed.count(path)) << path;
        // %.17g round-trips doubles exactly; integers are exact by
        // construction — so equality is exact, not approximate.
        EXPECT_EQ(parsed.at(path).value, value.asReal()) << path;
    }
}

} // namespace
} // namespace psb
