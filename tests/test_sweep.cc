/**
 * @file
 * Tests for the parallel sweep engine stack: the strict JSON reader
 * (util/json.hh), the strict config-key grammar (sim/config.hh), the
 * declarative sweep spec (sim/sweep_spec.hh), and the engine itself
 * (sim/sweep.hh) — including the concurrency properties the merged
 * document depends on: key-sorted results, thread-count invariance,
 * bounded retry, cooperative timeout, and poisoned-job isolation.
 *
 * Every fault in here is injected deterministically (attempt counters
 * and cancel-token polling, never clocks or races), so the suite is
 * stable under TSan and at any worker count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "sim/config.hh"
#include "sim/sweep.hh"
#include "sim/sweep_spec.hh"
#include "util/json.hh"

namespace psb
{
namespace
{

// ------------------------------------------------------------------ //
// util/json.hh
// ------------------------------------------------------------------ //

TEST(SweepJsonTest, ParsesScalarsArraysObjects)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        R"({"a": 1, "b": [true, "x", null], "c": {"d": 2.5}})", v, err))
        << err;
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.object.size(), 3u);
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    uint64_t n = 0;
    EXPECT_TRUE(a->asUInt(n));
    EXPECT_EQ(n, 1u);
    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_TRUE(b->array[0].isBool());
    EXPECT_TRUE(b->array[1].isString());
    EXPECT_TRUE(b->array[2].isNull());
    const JsonValue *d = v.find("c")->find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_DOUBLE_EQ(d->number, 2.5);
}

TEST(SweepJsonTest, KeepsObjectInsertionOrder)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(R"({"z": 1, "a": 2, "m": 3})", v, err));
    ASSERT_EQ(v.object.size(), 3u);
    EXPECT_EQ(v.object[0].first, "z");
    EXPECT_EQ(v.object[1].first, "a");
    EXPECT_EQ(v.object[2].first, "m");
}

TEST(SweepJsonTest, RejectsDuplicateKeys)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson(R"({"buffers": 4, "buffers": 8})", v, err));
    EXPECT_NE(err.find("duplicate key"), std::string::npos) << err;
    EXPECT_NE(err.find("buffers"), std::string::npos) << err;
}

TEST(SweepJsonTest, RejectsTrailingGarbageAndSyntaxErrors)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{} x", v, err));
    EXPECT_FALSE(parseJson("{", v, err));
    EXPECT_FALSE(parseJson("[1,]", v, err));
    EXPECT_FALSE(parseJson("", v, err));
    EXPECT_FALSE(parseJson("{\"a\" 1}", v, err));
}

TEST(SweepJsonTest, NumbersKeepSourceSpelling)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(R"({"insts": 1000000})", v, err));
    std::string token;
    ASSERT_TRUE(v.find("insts")->asConfigToken(token));
    EXPECT_EQ(token, "1000000");
}

TEST(SweepJsonTest, AsUIntRejectsNegativeAndFractional)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(R"([-1, 2.5, 7, "8"])", v, err));
    uint64_t n = 0;
    EXPECT_FALSE(v.array[0].asUInt(n));
    EXPECT_FALSE(v.array[1].asUInt(n));
    EXPECT_TRUE(v.array[2].asUInt(n));
    EXPECT_EQ(n, 7u);
    EXPECT_FALSE(v.array[3].asUInt(n)); // strings are not numbers
}

// ------------------------------------------------------------------ //
// sim/config.hh strict key grammar
// ------------------------------------------------------------------ //

TEST(SweepConfigKeyTest, AcceptsTheDocumentedGrammar)
{
    SimConfig cfg;
    std::string err;
    EXPECT_TRUE(applyConfigKey(cfg, "prefetcher", "psb", err)) << err;
    EXPECT_EQ(cfg.prefetcher, PrefetcherKind::Psb);
    EXPECT_TRUE(applyConfigKey(cfg, "alloc", "conf", err)) << err;
    EXPECT_TRUE(applyConfigKey(cfg, "sched", "priority", err)) << err;
    EXPECT_TRUE(applyConfigKey(cfg, "insts", "60000", err)) << err;
    EXPECT_EQ(cfg.maxInstructions, 60000u);
    EXPECT_TRUE(applyConfigKey(cfg, "warmup", "1000", err)) << err;
    EXPECT_EQ(cfg.warmupInstructions, 1000u);
    EXPECT_TRUE(applyConfigKey(cfg, "l1d-kb", "32", err)) << err;
    EXPECT_EQ(cfg.memory.l1d.sizeBytes, 32u * 1024u);
    EXPECT_TRUE(applyConfigKey(cfg, "l1d-assoc", "2", err)) << err;
    EXPECT_TRUE(applyConfigKey(cfg, "buffers", "8", err)) << err;
    EXPECT_TRUE(applyConfigKey(cfg, "entries", "4", err)) << err;
    EXPECT_TRUE(applyConfigKey(cfg, "nodis", "true", err)) << err;
    EXPECT_TRUE(applyConfigKey(cfg, "tlb-cache", "false", err)) << err;
}

TEST(SweepConfigKeyTest, RejectsUnknownKeys)
{
    SimConfig cfg;
    std::string err;
    EXPECT_FALSE(applyConfigKey(cfg, "bufers", "8", err));
    EXPECT_NE(err.find("unknown config key"), std::string::npos) << err;
    EXPECT_NE(err.find("bufers"), std::string::npos) << err;
}

TEST(SweepConfigKeyTest, RejectsBadValues)
{
    SimConfig cfg;
    std::string err;
    EXPECT_FALSE(applyConfigKey(cfg, "prefetcher", "warp", err));
    EXPECT_FALSE(applyConfigKey(cfg, "insts", "12banana", err));
    EXPECT_FALSE(applyConfigKey(cfg, "insts", "-5", err));
    EXPECT_FALSE(applyConfigKey(cfg, "nodis", "yes", err));
    EXPECT_FALSE(applyConfigKey(cfg, "buffers", "", err));
}

TEST(SweepConfigKeyTest, KeyListIsSortedAndComplete)
{
    const std::vector<std::string> &keys = simConfigKeys();
    ASSERT_FALSE(keys.empty());
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    // Every advertised key must be accepted by the applier (with some
    // value), i.e. the list and the grammar cannot drift apart.
    for (const std::string &key : keys) {
        SimConfig cfg;
        std::string err;
        bool ok = applyConfigKey(cfg, key, "1", err) ||
                  applyConfigKey(cfg, key, "true", err) ||
                  applyConfigKey(cfg, key, "psb", err) ||
                  applyConfigKey(cfg, key, "conf", err) ||
                  applyConfigKey(cfg, key, "rr", err);
        EXPECT_TRUE(ok) << "advertised key not applicable: " << key;
    }
}

// ------------------------------------------------------------------ //
// sim/sweep_spec.hh
// ------------------------------------------------------------------ //

constexpr const char *kSpec = R"({
  "jobs": 3,
  "workloads": ["health", "burg"],
  "seeds": [1, 2],
  "base": {"insts": 3000, "warmup": 500},
  "axes": {"buffers": [4, 8], "l1d-kb": [16, 32]}
})";

TEST(SweepSpecTest, ParsesAndExpandsTheGrid)
{
    SweepSpec spec;
    std::string err;
    ASSERT_TRUE(parseSweepSpec(kSpec, spec, err)) << err;
    EXPECT_EQ(spec.jobs, 3u);
    ASSERT_EQ(spec.workloads.size(), 2u);
    ASSERT_EQ(spec.seeds.size(), 2u);
    ASSERT_EQ(spec.base.size(), 2u);
    ASSERT_EQ(spec.axes.size(), 2u);

    std::vector<SweepRun> runs;
    ASSERT_TRUE(expandSweepSpec(spec, runs, err)) << err;
    // 2 workloads x 2 seeds x 2 buffers x 2 l1d-kb
    ASSERT_EQ(runs.size(), 16u);
    EXPECT_EQ(runs[0].key, "health/seed=1/buffers=4,l1d-kb=16");
    EXPECT_EQ(runs[1].key, "health/seed=1/buffers=4,l1d-kb=32");
    EXPECT_EQ(runs[2].key, "health/seed=1/buffers=8,l1d-kb=16");
    EXPECT_EQ(runs.back().key, "burg/seed=2/buffers=8,l1d-kb=32");
    // base + axis both applied to the expanded config
    EXPECT_EQ(runs[0].cfg.maxInstructions, 3000u);
    EXPECT_EQ(runs[0].cfg.memory.l1d.sizeBytes, 16u * 1024u);
}

TEST(SweepSpecTest, RejectsUnknownSections)
{
    SweepSpec spec;
    std::string err;
    EXPECT_FALSE(parseSweepSpec(
        R"({"workloads": ["health"], "axis": {}})", spec, err));
    EXPECT_NE(err.find("axis"), std::string::npos) << err;
}

TEST(SweepSpecTest, RejectsUnknownConfigKeys)
{
    SweepSpec spec;
    std::string err;
    EXPECT_FALSE(parseSweepSpec(
        R"({"workloads": ["health"], "base": {"bufers": 4}})", spec,
        err));
    EXPECT_NE(err.find("bufers"), std::string::npos) << err;
}

TEST(SweepSpecTest, RejectsBaseAxesCollision)
{
    SweepSpec spec;
    std::string err;
    EXPECT_FALSE(parseSweepSpec(
        R"({"workloads": ["health"], "base": {"buffers": 4},
            "axes": {"buffers": [4, 8]}})",
        spec, err));
    EXPECT_NE(err.find("buffers"), std::string::npos) << err;
}

TEST(SweepSpecTest, RejectsBadAxisValueAtExpansion)
{
    SweepSpec spec;
    std::string err;
    ASSERT_TRUE(parseSweepSpec(
        R"({"workloads": ["health"], "axes": {"prefetcher": ["warp"]}})",
        spec, err))
        << err;
    std::vector<SweepRun> runs;
    EXPECT_FALSE(expandSweepSpec(spec, runs, err));
    EXPECT_NE(err.find("warp"), std::string::npos) << err;
}

// ------------------------------------------------------------------ //
// sim/sweep.hh — the engine
// ------------------------------------------------------------------ //

SweepJob
okJob(const std::string &key, const std::string &payload)
{
    SweepJob job;
    job.key = key;
    job.run = [payload](const JobContext &) {
        JobOutcome out;
        out.ok = true;
        out.payload = payload;
        return out;
    };
    return job;
}

TEST(SweepEngineTest, ResultsSortedByKeyWhateverTheSubmitOrder)
{
    std::vector<SweepJob> jobs;
    jobs.push_back(okJob("zeta", "1"));
    jobs.push_back(okJob("alpha", "2"));
    jobs.push_back(okJob("mid", "3"));

    SweepOptions opts;
    opts.jobs = 2;
    std::vector<JobResult> results = SweepEngine(opts).run(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].key, "alpha");
    EXPECT_EQ(results[1].key, "mid");
    EXPECT_EQ(results[2].key, "zeta");
    for (const JobResult &r : results) {
        EXPECT_EQ(r.status, JobStatus::Ok);
        EXPECT_EQ(r.attempts, 1u);
    }
}

TEST(SweepEngineTest, RetriesFailuresUpToTheBound)
{
    // Fails deterministically on the first two attempts.
    auto tries = std::make_shared<std::atomic<unsigned>>(0);
    SweepJob flaky;
    flaky.key = "flaky";
    flaky.run = [tries](const JobContext &ctx) {
        unsigned n = tries->fetch_add(1);
        EXPECT_EQ(ctx.attempt, n);
        JobOutcome out;
        if (n < 2) {
            out.error = "injected failure";
            return out;
        }
        out.ok = true;
        out.payload = "recovered";
        return out;
    };

    SweepOptions opts;
    opts.maxRetries = 2;
    std::vector<JobResult> results = SweepEngine(opts).run({flaky});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Ok);
    EXPECT_EQ(results[0].attempts, 3u);
    EXPECT_EQ(results[0].payload, "recovered");
}

TEST(SweepEngineTest, ExhaustedRetriesReportTheLastError)
{
    SweepJob doomed;
    doomed.key = "doomed";
    doomed.run = [](const JobContext &) {
        JobOutcome out;
        out.error = "always broken";
        return out;
    };

    SweepOptions opts;
    opts.maxRetries = 3;
    std::vector<JobResult> results = SweepEngine(opts).run({doomed});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_EQ(results[0].attempts, 4u); // 1 try + 3 retries
    EXPECT_EQ(results[0].error, "always broken");
}

TEST(SweepEngineTest, ExceptionsBecomeDeterministicFailures)
{
    SweepJob thrower;
    thrower.key = "thrower";
    thrower.run = [](const JobContext &) -> JobOutcome {
        throw std::runtime_error("boom");
    };

    SweepOptions opts;
    std::vector<JobResult> results = SweepEngine(opts).run({thrower});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_NE(results[0].error.find("boom"), std::string::npos)
        << results[0].error;
}

TEST(SweepEngineTest, TimeoutKillsOnlyTheHungJob)
{
    // A cooperative hang: spins until the engine sets the token.
    SweepJob hang;
    hang.key = "hang";
    hang.run = [](const JobContext &ctx) {
        while (!ctx.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        JobOutcome out;
        out.error = "woke up cancelled";
        return out;
    };

    std::vector<SweepJob> jobs;
    jobs.push_back(hang);
    jobs.push_back(okJob("quick-a", "a"));
    jobs.push_back(okJob("quick-b", "b"));

    SweepOptions opts;
    opts.jobs = 2;
    opts.maxRetries = 5; // must NOT apply to timeouts
    opts.timeout = std::chrono::milliseconds(100);
    std::vector<JobResult> results = SweepEngine(opts).run(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].key, "hang");
    EXPECT_EQ(results[0].status, JobStatus::TimedOut);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_NE(results[0].error.find("timed out"), std::string::npos)
        << results[0].error;
    EXPECT_EQ(results[1].status, JobStatus::Ok);
    EXPECT_EQ(results[2].status, JobStatus::Ok);
}

TEST(SweepEngineTest, PoisonedJobDoesNotContaminateSiblings)
{
    // One throwing job sandwiched between real work at every worker
    // count: the siblings' payloads must be what a solo run produces.
    for (unsigned workers : {1u, 4u}) {
        std::vector<SweepJob> jobs;
        jobs.push_back(okJob("w1", "p1"));
        SweepJob poison;
        poison.key = "poison";
        poison.run = [](const JobContext &) -> JobOutcome {
            throw std::runtime_error("poisoned");
        };
        jobs.push_back(poison);
        jobs.push_back(okJob("w2", "p2"));

        SweepOptions opts;
        opts.jobs = workers;
        std::vector<JobResult> results = SweepEngine(opts).run(jobs);
        // Sorted by key: "poison" < "w1" < "w2".
        ASSERT_EQ(results.size(), 3u);
        EXPECT_EQ(results[0].status, JobStatus::Failed);
        EXPECT_EQ(results[1].payload, "p1");
        EXPECT_EQ(results[2].payload, "p2");
    }
}

TEST(SweepEngineTest, MergedDocumentIsByteStable)
{
    std::vector<JobResult> results;
    JobResult ok;
    ok.key = "a";
    ok.status = JobStatus::Ok;
    ok.attempts = 1;
    ok.payload = "{\n  \"core.cycles\": 10\n}\n";
    results.push_back(ok);
    JobResult bad;
    bad.key = "b";
    bad.status = JobStatus::Failed;
    bad.attempts = 2;
    bad.error = "it \"broke\"";
    results.push_back(bad);

    std::string doc = SweepEngine::mergeStatsJson(results);
    EXPECT_EQ(doc, "{\n"
                   "  \"jobs\": {\n"
                   "    \"a\": {\n"
                   "      \"status\": \"ok\",\n"
                   "      \"attempts\": 1,\n"
                   "      \"stats\": {\n"
                   "        \"core.cycles\": 10\n"
                   "      }\n"
                   "    },\n"
                   "    \"b\": {\n"
                   "      \"status\": \"failed\",\n"
                   "      \"attempts\": 2,\n"
                   "      \"error\": \"it \\\"broke\\\"\"\n"
                   "    }\n"
                   "  }\n"
                   "}\n");
}

/**
 * The tentpole property, in-process: real (tiny) simulations produce
 * a byte-identical merged document at every worker count.
 */
TEST(SweepEngineTest, ThreadCountInvariantMergedStats)
{
    SweepSpec spec;
    std::string err;
    ASSERT_TRUE(parseSweepSpec(
        R"({"workloads": ["health", "deltablue"],
            "base": {"insts": 3000, "warmup": 500},
            "axes": {"buffers": [4, 8], "prefetcher": ["psb", "pcstride"]}})",
        spec, err))
        << err;
    std::vector<SweepRun> runs;
    ASSERT_TRUE(expandSweepSpec(spec, runs, err)) << err;
    ASSERT_EQ(runs.size(), 8u);

    std::string reference;
    for (unsigned workers : {1u, 2u, 8u}) {
        std::vector<SweepJob> jobs;
        for (const SweepRun &run : runs)
            jobs.push_back(makeSimJob(run));
        SweepOptions opts;
        opts.jobs = workers;
        std::vector<JobResult> results = SweepEngine(opts).run(jobs);
        for (const JobResult &r : results)
            ASSERT_EQ(r.status, JobStatus::Ok) << r.key << ": "
                                               << r.error;
        std::string doc = SweepEngine::mergeStatsJson(results);
        if (reference.empty())
            reference = doc;
        else
            EXPECT_EQ(doc, reference)
                << "merged stats differ at jobs=" << workers;
    }
    EXPECT_NE(reference.find("health/seed=1/buffers=4,prefetcher=psb"),
              std::string::npos);
}

TEST(SweepEngineTest, UnknownWorkloadFailsCleanly)
{
    SweepRun run;
    run.key = "nope/seed=1/";
    run.workload = "nope";
    run.cfg.maxInstructions = 100;
    run.cfg.harmonize();
    SweepOptions opts;
    std::vector<JobResult> results =
        SweepEngine(opts).run({makeSimJob(run)});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_NE(results[0].error.find("unknown workload"),
              std::string::npos)
        << results[0].error;
}

} // namespace
} // namespace psb
