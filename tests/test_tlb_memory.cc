/**
 * @file
 * Unit tests for the data TLB and the main-memory model.
 */

#include <gtest/gtest.h>

#include "memory/main_memory.hh"
#include "memory/tlb.hh"

namespace psb
{
namespace
{

TEST(TlbTest, FirstTouchMissesThenHits)
{
    Tlb tlb(4, 8192, 30);
    EXPECT_EQ(tlb.translate(0x10000), 30u);
    EXPECT_EQ(tlb.translate(0x10000), 0u);
    EXPECT_EQ(tlb.translate(0x11fff), 0u); // same 8K page
    EXPECT_EQ(tlb.translate(0x12000), 30u); // next page
    EXPECT_EQ(tlb.accesses(), 4u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(TlbTest, LruReplacement)
{
    Tlb tlb(2, 8192, 30);
    tlb.translate(0x00000); // page 0
    tlb.translate(0x02000); // page 1
    tlb.translate(0x00000); // refresh page 0
    tlb.translate(0x04000); // page 2 evicts page 1
    EXPECT_TRUE(tlb.probe(0x00000));
    EXPECT_FALSE(tlb.probe(0x02000));
    EXPECT_TRUE(tlb.probe(0x04000));
}

TEST(TlbTest, ProbeDoesNotFill)
{
    Tlb tlb(4, 8192, 30);
    EXPECT_FALSE(tlb.probe(0x10000));
    EXPECT_FALSE(tlb.probe(0x10000));
    EXPECT_EQ(tlb.misses(), 0u);
}

TEST(TlbTest, PrefetchTranslationReplacesEntries)
{
    // Paper §4.5: prefetches translate and replace on miss — a
    // prefetch to a new page installs its translation.
    Tlb tlb(2, 8192, 30);
    tlb.translate(0x00000);
    tlb.translate(0x02000);
    // "Prefetch" touches a third page.
    EXPECT_EQ(tlb.translate(0x04000), 30u);
    EXPECT_TRUE(tlb.probe(0x04000));
}

TEST(TlbTest, ResetStatsKeepsMappings)
{
    Tlb tlb(4, 8192, 30);
    tlb.translate(0x10000);
    tlb.resetStats();
    EXPECT_EQ(tlb.accesses(), 0u);
    EXPECT_EQ(tlb.misses(), 0u);
    EXPECT_EQ(tlb.translate(0x10000), 0u); // still mapped
}

TEST(MainMemoryTest, FixedLatency)
{
    MainMemory mem(120, 4);
    EXPECT_EQ(mem.access(0), 120u);
    EXPECT_EQ(mem.accesses(), 1u);
    EXPECT_EQ(mem.latency(), 120u);
}

TEST(MainMemoryTest, IssueIntervalPipelinesAccesses)
{
    MainMemory mem(120, 4);
    EXPECT_EQ(mem.access(0), 120u);
    // Second access at the same cycle starts 4 cycles later.
    EXPECT_EQ(mem.access(0), 124u);
    EXPECT_EQ(mem.access(0), 128u);
    // A later access after the pipeline drains starts on time.
    EXPECT_EQ(mem.access(1000), 1120u);
}

} // namespace
} // namespace psb
