/**
 * @file
 * Unit tests for the data TLB and the main-memory model.
 */

#include <gtest/gtest.h>

#include "memory/main_memory.hh"
#include "memory/tlb.hh"

namespace psb
{
namespace
{

TEST(TlbTest, FirstTouchMissesThenHits)
{
    Tlb tlb(4, 8192, CycleDelta{30});
    EXPECT_EQ(tlb.translate(Addr{0x10000}), CycleDelta{30});
    EXPECT_EQ(tlb.translate(Addr{0x10000}), CycleDelta{});
    EXPECT_EQ(tlb.translate(Addr{0x11fff}), CycleDelta{}); // same page
    EXPECT_EQ(tlb.translate(Addr{0x12000}), CycleDelta{30}); // next
    EXPECT_EQ(tlb.accesses(), 4u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(TlbTest, LruReplacement)
{
    Tlb tlb(2, 8192, CycleDelta{30});
    tlb.translate(Addr{0x00000}); // page 0
    tlb.translate(Addr{0x02000}); // page 1
    tlb.translate(Addr{0x00000}); // refresh page 0
    tlb.translate(Addr{0x04000}); // page 2 evicts page 1
    EXPECT_TRUE(tlb.probe(Addr{0x00000}));
    EXPECT_FALSE(tlb.probe(Addr{0x02000}));
    EXPECT_TRUE(tlb.probe(Addr{0x04000}));
}

TEST(TlbTest, ProbeDoesNotFill)
{
    Tlb tlb(4, 8192, CycleDelta{30});
    EXPECT_FALSE(tlb.probe(Addr{0x10000}));
    EXPECT_FALSE(tlb.probe(Addr{0x10000}));
    EXPECT_EQ(tlb.misses(), 0u);
}

TEST(TlbTest, PrefetchTranslationReplacesEntries)
{
    // Paper §4.5: prefetches translate and replace on miss — a
    // prefetch to a new page installs its translation.
    Tlb tlb(2, 8192, CycleDelta{30});
    tlb.translate(Addr{0x00000});
    tlb.translate(Addr{0x02000});
    // "Prefetch" touches a third page.
    EXPECT_EQ(tlb.translate(Addr{0x04000}), CycleDelta{30});
    EXPECT_TRUE(tlb.probe(Addr{0x04000}));
}

TEST(TlbTest, ResetStatsKeepsMappings)
{
    Tlb tlb(4, 8192, CycleDelta{30});
    tlb.translate(Addr{0x10000});
    tlb.resetStats();
    EXPECT_EQ(tlb.accesses(), 0u);
    EXPECT_EQ(tlb.misses(), 0u);
    EXPECT_EQ(tlb.translate(Addr{0x10000}), CycleDelta{}); // mapped
}

TEST(MainMemoryTest, FixedLatency)
{
    MainMemory mem(CycleDelta{120}, CycleDelta{4});
    EXPECT_EQ(mem.access(Cycle{}), Cycle{120});
    EXPECT_EQ(mem.accesses(), 1u);
    EXPECT_EQ(mem.latency(), CycleDelta{120});
}

TEST(MainMemoryTest, IssueIntervalPipelinesAccesses)
{
    MainMemory mem(CycleDelta{120}, CycleDelta{4});
    EXPECT_EQ(mem.access(Cycle{}), Cycle{120});
    // Second access at the same cycle starts 4 cycles later.
    EXPECT_EQ(mem.access(Cycle{}), Cycle{124});
    EXPECT_EQ(mem.access(Cycle{}), Cycle{128});
    // A later access after the pipeline drains starts on time.
    EXPECT_EQ(mem.access(Cycle{1000}), Cycle{1120});
}

} // namespace
} // namespace psb
