/**
 * @file
 * Unit tests for the serial bus model: the paper's "one request (miss
 * or prefetch) at a time" L1-L2 channel and the prefetch gating rule.
 */

#include <gtest/gtest.h>

#include "memory/bus.hh"

namespace psb
{
namespace
{

TEST(BusTest, TransferCyclesRoundUp)
{
    Bus bus(8);
    EXPECT_EQ(bus.transferCycles(32), 4u);
    EXPECT_EQ(bus.transferCycles(33), 5u);
    EXPECT_EQ(bus.transferCycles(1), 1u);
    EXPECT_EQ(bus.transferCycles(0), 1u);
    Bus narrow(4);
    EXPECT_EQ(narrow.transferCycles(64), 16u);
}

TEST(BusTest, TransactionIsRequestBeatPlusTransfer)
{
    Bus bus(8); // paper's L1-L2 bus: 8 bytes/cycle
    BusSlot slot = bus.transact(10, 32);
    EXPECT_EQ(slot.start, 10u);
    EXPECT_EQ(slot.end, 10u + 1 + 4);
    EXPECT_EQ(bus.busyCycles(), 5u);
    EXPECT_EQ(bus.transfers(), 1u);
}

TEST(BusTest, BackToBackTransactionsQueueSerially)
{
    Bus bus(8);
    BusSlot a = bus.transact(0, 32);
    BusSlot b = bus.transact(0, 32);
    EXPECT_EQ(b.start, a.end);
    EXPECT_EQ(b.end, a.end + 5);
}

TEST(BusTest, FreeAtReflectsOccupancy)
{
    Bus bus(8);
    EXPECT_TRUE(bus.freeAt(0));
    BusSlot slot = bus.transact(0, 32); // busy [0, 5)
    EXPECT_FALSE(bus.freeAt(0));
    EXPECT_FALSE(bus.freeAt(slot.end - 1));
    EXPECT_TRUE(bus.freeAt(slot.end));
}

TEST(BusTest, IdleGapBetweenTransactions)
{
    Bus bus(8);
    bus.transact(0, 32); // [0, 5)
    EXPECT_TRUE(bus.freeAt(7));
    // A later transaction starts when requested, not at the frontier.
    BusSlot slot = bus.transact(20, 8);
    EXPECT_EQ(slot.start, 20u);
}

TEST(BusTest, BusyCyclesAccumulateAndReset)
{
    Bus bus(4); // paper's L2-memory bus: 4 bytes/cycle
    bus.transact(0, 64);  // 1 + 16
    bus.transact(0, 64);  // queued
    EXPECT_EQ(bus.busyCycles(), 34u);
    EXPECT_EQ(bus.transfers(), 2u);
    bus.resetStats();
    EXPECT_EQ(bus.busyCycles(), 0u);
    EXPECT_EQ(bus.transfers(), 0u);
    // Occupancy state survives the stats reset.
    EXPECT_FALSE(bus.freeAt(10));
}

TEST(BusTest, PrefetchGateScenario)
{
    // The paper's rule: prefetches issue only when the bus is free at
    // the start of the cycle. A demand miss occupies the bus and the
    // prefetcher must wait out the transaction.
    Bus bus(8);
    BusSlot miss = bus.transact(100, 32);
    for (Cycle c = miss.start; c < miss.end; ++c)
        EXPECT_FALSE(bus.freeAt(c));
    EXPECT_TRUE(bus.freeAt(miss.end));
}

} // namespace
} // namespace psb
