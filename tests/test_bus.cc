/**
 * @file
 * Unit tests for the serial bus model: the paper's "one request (miss
 * or prefetch) at a time" L1-L2 channel and the prefetch gating rule.
 */

#include <gtest/gtest.h>

#include "memory/bus.hh"

namespace psb
{
namespace
{

TEST(BusTest, TransferCyclesRoundUp)
{
    Bus bus(8);
    EXPECT_EQ(bus.transferCycles(32), CycleDelta(4));
    EXPECT_EQ(bus.transferCycles(33), CycleDelta(5));
    EXPECT_EQ(bus.transferCycles(1), CycleDelta(1));
    EXPECT_EQ(bus.transferCycles(0), CycleDelta(1));
    Bus narrow(4);
    EXPECT_EQ(narrow.transferCycles(64), CycleDelta(16));
}

TEST(BusTest, TransactionIsRequestBeatPlusTransfer)
{
    Bus bus(8); // paper's L1-L2 bus: 8 bytes/cycle
    BusSlot slot = bus.transact(Cycle{10}, 32);
    EXPECT_EQ(slot.start, Cycle{10});
    EXPECT_EQ(slot.end, Cycle{10 + 1 + 4});
    EXPECT_EQ(bus.busyCycles(), 5u);
    EXPECT_EQ(bus.transfers(), 1u);
}

TEST(BusTest, BackToBackTransactionsQueueSerially)
{
    Bus bus(8);
    BusSlot a = bus.transact(Cycle{}, 32);
    BusSlot b = bus.transact(Cycle{}, 32);
    EXPECT_EQ(b.start, a.end);
    EXPECT_EQ(b.end, a.end + CycleDelta(5));
}

TEST(BusTest, FreeAtReflectsOccupancy)
{
    Bus bus(8);
    EXPECT_TRUE(bus.freeAt(Cycle{}));
    BusSlot slot = bus.transact(Cycle{}, 32); // busy [0, 5)
    EXPECT_FALSE(bus.freeAt(Cycle{}));
    EXPECT_FALSE(bus.freeAt(slot.end - CycleDelta(1)));
    EXPECT_TRUE(bus.freeAt(slot.end));
}

TEST(BusTest, IdleGapBetweenTransactions)
{
    Bus bus(8);
    bus.transact(Cycle{}, 32); // [0, 5)
    EXPECT_TRUE(bus.freeAt(Cycle{7}));
    // A later transaction starts when requested, not at the frontier.
    BusSlot slot = bus.transact(Cycle{20}, 8);
    EXPECT_EQ(slot.start, Cycle{20});
}

TEST(BusTest, BusyCyclesAccumulateAndReset)
{
    Bus bus(4); // paper's L2-memory bus: 4 bytes/cycle
    bus.transact(Cycle{}, 64);  // 1 + 16
    bus.transact(Cycle{}, 64);  // queued
    EXPECT_EQ(bus.busyCycles(), 34u);
    EXPECT_EQ(bus.transfers(), 2u);
    bus.resetStats();
    EXPECT_EQ(bus.busyCycles(), 0u);
    EXPECT_EQ(bus.transfers(), 0u);
    // Occupancy state survives the stats reset.
    EXPECT_FALSE(bus.freeAt(Cycle{10}));
}

TEST(BusTest, PrefetchGateScenario)
{
    // The paper's rule: prefetches issue only when the bus is free at
    // the start of the cycle. A demand miss occupies the bus and the
    // prefetcher must wait out the transaction.
    Bus bus(8);
    BusSlot miss = bus.transact(Cycle{100}, 32);
    for (Cycle c = miss.start; c < miss.end; ++c)
        EXPECT_FALSE(bus.freeAt(c));
    EXPECT_TRUE(bus.freeAt(miss.end));
}

} // namespace
} // namespace psb
