/**
 * @file
 * Determinism regression tests: the whole simulator, run twice with
 * the same seed and configuration, must export byte-identical stats
 * JSON — the property the golden-stats harness depends on. Any
 * ordering dependence (hash iteration, uninitialised reads, pointer
 * keys) shows up here as a diff long before it corrupts a golden.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "sim/simulator.hh"
#include "util/trace.hh"
#include "workloads/workload.hh"

namespace psb
{
namespace
{

/** The seed workloads, matching PSB_GOLDEN_WORKLOADS in the harness. */
const char *const kWorkloads[] = {"health", "burg",   "deltablue",
                                  "gs",     "sis",    "turb3d"};

SimConfig
smallRegion()
{
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.warmupInstructions = 5000;
    cfg.maxInstructions = 20000;
    return cfg;
}

std::string
runOnce(const std::string &workload, uint64_t seed)
{
    auto trace = makeWorkload(workload, seed);
    Simulator sim(smallRegion(), *trace);
    sim.run();
    return sim.statsJson();
}

class DeterminismTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DeterminismTest, SameSeedProducesByteIdenticalStatsJson)
{
    const std::string workload = GetParam();
    std::string first = runOnce(workload, 1);
    std::string second = runOnce(workload, 1);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second) << workload << ": two identical runs"
                             << " exported different stats JSON";
}

INSTANTIATE_TEST_SUITE_P(SeedWorkloads, DeterminismTest,
                         ::testing::ValuesIn(kWorkloads),
                         [](const auto &pinfo) {
                             return std::string(pinfo.param);
                         });

TEST(DeterminismTest, DifferentSeedsProduceDifferentStats)
{
    // Sanity check that the byte-compare above is not vacuous: a
    // different workload seed must actually change the numbers.
    EXPECT_NE(runOnce("health", 1), runOnce("health", 2));
}

TEST(DeterminismTest, ComponentCountersReachTheStatsExport)
{
    // Runtime face of the R2 (stats-completeness) analyzer rule:
    // counters bumped inside owned components — the store-set
    // violation count and the differential Markov table's counters,
    // registered cross-TU through SfmPredictor accessors — must
    // actually appear in the exported JSON.
    std::string json = runOnce("health", 1);
    for (const char *key :
         {"\"core.store_sets.violations\"",
          "\"sfm_predictor.markov.updates\"",
          "\"sfm_predictor.markov.overflows\"",
          "\"sfm_predictor.markov.population\""}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << key << " missing from the stats JSON";
    }
}

/** Run with event tracing on; return (trace bytes, stats JSON). */
std::pair<std::string, std::string>
runTraced(const std::string &workload, uint64_t seed)
{
    std::string bad;
    auto mask = TraceManager::parseFlags("psb,sched", bad);
    EXPECT_TRUE(mask.has_value()) << bad;

    std::ostringstream trace_out;
    TraceManager::get().configure(*mask, TraceManager::Format::Jsonl,
                                  trace_out);
    auto trace = makeWorkload(workload, seed);
    Simulator sim(smallRegion(), *trace);
    sim.run();
    std::string stats = sim.statsJson();
    TraceManager::get().reset();
    return {trace_out.str(), stats};
}

TEST(DeterminismTest, TracedRunsProduceByteIdenticalTraces)
{
    auto first = runTraced("health", 1);
    auto second = runTraced("health", 1);
    ASSERT_FALSE(first.first.empty())
        << "traced run emitted no events; tracing is not wired up";
    EXPECT_EQ(first.first, second.first)
        << "two identical traced runs diverged — the event trace leaks "
        << "nondeterministic state (wall clock, pointers, hash order)";
    EXPECT_EQ(first.second, second.second);
}

TEST(DeterminismTest, TracingDoesNotPerturbStats)
{
    // The zero-observer-effect contract: a traced run must export the
    // same stats JSON as an untraced run, byte for byte.
    std::string untraced = runOnce("health", 1);
    auto traced = runTraced("health", 1);
    EXPECT_EQ(traced.second, untraced)
        << "enabling --trace changed simulation statistics";
}

TEST(DeterminismTest, JsonStableAcrossRepeatedExport)
{
    auto trace = makeWorkload("gs", 1);
    Simulator sim(smallRegion(), *trace);
    sim.run();
    std::string one = sim.statsJson();
    std::string two = sim.statsJson();
    EXPECT_EQ(one, two);
}

} // namespace
} // namespace psb
