/**
 * @file
 * Determinism regression tests: the whole simulator, run twice with
 * the same seed and configuration, must export byte-identical stats
 * JSON — the property the golden-stats harness depends on. Any
 * ordering dependence (hash iteration, uninitialised reads, pointer
 * keys) shows up here as a diff long before it corrupts a golden.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace psb
{
namespace
{

/** The seed workloads, matching PSB_GOLDEN_WORKLOADS in the harness. */
const char *const kWorkloads[] = {"health", "burg",   "deltablue",
                                  "gs",     "sis",    "turb3d"};

SimConfig
smallRegion()
{
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.warmupInstructions = 5000;
    cfg.maxInstructions = 20000;
    return cfg;
}

std::string
runOnce(const std::string &workload, uint64_t seed)
{
    auto trace = makeWorkload(workload, seed);
    Simulator sim(smallRegion(), *trace);
    sim.run();
    return sim.statsJson();
}

class DeterminismTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DeterminismTest, SameSeedProducesByteIdenticalStatsJson)
{
    const std::string workload = GetParam();
    std::string first = runOnce(workload, 1);
    std::string second = runOnce(workload, 1);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second) << workload << ": two identical runs"
                             << " exported different stats JSON";
}

INSTANTIATE_TEST_SUITE_P(SeedWorkloads, DeterminismTest,
                         ::testing::ValuesIn(kWorkloads),
                         [](const auto &pinfo) {
                             return std::string(pinfo.param);
                         });

TEST(DeterminismTest, DifferentSeedsProduceDifferentStats)
{
    // Sanity check that the byte-compare above is not vacuous: a
    // different workload seed must actually change the numbers.
    EXPECT_NE(runOnce("health", 1), runOnce("health", 2));
}

TEST(DeterminismTest, JsonStableAcrossRepeatedExport)
{
    auto trace = makeWorkload("gs", 1);
    Simulator sim(smallRegion(), *trace);
    sim.run();
    std::string one = sim.statsJson();
    std::string two = sim.statsJson();
    EXPECT_EQ(one, two);
}

} // namespace
} // namespace psb
