/**
 * @file
 * Unit tests for stream-buffer arbitration: round-robin fairness and
 * priority-with-LRU-tie-break scheduling (paper §4.4).
 */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/scheduler.hh"

namespace psb
{
namespace
{

StreamBufferFile
makeFile(std::vector<uint32_t> priorities)
{
    StreamBufferConfig cfg;
    cfg.numBuffers = unsigned(priorities.size());
    StreamBufferFile file(cfg);
    for (unsigned b = 0; b < file.numBuffers(); ++b) {
        file.buffer(b).allocateStream(StreamState{}, priorities[b]);
        file.buffer(b).lastHitStamp = file.nextStamp();
    }
    return file;
}

TEST(SchedulerTest, RoundRobinRotatesThroughCandidates)
{
    auto file = makeFile({0, 0, 0, 0});
    BufferScheduler sched(SchedPolicy::RoundRobin, 4);
    auto all = [](unsigned) { return true; };
    auto stamp = [](unsigned) { return uint64_t(0); };
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        order.push_back(sched.pick(file, all, stamp));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0, 1, 2, 3, 0}));
}

TEST(SchedulerTest, RoundRobinSkipsNonCandidates)
{
    auto file = makeFile({0, 0, 0, 0});
    BufferScheduler sched(SchedPolicy::RoundRobin, 4);
    auto odd = [](unsigned b) { return b % 2 == 1; };
    auto stamp = [](unsigned) { return uint64_t(0); };
    EXPECT_EQ(sched.pick(file, odd, stamp), 1);
    EXPECT_EQ(sched.pick(file, odd, stamp), 3);
    EXPECT_EQ(sched.pick(file, odd, stamp), 1);
}

TEST(SchedulerTest, NoCandidateReturnsMinusOne)
{
    auto file = makeFile({0, 0});
    BufferScheduler sched(SchedPolicy::RoundRobin, 2);
    auto none = [](unsigned) { return false; };
    auto stamp = [](unsigned) { return uint64_t(0); };
    EXPECT_EQ(sched.pick(file, none, stamp), -1);
}

TEST(SchedulerTest, PriorityPicksHighestCounter)
{
    auto file = makeFile({2, 9, 4, 7});
    BufferScheduler sched(SchedPolicy::Priority, 4);
    auto all = [](unsigned) { return true; };
    auto stamp = [](unsigned) { return uint64_t(0); };
    EXPECT_EQ(sched.pick(file, all, stamp), 1);
    // Deterministic: repeats while priorities are unchanged.
    EXPECT_EQ(sched.pick(file, all, stamp), 1);
}

TEST(SchedulerTest, PriorityRespectsCandidateFilter)
{
    auto file = makeFile({2, 9, 4, 7});
    BufferScheduler sched(SchedPolicy::Priority, 4);
    auto not1 = [](unsigned b) { return b != 1; };
    auto stamp = [](unsigned) { return uint64_t(0); };
    EXPECT_EQ(sched.pick(file, not1, stamp), 3);
}

TEST(SchedulerTest, PriorityTieBrokenByLruStamp)
{
    auto file = makeFile({5, 5, 5, 5});
    BufferScheduler sched(SchedPolicy::Priority, 4);
    auto all = [](unsigned) { return true; };
    std::vector<uint64_t> stamps = {40, 10, 30, 20};
    auto stamp = [&](unsigned b) { return stamps[b]; };
    EXPECT_EQ(sched.pick(file, all, stamp), 1); // least recently used
    stamps[1] = 100;
    EXPECT_EQ(sched.pick(file, all, stamp), 3);
}

TEST(SchedulerTest, PolicyNames)
{
    EXPECT_STREQ(schedPolicyName(SchedPolicy::RoundRobin), "RR");
    EXPECT_STREQ(schedPolicyName(SchedPolicy::Priority), "Priority");
}

} // namespace
} // namespace psb
