/**
 * @file
 * Differential regression suite over the workload fuzzer: 32 fixed
 * fuzz seeds, each run under every prefetcher backend, and the
 * (accuracy, coverage, buffer-hit) triple compared token-for-token
 * against the checked-in tests/fuzz/expected.json. Any behavioural
 * drift in any backend shows up as a precise (seed, backend, metric)
 * diff instead of a vague golden mismatch.
 *
 * After an intentional behaviour change regenerate with:
 *   cmake --build build --target update-fuzz-expected
 * (which re-runs this binary with PSB_UPDATE_FUZZ_EXPECTED=1).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "util/json.hh"
#include "util/stats_json.hh"
#include "workloads/fuzz_workload.hh"

namespace psb
{
namespace
{

#ifndef PSB_FUZZ_EXPECTED_PATH
#error "build must define PSB_FUZZ_EXPECTED_PATH"
#endif

/** Fixed regardless of PSB_FUZZ_SEEDS: the corpus is checked in. */
constexpr uint64_t kDifferentialSeeds = 32;

const PrefetcherKind kAllKinds[] = {
    PrefetcherKind::None,       PrefetcherKind::PcStride,
    PrefetcherKind::Psb,        PrefetcherKind::Sequential,
    PrefetcherKind::NextLine,   PrefetcherKind::MarkovDemand,
    PrefetcherKind::MinDelta,
};

/** The per-(seed, backend) regression triple, as exact tokens. */
struct Triple
{
    std::string accuracy;
    std::string coverage;
    std::string bufferHits;
};

Triple
measure(PrefetcherKind kind, uint64_t seed)
{
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.prefetcher = kind;
    cfg.warmupInstructions = 1500;
    cfg.maxInstructions = 8000;
    FuzzWorkload trace(FuzzSpec::fromSeed(seed));
    Simulator sim(cfg, trace);
    sim.run();

    std::map<std::string, ParsedStat> stats;
    std::string error;
    EXPECT_TRUE(parseStatsJson(sim.statsJson(), stats, error)) << error;

    auto raw = [&](const std::string &key) {
        auto it = stats.find(key);
        EXPECT_NE(it, stats.end()) << key;
        return it == stats.end() ? std::string("0") : it->second.raw;
    };
    auto value = [&](const std::string &key) {
        auto it = stats.find(key);
        return it == stats.end() ? 0.0 : it->second.value;
    };

    Triple t;
    t.accuracy = raw("prefetch.attrib.accuracy");
    double used = value("prefetch.attrib.outcome.used_timely") +
                  value("prefetch.attrib.outcome.used_late");
    double denom = used + value("l1d.misses");
    t.coverage = formatStatReal(denom > 0 ? used / denom : 0.0);
    t.bufferHits = raw("core.sb_serviced");
    return t;
}

std::string
tableKey(uint64_t seed, PrefetcherKind kind)
{
    return "seed=" + std::to_string(seed) + "/" +
           prefetcherKindName(kind);
}

/** Deterministic emission: seeds ascending, backends in kind order. */
std::string
emitTable(const std::map<std::string, Triple> &table)
{
    std::string out = "{\n";
    bool first = true;
    for (uint64_t seed = 1; seed <= kDifferentialSeeds; ++seed) {
        for (PrefetcherKind kind : kAllKinds) {
            auto it = table.find(tableKey(seed, kind));
            if (it == table.end())
                continue;
            if (!first)
                out += ",\n";
            first = false;
            out += "  \"" + it->first + "\": {\"accuracy\": " +
                   it->second.accuracy + ", \"coverage\": " +
                   it->second.coverage + ", \"buffer-hits\": " +
                   it->second.bufferHits + "}";
        }
    }
    out += "\n}\n";
    return out;
}

TEST(FuzzDifferential, TriplesMatchCheckedInExpectations)
{
    std::map<std::string, Triple> actual;
    for (uint64_t seed = 1; seed <= kDifferentialSeeds; ++seed)
        for (PrefetcherKind kind : kAllKinds)
            actual[tableKey(seed, kind)] = measure(kind, seed);
    ASSERT_FALSE(::testing::Test::HasNonfatalFailure())
        << "stats collection itself failed; not comparing triples";

    const std::string path = PSB_FUZZ_EXPECTED_PATH;
    if (std::getenv("PSB_UPDATE_FUZZ_EXPECTED")) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << emitTable(actual);
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; run the update-fuzz-expected target";
    std::ostringstream text;
    text << in.rdbuf();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(text.str(), doc, error)) << error;
    ASSERT_TRUE(doc.isObject());

    // Exact cell-by-cell comparison, both directions: a changed
    // value, a vanished cell, and a stale expected row all fail.
    std::map<std::string, Triple> expected;
    for (const auto &[key, cell] : doc.object) {
        ASSERT_TRUE(cell.isObject()) << key;
        Triple t;
        for (const auto &[metric, member] : cell.object) {
            ASSERT_TRUE(member.isNumber()) << key << "." << metric;
            if (metric == "accuracy")
                t.accuracy = member.raw;
            else if (metric == "coverage")
                t.coverage = member.raw;
            else if (metric == "buffer-hits")
                t.bufferHits = member.raw;
            else
                FAIL() << "unknown metric " << metric << " in " << key;
        }
        expected[key] = t;
    }

    for (const auto &[key, want] : expected)
        EXPECT_TRUE(actual.count(key)) << "stale expected row " << key;
    for (const auto &[key, got] : actual) {
        auto it = expected.find(key);
        if (it == expected.end()) {
            ADD_FAILURE() << "no expected row for " << key
                          << "; run update-fuzz-expected";
            continue;
        }
        EXPECT_EQ(got.accuracy, it->second.accuracy)
            << key << " accuracy";
        EXPECT_EQ(got.coverage, it->second.coverage)
            << key << " coverage";
        EXPECT_EQ(got.bufferHits, it->second.bufferHits)
            << key << " buffer-hits";
    }

    // Regenerating must be byte-stable too: the emitter and the
    // checked-in file share one canonical spelling.
    if (!::testing::Test::HasNonfatalFailure()) {
        EXPECT_EQ(emitTable(actual), text.str());
    }
}

} // namespace
} // namespace psb
