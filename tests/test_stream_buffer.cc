/**
 * @file
 * Unit tests for the stream-buffer storage: entries, associative
 * lookup across buffers, LRU/priority victim selection.
 */

#include <gtest/gtest.h>

#include "prefetch/stream_buffer.hh"

namespace psb
{
namespace
{

StreamBufferConfig
paperConfig()
{
    return StreamBufferConfig{}; // 8 buffers x 4 entries, as evaluated
}

TEST(StreamBufferTest, AllocationResetsEntries)
{
    StreamBuffer buf(4, 12);
    EXPECT_FALSE(buf.allocated());
    buf.fillEntry(0, BlockAddr{0x1000});
    StreamState s;
    s.loadPc = Addr{0x400010};
    buf.allocateStream(s, 5);
    EXPECT_TRUE(buf.allocated());
    EXPECT_EQ(buf.priority.value(), 5u);
    EXPECT_EQ(buf.state.loadPc, Addr{0x400010});
    for (const auto &e : buf.entries())
        EXPECT_FALSE(e.valid);
}

TEST(StreamBufferTest, FindFreeAndPendingEntries)
{
    StreamBuffer buf(4, 12);
    buf.allocateStream(StreamState{}, 0);
    EXPECT_EQ(buf.freeEntry(), 0);
    EXPECT_EQ(buf.pendingPrefetchEntry(), -1);

    buf.fillEntry(0, BlockAddr{0x1000});
    EXPECT_EQ(buf.freeEntry(), 1);
    EXPECT_EQ(buf.pendingPrefetchEntry(), 0);
    EXPECT_EQ(buf.findEntry(BlockAddr{0x1000}), 0);
    EXPECT_EQ(buf.findEntry(BlockAddr{0x2000}), -1);

    buf.markPrefetched(0, Cycle{10});
    EXPECT_EQ(buf.pendingPrefetchEntry(), -1);
    EXPECT_TRUE(buf.entries()[0].prefetched);
    EXPECT_EQ(buf.entries()[0].ready, Cycle{10});

    buf.clearEntry(0);
    EXPECT_EQ(buf.findEntry(BlockAddr{0x1000}), -1);
    EXPECT_EQ(buf.freeEntry(), 0);
}

TEST(StreamBufferFileTest, LookupSearchesAllBuffersAllEntries)
{
    StreamBufferFile file(paperConfig());
    // Nothing allocated: no hits.
    EXPECT_FALSE(file.findBlock(BlockAddr{0x1000}).has_value());

    file.buffer(3).allocateStream(StreamState{}, 0);
    file.buffer(3).fillEntry(2, BlockAddr{0x1000});
    auto hit = file.findBlock(BlockAddr{0x1000});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->buf, 3u);
    EXPECT_EQ(hit->entry, 2);
    EXPECT_TRUE(file.contains(BlockAddr{0x1000}));
    EXPECT_FALSE(file.contains(BlockAddr{0x2000}));
}

TEST(StreamBufferFileTest, UnallocatedBuffersInvisibleToLookup)
{
    StreamBufferFile file(paperConfig());
    file.buffer(0).fillEntry(0, BlockAddr{0x1000});
    // Buffer 0 not allocated: its stale entries must not hit.
    EXPECT_FALSE(file.findBlock(BlockAddr{0x1000}).has_value());
}

TEST(StreamBufferFileTest, LruBufferPrefersUnallocated)
{
    StreamBufferFile file(paperConfig());
    file.buffer(0).allocateStream(StreamState{}, 0);
    file.buffer(0).lastHitStamp = file.nextStamp();
    EXPECT_EQ(file.lruBuffer(), 1u); // first unallocated
}

TEST(StreamBufferFileTest, LruBufferPicksOldestAllocation)
{
    StreamBufferFile file(paperConfig());
    for (unsigned b = 0; b < file.numBuffers(); ++b) {
        file.buffer(b).allocateStream(StreamState{}, 0);
        file.buffer(b).allocStamp = file.nextStamp();
    }
    // Hit-blind by design: recent hits do not protect a buffer from
    // the two-miss policy's victim choice (only confidence does).
    file.buffer(0).lastHitStamp = file.nextStamp();
    EXPECT_EQ(file.lruBuffer(), 0u);
    file.buffer(0).allocStamp = file.nextStamp();
    EXPECT_EQ(file.lruBuffer(), 1u);
}

TEST(StreamBufferFileTest, MinPriorityBuffer)
{
    StreamBufferFile file(paperConfig());
    for (unsigned b = 0; b < file.numBuffers(); ++b) {
        file.buffer(b).allocateStream(StreamState{}, 5);
        file.buffer(b).lastHitStamp = file.nextStamp();
    }
    file.buffer(6).priority.set(1);
    EXPECT_EQ(file.minPriorityBuffer(), 6u);
    // Unallocated buffers count as priority zero.
    file.buffer(4).deallocate();
    EXPECT_EQ(file.minPriorityBuffer(), 4u);
}

TEST(StreamBufferFileTest, MinPriorityTieBrokenByOldestHit)
{
    StreamBufferFile file(paperConfig());
    for (unsigned b = 0; b < file.numBuffers(); ++b) {
        file.buffer(b).allocateStream(StreamState{}, 3);
        file.buffer(b).lastHitStamp = file.nextStamp();
    }
    file.buffer(5).priority.set(1);
    file.buffer(7).priority.set(1);
    // 5 was stamped earlier than 7.
    EXPECT_EQ(file.minPriorityBuffer(), 5u);
}

TEST(StreamBufferFileTest, BlockOf)
{
    StreamBufferFile file(paperConfig());
    // 32-byte lines: byte 0x1234567f lives in block 0x12345660 / 32.
    EXPECT_EQ(file.blockOf(Addr{0x1234567f}), BlockAddr{0x91a2b3});
    EXPECT_EQ(file.blockOf(Addr{0x1234567f}).toByte(file.lineBits()),
              Addr{0x12345660});
}

TEST(StreamBufferFileTest, ConfigurableGeometry)
{
    StreamBufferConfig cfg;
    cfg.numBuffers = 2;
    cfg.entriesPerBuffer = 1;
    StreamBufferFile file(cfg);
    EXPECT_EQ(file.numBuffers(), 2u);
    EXPECT_EQ(file.buffer(0).entries().size(), 1u);
}

} // namespace
} // namespace psb
