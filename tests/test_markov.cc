/**
 * @file
 * Unit and property tests for the absolute and differential Markov
 * tables, including the Figure 4 delta-width behaviour.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "predictors/diff_markov_table.hh"
#include "predictors/markov_table.hh"
#include "util/bitfield.hh"
#include "util/random.hh"

namespace psb
{
namespace
{

/** Block number of a byte address at the default 32-byte block size. */
BlockAddr
blk(uint64_t byte_addr)
{
    return Addr(byte_addr).toBlock(5);
}

TEST(MarkovTableTest, RecordsAndPredictsTransition)
{
    MarkovTable t;
    EXPECT_FALSE(t.lookup(blk(0x1000)).has_value());
    t.update(blk(0x1000), blk(0x9040));
    auto next = t.lookup(blk(0x1000));
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, blk(0x9040));
    EXPECT_EQ(t.population(), 1u);
}

TEST(MarkovTableTest, BlockAlignment)
{
    MarkovTable t; // 32B blocks
    // Byte addresses inside one block convert to the same block
    // number, so sub-block offsets are invisible to the table.
    t.update(blk(0x1004), blk(0x9047));
    auto next = t.lookup(blk(0x101f)); // same source block
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, blk(0x9040)); // block-aligned target
}

TEST(MarkovTableTest, LatestTransitionWins)
{
    MarkovTable t;
    t.update(blk(0x1000), blk(0x2000));
    t.update(blk(0x1000), blk(0x3000));
    EXPECT_EQ(*t.lookup(blk(0x1000)), blk(0x3000));
    EXPECT_EQ(t.population(), 1u);
}

TEST(MarkovTableTest, IndexConflictEvicts)
{
    MarkovTableConfig cfg;
    cfg.entries = 16;
    cfg.blockBytes = 32;
    MarkovTable t(cfg);
    BlockAddr a = blk(0x1000);
    BlockAddr b = blk(0x1000 + 16 * 32); // same index, different tag
    t.update(a, blk(0x2000));
    t.update(b, blk(0x3000));
    EXPECT_FALSE(t.lookup(a).has_value()); // clobbered
    EXPECT_EQ(*t.lookup(b), blk(0x3000));
}

TEST(MarkovTableTest, PartialTagRejectsAliases)
{
    MarkovTableConfig cfg;
    cfg.entries = 16;
    cfg.tagBits = 4;
    MarkovTable t(cfg);
    t.update(blk(0x1000), blk(0x2000));
    // Same index, same 4-bit partial tag => false hit by design.
    // Verify a *different* partial tag misses.
    BlockAddr different_tag = blk(0x1000 + 16 * 32 * 1); // tag bits
                                                         // change by 1
    EXPECT_FALSE(t.lookup(different_tag).has_value());
}

TEST(DiffMarkovTest, StoresBlockDeltas)
{
    DiffMarkovTable t; // 16-bit deltas, 32B blocks
    EXPECT_TRUE(t.update(blk(0x1000), blk(0x1040))); // +2 blocks
    EXPECT_EQ(*t.lookup(blk(0x1000)), blk(0x1040));
    EXPECT_TRUE(t.update(blk(0x5000), blk(0x4fc0))); // -2 blocks
    EXPECT_EQ(*t.lookup(blk(0x5000)), blk(0x4fc0));
    EXPECT_EQ(t.updates(), 2u);
}

TEST(DiffMarkovTest, DeltaAddedToIndexingAddressNotStoredBase)
{
    // The paper's space trick: the table stores only the delta; the
    // predicted address is the indexing address plus the delta. Verify
    // with two sources sharing an entry-distance pattern.
    DiffMarkovTable t;
    t.update(blk(0x1000), blk(0x1040));
    // Look up from the block itself.
    EXPECT_EQ(*t.lookup(blk(0x1010)), blk(0x1040)); // same source block
}

TEST(DiffMarkovTest, OverflowingDeltaRejected)
{
    DiffMarkovConfig cfg;
    cfg.deltaBits = 8; // +/-127 blocks of 32B
    DiffMarkovTable t(cfg);
    EXPECT_TRUE(t.update(blk(0x0), blk(127 * 32)));
    EXPECT_FALSE(t.update(blk(0x100000), blk(0x100000 + 128 * 32)));
    EXPECT_EQ(t.overflows(), 1u);
    // The rejected transition leaves no trace.
    EXPECT_FALSE(t.lookup(blk(0x100000)).has_value());
}

TEST(DiffMarkovTest, DataBytesMatchesPaperSizing)
{
    // Paper: 2K entries x 16 bits = 4 KB of data storage.
    DiffMarkovTable t;
    EXPECT_EQ(t.dataBytes(), 4096u);
}

class DeltaWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DeltaWidthTest, RepresentabilityMatchesFitsSigned)
{
    // Property: a transition is recorded iff its block delta fits the
    // configured signed width — the mechanism behind Figure 4.
    unsigned bits = GetParam();
    DiffMarkovConfig cfg;
    cfg.deltaBits = bits;
    cfg.blockBytes = 32;
    DiffMarkovTable t(cfg);

    const int64_t deltas[] = {0, 1, -1, 100, -100, 30000, -30000,
                              70000, -70000, (1 << 20), -(1 << 20)};
    BlockAddr from{uint64_t(1) << 27}; // byte 2^32 at 32B blocks
    for (int64_t d : deltas) {
        BlockAddr to{uint64_t(int64_t(from.raw()) + d)};
        bool stored = t.update(from, to);
        EXPECT_EQ(stored, fitsSigned(d, bits)) << "delta " << d;
        if (stored) {
            EXPECT_EQ(*t.lookup(from), to);
        }
        // Avoid index reuse between cases (64 KB of blocks apart).
        from = BlockAddr{from.raw() + 2048};
    }
}

INSTANTIATE_TEST_SUITE_P(Fig4Widths, DeltaWidthTest,
                         ::testing::Values(8u, 10u, 12u, 14u, 16u, 18u,
                                           20u, 24u, 32u));

TEST(DiffMarkovTest, WiderTablesCaptureStrictlyMore)
{
    // Monotonicity property across the Figure 4 sweep.
    Xorshift64 rng(5);
    std::vector<std::pair<BlockAddr, BlockAddr>> transitions;
    BlockAddr cur = blk(0x10000000);
    for (int i = 0; i < 2000; ++i) {
        BlockAddr next = blk(0x10000000 + (rng.next() % (1u << 22)));
        transitions.push_back({cur, next});
        cur = next;
    }
    uint64_t prev_captured = 0;
    for (unsigned bits : {8u, 12u, 16u, 24u}) {
        DiffMarkovConfig cfg;
        cfg.deltaBits = bits;
        DiffMarkovTable t(cfg);
        uint64_t captured = 0;
        for (auto &[from, to] : transitions)
            captured += t.update(from, to) ? 1 : 0;
        EXPECT_GE(captured, prev_captured);
        prev_captured = captured;
    }
    EXPECT_EQ(prev_captured, 2000u); // 24 bits captures everything here
}

} // namespace
} // namespace psb
