#!/bin/sh
# End-to-end smoke check for the event-tracing layer.
#
#   check_trace.sh PSB_SIM PYTHON PSB_TRACE_PY
#
# Runs the simulator twice with tracing and interval stats enabled and
# checks the full observability contract:
#
#  1. the JSONL trace passes tools/psb_trace.py validation (schema,
#     monotonic cycles, balanced stream-buffer lifetimes);
#  2. the Chrome trace-event export also validates and is well-formed;
#  3. per-interval stat deltas telescope to the final --stats-json
#     counters;
#  4. both runs are byte-identical (trace, intervals, and stats) — the
#     determinism contract extends to every observability output.
set -eu

PSB_SIM=$1
PYTHON=$2
PSB_TRACE_PY=$3

ARGS="--workload health --seed 1 --insts 20000 --warmup 5000"

DIR=$(mktemp -d "${TMPDIR:-/tmp}/trace_smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT

for run in 1 2; do
    "$PSB_SIM" $ARGS \
        --trace all --trace-format jsonl \
        --trace-out "$DIR/trace$run.jsonl" \
        --interval-stats 5000 --interval-out "$DIR/intervals$run.jsonl" \
        --stats-json "$DIR/stats$run.json" > /dev/null
done
"$PSB_SIM" $ARGS --trace all --trace-format chrome \
    --trace-out "$DIR/trace.chrome.json" > /dev/null

"$PYTHON" "$PSB_TRACE_PY" "$DIR/trace1.jsonl" --quiet
"$PYTHON" "$PSB_TRACE_PY" "$DIR/trace.chrome.json" --format chrome \
    --quiet
"$PYTHON" "$PSB_TRACE_PY" --intervals "$DIR/intervals1.jsonl" \
    --stats "$DIR/stats1.json" --quiet

cmp "$DIR/trace1.jsonl" "$DIR/trace2.jsonl" || {
    echo "check_trace.sh: traced runs are not byte-identical" >&2
    exit 1
}
cmp "$DIR/intervals1.jsonl" "$DIR/intervals2.jsonl" || {
    echo "check_trace.sh: interval stats are not byte-identical" >&2
    exit 1
}
cmp "$DIR/stats1.json" "$DIR/stats2.json" || {
    echo "check_trace.sh: stats JSON diverged across traced runs" >&2
    exit 1
}
echo "check_trace.sh: trace, intervals, and stats all validate"
