/**
 * @file
 * End-to-end behavioural tests: the paper's headline claims on small
 * scripted traces, where ground truth is unambiguous.
 *
 *  - PSB follows a pointer chain and speeds it up; stride buffers
 *    cannot (the paper's Figure 5 story in miniature);
 *  - both follow a strided stream (the turb3d story);
 *  - confidence allocation resists stream thrashing where two-miss
 *    allocation churns (the sis story);
 *  - predictor ablation: SFM >= stride-only on pointer streams.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/ooo_core.hh"
#include "memory/hierarchy.hh"
#include "core/psb.hh"
#include "predictors/sfm_predictor.hh"
#include "prefetch/stride_stream_buffers.hh"
#include "trace/synthetic_heap.hh"
#include "trace/trace_builder.hh"
#include "util/random.hh"

namespace psb
{
namespace
{

/** Endless pointer chase over a fixed scattered node list. */
class ChaseTrace : public TraceBuilder
{
  public:
    ChaseTrace(unsigned nodes, unsigned scatter, uint64_t seed = 3)
    {
        SyntheticHeap heap(Addr{0x10000000}, scatter, seed);
        for (unsigned i = 0; i < nodes; ++i)
            _nodes.push_back(heap.alloc(48, 32));
    }

  protected:
    bool
    step() override
    {
        emitLoad(Addr{0x400000}, 1, _nodes[_pos], 1);
        emitAlu(Addr{0x400004}, 2, 1);
        emitAlu(Addr{0x400008}, 2, 2);
        emitBranch(Addr{0x40000c}, _pos + 1 < _nodes.size(),
                   Addr{0x400000}, 2);
        _pos = (_pos + 1) % _nodes.size();
        return true;
    }

  private:
    std::vector<Addr> _nodes;
    size_t _pos = 0;
};

/** Endless strided sweep. */
class StrideTrace : public TraceBuilder
{
  public:
    explicit StrideTrace(uint64_t footprint = 512 * 1024,
                         int64_t stride = 64)
        : _footprint(footprint), _stride(stride)
    {}

  protected:
    bool
    step() override
    {
        emitLoad(Addr{0x400000}, 1, Addr(0x20000000 + _off), 2);
        emitAlu(Addr{0x400004}, 2, 1);
        emitAlu(Addr{0x400008}, 2, 2);
        emitBranch(Addr{0x40000c}, true, Addr{0x400000}, 2);
        _off = uint64_t(int64_t(_off) + _stride) % _footprint;
        return true;
    }

  private:
    uint64_t _footprint;
    int64_t _stride;
    uint64_t _off = 0;
};

/**
 * Hot/cold stream mix, the stream-thrashing stressor: a few hot
 * stride streams that miss every few loads (and therefore hit their
 * buffers quickly), plus many cold streams whose allocation requests
 * keep trying to steal buffers. Naive two-miss allocation lets the
 * cold streams evict the hot ones; confidence allocation protects
 * buffers that are getting hits (paper §6, the sis discussion).
 */
class ManyStreamsTrace : public TraceBuilder
{
  public:
    ManyStreamsTrace(unsigned hot, unsigned cold)
        : _hotCursors(hot, 0), _coldCursors(cold, 0)
    {}

  protected:
    bool
    step() override
    {
        bool is_cold = (_step % 5 == 4);
        unsigned s;
        Addr base, pc;
        uint64_t *cursor;
        if (is_cold) {
            s = unsigned((_step / 5) % _coldCursors.size());
            base = Addr(0x30000000 + uint64_t(s) * 0x100000);
            pc = Addr(0x500000 + uint64_t(s) * 0x44);
            cursor = &_coldCursors[s];
        } else {
            s = unsigned(_step % _hotCursors.size());
            base = Addr(0x20000000 + uint64_t(s) * 0x100000);
            pc = Addr(0x400000 + uint64_t(s) * 0x44);
            cursor = &_hotCursors[s];
        }
        ++_step;
        emitLoad(pc, 1, base + *cursor, 2);
        emitAlu(pc + 4, 2, 1);
        emitBranch(pc + 8, true, pc, 2);
        *cursor = (*cursor + 32) % (256 * 1024);
        return true;
    }

  private:
    std::vector<uint64_t> _hotCursors;
    std::vector<uint64_t> _coldCursors;
    uint64_t _step = 0;
};

struct RunResult
{
    double ipc;
    double accuracy;
    uint64_t sbServiced;
    uint64_t allocations;
    uint64_t prefetchesIssued;
};

RunResult
run(TraceBuilder &trace, Prefetcher &pf, MemoryHierarchy &hier,
    uint64_t instructions = 120000)
{
    CoreConfig cfg;
    OoOCore core(cfg, hier, pf, trace);
    Cycle now{};
    while (core.stats().instructions < instructions / 2) {
        core.tick(now);
        pf.tick(now);
        ++now;
    }
    core.resetStats();
    pf.resetStats();
    while (core.stats().instructions < instructions) {
        core.tick(now);
        pf.tick(now);
        ++now;
    }
    return RunResult{core.stats().ipc(), pf.stats().accuracy(),
                     core.stats().sbServiced, pf.stats().allocations,
                     pf.stats().prefetchesIssued};
}

PsbConfig
psbConfig(AllocPolicy alloc, SchedPolicy sched)
{
    PsbConfig cfg;
    cfg.alloc = alloc;
    cfg.sched = sched;
    return cfg;
}

TEST(IntegrationTest, PsbFollowsPointerChainStrideBuffersCannot)
{
    // 900 scattered nodes: beyond the L1, within the Markov table.
    double base_ipc, psb_ipc, stride_ipc;
    {
        ChaseTrace t(900, 64);
        MemoryHierarchy hier({});
        NullPrefetcher pf;
        base_ipc = run(t, pf, hier).ipc;
    }
    {
        ChaseTrace t(900, 64);
        MemoryHierarchy hier({});
        SfmPredictor sfm;
        PredictorDirectedStreamBuffers pf(
            psbConfig(AllocPolicy::Confidence, SchedPolicy::Priority),
            sfm, hier);
        RunResult r = run(t, pf, hier);
        psb_ipc = r.ipc;
        EXPECT_GT(r.accuracy, 0.12);
        EXPECT_GT(r.sbServiced, 1000u);
    }
    {
        ChaseTrace t(900, 64);
        MemoryHierarchy hier({});
        StrideStreamBuffers pf({}, {}, hier);
        stride_ipc = run(t, pf, hier).ipc;
    }
    // The paper's headline claim: PSB speeds up the pointer chase.
    EXPECT_GT(psb_ipc, base_ipc * 1.08);
    // Stride buffers gain little to nothing here.
    EXPECT_GT(psb_ipc, stride_ipc * 1.05);
}

TEST(IntegrationTest, BothFollowStridedStreams)
{
    double base_ipc, psb_ipc, stride_ipc;
    {
        StrideTrace t;
        MemoryHierarchy hier({});
        NullPrefetcher pf;
        base_ipc = run(t, pf, hier).ipc;
    }
    {
        StrideTrace t;
        MemoryHierarchy hier({});
        SfmPredictor sfm;
        PredictorDirectedStreamBuffers pf(
            psbConfig(AllocPolicy::Confidence, SchedPolicy::Priority),
            sfm, hier);
        psb_ipc = run(t, pf, hier).ipc;
    }
    {
        StrideTrace t;
        MemoryHierarchy hier({});
        StrideStreamBuffers pf({}, {}, hier);
        stride_ipc = run(t, pf, hier).ipc;
    }
    EXPECT_GT(stride_ipc, base_ipc * 1.15);
    EXPECT_GT(psb_ipc, base_ipc * 1.15);
    // And PSB is in PCStride's neighbourhood on FORTRAN-like code
    // (paper §6; the Markov table also learns line transitions, so
    // PSB may run slightly ahead).
    EXPECT_NEAR(psb_ipc / stride_ipc, 1.1, 0.4);
}

TEST(IntegrationTest, NegativeStrideStreamsFollowed)
{
    double base_ipc, psb_ipc;
    {
        StrideTrace t(512 * 1024, -64);
        MemoryHierarchy hier({});
        NullPrefetcher pf;
        base_ipc = run(t, pf, hier).ipc;
    }
    {
        StrideTrace t(512 * 1024, -64);
        MemoryHierarchy hier({});
        SfmPredictor sfm;
        PredictorDirectedStreamBuffers pf(
            psbConfig(AllocPolicy::Confidence, SchedPolicy::Priority),
            sfm, hier);
        psb_ipc = run(t, pf, hier).ipc;
    }
    EXPECT_GT(psb_ipc, base_ipc * 1.1);
}

TEST(IntegrationTest, ConfidenceAllocationResistsThrashing)
{
    // 4 hot + 20 cold stride streams over 8 buffers.
    RunResult two_miss, conf;
    {
        ManyStreamsTrace t(4, 20);
        MemoryHierarchy hier({});
        SfmPredictor sfm;
        PredictorDirectedStreamBuffers pf(
            psbConfig(AllocPolicy::TwoMiss, SchedPolicy::RoundRobin),
            sfm, hier);
        two_miss = run(t, pf, hier);
    }
    {
        ManyStreamsTrace t(4, 20);
        MemoryHierarchy hier({});
        SfmPredictor sfm;
        PredictorDirectedStreamBuffers pf(
            psbConfig(AllocPolicy::Confidence, SchedPolicy::Priority),
            sfm, hier);
        conf = run(t, pf, hier);
    }
    // Confidence allocation reallocates noticeably less (it still
    // lets cold-but-predictable streams rotate through the low-priority
    // buffers, so the reduction is bounded)...
    EXPECT_LT(double(conf.allocations),
              0.75 * double(two_miss.allocations));
    // ...and turns more of its prefetches into hits.
    EXPECT_GT(conf.accuracy, two_miss.accuracy);
}

TEST(IntegrationTest, SfmBeatsStrideOnlyOnPointerCode)
{
    auto run_mode = [](SfmMode mode) {
        ChaseTrace t(900, 64);
        MemoryHierarchy hier({});
        SfmConfig cfg;
        cfg.mode = mode;
        SfmPredictor sfm(cfg);
        PredictorDirectedStreamBuffers pf(
            psbConfig(AllocPolicy::Confidence, SchedPolicy::Priority),
            sfm, hier);
        return run(t, pf, hier);
    };
    RunResult full = run_mode(SfmMode::Sfm);
    RunResult stride_only = run_mode(SfmMode::StrideOnly);
    EXPECT_GT(full.sbServiced, stride_only.sbServiced + 500);
    EXPECT_GE(full.ipc, stride_only.ipc);
}

TEST(IntegrationTest, PrefetchingNeverBreaksCorrectnessInvariants)
{
    // Sanity over every policy combination on a mixed trace.
    for (AllocPolicy alloc : {AllocPolicy::TwoMiss,
                              AllocPolicy::Confidence,
                              AllocPolicy::Always}) {
        for (SchedPolicy sched :
             {SchedPolicy::RoundRobin, SchedPolicy::Priority}) {
            ChaseTrace t(1000, 16);
            MemoryHierarchy hier({});
            SfmPredictor sfm;
            PredictorDirectedStreamBuffers pf(psbConfig(alloc, sched),
                                              sfm, hier);
            RunResult r = run(t, pf, hier, 40000);
            EXPECT_GT(r.ipc, 0.0);
            const auto &s = pf.stats();
            EXPECT_LE(s.prefetchesUsed, s.prefetchesIssued);
            EXPECT_LE(s.allocations + s.allocationsFiltered,
                      s.allocationRequests);
        }
    }
}

} // namespace
} // namespace psb
