#!/bin/sh
# Golden-stats regression check for one seed workload.
#
#   check_golden.sh PSB_SIM STATS_DIFF WORKLOAD GOLDEN_FILE [--update]
#
# Runs the simulator at the fixed golden configuration, dumps the
# stats registry as JSON, and diffs it against the checked-in golden
# (exactly: the simulation is fully deterministic, so any deviation is
# a real behaviour change). With --update the golden file is
# regenerated instead; `cmake --build build --target update-golden`
# runs this for every workload. See EXPERIMENTS.md ("Golden-stats
# workflow") for the tolerance policy when comparing across configs.
set -eu

PSB_SIM=$1
STATS_DIFF=$2
WORKLOAD=$3
GOLDEN=$4
MODE=${5:-check}

# The golden region: big enough that every component's counters are
# exercised (allocations, aging, both buses, TLB misses), small enough
# that all six checks add ~1s to ctest.
GOLDEN_ARGS="--workload $WORKLOAD --seed 1 --insts 60000 --warmup 20000"

TMP=$(mktemp "${TMPDIR:-/tmp}/golden_${WORKLOAD}.XXXXXX")
trap 'rm -f "$TMP"' EXIT

"$PSB_SIM" $GOLDEN_ARGS --stats-json "$TMP" > /dev/null

if [ "$MODE" = "--update" ]; then
    cp "$TMP" "$GOLDEN"
    echo "check_golden.sh: updated $GOLDEN"
    exit 0
fi

exec "$STATS_DIFF" "$GOLDEN" "$TMP"
