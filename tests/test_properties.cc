/**
 * @file
 * Randomised property tests: drive whole components with seeded random
 * stimulus and check the invariants that must hold for *any* input.
 * These catch interaction bugs the directed unit tests cannot
 * enumerate (entry leaks, double-booked blocks, stat drift,
 * non-monotonic time).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/psb.hh"
#include "cpu/ooo_core.hh"
#include "memory/hierarchy.hh"
#include "predictors/sfm_predictor.hh"
#include "prefetch/stream_buffer.hh"
#include "sim/simulator.hh"
#include "trace/trace_source.hh"
#include "util/random.hh"
#include "util/sat_counter.hh"
#include "workloads/workload.hh"

namespace psb
{
namespace
{

MemoryConfig
quietMemory()
{
    MemoryConfig cfg;
    cfg.tlbMissPenalty = CycleDelta{};
    return cfg;
}

// ---------------------------------------------------------------- //
// PSB invariants under random stimulus
// ---------------------------------------------------------------- //

struct PsbFuzzParam
{
    AllocPolicy alloc;
    SchedPolicy sched;
    uint64_t seed;
};

class PsbFuzzTest : public ::testing::TestWithParam<PsbFuzzParam>
{
};

TEST_P(PsbFuzzTest, InvariantsHoldUnderRandomStimulus)
{
    const PsbFuzzParam param = GetParam();
    MemoryHierarchy hier(quietMemory());
    SfmPredictor sfm;
    PsbConfig cfg;
    cfg.alloc = param.alloc;
    cfg.sched = param.sched;
    PredictorDirectedStreamBuffers psb(cfg, sfm, hier);

    Xorshift64 rng(param.seed);
    Cycle now{};
    for (int step = 0; step < 30000; ++step) {
        ++now;
        Addr pc(0x400000 + 4 * rng.below(32));
        Addr addr(0x10000000 + 32 * rng.below(1 << 14));
        switch (rng.below(5)) {
          case 0:
            psb.trainLoad(pc, addr, rng.below(2) != 0,
                          rng.below(8) == 0);
            break;
          case 1:
            psb.demandMiss(pc, addr, now);
            break;
          case 2:
            psb.lookup(addr, now);
            break;
          default:
            psb.tick(now);
            break;
        }

        if (step % 512 != 0)
            continue;

        // Invariant 1: no block is held by two buffer entries
        // (non-overlapping streams).
        std::map<BlockAddr, int> seen;
        const StreamBufferFile &file = psb.bufferFile();
        for (unsigned b = 0; b < file.numBuffers(); ++b) {
            if (!file.buffer(b).allocated())
                continue;
            for (const SbEntry &e : file.buffer(b).entries()) {
                if (e.valid) {
                    ASSERT_EQ(++seen[e.block], 1)
                        << "duplicate block across buffers";
                }
            }
        }
        // Invariant 2: priority counters within their ceiling.
        for (unsigned b = 0; b < file.numBuffers(); ++b) {
            ASSERT_LE(file.buffer(b).priority.value(),
                      cfg.buffers.priorityMax);
        }
        // Invariant 3: stat arithmetic is consistent.
        const PrefetcherStats &s = psb.stats();
        ASSERT_LE(s.prefetchesUsed, s.prefetchesIssued);
        ASSERT_LE(s.hitsPending, s.hits);
        ASSERT_EQ(s.allocations + s.allocationsFiltered,
                  s.allocationRequests);
        ASSERT_LE(s.prefetchesIssued, s.predictions);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PsbFuzzTest,
    ::testing::Values(
        PsbFuzzParam{AllocPolicy::TwoMiss, SchedPolicy::RoundRobin, 1},
        PsbFuzzParam{AllocPolicy::TwoMiss, SchedPolicy::Priority, 2},
        PsbFuzzParam{AllocPolicy::Confidence, SchedPolicy::RoundRobin,
                     3},
        PsbFuzzParam{AllocPolicy::Confidence, SchedPolicy::Priority, 4},
        PsbFuzzParam{AllocPolicy::Always, SchedPolicy::RoundRobin, 5},
        PsbFuzzParam{AllocPolicy::Always, SchedPolicy::Priority, 6}),
    [](const auto &pinfo) {
        return std::string(allocPolicyName(pinfo.param.alloc)) + "_" +
               schedPolicyName(pinfo.param.sched);
    });

// ---------------------------------------------------------------- //
// Memory-hierarchy invariants under random access streams
// ---------------------------------------------------------------- //

class HierarchyFuzzTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HierarchyFuzzTest, TimingAndStateInvariants)
{
    MemoryHierarchy hier(quietMemory());
    Xorshift64 rng(GetParam());
    Cycle now{};

    for (int step = 0; step < 20000; ++step) {
        now += CycleDelta(rng.below(4));
        Addr addr(0x10000000 + 32 * rng.below(1 << 13));
        ProbeResult probe = hier.probeData(addr, now);

        // A block cannot be both resident-with-data and in flight.
        ASSERT_FALSE(probe.resident && probe.inFlight);

        if (probe.resident) {
            hier.touchData(addr, rng.below(2) != 0);
        } else if (probe.inFlight) {
            // Fill completion must not be in the past beyond `now`
            // retirement: an in-flight report means ready > now is
            // possible but ready <= now must have been retired.
            ASSERT_GT(probe.ready, now);
        } else if (!const_cast<MshrFile &>(hier.dataMshrs())
                        .full(now)) {
            FillOutcome fill =
                hier.missToL2(addr, now, rng.below(4) == 0);
            ASSERT_FALSE(fill.mshrStall);
            // Data can never arrive before the L2 latency elapses.
            ASSERT_GE(fill.ready, now + hier.config().l2Latency);
            // After the fill completes, the block is a plain hit.
            ProbeResult later = hier.probeData(addr, fill.ready);
            ASSERT_TRUE(later.resident);
        }

        // MSHR occupancy can never exceed its capacity.
        ASSERT_LE(
            const_cast<MshrFile &>(hier.dataMshrs()).occupancy(now),
            hier.dataMshrs().capacity());
    }

    // Bus busy time cannot exceed the elapsed wall time plus one
    // maximal queued backlog (transactions are serial).
    ASSERT_GT(now, Cycle{});
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyFuzzTest,
                         ::testing::Values(11u, 22u, 33u));

// ---------------------------------------------------------------- //
// Core drains any random well-formed trace
// ---------------------------------------------------------------- //

class RandomTrace : public TraceSource
{
  public:
    RandomTrace(uint64_t seed, uint64_t count) : _rng(seed), _left(count)
    {}

    bool
    next(MicroOp &op) override
    {
        if (_left == 0)
            return false;
        --_left;
        op = MicroOp{};
        op.pc = Addr(0x400000 + 4 * _rng.below(256));
        switch (_rng.below(8)) {
          case 0:
            op.op = OpClass::Load;
            op.dst = uint8_t(1 + _rng.below(30));
            op.src1 = uint8_t(1 + _rng.below(30));
            op.effAddr = Addr(0x10000000 + 8 * _rng.below(1 << 16));
            break;
          case 1:
            op.op = OpClass::Store;
            op.src1 = uint8_t(1 + _rng.below(30));
            op.effAddr = Addr(0x10000000 + 8 * _rng.below(1 << 16));
            break;
          case 2:
            op.op = OpClass::Branch;
            op.taken = _rng.below(2) != 0;
            op.target = Addr(0x400000 + 4 * _rng.below(256));
            break;
          case 3:
            op.op = OpClass::FpMult;
            op.dst = uint8_t(1 + _rng.below(30));
            op.src1 = uint8_t(1 + _rng.below(30));
            op.src2 = uint8_t(1 + _rng.below(30));
            break;
          case 4:
            op.op = OpClass::IntDiv;
            op.dst = uint8_t(1 + _rng.below(30));
            break;
          default:
            op.op = OpClass::IntAlu;
            op.dst = uint8_t(1 + _rng.below(30));
            op.src1 = uint8_t(1 + _rng.below(30));
            break;
        }
        return true;
    }

  private:
    Xorshift64 _rng;
    uint64_t _left;
};

struct CoreFuzzParam
{
    uint64_t seed;
    DisambiguationMode dis;
};

class CoreFuzzTest : public ::testing::TestWithParam<CoreFuzzParam>
{
};

TEST_P(CoreFuzzTest, DrainsAndCountsExactly)
{
    const CoreFuzzParam param = GetParam();
    constexpr uint64_t count = 20000;
    MemoryHierarchy hier(quietMemory());
    SfmPredictor sfm;
    PredictorDirectedStreamBuffers psb(PsbConfig{}, sfm, hier);
    RandomTrace trace(param.seed, count);
    CoreConfig cfg;
    cfg.disambiguation = param.dis;
    OoOCore core(cfg, hier, psb, trace);

    Cycle now{};
    while (core.tick(now)) {
        psb.tick(now);
        ++now;
        ASSERT_LT(now, Cycle{10'000'000}) << "core failed to drain";
    }

    const CoreStats &s = core.stats();
    EXPECT_EQ(s.instructions, count);
    EXPECT_EQ(s.l1dAccesses, s.l1dHits + s.l1dMisses);
    EXPECT_LE(s.l1dInFlight, s.l1dMisses);
    EXPECT_LE(s.mispredicts, s.branches);
    EXPECT_EQ(s.loadLatency.count(), s.loads);
    EXPECT_GT(s.ipc(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, CoreFuzzTest,
    ::testing::Values(
        CoreFuzzParam{101, DisambiguationMode::Perfect},
        CoreFuzzParam{102, DisambiguationMode::None},
        CoreFuzzParam{103, DisambiguationMode::Learned},
        CoreFuzzParam{104, DisambiguationMode::Perfect},
        CoreFuzzParam{105, DisambiguationMode::Learned}),
    [](const auto &pinfo) {
        return std::string(disambiguationModeName(pinfo.param.dis)) +
               "_" + std::to_string(pinfo.param.seed);
    });

// ---------------------------------------------------------------- //
// Whole-simulator invariants, checked through the stats registry
// ---------------------------------------------------------------- //

struct RegistryFuzzParam
{
    const char *workload;
    uint64_t seed;
};

class RegistryInvariantTest
    : public ::testing::TestWithParam<RegistryFuzzParam>
{
};

TEST_P(RegistryInvariantTest, ExportedStatsAreArithmeticallyConsistent)
{
    const RegistryFuzzParam param = GetParam();
    auto trace = makeWorkload(param.workload, param.seed);
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.warmupInstructions = 5000;
    cfg.maxInstructions = 20000;
    Simulator sim(cfg, *trace);
    sim.run();

    auto snap = sim.statsRegistry().snapshot();
    auto scalar = [&](const char *path) {
        auto it = snap.find(path);
        EXPECT_NE(it, snap.end()) << "missing stat " << path;
        return it != snap.end() ? it->second.scalar : 0;
    };

    // Every cache level: hits + misses == accesses.
    EXPECT_EQ(scalar("l1d.hits") + scalar("l1d.misses"),
              scalar("l1d.accesses"));
    EXPECT_EQ(scalar("l1i.hits") + scalar("l1i.misses"),
              scalar("l1i.accesses"));
    EXPECT_EQ(scalar("l2.hits") + scalar("l2.misses"),
              scalar("l2.accesses"));

    // Prefetcher: useful prefetches cannot exceed issued ones, and
    // allocation accounting must balance.
    EXPECT_LE(scalar("psb.used"), scalar("psb.issued"));
    EXPECT_LE(scalar("psb.hits_pending"), scalar("psb.hits"));
    EXPECT_EQ(scalar("psb.allocations") +
                  scalar("psb.allocations_filtered"),
              scalar("psb.allocation_requests"));

    // Stream-buffer priority counters saturate at the paper's ceiling
    // of 12, and the recorded peak can never undercut the live value.
    for (unsigned b = 0; b < cfg.psb.buffers.numBuffers; ++b) {
        std::string prefix = "psb.buffer" + std::to_string(b);
        uint64_t prio = scalar((prefix + ".priority").c_str());
        uint64_t peak = scalar((prefix + ".priority_peak").c_str());
        EXPECT_LE(prio, cfg.psb.buffers.priorityMax) << prefix;
        EXPECT_LE(peak, cfg.psb.buffers.priorityMax) << prefix;
        EXPECT_GE(peak, prio) << prefix;
    }

    // The derived ratios must agree with the raw counters they claim
    // to summarise.
    auto real = [&](const char *path) {
        auto it = snap.find(path);
        EXPECT_NE(it, snap.end()) << "missing stat " << path;
        return it != snap.end() ? it->second.asReal() : 0.0;
    };
    uint64_t l1dAccesses = scalar("l1d.accesses");
    if (l1dAccesses > 0) {
        // In-flight accesses are already counted inside l1d.misses.
        EXPECT_NEAR(real("l1d.miss_rate"),
                    double(scalar("l1d.misses")) / double(l1dAccesses),
                    1e-12);
    }
    uint64_t issued = scalar("psb.issued");
    if (issued > 0) {
        EXPECT_NEAR(real("psb.accuracy"),
                    double(scalar("psb.used")) / double(issued), 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RegistryInvariantTest,
    ::testing::Values(RegistryFuzzParam{"health", 7},
                      RegistryFuzzParam{"gs", 8},
                      RegistryFuzzParam{"turb3d", 9}),
    [](const auto &pinfo) {
        return std::string(pinfo.param.workload) + "_" +
               std::to_string(pinfo.param.seed);
    });

// ---------------------------------------------------------------- //
// Hot-path equivalence: the optimised implementations (branchless
// saturating counter, bitmask stream-buffer occupancy, event-driven
// fast-forward) must be indistinguishable from their naive reference
// models under random stimulus
// ---------------------------------------------------------------- //

TEST(SatCounterEquivalenceTest, BranchlessClampMatchesReferenceModel)
{
    for (uint64_t seed : {11u, 12u, 13u, 14u}) {
        Xorshift64 rng(seed);
        uint32_t max = 1 + uint32_t(rng.below(31));
        uint32_t initial = uint32_t(rng.below(max + 1));
        SatCounter ctr(max, initial);
        uint64_t ref = initial;
        for (int i = 0; i < 100'000; ++i) {
            uint32_t step = uint32_t(rng.below(5));
            if (rng.below(2) == 0) {
                ctr.increment(step);
                ref = std::min<uint64_t>(ref + step, max);
            } else {
                ctr.decrement(step);
                ref = ref > step ? ref - step : 0;
            }
            ASSERT_EQ(ctr.value(), ref)
                << "seed " << seed << " step " << i;
        }
    }
}

namespace
{

/** The pre-bitmask reference implementations: linear entry scans. */
int
refFreeEntry(const std::vector<SbEntry> &entries)
{
    for (size_t i = 0; i < entries.size(); ++i)
        if (!entries[i].valid)
            return int(i);
    return -1;
}

int
refPendingEntry(const std::vector<SbEntry> &entries)
{
    for (size_t i = 0; i < entries.size(); ++i)
        if (entries[i].valid && !entries[i].prefetched)
            return int(i);
    return -1;
}

int
refFindEntry(const std::vector<SbEntry> &entries, BlockAddr block)
{
    for (size_t i = 0; i < entries.size(); ++i)
        if (entries[i].valid && entries[i].block == block)
            return int(i);
    return -1;
}

} // namespace

TEST(StreamBufferEquivalenceTest, BitmaskOccupancyMatchesLinearScan)
{
    for (uint64_t seed : {21u, 22u, 23u}) {
        Xorshift64 rng(seed);
        StreamBuffer buf(4, 12);
        StreamState state;
        state.lastAddr = BlockAddr{rng.below(64)};
        buf.allocateStream(state, 3);
        for (int i = 0; i < 50'000; ++i) {
            switch (rng.below(8)) {
            case 0: { // fresh stream (resets all entries)
                state.lastAddr = BlockAddr{rng.below(64)};
                buf.allocateStream(state, uint32_t(rng.below(13)));
                break;
            }
            case 1:
            case 2:
            case 3: { // install a prediction into the free slot
                int slot = buf.freeEntry();
                if (slot >= 0)
                    buf.fillEntry(slot, BlockAddr{rng.below(64)});
                break;
            }
            case 4:
            case 5: { // issue the pending prefetch
                int slot = buf.pendingPrefetchEntry();
                if (slot >= 0)
                    buf.markPrefetched(slot, Cycle{uint64_t(i)});
                break;
            }
            default: { // consume a random valid entry
                int slot =
                    refFindEntry(buf.entries(),
                                 BlockAddr{rng.below(64)});
                if (slot >= 0)
                    buf.clearEntry(slot);
                break;
            }
            }
            const std::vector<SbEntry> &entries = buf.entries();
            ASSERT_EQ(buf.freeEntry(), refFreeEntry(entries));
            ASSERT_EQ(buf.pendingPrefetchEntry(),
                      refPendingEntry(entries));
            BlockAddr probe{rng.below(64)};
            ASSERT_EQ(buf.findEntry(probe),
                      refFindEntry(entries, probe));
        }
    }
}

// ---------------------------------------------------------------- //
// Fast-forward exactness: skipping provably idle cycles must leave
// every exported stat byte-identical (SimConfig::fastForward doc)
// ---------------------------------------------------------------- //

struct FastForwardParam
{
    const char *workload;
    PaperConfig config;
};

class FastForwardEquivalenceTest
    : public ::testing::TestWithParam<FastForwardParam>
{
};

TEST_P(FastForwardEquivalenceTest, StatsJsonByteIdenticalOnOff)
{
    const FastForwardParam param = GetParam();
    auto runWith = [&](bool fast_forward) {
        auto trace = makeWorkload(param.workload);
        SimConfig cfg = makePaperConfig(param.config);
        cfg.warmupInstructions = 5000;
        cfg.maxInstructions = 25000;
        cfg.fastForward = fast_forward;
        Simulator sim(cfg, *trace);
        sim.run();
        return sim.statsJson();
    };
    EXPECT_EQ(runWith(true), runWith(false));
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndConfigs, FastForwardEquivalenceTest,
    ::testing::Values(
        FastForwardParam{"health", PaperConfig::ConfAllocPriority},
        FastForwardParam{"gs", PaperConfig::Base},
        FastForwardParam{"turb3d", PaperConfig::PcStride},
        FastForwardParam{"burg", PaperConfig::TwoMissRR}),
    [](const auto &pinfo) {
        // gtest names must be alphanumeric; drop the '-' from labels
        // like "ConfAlloc-Priority".
        std::string name = std::string(pinfo.param.workload) + "_" +
                           paperConfigName(pinfo.param.config);
        name.erase(std::remove(name.begin(), name.end(), '-'),
                   name.end());
        return name;
    });

} // namespace
} // namespace psb
