/**
 * @file
 * Tests for the gshare branch predictor and BTB.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

namespace psb
{
namespace
{

TEST(GshareTest, LearnsAlwaysTakenBranch)
{
    GsharePredictor bp;
    Addr pc{0x400100}, target{0x400200};
    // Warm up long enough for the global history to reach its steady
    // all-taken pattern and saturate that PHT entry.
    for (int i = 0; i < 60; ++i)
        bp.update(pc, true, target);
    Addr predicted_target{};
    EXPECT_TRUE(bp.predict(pc, predicted_target));
    EXPECT_EQ(predicted_target, target);
}

TEST(GshareTest, LearnsNeverTakenBranch)
{
    GsharePredictor bp;
    Addr pc{0x400100};
    for (int i = 0; i < 60; ++i)
        bp.update(pc, false, Addr{});
    Addr t{};
    EXPECT_FALSE(bp.predict(pc, t));
}

TEST(GshareTest, LearnsAlternatingPatternViaHistory)
{
    // T,N,T,N... is captured by global history correlation; after
    // warm-up the predictor should be nearly perfect.
    GsharePredictor bp;
    Addr pc{0x400100}, target{0x400200};
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        taken = !taken;
        bp.update(pc, taken, target);
    }
    uint64_t wrong_before = bp.mispredicts();
    for (int i = 0; i < 100; ++i) {
        taken = !taken;
        bp.update(pc, taken, target);
    }
    EXPECT_LE(bp.mispredicts() - wrong_before, 2u);
}

TEST(GshareTest, LearnsLoopExitPattern)
{
    // 7 taken, 1 not-taken, repeated: a classic inner loop.
    GsharePredictor bp;
    Addr pc{0x400100}, target{0x400080};
    for (int warm = 0; warm < 50; ++warm) {
        for (int i = 0; i < 7; ++i)
            bp.update(pc, true, target);
        bp.update(pc, false, Addr{});
    }
    uint64_t wrong_before = bp.mispredicts();
    for (int rep = 0; rep < 10; ++rep) {
        for (int i = 0; i < 7; ++i)
            bp.update(pc, true, target);
        bp.update(pc, false, Addr{});
    }
    // 80 branches, history should disambiguate nearly all.
    EXPECT_LE(bp.mispredicts() - wrong_before, 8u);
}

TEST(GshareTest, TakenBranchWithColdBtbIsMispredicted)
{
    GsharePredictor bp;
    Addr pc{0x400100}, target{0x400200};
    // Push the direction to taken but for a different PC so the BTB
    // entry for `pc` stays cold... simpler: first taken encounter of
    // any branch misses the BTB and counts as a misprediction.
    EXPECT_FALSE(bp.update(pc, true, target));
    EXPECT_EQ(bp.mispredicts(), 1u);
}

TEST(GshareTest, BtbTargetMismatchIsMisprediction)
{
    GsharePredictor bp;
    Addr pc{0x400100};
    for (int i = 0; i < 60; ++i)
        bp.update(pc, true, Addr{0x400200});
    // Same branch now jumps somewhere else (indirect): mispredicted.
    EXPECT_FALSE(bp.update(pc, true, Addr{0x500000}));
    // And the BTB retrains on the new target.
    EXPECT_TRUE(bp.update(pc, true, Addr{0x500000}));
}

TEST(GshareTest, NotTakenBranchNeedsNoBtb)
{
    GsharePredictor bp;
    Addr pc{0x400300};
    bp.update(pc, false, Addr{});
    EXPECT_TRUE(bp.update(pc, false, Addr{}));
}

TEST(GshareTest, LookupsCounted)
{
    GsharePredictor bp;
    Addr t{};
    bp.predict(Addr{0x400100}, t);
    bp.predict(Addr{0x400104}, t);
    EXPECT_EQ(bp.lookups(), 2u);
    // update() internally reuses predict() but compensates.
    bp.update(Addr{0x400100}, true, Addr{0x400200});
    EXPECT_EQ(bp.lookups(), 2u);
}

TEST(GshareTest, DistinctBranchesSeparateCounters)
{
    GshareConfig cfg;
    GsharePredictor bp(cfg);
    Addr taken_pc{0x400100}, not_taken_pc{0x500204};
    for (int i = 0; i < 20; ++i) {
        bp.update(taken_pc, true, Addr{0x400200});
        bp.update(not_taken_pc, false, Addr{});
    }
    // Both should now predict correctly most of the time.
    uint64_t wrong_before = bp.mispredicts();
    for (int i = 0; i < 20; ++i) {
        bp.update(taken_pc, true, Addr{0x400200});
        bp.update(not_taken_pc, false, Addr{});
    }
    EXPECT_LE(bp.mispredicts() - wrong_before, 6u);
}

} // namespace
} // namespace psb
