/**
 * @file
 * Unit tests for the MSHR file: in-flight tracking, merges, lazy
 * retirement, and capacity stalls.
 */

#include <gtest/gtest.h>

#include "memory/mshr.hh"

namespace psb
{
namespace
{

TEST(MshrTest, LookupMissWhenEmpty)
{
    MshrFile m(4);
    EXPECT_FALSE(m.lookup(BlockAddr{0x1000}, Cycle{}).has_value());
    EXPECT_FALSE(m.full(Cycle{}));
    EXPECT_EQ(m.occupancy(Cycle{}), 0u);
}

TEST(MshrTest, AllocateThenMergeUntilReady)
{
    MshrFile m(4);
    m.allocate(BlockAddr{0x1000}, Cycle{50});
    auto hit = m.lookup(BlockAddr{0x1000}, Cycle{10});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, Cycle{50});
    EXPECT_EQ(m.merges(), 1u);
    // At the fill time the entry retires.
    EXPECT_FALSE(m.lookup(BlockAddr{0x1000}, Cycle{50}).has_value());
}

TEST(MshrTest, DifferentBlocksDoNotMerge)
{
    MshrFile m(4);
    m.allocate(BlockAddr{0x1000}, Cycle{50});
    EXPECT_FALSE(m.lookup(BlockAddr{0x2000}, Cycle{10}).has_value());
}

TEST(MshrTest, FullAfterCapacityAllocations)
{
    MshrFile m(2);
    m.allocate(BlockAddr{0x1000}, Cycle{100});
    EXPECT_FALSE(m.full(Cycle{}));
    m.allocate(BlockAddr{0x2000}, Cycle{100});
    EXPECT_TRUE(m.full(Cycle{}));
    EXPECT_EQ(m.occupancy(Cycle{}), 2u);
    // Retirement frees capacity.
    EXPECT_FALSE(m.full(Cycle{100}));
    EXPECT_EQ(m.occupancy(Cycle{100}), 0u);
}

TEST(MshrTest, RetirementIsPerEntry)
{
    MshrFile m(4);
    m.allocate(BlockAddr{0x1000}, Cycle{10});
    m.allocate(BlockAddr{0x2000}, Cycle{20});
    EXPECT_EQ(m.occupancy(Cycle{15}), 1u);
    EXPECT_FALSE(m.lookup(BlockAddr{0x1000}, Cycle{15}).has_value());
    EXPECT_TRUE(m.lookup(BlockAddr{0x2000}, Cycle{15}).has_value());
}

TEST(MshrTest, AllocationsCounted)
{
    MshrFile m(8);
    for (int i = 0; i < 5; ++i)
        m.allocate(BlockAddr{0x1000 + 0x100 * uint64_t(i)}, Cycle{100});
    EXPECT_EQ(m.allocations(), 5u);
    EXPECT_EQ(m.capacity(), 8u);
}

TEST(MshrDeathTest, DoubleAllocationPanics)
{
    MshrFile m(4);
    m.allocate(BlockAddr{0x1000}, Cycle{100});
    EXPECT_DEATH(m.allocate(BlockAddr{0x1000}, Cycle{200}),
                 "double-allocation");
}

TEST(MshrDeathTest, AllocateWhenFullPanics)
{
    MshrFile m(1);
    m.allocate(BlockAddr{0x1000}, Cycle{100});
    EXPECT_DEATH(m.allocate(BlockAddr{0x2000}, Cycle{100}),
                 "no free entry");
}

} // namespace
} // namespace psb
