/**
 * @file
 * Structural tests for every registry workload: deterministic per
 * seed, endless, plausible instruction mix, working set beyond the
 * L1. All of these run over allWorkloadNames(), so a workload added
 * to the registry is covered with no test edits.
 *
 * The per-workload *character* checks (is the chase serialised, is
 * the sweep stride-dominated, does the allocator recycle) are table
 * driven: one row per trait in kCharacterCases, instantiated as a
 * parameterised suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace psb
{
namespace
{

struct Mix
{
    uint64_t total = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    std::set<Addr> loadPcs;
    std::set<Addr> dataBlocks;
};

Mix
sample(Workload &w, uint64_t n)
{
    Mix mix;
    MicroOp op;
    for (uint64_t i = 0; i < n && w.next(op); ++i) {
        ++mix.total;
        if (op.isLoad()) {
            ++mix.loads;
            mix.loadPcs.insert(op.pc);
            mix.dataBlocks.insert(op.effAddr.alignDown(32));
        } else if (op.isStore()) {
            ++mix.stores;
        } else if (op.isBranch()) {
            ++mix.branches;
        }
    }
    return mix;
}

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, FactoryProducesNamedWorkload)
{
    auto w = makeWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), GetParam());
}

TEST_P(WorkloadTest, DeterministicPerSeed)
{
    auto w1 = makeWorkload(GetParam(), 7);
    auto w2 = makeWorkload(GetParam(), 7);
    MicroOp a, b;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(w1->next(a));
        ASSERT_TRUE(w2->next(b));
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(int(a.op), int(b.op));
        ASSERT_EQ(a.effAddr, b.effAddr);
        ASSERT_EQ(a.taken, b.taken);
    }
}

TEST_P(WorkloadTest, DifferentSeedsDiverge)
{
    auto w1 = makeWorkload(GetParam(), 1);
    auto w2 = makeWorkload(GetParam(), 999);
    MicroOp a, b;
    bool diverged = false;
    for (int i = 0; i < 50000 && !diverged; ++i) {
        w1->next(a);
        w2->next(b);
        diverged = (a.effAddr != b.effAddr);
    }
    EXPECT_TRUE(diverged);
}

TEST_P(WorkloadTest, EndlessSteadyState)
{
    auto w = makeWorkload(GetParam());
    MicroOp op;
    for (int i = 0; i < 300000; ++i)
        ASSERT_TRUE(w->next(op));
}

TEST_P(WorkloadTest, PlausibleInstructionMix)
{
    auto w = makeWorkload(GetParam());
    Mix mix = sample(*w, 200000);
    double loads = double(mix.loads) / double(mix.total);
    double stores = double(mix.stores) / double(mix.total);
    double branches = double(mix.branches) / double(mix.total);
    // Table 2 territory: loads 15-45%, stores 1-20%, branches 5-35%.
    EXPECT_GT(loads, 0.15) << "load fraction";
    EXPECT_LT(loads, 0.45) << "load fraction";
    EXPECT_GT(stores, 0.01) << "store fraction";
    EXPECT_LT(stores, 0.22) << "store fraction";
    EXPECT_GT(branches, 0.05) << "branch fraction";
    EXPECT_LT(branches, 0.35) << "branch fraction";
}

TEST_P(WorkloadTest, WorkingSetExceedsL1)
{
    auto w = makeWorkload(GetParam());
    Mix mix = sample(*w, 400000);
    // Accessed data footprint must exceed the 32 KB L1 (1024 blocks)
    // or there would be nothing to prefetch.
    EXPECT_GT(mix.dataBlocks.size(), 1200u);
}

TEST_P(WorkloadTest, StaticCodeFootprintReasonable)
{
    auto w = makeWorkload(GetParam());
    Mix mix = sample(*w, 200000);
    // A handful of load sites at least, but the synthetic "binary"
    // stays small (paper benchmarks fit comfortably in the 32K L1I).
    EXPECT_GE(mix.loadPcs.size(), 3u);
    EXPECT_LT(mix.loadPcs.size(), 512u);
}

TEST_P(WorkloadTest, BranchTargetsPointIntoCode)
{
    auto w = makeWorkload(GetParam());
    MicroOp op;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w->next(op));
        if (op.isBranch() && op.taken) {
            EXPECT_GE(op.target, Addr{0x00400000});
            EXPECT_LT(op.target, Addr{0x01000000});
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Registry, WorkloadTest,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &pinfo) { return pinfo.param; });

TEST(WorkloadFactoryTest, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeWorkload("nonesuch"), nullptr);
}

TEST(WorkloadFactoryTest, NamesMatchPaperTable1)
{
    std::vector<std::string> expected = {"health", "burg", "deltablue",
                                         "gs", "sis", "turb3d"};
    EXPECT_EQ(workloadNames(), expected);
}

TEST(WorkloadFactoryTest, RegistryExtendsPaperSixInOrder)
{
    const auto &six = workloadNames();
    const auto &all = allWorkloadNames();
    // The paper six come first and unchanged — figure-5 benches and
    // the golden corpus iterate workloadNames() and must not move.
    ASSERT_GE(all.size(), six.size());
    EXPECT_TRUE(std::equal(six.begin(), six.end(), all.begin()));
    for (const char *extra : {"graph", "hashjoin", "logscan", "fuzz"})
        EXPECT_NE(std::find(all.begin(), all.end(), extra), all.end())
            << extra;
}

// ------------------------------------------------------------------ //
// Character probes: one table row per workload trait.
// ------------------------------------------------------------------ //

/**
 * Share of consecutive per-PC load deltas covered by the @p top_k
 * most common deltas, over @p n ops. Pass @p only_pc to restrict the
 * probe to one load site; Addr{0} means all load PCs.
 */
double
topDeltaShare(Workload &w, uint64_t n, size_t top_k, Addr only_pc)
{
    std::map<Addr, Addr> last;
    std::map<int64_t, uint64_t> deltas;
    uint64_t total = 0;
    MicroOp op;
    for (uint64_t i = 0; i < n; ++i) {
        w.next(op);
        if (!op.isLoad())
            continue;
        if (only_pc != Addr{0} && op.pc != only_pc)
            continue;
        auto it = last.find(op.pc);
        if (it != last.end()) {
            ++deltas[op.effAddr - it->second];
            ++total;
        }
        last[op.pc] = op.effAddr;
    }
    if (total == 0)
        return 0.0;
    std::vector<uint64_t> counts;
    for (auto &[d, cnt] : deltas)
        counts.push_back(cnt);
    std::sort(counts.rbegin(), counts.rend());
    uint64_t top = 0;
    for (size_t i = 0; i < counts.size() && i < top_k; ++i)
        top += counts[i];
    return double(top) / double(total);
}

/**
 * Count loads with pc in [@p lo, @p hi), asserting each is serialised
 * through one register (src1 == dst): the true-pointer-chase shape.
 */
uint64_t
serialisedLoadCount(Workload &w, uint64_t n, Addr lo, Addr hi)
{
    uint64_t count = 0;
    MicroOp op;
    for (uint64_t i = 0; i < n; ++i) {
        w.next(op);
        if (op.isLoad() && op.pc >= lo && op.pc < hi) {
            ++count;
            EXPECT_EQ(op.src1, op.dst); // serialised through one reg
        }
    }
    return count;
}

struct CharacterCase
{
    const char *workload;
    const char *trait;
    void (*run)();
};

void
turb3dStrideDominated()
{
    // Consecutive misses of the same PC should mostly advance by a
    // constant stride: a handful of strides (x/y/z sweeps, butterfly
    // gaps) covers the vast majority of per-PC deltas.
    auto w = makeWorkload("turb3d");
    EXPECT_GT(topDeltaShare(*w, 300000, 8, Addr{0}), 0.75);
}

void
healthChaseSerialised()
{
    // The patient-list walk must be a true pointer chase.
    auto w = makeWorkload("health");
    EXPECT_GT(serialisedLoadCount(*w, 100000, Addr{0x00400010},
                                  Addr{0x00400011}),
              1000u);
}

void
deltablueRecyclesAddresses()
{
    // Short-lived constraint objects must reuse addresses across
    // rounds — the allocator-recycling behaviour the paper's
    // deltablue depends on.
    auto w = makeWorkload("deltablue");
    MicroOp op;
    std::set<Addr> alloc_addrs;
    uint64_t repeats = 0, allocs = 0;
    for (int i = 0; i < 400000; ++i) {
        w->next(op);
        // Allocation stores write constraint field 0 at pc base+0x04.
        if (op.isStore() && op.pc == Addr{0x00600004}) {
            ++allocs;
            if (!alloc_addrs.insert(op.effAddr).second)
                ++repeats;
        }
    }
    ASSERT_GT(allocs, 100u);
    EXPECT_GT(double(repeats) / double(allocs), 0.5);
}

void
graphAdjacencyScanIsSequential()
{
    // The CSR colIdx scan (one load site) advances by +8 within a
    // row; only the jump between rows breaks the run.
    auto w = makeWorkload("graph");
    EXPECT_GT(topDeltaShare(*w, 300000, 1, Addr{0x00b00014}), 0.6);
}

void
hashjoinChainWalkSerialised()
{
    // Bucket chains are walked through next pointers, serialised
    // through the node register.
    auto w = makeWorkload("hashjoin");
    EXPECT_GT(serialisedLoadCount(*w, 100000, Addr{0x00b40018},
                                  Addr{0x00b40020}),
              1000u);
}

void
logscanSegmentScanIsSequential()
{
    // The lagging segment scan reads 64-byte records back to back;
    // only the ring wrap breaks the +64 run.
    auto w = makeWorkload("logscan");
    EXPECT_GT(topDeltaShare(*w, 300000, 1, Addr{0x00b80030}), 0.9);
}

void
fuzzChaseSerialised()
{
    // The fuzzer's chase generator walks its permutation ring
    // serialised through one register, like the real list chases.
    auto w = makeWorkload("fuzz");
    EXPECT_GT(serialisedLoadCount(*w, 200000, Addr{0x00bc0200},
                                  Addr{0x00bc0240}),
              1000u);
}

const CharacterCase kCharacterCases[] = {
    {"turb3d", "StrideDominated", turb3dStrideDominated},
    {"health", "ChaseSerialised", healthChaseSerialised},
    {"deltablue", "RecyclesAddresses", deltablueRecyclesAddresses},
    {"graph", "AdjacencyScanSequential", graphAdjacencyScanIsSequential},
    {"hashjoin", "ChainWalkSerialised", hashjoinChainWalkSerialised},
    {"logscan", "SegmentScanSequential", logscanSegmentScanIsSequential},
    {"fuzz", "ChaseSerialised", fuzzChaseSerialised},
};

class WorkloadCharacterTest
    : public ::testing::TestWithParam<CharacterCase>
{
};

TEST_P(WorkloadCharacterTest, Probe)
{
    // Every probed workload must exist in the registry, so a renamed
    // workload cannot silently orphan its character row.
    const auto &all = allWorkloadNames();
    ASSERT_NE(std::find(all.begin(), all.end(), GetParam().workload),
              all.end());
    GetParam().run();
}

INSTANTIATE_TEST_SUITE_P(Traits, WorkloadCharacterTest,
                         ::testing::ValuesIn(kCharacterCases),
                         [](const auto &pinfo) {
                             return std::string(pinfo.param.workload) +
                                    "_" + pinfo.param.trait;
                         });

} // namespace
} // namespace psb
