/**
 * @file
 * Structural tests for the six synthetic benchmark analogs: they must
 * be deterministic per seed, endless, emit a plausible instruction
 * mix, and keep their pointer/stride character (checked loosely so
 * calibration of sizes does not break the suite).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace psb
{
namespace
{

struct Mix
{
    uint64_t total = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    std::set<Addr> loadPcs;
    std::set<Addr> dataBlocks;
};

Mix
sample(Workload &w, uint64_t n)
{
    Mix mix;
    MicroOp op;
    for (uint64_t i = 0; i < n && w.next(op); ++i) {
        ++mix.total;
        if (op.isLoad()) {
            ++mix.loads;
            mix.loadPcs.insert(op.pc);
            mix.dataBlocks.insert(op.effAddr.alignDown(32));
        } else if (op.isStore()) {
            ++mix.stores;
        } else if (op.isBranch()) {
            ++mix.branches;
        }
    }
    return mix;
}

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, FactoryProducesNamedWorkload)
{
    auto w = makeWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), GetParam());
}

TEST_P(WorkloadTest, DeterministicPerSeed)
{
    auto w1 = makeWorkload(GetParam(), 7);
    auto w2 = makeWorkload(GetParam(), 7);
    MicroOp a, b;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(w1->next(a));
        ASSERT_TRUE(w2->next(b));
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(int(a.op), int(b.op));
        ASSERT_EQ(a.effAddr, b.effAddr);
        ASSERT_EQ(a.taken, b.taken);
    }
}

TEST_P(WorkloadTest, DifferentSeedsDiverge)
{
    auto w1 = makeWorkload(GetParam(), 1);
    auto w2 = makeWorkload(GetParam(), 999);
    MicroOp a, b;
    bool diverged = false;
    for (int i = 0; i < 50000 && !diverged; ++i) {
        w1->next(a);
        w2->next(b);
        diverged = (a.effAddr != b.effAddr);
    }
    EXPECT_TRUE(diverged);
}

TEST_P(WorkloadTest, EndlessSteadyState)
{
    auto w = makeWorkload(GetParam());
    MicroOp op;
    for (int i = 0; i < 300000; ++i)
        ASSERT_TRUE(w->next(op));
}

TEST_P(WorkloadTest, PlausibleInstructionMix)
{
    auto w = makeWorkload(GetParam());
    Mix mix = sample(*w, 200000);
    double loads = double(mix.loads) / double(mix.total);
    double stores = double(mix.stores) / double(mix.total);
    double branches = double(mix.branches) / double(mix.total);
    // Table 2 territory: loads 15-45%, stores 1-20%, branches 5-35%.
    EXPECT_GT(loads, 0.15) << "load fraction";
    EXPECT_LT(loads, 0.45) << "load fraction";
    EXPECT_GT(stores, 0.01) << "store fraction";
    EXPECT_LT(stores, 0.22) << "store fraction";
    EXPECT_GT(branches, 0.05) << "branch fraction";
    EXPECT_LT(branches, 0.35) << "branch fraction";
}

TEST_P(WorkloadTest, WorkingSetExceedsL1)
{
    auto w = makeWorkload(GetParam());
    Mix mix = sample(*w, 400000);
    // Accessed data footprint must exceed the 32 KB L1 (1024 blocks)
    // or there would be nothing to prefetch.
    EXPECT_GT(mix.dataBlocks.size(), 1200u);
}

TEST_P(WorkloadTest, StaticCodeFootprintReasonable)
{
    auto w = makeWorkload(GetParam());
    Mix mix = sample(*w, 200000);
    // A handful of load sites at least, but the synthetic "binary"
    // stays small (paper benchmarks fit comfortably in the 32K L1I).
    EXPECT_GE(mix.loadPcs.size(), 3u);
    EXPECT_LT(mix.loadPcs.size(), 512u);
}

TEST_P(WorkloadTest, BranchTargetsPointIntoCode)
{
    auto w = makeWorkload(GetParam());
    MicroOp op;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w->next(op));
        if (op.isBranch() && op.taken) {
            EXPECT_GE(op.target, Addr{0x00400000});
            EXPECT_LT(op.target, Addr{0x01000000});
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &pinfo) { return pinfo.param; });

TEST(WorkloadFactoryTest, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeWorkload("nonesuch"), nullptr);
}

TEST(WorkloadFactoryTest, NamesMatchPaperTable1)
{
    std::vector<std::string> expected = {"health", "burg", "deltablue",
                                         "gs", "sis", "turb3d"};
    EXPECT_EQ(workloadNames(), expected);
}

TEST(WorkloadCharacterTest, Turb3dIsStrideDominated)
{
    // Consecutive misses of the same PC should mostly advance by a
    // constant stride. Approximate with per-PC address deltas.
    auto w = makeWorkload("turb3d");
    std::map<Addr, Addr> last;
    std::map<int64_t, uint64_t> deltas;
    uint64_t total = 0;
    MicroOp op;
    for (int i = 0; i < 300000; ++i) {
        w->next(op);
        if (!op.isLoad())
            continue;
        auto it = last.find(op.pc);
        if (it != last.end()) {
            ++deltas[op.effAddr - it->second];
            ++total;
        }
        last[op.pc] = op.effAddr;
    }
    // A handful of constant strides (x/y/z sweeps, butterfly gaps)
    // covers the vast majority of per-PC deltas.
    std::vector<uint64_t> counts;
    for (auto &[d, n] : deltas)
        counts.push_back(n);
    std::sort(counts.rbegin(), counts.rend());
    uint64_t top = 0;
    for (size_t i = 0; i < counts.size() && i < 8; ++i)
        top += counts[i];
    EXPECT_GT(double(top) / double(total), 0.75);
}

TEST(WorkloadCharacterTest, HealthChaseIsSerialised)
{
    // The patient-list walk must be a true pointer chase: each next
    // load's source register equals the previous load's destination.
    auto w = makeWorkload("health");
    MicroOp op;
    uint64_t chase_loads = 0;
    for (int i = 0; i < 100000; ++i) {
        w->next(op);
        if (op.isLoad() && op.pc == Addr{0x00400010}) {
            ++chase_loads;
            EXPECT_EQ(op.src1, op.dst); // serialised through one reg
        }
    }
    EXPECT_GT(chase_loads, 1000u);
}

TEST(WorkloadCharacterTest, DeltablueRecyclesConstraintAddresses)
{
    // Short-lived constraint objects must reuse addresses across
    // rounds — the allocator-recycling behaviour the paper's
    // deltablue depends on.
    auto w = makeWorkload("deltablue");
    MicroOp op;
    std::map<Addr, int> store_pc_counts;
    std::set<Addr> alloc_addrs;
    uint64_t repeats = 0, allocs = 0;
    for (int i = 0; i < 400000; ++i) {
        w->next(op);
        // Allocation stores write constraint field 0 at pc base+0x04.
        if (op.isStore() && op.pc == Addr{0x00600004}) {
            ++allocs;
            if (!alloc_addrs.insert(op.effAddr).second)
                ++repeats;
        }
    }
    ASSERT_GT(allocs, 100u);
    EXPECT_GT(double(repeats) / double(allocs), 0.5);
}

} // namespace
} // namespace psb
