/**
 * @file
 * psb_analyze fixture: R6 sweep shared state (clean). Same scope as
 * the bad fixture (file name contains "sweep") but every piece of
 * cross-worker state is legitimate: constants, atomics, a mutex with
 * the data it guards, and per-instance members owned by one job. The
 * self-test requires this file to report no findings.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace fixture
{

// Immutable after load: fine to share.
constexpr uint64_t kMaxAttempts = 3;
const std::string kEngineName = "sweep-engine";

// Synchronized by construction.
std::atomic<uint64_t> g_completedJobs{0};
std::mutex g_progressMu;

class JobState
{
  public:
    void
    bump()
    {
        // Per-instance member: each job owns its JobState.
        ++_attempts;
    }

  private:
    uint64_t _attempts = 0;
};

inline uint64_t
localWork(uint64_t n)
{
    // Plain locals are per-invocation, never shared.
    uint64_t acc = 0;
    for (uint64_t i = 0; i < n; ++i)
        acc += i;
    return acc;
}

} // namespace fixture
