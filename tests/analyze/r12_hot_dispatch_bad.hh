/**
 * @file
 * psb_analyze fixture: R12 hot-path dispatch (bad). Three dispatch
 * sites must be reported from the PSB_HOT_PATH root: a std::function
 * member invocation, a function-pointer call through (*fp)(...), and
 * a virtual call whose callee set cannot be resolved in-tree (the
 * interface declares step() but no implementation exists anywhere in
 * the analyzed set, so devirtualization is impossible). The
 * self-test requires this file to report exactly {R12}, with at
 * least two findings so the suppression round trip asserts
 * N -> N-1.
 */

#pragma once

#include <cstdint>
#include <functional>

namespace fixture
{

/** Interface with no in-tree implementation: a call through it can
 *  land anywhere. */
class OpaqueStage
{
  public:
    virtual ~OpaqueStage() = default;
    virtual void step(int v);
};

class DispatchingPath
{
  public:
    /** Per-cycle root: all dispatch must be devirtualizable. */
    PSB_HOT_PATH void step(OpaqueStage &stage, int v);

  private:
    std::function<void(int)> _callback;
    void (*_rawHook)(int) = nullptr;
};

inline void
DispatchingPath::step(OpaqueStage &stage, int v)
{
    _callback(v);
    (*_rawHook)(v);
    stage.step(v);
}

} // namespace fixture
