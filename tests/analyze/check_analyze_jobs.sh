#!/bin/sh
# Parallel-analysis determinism: psb_analyze --jobs N must produce a
# byte-identical findings JSON for any job count. Runs in fixture
# directory mode (nonzero findings, so the comparison is not
# trivially empty) at jobs 1, 2, and 8.
#
# Usage: check_analyze_jobs.sh <python3> <psb_analyze.py> <fixture-dir>
set -eu

PYTHON=$1
ANALYZE=$2
FIXTURES=$3

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

for jobs in 1 2 8; do
    # Exit code 1 (findings) is expected over the bad fixtures.
    "$PYTHON" "$ANALYZE" "$FIXTURES" --jobs "$jobs" \
        --json "$TMP/jobs$jobs.json" >"$TMP/jobs$jobs.out" 2>&1 \
        || [ $? -eq 1 ]
done

for jobs in 2 8; do
    if ! cmp -s "$TMP/jobs1.json" "$TMP/jobs$jobs.json"; then
        echo "check_analyze_jobs: --jobs $jobs output differs from" \
             "--jobs 1" >&2
        diff "$TMP/jobs1.json" "$TMP/jobs$jobs.json" >&2 || true
        exit 1
    fi
done

echo "check_analyze_jobs: byte-identical findings at jobs 1/2/8"
