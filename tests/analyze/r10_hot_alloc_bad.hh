/**
 * @file
 * psb_analyze fixture: R10 hot-path allocation (bad). Three
 * allocations must be reported from the PSB_HOT_PATH root: a direct
 * operator new in the root itself, a std::vector growth call on a
 * member, and a make_unique reached through a transitive two-hop
 * call chain (root -> refill -> grow), exercising the call-graph
 * reachability rather than a per-function scan. The self-test
 * requires this file to report exactly {R10}, with at least two
 * findings so the suppression round trip asserts N -> N-1.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace fixture
{

struct Slot
{
    int payload = 0;
};

class HotAllocator
{
  public:
    /** Per-cycle root: everything reachable from here must be
     *  allocation-free. */
    PSB_HOT_PATH void step(int v);

  private:
    void refill(int v);
    void grow(int v);

    std::vector<int> _log;
    Slot *_spare = nullptr;
    std::unique_ptr<Slot> _owned;
};

inline void
HotAllocator::step(int v)
{
    _spare = new Slot();
    _log.push_back(v);
    refill(v);
}

/** One hop down: still hot, delegates further. */
inline void
HotAllocator::refill(int v)
{
    if (v > 0)
        grow(v);
}

/** Two hops down: the allocation here is only visible through the
 *  interprocedural call graph. */
inline void
HotAllocator::grow(int v)
{
    _owned = std::make_unique<Slot>();
    _owned->payload = v;
}

} // namespace fixture
