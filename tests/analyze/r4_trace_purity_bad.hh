/**
 * @file
 * psb_analyze fixture: R4 trace-argument purity (bad). PSB_TRACE
 * arguments are not evaluated when tracing is compiled out or gated
 * off, so a side effect inside them makes simulated behavior depend
 * on the tracing flag. The self-test requires this file to report
 * exactly {R4}.
 */

#pragma once

#include <cstdint>

namespace fixture
{

inline void
noteFill(uint64_t &fills, int way)
{
    // The increment vanishes when tracing is off.
    PSB_TRACE("sb", "fill way=%d total=%llu", way, ++fills);
}

} // namespace fixture
