/**
 * @file
 * psb_analyze fixture: R4 counterpart (clean). The state change
 * happens unconditionally; the trace argument only reads it. The
 * self-test requires this file to report no findings.
 */

#pragma once

#include <cstdint>

namespace fixture
{

inline void
noteFill(uint64_t &fills, int way)
{
    ++fills;
    PSB_TRACE("sb", "fill way=%d total=%llu", way, fills);
}

} // namespace fixture
