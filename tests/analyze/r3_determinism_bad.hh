/**
 * @file
 * psb_analyze fixture: R3 determinism (bad). Exercises both R3
 * detectors: iteration over an unordered container whose body writes
 * observable state, and a pointer-keyed container hidden behind a
 * type alias. The self-test requires this file to report exactly
 * {R3}.
 */

#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

namespace fixture
{

class HashedTable
{
  public:
    /** Visit order is hash-seed noise, and the body accumulates into
     *  a member that feeds the stats export. */
    void
    exportAll()
    {
        for (const auto &kv : _table) {
            _exported += kv.second;
        }
    }

  private:
    std::unordered_map<uint64_t, uint64_t> _table;
    uint64_t _exported = 0;
};

struct Request
{
    int id = 0;
};

/** The pointer key hides behind an alias. */
using RequestKey = Request *;

class PendingQueue
{
  private:
    // Keyed by allocation address: iteration order is allocator noise.
    std::map<RequestKey, int> _pending;
};

} // namespace fixture
