/**
 * @file
 * psb_analyze fixture: declaration-site suppression (clean). The
 * allow(R10) sits on the method *declaration*; the allocation lives
 * in the matching out-of-line *definition*. The suppression contract
 * says a declaration-site allow() covers the definition too, so this
 * file must report nothing — and the self-test additionally strips
 * the allow comment and asserts the R10 finding surfaces, proving
 * the suppression (not the fixture) is what keeps this clean.
 */

#pragma once

#include <cstdint>

namespace fixture
{

struct Scratch
{
    int payload = 0;
};

class SanctionedAllocator
{
  public:
    /** Cold-start refill sanctioned by review: the allocation is
     *  intentional and audited (the runtime guard pauses here). */
    // psb-analyze: allow(R10)
    PSB_HOT_PATH void step();

  private:
    Scratch *_scratch = nullptr;
};

inline void
SanctionedAllocator::step()
{
    _scratch = new Scratch();
}

} // namespace fixture
