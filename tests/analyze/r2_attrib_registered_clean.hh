/**
 * @file
 * psb_analyze fixture: R2 over the attribution shape (clean). The two
 * registration idioms prefetch/attribution.cc actually uses: outcome
 * counters exported through lambda captures inside registerStats(),
 * and a derived ratio that reads several counters from one lambda.
 * The self-test requires this file to report no findings.
 */

#pragma once

#include <cstdint>

namespace fixture
{

class CountedAttribution
{
  public:
    void
    issue()
    {
        ++_issued;
    }

    void
    useTimely()
    {
        ++_usedTimely;
    }

    void
    squash()
    {
        ++_squashed;
    }

    void
    resetStats()
    {
        _issued = 0;
        _usedTimely = 0;
        _squashed = 0;
    }

    void
    registerStats(StatsRegistry &reg)
    {
        reg.addScalar("attrib.issued", &_issued);
        reg.addScalar("attrib.outcome.used_timely",
                      [this] { return _usedTimely; });
        reg.addScalar("attrib.outcome.squashed",
                      [this] { return _squashed; });
        reg.addReal("attrib.accuracy", [this] {
            return _issued ? double(_usedTimely) / double(_issued)
                           : 0.0;
        });
    }

  private:
    uint64_t _issued = 0;
    uint64_t _usedTimely = 0;
    uint64_t _squashed = 0;
};

} // namespace fixture
