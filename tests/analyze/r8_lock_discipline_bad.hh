/**
 * @file
 * psb_analyze fixture: R8 lock discipline (bad). A class that owns a
 * mutex must annotate every mutable data member with PSB_GUARDED_BY:
 * clang -Wthread-safety only checks what is annotated, so a
 * half-annotated class is how stale lock discipline slips through.
 * Two members here are bare; the self-test requires exactly {R8},
 * with two findings so the suppression round trip asserts 2 -> 1.
 *
 * The include of util/thread_annotations.hh also places this file on
 * the concurrency surface for the namespace-scope audit.
 */

#pragma once

#include <cstdint>
#include <deque>

#include "util/thread_annotations.hh"

namespace fixture
{

class WorkQueue
{
  public:
    void push(uint64_t item);

  private:
    Mutex _mu;
    /** Annotated: the good form. */
    std::deque<uint64_t> _queue PSB_GUARDED_BY(_mu);
    /** Bare mutable member sharing the class with _mu: finding 1. */
    uint64_t _accepted = 0;
    /** Bare mutable member sharing the class with _mu: finding 2. */
    bool _draining = false;
};

} // namespace fixture
