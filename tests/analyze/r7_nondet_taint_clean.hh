/**
 * @file
 * psb_analyze fixture: R7 nondeterminism-taint (clean). The same
 * sinks as the bad twin, but every chain passes a recognized barrier
 * first: an explicit std::sort before the sink loop, and a
 * barrier-named helper (sorted*) whose result is order-normalized by
 * contract. The self-test requires this file to report nothing.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture
{

/** Minimal stand-in for the StatsRegistry sink surface. */
class Recorder
{
  public:
    void sample(uint64_t v);
    void addReal(const char *key, double v);
};

/** Sorted copy: the name marks the result as order-normalized. */
inline std::vector<uint64_t>
sortedKeys(const std::unordered_map<uint64_t, uint64_t> &table)
{
    std::vector<uint64_t> keys;
    for (const auto &kv : table) {
        keys.push_back(kv.first);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

/** Iterating the barrier call's result is deterministic. */
inline void
exportKeys(Recorder &rec,
           const std::unordered_map<uint64_t, uint64_t> &table)
{
    for (uint64_t k : sortedKeys(table)) {
        rec.sample(k);
    }
}

/** An explicit sort between the unordered walk and the sink. */
inline void
exportCounts(Recorder &rec,
             const std::unordered_map<uint64_t, uint64_t> &table)
{
    std::vector<uint64_t> vals;
    for (const auto &kv : table) {
        vals.push_back(kv.second);
    }
    std::sort(vals.begin(), vals.end());
    for (uint64_t v : vals) {
        rec.sample(v);
    }
}

} // namespace fixture
