/**
 * @file
 * psb_analyze fixture: R9 interprocedural strong-type escape
 * (clean). The same computations as the bad twin with the math kept
 * inside the strong types: .raw() appears only to extract a final
 * scalar for reporting — never as an operand of further arithmetic —
 * and stepping uses the delta types. The self-test requires this
 * file to report nothing.
 */

#pragma once

#include <cstdint>

namespace fixture
{

class Addr;       // strong types, opaque here
class BlockDelta; // (difference type of Addr)

/** The subtraction stays inside the strong types; .raw() only
 *  extracts the finished width. */
inline uint64_t
spanBytes(const Addr &first, const Addr &last)
{
    return (last - first).raw();
}

/** Strong-typed stepping: no raw detour at all. */
inline Addr
nextLine(const Addr &base)
{
    return base + BlockDelta(1);
}

} // namespace fixture
