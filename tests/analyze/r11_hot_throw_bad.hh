/**
 * @file
 * psb_analyze fixture: R11 hot-path throw (bad). Three findings must
 * be reported from the PSB_HOT_PATH root: a throw statement, a
 * throwing stdlib call (std::vector::at), and an unbounded recursion
 * cycle (drain calling itself) — recursion cannot be proven
 * stack- and allocation-safe on the per-cycle path. The self-test
 * requires this file to report exactly {R11}, with at least two
 * findings so the suppression round trip asserts N -> N-1.
 */

#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace fixture
{

class ThrowingPath
{
  public:
    /** Per-cycle root: everything reachable must be throw-free. */
    PSB_HOT_PATH int step(std::size_t i);

  private:
    int drain(int budget);

    std::vector<int> _vals;
    int _bad = -1;
};

inline int
ThrowingPath::step(std::size_t i)
{
    if (i >= _vals.size())
        throw _bad;
    int v = _vals.at(i);
    return v + drain(v);
}

/** Self-recursion: a cycle in the hot call graph. */
inline int
ThrowingPath::drain(int budget)
{
    if (budget <= 0)
        return 0;
    return 1 + drain(budget - 1);
}

} // namespace fixture
