/**
 * @file
 * psb_analyze fixture: R6 sweep shared state (bad). The file name
 * contains "sweep", putting it in R6's scope. Exercises both R6
 * detectors: a mutable namespace-scope variable and a mutable
 * function-local static, neither const, atomic, nor mutex-guarded —
 * every sweep worker would share them. The self-test requires this
 * file to report exactly {R6}.
 */

#pragma once

#include <cstdint>
#include <string>

namespace fixture
{

// Namespace-scope mutable state: every worker running a job in this
// translation unit reads and writes the same object, unsynchronized.
uint64_t g_completedJobs = 0;

inline std::string
describeAttempt(int attempt)
{
    // Shared by every call from every worker; a classic hidden race.
    static int s_lastAttempt = 0;
    s_lastAttempt = attempt;
    return "attempt " + std::to_string(s_lastAttempt);
}

} // namespace fixture
