/**
 * @file
 * psb_analyze fixture: R8 lock discipline (clean). The mutex-owning
 * class annotates every mutable member (or uses a type that is
 * synchronized by construction), and a mutex-free single-threaded
 * class stays out of the audit's scope entirely. The self-test
 * requires this file to report nothing.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>

#include "util/thread_annotations.hh"

namespace fixture
{

class WorkQueue
{
  public:
    void push(uint64_t item);

  private:
    Mutex _mu;
    std::deque<uint64_t> _queue PSB_GUARDED_BY(_mu);
    uint64_t _accepted PSB_GUARDED_BY(_mu) = 0;
    /** Synchronized by construction: needs no guard. */
    std::atomic<bool> _draining{false};
};

/** No mutex, no annotations: single-threaded, out of scope. */
class Scratch
{
  private:
    uint64_t _cursor = 0;
    bool _dirty = false;
};

} // namespace fixture
