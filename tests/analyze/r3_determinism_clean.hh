/**
 * @file
 * psb_analyze fixture: R3 counterpart (clean). The same shapes made
 * deterministic: an ordered map for the accumulating walk, and a
 * value key instead of a pointer key. The self-test requires this
 * file to report no findings.
 */

#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

namespace fixture
{

class OrderedTable
{
  public:
    /** std::map visits keys in sorted order — deterministic. */
    void
    exportAll()
    {
        for (const auto &kv : _table) {
            _exported += kv.second;
        }
    }

    /** Unordered lookup without iteration is fine. */
    bool
    contains(uint64_t key) const
    {
        return _index.find(key) != _index.end();
    }

  private:
    std::map<uint64_t, uint64_t> _table;
    std::unordered_map<uint64_t, uint64_t> _index;
    uint64_t _exported = 0;
};

class PendingQueue
{
  private:
    // Keyed by stable request id, not by allocation address.
    std::map<uint64_t, int> _pending;
};

} // namespace fixture
