/**
 * @file
 * psb_analyze fixture: R1 strong-type escapes (bad). Exercises all
 * three R1 sub-detectors; the self-test requires this file to report
 * exactly {R1}.
 */

#pragma once

#include <cstdint>

namespace fixture
{

// R1a: a raw uint64_t parameter named like an address.
void prefetchTo(uint64_t addr, unsigned depth);

// R1a: a raw uint64_t parameter named like a cycle, in a definition.
inline bool
busyAt(uint64_t cycle)
{
    return cycle != 0;
}

// R1b: arithmetic combining two .raw() escapes — this subtraction
// belongs to the BlockAddr/BlockDelta operators.
inline uint64_t
missDistance(BlockAddr a, BlockAddr b)
{
    return a.raw() - b.raw();
}

// R1c: a strong-type constructor fed .raw() arithmetic — the value
// escaped the domain and re-enters unchecked.
inline Cycle
retireAt(Cycle dispatch, uint64_t latency)
{
    return Cycle(dispatch.raw() + latency);
}

} // namespace fixture
