/**
 * @file
 * psb_analyze fixture: R2 over the attribution shape (bad). The
 * lifecycle tracker bumps a terminal-outcome counter that its
 * registerStats() body never exports — a settled prefetch whose
 * outcome silently vanishes from prefetch.attrib.*, which would also
 * unbalance the issued == settled conservation sum as observed from
 * the stats JSON. The self-test requires this file to report exactly
 * {R2}.
 */

#pragma once

#include <cstdint>

namespace fixture
{

class LeakyAttribution
{
  public:
    void
    issue()
    {
        ++_issued;
    }

    void
    squash()
    {
        ++_squashed;
    }

    void
    resetStats()
    {
        _issued = 0;
        _squashed = 0;
    }

    void
    registerStats(StatsRegistry &reg)
    {
        // _squashed is missing: the outcome bucket never reaches the
        // exported subtree.
        reg.addScalar("attrib.issued", &_issued);
    }

  private:
    uint64_t _issued = 0;
    uint64_t _squashed = 0;
};

} // namespace fixture
