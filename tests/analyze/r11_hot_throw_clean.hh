/**
 * @file
 * psb_analyze fixture: R11 hot-path throw (clean). The same
 * computation as the bad twin with the failure modes designed out:
 * bounds are checked and reported through the return value instead
 * of a throw, indexing uses operator[] after the explicit check, and
 * the drain loop is iterative. The self-test requires this file to
 * report nothing.
 */

#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace fixture
{

class CheckedPath
{
  public:
    /** Per-cycle root: total, bounded, throw-free. */
    PSB_HOT_PATH int step(std::size_t i);

  private:
    int drain(int budget);

    std::vector<int> _vals;
};

inline int
CheckedPath::step(std::size_t i)
{
    if (i >= _vals.size())
        return -1;
    int v = _vals[i];
    return v + drain(v);
}

/** Iterative drain: no recursion on the hot path. */
inline int
CheckedPath::drain(int budget)
{
    int total = 0;
    while (budget-- > 0)
        ++total;
    return total;
}

} // namespace fixture
