/**
 * @file
 * psb_analyze fixture: R7 nondeterminism-taint (bad). Two taint
 * chains must be reported: unordered iteration order feeding a stats
 * sink directly, and a wall-clock value laundered through a helper
 * function (exercising the cross-function summary). The self-test
 * requires this file to report exactly {R7}, with at least two
 * findings so the suppression round trip asserts N -> N-1.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <unordered_map>

namespace fixture
{

/** Minimal stand-in for the StatsRegistry sink surface. */
class Recorder
{
  public:
    void sample(uint64_t v);
    void addReal(const char *key, double v);
};

/** Wall-clock reading hidden behind a helper: the per-function
 *  summary must carry the taint to the caller. */
inline double
elapsedSeconds()
{
    return double(std::chrono::steady_clock::now()
                      .time_since_epoch()
                      .count());
}

/** Visit order of `table` is hash-seed noise, and every visit lands
 *  in the histogram sink unsorted. */
inline void
exportCounts(Recorder &rec,
             const std::unordered_map<uint64_t, uint64_t> &table)
{
    for (const auto &kv : table) {
        rec.sample(kv.second);
    }
}

/** The clock taint arrives through the helper's return value. */
inline void
exportTiming(Recorder &rec)
{
    rec.addReal("wall_seconds", elapsedSeconds());
}

} // namespace fixture
