/**
 * @file
 * psb_analyze fixture: R2 stats completeness (bad). LeakyCounter
 * bumps a counter that no registerStats() body ever exports — the
 * count is spent simulation work that silently never reaches the
 * stats JSON. The self-test requires this file to report exactly
 * {R2}.
 */

#pragma once

#include <cstdint>

namespace fixture
{

class LeakyCounter
{
  public:
    void
    record()
    {
        ++_drops;
    }

    /** Participates in the stats protocol... */
    void resetStats() { _drops = 0; }

    // ...but nothing registers _drops anywhere.

  private:
    uint64_t _drops = 0;
};

} // namespace fixture
