/**
 * @file
 * psb_analyze fixture: R2 counterpart (clean). Two registration
 * shapes the analyzer must accept: direct registration of the member,
 * and the cross-TU shape where an owning component exports another
 * class's counter through its public accessor. The self-test requires
 * this file to report no findings.
 */

#pragma once

#include <cstdint>

namespace fixture
{

/** Direct shape: the counter's own class registers it. */
class CountedCounter
{
  public:
    void
    record()
    {
        ++_drops;
    }

    void resetStats() { _drops = 0; }

    void
    registerStats(StatsRegistry &reg)
    {
        reg.addScalar("fixture.drops", &_drops);
    }

  private:
    uint64_t _drops = 0;
};

/** Accessor shape, inner half: bumps _lost, exposes it read-only. */
class Inner
{
  public:
    void
    record()
    {
        ++_lost;
    }

    uint64_t lost() const { return _lost; }

    void resetStats() { _lost = 0; }

  private:
    uint64_t _lost = 0;
};

/** Accessor shape, outer half: registers the inner counter. */
class Owner
{
  public:
    void
    registerStats(StatsRegistry &reg)
    {
        reg.addScalar("fixture.lost", [this] { return _inner.lost(); });
    }

  private:
    Inner _inner;
};

} // namespace fixture
