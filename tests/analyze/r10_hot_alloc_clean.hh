/**
 * @file
 * psb_analyze fixture: R10 hot-path allocation (clean). The same
 * shape as the bad twin with the storage preallocated at
 * construction: the constructor (not reachable from the hot root)
 * sizes the buffer once, and the per-cycle path only indexes into
 * it. The self-test requires this file to report nothing.
 */

#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace fixture
{

class PreallocatedRing
{
  public:
    PreallocatedRing() { _ring.resize(kCapacity); }

    /** Per-cycle root: writes into preallocated storage only. */
    PSB_HOT_PATH void step(int v);

  private:
    void record(int v);

    static constexpr std::size_t kCapacity = 64;
    std::vector<int> _ring;
    std::size_t _head = 0;
};

inline void
PreallocatedRing::step(int v)
{
    record(v);
}

inline void
PreallocatedRing::record(int v)
{
    _ring[_head] = v;
    _head = (_head + 1) % kCapacity;
}

} // namespace fixture
