/**
 * @file
 * psb_analyze fixture: R9 interprocedural strong-type escape (bad).
 * Two round trips must be reported: two .raw() escapes recombined
 * with arithmetic in a later statement, and an escaped value that
 * drifts through a local, picks up arithmetic, and re-enters the
 * strong type via its constructor. Every statement keeps at most one
 * direct .raw() call, so the intra-statement rule R1 stays silent —
 * R9 exists for exactly the chains R1 cannot see. The self-test
 * requires exactly {R9}, with two findings so the suppression round
 * trip asserts 2 -> 1.
 */

#pragma once

#include <cstdint>

namespace fixture
{

class Addr; // strong type, opaque here: only .raw() matters

constexpr uint64_t kLineBytes = 64;

/** Both operands escaped in earlier statements; the subtraction then
 *  happens in the raw domain. */
inline uint64_t
spanBytes(const Addr &first, const Addr &last)
{
    uint64_t lo = first.raw();
    uint64_t hi = last.raw();
    return hi - lo; // finding 1: raw carriers recombined
}

/** The escape drifts through a local and re-enters the strong type
 *  after raw arithmetic. */
inline Addr
nextLine(const Addr &base)
{
    uint64_t cursor = base.raw();
    cursor = cursor + kLineBytes;
    return Addr(cursor); // finding 2: re-entry after raw arithmetic
}

} // namespace fixture
