/**
 * @file
 * psb_analyze fixture: R1 counterpart (clean). The same interfaces as
 * the bad fixture, expressed in the strong domain types; the
 * self-test requires this file to report no findings.
 */

#pragma once

#include <cstdint>

namespace fixture
{

// Addresses travel as ByteAddr, not uint64_t.
void prefetchTo(ByteAddr addr, unsigned depth);

// Cycles travel as Cycle.
inline bool
busyAt(Cycle cycle)
{
    return cycle != Cycle{};
}

// Block distance stays inside the domain operators.
inline BlockDelta
missDistance(BlockAddr a, BlockAddr b)
{
    return a - b;
}

// Cycle arithmetic through the CycleDelta operators.
inline Cycle
retireAt(Cycle dispatch, CycleDelta latency)
{
    return dispatch + latency;
}

} // namespace fixture
