/**
 * @file
 * psb_analyze fixture: R12 hot-path dispatch (clean). The virtual
 * call is fully resolvable in-tree: the interface's only
 * implementations are in the analyzed set, so the callee set is
 * complete and every implementation is itself audited as hot. The
 * callback of the bad twin is replaced by a direct call. The
 * self-test requires this file to report nothing.
 */

#pragma once

#include <cstdint>

namespace fixture
{

/** Interface whose complete override set is in-tree. */
class Stage
{
  public:
    virtual ~Stage() = default;
    virtual int step(int v) = 0;
};

class DoublerStage : public Stage
{
  public:
    int step(int v) override { return v + v; }
};

class IdentityStage : public Stage
{
  public:
    int step(int v) override { return v; }
};

class ResolvedPath
{
  public:
    /** Per-cycle root: dispatch resolves to {DoublerStage,
     *  IdentityStage}::step, both audited transitively. */
    PSB_HOT_PATH int step(Stage &stage, int v);
};

inline int
ResolvedPath::step(Stage &stage, int v)
{
    return stage.step(v);
}

} // namespace fixture
