/**
 * @file
 * Contract tests for the strong address/cycle domain types. Three
 * groups: value semantics and round-trips, the 16-bit delta
 * saturation behaviour the differential Markov table relies on, and
 * concept-based proofs that the illegal cross-domain operations do
 * not compile (checked at compile time via requires-expressions, so
 * a regression here is a build failure, not a runtime one).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/strong_types.hh"

namespace psb
{
namespace
{

// ---------------------------------------------------------------- //
// Compile-time contract: which operations exist at all.
// ---------------------------------------------------------------- //

template <typename A, typename B>
concept CanAdd = requires(A a, B b) { a + b; };

template <typename A, typename B>
concept CanSubtract = requires(A a, B b) { a - b; };

template <typename A, typename B>
concept CanCompare = requires(A a, B b) { a < b; };

template <typename A, typename B>
concept CanConvert = requires(A a) { B(a); };

// Legal arithmetic, as documented in strong_types.hh.
static_assert(CanAdd<ByteAddr, uint64_t>);
static_assert(CanSubtract<ByteAddr, ByteAddr>);
static_assert(CanAdd<BlockAddr, BlockDelta>);
static_assert(CanSubtract<BlockAddr, BlockAddr>);
static_assert(CanAdd<BlockDelta, BlockDelta>);
static_assert(CanAdd<Cycle, CycleDelta>);
static_assert(CanSubtract<Cycle, Cycle>);
static_assert(CanAdd<CycleDelta, CycleDelta>);

// Cross-domain arithmetic must not compile: a byte address is not a
// block number, a block distance is not a duration, and vice versa.
static_assert(!CanAdd<ByteAddr, BlockAddr>);
static_assert(!CanAdd<ByteAddr, BlockDelta>);
static_assert(!CanAdd<ByteAddr, ByteAddr>);
static_assert(!CanAdd<BlockAddr, BlockAddr>);
static_assert(!CanAdd<BlockAddr, ByteAddr>);
static_assert(!CanAdd<BlockAddr, CycleDelta>);
static_assert(!CanAdd<Cycle, Cycle>);
static_assert(!CanAdd<Cycle, BlockDelta>);
static_assert(!CanAdd<Cycle, uint64_t>);
static_assert(!CanSubtract<ByteAddr, BlockAddr>);
static_assert(!CanSubtract<BlockAddr, ByteAddr>);
static_assert(!CanSubtract<Cycle, BlockDelta>);
static_assert(!CanSubtract<CycleDelta, Cycle>);

// Ordering never crosses domains either.
static_assert(CanCompare<ByteAddr, ByteAddr>);
static_assert(CanCompare<Cycle, Cycle>);
static_assert(!CanCompare<ByteAddr, BlockAddr>);
static_assert(!CanCompare<Cycle, CycleDelta>);
static_assert(!CanCompare<ByteAddr, uint64_t>);

// No implicit raw-integer conversions in either direction: entering
// or leaving a domain is always spelled out (ctor / raw()).
static_assert(!std::is_convertible_v<uint64_t, ByteAddr>);
static_assert(!std::is_convertible_v<uint64_t, BlockAddr>);
static_assert(!std::is_convertible_v<uint64_t, Cycle>);
static_assert(!std::is_convertible_v<int64_t, BlockDelta>);
static_assert(!std::is_convertible_v<ByteAddr, uint64_t>);
static_assert(!std::is_convertible_v<Cycle, uint64_t>);

// Domain-to-domain conversion only via the explicit line-size
// carrying helpers, never by construction.
static_assert(!CanConvert<ByteAddr, BlockAddr>);
static_assert(!CanConvert<BlockAddr, ByteAddr>);
static_assert(!CanConvert<Cycle, CycleDelta>);

// The wrappers must cost nothing: trivially copyable and exactly the
// size of the raw integer they replace.
static_assert(std::is_trivially_copyable_v<ByteAddr>);
static_assert(std::is_trivially_copyable_v<BlockAddr>);
static_assert(std::is_trivially_copyable_v<BlockDelta>);
static_assert(std::is_trivially_copyable_v<Cycle>);
static_assert(std::is_trivially_copyable_v<CycleDelta>);
static_assert(sizeof(ByteAddr) == sizeof(uint64_t));
static_assert(sizeof(BlockDelta) == sizeof(int64_t));
static_assert(sizeof(Cycle) == sizeof(uint64_t));

// ---------------------------------------------------------------- //
// Byte <-> block round-trips.
// ---------------------------------------------------------------- //

TEST(StrongTypesTest, ByteBlockRoundTrip)
{
    constexpr unsigned lineBits = 5; // 32-byte lines
    ByteAddr a{0x12345678};
    BlockAddr b = a.toBlock(lineBits);
    EXPECT_EQ(b.raw(), 0x12345678u >> 5);
    // Round-tripping recovers the line-aligned address.
    EXPECT_EQ(b.toByte(lineBits), a.alignDown(32));
    // An already-aligned address round-trips exactly.
    ByteAddr aligned{0x12345660};
    EXPECT_EQ(aligned.toBlock(lineBits).toByte(lineBits), aligned);
}

TEST(StrongTypesTest, AlignDown)
{
    ByteAddr a{0x1234567b};
    EXPECT_EQ(a.alignDown(32), ByteAddr{0x12345660});
    EXPECT_EQ(a.alignDown(1), a);
    EXPECT_EQ(ByteAddr{}.alignDown(64), ByteAddr{});
}

TEST(StrongTypesTest, ByteOffsetArithmetic)
{
    ByteAddr a{0x1000};
    EXPECT_EQ(a + 0x40, ByteAddr{0x1040});
    EXPECT_EQ(a - 0x40, ByteAddr{0xfc0});
    EXPECT_EQ((a + 0x40) - a, 0x40);
    EXPECT_EQ(a - (a + 0x40), -0x40);
    a += 8;
    EXPECT_EQ(a, ByteAddr{0x1008});
}

TEST(StrongTypesTest, BlockArithmeticRoundTrip)
{
    BlockAddr from{0x800};
    BlockAddr to{0x7fe};
    BlockDelta d = to - from;
    EXPECT_EQ(d, BlockDelta{-2});
    EXPECT_EQ(from + d, to);
    from += d;
    EXPECT_EQ(from, to);
    EXPECT_EQ(d.toBytes(5), -64);
    EXPECT_EQ(-d, BlockDelta{2});
}

TEST(StrongTypesTest, CycleArithmeticRoundTrip)
{
    Cycle now{100};
    CycleDelta lat{12};
    Cycle ready = now + lat;
    EXPECT_EQ(ready.raw(), 112u);
    EXPECT_EQ(ready - now, lat);
    EXPECT_EQ(ready - lat, now);
    EXPECT_EQ(CycleDelta{3} * 4, CycleDelta{12});
    EXPECT_EQ(4 * CycleDelta{3}, CycleDelta{12});
    ++now;
    EXPECT_EQ(now.raw(), 101u);
    EXPECT_EQ(maxCycle(now, ready), ready);
    EXPECT_EQ(minCycle(now, ready), now);
}

TEST(StrongTypesTest, CheckedAddStaysInDomain)
{
    // checkedAdd is the in-domain form of "base + signed delta, or
    // nothing on underflow" — the pattern the Markov lookup used to
    // spell with .raw() casts (psb_analyze rule R1).
    BlockAddr base{0x100};
    auto fwd = checkedAdd(base, BlockDelta{5});
    ASSERT_TRUE(fwd.has_value());
    EXPECT_EQ(*fwd, BlockAddr{0x105});

    auto back = checkedAdd(base, BlockDelta{-0x100});
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, BlockAddr{0});

    // One block below zero underflows: no address, not a wrapped one.
    EXPECT_FALSE(checkedAdd(base, BlockDelta{-0x101}).has_value());
    EXPECT_FALSE(checkedAdd(BlockAddr{0}, BlockDelta{-1}).has_value());

    EXPECT_EQ(checkedAdd(base, BlockDelta{0}), base);
}

TEST(StrongTypesTest, CycleDeltaDivisionTruncates)
{
    // CycleDelta / n is the in-domain form of the pipelined-accept
    // interval computation (latency / depth); integer division
    // truncates toward zero like the raw math it replaces.
    EXPECT_EQ(CycleDelta{12} / 4, CycleDelta{3});
    EXPECT_EQ(CycleDelta{13} / 4, CycleDelta{3});
    EXPECT_EQ(CycleDelta{3} / 4, CycleDelta{0});
    EXPECT_EQ(CycleDelta{7} / 1, CycleDelta{7});
    // Round-trips with the scalar product for exact multiples.
    EXPECT_EQ((CycleDelta{3} * 4) / 4, CycleDelta{3});
}

TEST(StrongTypesTest, Sentinels)
{
    EXPECT_EQ(ByteAddr::max().raw(), ~uint64_t(0));
    EXPECT_EQ(BlockAddr::max().raw(), ~uint64_t(0));
    EXPECT_EQ(Cycle::max().raw(), ~uint64_t(0));
    EXPECT_LT(Cycle{1'000'000'000}, Cycle::max());
    // Default construction is the zero of each domain.
    EXPECT_EQ(ByteAddr{}.raw(), 0u);
    EXPECT_EQ(BlockDelta{}.raw(), 0);
    EXPECT_EQ(Cycle{}.raw(), 0u);
}

// ---------------------------------------------------------------- //
// 16-bit delta storage: fitsIn and saturatedTo around +/-2^15.
// ---------------------------------------------------------------- //

TEST(StrongTypesTest, DeltaFitsInSixteenBits)
{
    EXPECT_TRUE(BlockDelta{0}.fitsIn(16));
    EXPECT_TRUE(BlockDelta{32767}.fitsIn(16));
    EXPECT_FALSE(BlockDelta{32768}.fitsIn(16));
    EXPECT_TRUE(BlockDelta{-32768}.fitsIn(16));
    EXPECT_FALSE(BlockDelta{-32769}.fitsIn(16));
    // Works for narrower widths too (e.g. 8-bit table variants).
    EXPECT_TRUE(BlockDelta{127}.fitsIn(8));
    EXPECT_FALSE(BlockDelta{128}.fitsIn(8));
    EXPECT_TRUE(BlockDelta{-128}.fitsIn(8));
    EXPECT_FALSE(BlockDelta{-129}.fitsIn(8));
}

TEST(StrongTypesTest, DeltaSaturatesAtSixteenBitRails)
{
    // In-range deltas pass through untouched.
    EXPECT_EQ(BlockDelta{12}.saturatedTo(16), BlockDelta{12});
    EXPECT_EQ(BlockDelta{-12}.saturatedTo(16), BlockDelta{-12});
    EXPECT_EQ(BlockDelta{32767}.saturatedTo(16), BlockDelta{32767});
    EXPECT_EQ(BlockDelta{-32768}.saturatedTo(16), BlockDelta{-32768});
    // Out-of-range clamps to the nearest rail, however far out.
    EXPECT_EQ(BlockDelta{32768}.saturatedTo(16), BlockDelta{32767});
    EXPECT_EQ(BlockDelta{-32769}.saturatedTo(16), BlockDelta{-32768});
    EXPECT_EQ(BlockDelta{1'000'000}.saturatedTo(16), BlockDelta{32767});
    EXPECT_EQ(BlockDelta{-1'000'000}.saturatedTo(16),
              BlockDelta{-32768});
    // A saturated delta always fits afterwards.
    EXPECT_TRUE(BlockDelta{1'000'000}.saturatedTo(16).fitsIn(16));
}

// ---------------------------------------------------------------- //
// Hash and formatting support.
// ---------------------------------------------------------------- //

TEST(StrongTypesTest, UsableAsHashKeys)
{
    std::unordered_map<ByteAddr, int> byPc;
    byPc[ByteAddr{0x400000}] = 1;
    byPc[ByteAddr{0x400004}] = 2;
    EXPECT_EQ(byPc.at(ByteAddr{0x400004}), 2);

    std::unordered_set<BlockAddr> blocks;
    blocks.insert(BlockAddr{0x800});
    EXPECT_TRUE(blocks.contains(BlockAddr{0x800}));
    EXPECT_FALSE(blocks.contains(BlockAddr{0x801}));

    std::unordered_map<BlockDelta, int> byDelta;
    byDelta[BlockDelta{-2}] = 7;
    EXPECT_EQ(byDelta.at(BlockDelta{-2}), 7);
}

TEST(StrongTypesTest, StreamFormatting)
{
    std::ostringstream os;
    os << ByteAddr{0x4000} << " " << BlockAddr{0x200} << " "
       << BlockDelta{-2} << " " << Cycle{42} << " " << CycleDelta{8};
    EXPECT_EQ(os.str(), "0x4000 blk:0x200 -2blk 42 8");
    // The hex manipulator must not leak into later output.
    os << " " << 255;
    EXPECT_EQ(os.str(), "0x4000 blk:0x200 -2blk 42 8 255");
}

} // namespace
} // namespace psb
