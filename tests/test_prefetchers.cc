/**
 * @file
 * Tests for the comparison prefetchers: Farkas PC-stride stream
 * buffers, Jouppi sequential buffers, next-line prefetching, and the
 * one-shot demand Markov prefetcher.
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"
#include "prefetch/markov_prefetcher.hh"
#include "prefetch/next_line_prefetcher.hh"
#include "prefetch/sequential_stream_buffers.hh"
#include "prefetch/stride_stream_buffers.hh"

namespace psb
{
namespace
{

MemoryConfig
quietMemory()
{
    MemoryConfig cfg;
    cfg.tlbMissPenalty = CycleDelta{};
    return cfg;
}

constexpr Addr pc{0x400010};
constexpr unsigned lineBits = 5; // default 32-byte blocks

void
tickRange(Prefetcher &pf, Cycle from, Cycle to)
{
    for (Cycle c = from; c < to; ++c)
        pf.tick(c);
}

TEST(FarkasPredictorTest, PredictsFixedStrideFromAllocation)
{
    FarkasStridePredictor pred;
    for (int i = 0; i < 5; ++i)
        pred.train(pc, Addr(0x1000 + 128 * i));
    StreamState s = pred.allocateStream(pc, Addr{0x1000 + 128 * 4});
    EXPECT_EQ(s.stride, BlockDelta{128 >> lineBits});
    // The stride is fixed at allocation and never re-read: retraining
    // the table does not bend an existing stream.
    pred.train(pc, Addr{0x90000});
    pred.train(pc, Addr{0x90040});
    pred.train(pc, Addr{0x90080});
    auto p = pred.predictNext(s);
    EXPECT_EQ(*p, Addr{0x1000 + 128 * 5}.toBlock(lineBits));
}

TEST(FarkasPredictorTest, TwoMissFilterIsStrideRepetition)
{
    FarkasStridePredictor pred;
    pred.train(pc, Addr{0x1000});
    pred.train(pc, Addr{0x1080});
    EXPECT_FALSE(pred.twoMissFilterPass(pc, Addr{0x1080}));
    pred.train(pc, Addr{0x1100});
    EXPECT_TRUE(pred.twoMissFilterPass(pc, Addr{0x1100}));
}

TEST(StrideStreamBuffersTest, FollowsStrideStreamEndToEnd)
{
    MemoryHierarchy hier(quietMemory());
    StrideStreamBuffers sb({}, {}, hier);

    // Train a 128-byte stride, then allocate via two filtered misses.
    Addr a{0x10000};
    for (int i = 0; i < 4; ++i) {
        sb.trainLoad(pc, a + 128 * i, true, false);
        sb.demandMiss(pc, a + 128 * i, Cycle(i));
    }
    tickRange(sb, Cycle{10}, Cycle{400});
    // The next blocks in the stride stream are now prefetched.
    EXPECT_TRUE(sb.lookup(a + 128 * 4, Cycle{1000}).hit);
    EXPECT_TRUE(sb.lookup(a + 128 * 5, Cycle{1001}).hit);
    EXPECT_GT(sb.stats().prefetchesUsed, 0u);
}

TEST(StrideStreamBuffersTest, NoAllocationWithoutRepeatedStride)
{
    MemoryHierarchy hier(quietMemory());
    StrideStreamBuffers sb({}, {}, hier);
    // Random misses never repeat a stride.
    sb.trainLoad(pc, Addr{0x1000}, true, false);
    sb.demandMiss(pc, Addr{0x1000}, Cycle{});
    sb.trainLoad(pc, Addr{0x9000}, true, false);
    sb.demandMiss(pc, Addr{0x9000}, Cycle{1});
    sb.trainLoad(pc, Addr{0x4000}, true, false);
    sb.demandMiss(pc, Addr{0x4000}, Cycle{2});
    EXPECT_EQ(sb.stats().allocations, 0u);
}

TEST(SequentialStreamBuffersTest, PrefetchesConsecutiveBlocks)
{
    MemoryHierarchy hier(quietMemory());
    SequentialStreamBuffers sb({}, hier);
    sb.demandMiss(pc, Addr{0x20000}, Cycle{});
    tickRange(sb, Cycle{1}, Cycle{300});
    // Jouppi buffers fetch the next sequential blocks.
    EXPECT_TRUE(sb.lookup(Addr{0x20020}, Cycle{1000}).hit);
    EXPECT_TRUE(sb.lookup(Addr{0x20040}, Cycle{1001}).hit);
}

TEST(SequentialStreamBuffersTest, EveryMissAllocates)
{
    MemoryHierarchy hier(quietMemory());
    SequentialStreamBuffers sb({}, hier);
    for (int i = 0; i < 5; ++i)
        sb.demandMiss(pc, Addr(0x20000 + 0x10000 * i), Cycle(i));
    EXPECT_EQ(sb.stats().allocations, 5u);
}

TEST(NextLineTest, MissTriggersNextBlockPrefetch)
{
    MemoryHierarchy hier(quietMemory());
    NextLinePrefetcher nlp(hier);
    nlp.demandMiss(pc, Addr{0x30000}, Cycle{});
    tickRange(nlp, Cycle{1}, Cycle{300});
    EXPECT_TRUE(nlp.lookup(Addr{0x30020}, Cycle{1000}).hit);
    EXPECT_FALSE(nlp.lookup(Addr{0x30040}, Cycle{1001}).hit); // degree 1
}

TEST(NextLineTest, DegreeControlsDepth)
{
    MemoryHierarchy hier(quietMemory());
    NextLinePrefetcher nlp(hier, 16, /*degree=*/3);
    nlp.demandMiss(pc, Addr{0x30000}, Cycle{});
    tickRange(nlp, Cycle{1}, Cycle{600});
    EXPECT_TRUE(nlp.lookup(Addr{0x30020}, Cycle{1000}).hit);
    EXPECT_TRUE(nlp.lookup(Addr{0x30040}, Cycle{1001}).hit);
    EXPECT_TRUE(nlp.lookup(Addr{0x30060}, Cycle{1002}).hit);
}

TEST(NextLineTest, DuplicateRequestsCoalesce)
{
    MemoryHierarchy hier(quietMemory());
    NextLinePrefetcher nlp(hier);
    nlp.demandMiss(pc, Addr{0x30000}, Cycle{});
    nlp.demandMiss(pc, Addr{0x30000}, Cycle{1});
    tickRange(nlp, Cycle{2}, Cycle{300});
    EXPECT_EQ(nlp.stats().prefetchesIssued, 1u);
}

TEST(MarkovPrefetcherTest, LearnsMissTransitionAndPrefetches)
{
    MemoryHierarchy hier(quietMemory());
    MarkovPrefetcher mp(hier);
    // Train the A -> B transition via the global miss stream.
    mp.trainLoad(pc, Addr{0x40000}, true, false);
    mp.trainLoad(pc, Addr{0x55000}, true, false);
    // Next miss of A triggers a prefetch of B.
    mp.trainLoad(pc, Addr{0x40000}, true, false);
    mp.demandMiss(pc, Addr{0x40000}, Cycle{10});
    tickRange(mp, Cycle{11}, Cycle{300});
    EXPECT_TRUE(mp.lookup(Addr{0x55000}, Cycle{1000}).hit);
}

TEST(MarkovPrefetcherTest, OneShotNoReindexing)
{
    // Joseph & Grunwald's prefetcher does NOT feed predictions back:
    // after prefetching B (successor of A), it does not go on to
    // prefetch B's successor.
    MemoryHierarchy hier(quietMemory());
    MarkovPrefetcher mp(hier);
    mp.trainLoad(pc, Addr{0x40000}, true, false);
    mp.trainLoad(pc, Addr{0x55000}, true, false);
    mp.trainLoad(pc, Addr{0x66000}, true, false);
    mp.demandMiss(pc, Addr{0x40000}, Cycle{10});
    tickRange(mp, Cycle{11}, Cycle{400});
    EXPECT_FALSE(mp.lookup(Addr{0x66000}, Cycle{1000}).hit);
    EXPECT_EQ(mp.stats().prefetchesIssued, 1u);
}

TEST(MarkovPrefetcherTest, HitsOnlyOnMissStreamTraining)
{
    MemoryHierarchy hier(quietMemory());
    MarkovPrefetcher mp(hier);
    mp.trainLoad(pc, Addr{0x40000}, /*miss=*/false, false); // ignored
    mp.trainLoad(pc, Addr{0x55000}, true, false);
    mp.demandMiss(pc, Addr{0x40000}, Cycle{10});
    tickRange(mp, Cycle{11}, Cycle{300});
    EXPECT_FALSE(mp.lookup(Addr{0x55000}, Cycle{1000}).hit);
}

TEST(MarkovPrefetcherTest, AdaptivityDisablesUselessEntries)
{
    // Joseph & Grunwald's accuracy-based adaptivity: an entry whose
    // prefetches keep being discarded unused is disabled.
    MemoryHierarchy hier(quietMemory());
    MarkovPrefetcher mp(hier, {}, /*buffer_entries=*/1,
                        /*adaptive=*/true);
    // Train A -> B once; then repeatedly trigger A and let the
    // one-entry buffer discard the unused B-prefetch each round by
    // triggering an unrelated transition C -> D.
    mp.trainLoad(pc, Addr{0x40000}, true, false);
    mp.trainLoad(pc, Addr{0x55000}, true, false); // A -> B
    mp.trainLoad(pc, Addr{0x70020}, true, false);
    mp.trainLoad(pc, Addr{0x81000}, true, false); // C -> D
    uint64_t preds_before = 0;
    for (int round = 0; round < 6; ++round) {
        mp.demandMiss(pc, Addr{0x40000}, Cycle(10 * round));
        for (Cycle c(10 * round + 1); c < Cycle(10 * round + 9); ++c)
            mp.tick(c);
        // Evict the B prefetch unused with a second prediction.
        mp.demandMiss(pc, Addr{0x70020}, Cycle(10 * round + 9));
        preds_before = mp.stats().predictions;
    }
    EXPECT_GT(mp.disabledSuppressed(), 0u);
    // Once disabled, triggering A adds no new prediction.
    mp.demandMiss(pc, Addr{0x40000}, Cycle{1000});
    EXPECT_EQ(mp.stats().predictions, preds_before);
}

TEST(MarkovPrefetcherTest, DisabledEntryReenablesWhenCorrectAgain)
{
    MemoryHierarchy hier(quietMemory());
    MarkovPrefetcher mp(hier, {}, 1, true);
    mp.trainLoad(pc, Addr{0x40000}, true, false);
    mp.trainLoad(pc, Addr{0x55000}, true, false); // A -> B
    mp.trainLoad(pc, Addr{0x70020}, true, false);
    mp.trainLoad(pc, Addr{0x81000}, true, false); // C -> D
    // Disable A's entry by discarding its prefetches.
    for (int round = 0; round < 6; ++round) {
        mp.demandMiss(pc, Addr{0x40000}, Cycle(10 * round));
        for (Cycle c(10 * round + 1); c < Cycle(10 * round + 9); ++c)
            mp.tick(c);
        mp.demandMiss(pc, Addr{0x70020}, Cycle(10 * round + 9));
    }
    ASSERT_GT(mp.disabledSuppressed(), 0u);
    // Now the A -> B transition recurs in the miss stream: the
    // suppressed prediction is scored correct and re-enables.
    for (int i = 0; i < 4; ++i) {
        mp.trainLoad(pc, Addr{0x40000}, true, false);
        mp.trainLoad(pc, Addr{0x55000}, true, false);
    }
    uint64_t preds = mp.stats().predictions;
    mp.demandMiss(pc, Addr{0x40000}, Cycle{2000});
    EXPECT_EQ(mp.stats().predictions, preds + 1);
}

TEST(MarkovPrefetcherTest, NonAdaptiveNeverDisables)
{
    MemoryHierarchy hier(quietMemory());
    MarkovPrefetcher mp(hier, {}, 1, /*adaptive=*/false);
    mp.trainLoad(pc, Addr{0x40000}, true, false);
    mp.trainLoad(pc, Addr{0x55000}, true, false);
    mp.trainLoad(pc, Addr{0x70020}, true, false);
    mp.trainLoad(pc, Addr{0x81000}, true, false);
    for (int round = 0; round < 10; ++round) {
        mp.demandMiss(pc, Addr{0x40000}, Cycle(10 * round));
        for (Cycle c(10 * round + 1); c < Cycle(10 * round + 9); ++c)
            mp.tick(c);
        mp.demandMiss(pc, Addr{0x70020}, Cycle(10 * round + 9));
    }
    EXPECT_EQ(mp.disabledSuppressed(), 0u);
}

TEST(PrefetcherStatsTest, ResetAcrossImplementations)
{
    MemoryHierarchy hier(quietMemory());
    StrideStreamBuffers a({}, {}, hier);
    SequentialStreamBuffers b({}, hier);
    NextLinePrefetcher c(hier);
    MarkovPrefetcher d(hier);
    for (Prefetcher *pf :
         std::initializer_list<Prefetcher *>{&a, &b, &c, &d}) {
        pf->demandMiss(pc, Addr{0x1000}, Cycle{});
        pf->resetStats();
        EXPECT_EQ(pf->stats().allocationRequests, 0u);
    }
}

} // namespace
} // namespace psb
