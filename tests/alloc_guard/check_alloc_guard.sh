#!/bin/sh
# Runtime cross-check of the hot-path no-allocation rule (R10).
#
#   check_alloc_guard.sh PSB_SIM
#
# Runs a short simulation of every fig5 cell (6 workloads x the
# paper's 6 configurations) with --assert-no-alloc: under a
# PSB_ALLOC_GUARD build the armed guard makes a single heap
# allocation inside the steady-state cycle loop a fatal error, so any
# failure here means the per-cycle path allocated — the dynamic twin
# of psb_analyze's static R10 call-graph proof (DESIGN.md §14). Only
# meaningful under the alloc-guard preset; psb-sim itself rejects
# --assert-no-alloc in builds without the interposers.
set -eu

PSB_SIM=$1

WORKLOADS="health burg deltablue gs sis turb3d"

run() {
    # $1 workload, rest: config flags
    wl=$1
    shift
    if ! "$PSB_SIM" --workload "$wl" --insts 20000 --warmup 5000 \
            --assert-no-alloc "$@" >/dev/null; then
        echo "check_alloc_guard.sh: steady-state allocation in" \
             "workload=$wl config='$*'" >&2
        exit 1
    fi
}

for wl in $WORKLOADS; do
    # The fig5 configuration matrix (src/sim/config.cc
    # makePaperConfig), spelled as psb-sim flags.
    run "$wl" --prefetcher none                          # Base
    run "$wl" --prefetcher pcstride                      # PCStride
    run "$wl" --prefetcher psb --alloc 2miss --sched rr  # 2Miss-RR
    run "$wl" --prefetcher psb --alloc 2miss --sched priority
    run "$wl" --prefetcher psb --alloc conf --sched rr   # ConfAlloc-RR
    run "$wl" --prefetcher psb --alloc conf --sched priority
done

echo "check_alloc_guard.sh: zero steady-state allocations across" \
     "all fig5 cells"
