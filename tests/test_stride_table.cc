/**
 * @file
 * Unit tests for the PC-indexed two-delta stride table, including the
 * Farkas allocation-filter state and the accuracy confidence counter.
 */

#include <gtest/gtest.h>

#include "predictors/stride_table.hh"

namespace psb
{
namespace
{

constexpr Addr pc = 0x400010;

TEST(StrideTableTest, FirstTouchAllocates)
{
    StrideTable t;
    StrideTrainResult r = t.train(pc, 0x1000);
    EXPECT_TRUE(r.firstTouch);
    ASSERT_NE(t.lookup(pc), nullptr);
    EXPECT_EQ(t.lookup(pc)->lastAddr, 0x1000u);
    EXPECT_EQ(t.predictedStride(pc), 0);
}

TEST(StrideTableTest, TwoDeltaAdoptsStrideOnlyAfterRepeat)
{
    StrideTable t;
    t.train(pc, 0x1000);
    StrideTrainResult r1 = t.train(pc, 0x1040); // stride 64, first time
    EXPECT_FALSE(r1.firstTouch);
    EXPECT_EQ(r1.observedStride, 64);
    EXPECT_EQ(t.predictedStride(pc), 0); // not adopted yet
    t.train(pc, 0x1080); // stride 64 again
    EXPECT_EQ(t.predictedStride(pc), 64); // two-delta adopted
}

TEST(StrideTableTest, TwoDeltaResistsOneOffDisturbance)
{
    StrideTable t;
    t.train(pc, 0x1000);
    t.train(pc, 0x1040);
    t.train(pc, 0x1080); // stride 64 locked
    t.train(pc, 0x9000); // wild jump: stride not replaced
    EXPECT_EQ(t.predictedStride(pc), 64);
    t.train(pc, 0x9040);
    EXPECT_EQ(t.predictedStride(pc), 64); // new stride seen once
    t.train(pc, 0x9080);
    EXPECT_EQ(t.predictedStride(pc), 64); // 0x9000->0x9040->0x9080:
    // wait: strides 64,64 -> adopted. See next assertion.
    t.train(pc, 0x90c0);
    EXPECT_EQ(t.predictedStride(pc), 64);
}

TEST(StrideTableTest, StridePredictedFlagUsesOldState)
{
    StrideTable t;
    t.train(pc, 0x1000);
    t.train(pc, 0x1040);
    t.train(pc, 0x1080);
    // Prediction now lastAddr + 64 = 0x10c0.
    StrideTrainResult r = t.train(pc, 0x10c0);
    EXPECT_TRUE(r.stridePredicted);
    StrideTrainResult r2 = t.train(pc, 0x5000);
    EXPECT_FALSE(r2.stridePredicted);
}

TEST(StrideTableTest, BlockGranularity)
{
    StrideTableConfig cfg;
    cfg.blockBytes = 32;
    StrideTable t(cfg);
    t.train(pc, 0x1004);
    EXPECT_EQ(t.lookup(pc)->lastAddr, 0x1000u);
    // Sub-block movement is stride 0 at block granularity.
    StrideTrainResult r = t.train(pc, 0x101c);
    EXPECT_EQ(r.observedStride, 0);
}

TEST(StrideTableTest, ConfidenceCountsOutcomes)
{
    StrideTable t;
    t.train(pc, 0x1000);
    EXPECT_EQ(t.confidence(pc), 0u);
    for (int i = 0; i < 10; ++i)
        t.recordOutcome(pc, true);
    EXPECT_EQ(t.confidence(pc), 7u); // saturates at 7 (paper)
    t.recordOutcome(pc, false);
    EXPECT_EQ(t.confidence(pc), 6u);
}

TEST(StrideTableTest, TwoCorrectInARowFilter)
{
    StrideTable t;
    t.train(pc, 0x1000);
    EXPECT_FALSE(t.twoCorrectInARow(pc));
    t.recordOutcome(pc, true);
    EXPECT_FALSE(t.twoCorrectInARow(pc));
    t.recordOutcome(pc, true);
    EXPECT_TRUE(t.twoCorrectInARow(pc));
    t.recordOutcome(pc, false);
    EXPECT_FALSE(t.twoCorrectInARow(pc));
}

TEST(StrideTableTest, FarkasStrideFilter)
{
    StrideTable t;
    t.train(pc, 0x1000);
    EXPECT_FALSE(t.strideFilterPass(pc));
    t.train(pc, 0x1040);
    EXPECT_FALSE(t.strideFilterPass(pc)); // one stride seen
    t.train(pc, 0x1080);
    EXPECT_TRUE(t.strideFilterPass(pc)); // identical strides in a row
    t.train(pc, 0x5000);
    EXPECT_FALSE(t.strideFilterPass(pc));
}

TEST(StrideTableTest, DistinctPcsIndependent)
{
    StrideTable t;
    t.train(0x400010, 0x1000);
    t.train(0x400014, 0x2000);
    t.train(0x400010, 0x1040);
    t.train(0x400014, 0x2100);
    EXPECT_EQ(t.lookup(0x400010)->lastStride, 64);
    EXPECT_EQ(t.lookup(0x400014)->lastStride, 256);
}

TEST(StrideTableTest, SetLruReplacement)
{
    StrideTableConfig cfg;
    cfg.entries = 8;
    cfg.assoc = 2; // 4 sets; PCs with equal (pc>>2)&3 collide
    StrideTable t(cfg);
    // Three PCs in the same set (pc>>2 multiples of 4).
    Addr p1 = 0x1000, p2 = 0x1010, p3 = 0x1020;
    t.train(p1, 0xa000);
    t.train(p2, 0xb000);
    t.train(p1, 0xa040); // refresh p1
    t.train(p3, 0xc000); // evicts p2
    EXPECT_NE(t.lookup(p1), nullptr);
    EXPECT_EQ(t.lookup(p2), nullptr);
    EXPECT_NE(t.lookup(p3), nullptr);
}

TEST(StrideTableTest, UntrackedPcDefaults)
{
    StrideTable t;
    EXPECT_EQ(t.lookup(0xdead), nullptr);
    EXPECT_EQ(t.predictedStride(0xdead), 0);
    EXPECT_EQ(t.confidence(0xdead), 0u);
    EXPECT_FALSE(t.strideFilterPass(0xdead));
    EXPECT_FALSE(t.twoCorrectInARow(0xdead));
    t.recordOutcome(0xdead, true); // silently ignored
    EXPECT_EQ(t.confidence(0xdead), 0u);
}

TEST(StrideTableTest, NegativeStrides)
{
    StrideTable t;
    t.train(pc, 0x9000);
    t.train(pc, 0x8fc0);
    t.train(pc, 0x8f80);
    EXPECT_EQ(t.predictedStride(pc), -64);
}

} // namespace
} // namespace psb
