/**
 * @file
 * Unit tests for the PC-indexed two-delta stride table, including the
 * Farkas allocation-filter state and the accuracy confidence counter.
 */

#include <gtest/gtest.h>

#include "predictors/stride_table.hh"

namespace psb
{
namespace
{

constexpr Addr pc{0x400010};
constexpr unsigned lineBits = 5; // default 32-byte blocks

TEST(StrideTableTest, FirstTouchAllocates)
{
    StrideTable t;
    StrideTrainResult r = t.train(pc, Addr{0x1000});
    EXPECT_TRUE(r.firstTouch);
    ASSERT_NE(t.lookup(pc), nullptr);
    EXPECT_EQ(t.lookup(pc)->lastAddr, Addr{0x1000}.toBlock(lineBits));
    EXPECT_EQ(t.predictedStride(pc), BlockDelta{});
}

TEST(StrideTableTest, TwoDeltaAdoptsStrideOnlyAfterRepeat)
{
    StrideTable t;
    t.train(pc, Addr{0x1000});
    StrideTrainResult r1 = t.train(pc, Addr{0x1040}); // 2 blocks, 1st time
    EXPECT_FALSE(r1.firstTouch);
    EXPECT_EQ(r1.observedStride, BlockDelta{2});
    EXPECT_EQ(t.predictedStride(pc), BlockDelta{}); // not adopted yet
    t.train(pc, Addr{0x1080}); // 2 blocks again
    EXPECT_EQ(t.predictedStride(pc), BlockDelta{2}); // two-delta adopted
}

TEST(StrideTableTest, TwoDeltaResistsOneOffDisturbance)
{
    StrideTable t;
    t.train(pc, Addr{0x1000});
    t.train(pc, Addr{0x1040});
    t.train(pc, Addr{0x1080}); // 2-block stride locked
    t.train(pc, Addr{0x9000}); // wild jump: stride not replaced
    EXPECT_EQ(t.predictedStride(pc), BlockDelta{2});
    t.train(pc, Addr{0x9040});
    EXPECT_EQ(t.predictedStride(pc), BlockDelta{2}); // new stride once
    t.train(pc, Addr{0x9080});
    EXPECT_EQ(t.predictedStride(pc), BlockDelta{2}); // 0x9000->0x9040->
    // 0x9080: strides 2,2 -> adopted. See next assertion.
    t.train(pc, Addr{0x90c0});
    EXPECT_EQ(t.predictedStride(pc), BlockDelta{2});
}

TEST(StrideTableTest, StridePredictedFlagUsesOldState)
{
    StrideTable t;
    t.train(pc, Addr{0x1000});
    t.train(pc, Addr{0x1040});
    t.train(pc, Addr{0x1080});
    // Prediction now lastAddr + 2 blocks = block of 0x10c0.
    StrideTrainResult r = t.train(pc, Addr{0x10c0});
    EXPECT_TRUE(r.stridePredicted);
    StrideTrainResult r2 = t.train(pc, Addr{0x5000});
    EXPECT_FALSE(r2.stridePredicted);
}

TEST(StrideTableTest, BlockGranularity)
{
    StrideTableConfig cfg;
    cfg.blockBytes = 32;
    StrideTable t(cfg);
    t.train(pc, Addr{0x1004});
    EXPECT_EQ(t.lookup(pc)->lastAddr, Addr{0x1000}.toBlock(lineBits));
    // Sub-block movement is stride 0 at block granularity.
    StrideTrainResult r = t.train(pc, Addr{0x101c});
    EXPECT_EQ(r.observedStride, BlockDelta{});
}

TEST(StrideTableTest, ConfidenceCountsOutcomes)
{
    StrideTable t;
    t.train(pc, Addr{0x1000});
    EXPECT_EQ(t.confidence(pc), 0u);
    for (int i = 0; i < 10; ++i)
        t.recordOutcome(pc, true);
    EXPECT_EQ(t.confidence(pc), 7u); // saturates at 7 (paper)
    t.recordOutcome(pc, false);
    EXPECT_EQ(t.confidence(pc), 6u);
}

TEST(StrideTableTest, TwoCorrectInARowFilter)
{
    StrideTable t;
    t.train(pc, Addr{0x1000});
    EXPECT_FALSE(t.twoCorrectInARow(pc));
    t.recordOutcome(pc, true);
    EXPECT_FALSE(t.twoCorrectInARow(pc));
    t.recordOutcome(pc, true);
    EXPECT_TRUE(t.twoCorrectInARow(pc));
    t.recordOutcome(pc, false);
    EXPECT_FALSE(t.twoCorrectInARow(pc));
}

TEST(StrideTableTest, FarkasStrideFilter)
{
    StrideTable t;
    t.train(pc, Addr{0x1000});
    EXPECT_FALSE(t.strideFilterPass(pc));
    t.train(pc, Addr{0x1040});
    EXPECT_FALSE(t.strideFilterPass(pc)); // one stride seen
    t.train(pc, Addr{0x1080});
    EXPECT_TRUE(t.strideFilterPass(pc)); // identical strides in a row
    t.train(pc, Addr{0x5000});
    EXPECT_FALSE(t.strideFilterPass(pc));
}

TEST(StrideTableTest, DistinctPcsIndependent)
{
    StrideTable t;
    t.train(Addr{0x400010}, Addr{0x1000});
    t.train(Addr{0x400014}, Addr{0x2000});
    t.train(Addr{0x400010}, Addr{0x1040});
    t.train(Addr{0x400014}, Addr{0x2100});
    EXPECT_EQ(t.lookup(Addr{0x400010})->lastStride, BlockDelta{2});
    EXPECT_EQ(t.lookup(Addr{0x400014})->lastStride, BlockDelta{8});
}

TEST(StrideTableTest, SetLruReplacement)
{
    StrideTableConfig cfg;
    cfg.entries = 8;
    cfg.assoc = 2; // 4 sets; pick three PCs that index the same set
    StrideTable t(cfg);
    Addr p1{0x1000}, p2{0x1010}, p3{0x1020};
    t.train(p1, Addr{0xa000});
    t.train(p2, Addr{0xb000});
    t.train(p1, Addr{0xa040}); // refresh p1
    t.train(p3, Addr{0xc000}); // evicts p2
    EXPECT_NE(t.lookup(p1), nullptr);
    EXPECT_EQ(t.lookup(p2), nullptr);
    EXPECT_NE(t.lookup(p3), nullptr);
}

TEST(StrideTableTest, SetIndexFoldsHighPcBits)
{
    // Distribution regression for the set-index hash: 256 load PCs at
    // 256 KB spacings differ only in bits a truncated index would
    // ignore. A 256-entry 4-way table must retain essentially all of
    // them; a hash that drops high PC bits collapses them onto a few
    // sets and evicts most.
    StrideTable t;
    for (int i = 0; i < 256; ++i)
        t.train(Addr(0x400000 + uint64_t(i) * 0x40000), Addr{0x1000});
    unsigned retained = 0;
    for (int i = 0; i < 256; ++i) {
        if (t.lookup(Addr(0x400000 + uint64_t(i) * 0x40000)))
            ++retained;
    }
    EXPECT_GE(retained, 200u);
}

TEST(StrideTableTest, UntrackedPcDefaults)
{
    StrideTable t;
    EXPECT_EQ(t.lookup(Addr{0xdead}), nullptr);
    EXPECT_EQ(t.predictedStride(Addr{0xdead}), BlockDelta{});
    EXPECT_EQ(t.confidence(Addr{0xdead}), 0u);
    EXPECT_FALSE(t.strideFilterPass(Addr{0xdead}));
    EXPECT_FALSE(t.twoCorrectInARow(Addr{0xdead}));
    t.recordOutcome(Addr{0xdead}, true); // silently ignored
    EXPECT_EQ(t.confidence(Addr{0xdead}), 0u);
}

TEST(StrideTableTest, NegativeStrides)
{
    StrideTable t;
    t.train(pc, Addr{0x9000});
    t.train(pc, Addr{0x8fc0});
    t.train(pc, Addr{0x8f80});
    EXPECT_EQ(t.predictedStride(pc), BlockDelta{-2});
}

} // namespace
} // namespace psb
