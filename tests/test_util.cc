/**
 * @file
 * Unit tests for the util library: saturating counters, bit helpers,
 * the deterministic PRNG, statistics primitives, and table printing.
 */

#include <gtest/gtest.h>

#include "util/bitfield.hh"
#include "util/random.hh"
#include "util/sat_counter.hh"
#include "util/stats.hh"
#include "util/table_printer.hh"

namespace psb
{
namespace
{

TEST(SatCounter, StartsAtInitialValue)
{
    SatCounter c(7, 3);
    EXPECT_EQ(c.value(), 3u);
    EXPECT_EQ(c.max(), 7u);
    EXPECT_FALSE(c.saturated());
}

TEST(SatCounter, InitialValueClampedToMax)
{
    SatCounter c(7, 100);
    EXPECT_EQ(c.value(), 7u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, IncrementSaturatesAtMax)
{
    SatCounter c(3);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, DecrementClampsAtZero)
{
    SatCounter c(3, 1);
    c.decrement();
    c.decrement();
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, StepIncrementUsedByPriorityCounters)
{
    // The paper's priority counters: +2 on hit, saturate at 12.
    SatCounter c(12);
    for (int i = 0; i < 7; ++i)
        c.increment(2);
    EXPECT_EQ(c.value(), 12u);
    c.decrement();
    EXPECT_EQ(c.value(), 11u);
}

TEST(SatCounter, SetClampsToMax)
{
    SatCounter c(12);
    c.set(7);
    EXPECT_EQ(c.value(), 7u);
    c.set(99);
    EXPECT_EQ(c.value(), 12u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, LargeStepsClampAtBothRails)
{
    // A step far beyond the remaining headroom must pin the counter
    // to the rail, not wrap the underlying unsigned value.
    SatCounter c(12, 10);
    c.increment(1000);
    EXPECT_EQ(c.value(), 12u);
    EXPECT_TRUE(c.saturated());
    c.decrement(1000);
    EXPECT_EQ(c.value(), 0u);
    // A step exactly equal to the headroom lands on the rail.
    SatCounter d(12, 10);
    d.increment(2);
    EXPECT_TRUE(d.saturated());
    d.decrement(12);
    EXPECT_EQ(d.value(), 0u);
}

TEST(SatCounter, RailsAreStickyNotAbsorbing)
{
    // Saturation must not latch: one decrement off the ceiling (or
    // one increment off the floor) moves the counter again.
    SatCounter c(12, 12);
    c.increment(2);
    EXPECT_EQ(c.value(), 12u);
    c.decrement();
    EXPECT_EQ(c.value(), 11u);
    c.decrement(11);
    EXPECT_EQ(c.value(), 0u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    EXPECT_EQ(c.value(), 1u);
}

TEST(SatCounter, PriorityScheduleInterleavesHitsAndAging)
{
    // The paper's stream-buffer priority schedule: +2 per buffer hit
    // interleaved with -1 aging. Net drift must be +1 per hit/age
    // pair until the ceiling absorbs the difference.
    SatCounter c(12);
    for (int i = 0; i < 5; ++i) {
        c.increment(2);
        c.decrement();
    }
    EXPECT_EQ(c.value(), 5u);
    // Many more rounds: the +2/-1 schedule parks at the ceiling
    // minus the trailing age.
    for (int i = 0; i < 20; ++i) {
        c.increment(2);
        c.decrement();
    }
    EXPECT_EQ(c.value(), 11u);
    c.increment(2);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, AgedEveryTenthAllocationDecaysIdleBuffers)
{
    // Allocation-driven aging: every 10th stream-buffer allocation
    // ages all priority counters by 1. A buffer that stops hitting
    // decays to zero (and thus becomes the reallocation victim)
    // after at most 10 * value allocations.
    SatCounter priority(12, 8);
    uint64_t allocations = 0;
    uint64_t decayed_at = 0;
    while (priority.value() > 0) {
        ++allocations;
        if (allocations % 10 == 0)
            priority.decrement();
        ASSERT_LT(allocations, 1000u) << "counter never decayed";
    }
    decayed_at = allocations;
    EXPECT_EQ(decayed_at, 80u);
    // A buffer still hitting between aging events holds its level.
    SatCounter busy(12, 8);
    for (allocations = 1; allocations <= 100; ++allocations) {
        if (allocations % 7 == 0)
            busy.increment(2); // occasional hits
        if (allocations % 10 == 0)
            busy.decrement();
    }
    EXPECT_GT(busy.value(), 8u);
}

TEST(Bitfield, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(Bitfield, FloorAndCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(32), 5u);
    EXPECT_EQ(ceilLog2(32), 5u);
    EXPECT_EQ(ceilLog2(33), 6u);
}

TEST(Bitfield, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(4), 0xfu);
    EXPECT_EQ(mask(64), ~uint64_t(0));
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
}

class FitsSignedTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FitsSignedTest, BoundaryValuesRoundTripThroughSignExtend)
{
    unsigned bits = GetParam();
    int64_t hi = (int64_t(1) << (bits - 1)) - 1;
    int64_t lo = -(int64_t(1) << (bits - 1));
    EXPECT_TRUE(fitsSigned(hi, bits));
    EXPECT_TRUE(fitsSigned(lo, bits));
    EXPECT_FALSE(fitsSigned(hi + 1, bits));
    EXPECT_FALSE(fitsSigned(lo - 1, bits));
    // Round trip: any representable value survives truncate+extend.
    EXPECT_EQ(signExtend(uint64_t(hi), bits), hi);
    EXPECT_EQ(signExtend(uint64_t(lo), bits), lo);
}

INSTANTIATE_TEST_SUITE_P(Widths, FitsSignedTest,
                         ::testing::Values(2u, 8u, 12u, 16u, 24u, 32u,
                                           48u, 63u));

TEST(Xorshift, DeterministicPerSeed)
{
    Xorshift64 a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
    }
    // Different seed diverges (statistically certain).
    Xorshift64 a2(42);
    bool diverged = false;
    for (int i = 0; i < 10; ++i)
        diverged |= (a2.next() != c.next());
    EXPECT_TRUE(diverged);
}

TEST(Xorshift, BelowStaysInRange)
{
    Xorshift64 rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Xorshift, RangeInclusive)
{
    Xorshift64 rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Xorshift, PercentChanceRoughlyCalibrated)
{
    Xorshift64 rng(99);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.percentChance(25) ? 1 : 0;
    EXPECT_NEAR(hits, 2500, 300);
}

TEST(Average, MeanAndCount)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(3);
    h.sample(3);
    h.sample(100); // overflow bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(4), 1u); // overflow
    EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, CdfMonotonic)
{
    Histogram h(8);
    for (uint64_t v = 0; v < 8; ++v)
        h.sample(v);
    double prev = 0.0;
    for (uint64_t v = 0; v < 8; ++v) {
        double cdf = h.cdfAt(v);
        EXPECT_GE(cdf, prev);
        prev = cdf;
    }
    EXPECT_DOUBLE_EQ(h.cdfAt(7), 1.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(3), 0.5);
}

TEST(Ratios, PercentAndRatioHandleZeroDenominator)
{
    EXPECT_DOUBLE_EQ(percent(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(ratio(1, 4), 0.25);
}

TEST(TablePrinterTest, AlignsColumnsAndUnderlinesHeader)
{
    TablePrinter t;
    t.addRow({"name", "v"});
    t.addRow({"a", "1.00"});
    t.addRow({"longer", "2"});
    std::string s = t.str();
    // Header, separator, two data rows.
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Column alignment: "1.00" appears after padding.
    EXPECT_NE(s.find("a       1.00"), std::string::npos);
}

TEST(TablePrinterTest, FmtHelpers)
{
    EXPECT_EQ(TablePrinter::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(TablePrinter::fmt(uint64_t(42)), "42");
}

} // namespace
} // namespace psb
