/**
 * @file
 * Tests for the components beyond the paper's headline design: the
 * order-k context predictor (§2.2), the Palacharla-Kessler
 * minimum-delta stream buffers (§3.3.2), and the §4.5 cached-TLB
 * stream-buffer option.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/psb.hh"
#include "memory/hierarchy.hh"
#include "predictors/context_predictor.hh"
#include "predictors/sfm_predictor.hh"
#include "prefetch/min_delta_stream_buffers.hh"

namespace psb
{
namespace
{

constexpr Addr pc{0x400010};
constexpr unsigned lineBits = 5; // default 32-byte blocks

MemoryConfig
quietMemory()
{
    MemoryConfig cfg;
    cfg.tlbMissPenalty = CycleDelta{};
    return cfg;
}

// ---------------------------------------------------------------- //
// ContextPredictor
// ---------------------------------------------------------------- //

TEST(ContextPredictorTest, OrderOneLearnsSimpleChain)
{
    ContextConfig cfg;
    cfg.historyLength = 1;
    ContextPredictor ctx(cfg);
    std::vector<Addr> chain = {Addr{0x10000}, Addr{0x39000},
                               Addr{0x12340}, Addr{0x88100}};
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a : chain)
            ctx.train(pc, a);
    StreamState s = ctx.allocateStream(pc, chain[0]);
    for (size_t i = 1; i < chain.size(); ++i) {
        auto p = ctx.predictNext(s);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(*p, chain[i].toBlock(lineBits));
    }
}

TEST(ContextPredictorTest, OrderTwoDisambiguatesSharedSuccessor)
{
    // Pattern: A B X, C B Y, repeated. After B, the successor depends
    // on what preceded B: order-1 cannot get both right, order-2 can.
    const Addr A{0x10000}, B{0x20000}, X{0x30000}, C{0x40000},
        Y{0x50000};
    auto run = [&](unsigned k) {
        ContextConfig cfg;
        cfg.historyLength = k;
        ContextPredictor ctx(cfg);
        for (int pass = 0; pass < 6; ++pass) {
            for (Addr a : {A, B, X, C, B, Y})
                ctx.train(pc, a);
        }
        // Predict the successor of B in the "A B ?" context.
        unsigned correct = 0;
        for (Addr a : {A, B})
            ctx.train(pc, a);
        StreamState s = ctx.allocateStream(pc, B);
        auto p = ctx.predictNext(s);
        if (p && *p == X.toBlock(lineBits))
            ++correct;
        // And in the "C B ?" context.
        for (Addr a : {X, C, B})
            ctx.train(pc, a);
        StreamState s2 = ctx.allocateStream(pc, B);
        auto p2 = ctx.predictNext(s2);
        if (p2 && *p2 == Y.toBlock(lineBits))
            ++correct;
        return correct;
    };
    EXPECT_LE(run(1), 1u); // order-1: at most one context right
    EXPECT_EQ(run(2), 2u); // order-2: both
}

TEST(ContextPredictorTest, StreamsAdvanceIndependently)
{
    ContextPredictor ctx;
    std::vector<Addr> chain = {Addr{0x10000}, Addr{0x39000},
                               Addr{0x12340}, Addr{0x88100}};
    for (int pass = 0; pass < 4; ++pass)
        for (Addr a : chain)
            ctx.train(pc, a);
    StreamState s1 = ctx.allocateStream(pc, chain[0]);
    StreamState s2 = ctx.allocateStream(pc, chain[0]);
    EXPECT_NE(s1.historyToken, s2.historyToken);
    ctx.predictNext(s1);
    ctx.predictNext(s1);
    auto p = ctx.predictNext(s2);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, chain[1].toBlock(lineBits));
}

TEST(ContextPredictorTest, ConfidenceAndFilterComeFromStrideTable)
{
    ContextPredictor ctx;
    for (int i = 0; i < 20; ++i)
        ctx.train(pc, Addr(0x10000 + 64 * i));
    EXPECT_EQ(ctx.confidence(pc), 7u);
    EXPECT_TRUE(ctx.twoMissFilterPass(pc, Addr{0x10000}));
}

// ---------------------------------------------------------------- //
// MinDeltaPredictor / MinDeltaStreamBuffers
// ---------------------------------------------------------------- //

TEST(MinDeltaTest, LearnsMinimumSignedDeltaPerChunk)
{
    MinDeltaPredictor pred;
    // Misses in one 4K chunk with stride 128 plus one outlier.
    pred.train(pc, Addr{0x10000});
    pred.train(pc, Addr{0x10080});
    EXPECT_EQ(pred.strideFor(Addr{0x10080}), 128);
    pred.train(pc, Addr{0x10100});
    EXPECT_EQ(pred.strideFor(Addr{0x10100}), 128);
}

TEST(MinDeltaTest, SubBlockDeltaRoundsToBlockWithSign)
{
    MinDeltaPredictor pred; // 32B blocks
    pred.train(pc, Addr{0x10010});
    pred.train(pc, Addr{0x10018}); // +8: below a block
    EXPECT_EQ(pred.strideFor(Addr{0x10018}), 32);
    MinDeltaPredictor pred2;
    pred2.train(pc, Addr{0x10018});
    pred2.train(pc, Addr{0x10010}); // -8
    EXPECT_EQ(pred2.strideFor(Addr{0x10010}), -32);
}

TEST(MinDeltaTest, MinimumOverHistoryNotJustLastMiss)
{
    MinDeltaPredictor pred;
    // Two interleaved streams in one chunk: 0x10000+128k and
    // 0x10040+128k. The minimum delta against the past N addresses is
    // the inter-stream gap or the stride, whichever is smaller.
    pred.train(pc, Addr{0x10000});
    pred.train(pc, Addr{0x10400}); // far
    pred.train(pc, Addr{0x10080}); // delta to 0x10000 = 128,
                                   // to 0x10400 = -896
    EXPECT_EQ(pred.strideFor(Addr{0x10080}), 128);
}

TEST(MinDeltaTest, FilterNeedsConsecutiveMissesInChunk)
{
    MinDeltaPredictor pred;
    pred.train(pc, Addr{0x10000});
    EXPECT_FALSE(pred.twoMissFilterPass(pc, Addr{0x10000}));
    pred.train(pc, Addr{0x10080}); // consecutive, same chunk
    EXPECT_TRUE(pred.twoMissFilterPass(pc, Addr{0x10080}));
    // A miss in a different chunk breaks the run.
    pred.train(pc, Addr{0x90000});
    pred.train(pc, Addr{0x10100});
    EXPECT_FALSE(pred.twoMissFilterPass(pc, Addr{0x10100}));
}

TEST(MinDeltaTest, EndToEndFollowsRegionStride)
{
    MemoryHierarchy hier(quietMemory());
    MinDeltaStreamBuffers sb({}, {}, hier);
    Addr a{0x20000};
    for (int i = 0; i < 4; ++i) {
        sb.trainLoad(pc, a + 128 * i, true, false);
        sb.demandMiss(pc, a + 128 * i, Cycle(i));
    }
    for (Cycle c{10}; c < Cycle{400}; ++c)
        sb.tick(c);
    EXPECT_TRUE(sb.lookup(a + 128 * 4, Cycle{1000}).hit);
    EXPECT_TRUE(sb.lookup(a + 128 * 5, Cycle{1001}).hit);
}

TEST(MinDeltaTest, GlobalHistoryConfusedByInterleavedStreams)
{
    // The weakness Farkas et al. fixed with per-PC strides: two loads
    // with different strides in the SAME chunk corrupt each other's
    // minimum delta. Verify the detected stride is the inter-stream
    // gap, not either true stride.
    MinDeltaPredictor pred;
    for (int i = 0; i < 6; ++i) {
        pred.train(Addr{0x400010}, Addr(0x30000 + 256 * i)); // stride 256
        pred.train(Addr{0x400020}, Addr(0x30040 + 256 * i)); // stride
                                                             // 256,
                                                             // offset 64
    }
    // The minimum delta seen is the 64-byte inter-stream gap.
    EXPECT_EQ(pred.strideFor(Addr(0x30040 + 256 * 5)), 64);
}

// ---------------------------------------------------------------- //
// Cached TLB translations (§4.5)
// ---------------------------------------------------------------- //

TEST(CachedTlbTest, SkipsTranslationsInsidePage)
{
    // A long unit-stride stream inside one 8K page: with the option
    // on, only the first prefetch of the page translates.
    for (bool cached : {false, true}) {
        MemoryHierarchy hier({});
        SfmPredictor sfm;
        PsbConfig cfg;
        cfg.buffers.cacheTlbTranslation = cached;
        PredictorDirectedStreamBuffers psb(cfg, sfm, hier);

        for (int i = 0; i < 8; ++i) {
            Addr a(0x40000 + 32 * i);
            sfm.train(pc, a);
        }
        psb.demandMiss(pc, Addr{0x40100}, Cycle{});
        for (Cycle c{1}; c < Cycle{300}; ++c)
            psb.tick(c);

        ASSERT_GT(psb.stats().prefetchesIssued, 2u);
        if (cached) {
            EXPECT_GT(psb.stats().tlbTranslationsSkipped, 0u);
        } else {
            EXPECT_EQ(psb.stats().tlbTranslationsSkipped, 0u);
        }
    }
}

TEST(CachedTlbTest, PageCrossingRetranslates)
{
    MemoryHierarchy hier({});
    SfmPredictor sfm;
    PsbConfig cfg;
    cfg.buffers.cacheTlbTranslation = true;
    PredictorDirectedStreamBuffers psb(cfg, sfm, hier);

    // Stride of one page: every prefetch crosses a page boundary, so
    // nothing can be skipped.
    for (int i = 0; i < 8; ++i)
        sfm.train(pc, Addr(0x100000 + 8192u * i));
    psb.demandMiss(pc, Addr(0x100000 + 8192u * 8), Cycle{});
    for (Cycle c{1}; c < Cycle{400}; ++c)
        psb.tick(c);
    ASSERT_GT(psb.stats().prefetchesIssued, 2u);
    EXPECT_EQ(psb.stats().tlbTranslationsSkipped, 0u);
}

} // namespace
} // namespace psb
