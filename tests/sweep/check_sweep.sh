#!/bin/sh
# Thread-count-invariance regression check for the sweep engine.
#
#   check_sweep.sh PSB_SWEEP SPEC_FILE
#
# Runs the same sweep spec (30 small simulations) at --jobs 1, 2, and
# 8 and requires the three merged stats documents to be byte-identical
# — the engine's core determinism contract (DESIGN.md §10). Any
# difference means job state leaked across workers or the merge became
# order- or timing-dependent.
set -eu

PSB_SWEEP=$1
SPEC=$2

TMP=$(mktemp -d "${TMPDIR:-/tmp}/sweep_invariance.XXXXXX")
trap 'rm -rf "$TMP"' EXIT

for jobs in 1 2 8; do
    "$PSB_SWEEP" "$SPEC" --jobs "$jobs" --quiet \
        --out "$TMP/merged_$jobs.json"
done

for jobs in 2 8; do
    if ! cmp -s "$TMP/merged_1.json" "$TMP/merged_$jobs.json"; then
        echo "check_sweep.sh: merged stats differ between" \
             "--jobs 1 and --jobs $jobs" >&2
        diff "$TMP/merged_1.json" "$TMP/merged_$jobs.json" >&2 || true
        exit 1
    fi
done

echo "check_sweep.sh: merged stats byte-identical at --jobs 1/2/8"
