/**
 * @file
 * Tests for the out-of-order core timing model, driven by small
 * scripted micro-op traces.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/ooo_core.hh"
#include "memory/hierarchy.hh"
#include "prefetch/prefetcher.hh"
#include "trace/trace_source.hh"
#include "util/random.hh"

namespace psb
{
namespace
{

/** Trace source over a fixed vector of ops. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<MicroOp> ops) : _ops(std::move(ops))
    {}

    bool
    next(MicroOp &op) override
    {
        if (_pos >= _ops.size())
            return false;
        op = _ops[_pos++];
        return true;
    }

  private:
    std::vector<MicroOp> _ops;
    size_t _pos = 0;
};

/** Prefetcher spy recording training and demand misses. */
class SpyPrefetcher : public NullPrefetcher
{
  public:
    void
    trainLoad(Addr pc, Addr addr, bool miss, bool fwd) override
    {
        trains.push_back({pc, addr, miss, fwd});
    }

    void
    demandMiss(Addr pc, Addr, Cycle) override
    {
        demandPcs.push_back(pc);
    }

    struct Train
    {
        Addr pc;
        Addr addr;
        bool miss;
        bool fwd;
    };
    std::vector<Train> trains;
    std::vector<Addr> demandPcs;
};

MicroOp
aluOp(Addr pc, uint8_t dst, uint8_t src1 = regNone,
      uint8_t src2 = regNone)
{
    MicroOp op;
    op.pc = pc;
    op.op = OpClass::IntAlu;
    op.dst = dst;
    op.src1 = src1;
    op.src2 = src2;
    return op;
}

MicroOp
loadOp(Addr pc, uint8_t dst, Addr addr, uint8_t base = regNone)
{
    MicroOp op;
    op.pc = pc;
    op.op = OpClass::Load;
    op.dst = dst;
    op.src1 = base;
    op.effAddr = addr;
    return op;
}

MicroOp
storeOp(Addr pc, Addr addr, uint8_t val = regNone)
{
    MicroOp op;
    op.pc = pc;
    op.op = OpClass::Store;
    op.src1 = val;
    op.effAddr = addr;
    return op;
}

MicroOp
branchOp(Addr pc, bool taken, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.op = OpClass::Branch;
    op.taken = taken;
    op.target = target;
    return op;
}

MemoryConfig
quietMemory()
{
    MemoryConfig cfg;
    cfg.tlbMissPenalty = CycleDelta{};
    return cfg;
}

/** Run a trace to completion; returns final stats. */
CoreStats
runTrace(std::vector<MicroOp> ops,
         CoreConfig core_cfg = CoreConfig{},
         Prefetcher *pf = nullptr)
{
    MemoryHierarchy hier(quietMemory());
    NullPrefetcher null_pf;
    VectorTrace trace(std::move(ops));
    OoOCore core(core_cfg, hier, pf ? *pf : null_pf, trace);
    Cycle now{};
    while (core.tick(now)) {
        if (pf)
            pf->tick(now);
        ++now;
        if (now > Cycle{2'000'000})
            ADD_FAILURE() << "core did not drain";
    }
    return core.stats();
}

TEST(CoreTest, DrainsAndCountsInstructions)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 100; ++i)
        ops.push_back(aluOp(Addr(0x1000 + 4 * i), regNone));
    CoreStats s = runTrace(ops);
    EXPECT_EQ(s.instructions, 100u);
    EXPECT_GT(s.cycles, 0u);
}

TEST(CoreTest, IndependentOpsReachHighIpc)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 40000; ++i)
        ops.push_back(aluOp(Addr(0x1000 + 4 * (i % 64)), regNone));
    CoreStats s = runTrace(ops);
    // 8-wide machine, no dependences: IPC should approach the width
    // (bounded by the 8 ALUs and fetch) once the cold instruction
    // misses at the start are amortised.
    EXPECT_GT(s.ipc(), 6.0);
}

TEST(CoreTest, DependenceChainSerialises)
{
    std::vector<MicroOp> ops;
    ops.push_back(aluOp(Addr{0x1000}, 1));
    for (int i = 0; i < 1000; ++i)
        ops.push_back(aluOp(Addr{0x1004}, 1, 1)); // r1 = f(r1)
    CoreStats s = runTrace(ops);
    // One op per cycle at best: IPC <= ~1.
    EXPECT_LE(s.ipc(), 1.2);
    EXPECT_GE(s.cycles, 1000u);
}

TEST(CoreTest, MultiCycleOpsRespectLatency)
{
    // A chain of dependent FP multiplies (4 cycles each).
    std::vector<MicroOp> ops;
    ops.push_back(aluOp(Addr{0x1000}, 1));
    for (int i = 0; i < 100; ++i) {
        MicroOp op = aluOp(Addr{0x1004}, 1, 1);
        op.op = OpClass::FpMult;
        ops.push_back(op);
    }
    CoreStats s = runTrace(ops);
    EXPECT_GE(s.cycles, 400u);
}

TEST(CoreTest, UnpipelinedDivideLimitsThroughput)
{
    // Independent divides: only 2 units, 12 cycles, unpipelined.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 50; ++i) {
        MicroOp op = aluOp(Addr(0x1000 + 4 * i), regNone);
        op.op = OpClass::IntDiv;
        ops.push_back(op);
    }
    CoreStats s = runTrace(ops);
    // 50 divides / 2 units * 12 cycles = 300 cycles minimum.
    EXPECT_GE(s.cycles, 300u);
}

TEST(CoreTest, LoadMissesAreSlowerThanHits)
{
    // Loads that revisit one block (hits after the first fill) vs
    // loads streaming over distinct blocks (all misses).
    std::vector<MicroOp> hit_ops, miss_ops;
    hit_ops.push_back(aluOp(Addr{0x0ffc}, 1));
    miss_ops.push_back(aluOp(Addr{0x0ffc}, 1));
    for (int i = 0; i < 200; ++i) {
        // Serialise through r1 so latency is exposed.
        hit_ops.push_back(loadOp(Addr{0x1000}, 1, Addr{0x100000}, 1));
        miss_ops.push_back(
            loadOp(Addr{0x1000}, 1, Addr(0x100000 + 4096u * i), 1));
    }
    CoreStats hit = runTrace(hit_ops);
    CoreStats miss = runTrace(miss_ops);
    EXPECT_LT(hit.cycles * 3, miss.cycles);
    EXPECT_GT(miss.loadLatency.mean(), 15.0);
    EXPECT_LT(hit.loadLatency.mean(), 3.0);
    EXPECT_GE(hit.l1dHits, 199u);
    EXPECT_GE(miss.l1dMisses, 200u);
}

TEST(CoreTest, StoreForwardingHasTwoCycleLatency)
{
    std::vector<MicroOp> ops;
    ops.push_back(aluOp(Addr{0x1000}, 2));
    ops.push_back(storeOp(Addr{0x1004}, Addr{0x200000}, 2));
    ops.push_back(loadOp(Addr{0x1008}, 1, Addr{0x200000}));
    CoreStats s = runTrace(ops);
    EXPECT_EQ(s.storeForwards, 1u);
    // The forwarded load never touches the cache.
    EXPECT_EQ(s.l1dMisses, 1u); // only the store's commit access
}

TEST(CoreTest, ForwardedLoadsNotTrained)
{
    SpyPrefetcher spy;
    std::vector<MicroOp> ops;
    ops.push_back(storeOp(Addr{0x1004}, Addr{0x200000}));
    ops.push_back(loadOp(Addr{0x1008}, 1, Addr{0x200000}));
    ops.push_back(loadOp(Addr{0x100c}, 2, Addr{0x300000}));
    runTrace(ops, CoreConfig{}, &spy);
    ASSERT_EQ(spy.trains.size(), 2u);
    EXPECT_TRUE(spy.trains[0].fwd);
    EXPECT_FALSE(spy.trains[1].fwd);
    EXPECT_TRUE(spy.trains[1].miss);
    // Only the real miss generated an allocation request.
    ASSERT_EQ(spy.demandPcs.size(), 1u);
    EXPECT_EQ(spy.demandPcs[0], Addr{0x100c});
}

TEST(CoreTest, NoDisambiguationDelaysIndependentLoads)
{
    // A store whose data depends on a long chain, followed by a load
    // to an unrelated address.
    auto build = [] {
        std::vector<MicroOp> ops;
        ops.push_back(aluOp(Addr{0x1000}, 1));
        for (int i = 0; i < 50; ++i) {
            MicroOp op = aluOp(Addr{0x1004}, 1, 1);
            op.op = OpClass::FpMult; // 4-cycle chain links
            ops.push_back(op);
        }
        ops.push_back(storeOp(Addr{0x1008}, Addr{0x200000}, 1));
        ops.push_back(loadOp(Addr{0x100c}, 2, Addr{0x300000}));
        // Consumer chain of the load to surface its latency.
        for (int i = 0; i < 20; ++i)
            ops.push_back(aluOp(Addr{0x1010}, 2, 2));
        return ops;
    };
    CoreConfig perfect;
    perfect.disambiguation = DisambiguationMode::Perfect;
    CoreConfig nodis;
    nodis.disambiguation = DisambiguationMode::None;
    CoreStats p = runTrace(build(), perfect);
    CoreStats n = runTrace(build(), nodis);
    // Under perfect store sets the load issues early and overlaps the
    // FP chain; without disambiguation it waits ~200 cycles.
    EXPECT_LT(p.cycles + 50, n.cycles);
}

TEST(CoreTest, AliasingLoadWaitsEvenWithPerfectStoreSets)
{
    auto build = [](Addr load_addr) {
        std::vector<MicroOp> ops;
        ops.push_back(aluOp(Addr{0x1000}, 1));
        for (int i = 0; i < 50; ++i) {
            MicroOp op = aluOp(Addr{0x1004}, 1, 1);
            op.op = OpClass::FpMult;
            ops.push_back(op);
        }
        ops.push_back(storeOp(Addr{0x1008}, Addr{0x200000}, 1));
        ops.push_back(loadOp(Addr{0x100c}, 2, load_addr));
        for (int i = 0; i < 60; ++i)
            ops.push_back(aluOp(Addr{0x1010}, 2, 2));
        return ops;
    };
    CoreConfig cfg;
    cfg.disambiguation = DisambiguationMode::Perfect;
    CoreStats independent = runTrace(build(Addr{0x300000}), cfg);
    CoreStats aliasing = runTrace(build(Addr{0x200000}), cfg);
    // The independent load overlaps the FP chain; the aliasing one
    // waits for the store, pushing its 60-op consumer chain past the
    // end of the FP chain.
    EXPECT_LT(independent.cycles + 40, aliasing.cycles);
    EXPECT_EQ(aliasing.storeForwards, 1u);
}

TEST(CoreTest, MispredictedBranchStallsFetch)
{
    // Alternating taken/not-taken branches on cold predictor state:
    // plenty of mispredicts, each an 8+ cycle fetch bubble.
    auto build = [](bool with_branches) {
        std::vector<MicroOp> ops;
        Xorshift64 rng(11);
        for (int i = 0; i < 400; ++i) {
            ops.push_back(aluOp(Addr(0x1000 + 4 * (i % 16)), regNone));
            if (with_branches && i % 4 == 3) {
                ops.push_back(branchOp(Addr(0x2000 + 4 * (i % 64)),
                                       rng.next() & 1, Addr{0x1000}));
            }
        }
        return ops;
    };
    CoreStats without = runTrace(build(false));
    CoreStats with = runTrace(build(true));
    EXPECT_GT(with.mispredicts, 10u);
    EXPECT_GT(with.cycles, without.cycles + 8 * with.mispredicts / 2);
}

TEST(CoreTest, InFlightMergeCountsAsMiss)
{
    // Two independent loads to the same cold block issued together:
    // the second merges into the first's fill and still counts as a
    // miss (the paper's definition).
    std::vector<MicroOp> ops;
    ops.push_back(loadOp(Addr{0x1000}, 1, Addr{0x400000}));
    ops.push_back(loadOp(Addr{0x1004}, 2, Addr{0x400008}));
    CoreStats s = runTrace(ops);
    EXPECT_EQ(s.l1dMisses, 2u);
    EXPECT_EQ(s.l1dInFlight, 1u);
}

TEST(CoreTest, RobCapacityRespected)
{
    // A long-latency load followed by far more ALU ops than ROB
    // entries: the core must not deadlock or reorder commits.
    std::vector<MicroOp> ops;
    ops.push_back(loadOp(Addr{0x1000}, 1, Addr{0x500000}));
    for (int i = 0; i < 1000; ++i)
        ops.push_back(aluOp(Addr(0x1004 + 4 * (i % 8)), regNone));
    CoreConfig cfg;
    cfg.robEntries = 16;
    CoreStats s = runTrace(ops, cfg);
    EXPECT_EQ(s.instructions, 1001u);
}

TEST(CoreTest, LsqCapacityRespected)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 300; ++i)
        ops.push_back(
            loadOp(Addr{0x1000}, regNone, Addr(0x600000 + 8 * i)));
    CoreConfig cfg;
    cfg.lsqEntries = 4;
    CoreStats s = runTrace(ops, cfg);
    EXPECT_EQ(s.instructions, 300u);
    EXPECT_EQ(s.loads, 300u);
}

TEST(CoreTest, StoresCommitInOrderAndAccessCache)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 50; ++i)
        ops.push_back(storeOp(Addr(0x1000 + 4 * (i % 4)),
                              Addr(0x700000 + 64 * i)));
    CoreStats s = runTrace(ops);
    EXPECT_EQ(s.stores, 50u);
    EXPECT_EQ(s.l1dAccesses, 50u);
    EXPECT_GE(s.l1dMisses, 50u); // all cold blocks
}

TEST(CoreTest, ResetStatsMidRun)
{
    MemoryHierarchy hier(quietMemory());
    NullPrefetcher pf;
    std::vector<MicroOp> ops;
    for (int i = 0; i < 200; ++i)
        ops.push_back(aluOp(Addr{0x1000}, regNone));
    VectorTrace trace(ops);
    OoOCore core(CoreConfig{}, hier, pf, trace);
    Cycle now{};
    while (core.stats().instructions < 100) {
        core.tick(now);
        ++now;
    }
    core.resetStats();
    while (core.tick(now))
        ++now;
    EXPECT_LE(core.stats().instructions, 100u);
    EXPECT_GT(core.stats().instructions, 0u);
}

} // namespace
} // namespace psb
