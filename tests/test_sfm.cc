/**
 * @file
 * Tests for the Stride-Filtered Markov predictor: the stride filter,
 * miss-stream training, per-stream speculative prediction, and the
 * PSB allocation hooks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "predictors/sfm_predictor.hh"
#include "util/random.hh"

namespace psb
{
namespace
{

constexpr Addr pc{0x400010};
constexpr unsigned lineBits = 5; // default 32-byte blocks

TEST(SfmTest, StrideStreamStaysOutOfMarkovTable)
{
    // The core idea of §4.2: stride-predictable transitions are
    // filtered out of the Markov table.
    SfmPredictor sfm;
    for (int i = 0; i < 50; ++i)
        sfm.train(pc, Addr(0x10000 + 64 * i));
    // After the two-delta warms up, all transitions match the stride:
    // the Markov table holds at most the first couple of updates.
    EXPECT_LE(sfm.markovTable().population(), 2u);
}

TEST(SfmTest, PointerStreamPopulatesMarkovTable)
{
    SfmPredictor sfm;
    std::vector<Addr> chain = {Addr{0x10000}, Addr{0x39000},
                               Addr{0x12340}, Addr{0x88100},
                               Addr{0x20980}, Addr{0x41200}};
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a : chain)
            sfm.train(pc, a);
    EXPECT_GE(sfm.markovTable().population(), chain.size() - 1);
}

TEST(SfmTest, PredictNextFollowsMarkovChain)
{
    SfmPredictor sfm;
    std::vector<Addr> chain = {Addr{0x10000}, Addr{0x39000},
                               Addr{0x12340}, Addr{0x88100}};
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a : chain)
            sfm.train(pc, a);

    StreamState s = sfm.allocateStream(pc, chain[0]);
    for (size_t i = 1; i < chain.size(); ++i) {
        auto p = sfm.predictNext(s);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(*p, chain[i].toBlock(lineBits));
    }
}

TEST(SfmTest, PredictNextFallsBackToStride)
{
    SfmPredictor sfm;
    for (int i = 0; i < 10; ++i)
        sfm.train(pc, Addr(0x10000 + 64 * i));
    StreamState s = sfm.allocateStream(pc, Addr{0x10000 + 64 * 9});
    EXPECT_EQ(s.stride, BlockDelta{2}); // 64 bytes at 32B blocks
    auto p = sfm.predictNext(s);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, Addr{0x10000 + 64 * 10}.toBlock(lineBits));
    // And the stream keeps striding, one block per prediction.
    auto p2 = sfm.predictNext(s);
    EXPECT_EQ(*p2, Addr{0x10000 + 64 * 11}.toBlock(lineBits));
}

TEST(SfmTest, PredictionDoesNotModifyTables)
{
    SfmPredictor sfm;
    std::vector<Addr> chain = {Addr{0x10000}, Addr{0x39000},
                               Addr{0x12340}};
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a : chain)
            sfm.train(pc, a);
    uint64_t pop_before = sfm.markovTable().population();
    uint64_t updates_before = sfm.markovTable().updates();

    StreamState s = sfm.allocateStream(pc, chain[0]);
    for (int i = 0; i < 20; ++i)
        sfm.predictNext(s);

    EXPECT_EQ(sfm.markovTable().population(), pop_before);
    EXPECT_EQ(sfm.markovTable().updates(), updates_before);
}

TEST(SfmTest, PerStreamStateIsIndependent)
{
    // Two streams over the same tables advance independently — the
    // "per-stream history" half of the PSB design.
    SfmPredictor sfm;
    std::vector<Addr> chain = {Addr{0x10000}, Addr{0x39000},
                               Addr{0x12340}, Addr{0x88100}};
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a : chain)
            sfm.train(pc, a);

    StreamState s1 = sfm.allocateStream(pc, chain[0]);
    StreamState s2 = sfm.allocateStream(pc, chain[0]);
    sfm.predictNext(s1);
    sfm.predictNext(s1); // s1 two steps ahead
    auto p2 = sfm.predictNext(s2); // s2 still at step one
    EXPECT_EQ(*p2, chain[1].toBlock(lineBits));
    EXPECT_EQ(s1.lastAddr, chain[2].toBlock(lineBits));
}

TEST(SfmTest, ConfidenceGrowsOnPredictableMissStream)
{
    SfmPredictor sfm;
    EXPECT_EQ(sfm.confidence(pc), 0u);
    for (int i = 0; i < 20; ++i)
        sfm.train(pc, Addr(0x10000 + 64 * i));
    EXPECT_EQ(sfm.confidence(pc), 7u);
    EXPECT_TRUE(sfm.twoMissFilterPass(pc, Addr{0x10000}));
}

TEST(SfmTest, ConfidenceStaysLowOnRandomStream)
{
    SfmPredictor sfm;
    Xorshift64 rng(3);
    for (int i = 0; i < 100; ++i)
        sfm.train(pc, Addr(0x10000000 + (rng.next() % (1u << 26))));
    EXPECT_LE(sfm.confidence(pc), 1u);
}

TEST(SfmTest, AllocateStreamCopiesPredictionInfo)
{
    SfmPredictor sfm;
    for (int i = 0; i < 20; ++i)
        sfm.train(pc, Addr(0x10000 + 64 * i));
    StreamState s = sfm.allocateStream(pc, Addr{0x20004});
    EXPECT_EQ(s.loadPc, pc);
    EXPECT_EQ(s.lastAddr, Addr{0x20004}.toBlock(lineBits));
    EXPECT_EQ(s.stride, BlockDelta{2});
    EXPECT_EQ(s.confidence, 7u);
}

TEST(SfmTest, MarkovTakesPriorityOverStride)
{
    // Figure 3: "If the Markov table hits, then the Markov address is
    // used, otherwise the next stride address is used."
    SfmPredictor sfm;
    // Train a stride first...
    for (int i = 0; i < 6; ++i)
        sfm.train(pc, Addr(0x10000 + 64 * i));
    // ...then a non-stride transition from the last address.
    Addr last{0x10000 + 64 * 5};
    sfm.train(pc, Addr{0x77000});
    (void)last;
    // Rebuild the stream at the address with the Markov transition.
    StreamState s = sfm.allocateStream(pc, Addr{0x10000 + 64 * 5});
    auto p = sfm.predictNext(s);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, Addr{0x77000}.toBlock(lineBits));
}

TEST(SfmTest, StrideOnlyModeNeverUsesMarkov)
{
    SfmConfig cfg;
    cfg.mode = SfmMode::StrideOnly;
    SfmPredictor sfm(cfg);
    std::vector<Addr> chain = {Addr{0x10000}, Addr{0x39000},
                               Addr{0x12340}};
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a : chain)
            sfm.train(pc, a);
    EXPECT_EQ(sfm.markovTable().population(), 0u);
}

TEST(SfmTest, MarkovOnlyModeRecordsEveryTransition)
{
    SfmConfig cfg;
    cfg.mode = SfmMode::MarkovOnly;
    SfmPredictor sfm(cfg);
    // A pure stride stream: the unfiltered Markov table records it.
    for (int i = 0; i < 10; ++i)
        sfm.train(pc, Addr(0x10000 + 64 * i));
    EXPECT_GE(sfm.markovTable().population(), 8u);
    // And with no stride fallback, an untrained state predicts nothing.
    StreamState s = sfm.allocateStream(pc, Addr{0xdead0000});
    EXPECT_FALSE(sfm.predictNext(s).has_value());
}

TEST(SfmTest, CoverageCountersTrackAccuracy)
{
    SfmPredictor sfm;
    for (int i = 0; i < 21; ++i)
        sfm.train(pc, Addr(0x10000 + 64 * i));
    // First train is an allocation; the next two establish the
    // stride; nearly everything after is predicted.
    EXPECT_EQ(sfm.trainEvents(), 20u);
    EXPECT_GE(sfm.correctPredictions(), 17u);
}

} // namespace
} // namespace psb
