/**
 * @file
 * Integration-level tests for the memory hierarchy: latency paths,
 * MSHR merging, bus accounting, writebacks, and the prefetch path.
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace psb
{
namespace
{

MemoryConfig
fastTlbConfig()
{
    MemoryConfig cfg;
    cfg.tlbMissPenalty = CycleDelta{}; // keep latency arithmetic simple
    return cfg;
}

TEST(HierarchyTest, ColdProbeMissesThenFillMakesResident)
{
    MemoryHierarchy h(fastTlbConfig());
    ProbeResult p = h.probeData(Addr{0x1000}, Cycle{});
    EXPECT_FALSE(p.resident);
    EXPECT_FALSE(p.inFlight);

    FillOutcome fill = h.missToL2(Addr{0x1000}, Cycle{}, false);
    EXPECT_FALSE(fill.mshrStall);
    EXPECT_FALSE(fill.l2Hit); // cold L2 too
    EXPECT_GT(fill.ready, Cycle{100}); // memory access involved

    // While in flight the probe reports it.
    ProbeResult p2 = h.probeData(Addr{0x1000}, Cycle{1});
    EXPECT_TRUE(p2.inFlight);
    EXPECT_EQ(p2.ready, fill.ready);

    // After the fill it is a plain hit.
    ProbeResult p3 = h.probeData(Addr{0x1000}, fill.ready);
    EXPECT_TRUE(p3.resident);
    EXPECT_FALSE(p3.inFlight);
}

TEST(HierarchyTest, L2HitFillIsMuchFasterThanMemory)
{
    MemoryHierarchy h(fastTlbConfig());
    FillOutcome cold = h.missToL2(Addr{0x1000}, Cycle{}, false);
    // Evict from L1 by filling its set, keeping the L2 copy: easier —
    // access a different L1 block of the same L2 line after eviction
    // is complex; instead fill another block far away, then re-fetch
    // the victim after invalidation via a fresh hierarchy is not
    // possible. Use the sibling-L1-block trick: 0x1020 shares the
    // 64-byte L2 line of 0x1000 but is a different 32-byte L1 line.
    FillOutcome sibling = h.missToL2(Addr{0x1020}, cold.ready, false);
    EXPECT_TRUE(sibling.l2Hit);
    CycleDelta l2_latency = sibling.ready - cold.ready;
    // Request beat + 12-cycle L2 + 4-cycle transfer, give or take
    // pipeline alignment; far below the 120-cycle memory latency.
    EXPECT_GE(l2_latency, CycleDelta{12});
    EXPECT_LE(l2_latency, CycleDelta{40});
}

TEST(HierarchyTest, MshrStallWhenAllEntriesBusy)
{
    MemoryConfig cfg = fastTlbConfig();
    cfg.l1dMshrs = 2;
    MemoryHierarchy h(cfg);
    EXPECT_FALSE(h.missToL2(Addr{0x1000}, Cycle{}, false).mshrStall);
    EXPECT_FALSE(h.missToL2(Addr{0x2000}, Cycle{}, false).mshrStall);
    EXPECT_TRUE(h.missToL2(Addr{0x3000}, Cycle{}, false).mshrStall);
    // After the fills retire, capacity returns.
    EXPECT_FALSE(
        h.missToL2(Addr{0x3000}, Cycle{10000}, false).mshrStall);
}

TEST(HierarchyTest, BusUtilisationAccountedPerBus)
{
    MemoryHierarchy h(fastTlbConfig());
    h.missToL2(Addr{0x1000}, Cycle{}, false);
    // L1-L2: one transaction of 1 + 32/8 = 5 cycles.
    EXPECT_EQ(h.l1L2Bus().busyCycles(), 5u);
    // L2 miss went to memory: 1 + 64/4 = 17 cycles on the L2-mem bus.
    EXPECT_EQ(h.l2MemBus().busyCycles(), 17u);

    // An L2-hit fill adds only L1-L2 cycles.
    h.missToL2(Addr{0x1020}, Cycle{1000}, false);
    EXPECT_EQ(h.l1L2Bus().busyCycles(), 10u);
    EXPECT_EQ(h.l2MemBus().busyCycles(), 17u);
}

TEST(HierarchyTest, DirtyEvictionGeneratesWriteback)
{
    MemoryConfig cfg = fastTlbConfig();
    cfg.l1d = CacheGeometry{256, 2, 32}; // tiny: 4 sets x 2 ways
    MemoryHierarchy h(cfg);

    // Fill one set with dirty blocks (set stride = 128).
    h.missToL2(Addr{0x1000}, Cycle{}, true);
    h.missToL2(Addr{0x1080}, Cycle{1000}, true);
    EXPECT_EQ(h.stats().l1Writebacks, 0u);
    h.missToL2(Addr{0x1100}, Cycle{2000}, false); // evicts dirty 0x1000
    EXPECT_EQ(h.stats().l1Writebacks, 1u);
}

TEST(HierarchyTest, PrefetchDoesNotTouchL1ButWarmsL2)
{
    MemoryHierarchy h(fastTlbConfig());
    PrefetchOutcome pf = h.prefetch(h.blockOf(Addr{0x5000}), Cycle{});
    EXPECT_FALSE(pf.l2Hit);
    EXPECT_GT(pf.ready, Cycle{100});
    EXPECT_EQ(h.stats().prefetches, 1u);

    // Not in the L1...
    EXPECT_FALSE(h.probeData(Addr{0x5000}, pf.ready).resident);
    // ...but the L2 now has it: a demand miss after the prefetch is an
    // L2 hit.
    FillOutcome fill = h.missToL2(Addr{0x5000}, pf.ready, false);
    EXPECT_TRUE(fill.l2Hit);
    EXPECT_EQ(h.stats().prefetchL2Hits, 0u); // first prefetch was cold
}

TEST(HierarchyTest, PrefetchGatingSeesBusOccupancy)
{
    MemoryHierarchy h(fastTlbConfig());
    EXPECT_TRUE(h.l1ToL2BusFree(Cycle{}));
    h.missToL2(Addr{0x1000}, Cycle{}, false);
    EXPECT_FALSE(h.l1ToL2BusFree(Cycle{}));
    EXPECT_FALSE(h.l1ToL2BusFree(Cycle{3}));
    EXPECT_TRUE(h.l1ToL2BusFree(Cycle{5}));
}

TEST(HierarchyTest, FillFromStreamBufferInsertsBlock)
{
    MemoryHierarchy h(fastTlbConfig());
    EXPECT_FALSE(h.probeData(Addr{0x7000}, Cycle{}).resident);
    h.fillFromStreamBuffer(h.blockOf(Addr{0x7000}), Cycle{});
    EXPECT_TRUE(h.probeData(Addr{0x7000}, Cycle{}).resident);
}

TEST(HierarchyTest, RegisterInFlightFillTracksReadyTime)
{
    MemoryHierarchy h(fastTlbConfig());
    h.registerInFlightFill(h.blockOf(Addr{0x8000}), Cycle{500},
                           Cycle{});
    ProbeResult p = h.probeData(Addr{0x8000}, Cycle{10});
    EXPECT_TRUE(p.inFlight);
    EXPECT_EQ(p.ready, Cycle{500});
    // After arrival it's an ordinary hit.
    EXPECT_TRUE(h.probeData(Addr{0x8000}, Cycle{500}).resident);
}

TEST(HierarchyTest, InstFetchHitsAfterFill)
{
    MemoryHierarchy h(fastTlbConfig());
    Cycle first = h.instFetch(Addr{0x400000}, Cycle{});
    EXPECT_GT(first, Cycle{1});
    EXPECT_EQ(h.stats().instMisses, 1u);
    Cycle second = h.instFetch(Addr{0x400000}, first);
    EXPECT_EQ(second, first + h.config().l1Latency);
    EXPECT_EQ(h.stats().instMisses, 1u);
}

TEST(HierarchyTest, TlbPenaltyChargedOnFirstTouch)
{
    MemoryConfig cfg; // default: 30-cycle TLB miss penalty
    MemoryHierarchy h(cfg);
    ProbeResult p = h.probeData(Addr{0x90000}, Cycle{});
    EXPECT_EQ(p.tlbPenalty, CycleDelta{30});
    ProbeResult p2 = h.probeData(Addr{0x90008}, Cycle{});
    EXPECT_EQ(p2.tlbPenalty, CycleDelta{});
}

TEST(HierarchyTest, ResetStatsClearsCountersKeepsContents)
{
    MemoryHierarchy h(fastTlbConfig());
    FillOutcome fill = h.missToL2(Addr{0x1000}, Cycle{}, false);
    h.resetStats();
    EXPECT_EQ(h.stats().l2Accesses, 0u);
    EXPECT_EQ(h.l1L2Bus().busyCycles(), 0u);
    EXPECT_TRUE(h.probeData(Addr{0x1000}, fill.ready).resident);
}

TEST(HierarchyTest, L2PipelineAcceptsEveryFourCycles)
{
    MemoryHierarchy h(fastTlbConfig());
    // Three back-to-back independent misses: the L2 accepts one every
    // latency/depth = 4 cycles, and the serial L1-L2 bus spaces the
    // requests by 5 anyway, so the fills complete in request order
    // with bounded spacing.
    FillOutcome a = h.missToL2(Addr{0x1000}, Cycle{}, false);
    FillOutcome b = h.missToL2(Addr{0x2000}, Cycle{}, false);
    FillOutcome c = h.missToL2(Addr{0x3000}, Cycle{}, false);
    EXPECT_LT(a.ready, b.ready);
    EXPECT_LT(b.ready, c.ready);
}

} // namespace
} // namespace psb
