/**
 * @file
 * Unit tests for the trace substrate: MicroOp helpers, TraceBuilder
 * emit/queue semantics, and the SyntheticHeap allocator.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "trace/micro_op.hh"
#include "trace/synthetic_heap.hh"
#include "trace/trace_builder.hh"

namespace psb
{
namespace
{

TEST(MicroOpTest, Classification)
{
    MicroOp op;
    op.op = OpClass::Load;
    EXPECT_TRUE(op.isLoad());
    EXPECT_TRUE(op.isMem());
    EXPECT_FALSE(op.isStore());
    op.op = OpClass::Store;
    EXPECT_TRUE(op.isStore());
    EXPECT_TRUE(op.isMem());
    op.op = OpClass::Branch;
    EXPECT_TRUE(op.isBranch());
    EXPECT_FALSE(op.isMem());
}

TEST(MicroOpTest, OpClassNamesUnique)
{
    std::set<std::string> names;
    for (unsigned i = 0; i < numOpClasses; ++i)
        names.insert(opClassName(OpClass(i)));
    EXPECT_EQ(names.size(), numOpClasses);
}

/** Builder that emits a fixed script then ends. */
class ScriptedBuilder : public TraceBuilder
{
  public:
    explicit ScriptedBuilder(unsigned steps) : _steps(steps) {}

  protected:
    bool
    step() override
    {
        if (_emittedSteps >= _steps)
            return false;
        ++_emittedSteps;
        emitLoad(Addr{0x1000}, 1, Addr(0x2000 + 8 * _emittedSteps), 2, 8);
        emitAlu(Addr{0x1004}, 3, 1);
        emitStore(Addr{0x1008}, Addr{0x3000}, 3, 2, 4);
        emitBranch(Addr{0x100c}, true, Addr{0x1000}, 3);
        return true;
    }

  private:
    unsigned _steps;
    unsigned _emittedSteps = 0;
};

TEST(TraceBuilderTest, EmitsOpsInOrderThenEnds)
{
    ScriptedBuilder b(2);
    MicroOp op;
    std::vector<MicroOp> ops;
    while (b.next(op))
        ops.push_back(op);
    ASSERT_EQ(ops.size(), 8u);
    EXPECT_EQ(b.emitted(), 8u);

    EXPECT_EQ(ops[0].op, OpClass::Load);
    EXPECT_EQ(ops[0].pc, Addr{0x1000});
    EXPECT_EQ(ops[0].dst, 1);
    EXPECT_EQ(ops[0].src1, 2);
    EXPECT_EQ(ops[0].effAddr, Addr{0x2008});
    EXPECT_EQ(ops[0].memSize, 8);

    EXPECT_EQ(ops[1].op, OpClass::IntAlu);
    EXPECT_EQ(ops[1].src1, 1);

    EXPECT_EQ(ops[2].op, OpClass::Store);
    EXPECT_EQ(ops[2].src1, 3);
    EXPECT_EQ(ops[2].src2, 2);
    EXPECT_EQ(ops[2].memSize, 4);

    EXPECT_EQ(ops[3].op, OpClass::Branch);
    EXPECT_TRUE(ops[3].taken);
    EXPECT_EQ(ops[3].target, Addr{0x1000});

    // Exhausted source keeps returning false.
    EXPECT_FALSE(b.next(op));
}

TEST(TraceBuilderTest, FillerOpsAreIndependent)
{
    class Filler : public TraceBuilder
    {
      protected:
        bool
        step() override
        {
            if (_done)
                return false;
            _done = true;
            emitFiller(Addr{0x2000}, 5);
            return true;
        }

      private:
        bool _done = false;
    } b;

    MicroOp op;
    unsigned n = 0;
    while (b.next(op)) {
        EXPECT_EQ(op.op, OpClass::IntAlu);
        EXPECT_EQ(op.dst, regNone);
        EXPECT_EQ(op.pc, Addr(0x2000 + 4 * n));
        ++n;
    }
    EXPECT_EQ(n, 5u);
}

TEST(SyntheticHeapTest, BumpAllocationIsMonotonicWithoutScatter)
{
    SyntheticHeap heap(Addr{0x1000}, 0);
    Addr a = heap.alloc(64, 8);
    Addr b = heap.alloc(64, 8);
    EXPECT_EQ(a, Addr{0x1000});
    EXPECT_EQ(b, a + 64);
    EXPECT_EQ(heap.bytesAllocated(), 128u);
}

TEST(SyntheticHeapTest, AlignmentHonoured)
{
    SyntheticHeap heap(Addr{0x1001}, 0);
    EXPECT_EQ(heap.alloc(8, 32).raw() % 32, 0u);
    EXPECT_EQ(heap.alloc(8, 64).raw() % 64, 0u);
    EXPECT_EQ(heap.alloc(8, 4096).raw() % 4096, 0u);
}

TEST(SyntheticHeapTest, FreeListRecyclesSameSizeClassLifo)
{
    SyntheticHeap heap(Addr{0x1000}, 0);
    Addr a = heap.alloc(48, 8);
    Addr b = heap.alloc(48, 8);
    heap.free(a, 48);
    heap.free(b, 48);
    // LIFO: last freed comes back first.
    EXPECT_EQ(heap.alloc(48, 8), b);
    EXPECT_EQ(heap.alloc(48, 8), a);
    EXPECT_EQ(heap.recycledCount(), 2u);
}

TEST(SyntheticHeapTest, DifferentSizeClassesDoNotMix)
{
    SyntheticHeap heap(Addr{0x1000}, 0);
    Addr a = heap.alloc(48, 8);
    heap.free(a, 48);
    Addr b = heap.alloc(64, 8);
    EXPECT_NE(a, b);
}

TEST(SyntheticHeapTest, ScatterAddsGapsDeterministically)
{
    SyntheticHeap h1(Addr{0x1000}, 16, 99);
    SyntheticHeap h2(Addr{0x1000}, 16, 99);
    bool gap_seen = false;
    Addr prev1{};
    for (int i = 0; i < 50; ++i) {
        Addr a1 = h1.alloc(32, 8);
        Addr a2 = h2.alloc(32, 8);
        EXPECT_EQ(a1, a2); // same seed, same layout
        if (prev1.raw() && a1 > prev1 + 32)
            gap_seen = true;
        EXPECT_GT(a1, prev1); // still monotonic
        prev1 = a1;
    }
    EXPECT_TRUE(gap_seen);
}

TEST(SyntheticHeapTest, AllAllocationsDistinct)
{
    SyntheticHeap heap(Addr{0x1000}, 8, 3);
    std::set<Addr> seen;
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(seen.insert(heap.alloc(40, 8)).second);
}

} // namespace
} // namespace psb
