/**
 * @file
 * Unit and property tests for the set-associative cache tag model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "memory/cache.hh"

namespace psb
{
namespace
{

CacheGeometry
smallGeom()
{
    // 4 sets x 2 ways x 32B lines = 256 bytes.
    return CacheGeometry{256, 2, 32};
}

TEST(CacheGeometryTest, NumSets)
{
    EXPECT_EQ(smallGeom().numSets(), 4u);
    CacheGeometry paper_l1d{32 * 1024, 4, 32};
    EXPECT_EQ(paper_l1d.numSets(), 256u);
    CacheGeometry paper_l2{1024 * 1024, 4, 64};
    EXPECT_EQ(paper_l2.numSets(), 4096u);
}

TEST(CacheTest, MissThenHitAfterInsert)
{
    SetAssocCache c(smallGeom());
    EXPECT_FALSE(c.probe(Addr{0x1000}));
    EXPECT_FALSE(c.touch(Addr{0x1000}));
    c.insert(Addr{0x1000});
    EXPECT_TRUE(c.probe(Addr{0x1000}));
    EXPECT_TRUE(c.touch(Addr{0x1000}));
}

TEST(CacheTest, BlockGranularity)
{
    SetAssocCache c(smallGeom());
    c.insert(Addr{0x1000});
    // Any byte of the same 32B block hits.
    EXPECT_TRUE(c.probe(Addr{0x101f}));
    EXPECT_FALSE(c.probe(Addr{0x1020}));
    EXPECT_EQ(c.blockAlign(Addr{0x101f}), Addr{0x1000});
}

TEST(CacheTest, LruEvictionOrder)
{
    SetAssocCache c(smallGeom()); // 2-way
    // Three blocks mapping to the same set (set stride = 4 sets x 32B).
    Addr a{0x1000}, b{0x1000 + 128}, d{0x1000 + 256};
    c.insert(a);
    c.insert(b);
    c.touch(a); // make b the LRU
    auto evicted = c.insert(d);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, b);
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(CacheTest, EvictionReconstructsFullBlockAddress)
{
    SetAssocCache c(smallGeom());
    Addr victim = Addr{0xdeadbe00}.alignDown(32);
    c.insert(victim);
    // Fill the set until the victim leaves.
    Addr same_set = victim + 128;
    c.insert(same_set);
    auto evicted = c.insert(victim + 256);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, victim);
}

TEST(CacheTest, DirtyBitTracksWrites)
{
    SetAssocCache c(smallGeom());
    c.insert(Addr{0x1000}, /*dirty=*/false);
    c.insert(Addr{0x1080}, /*dirty=*/false);
    c.touch(Addr{0x1000}, /*is_write=*/true);
    c.touch(Addr{0x1080}); // clean read; 0x1000 is now the LRU way
    auto evicted = c.insert(Addr{0x1100}); // evicts 0x1000 (dirty, LRU)
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, Addr{0x1000});
    EXPECT_TRUE(evicted->dirty);
    auto evicted2 = c.insert(Addr{0x1180}); // evicts 0x1080 (clean)
    ASSERT_TRUE(evicted2.has_value());
    EXPECT_EQ(evicted2->blockAddr, Addr{0x1080});
    EXPECT_FALSE(evicted2->dirty);
}

TEST(CacheTest, InsertDirtyFlagSticks)
{
    SetAssocCache c(smallGeom());
    c.insert(Addr{0x1000}, /*dirty=*/true);
    c.insert(Addr{0x1080});
    auto evicted = c.insert(Addr{0x1100});
    // LRU is 0x1000, inserted dirty.
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(evicted->dirty);
}

TEST(CacheTest, ReinsertResidentBlockEvictsNothing)
{
    SetAssocCache c(smallGeom());
    c.insert(Addr{0x1000});
    c.insert(Addr{0x1080});
    EXPECT_FALSE(c.insert(Addr{0x1000}).has_value());
    EXPECT_EQ(c.validBlocks(), 2u);
    // Re-insert with dirty merges the dirty bit.
    c.insert(Addr{0x1000}, /*dirty=*/true);
    c.insert(Addr{0x1080}); // refresh LRU: 0x1000 older now
    auto evicted = c.insert(Addr{0x1100});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, Addr{0x1000});
    EXPECT_TRUE(evicted->dirty);
}

TEST(CacheTest, InvalidateAndFlush)
{
    SetAssocCache c(smallGeom());
    c.insert(Addr{0x1000});
    c.insert(Addr{0x2000});
    c.invalidate(Addr{0x1000});
    EXPECT_FALSE(c.probe(Addr{0x1000}));
    EXPECT_TRUE(c.probe(Addr{0x2000}));
    c.flush();
    EXPECT_FALSE(c.probe(Addr{0x2000}));
    EXPECT_EQ(c.validBlocks(), 0u);
}

TEST(CacheTest, InvalidatedWayReusedWithoutEviction)
{
    SetAssocCache c(smallGeom());
    c.insert(Addr{0x1000});
    c.insert(Addr{0x1080});
    c.invalidate(Addr{0x1000});
    EXPECT_FALSE(c.insert(Addr{0x1100}).has_value());
    EXPECT_TRUE(c.probe(Addr{0x1080}));
}

/** Property sweep over geometries. */
class CacheGeomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned,
                                                 unsigned>>
{
};

TEST_P(CacheGeomTest, CapacityWorkingSetFitsExactly)
{
    auto [size, assoc, block] = GetParam();
    SetAssocCache c(CacheGeometry{size, assoc, block});
    uint64_t blocks = size / block;
    // Fill the entire cache with a dense region: no evictions.
    for (uint64_t i = 0; i < blocks; ++i)
        EXPECT_FALSE(c.insert(Addr{0x100000 + i * block}).has_value());
    EXPECT_EQ(c.validBlocks(), blocks);
    // Everything still resident.
    for (uint64_t i = 0; i < blocks; ++i)
        EXPECT_TRUE(c.probe(Addr{0x100000 + i * block}));
    // One more block evicts exactly one victim.
    auto evicted = c.insert(Addr{0x100000 + blocks * block});
    EXPECT_TRUE(evicted.has_value());
    EXPECT_EQ(c.validBlocks(), blocks);
}

TEST_P(CacheGeomTest, ThrashingSetNeverExceedsAssociativity)
{
    auto [size, assoc, block] = GetParam();
    SetAssocCache c(CacheGeometry{size, assoc, block});
    uint64_t set_stride = (size / assoc);
    // 2*assoc blocks mapping to one set: at most assoc survive.
    for (unsigned i = 0; i < 2 * assoc; ++i)
        c.insert(Addr{0x100000 + uint64_t(i) * set_stride});
    unsigned resident = 0;
    for (unsigned i = 0; i < 2 * assoc; ++i) {
        resident +=
            c.probe(Addr{0x100000 + uint64_t(i) * set_stride}) ? 1 : 0;
    }
    EXPECT_EQ(resident, assoc);
    // And LRU means exactly the last `assoc` insertions survive.
    for (unsigned i = assoc; i < 2 * assoc; ++i)
        EXPECT_TRUE(c.probe(Addr{0x100000 + uint64_t(i) * set_stride}));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeomTest,
    ::testing::Values(
        std::make_tuple(uint64_t(16 * 1024), 4u, 32u),   // Fig 10
        std::make_tuple(uint64_t(32 * 1024), 2u, 32u),   // Fig 10
        std::make_tuple(uint64_t(32 * 1024), 4u, 32u),   // baseline L1D
        std::make_tuple(uint64_t(32 * 1024), 2u, 32u),   // baseline L1I
        std::make_tuple(uint64_t(1024 * 1024), 4u, 64u), // baseline L2
        std::make_tuple(uint64_t(256), 1u, 32u),         // direct-mapped
        std::make_tuple(uint64_t(512), 8u, 64u)));       // tiny FA-ish

} // namespace
} // namespace psb
