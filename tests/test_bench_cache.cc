/**
 * @file
 * Regression test for the figure-harness persistent cache
 * (bench/common.cc): cache keys must embed a fingerprint of the fully
 * tweaked, harmonized configuration, so a cached row can never be
 * replayed for a request whose machine differs in any parameter. The
 * pre-fingerprint keys were name-only ("v3|health|ConfAlloc-Priority|
 * warmup|insts|variant") and went stale whenever a config default or
 * an unlabelled tweak changed between binary builds.
 */

#include <gtest/gtest.h>

#include <string>

#include "common.hh"
#include "sim/config.hh"

namespace psb::bench
{
namespace
{

SimConfig
baseConfig()
{
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.harmonize();
    return cfg;
}

TEST(ConfigFingerprintTest, StableForIdenticalConfigs)
{
    EXPECT_EQ(configFingerprint(baseConfig()),
              configFingerprint(baseConfig()));
    EXPECT_EQ(configFingerprint(baseConfig()).size(), 16u);
}

TEST(ConfigFingerprintTest, SensitiveToEveryConfigLayer)
{
    const std::string base = configFingerprint(baseConfig());

    auto mutated = [&](auto mutate) {
        SimConfig cfg = baseConfig();
        mutate(cfg);
        return configFingerprint(cfg);
    };

    // One probe per configuration layer: core, memory geometry,
    // memory timing, prefetcher selection, stream-buffer shape,
    // predictor tables, region lengths, and the fast-forward switch.
    EXPECT_NE(base, mutated([](SimConfig &c) {
                  c.core.robEntries = 64;
              }));
    EXPECT_NE(base, mutated([](SimConfig &c) {
                  c.memory.l1d.sizeBytes = 16 * 1024;
              }));
    EXPECT_NE(base, mutated([](SimConfig &c) {
                  c.memory.memLatency = CycleDelta{200};
              }));
    EXPECT_NE(base, mutated([](SimConfig &c) {
                  c.prefetcher = PrefetcherKind::None;
              }));
    EXPECT_NE(base, mutated([](SimConfig &c) {
                  c.psb.buffers.numBuffers = 4;
              }));
    EXPECT_NE(base, mutated([](SimConfig &c) {
                  c.sfm.markov.deltaBits = 8;
              }));
    EXPECT_NE(base, mutated([](SimConfig &c) {
                  c.warmupInstructions += 1;
              }));
    EXPECT_NE(base, mutated([](SimConfig &c) {
                  c.fastForward = false;
              }));
}

TEST(CacheKeyTest, TweakChangesTheKeyEvenWithTheSameVariantLabel)
{
    BenchOptions opts;
    SimRequest stock{"health", PaperConfig::ConfAllocPriority, "", {}};
    // The staleness bug: a tweak that alters the machine but reuses a
    // variant label (or forgets to set one) used to collide with the
    // stock cell's cache row and silently replay its numbers.
    SimRequest tweaked{"health", PaperConfig::ConfAllocPriority, "",
                       [](SimConfig &c) {
                           c.psb.buffers.entriesPerBuffer = 8;
                       }};
    EXPECT_NE(cacheKey(stock, opts), cacheKey(tweaked, opts));
}

TEST(CacheKeyTest, KeySeparatesWorkloadConfigAndRegionLengths)
{
    BenchOptions opts;
    SimRequest req{"health", PaperConfig::Base, "", {}};

    SimRequest otherWorkload = req;
    otherWorkload.workload = "gs";
    EXPECT_NE(cacheKey(req, opts), cacheKey(otherWorkload, opts));

    SimRequest otherConfig = req;
    otherConfig.config = PaperConfig::PcStride;
    EXPECT_NE(cacheKey(req, opts), cacheKey(otherConfig, opts));

    BenchOptions otherOpts = opts;
    otherOpts.instructions *= 2;
    EXPECT_NE(cacheKey(req, opts), cacheKey(req, otherOpts));

    EXPECT_EQ(cacheKey(req, opts), cacheKey(req, opts));
}

} // namespace
} // namespace psb::bench
