/**
 * @file
 * Unit tests for the gated event-tracing layer (util/trace.hh) and the
 * interval-stats writer (sim/interval_stats.hh): flag parsing, the
 * three sink formats, window filtering, span balancing (including the
 * synthetic closes finish() emits), the zero-cost-when-off macro
 * contract, byte-determinism of the sinks, and the telescoping-delta
 * invariant of interval records.
 *
 * Not to be confused with test_trace.cc, which tests src/trace/ — the
 * MicroOp instruction-trace substrate.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/interval_stats.hh"
#include "sim/simulator.hh"
#include "util/json.hh"
#include "util/stats.hh"
#include "util/stats_json.hh"
#include "util/strong_types.hh"
#include "util/trace.hh"
#include "workloads/workload.hh"

namespace psb
{
namespace
{

constexpr uint32_t kAllFlags = (uint32_t(1) << kNumTraceFlags) - 1;

uint32_t
bit(TraceFlag flag)
{
    return uint32_t(1) << unsigned(flag);
}

/**
 * The TraceManager is process-wide state: every test starts from a
 * clean slate and leaves the mask cleared so other suites (and the
 * golden harness run in the same binary tree) are unaffected.
 */
class TracingTest : public ::testing::Test
{
  protected:
    void SetUp() override { TraceManager::get().reset(); }
    void TearDown() override { TraceManager::get().reset(); }
};

TEST_F(TracingTest, ParseFlagsSingleAndMulti)
{
    std::string bad;
    auto mask = TraceManager::parseFlags("psb", bad);
    ASSERT_TRUE(mask.has_value());
    EXPECT_EQ(*mask, bit(TraceFlag::Psb));

    mask = TraceManager::parseFlags("psb,sched,mshr", bad);
    ASSERT_TRUE(mask.has_value());
    EXPECT_EQ(*mask, bit(TraceFlag::Psb) | bit(TraceFlag::Sched) |
                         bit(TraceFlag::Mshr));
}

TEST_F(TracingTest, ParseFlagsAllEnablesEveryFlag)
{
    std::string bad;
    auto mask = TraceManager::parseFlags("all", bad);
    ASSERT_TRUE(mask.has_value());
    EXPECT_EQ(*mask, kAllFlags);
}

TEST_F(TracingTest, ParseFlagsRejectsUnknownToken)
{
    std::string bad;
    auto mask = TraceManager::parseFlags("psb,bogus,bus", bad);
    EXPECT_FALSE(mask.has_value());
    EXPECT_EQ(bad, "bogus");
}

TEST_F(TracingTest, ParseFlagsEmptyAndStrayCommas)
{
    std::string bad;
    auto mask = TraceManager::parseFlags("", bad);
    ASSERT_TRUE(mask.has_value());
    EXPECT_EQ(*mask, 0u);

    mask = TraceManager::parseFlags(",psb,,cpu,", bad);
    ASSERT_TRUE(mask.has_value());
    EXPECT_EQ(*mask, bit(TraceFlag::Psb) | bit(TraceFlag::Cpu));
}

TEST_F(TracingTest, FlagNamesRoundTripThroughParse)
{
    std::string bad;
    for (unsigned i = 0; i < kNumTraceFlags; ++i) {
        auto mask =
            TraceManager::parseFlags(TraceManager::flagName(TraceFlag(i)),
                                     bad);
        ASSERT_TRUE(mask.has_value());
        EXPECT_EQ(*mask, uint32_t(1) << i);
    }
    // The error-message list names every flag exactly once.
    EXPECT_EQ(TraceManager::validFlagList(),
              "psb,sched,sfm,markov,bus,cache,mshr,cpu,prefetch");
}

TEST_F(TracingTest, ParseFormat)
{
    EXPECT_EQ(TraceManager::parseFormat("text"),
              TraceManager::Format::Text);
    EXPECT_EQ(TraceManager::parseFormat("jsonl"),
              TraceManager::Format::Jsonl);
    EXPECT_EQ(TraceManager::parseFormat("chrome"),
              TraceManager::Format::Chrome);
    EXPECT_FALSE(TraceManager::parseFormat("json").has_value());
    EXPECT_FALSE(TraceManager::parseFormat("").has_value());
}

TEST_F(TracingTest, MaskGatesMacrosAndConfigureSetsIt)
{
    EXPECT_FALSE(traceAnyEnabled());
    std::ostringstream out;
    TraceManager::get().configure(bit(TraceFlag::Psb),
                                  TraceManager::Format::Text, out);
    EXPECT_TRUE(traceEnabled(TraceFlag::Psb));
    EXPECT_FALSE(traceEnabled(TraceFlag::Bus));
    EXPECT_TRUE(traceAnyEnabled());

    // A disabled flag's macro must not evaluate its arguments.
    int evaluations = 0;
    auto count = [&evaluations] { return ++evaluations; };
    PSB_TRACE(Bus, "nope", -1, "n=%d", count());
    EXPECT_EQ(evaluations, 0);
    PSB_TRACE(Psb, "yes", -1, "n=%d", count());
    EXPECT_EQ(evaluations, 1);

    TraceManager::get().finish();
    EXPECT_FALSE(traceAnyEnabled());
}

TEST_F(TracingTest, TextFormat)
{
    std::ostringstream out;
    auto &tm = TraceManager::get();
    tm.configure(kAllFlags, TraceManager::Format::Text, out);
    tm.setNow(Cycle(42));
    tm.instant(TraceFlag::Psb, "hit", 3, "block=%d", 7);
    tm.setNow(Cycle(50));
    tm.instant(TraceFlag::Cpu, "mispredict", -1, "%s", "");
    tm.finish();
    EXPECT_EQ(out.str(), "[42] psb.3 hit block=7\n"
                         "[50] cpu mispredict\n");
}

TEST_F(TracingTest, JsonlFormat)
{
    std::ostringstream out;
    auto &tm = TraceManager::get();
    tm.configure(kAllFlags, TraceManager::Format::Jsonl, out);
    tm.setNow(Cycle(5));
    tm.begin(TraceFlag::Psb, "stream", 0, "block=%d", 9);
    tm.setNow(Cycle(8));
    tm.end(TraceFlag::Psb, "stream", 0);
    tm.finish();
    EXPECT_EQ(out.str(),
              "{\"cycle\":5,\"flag\":\"psb\",\"kind\":\"B\","
              "\"name\":\"stream\",\"track\":0,\"args\":\"block=9\"}\n"
              "{\"cycle\":8,\"flag\":\"psb\",\"kind\":\"E\","
              "\"name\":\"stream\",\"track\":0,\"args\":\"\"}\n");
}

TEST_F(TracingTest, JsonlEscapesSpecialCharacters)
{
    std::ostringstream out;
    auto &tm = TraceManager::get();
    tm.configure(kAllFlags, TraceManager::Format::Jsonl, out);
    tm.instant(TraceFlag::Psb, "odd", -1, "q=\"%s\"\n", "a\\b");
    tm.finish();
    EXPECT_NE(out.str().find("\"args\":\"q=\\\"a\\\\b\\\"\\n\""),
              std::string::npos);
}

TEST_F(TracingTest, ChromeFormatIsAWellFormedArray)
{
    std::ostringstream out;
    auto &tm = TraceManager::get();
    tm.configure(kAllFlags, TraceManager::Format::Chrome, out);
    tm.setNow(Cycle(10));
    tm.begin(TraceFlag::Psb, "stream", 2, "block=%d", 4);
    tm.setNow(Cycle(11));
    tm.instant(TraceFlag::Bus, "transact", -1, "bytes=%d", 64);
    tm.setNow(Cycle(20));
    tm.end(TraceFlag::Psb, "stream", 2);
    tm.finish();

    const std::string s = out.str();
    EXPECT_EQ(s.front(), '[');
    EXPECT_EQ(s.substr(s.size() - 3), "\n]\n");
    // Process-name metadata for every flag, named up front.
    for (unsigned i = 0; i < kNumTraceFlags; ++i) {
        EXPECT_NE(s.find(std::string("\"name\":\"") +
                         TraceManager::flagName(TraceFlag(i)) + "\""),
                  std::string::npos);
    }
    // The span renders as B/E on pid=flag+1, tid=track+1; the instant
    // is thread-scoped.
    EXPECT_NE(s.find("\"ph\":\"B\",\"ts\":10,\"pid\":1,\"tid\":3"),
              std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"E\",\"ts\":20,\"pid\":1,\"tid\":3"),
              std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"i\",\"ts\":11,\"pid\":5,\"tid\":0,"
                     "\"s\":\"t\""),
              std::string::npos);
    // No trailing comma before the closing bracket.
    EXPECT_EQ(s.find(",\n]"), std::string::npos);
}

TEST_F(TracingTest, WindowFiltersEventsOutsideRange)
{
    std::ostringstream out;
    auto &tm = TraceManager::get();
    tm.configure(kAllFlags, TraceManager::Format::Text, out, Cycle(100),
                 Cycle(200));
    tm.setNow(Cycle(50));
    tm.instant(TraceFlag::Psb, "early", -1, "%s", "");
    tm.setNow(Cycle(100));
    tm.instant(TraceFlag::Psb, "in", -1, "%s", "");
    tm.setNow(Cycle(199));
    tm.instant(TraceFlag::Psb, "edge", -1, "%s", "");
    tm.setNow(Cycle(200));
    tm.instant(TraceFlag::Psb, "late", -1, "%s", "");
    tm.finish();
    EXPECT_EQ(out.str(), "[100] psb in\n[199] psb edge\n");
    EXPECT_EQ(tm.eventCount(), 2u);
}

TEST_F(TracingTest, EndWithoutBeginIsDropped)
{
    // A span opened before the window started: its end must not leak
    // an unmatched E event into the output.
    std::ostringstream out;
    auto &tm = TraceManager::get();
    tm.configure(kAllFlags, TraceManager::Format::Text, out, Cycle(100),
                 Cycle::max());
    tm.setNow(Cycle(10));
    tm.begin(TraceFlag::Psb, "stream", 0, "%s", "");  // filtered out
    tm.setNow(Cycle(150));
    tm.end(TraceFlag::Psb, "stream", 0);        // dropped: no begin
    tm.finish();
    EXPECT_EQ(out.str(), "");
}

TEST_F(TracingTest, FinishClosesOpenSpansSynthetically)
{
    std::ostringstream out;
    auto &tm = TraceManager::get();
    tm.configure(kAllFlags, TraceManager::Format::Jsonl, out);
    tm.setNow(Cycle(5));
    tm.begin(TraceFlag::Psb, "stream", 1, "%s", "");
    tm.setNow(Cycle(9));
    tm.instant(TraceFlag::Psb, "hit", 1, "%s", "");
    tm.finish();

    // The synthetic close lands at the last emitted cycle.
    EXPECT_NE(out.str().find("{\"cycle\":9,\"flag\":\"psb\",\"kind\":"
                             "\"E\",\"name\":\"stream\",\"track\":1"),
              std::string::npos);

    // Begins and ends balance.
    size_t begins = 0, ends = 0, pos = 0;
    const std::string s = out.str();
    while ((pos = s.find("\"kind\":\"B\"", pos)) != std::string::npos) {
        ++begins;
        ++pos;
    }
    pos = 0;
    while ((pos = s.find("\"kind\":\"E\"", pos)) != std::string::npos) {
        ++ends;
        ++pos;
    }
    EXPECT_EQ(begins, 1u);
    EXPECT_EQ(ends, 1u);
}

TEST_F(TracingTest, RepeatedSequencesAreByteIdentical)
{
    auto run = [] {
        std::ostringstream out;
        auto &tm = TraceManager::get();
        tm.configure(kAllFlags, TraceManager::Format::Jsonl, out);
        for (int i = 0; i < 100; ++i) {
            tm.setNow(Cycle(uint64_t(i)));
            tm.instant(TraceFlag(i % int(kNumTraceFlags)), "ev", i % 8,
                       "i=%d", i);
            if (i % 10 == 0)
                tm.begin(TraceFlag::Psb, "stream", i % 4, "i=%d", i);
            if (i % 10 == 7)
                tm.end(TraceFlag::Psb, "stream", i % 4);
        }
        tm.finish();
        return out.str();
    };
    std::string first = run();
    std::string second = run();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST_F(TracingTest, FinishIsSafeWhenNeverConfigured)
{
    TraceManager::get().finish(); // must not crash or write anywhere
    EXPECT_FALSE(traceAnyEnabled());
}

// ------------------------------------------------------------------ //
// IntervalStatsWriter
// ------------------------------------------------------------------ //

TEST(IntervalStats, DeltasTelescopeToFinalCounters)
{
    StatsRegistry reg;
    uint64_t hits = 0;
    uint64_t level = 0; // level-like: goes down as well as up
    reg.addScalar("x.hits", &hits);
    reg.addScalar("x.level", &level);
    reg.addReal("x.ratio", [&] { return double(hits) / 100.0; });

    std::ostringstream out;
    IntervalStatsWriter writer(reg, 10, out);
    writer.start(Cycle(0));

    for (uint64_t now = 1; now <= 35; ++now) {
        hits += 2;
        level = (now % 7); // rises and falls
        writer.tick(Cycle(now));
    }
    writer.finish(Cycle(35));

    // 3 full intervals + 1 partial.
    EXPECT_EQ(writer.intervalsEmitted(), 4u);

    // Telescoping: parse the deltas back out and sum them.
    const std::string s = out.str();
    int64_t sum_hits = 0, sum_level = 0;
    size_t pos = 0;
    while ((pos = s.find("\"x.hits\":", pos)) != std::string::npos) {
        // Only count occurrences inside a "delta" object — x.hits is a
        // scalar, so it only ever appears there.
        sum_hits += std::stoll(s.substr(pos + 9));
        ++pos;
    }
    pos = 0;
    while ((pos = s.find("\"x.level\":", pos)) != std::string::npos) {
        sum_level += std::stoll(s.substr(pos + 10));
        ++pos;
    }
    EXPECT_EQ(sum_hits, int64_t(hits));
    EXPECT_EQ(sum_level, int64_t(level));

    // Reals land in "values", never in "delta".
    EXPECT_NE(s.find("\"values\":{\"x.ratio\":"), std::string::npos);
    // Interval indices are sequential from 0.
    EXPECT_NE(s.find("{\"interval\":0,\"start\":0,\"end\":10,"),
              std::string::npos);
    EXPECT_NE(s.find("{\"interval\":3,\"start\":30,\"end\":35,"),
              std::string::npos);
}

TEST(IntervalStats, NoPartialRecordWhenFinishingOnBoundary)
{
    StatsRegistry reg;
    uint64_t c = 0;
    reg.addScalar("c", &c);

    std::ostringstream out;
    IntervalStatsWriter writer(reg, 10, out);
    writer.start(Cycle(0));
    for (uint64_t now = 1; now <= 20; ++now) {
        ++c;
        writer.tick(Cycle(now));
    }
    writer.finish(Cycle(20));
    EXPECT_EQ(writer.intervalsEmitted(), 2u);
}

TEST(IntervalStats, SimulatorEmitsFinalPartialInterval)
{
    // End-to-end regression for the trailing-partial-record contract:
    // a full simulation whose measured length does not divide the
    // interval period must still account for every cycle — the last
    // record is a partial one ending at the final cycle, and every
    // scalar's deltas telescope to the final stats document (including
    // the attribution squash counters settled at end-of-sim).
    constexpr uint64_t kPeriod = 997; // prime: never divides the run
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.warmupInstructions = 2000;
    cfg.maxInstructions = 12000;

    auto trace = makeWorkload("health", 1);
    Simulator sim(cfg, *trace);
    std::ostringstream intervals;
    sim.setIntervalStats(kPeriod, intervals);
    sim.run();

    std::map<std::string, ParsedStat> final_stats;
    std::string error;
    ASSERT_TRUE(parseStatsJson(sim.statsJson(), final_stats, error))
        << error;
    uint64_t measured = uint64_t(final_stats.at("core.cycles").value);
    ASSERT_NE(measured % kPeriod, 0u)
        << "degenerate run length; pick another period";

    // Walk the JSONL records: contiguous coverage, partial tail.
    uint64_t records = 0, covered = 0, last_span = 0;
    std::map<std::string, int64_t> delta_sums;
    std::istringstream lines(intervals.str());
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        JsonValue rec;
        ASSERT_TRUE(parseJson(line, rec, error)) << error;
        uint64_t start = 0, end = 0;
        ASSERT_TRUE(rec.find("start")->asUInt(start));
        ASSERT_TRUE(rec.find("end")->asUInt(end));
        last_span = end - start;
        covered += last_span;
        for (const auto &[path, value] : rec.find("delta")->object)
            delta_sums[path] += int64_t(value.number);
        ++records;
    }
    EXPECT_EQ(records, measured / kPeriod + 1);
    EXPECT_EQ(covered, measured);
    EXPECT_EQ(last_span, measured % kPeriod)
        << "final partial interval missing or mis-sized";

    // Telescoping across the whole scalar set, squash counters
    // included (Simulator::run() settles attribution before the final
    // record so end-of-sim outcomes land inside the measured region).
    for (const auto &[path, sum] : delta_sums) {
        auto it = final_stats.find(path);
        ASSERT_NE(it, final_stats.end()) << path;
        EXPECT_EQ(sum, int64_t(it->second.value)) << path;
    }
    ASSERT_NE(delta_sums.find("prefetch.attrib.outcome.squashed"),
              delta_sums.end())
        << "attribution counters missing from interval deltas";
}

TEST(IntervalStats, RepeatedRunsAreByteIdentical)
{
    auto run = [] {
        StatsRegistry reg;
        uint64_t c = 0;
        reg.addScalar("c", &c);
        reg.addReal("r", [&] { return double(c) * 0.3; });
        std::ostringstream out;
        IntervalStatsWriter writer(reg, 5, out);
        writer.start(Cycle(0));
        for (uint64_t now = 1; now <= 23; ++now) {
            c += now;
            writer.tick(Cycle(now));
        }
        writer.finish(Cycle(23));
        return out.str();
    };
    std::string first = run();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, run());
}

} // namespace
} // namespace psb
