/**
 * @file
 * Run-report renderer (sim/run_report.hh): section selection from the
 * provided documents, parse-error propagation, the determinism
 * contract (byte-identical output for identical inputs), and HTML
 * escaping. The end-to-end CLI path (psb-sim → psb-report, rendered
 * twice and byte-diffed) lives in tests/report/check_report.sh.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/run_report.hh"

namespace psb
{
namespace
{

const char kStats[] = R"({
  "core.cycles": 1000,
  "core.instructions": 500,
  "core.ipc": 0.5,
  "l1d.misses": 50,
  "prefetch.attrib.issued": 100,
  "prefetch.attrib.lateness.p50": 7,
  "prefetch.attrib.lateness.p90": 9,
  "prefetch.attrib.lateness.p99": 11,
  "prefetch.attrib.lateness.samples": 20,
  "prefetch.attrib.outcome.evicted_unused": 10,
  "prefetch.attrib.outcome.redundant_demand": 5,
  "prefetch.attrib.outcome.replaced": 0,
  "prefetch.attrib.outcome.squashed": 5,
  "prefetch.attrib.outcome.used_late": 20,
  "prefetch.attrib.outcome.used_timely": 60,
  "prefetch.attrib.source.stride.issued": 100,
  "prefetch.attrib.source.stride.used_timely": 60,
  "prefetch.attrib.source.stride.used_late": 20,
  "prefetch.attrib.source.stride.evicted_unused": 10,
  "prefetch.attrib.source.stride.replaced": 0,
  "prefetch.attrib.source.stride.squashed": 5,
  "prefetch.attrib.source.stride.redundant_demand": 5,
  "prefetch.attrib.use_distance.p50": 12,
  "prefetch.attrib.use_distance.p90": 40,
  "prefetch.attrib.use_distance.p99": 90,
  "prefetch.attrib.use_distance.samples": 80
})";

std::string
render(const RunReportInputs &in, ReportFormat format)
{
    std::string out, error;
    EXPECT_TRUE(renderRunReport(in, format, out, error)) << error;
    return out;
}

TEST(RunReport, MarkdownCarriesSummaryAndAttribution)
{
    RunReportInputs in;
    in.statsJson = kStats;
    std::string md = render(in, ReportFormat::Markdown);

    EXPECT_NE(md.find("# PSB run report"), std::string::npos);
    EXPECT_NE(md.find("## Run summary"), std::string::npos);
    EXPECT_NE(md.find("| core.ipc | 0.5 |"), std::string::npos);
    EXPECT_NE(md.find("## Prefetch attribution"), std::string::npos);
    // accuracy = (60+20)/100, timeliness = 60/80, coverage = 80/130.
    EXPECT_NE(md.find("accuracy 0.8000"), std::string::npos);
    EXPECT_NE(md.find("timeliness 0.7500"), std::string::npos);
    EXPECT_NE(md.find("Coverage 0.6154"), std::string::npos);
    EXPECT_NE(md.find("| used_timely | 60 | 60.00% |"),
              std::string::npos);
    EXPECT_NE(md.find("| stride | 100 |"), std::string::npos);
    // Unexercised sources are dropped from the per-source table.
    EXPECT_EQ(md.find("| markov |"), std::string::npos);
    // Optional sections stay out when their documents are absent.
    EXPECT_EQ(md.find("## Sweep cells"), std::string::npos);
    EXPECT_EQ(md.find("## Bench trajectory"), std::string::npos);
    EXPECT_EQ(md.find("## Golden drift"), std::string::npos);
}

TEST(RunReport, OutputIsByteIdenticalAcrossInvocations)
{
    RunReportInputs in;
    in.title = "determinism probe";
    in.statsJson = kStats;
    in.sweepJson =
        R"({"jobs":{"b":{"status":"ok","attempts":1,"stats":)"
        R"({"core.ipc":0.25,"prefetch.attrib.issued":4,)"
        R"("prefetch.attrib.outcome.used_timely":3}},)"
        R"("a":{"status":"failed","attempts":2,"error":"boom"}}})";
    for (ReportFormat format :
         {ReportFormat::Markdown, ReportFormat::Html}) {
        std::string first = render(in, format);
        std::string second = render(in, format);
        ASSERT_FALSE(first.empty());
        EXPECT_EQ(first, second);
    }
}

TEST(RunReport, SweepCellsAreSortedByKey)
{
    RunReportInputs in;
    in.statsJson = kStats;
    in.sweepJson =
        R"({"jobs":{"z/late":{"status":"ok","attempts":1,"stats":)"
        R"({"core.ipc":0.25}},)"
        R"("a/early":{"status":"failed","attempts":2,"error":"x"}}})";
    std::string md = render(in, ReportFormat::Markdown);
    size_t a = md.find("| a/early | failed |");
    size_t z = md.find("| z/late | ok | 0.25 |");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, z) << "cells must render in sorted key order";
}

TEST(RunReport, BenchSectionSkipsWallFieldsAndComputesDeltas)
{
    RunReportInputs in;
    in.statsJson = kStats;
    in.benchJson =
        R"({"fig5":{"cells":{"health/base":{"cycles":2000,)"
        R"("instructions":900,"wall_ms":123.4,)"
        R"("wall_cycles_per_sec":9.9e6}}}})";
    in.benchBaselineJson =
        R"({"fig5":{"cells":{"health/base":{"cycles":1900,)"
        R"("instructions":900,"wall_ms":99.9}}}})";
    std::string md = render(in, ReportFormat::Markdown);
    EXPECT_NE(md.find("## Bench trajectory"), std::string::npos);
    EXPECT_NE(md.find("| health/base | 2000 | 900 | 1900 | +100 |"),
              std::string::npos);
    // Wall-clock facts never reach the report (determinism contract).
    EXPECT_EQ(md.find("wall_ms"), std::string::npos);
    EXPECT_EQ(md.find("123.4"), std::string::npos);
}

TEST(RunReport, GoldenDriftCountsAddsRemovesChanges)
{
    RunReportInputs in;
    in.statsJson = R"({"a":1,"b":2,"c":3})";
    in.goldenJson = R"({"b":2,"c":4,"d":5})";
    std::string md = render(in, ReportFormat::Markdown);
    EXPECT_NE(md.find("1 stats added, 1 removed, 1 changed"),
              std::string::npos);
    EXPECT_NE(md.find("| c | 4 | 3 |"), std::string::npos);
}

TEST(RunReport, HtmlEscapesUserStrings)
{
    RunReportInputs in;
    in.title = "a <b> & \"c\"";
    in.statsJson = kStats;
    std::string html = render(in, ReportFormat::Html);
    EXPECT_NE(html.find("<h1>a &lt;b&gt; &amp; \"c\"</h1>"),
              std::string::npos);
    EXPECT_NE(html.find("<table>"), std::string::npos);
    EXPECT_EQ(html.find("<b>"), std::string::npos);
}

TEST(RunReport, BadProvidedDocumentFailsWithContext)
{
    RunReportInputs in;
    in.statsJson = "not json";
    std::string out, error;
    EXPECT_FALSE(renderRunReport(in, ReportFormat::Markdown, out,
                                 error));
    EXPECT_NE(error.find("stats document"), std::string::npos);

    in.statsJson = kStats;
    in.sweepJson = "{\"nojobs\":1}";
    EXPECT_FALSE(renderRunReport(in, ReportFormat::Markdown, out,
                                 error));
    EXPECT_NE(error.find("sweep document"), std::string::npos);
}

TEST(RunReport, IntervalSectionReVerifiesTelescoping)
{
    RunReportInputs in;
    in.statsJson = R"({"core.cycles": 30, "x.hits": 10})";
    in.intervalsJsonl =
        "{\"interval\":0,\"start\":0,\"end\":10,\"delta\":"
        "{\"core.cycles\":10,\"x.hits\":4},\"values\":{}}\n"
        "{\"interval\":1,\"start\":10,\"end\":30,\"delta\":"
        "{\"core.cycles\":20,\"x.hits\":6},\"values\":{}}\n";
    std::string md = render(in, ReportFormat::Markdown);
    EXPECT_NE(md.find("2 interval records covering cycles 0..30"),
              std::string::npos);
    EXPECT_NE(md.find("Telescoping check: OK"), std::string::npos);

    // A broken series is reported, not silently accepted.
    in.intervalsJsonl =
        "{\"interval\":0,\"start\":0,\"end\":30,\"delta\":"
        "{\"x.hits\":7},\"values\":{}}\n";
    md = render(in, ReportFormat::Markdown);
    EXPECT_NE(md.find("Telescoping check: FAILED for 1 stat paths"),
              std::string::npos);
}

} // namespace
} // namespace psb
