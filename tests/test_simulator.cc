/**
 * @file
 * Tests for the simulator driver: configuration presets, warm-up
 * handling, result consistency, and the miss hook.
 */

#include <gtest/gtest.h>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace psb
{
namespace
{

TEST(SimConfigTest, PaperPresets)
{
    SimConfig base = makePaperConfig(PaperConfig::Base);
    EXPECT_EQ(base.prefetcher, PrefetcherKind::None);
    EXPECT_EQ(base.label(), "Base");

    SimConfig pcs = makePaperConfig(PaperConfig::PcStride);
    EXPECT_EQ(pcs.prefetcher, PrefetcherKind::PcStride);
    EXPECT_EQ(pcs.label(), "PCStride");

    SimConfig cap = makePaperConfig(PaperConfig::ConfAllocPriority);
    EXPECT_EQ(cap.prefetcher, PrefetcherKind::Psb);
    EXPECT_EQ(cap.psb.alloc, AllocPolicy::Confidence);
    EXPECT_EQ(cap.psb.sched, SchedPolicy::Priority);
    EXPECT_EQ(cap.label(), "ConfAlloc-Priority");

    SimConfig tmr = makePaperConfig(PaperConfig::TwoMissRR);
    EXPECT_EQ(tmr.psb.alloc, AllocPolicy::TwoMiss);
    EXPECT_EQ(tmr.psb.sched, SchedPolicy::RoundRobin);
    EXPECT_EQ(tmr.label(), "2Miss-RR");
}

TEST(SimConfigTest, BaselineMatchesPaperParameters)
{
    SimConfig cfg = makePaperConfig(PaperConfig::Base);
    EXPECT_EQ(cfg.core.fetchWidth, 8u);
    EXPECT_EQ(cfg.core.robEntries, 128u);
    EXPECT_EQ(cfg.core.lsqEntries, 64u);
    EXPECT_EQ(cfg.core.mispredictPenalty, CycleDelta{8});
    EXPECT_EQ(cfg.core.storeForwardLatency, CycleDelta{2});
    EXPECT_EQ(cfg.core.disambiguation, DisambiguationMode::Perfect);
    EXPECT_EQ(cfg.memory.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.memory.l1d.assoc, 4u);
    EXPECT_EQ(cfg.memory.l1d.blockBytes, 32u);
    EXPECT_EQ(cfg.memory.l1i.assoc, 2u);
    EXPECT_EQ(cfg.memory.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cfg.memory.l2.blockBytes, 64u);
    EXPECT_EQ(cfg.memory.l2Latency, CycleDelta{12});
    EXPECT_EQ(cfg.memory.memLatency, CycleDelta{120});
    EXPECT_EQ(cfg.memory.l1L2BusBytesPerCycle, 8u);
    EXPECT_EQ(cfg.memory.l2MemBusBytesPerCycle, 4u);
    // Stream buffers: 8 x 4 entries; tables: 256-entry 4-way stride,
    // 2K-entry differential Markov with 16-bit deltas.
    EXPECT_EQ(cfg.psb.buffers.numBuffers, 8u);
    EXPECT_EQ(cfg.psb.buffers.entriesPerBuffer, 4u);
    EXPECT_EQ(cfg.sfm.stride.entries, 256u);
    EXPECT_EQ(cfg.sfm.stride.assoc, 4u);
    EXPECT_EQ(cfg.sfm.stride.confidenceMax, 7u);
    EXPECT_EQ(cfg.sfm.markov.entries, 2048u);
    EXPECT_EQ(cfg.sfm.markov.deltaBits, 16u);
    EXPECT_EQ(cfg.psb.buffers.priorityMax, 12u);
    EXPECT_EQ(cfg.psb.buffers.priorityHitIncrement, 2u);
    EXPECT_EQ(cfg.psb.buffers.agingPeriod, 10u);
    EXPECT_EQ(cfg.psb.buffers.allocConfThreshold, 1u);
}

TEST(SimConfigTest, HarmonizePropagatesBlockSize)
{
    SimConfig cfg;
    cfg.memory.l1d.blockBytes = 64;
    cfg.harmonize();
    EXPECT_EQ(cfg.psb.buffers.blockBytes, 64u);
    EXPECT_EQ(cfg.sfm.stride.blockBytes, 64u);
    EXPECT_EQ(cfg.sfm.markov.blockBytes, 64u);
    EXPECT_EQ(cfg.stride.blockBytes, 64u);
}

TEST(SimulatorTest, RunsMeasuredRegionOfRequestedLength)
{
    auto w = makeWorkload("turb3d");
    SimConfig cfg = makePaperConfig(PaperConfig::Base);
    cfg.warmupInstructions = 20000;
    cfg.maxInstructions = 50000;
    Simulator sim(cfg, *w);
    SimResult r = sim.run();
    EXPECT_GE(r.core.instructions, 50000u);
    EXPECT_LE(r.core.instructions, 50100u);
    EXPECT_GT(r.core.cycles, 0u);
    EXPECT_NEAR(r.ipc,
                double(r.core.instructions) / double(r.core.cycles),
                1e-9);
}

TEST(SimulatorTest, ResultFieldsConsistent)
{
    auto w = makeWorkload("health");
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.warmupInstructions = 30000;
    cfg.maxInstructions = 60000;
    Simulator sim(cfg, *w);
    SimResult r = sim.run();

    EXPECT_EQ(r.core.l1dAccesses, r.core.l1dHits + r.core.l1dMisses);
    EXPECT_LE(r.core.l1dInFlight, r.core.l1dMisses);
    EXPECT_GE(r.l1dMissRate, 0.0);
    EXPECT_LE(r.l1dMissRate, 1.0);
    EXPECT_GE(r.prefetchAccuracy, 0.0);
    EXPECT_LE(r.prefetchAccuracy, 1.0);
    EXPECT_LE(r.prefetch.prefetchesUsed, r.prefetch.prefetchesIssued);
    EXPECT_GE(r.l1L2BusUtil, 0.0);
    EXPECT_LE(r.l1L2BusUtil, 1.05); // bookings may spill past the end
    EXPECT_GT(r.pctLoads, 0.0);
    EXPECT_LT(r.pctLoads, 100.0);
    EXPECT_GT(r.avgLoadLatency, 0.9);
}

TEST(SimulatorTest, WarmupExcludedFromStats)
{
    auto w1 = makeWorkload("turb3d");
    SimConfig with_warmup = makePaperConfig(PaperConfig::Base);
    with_warmup.warmupInstructions = 100000;
    with_warmup.maxInstructions = 50000;
    Simulator s1(with_warmup, *w1);
    SimResult warm = s1.run();

    auto w2 = makeWorkload("turb3d");
    SimConfig no_warmup = makePaperConfig(PaperConfig::Base);
    no_warmup.warmupInstructions = 0;
    no_warmup.maxInstructions = 50000;
    Simulator s2(no_warmup, *w2);
    SimResult cold = s2.run();

    // Both runs measure the same number of instructions; the warmed
    // one must not look wildly different (phase drift allowed).
    EXPECT_NEAR(warm.l1dMissRate, cold.l1dMissRate, 0.15);
    EXPECT_NEAR(double(warm.core.instructions),
                double(cold.core.instructions), 16.0);
}

TEST(SimulatorTest, MissHookSeesLoadMissStream)
{
    auto w = makeWorkload("health");
    SimConfig cfg = makePaperConfig(PaperConfig::Base);
    cfg.warmupInstructions = 5000;
    cfg.maxInstructions = 30000;
    Simulator sim(cfg, *w);
    uint64_t hook_calls = 0;
    sim.setMissHook([&](Addr pc, Addr addr) {
        EXPECT_GE(pc, Addr{0x00400000});
        EXPECT_GE(addr, Addr{0x10000000});
        ++hook_calls;
    });
    SimResult r = sim.run();
    EXPECT_GT(hook_calls, 0u);
    // Hook fires for load misses; store misses and forwards excluded,
    // so it cannot exceed total misses plus SB-serviced accesses.
    EXPECT_LE(hook_calls,
              r.core.l1dMisses + r.core.sbServiced + r.core.loads);
}

TEST(SimulatorTest, EveryPrefetcherKindConstructsAndRuns)
{
    for (PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::PcStride,
          PrefetcherKind::Psb, PrefetcherKind::Sequential,
          PrefetcherKind::NextLine, PrefetcherKind::MarkovDemand}) {
        auto w = makeWorkload("gs");
        SimConfig cfg;
        cfg.prefetcher = kind;
        cfg.warmupInstructions = 2000;
        cfg.maxInstructions = 10000;
        Simulator sim(cfg, *w);
        SimResult r = sim.run();
        EXPECT_GT(r.ipc, 0.0) << prefetcherKindName(kind);
    }
}

TEST(ReportTest, ContainsHeadlineNumbers)
{
    auto w = makeWorkload("turb3d");
    SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
    cfg.warmupInstructions = 5000;
    cfg.maxInstructions = 20000;
    Simulator sim(cfg, *w);
    SimResult r = sim.run();
    std::string report = formatReport("t", r);
    EXPECT_NE(report.find("IPC"), std::string::npos);
    EXPECT_NE(report.find("L1D miss rate"), std::string::npos);
    EXPECT_NE(report.find("bus util"), std::string::npos);
}

} // namespace
} // namespace psb
