#!/bin/sh
# End-to-end check for psb-report (see sim/run_report.hh).
#
#   check_report.sh PSB_SIM PSB_REPORT
#
# Runs one short simulation with stats + interval output, renders the
# consolidated report twice in both formats, and checks:
#
#  1. psb-report exits 0 and produces non-empty Markdown and HTML;
#  2. both formats are byte-identical across the two invocations (the
#     determinism contract the CI report job diffs);
#  3. the report actually carries the attribution and interval
#     sections (not vacuously deterministic);
#  4. a golden-drift section renders when a golden document is given
#     (here: the run's own stats, i.e. zero drift).
set -eu

PSB_SIM=$1
PSB_REPORT=$2

DIR=$(mktemp -d "${TMPDIR:-/tmp}/report_check.XXXXXX")
trap 'rm -rf "$DIR"' EXIT

"$PSB_SIM" --workload health --seed 1 --insts 20000 --warmup 5000 \
    --interval-stats 4997 --interval-out "$DIR/intervals.jsonl" \
    --stats-json "$DIR/stats.json" > /dev/null

for run in 1 2; do
    "$PSB_REPORT" --stats-json "$DIR/stats.json" \
        --intervals "$DIR/intervals.jsonl" \
        --golden "$DIR/stats.json" \
        --title "report smoke" \
        --md "$DIR/report$run.md" --html "$DIR/report$run.html"
done

test -s "$DIR/report1.md" || {
    echo "check_report.sh: empty Markdown report" >&2
    exit 1
}
test -s "$DIR/report1.html" || {
    echo "check_report.sh: empty HTML report" >&2
    exit 1
}
cmp "$DIR/report1.md" "$DIR/report2.md" || {
    echo "check_report.sh: Markdown reports are not byte-identical" >&2
    exit 1
}
cmp "$DIR/report1.html" "$DIR/report2.html" || {
    echo "check_report.sh: HTML reports are not byte-identical" >&2
    exit 1
}

for needle in "## Prefetch attribution" "## Interval series" \
    "Telescoping check: OK" \
    "0 stats added, 0 removed, 0 changed"; do
    grep -q "$needle" "$DIR/report1.md" || {
        echo "check_report.sh: Markdown missing '$needle'" >&2
        exit 1
    }
done
grep -q "<h2>Prefetch attribution</h2>" "$DIR/report1.html" || {
    echo "check_report.sh: HTML missing the attribution section" >&2
    exit 1
}
echo "check_report.sh: reports render deterministically"
