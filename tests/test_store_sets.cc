/**
 * @file
 * Tests for the learned store-set predictor (SSIT/LFST) and the
 * disambiguation-mode plumbing.
 */

#include <gtest/gtest.h>

#include "cpu/store_sets.hh"

namespace psb
{
namespace
{

constexpr Addr load_pc{0x400100};
constexpr Addr store_pc{0x400200};

TEST(StoreSetsTest, ModeNames)
{
    EXPECT_STREQ(disambiguationModeName(DisambiguationMode::None),
                 "NoDis");
    EXPECT_STREQ(disambiguationModeName(DisambiguationMode::Perfect),
                 "Dis");
    EXPECT_STREQ(disambiguationModeName(DisambiguationMode::Learned),
                 "LearnedSS");
}

TEST(StoreSetsTest, UntrainedOpsAreUnconstrained)
{
    StoreSetPredictor ssp;
    EXPECT_EQ(ssp.dispatch(load_pc, false, 1), 0u);
    EXPECT_EQ(ssp.dispatch(store_pc, true, 2), 0u);
}

TEST(StoreSetsTest, ViolationCreatesDependence)
{
    StoreSetPredictor ssp;
    ssp.recordViolation(load_pc, store_pc);
    EXPECT_EQ(ssp.violations(), 1u);

    // The store dispatches first and registers in the LFST.
    EXPECT_EQ(ssp.dispatch(store_pc, true, 10), 0u);
    // The load now waits for that exact store.
    EXPECT_EQ(ssp.dispatch(load_pc, false, 11), 10u);
}

TEST(StoreSetsTest, StoreIssueClearsLfst)
{
    StoreSetPredictor ssp;
    ssp.recordViolation(load_pc, store_pc);
    ssp.dispatch(store_pc, true, 10);
    ssp.storeIssued(store_pc, 10);
    EXPECT_EQ(ssp.dispatch(load_pc, false, 11), 0u);
}

TEST(StoreSetsTest, LaterStoreReplacesLfstEntry)
{
    StoreSetPredictor ssp;
    ssp.recordViolation(load_pc, store_pc);
    ssp.dispatch(store_pc, true, 10);
    ssp.dispatch(store_pc, true, 20);
    EXPECT_EQ(ssp.dispatch(load_pc, false, 21), 20u);
    // Clearing an outdated store does nothing.
    ssp.storeIssued(store_pc, 10);
    EXPECT_EQ(ssp.dispatch(load_pc, false, 22), 20u);
}

TEST(StoreSetsTest, ViolationMergesExistingSets)
{
    StoreSetPredictor ssp;
    Addr store2_pc{0x400300};
    ssp.recordViolation(load_pc, store_pc);
    ssp.recordViolation(load_pc, store2_pc);
    // Both stores now funnel through the same set: the load waits for
    // whichever dispatched last.
    ssp.dispatch(store_pc, true, 30);
    ssp.dispatch(store2_pc, true, 31);
    EXPECT_EQ(ssp.dispatch(load_pc, false, 32), 31u);
}

TEST(StoreSetsTest, PeriodicClearForgetsStaleSets)
{
    StoreSetPredictor ssp(64, 16, /*clear_interval=*/8);
    ssp.recordViolation(load_pc, store_pc);
    ssp.dispatch(store_pc, true, 1);
    // Push past the clear interval.
    for (uint64_t i = 0; i < 10; ++i)
        ssp.dispatch(Addr{0x600000 + 4 * i}, false, 100 + i);
    EXPECT_EQ(ssp.dispatch(load_pc, false, 200), 0u);
}

} // namespace
} // namespace psb
