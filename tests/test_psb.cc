/**
 * @file
 * Tests for the Predictor-Directed Stream Buffers themselves, driven
 * by a scripted mock predictor so every mechanism from paper §4 can be
 * checked in isolation: allocation filters, the single predictor port,
 * duplicate suppression, bus-gated prefetch issue, hit handling, the
 * priority counters and their aging.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/psb.hh"
#include "memory/hierarchy.hh"

namespace psb
{
namespace
{

constexpr unsigned lineBits = 5; // default 32-byte blocks

/** Fully scriptable predictor. */
class MockPredictor : public AddressPredictor
{
  public:
    void train(Addr pc, Addr addr) override
    {
        trained.push_back({pc, addr});
    }

    std::optional<BlockAddr>
    predictNext(StreamState &state) const override
    {
        ++predictCalls;
        if (chainStep == BlockDelta{})
            return std::nullopt;
        state.lastAddr += chainStep;
        return state.lastAddr;
    }

    StreamState
    allocateStream(Addr pc, Addr addr) const override
    {
        StreamState s;
        s.loadPc = pc;
        s.lastAddr = addr.toBlock(lineBits);
        s.stride = chainStep;
        s.confidence = conf.count(pc) ? conf.at(pc) : 0;
        return s;
    }

    uint32_t
    confidence(Addr pc) const override
    {
        return conf.count(pc) ? conf.at(pc) : 0;
    }

    bool
    twoMissFilterPass(Addr pc, Addr) const override
    {
        return twoMissPass.count(pc) ? twoMissPass.at(pc) : false;
    }

    BlockDelta chainStep{1}; ///< zero => predictor has no prediction
    std::map<Addr, uint32_t> conf;
    std::map<Addr, bool> twoMissPass;
    mutable uint64_t predictCalls = 0;
    std::vector<std::pair<Addr, Addr>> trained;
};

MemoryConfig
quietMemory()
{
    MemoryConfig cfg;
    cfg.tlbMissPenalty = CycleDelta{};
    return cfg;
}

class PsbTest : public ::testing::Test
{
  protected:
    PsbTest() : hier(quietMemory()) {}

    PredictorDirectedStreamBuffers
    make(AllocPolicy alloc, SchedPolicy sched)
    {
        PsbConfig cfg;
        cfg.alloc = alloc;
        cfg.sched = sched;
        return PredictorDirectedStreamBuffers(cfg, predictor, hier);
    }

    /** Run tick() for [from, to) cycles. */
    static void
    run(PredictorDirectedStreamBuffers &psb, Cycle from, Cycle to)
    {
        for (Cycle c = from; c < to; ++c)
            psb.tick(c);
    }

    MemoryHierarchy hier;
    MockPredictor predictor;
};

TEST_F(PsbTest, TwoMissFilterGatesAllocation)
{
    auto psb = make(AllocPolicy::TwoMiss, SchedPolicy::RoundRobin);
    predictor.twoMissPass[Addr{0x400010}] = false;
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    EXPECT_EQ(psb.stats().allocations, 0u);
    EXPECT_EQ(psb.stats().allocationsFiltered, 1u);

    predictor.twoMissPass[Addr{0x400010}] = true;
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{1});
    EXPECT_EQ(psb.stats().allocations, 1u);
    EXPECT_TRUE(psb.bufferFile().buffer(0).allocated());
}

TEST_F(PsbTest, ConfidenceThresholdGatesAllocation)
{
    auto psb = make(AllocPolicy::Confidence, SchedPolicy::Priority);
    predictor.conf[Addr{0x400010}] = 0; // below the threshold of 1
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    EXPECT_EQ(psb.stats().allocations, 0u);

    predictor.conf[Addr{0x400010}] = 1;
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{1});
    EXPECT_EQ(psb.stats().allocations, 1u);
    // The accuracy confidence is copied into the priority counter.
    EXPECT_EQ(psb.bufferFile().buffer(0).priority.value(), 1u);
}

TEST_F(PsbTest, ConfidenceAllocationMustBeatSomePriorityCounter)
{
    auto psb = make(AllocPolicy::Confidence, SchedPolicy::Priority);
    predictor.conf[Addr{0x400010}] = 7;
    // Fill all 8 buffers with priority-7 streams.
    for (unsigned i = 0; i < 8; ++i)
        psb.demandMiss(Addr{0x400010}, Addr(0x1000 + 0x100 * i),
                       Cycle(i));
    EXPECT_EQ(psb.stats().allocations, 8u);

    // Bump every buffer's priority above the candidate's confidence.
    for (unsigned b = 0; b < 8; ++b) {
        const_cast<StreamBuffer &>(psb.bufferFile().buffer(b))
            .priority.set(9);
    }
    predictor.conf[Addr{0x400020}] = 7;
    psb.demandMiss(Addr{0x400020}, Addr{0x9000}, Cycle{10});
    EXPECT_EQ(psb.stats().allocations, 8u); // rejected: 7 < 9

    // Lower one buffer: now the candidate wins that buffer.
    const_cast<StreamBuffer &>(psb.bufferFile().buffer(5))
        .priority.set(3);
    psb.demandMiss(Addr{0x400020}, Addr{0x9000}, Cycle{11});
    EXPECT_EQ(psb.stats().allocations, 9u);
    EXPECT_EQ(psb.bufferFile().buffer(5).state.loadPc, Addr{0x400020});
}

TEST_F(PsbTest, AlwaysPolicyAllocatesEveryMiss)
{
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    for (unsigned i = 0; i < 12; ++i)
        psb.demandMiss(Addr{0x400010}, Addr(0x1000 + 0x100 * i),
                       Cycle(i));
    EXPECT_EQ(psb.stats().allocations, 12u);
}

TEST_F(PsbTest, OnePredictionPerCycleSharedAcrossBuffers)
{
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    psb.demandMiss(Addr{0x400020}, Addr{0x8000}, Cycle{});
    uint64_t calls_before = predictor.predictCalls;
    psb.tick(Cycle{1});
    EXPECT_EQ(predictor.predictCalls, calls_before + 1);
}

TEST_F(PsbTest, PredictionsFillEntriesThenStop)
{
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    run(psb, Cycle{1}, Cycle{40});
    // 4 entries filled, then the buffer stops predicting.
    EXPECT_EQ(psb.stats().predictions, 4u);
    const StreamBuffer &buf = psb.bufferFile().buffer(0);
    for (const auto &e : buf.entries())
        EXPECT_TRUE(e.valid);
}

TEST_F(PsbTest, DuplicateSuppressionAcrossBuffers)
{
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    // Two streams whose chains collide: same start, same step.
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    psb.demandMiss(Addr{0x400020}, Addr{0x1000}, Cycle{});
    run(psb, Cycle{1}, Cycle{60});
    EXPECT_GT(psb.stats().duplicateSuppressed, 0u);
    // No block appears twice across all buffers.
    std::map<BlockAddr, int> seen;
    for (unsigned b = 0; b < psb.bufferFile().numBuffers(); ++b) {
        for (const auto &e : psb.bufferFile().buffer(b).entries()) {
            if (e.valid) {
                EXPECT_EQ(++seen[e.block], 1) << "dup block";
            }
        }
    }
}

TEST_F(PsbTest, PrefetchRequiresFreeBus)
{
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    psb.tick(Cycle{1}); // one prediction made
    // Occupy the bus with a demand miss.
    hier.missToL2(Addr{0x90000}, Cycle{2}, false);
    ASSERT_FALSE(hier.l1ToL2BusFree(Cycle{2}));
    uint64_t issued_before = psb.stats().prefetchesIssued;
    psb.tick(Cycle{2});
    EXPECT_EQ(psb.stats().prefetchesIssued, issued_before);
    // Once the bus frees, the prefetch goes out.
    Cycle c{3};
    while (!hier.l1ToL2BusFree(c))
        ++c;
    psb.tick(c);
    EXPECT_EQ(psb.stats().prefetchesIssued, issued_before + 1);
}

TEST_F(PsbTest, LookupHitFreesEntryAndRaisesPriority)
{
    auto psb = make(AllocPolicy::Confidence, SchedPolicy::Priority);
    predictor.conf[Addr{0x400010}] = 2;
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    run(psb, Cycle{1}, Cycle{50}); // predict + prefetch

    const StreamBuffer &buf = psb.bufferFile().buffer(0);
    uint32_t pri_before = buf.priority.value();
    ASSERT_EQ(pri_before, 2u);

    // The first predicted block is 0x1020 (start + 32).
    PrefetchLookup hit = psb.lookup(Addr{0x1024}, Cycle{1000});
    EXPECT_TRUE(hit.hit);
    EXPECT_FALSE(hit.dataPending); // long past the fill
    EXPECT_EQ(buf.priority.value(), pri_before + 2);
    EXPECT_EQ(psb.stats().hits, 1u);
    EXPECT_EQ(psb.stats().prefetchesUsed, 1u);
    // Entry freed: a repeat lookup misses.
    EXPECT_FALSE(psb.lookup(Addr{0x1024}, Cycle{1001}).hit);
}

TEST_F(PsbTest, LookupHitWithDataPending)
{
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    run(psb, Cycle{1}, Cycle{4}); // prediction + prefetch just issued
    PrefetchLookup hit = psb.lookup(Addr{0x1020}, Cycle{4});
    ASSERT_TRUE(hit.hit);
    EXPECT_TRUE(hit.dataPending);
    EXPECT_GT(hit.ready, Cycle{4});
    EXPECT_EQ(psb.stats().hitsPending, 1u);
}

TEST_F(PsbTest, LateTagHitReconciledOnDemandFill)
{
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    hier.missToL2(Addr{0x90000}, Cycle{}, false); // keep the bus busy
    psb.tick(Cycle{1}); // prediction made, prefetch blocked
    ASSERT_EQ(psb.stats().prefetchesIssued, 0u);

    // A lookup of the predicted-but-unissued block is not a hit, and
    // it must NOT consume the entry (the access may be an MSHR-full
    // retry that will come back).
    PrefetchLookup lkp = psb.lookup(Addr{0x1020}, Cycle{2});
    EXPECT_FALSE(lkp.hit);
    EXPECT_EQ(psb.stats().lateTagHits, 0u);
    EXPECT_EQ(psb.bufferFile().buffer(0).findEntry(
                  Addr{0x1020}.toBlock(lineBits)),
              0);

    // Once the demand fill actually proceeds, demandMiss() reconciles:
    // the entry is released, counted as a late tag hit, and no
    // allocation request is charged (the stream is tracking fine).
    uint64_t requests_before = psb.stats().allocationRequests;
    psb.demandMiss(Addr{0x400010}, Addr{0x1020}, Cycle{3});
    EXPECT_EQ(psb.stats().lateTagHits, 1u);
    EXPECT_EQ(psb.stats().allocationRequests, requests_before);
    EXPECT_EQ(psb.bufferFile().buffer(0).findEntry(
                  Addr{0x1020}.toBlock(lineBits)),
              -1);
}

TEST_F(PsbTest, AgingDecrementsPriorityCounters)
{
    auto psb = make(AllocPolicy::Confidence, SchedPolicy::Priority);
    predictor.conf[Addr{0x400010}] = 7;
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    ASSERT_EQ(psb.bufferFile().buffer(0).priority.value(), 7u);

    // The aging period is 10 allocation requests; send unallocatable
    // requests (confidence 0 PC) to age the counters.
    for (unsigned i = 0; i < 10; ++i)
        psb.demandMiss(Addr{0x400099}, Addr{0x5000}, Cycle(i));
    EXPECT_EQ(psb.bufferFile().buffer(0).priority.value(), 6u);
    for (unsigned i = 0; i < 20; ++i)
        psb.demandMiss(Addr{0x400099}, Addr{0x5000}, Cycle(i));
    EXPECT_EQ(psb.bufferFile().buffer(0).priority.value(), 4u);
}

TEST_F(PsbTest, TrainingForwardedOnlyForRealMisses)
{
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    psb.trainLoad(Addr{0x400010}, Addr{0x1000}, /*miss=*/true,
                  /*fwd=*/false);
    psb.trainLoad(Addr{0x400010}, Addr{0x2000}, /*miss=*/false,
                  /*fwd=*/false);
    psb.trainLoad(Addr{0x400010}, Addr{0x3000}, /*miss=*/true,
                  /*fwd=*/true);
    ASSERT_EQ(predictor.trained.size(), 1u);
    EXPECT_EQ(predictor.trained[0].second, Addr{0x1000});
}

TEST_F(PsbTest, NoPredictionFromEmptyPredictor)
{
    predictor.chainStep = BlockDelta{}; // predictor has nothing to say
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    run(psb, Cycle{1}, Cycle{20});
    EXPECT_EQ(psb.stats().predictions, 0u);
    EXPECT_EQ(psb.stats().prefetchesIssued, 0u);
}

TEST_F(PsbTest, ReallocationStealsLruHitBuffer)
{
    auto psb = make(AllocPolicy::TwoMiss, SchedPolicy::RoundRobin);
    for (unsigned i = 0; i < 9; ++i) {
        Addr pc(0x400010 + 0x10 * i);
        predictor.twoMissPass[pc] = true;
        psb.demandMiss(pc, Addr(0x1000 + 0x100 * i), Cycle(i));
    }
    // 9 allocations into 8 buffers: buffer 0 (never hit, oldest) was
    // stolen by the ninth stream.
    EXPECT_EQ(psb.stats().allocations, 9u);
    EXPECT_EQ(psb.bufferFile().buffer(0).state.loadPc, Addr{0x400090});
}

TEST_F(PsbTest, StatsResetKeepsStreams)
{
    auto psb = make(AllocPolicy::Always, SchedPolicy::RoundRobin);
    psb.demandMiss(Addr{0x400010}, Addr{0x1000}, Cycle{});
    run(psb, Cycle{1}, Cycle{20});
    psb.resetStats();
    EXPECT_EQ(psb.stats().predictions, 0u);
    EXPECT_TRUE(psb.bufferFile().buffer(0).allocated());
}

TEST_F(PsbTest, AccuracyFormula)
{
    PrefetcherStats s;
    s.prefetchesIssued = 8;
    s.prefetchesUsed = 6;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.75);
    PrefetcherStats zero;
    EXPECT_DOUBLE_EQ(zero.accuracy(), 0.0);
}

TEST_F(PsbTest, PolicyNames)
{
    EXPECT_STREQ(allocPolicyName(AllocPolicy::TwoMiss), "2Miss");
    EXPECT_STREQ(allocPolicyName(AllocPolicy::Confidence), "ConfAlloc");
    EXPECT_STREQ(allocPolicyName(AllocPolicy::Always), "Always");
}

} // namespace
} // namespace psb
