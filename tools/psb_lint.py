#!/usr/bin/env python3
"""Project lint for the PSB tree, run as the `psb_lint` ctest.

Fast, purely textual pre-check: no compile database, no parser, just
regex scans — a few milliseconds over the whole tree. It implements
shallow versions of the shared rule catalog (tools/psb_rules.py);
tools/psb_analyze.py implements the deep, compile-aware versions.
Findings print the shared rule IDs, and both tools honor the same
inline suppression:

    // psb-analyze: allow(R2)     (same line or the line above)

Rules covered here, shallowly:

R1 (strong-type-escape): public headers and .cc files must not take
   raw uint64_t address/cycle parameters. Those quantities have strong
   types (util/strong_types.hh); a bare integer parameter named like
   an address or a cycle is exactly the unit-mixing bug the types
   exist to stop.

R2 (stats-completeness): every component header that declares
   resetStats() must also expose registerStats(StatsRegistry&, ...) —
   directly or by deriving from Prefetcher, whose base class provides
   it. (Counters registered cross-TU by an owning component are this
   check's blind spot: suppress with allow(R2) and let psb_analyze
   verify the registration for real.)

R3 (determinism): simulation results must be a pure function of config
   and seed. rand()/time()/random_device are banned in src/, and so
   are pointer-keyed ordered containers, whose iteration order depends
   on the allocator and can leak into stats.

R5 (output-discipline): raw printf/puts/std::cout/std::cerr are banned
   in src/ outside util/logging and util/trace. Components report
   through warn()/inform()/fatal() or the gated PSB_TRACE layer;
   ad-hoc prints corrupt machine-parsed stdout (stats JSON, report
   tables).

R8 (lock-discipline): bare std::mutex/std::condition_variable/
   std::lock_guard etc. are banned in src/ outside
   util/thread_annotations.hh. The psb::Mutex/MutexLock/CondVar
   wrappers there carry the capability attributes that let clang
   -Wthread-safety prove the locking; a raw primitive is invisible to
   the analysis (and to psb_analyze's deep R8 coverage audit).

R10 (hot-path-alloc): PSB_HOT_PATH (util/hot_path.hh) may only
    appear on function declarations in src/ — it roots psb_analyze's
    hot-path call graph, so a marker in tests/ or tools/ (outside the
    analyzer's own fixture corpus under tests/analyze/) or on a
    non-function line is a placement error. A bare `new` or
    make_unique in a src/ file that contains a PSB_HOT_PATH marker is
    flagged as a hint: only the full analyzer can prove whether the
    allocation is reachable from a hot root, so run psb_analyze and
    either move the allocation off the per-cycle path or suppress
    with allow(R10) at the sanctioned site.

Usage: psb_lint.py [repo_root]
Exit codes (shared): 0 clean, 1 findings, 2 environment error.
"""

import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from psb_rules import (  # noqa: E402
    DOMAIN_PARAM_NAMES, EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS,
    format_finding)

#: Parameter names that mark a raw integer as an address/cycle
#: quantity (name list shared with psb_analyze via psb_rules).
DOMAIN_PARAM = re.compile(
    r"\buint64_t\s+(" + "|".join(DOMAIN_PARAM_NAMES) + r")\w*\b")

#: Nondeterminism sources banned from simulation code.
BANNED_CALLS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::time\b|\btime\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "wall-clock time()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bstd::chrono::(system|steady|high_resolution)_clock"),
     "std::chrono clocks"),
]

#: Raw output calls banned outside util/logging and util/trace. The
#: lookbehind keeps fprintf/vfprintf/snprintf/fputs legal: targeted
#: stream writes (report tables, stats files) are fine, the ban is on
#: stdout/stderr spew that bypasses the logging/tracing layers.
RAW_OUTPUT = [
    (re.compile(r"(?<![\w:>.])(?:std::)?printf\s*\("), "printf()"),
    (re.compile(r"(?<![\w:>.])(?:std::)?puts\s*\("), "puts()"),
    (re.compile(r"\bstd::cout\b"), "std::cout"),
    (re.compile(r"\bstd::cerr\b"), "std::cerr"),
]

#: Files allowed to talk to stdout/stderr directly.
RAW_OUTPUT_EXEMPT = re.compile(r"^src/util/(logging|trace)\.(hh|cc)$")

#: map/set keyed by a pointer type: iteration order is allocator noise.
POINTER_KEYED = re.compile(
    r"\b(?:std::)?(?:unordered_)?(?:map|set)\s*<\s*[\w:]+(?:\s*<[^<>]*>)?"
    r"\s*\*"
)

#: Raw synchronization primitives banned outside the annotated
#: wrappers of util/thread_annotations.hh (shallow R8).
RAW_SYNC = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock)\b")

#: The one file allowed to touch the raw primitives: it wraps them.
RAW_SYNC_EXEMPT = re.compile(r"^src/util/thread_annotations\.hh$")

#: The hot-path root annotation (shallow R10; psb_analyze walks the
#: call graph it roots).
HOT_MARKER = re.compile(r"\bPSB_HOT_PATH\b")

#: The file that defines the marker.
HOT_MARKER_EXEMPT = re.compile(r"^src/util/hot_path\.hh$")

#: Allocation tokens that warrant running the full analyzer when they
#: share a file with a PSB_HOT_PATH marker.
BARE_ALLOC = re.compile(r"\bnew\s+[A-Za-z_(]|\bmake_unique\s*<")

#: Shared inline suppression marker (same syntax psb_analyze uses).
SUPPRESS = re.compile(
    r"//\s*psb-analyze:\s*allow\(\s*([A-Z0-9,\s]+?)\s*\)")


def suppressions(text):
    """line number -> set of rule ids allowed on it and the next line."""
    out = {}
    for i, line in enumerate(text.splitlines(), 1):
        m = SUPPRESS.search(line)
        if m:
            out[i] = {r.strip() for r in m.group(1).split(",")}
    return out


def allowed(sup, line, rule):
    return rule in sup.get(line, ()) or rule in sup.get(line - 1, ())


def strip_comments(text):
    """Remove // and /* */ comments, preserving line structure."""
    text = re.sub(r"//[^\n]*", "", text)

    def blank_lines(m):
        return "\n" * m.group(0).count("\n")

    return re.sub(r"/\*.*?\*/", blank_lines, text, flags=re.DOTALL)


def check_domain_params(path, text, sup, findings):
    # strong_types.hh is the byte/block/cycle domain boundary: its
    # constructors legitimately take the raw integers they wrap.
    if path.name == "strong_types.hh":
        return
    for i, line in enumerate(strip_comments(text).splitlines(), 1):
        m = DOMAIN_PARAM.search(line)
        # Parameter context only: an opening paren before the match, a
        # net-unbalanced `)` (tail of a wrapped parameter list), or a
        # trailing comma (middle of one). Locals with parenthesized
        # initializers (`uint64_t x = f(y);`) balance their parens and
        # struct counters (`uint64_t cycles = 0;`) have none, so
        # neither trips this.
        if m and ("(" in line[:m.start()]
                  or line.count(")") > line.count("(")
                  or line.rstrip().endswith(",")) \
                and not allowed(sup, i, "R1"):
            findings.append(format_finding(
                path, i, "R1",
                f"raw uint64_t parameter '{m.group(1)}...'; use the "
                f"strong domain types (ByteAddr/BlockAddr/Cycle...)"))


def check_stats_registration(path, text, sup, findings):
    stripped = strip_comments(text)
    idx = stripped.find("resetStats")
    if idx == -1:
        return
    if "registerStats" in stripped:
        return
    if re.search(r":\s*public\s+Prefetcher\b", stripped):
        return  # Prefetcher base provides registerStats()
    line = stripped.count("\n", 0, idx) + 1
    if allowed(sup, line, "R2"):
        return
    findings.append(format_finding(
        path, line, "R2",
        "declares resetStats() but neither declares registerStats() "
        "nor derives from Prefetcher; its stats would be missing "
        "from the StatsRegistry export (if an owning component "
        "registers them, suppress with allow(R2) — psb_analyze "
        "verifies the cross-TU registration)"))


def check_raw_output(path, text, sup, findings):
    if RAW_OUTPUT_EXEMPT.match(str(path)):
        return
    stripped = strip_comments(text)
    for i, line in enumerate(stripped.splitlines(), 1):
        for pattern, what in RAW_OUTPUT:
            if pattern.search(line) and not allowed(sup, i, "R5"):
                findings.append(format_finding(
                    path, i, "R5",
                    f"raw {what} in src/; use warn()/inform()/fatal() "
                    f"(util/logging) or PSB_TRACE (util/trace) "
                    f"instead"))


def check_lock_discipline(path, text, sup, findings):
    if RAW_SYNC_EXEMPT.match(str(path)):
        return
    stripped = strip_comments(text)
    for i, line in enumerate(stripped.splitlines(), 1):
        m = RAW_SYNC.search(line)
        if m and not allowed(sup, i, "R8"):
            findings.append(format_finding(
                path, i, "R8",
                f"raw std::{m.group(1)} in src/; use psb::Mutex/"
                f"MutexLock/CondVar (util/thread_annotations.hh) so "
                f"clang -Wthread-safety can prove the locking"))


def check_determinism(path, text, sup, findings):
    stripped = strip_comments(text)
    for i, line in enumerate(stripped.splitlines(), 1):
        for pattern, what in BANNED_CALLS:
            if pattern.search(line) and not allowed(sup, i, "R3"):
                findings.append(format_finding(
                    path, i, "R3",
                    f"{what} is banned in simulation code (results "
                    f"must be a function of config + seed)"))
        if POINTER_KEYED.search(line) and not allowed(sup, i, "R3"):
            findings.append(format_finding(
                path, i, "R3",
                "pointer-keyed container; iteration order is "
                "allocator-dependent and can leak into stats"))


def check_hot_path_marker(path, text, sup, findings):
    """Shallow R10: marker placement plus the run-the-analyzer hint."""
    if HOT_MARKER_EXEMPT.match(str(path)):
        return
    stripped = strip_comments(text)
    lines = stripped.splitlines()
    has_marker = False
    for i, line in enumerate(lines, 1):
        m = HOT_MARKER.search(line)
        if not m:
            continue
        has_marker = True
        # A function declaration opens a parameter list within a
        # couple of lines of the marker (return type and name may
        # wrap). Anything else — a variable, a stray token — is a
        # placement error: it would not root the call graph.
        window = " ".join(lines[i - 1:i + 2])
        if "(" not in window[m.start():] and \
                not allowed(sup, i, "R10"):
            findings.append(format_finding(
                path, i, "R10",
                "PSB_HOT_PATH must annotate a function declaration "
                "(it roots psb_analyze's hot-path call graph)"))
    if not has_marker:
        return
    for i, line in enumerate(lines, 1):
        if BARE_ALLOC.search(line) and not allowed(sup, i, "R10"):
            findings.append(format_finding(
                path, i, "R10",
                "allocation token in a PSB_HOT_PATH-annotated file; "
                "run tools/psb_analyze.py to prove it is not "
                "reachable from a hot root, then move it off the "
                "per-cycle path or allow(R10) the sanctioned site"))


def check_hot_marker_outside_src(path, text, sup, findings):
    """Shallow R10: the marker is a src/ annotation only."""
    stripped = strip_comments(text)
    for i, line in enumerate(stripped.splitlines(), 1):
        if HOT_MARKER.search(line) and not allowed(sup, i, "R10"):
            findings.append(format_finding(
                path, i, "R10",
                "PSB_HOT_PATH outside src/; the hot-path annotation "
                "belongs on the simulator's per-cycle roots, not in "
                "tests or tools"))


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    src = root / "src"
    if not src.is_dir():
        print(f"psb_lint: no src/ under {root}", file=sys.stderr)
        return EXIT_ERROR

    findings = []
    for path in sorted(src.rglob("*.hh")):
        text = path.read_text()
        rel = path.relative_to(root)
        sup = suppressions(text)
        check_domain_params(rel, text, sup, findings)
        check_stats_registration(rel, text, sup, findings)
        check_determinism(rel, text, sup, findings)
        check_raw_output(rel, text, sup, findings)
        check_lock_discipline(rel, text, sup, findings)
        check_hot_path_marker(rel, text, sup, findings)
    for path in sorted(src.rglob("*.cc")):
        rel = path.relative_to(root)
        text = path.read_text()
        sup = suppressions(text)
        check_domain_params(rel, text, sup, findings)
        check_determinism(rel, text, sup, findings)
        check_raw_output(rel, text, sup, findings)
        check_lock_discipline(rel, text, sup, findings)
        check_hot_path_marker(rel, text, sup, findings)

    # The marker roots src/'s call graph only; tests/analyze/ is the
    # analyzer's own fixture corpus and deliberately exercises it.
    for sub in ("tests", "tools"):
        d = root / sub
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*.hh")) + sorted(d.rglob("*.cc")):
            rel = path.relative_to(root)
            if str(rel).startswith("tests/analyze/"):
                continue
            text = path.read_text()
            sup = suppressions(text)
            check_hot_marker_outside_src(rel, text, sup, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"psb_lint: {len(findings)} finding(s)", file=sys.stderr)
        return EXIT_FINDINGS
    print("psb_lint: clean")
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
