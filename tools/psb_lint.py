#!/usr/bin/env python3
"""Project lint for the PSB tree, run as the `psb_lint` ctest.

Three classes of checks, all cheap textual scans:

1. Domain discipline: public headers under src/ must not take raw
   uint64_t address/cycle parameters. Those quantities have strong
   types (util/strong_types.hh: ByteAddr/Addr, BlockAddr, BlockDelta,
   Cycle, CycleDelta); a bare integer parameter named like an address
   or a cycle is exactly the unit-mixing bug the types exist to stop.

2. Stats coverage: every component header that declares resetStats()
   must also expose registerStats(StatsRegistry&, ...) — directly or by
   deriving from Prefetcher, whose base class provides it. A component
   with resettable stats that never registers them silently drops out
   of the golden-stats JSON.

3. Determinism: simulation results must be a pure function of config
   and seed. rand()/time()/random_device are banned in src/, and so are
   pointer-keyed ordered containers, whose iteration order depends on
   the allocator and can leak into stats.

4. Output discipline: raw printf/puts/std::cout/std::cerr are banned in
   src/ outside util/logging and util/trace. Components report through
   warn()/inform()/fatal() (rate-limitable, prefixed) or the gated
   PSB_TRACE layer; ad-hoc prints bypass both and corrupt
   machine-parsed stdout (stats JSON, report tables).

Usage: psb_lint.py [repo_root]   (exit 0 = clean, 1 = findings)
"""

import pathlib
import re
import sys

#: Parameter names that mark a raw integer as an address/cycle quantity.
DOMAIN_PARAM = re.compile(
    r"\buint64_t\s+"
    r"(addr|address|pc|block|cycle|now|when|ready|target|deadline)\w*\b"
)

#: Nondeterminism sources banned from simulation code.
BANNED_CALLS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::time\b|\btime\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "wall-clock time()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bstd::chrono::(system|steady|high_resolution)_clock"),
     "std::chrono clocks"),
]

#: Raw output calls banned outside util/logging and util/trace. The
#: lookbehind keeps fprintf/vfprintf/snprintf/fputs legal: targeted
#: stream writes (report tables, stats files) are fine, the ban is on
#: stdout/stderr spew that bypasses the logging/tracing layers.
RAW_OUTPUT = [
    (re.compile(r"(?<![\w:>.])(?:std::)?printf\s*\("), "printf()"),
    (re.compile(r"(?<![\w:>.])(?:std::)?puts\s*\("), "puts()"),
    (re.compile(r"\bstd::cout\b"), "std::cout"),
    (re.compile(r"\bstd::cerr\b"), "std::cerr"),
]

#: Files allowed to talk to stdout/stderr directly.
RAW_OUTPUT_EXEMPT = re.compile(r"^src/util/(logging|trace)\.(hh|cc)$")

#: map/set keyed by a pointer type: iteration order is allocator noise.
POINTER_KEYED = re.compile(
    r"\b(?:std::)?(?:unordered_)?(?:map|set)\s*<\s*[\w:]+(?:\s*<[^<>]*>)?"
    r"\s*\*"
)


def strip_comments(text):
    """Remove // and /* */ comments, preserving line structure."""
    text = re.sub(r"//[^\n]*", "", text)

    def blank_lines(m):
        return "\n" * m.group(0).count("\n")

    return re.sub(r"/\*.*?\*/", blank_lines, text, flags=re.DOTALL)


def check_domain_params(path, text, findings):
    # strong_types.hh is the byte/block/cycle domain boundary: its
    # constructors legitimately take the raw integers they wrap.
    if path.name == "strong_types.hh":
        return
    for i, line in enumerate(strip_comments(text).splitlines(), 1):
        m = DOMAIN_PARAM.search(line)
        # Parameter context only (paren on the line, or a wrapped
        # parameter continuation). Struct counters like
        # `uint64_t cycles = 0;` are aggregate statistics, not domain
        # quantities.
        if m and ("(" in line[:m.start()] or ")" in line[m.end():]
                  or line.rstrip().endswith(",")):
            findings.append(
                f"{path}:{i}: raw uint64_t parameter '{m.group(1)}...' "
                f"in a public header; use the strong domain types "
                f"(ByteAddr/BlockAddr/Cycle...)")


def check_stats_registration(path, text, findings):
    stripped = strip_comments(text)
    if "resetStats" not in stripped:
        return
    if "registerStats" in stripped:
        return
    if re.search(r":\s*public\s+Prefetcher\b", stripped):
        return  # Prefetcher base provides registerStats()
    findings.append(
        f"{path}: declares resetStats() but neither declares "
        f"registerStats() nor derives from Prefetcher; its stats "
        f"would be missing from the StatsRegistry export")


def check_raw_output(path, text, findings):
    if RAW_OUTPUT_EXEMPT.match(str(path)):
        return
    stripped = strip_comments(text)
    for i, line in enumerate(stripped.splitlines(), 1):
        for pattern, what in RAW_OUTPUT:
            if pattern.search(line):
                findings.append(
                    f"{path}:{i}: raw {what} in src/; use "
                    f"warn()/inform()/fatal() (util/logging) or "
                    f"PSB_TRACE (util/trace) instead")


def check_determinism(path, text, findings):
    stripped = strip_comments(text)
    for i, line in enumerate(stripped.splitlines(), 1):
        for pattern, what in BANNED_CALLS:
            if pattern.search(line):
                findings.append(
                    f"{path}:{i}: {what} is banned in simulation code "
                    f"(results must be a function of config + seed)")
        if POINTER_KEYED.search(line):
            findings.append(
                f"{path}:{i}: pointer-keyed container; iteration order "
                f"is allocator-dependent and can leak into stats")


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    src = root / "src"
    if not src.is_dir():
        print(f"psb_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = []
    for path in sorted(src.rglob("*.hh")):
        text = path.read_text()
        rel = path.relative_to(root)
        check_domain_params(rel, text, findings)
        check_stats_registration(rel, text, findings)
        check_determinism(rel, text, findings)
        check_raw_output(rel, text, findings)
    for path in sorted(src.rglob("*.cc")):
        rel = path.relative_to(root)
        text = path.read_text()
        check_determinism(rel, text, findings)
        check_raw_output(rel, text, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"psb_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("psb_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
