/**
 * @file
 * stats-diff — compare two stats JSON dumps produced by
 * `psb-sim --stats-json` (or Simulator::statsJson()).
 *
 * Usage:
 *   stats-diff GOLDEN NEW [options]
 *     --abs-tol X         global absolute tolerance      (default 0)
 *     --rel-tol X         global relative tolerance      (default 0)
 *     --tol PREFIX=REL[:ABS]
 *                         per-stat tolerance for every path starting
 *                         with PREFIX; the longest matching prefix
 *                         wins over the global tolerances. May be
 *                         given multiple times.
 *     --ignore PREFIX     skip every path starting with PREFIX
 *                         (may be given multiple times)
 *     --quiet             print only the summary line
 *     --help
 *
 * A stat passes when its two spellings are byte-identical, or when
 * |golden - new| <= abs + rel * max(|golden|, |new|). Missing or
 * extra keys always fail (unless ignored). Exit status: 0 = match,
 * 1 = differences found, 2 = usage or parse error.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/stats_json.hh"

namespace
{

using psb::ParsedStat;

struct Tolerance
{
    double rel = 0.0;
    double abs = 0.0;
};

struct PrefixTolerance
{
    std::string prefix;
    Tolerance tol;
};

struct Options
{
    std::string goldenPath;
    std::string newPath;
    Tolerance global;
    std::vector<PrefixTolerance> perPrefix;
    std::vector<std::string> ignores;
    bool quiet = false;
};

[[noreturn]] void
usage(int code)
{
    std::fputs(
        "stats-diff: compare two psb-sim stats JSON dumps\n"
        "  stats-diff GOLDEN NEW [--abs-tol X] [--rel-tol X]\n"
        "             [--tol PREFIX=REL[:ABS]]... [--ignore PREFIX]...\n"
        "             [--quiet]\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

double
parseDouble(const std::string &text, const char *what)
{
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || v < 0.0) {
        std::fprintf(stderr, "stats-diff: bad %s '%s'\n", what,
                     text.c_str());
        std::exit(2);
    }
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "stats-diff: %s needs a value\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(0);
        } else if (flag == "--abs-tol") {
            opts.global.abs = parseDouble(value(), "--abs-tol");
        } else if (flag == "--rel-tol") {
            opts.global.rel = parseDouble(value(), "--rel-tol");
        } else if (flag == "--tol") {
            std::string spec = value();
            size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0)
                usage(2);
            PrefixTolerance pt;
            pt.prefix = spec.substr(0, eq);
            std::string nums = spec.substr(eq + 1);
            size_t colon = nums.find(':');
            pt.tol.rel = parseDouble(nums.substr(0, colon), "--tol rel");
            if (colon != std::string::npos)
                pt.tol.abs =
                    parseDouble(nums.substr(colon + 1), "--tol abs");
            opts.perPrefix.push_back(std::move(pt));
        } else if (flag == "--ignore") {
            opts.ignores.push_back(value());
        } else if (flag == "--quiet") {
            opts.quiet = true;
        } else if (!flag.empty() && flag[0] == '-') {
            std::fprintf(stderr, "stats-diff: unknown flag '%s'\n",
                         flag.c_str());
            usage(2);
        } else {
            positional.push_back(flag);
        }
    }
    if (positional.size() != 2)
        usage(2);
    opts.goldenPath = positional[0];
    opts.newPath = positional[1];
    return opts;
}

bool
loadStats(const std::string &path,
          std::map<std::string, ParsedStat> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "stats-diff: cannot read '%s'\n",
                     path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!psb::parseStatsJson(text.str(), out, error)) {
        std::fprintf(stderr, "stats-diff: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    return true;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
ignored(const Options &opts, const std::string &path)
{
    for (const auto &prefix : opts.ignores) {
        if (startsWith(path, prefix))
            return true;
    }
    return false;
}

/** The longest matching --tol prefix wins; else the global pair. */
Tolerance
toleranceFor(const Options &opts, const std::string &path)
{
    const PrefixTolerance *best = nullptr;
    for (const auto &pt : opts.perPrefix) {
        if (!startsWith(path, pt.prefix))
            continue;
        if (!best || pt.prefix.size() > best->prefix.size())
            best = &pt;
    }
    return best ? best->tol : opts.global;
}

bool
withinTolerance(double golden, double fresh, const Tolerance &tol)
{
    double diff = std::fabs(golden - fresh);
    double scale = std::fmax(std::fabs(golden), std::fabs(fresh));
    return diff <= tol.abs + tol.rel * scale;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);

    std::map<std::string, ParsedStat> golden;
    std::map<std::string, ParsedStat> fresh;
    if (!loadStats(opts.goldenPath, golden) ||
        !loadStats(opts.newPath, fresh))
        return 2;

    unsigned compared = 0;
    unsigned failures = 0;
    auto report = [&](const char *fmt, auto... args) {
        ++failures;
        if (!opts.quiet) {
            std::printf(fmt, args...);
            std::printf("\n");
        }
    };

    for (const auto &[path, gstat] : golden) {
        if (ignored(opts, path))
            continue;
        auto it = fresh.find(path);
        if (it == fresh.end()) {
            report("MISSING  %-40s golden=%s", path.c_str(),
                   gstat.raw.c_str());
            continue;
        }
        ++compared;
        const ParsedStat &nstat = it->second;
        if (gstat.raw == nstat.raw)
            continue;
        Tolerance tol = toleranceFor(opts, path);
        if (withinTolerance(gstat.value, nstat.value, tol))
            continue;
        double diff = nstat.value - gstat.value;
        double rel = gstat.value != 0.0
                         ? diff / std::fabs(gstat.value)
                         : std::numeric_limits<double>::infinity();
        report("DIFF     %-40s golden=%s new=%s delta=%+g rel=%+.3f%%",
               path.c_str(), gstat.raw.c_str(), nstat.raw.c_str(),
               diff, 100.0 * rel);
    }

    for (const auto &[path, nstat] : fresh) {
        if (ignored(opts, path))
            continue;
        if (golden.find(path) == golden.end())
            report("EXTRA    %-40s new=%s", path.c_str(),
                   nstat.raw.c_str());
    }

    std::printf("stats-diff: %u compared, %u failed (%s vs %s)\n",
                compared, failures, opts.goldenPath.c_str(),
                opts.newPath.c_str());
    return failures == 0 ? 0 : 1;
}
