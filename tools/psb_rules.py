"""Shared rule catalog for the PSB static-analysis tooling.

Both checkers — tools/psb_lint.py (fast textual pre-check, no compile
database needed) and tools/psb_analyze.py (compile-aware AST-level
check) — report findings under the rule IDs defined here, and exit
with the shared exit codes, so CI and humans see one consistent
vocabulary:

    R1  strong-type-escape   address/cycle values leaving the strong
                             type domain (raw uint64_t domain params,
                             .raw() arithmetic re-entering a domain
                             type)
    R2  stats-completeness   counters that are bumped but never
                             registered with the StatsRegistry
    R3  determinism          nondeterminism sources: banned clock/rand
                             calls, pointer-keyed containers, unordered
                             iteration leaking into observable output
    R4  trace-purity         PSB_TRACE argument expressions with side
                             effects (behavior would differ with
                             tracing on/off)
    R5  output-discipline    raw printf/std::cout in component code,
                             bypassing util/logging and util/trace
    R6  sweep-shared-state   mutable state at namespace/static scope
                             reachable from sweep job paths without
                             synchronization (the sweep engine's
                             shared-nothing contract)
    R7  nondeterminism-taint dataflow: values derived from unordered
                             iteration order, pointer casts, clocks,
                             or uninitialized reads must not reach a
                             stats/JSON/golden sink without passing a
                             sort/normalize barrier
    R8  lock-discipline      mutable state shared across sweep worker
                             threads must carry PSB_GUARDED_BY /
                             PSB_REQUIRES annotations
                             (util/thread_annotations.hh) so clang
                             -Wthread-safety can prove the locking
    R9  interproc-escape     .raw() values that round-trip through
                             helpers or locals back into address or
                             cycle arithmetic — the strong-type escape
                             R1 cannot see across statements and
                             function boundaries
    R10 hot-path-alloc       no heap allocation reachable from a
                             PSB_HOT_PATH root (util/hot_path.hh):
                             operator new, malloc, growing std
                             containers, string construction
    R11 hot-path-throw       no throw, throwing stdlib call (.at(),
                             stoi, optional::value), or recursion
                             cycle reachable from a PSB_HOT_PATH root
    R12 hot-path-dispatch    virtual or indirect calls inside
                             hot-path code must resolve to a complete
                             in-tree callee set (devirtualizable), or
                             carry an explicit allow(R12)

psb_lint implements shallow (regex) versions of R1, R2, R3, R5, R8
(raw std::mutex outside the annotated wrapper) and R10 (PSB_HOT_PATH
placement, bare new/make_unique in hot-path files); psb_analyze
implements deep (type- and flow-aware) versions of R1-R4 plus R6
(scoped to the sweep engine's translation units), the dataflow rules
R7-R9, and the hot-path call-graph rules R10-R12 over the
PSB_HOT_PATH-annotated per-cycle roots.
A finding line always looks like

    path:line: [R1] message

and an inline `// psb-analyze: allow(R1)` comment on (or immediately
above) the offending line suppresses it in both tools.
"""

#: rule id -> (slug, one-line rationale)
RULES = {
    "R1": ("strong-type-escape",
           "address/cycle arithmetic must stay inside the strong "
           "domain types (util/strong_types.hh)"),
    "R2": ("stats-completeness",
           "every counter a component bumps must be registered with "
           "the StatsRegistry or it silently drops out of the stats "
           "export"),
    "R3": ("determinism",
           "results must be a pure function of config + seed; no "
           "clocks, rand(), pointer-keyed containers, or unordered "
           "iteration feeding observable output"),
    "R4": ("trace-purity",
           "PSB_TRACE arguments are not evaluated when tracing is "
           "off, so they must be side-effect free"),
    "R5": ("output-discipline",
           "components report through util/logging or util/trace, "
           "never raw printf/std::cout"),
    "R6": ("sweep-shared-state",
           "sweep jobs are shared-nothing: no mutable namespace-scope "
           "or function-static state on a job path unless it is "
           "atomic, mutex-guarded, or const"),
    "R7": ("nondeterminism-taint",
           "values derived from unordered iteration order, pointer "
           "casts, clocks, or uninitialized reads must pass a "
           "sort/normalize barrier before reaching stats, JSON, or "
           "golden output"),
    "R8": ("lock-discipline",
           "mutable state shared across sweep worker threads must be "
           "PSB_GUARDED_BY a named mutex "
           "(util/thread_annotations.hh) so clang -Wthread-safety "
           "can prove the locking"),
    "R9": ("interproc-escape",
           "a .raw() value must not round-trip through helpers or "
           "locals back into address/cycle arithmetic; keep the math "
           "inside the strong types"),
    "R10": ("hot-path-alloc",
            "the per-cycle hot path (every function reachable from a "
            "PSB_HOT_PATH root) must not allocate: no operator new, "
            "malloc, growing std containers, or string construction "
            "— preallocate at construction instead"),
    "R11": ("hot-path-throw",
            "the per-cycle hot path must not throw: no throw "
            "statements, throwing stdlib calls (.at(), stoi, "
            "optional::value), or recursion cycles reachable from a "
            "PSB_HOT_PATH root"),
    "R12": ("hot-path-dispatch",
            "dispatch inside hot-path code must be devirtualizable: "
            "virtual calls need a complete in-tree override set and "
            "std::function/function-pointer calls are flagged unless "
            "explicitly allowed"),
}

#: Shared process exit codes.
EXIT_CLEAN = 0     #: no findings
EXIT_FINDINGS = 1  #: at least one non-baselined finding
EXIT_ERROR = 2     #: usage or environment error (missing src/, bad DB)
EXIT_NO_COMPILE_DB = 3  #: compile_commands.json missing or stale

#: Parameter names that mark a raw integer as an address/cycle
#: quantity (the name half of R1's type+name test). Shared so the two
#: tools cannot drift apart on what counts as a domain parameter.
DOMAIN_PARAM_NAMES = (
    "addr", "address", "pc", "block", "cycle", "now", "when", "ready",
    "target", "deadline",
)

#: The strong domain types of util/strong_types.hh.
STRONG_TYPES = ("ByteAddr", "Addr", "BlockAddr", "BlockDelta", "Cycle",
                "CycleDelta")

# ------------------------------------------------------------------
# R7 nondeterminism-taint vocabulary. Shared here so the analyzer,
# the docs (DESIGN.md §12), and future tooling agree on what counts
# as a source, a sink, and a barrier.
# ------------------------------------------------------------------

#: Identifiers whose appearance in an expression marks the result as
#: wall-clock derived (nondeterministic across runs).
R7_CLOCK_SOURCES = (
    "steady_clock", "system_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "time_since_epoch",
    "random_device",
)

#: Identifiers that turn a pointer's numeric value into data —
#: allocator noise if it ever reaches observable output.
R7_POINTER_SOURCES = ("reinterpret_cast", "uintptr_t", "intptr_t")

#: Registration/sampling calls of the StatsRegistry: a tainted
#: argument here lands in the golden stats JSON.
R7_SINK_CALLS = ("addScalar", "addReal", "addAverage", "addHistogram",
                 "sample", "sampleN")

#: Function-name pattern for ordered-output producers (JSON emitters,
#: golden writers, sweep mergers): appending tainted data inside one
#: of these is a sink.
R7_SINK_FN_PATTERN = r"(?i)(json|golden|merge)"

#: Calls that launder taint: sorting or canonicalizing establishes a
#: deterministic order, so their arguments come out clean.
R7_BARRIER_CALLS = ("sort", "stable_sort")

#: Function-name pattern treated as a barrier when its result is
#: assigned (normalizeX(), canonicalKeys(), sortedCopy(), ...).
R7_BARRIER_FN_PATTERN = r"(?i)(normal|canonic|sorted)"

# ------------------------------------------------------------------
# R8 lock-discipline vocabulary.
# ------------------------------------------------------------------

#: The annotation macros of util/thread_annotations.hh that satisfy
#: the member-coverage audit.
R8_GUARD_ANNOTATIONS = ("PSB_GUARDED_BY", "PSB_PT_GUARDED_BY")

#: All PSB_* thread-annotation macros (stripped before classifying a
#: declaration, so a trailing PSB_REQUIRES(...) does not confuse the
#: member parser).
R8_ALL_ANNOTATIONS = R8_GUARD_ANNOTATIONS + (
    "PSB_REQUIRES", "PSB_REQUIRES_SHARED", "PSB_ACQUIRE",
    "PSB_RELEASE", "PSB_TRY_ACQUIRE", "PSB_EXCLUDES",
    "PSB_CAPABILITY", "PSB_SCOPED_CAPABILITY",
    "PSB_NO_THREAD_SAFETY_ANALYSIS",
)

#: Member/variable types that put a class in R8's audit scope.
R8_MUTEX_TYPES = ("Mutex", "mutex", "shared_mutex", "recursive_mutex")

#: Types that are synchronized by construction and need no guard.
R8_SYNC_TYPES = ("atomic", "Mutex", "MutexLock", "CondVar", "mutex",
                 "shared_mutex", "recursive_mutex",
                 "condition_variable", "condition_variable_any",
                 "once_flag", "CancelToken")


# ------------------------------------------------------------------
# R10-R12 hot-path vocabulary. The call-graph layer of psb_analyze
# walks every function reachable from a PSB_HOT_PATH annotation
# (src/util/hot_path.hh) and reports these facts; psb_lint's shallow
# R10 check and the docs (DESIGN.md §14) share the same lists.
# ------------------------------------------------------------------

#: The function annotation that roots the hot-path call graph.
HOT_PATH_MARKER = "PSB_HOT_PATH"

#: Free functions that always allocate.
R10_ALLOC_CALLS = (
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared", "to_string",
)

#: Methods that can grow an allocating std container. Only flagged
#: when the receiver's declared type resolves to one of
#: R10_ALLOC_CONTAINERS — SetAssocCache::insert() is not an
#: allocation, std::map::insert() is.
R10_GROWTH_METHODS = (
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace", "insert", "resize", "reserve", "assign", "append",
    "push", "emplace_hint", "try_emplace", "insert_or_assign",
)

#: std container/type names whose growth methods allocate.
R10_ALLOC_CONTAINERS = (
    "vector", "deque", "map", "set", "unordered_map", "unordered_set",
    "multimap", "multiset", "list", "forward_list", "string",
    "basic_string", "queue", "priority_queue", "stack",
)

#: stdlib calls that throw on failure — banned on the hot path (R11).
R11_THROWING_CALLS = (
    "at", "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod",
    "value", "substr",
)

#: Types whose call operator is an indirect dispatch the compiler
#: cannot devirtualize (R12).
R12_INDIRECT_TYPES = ("function",)


def format_finding(path, line, rule, message):
    """The one true finding format: path:line: [Rn] message."""
    return f"{path}:{line}: [{rule}] {message}"
