"""Shared rule catalog for the PSB static-analysis tooling.

Both checkers — tools/psb_lint.py (fast textual pre-check, no compile
database needed) and tools/psb_analyze.py (compile-aware AST-level
check) — report findings under the rule IDs defined here, and exit
with the shared exit codes, so CI and humans see one consistent
vocabulary:

    R1  strong-type-escape   address/cycle values leaving the strong
                             type domain (raw uint64_t domain params,
                             .raw() arithmetic re-entering a domain
                             type)
    R2  stats-completeness   counters that are bumped but never
                             registered with the StatsRegistry
    R3  determinism          nondeterminism sources: banned clock/rand
                             calls, pointer-keyed containers, unordered
                             iteration leaking into observable output
    R4  trace-purity         PSB_TRACE argument expressions with side
                             effects (behavior would differ with
                             tracing on/off)
    R5  output-discipline    raw printf/std::cout in component code,
                             bypassing util/logging and util/trace
    R6  sweep-shared-state   mutable state at namespace/static scope
                             reachable from sweep job paths without
                             synchronization (the sweep engine's
                             shared-nothing contract)

psb_lint implements shallow (regex) versions of R1, R2, R3, R5;
psb_analyze implements deep (type- and flow-aware) versions of R1-R4
plus R6 (scoped to the sweep engine's translation units).
A finding line always looks like

    path:line: [R1] message

and an inline `// psb-analyze: allow(R1)` comment on (or immediately
above) the offending line suppresses it in both tools.
"""

#: rule id -> (slug, one-line rationale)
RULES = {
    "R1": ("strong-type-escape",
           "address/cycle arithmetic must stay inside the strong "
           "domain types (util/strong_types.hh)"),
    "R2": ("stats-completeness",
           "every counter a component bumps must be registered with "
           "the StatsRegistry or it silently drops out of the stats "
           "export"),
    "R3": ("determinism",
           "results must be a pure function of config + seed; no "
           "clocks, rand(), pointer-keyed containers, or unordered "
           "iteration feeding observable output"),
    "R4": ("trace-purity",
           "PSB_TRACE arguments are not evaluated when tracing is "
           "off, so they must be side-effect free"),
    "R5": ("output-discipline",
           "components report through util/logging or util/trace, "
           "never raw printf/std::cout"),
    "R6": ("sweep-shared-state",
           "sweep jobs are shared-nothing: no mutable namespace-scope "
           "or function-static state on a job path unless it is "
           "atomic, mutex-guarded, or const"),
}

#: Shared process exit codes.
EXIT_CLEAN = 0     #: no findings
EXIT_FINDINGS = 1  #: at least one non-baselined finding
EXIT_ERROR = 2     #: usage or environment error (missing src/, bad DB)

#: Parameter names that mark a raw integer as an address/cycle
#: quantity (the name half of R1's type+name test). Shared so the two
#: tools cannot drift apart on what counts as a domain parameter.
DOMAIN_PARAM_NAMES = (
    "addr", "address", "pc", "block", "cycle", "now", "when", "ready",
    "target", "deadline",
)

#: The strong domain types of util/strong_types.hh.
STRONG_TYPES = ("ByteAddr", "Addr", "BlockAddr", "BlockDelta", "Cycle",
                "CycleDelta")


def format_finding(path, line, rule, message):
    """The one true finding format: path:line: [Rn] message."""
    return f"{path}:{line}: [{rule}] {message}"
