/**
 * @file
 * bench-diff: compare two BENCH JSON documents written by psb-bench.
 *
 *   bench-diff OLD.json NEW.json [--threshold PCT]
 *
 * Every non-"wall_" field must be byte-identical (those are the
 * deterministic counters the harness contract pins); "wall_" fields
 * may regress by at most PCT percent (default 25). For throughput
 * fields ("*per_sec*") lower is worse; for raw wall times higher is
 * worse. Improvements never fail.
 *
 * Exit codes: 0 = comparable within threshold, 1 = deterministic
 * field mismatch (the two runs measured different work), 2 = wall
 * regression beyond the threshold, 3 = usage or I/O error.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/bench_harness.hh"

namespace
{

bool
readFile(const char *path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *oldPath = nullptr;
    const char *newPath = nullptr;
    double threshold = 25.0;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "bench-diff: --threshold needs a value\n";
                return 3;
            }
            threshold = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::cerr << "usage: bench-diff OLD.json NEW.json "
                         "[--threshold PCT]\n";
            return 0;
        } else if (!oldPath) {
            oldPath = argv[i];
        } else if (!newPath) {
            newPath = argv[i];
        } else {
            std::cerr << "bench-diff: unexpected argument '" << argv[i]
                      << "'\n";
            return 3;
        }
    }
    if (!oldPath || !newPath) {
        std::cerr << "usage: bench-diff OLD.json NEW.json "
                     "[--threshold PCT]\n";
        return 3;
    }

    std::string oldJson;
    std::string newJson;
    if (!readFile(oldPath, oldJson)) {
        std::cerr << "bench-diff: cannot read '" << oldPath << "'\n";
        return 3;
    }
    if (!readFile(newPath, newJson)) {
        std::cerr << "bench-diff: cannot read '" << newPath << "'\n";
        return 3;
    }

    psb::BenchCompareResult result =
        psb::compareBenchJson(oldJson, newJson, threshold);
    for (const std::string &message : result.messages)
        std::cerr << "bench-diff: " << message << "\n";

    if (result.mismatch) {
        std::cerr << "bench-diff: deterministic fields differ — the "
                     "documents measured different work\n";
        return 1;
    }
    if (result.regression) {
        std::cerr << "bench-diff: wall-time regression beyond "
                  << threshold << "%\n";
        return 2;
    }
    std::cerr << "bench-diff: OK (deterministic fields identical, "
                 "wall times within "
              << threshold << "%)\n";
    return 0;
}
