/**
 * @file
 * psb-bench: the deterministic microbenchmark harness CLI. Runs the
 * standard hot-path kernel set plus the Figure 5 whole-simulation
 * throughput matrix and writes the BENCH JSON document (see
 * src/sim/bench_harness.hh for the determinism contract; every
 * non-"wall_" field is byte-stable across runs).
 *
 *   psb-bench                      # full run, write BENCH_psb.json
 *   psb-bench --quick              # CI-sized run
 *   psb-bench --filter mshr        # only kernels matching "mshr"
 *   psb-bench --repeats 7          # median of 7 repeats
 *   psb-bench --no-sim             # skip the fig5 matrix
 *   psb-bench --out out.json       # output path ("-" = stdout)
 *   psb-bench --list               # print kernel names and exit
 *   psb-bench --callgraph cg.json  # fold psb_analyze call-graph
 *                                  # stats into the meta section
 *
 * Compare two documents with bench-diff (tools/bench_diff.cc).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/bench_harness.hh"
#include "util/json.hh"

namespace
{

void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [options]\n"
        << "  --quick           reduced iterations and 2x2 fig5 matrix\n"
        << "  --filter SUBSTR   run only kernels whose name contains "
           "SUBSTR\n"
        << "  --repeats N       median-of-N wall times (default 3)\n"
        << "  --insts N         fig5 measured instructions per cell\n"
        << "  --warmup N        fig5 warm-up instructions per cell\n"
        << "  --no-sim          skip the fig5 whole-simulation matrix\n"
        << "  --out FILE        output path (default BENCH_psb.json; "
           "- = stdout)\n"
        << "  --list            print registered kernel names and exit\n"
        << "  --callgraph FILE  psb_analyze --callgraph-json output; "
           "its hot_roots/hot_reachable/hot_edges become "
           "deterministic meta fields\n";
}

/** Load hot-path call-graph stats into the harness options. */
bool
loadCallgraphStats(const std::string &path,
                   psb::BenchHarnessOptions &opts)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    psb::JsonValue doc;
    std::string error;
    if (!psb::parseJson(buf.str(), doc, error))
        return false;
    const psb::JsonValue *roots = doc.find("hot_roots");
    const psb::JsonValue *reach = doc.find("hot_reachable");
    const psb::JsonValue *edges = doc.find("hot_edges");
    if (!roots || !reach || !edges || !roots->isNumber() ||
        !reach->isNumber() || !edges->isNumber())
        return false;
    opts.hotCallgraphRoots = uint64_t(roots->number);
    opts.hotCallgraphReachable = uint64_t(reach->number);
    opts.hotCallgraphEdges = uint64_t(edges->number);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    psb::BenchHarnessOptions opts;
    std::string outPath = "BENCH_psb.json";
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--quick") == 0) {
            opts.quick = true;
            opts.simInstructions = 40'000;
            opts.simWarmup = 10'000;
        } else if (std::strcmp(argv[i], "--filter") == 0) {
            opts.filter = value("--filter");
        } else if (std::strcmp(argv[i], "--repeats") == 0) {
            opts.repeats =
                unsigned(std::strtoul(value("--repeats"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--insts") == 0) {
            opts.simInstructions =
                std::strtoull(value("--insts"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            opts.simWarmup =
                std::strtoull(value("--warmup"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--no-sim") == 0) {
            opts.skipSims = true;
        } else if (std::strcmp(argv[i], "--out") == 0) {
            outPath = value("--out");
        } else if (std::strcmp(argv[i], "--callgraph") == 0) {
            const char *path = value("--callgraph");
            if (!loadCallgraphStats(path, opts)) {
                std::cerr << argv[0] << ": cannot load call-graph "
                          << "stats from '" << path << "'\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--list") == 0) {
            list = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << argv[0] << ": unknown option '" << argv[i]
                      << "'\n";
            usage(argv[0]);
            return 2;
        }
    }
    if (opts.repeats == 0) {
        std::cerr << argv[0] << ": --repeats must be at least 1\n";
        return 2;
    }

    psb::BenchHarness harness(opts);
    psb::registerDefaultKernels(harness);

    if (list) {
        for (const std::string &name : harness.kernelNames())
            std::cout << name << "\n";
        return 0;
    }

    std::cerr << "psb-bench: running kernels (repeats=" << opts.repeats
              << (opts.quick ? ", quick" : "") << ")...\n";
    auto kernels = harness.runKernels();
    for (const auto &kernel : kernels)
        std::cerr << "  " << kernel.name << ": "
                  << kernel.wallNsPerIter << " ns/iter\n";

    if (!opts.skipSims)
        std::cerr << "psb-bench: running fig5 whole-sim matrix...\n";
    auto sims = harness.runSimMatrix();
    for (const auto &cell : sims)
        std::cerr << "  " << cell.name << ": "
                  << (unsigned long long)cell.wallCyclesPerSec
                  << " cycles/sec\n";

    std::string json = psb::benchJson(kernels, sims, opts);
    if (outPath == "-") {
        std::cout << json;
    } else {
        std::ofstream out(outPath,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::cerr << argv[0] << ": cannot write '" << outPath
                      << "'\n";
            return 2;
        }
        out << json;
        std::cerr << "psb-bench: wrote " << outPath << "\n";
    }
    return 0;
}
