#!/usr/bin/env python3
"""Compile-aware AST-level analyzer for the PSB tree (`psb_analyze`).

Where tools/psb_lint.py is a fast regex pre-check, this tool parses the
whole src/ tree — driven by the build's compile_commands.json — into a
token/scope model (classes, members, method bodies, aliases) and
enforces the simulator-specific rules the regex lint cannot see:

  R1 strong-type-escape
     (a) raw uint64_t address/cycle *parameters*, detected by type+name
         inside parameter lists in both headers and .cc files;
     (b) arithmetic that combines two `.raw()` results — address/cycle
         math that escaped the strong types and will be (or already
         was) wrapped back, losing the domain checks;
     (c) a strong-type constructor or strong-typed member initializer
         whose argument does `.raw()` arithmetic — the classic
         escape-and-re-enter round trip.

  R2 stats-completeness
     Cross-TU pass: every uint64_t counter member that component code
     bumps with a discarded-value `++`/`+=` statement, and that nothing
     but accessors ever reads, must be registered with the
     StatsRegistry — either named directly in some registerStats()
     body, or returned by an accessor that some registerStats() body
     calls. A bumped-but-unregistered counter silently drops out of
     the golden-stats JSON.

  R3 determinism
     Range-for iteration over unordered_map/unordered_set (resolved
     through members, locals, and using-aliases) whose loop body feeds
     stats, trace events, or ordered output; plus pointer-keyed
     associative containers, including ones hidden behind aliases.

  R4 trace-purity
     PSB_TRACE* argument expressions containing assignments or
     increments/decrements. Trace arguments are not evaluated when the
     flag is off, so a side effect there makes behavior differ with
     tracing on/off.

On top of the token/scope model sits a dataflow layer: per-function
def-use chains (locals, parameters, members) plus a cross-TU call
summary (does f() return nondeterministic data? raw .raw() values?
does it pass a parameter through to a sink?), iterated to a fixpoint.
It powers three rules the per-statement passes cannot express:

  R7 nondeterminism-taint
     Sources: unordered_map/unordered_set iteration order (including
     containers typed only through a *parameter*, which R3 cannot
     resolve), pointer-value casts (reinterpret_cast/uintptr_t),
     wall-clock reads, uninitialized locals. Sinks: StatsRegistry
     registration calls, JSON/golden/merge emitters. Taint must pass
     a recognized barrier (std::sort / a normalize*() helper) before
     reaching a sink, even across function boundaries.

  R8 lock-discipline
     Every class that owns a mutex (or already annotates a member)
     must annotate *all* its mutable shared members with
     PSB_GUARDED_BY(...) from util/thread_annotations.hh, and
     translation units on the sweep concurrency surface must not
     declare bare mutable namespace-scope state. Clang's
     -Wthread-safety (enabled under PSB_WERROR) then proves the
     annotations; this rule audits that the annotations exist.

  R9 interprocedural strong-type escape
     A .raw() value that round-trips through locals or helper returns
     back into address/cycle arithmetic or a strong-type constructor —
     the escape R1 sees only when it happens inside one statement.

Rule IDs, exit codes, and the domain-parameter name list are shared
with psb_lint via tools/psb_rules.py. Inline suppression:

    // psb-analyze: allow(R1)          (same line or the line above)

Backends: the token/scope engine above is self-contained and is what
runs everywhere. When the clang Python bindings are importable
(`pip install libclang==14.0.6`, as CI does), an additional
clang.cindex pass parses every TU in the compile database and deepens
R1a (true canonical types, catching typedef'd uint64_t) and R3
(container types resolved by the real compiler); its findings are
merged and deduplicated. `--backend libclang` makes that pass
mandatory, `--backend internal` disables it.

The tree walk covers src/ plus tools/*.cc and bench/ (the analysis
rules apply to the offline tooling too — a nondeterministic merge key
in psb-sweep corrupts golden output just as surely as one in the
simulator). `--jobs N` tokenizes and scope-scans the translation
units in a worker pool; the per-file models are merged in sorted
path order, so the findings are byte-identical at any job count.

Usage:
    psb_analyze.py [root] [--compile-db build/compile_commands.json]
                   [--backend auto|internal|libclang] [--jobs N]
                   [--baseline tools/psb_analyze_baseline.json]
                   [--json findings.json] [--list-rules]
    psb_analyze.py --self-test [fixture-dir]

Exit codes (shared): 0 clean, 1 findings, 2 usage/environment error,
3 compile_commands.json missing or stale (re-run cmake).
"""

import argparse
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import psb_rules  # noqa: E402
from psb_rules import (  # noqa: E402
    DOMAIN_PARAM_NAMES, EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS,
    EXIT_NO_COMPILE_DB, HOT_PATH_MARKER, R7_BARRIER_CALLS,
    R7_BARRIER_FN_PATTERN, R7_CLOCK_SOURCES, R7_POINTER_SOURCES,
    R7_SINK_CALLS, R7_SINK_FN_PATTERN, R8_ALL_ANNOTATIONS,
    R8_GUARD_ANNOTATIONS, R8_MUTEX_TYPES, R8_SYNC_TYPES,
    R10_ALLOC_CALLS, R10_ALLOC_CONTAINERS, R10_GROWTH_METHODS,
    R11_THROWING_CALLS, R12_INDIRECT_TYPES, RULES, STRONG_TYPES,
    format_finding)

# --------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<str>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
    | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punc><<=|>>=|<=>|->\*|\.\.\.|::|\+\+|--|<<|>>|<=|>=|==|!=
               |&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|->|.)
    """,
    re.VERBOSE | re.DOTALL)

SUPPRESS_RE = re.compile(
    r"//\s*psb-analyze:\s*allow\(\s*([A-Z0-9,\s]+?)\s*\)")

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}
ARITH_OPS = {"+", "-", "*", "/", "%"}
DOMAIN_NAME_RE = re.compile(
    "^(" + "|".join(DOMAIN_PARAM_NAMES) + r")\w*$", re.IGNORECASE)


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text!r}@{self.line}"


def tokenize(text):
    """Token list (comments/whitespace dropped), plus suppressions.

    Returns (tokens, suppressed) where suppressed maps line number ->
    set of rule ids allowed on that line and the following line.
    """
    toks = []
    suppressed = {}
    line = 1
    pos = 0
    n = len(text)
    while pos < n:
        m = TOKEN_RE.match(text, pos)
        if not m:  # stray byte; skip it
            pos += 1
            continue
        kind = m.lastgroup
        s = m.group(0)
        if kind == "comment":
            sm = SUPPRESS_RE.search(s)
            if sm:
                rules = {r.strip() for r in sm.group(1).split(",")}
                suppressed.setdefault(line, set()).update(rules)
        elif kind == "id" and s in ("pragma", "include", "define",
                                    "ifdef", "ifndef", "endif", "if",
                                    "else", "elif", "undef", "error") \
                and toks and toks[-1].text == "#" \
                and toks[-1].line == line:
            # Preprocessor directive: swallow the logical line.
            toks.pop()
            end = pos
            while True:
                nl = text.find("\n", end)
                if nl == -1:
                    end = n
                    break
                if text[nl - 1] == "\\":
                    end = nl + 1
                    continue
                end = nl
                break
            line += text.count("\n", pos, end)
            pos = end
            continue
        elif kind != "ws":
            toks.append(Tok(kind, s, line))
        line += s.count("\n")
        pos = m.end()
    return toks, suppressed


# --------------------------------------------------------------------
# Scope model: classes, members, accessors, method bodies
# --------------------------------------------------------------------

class ClassInfo:
    def __init__(self, name):
        self.name = name
        self.bases = []          # base class names
        self.members = {}        # member name -> type string
        self.accessors = {}      # accessor name -> member returned
        self.declares = set()    # {"registerStats", "resetStats", ...}
        self.files = set()


class Model:
    """Cross-TU model of the analyzed tree."""

    def __init__(self):
        self.classes = {}        # name -> ClassInfo
        self.aliases = {}        # alias name -> type string
        # (class, member) -> [(file, line)] discarded-value bumps
        self.bumps = {}
        # identifiers appearing inside any registerStats body
        self.registered_ids = set()
        # (class, member) -> lines where member is read outside
        # mutations/accessors/registerStats/resetStats
        self.other_reads = set()
        # PSB_HOT_PATH-annotated roots: set of (class-or-"", name)
        self.hot_roots = set()
        # methods declared `virtual`: set of (class, name)
        self.virtuals = set()
        # allow() on a declaration: (class-or-"", name) -> rule set,
        # also suppressing the matching out-of-line definition
        self.decl_allows = {}

    def cls(self, name):
        if name not in self.classes:
            self.classes[name] = ClassInfo(name)
        return self.classes[name]


def _find_matching(toks, i, open_t, close_t):
    """Index of the token matching the opener at i, or len(toks)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n


def _type_str(toks):
    return " ".join(t.text for t in toks)


class Func:
    """One function body: enclosing class (None for free functions),
    name, parameter-list token span, body token span, and return-type
    text (used by the call-graph layer to resolve method calls on a
    call's result, `buffer(i).fill(...)`)."""

    __slots__ = ("cls", "name", "sig_lo", "sig_hi", "body_lo",
                 "body_hi", "ret")

    def __init__(self, cls, name, sig_lo, sig_hi, body_lo, body_hi,
                 ret=""):
        self.cls = cls
        self.name = name
        self.sig_lo = sig_lo
        self.sig_hi = sig_hi
        self.body_lo = body_lo
        self.body_hi = body_hi
        self.ret = ret

    def __repr__(self):
        owner = f"{self.cls}::" if self.cls else ""
        return f"<Func {owner}{self.name}>"


class FileScan:
    """Single-file scan: builds scope structure over the token list."""

    def __init__(self, rel, toks, raw="", sup=None):
        self.rel = rel
        self.toks = toks
        #: original file text, kept for raw-text scoping decisions
        #: (the tokenizer swallows preprocessor lines, so "does this
        #: TU include thread_annotations.hh" is only answerable here)
        self.raw = raw
        #: line -> suppressed rule set (for declaration-site allow())
        self.sup = sup or {}
        self.functions = []  # list of Func
        # class name -> (body_lo, body_hi) spans at class scope
        self.class_spans = []

    def scan(self, model):
        self._scan_aliases(model)
        self._scan_classes(model)
        self._scan_out_of_line_functions()
        self._scan_free_functions()
        self._scan_hot_facts(model)

    #: Tokens at class scope that end a backward walk from a method
    #: name to the start of its declaration.
    _DECL_BOUNDARY = (";", "}", "{", "public", "private", "protected")

    def _ret_text(self, i, lo=0):
        """Return-type-ish text preceding the name token at `i`."""
        toks = self.toks
        j = i - 1
        while j >= lo and toks[j].text not in self._DECL_BOUNDARY \
                and toks[j].text != ":":
            j -= 1
        words = [t.text for t in toks[j + 1:i]
                 if t.text not in ("virtual", "static", "inline",
                                   "constexpr", "explicit", "friend",
                                   HOT_PATH_MARKER)]
        return " ".join(words)

    def _scan_hot_facts(self, model):
        """PSB_HOT_PATH roots, virtual-method decls, and allow() on
        declarations (which must also suppress the out-of-line
        definition — see Model.decl_allows)."""
        toks = self.toks
        n = len(toks)

        def owner(idx):
            best = ""
            for cname, lo, hi in self.class_spans:
                if lo <= idx < hi:
                    best = cname  # innermost wins (spans nest)
            return best

        # Hot roots: PSB_HOT_PATH ... name ( — the first identifier
        # followed by '(' after the marker is the function name.
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text == HOT_PATH_MARKER:
                k = i + 1
                while k + 1 < n and not (toks[k].kind == "id"
                                         and toks[k + 1].text == "("):
                    k += 1
                if k + 1 < n:
                    model.hot_roots.add((owner(k), toks[k].text))

        # Class-depth walk: virtual markers and declaration-site
        # suppressions for every method of every class.
        for cname, lo, hi in self.class_spans:
            i = lo
            while i < hi:
                t = toks[i]
                if t.text == "{":
                    i = _find_matching(toks, i, "{", "}") + 1
                    continue
                if t.kind == "id" and i + 1 < hi \
                        and toks[i + 1].text == "(" \
                        and t.text not in CONTROL_KEYWORDS:
                    j = i - 1
                    while j >= lo and toks[j].text not in \
                            self._DECL_BOUNDARY:
                        if toks[j].text == "virtual":
                            model.virtuals.add((cname, t.text))
                            break
                        j -= 1
                    rules = set()
                    for ln in (t.line, t.line - 1):
                        rules |= self.sup.get(ln, set())
                    if rules:
                        model.decl_allows.setdefault(
                            (cname, t.text), set()).update(rules)
                    i = _find_matching(toks, i + 1, "(", ")") + 1
                    continue
                i += 1

    def _scan_aliases(self, model):
        toks = self.toks
        for i, t in enumerate(toks):
            if t.text == "using" and i + 2 < len(toks) \
                    and toks[i + 1].kind == "id" \
                    and toks[i + 2].text == "=":
                j = i + 3
                while j < len(toks) and toks[j].text != ";":
                    j += 1
                model.aliases[toks[i + 1].text] = \
                    _type_str(toks[i + 3:j])
            elif t.text == "typedef":
                j = i + 1
                while j < len(toks) and toks[j].text != ";":
                    j += 1
                if j - 1 > i + 1 and toks[j - 1].kind == "id":
                    model.aliases[toks[j - 1].text] = \
                        _type_str(toks[i + 1:j - 1])

    def _scan_classes(self, model):
        toks = self.toks
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.text in ("class", "struct") and i + 1 < n \
                    and toks[i + 1].kind == "id":
                name = toks[i + 1].text
                j = i + 2
                bases = []
                # optional final/base clause up to '{' or ';'
                while j < n and toks[j].text not in ("{", ";"):
                    if toks[j].kind == "id" and toks[j].text not in (
                            "public", "private", "protected", "final",
                            "virtual"):
                        bases.append(toks[j].text)
                    j += 1
                if j < n and toks[j].text == "{":
                    body_hi = _find_matching(toks, j, "{", "}")
                    info = model.cls(name)
                    info.bases.extend(
                        b for b in bases if b not in info.bases)
                    info.files.add(self.rel)
                    self.class_spans.append((name, j + 1, body_hi))
                    self._scan_class_body(model, info, j + 1, body_hi)
                    i = j + 1  # descend: nested classes re-found OK
                    continue
            i += 1

    def _scan_class_body(self, model, info, lo, hi):
        """Members, accessors, inline method bodies at class depth."""
        toks = self.toks
        i = lo
        while i < hi:
            t = toks[i]
            if t.text == "{":  # inline body or nested brace: skip over
                i = _find_matching(toks, i, "{", "}") + 1
                continue
            if t.kind == "id" and i + 1 < hi:
                nxt = toks[i + 1]
                # method: name ( ... ) [const] { body }  or  decl ;
                if nxt.text == "(" and t.text not in (
                        "if", "for", "while", "switch", "return"):
                    close = _find_matching(toks, i + 1, "(", ")")
                    k = close + 1
                    while k < hi and toks[k].text in (
                            "const", "override", "noexcept", "final"):
                        k += 1
                    if k < hi and toks[k].text == "{":
                        body_hi = _find_matching(toks, k, "{", "}")
                        self.functions.append(Func(
                            info.name, t.text, i + 2, close, k + 1,
                            body_hi, ret=self._ret_text(i, lo)))
                        if t.text not in info.declares:
                            info.declares.add(t.text)
                        self._maybe_accessor(
                            info, t.text, k + 1, body_hi)
                        i = body_hi + 1
                        continue
                    # declaration only (';' or '= 0;')
                    info.declares.add(t.text)
                    i = k
                    continue
                # member: <type tokens> name [= init] ; / {init};
                if nxt.text in (";", "=", "{") and i - 1 >= lo:
                    j = i - 1
                    while j >= lo and toks[j].text in ("*", "&"):
                        j -= 1
                    if j >= lo and toks[j].text == ">":
                        depth = 0
                        while j >= lo:
                            if toks[j].text == ">":
                                depth += 1
                            elif toks[j].text == "<":
                                depth -= 1
                                if depth == 0:
                                    j -= 1
                                    break
                            j -= 1
                    if j >= lo and toks[j].kind == "id":
                        ty_lo = j
                        while ty_lo - 1 >= lo and toks[ty_lo - 1].kind \
                                in ("id", "punc") and \
                                toks[ty_lo - 1].text in (
                                "const", "static", "mutable", "unsigned",
                                "long", "std", "::", "<", ">", ","):
                            ty_lo -= 1
                        ty = _type_str(toks[ty_lo:i])
                        if ty and ty not in ("return", "public",
                                             "private", "protected"):
                            info.members.setdefault(t.text, ty)
            i += 1

    def _maybe_accessor(self, info, fname, lo, hi):
        """Record `name() const { return _x; }` style accessors."""
        toks = self.toks
        body = toks[lo:hi]
        if len(body) == 3 and body[0].text == "return" \
                and body[1].kind == "id" and body[2].text == ";":
            info.accessors[fname] = body[1].text

    def _scan_out_of_line_functions(self):
        """`Ret Class::name(...) { ... }` definitions in .cc files."""
        toks = self.toks
        n = len(toks)
        i = 0
        while i < n - 3:
            if toks[i].kind == "id" and toks[i + 1].text == "::" \
                    and toks[i + 2].kind == "id" \
                    and toks[i + 3].text == "(":
                close = _find_matching(toks, i + 3, "(", ")")
                k = close + 1
                while k < n and toks[k].text in ("const", "noexcept",
                                                 "override"):
                    k += 1
                # skip constructor init lists: ': member(init), ...'
                if k < n and toks[k].text == ":":
                    while k < n and toks[k].text != "{":
                        if toks[k].text == "(":
                            k = _find_matching(toks, k, "(", ")")
                        elif toks[k].text == "{":
                            break
                        k += 1
                if k < n and toks[k].text == "{":
                    body_hi = _find_matching(toks, k, "{", "}")
                    self.functions.append(Func(
                        toks[i].text, toks[i + 2].text, i + 4, close,
                        k + 1, body_hi, ret=self._ret_text(i)))
                    i = body_hi + 1
                    continue
            i += 1

    def _scan_free_functions(self):
        """Free-function definitions at namespace scope.

        The class and out-of-line scanners above have already claimed
        their body spans; what remains at namespace scope matching
        `type name ( params ) [const noexcept] { ... }` is a free (or
        file-static/inline) function — exactly where helper routines
        like JSON emitters and merge-key builders live, which the
        dataflow rules (R7/R9) must see.
        """
        toks = self.toks
        n = len(toks)
        covered = sorted(
            [(lo, hi) for _name, lo, hi in self.class_spans]
            + [(f.body_lo, f.body_hi) for f in self.functions])
        merged = []
        for lo, hi in covered:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        ci = 0
        i = 0
        while i < n - 1:
            while ci < len(merged) and merged[ci][1] < i:
                ci += 1
            if ci < len(merged) and merged[ci][0] <= i:
                i = merged[ci][1] + 1
                continue
            t = toks[i]
            prev = toks[i - 1] if i else None
            if t.kind == "id" and toks[i + 1].text == "(" \
                    and t.text not in CONTROL_KEYWORDS \
                    and prev is not None \
                    and (prev.kind == "id"
                         or prev.text in (">", "*", "&")) \
                    and prev.text not in ("class", "struct", "enum",
                                          "return", "new", "::"):
                close = _find_matching(toks, i + 1, "(", ")")
                k = close + 1
                while k < n and toks[k].text in ("const", "noexcept"):
                    k += 1
                if k < n and toks[k].text == "{":
                    body_hi = _find_matching(toks, k, "{", "}")
                    self.functions.append(Func(
                        None, t.text, i + 2, close, k + 1, body_hi,
                        ret=self._ret_text(i)))
                    i = body_hi + 1
                    continue
            i += 1


# --------------------------------------------------------------------
# Finding bookkeeping
# --------------------------------------------------------------------

class Findings:
    def __init__(self):
        self.items = []  # dicts: file, line, rule, message, key
        # filled by analyze_files: hot-path call-graph size metrics
        self.callgraph = {"hot_roots": 0, "hot_reachable": 0,
                          "hot_edges": 0}

    def add(self, scan_or_rel, line, rule, message, key,
            suppressed=None):
        rel = scan_or_rel.rel if isinstance(scan_or_rel, FileScan) \
            else scan_or_rel
        if suppressed:
            for ln in (line, line - 1):
                if rule in suppressed.get(ln, ()):
                    return
        self.items.append({"file": str(rel), "line": line,
                           "rule": rule, "message": message,
                           "key": f"{rule}:{rel}:{key}"})

    def sorted(self):
        return sorted(self.items,
                      key=lambda f: (f["file"], f["line"], f["rule"]))


# --------------------------------------------------------------------
# Rule passes (token/scope engine)
# --------------------------------------------------------------------

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof",
                    "alignof", "catch", "case", "throw", "new",
                    "delete", "assert", "static_assert", "decltype"}

TRACE_MACROS = {"PSB_TRACE", "PSB_TRACE_BEGIN", "PSB_TRACE_END",
                "PSB_TRACE_SET_NOW"}

OBSERVABLE_IN_LOOP = {"PSB_TRACE", "PSB_TRACE_BEGIN", "PSB_TRACE_END",
                      "addScalar", "addReal", "addAverage",
                      "addHistogram", "sample", "sampleN", "<<"}

EXEMPT_FILES = ("util/strong_types.hh", "util/thread_annotations.hh")

STATS_SCOPE_DIRS = ("core/", "cpu/", "memory/", "predictors/",
                    "prefetch/", "sim/")


def _exempt(rel):
    return str(rel).replace("\\", "/").endswith(EXEMPT_FILES)


def pass_r1_params(scan, suppressed, findings):
    """R1a: raw uint64_t address/cycle parameters (headers and .cc)."""
    if _exempt(scan.rel):
        return
    toks = scan.toks
    n = len(toks)
    # paren stack entries: True when the group is a decl/call arg list
    paren_stack = []
    for i, t in enumerate(toks):
        if t.text == "(":
            prev = toks[i - 1] if i else None
            arglist = (prev is not None and prev.kind == "id"
                       and prev.text not in CONTROL_KEYWORDS)
            paren_stack.append(arglist)
        elif t.text == ")":
            if paren_stack:
                paren_stack.pop()
        elif t.text == "uint64_t" and paren_stack \
                and any(paren_stack):
            j = i + 1
            while j < n and toks[j].text in ("&", "*", "&&", "const"):
                j += 1
            if j < n and toks[j].kind == "id" \
                    and DOMAIN_NAME_RE.match(toks[j].text):
                findings.add(
                    scan, toks[j].line, "R1",
                    f"raw uint64_t parameter '{toks[j].text}' carries "
                    f"an address/cycle quantity; use the strong "
                    f"domain types (ByteAddr/BlockAddr/Cycle...)",
                    f"param:{toks[j].text}", suppressed)


def _statements(toks, lo=0, hi=None):
    """Yield (start, end) token index ranges split at ; { }."""
    hi = len(toks) if hi is None else hi
    start = lo
    for i in range(lo, hi):
        if toks[i].text in (";", "{", "}"):
            if i > start:
                yield start, i
            start = i + 1
    if hi > start:
        yield start, hi


def _raw_call_positions(toks, lo, hi):
    out = []
    for i in range(lo, hi - 2):
        if toks[i].text == "." and toks[i + 1].text == "raw" \
                and toks[i + 2].text == "(":
            out.append(i)
    return out


def pass_r1_raw_arith(scan, suppressed, findings):
    """R1b: two .raw() results combined by +,-,*,/,%."""
    if _exempt(scan.rel):
        return
    toks = scan.toks
    for lo, hi in _statements(toks):
        raws = _raw_call_positions(toks, lo, hi)
        if len(raws) < 2:
            continue
        between = toks[raws[0] + 3:raws[-1]]
        if any(t.text in ARITH_OPS for t in between):
            findings.add(
                scan, toks[raws[0]].line, "R1",
                "arithmetic combines two .raw() escapes; this math "
                "belongs inside the strong types "
                "(util/strong_types.hh operators)",
                "raw-arith", suppressed)


def pass_r1_reentry(scan, model, suppressed, findings):
    """R1c: strong-type ctor / strong member init fed raw arithmetic."""
    if _exempt(scan.rel):
        return
    toks = scan.toks
    strong_members = {
        m for info in model.classes.values()
        for m, ty in info.members.items()
        if any(ty.split()[-1] == st or ty == st
               for st in STRONG_TYPES)}
    n = len(toks)
    for i in range(n - 1):
        t = toks[i]
        if toks[i + 1].text != "(" or t.kind != "id":
            continue
        is_strong_ctor = t.text in STRONG_TYPES and (
            i == 0 or toks[i - 1].text not in ("class", "struct",
                                               "::", "new"))
        is_member_init = t.text in strong_members
        if not (is_strong_ctor or is_member_init):
            continue
        close = _find_matching(toks, i + 1, "(", ")")
        args = toks[i + 2:close]
        has_raw = any(
            args[k].text == "." and k + 1 < len(args)
            and args[k + 1].text == "raw" for k in range(len(args)))
        if has_raw and any(a.text in ARITH_OPS for a in args):
            what = ("constructor" if is_strong_ctor
                    else "member initializer")
            findings.add(
                scan, t.line, "R1",
                f"strong-type {what} '{t.text}(...)' is fed .raw() "
                f"arithmetic — the value escaped the domain and "
                f"re-enters unchecked; use the strong-type operators "
                f"instead",
                f"reentry:{t.text}", suppressed)


def pass_r4_trace_purity(scan, suppressed, findings):
    """R4: side effects inside PSB_TRACE* argument lists."""
    rel = str(scan.rel).replace("\\", "/")
    if rel.endswith(("util/trace.hh", "util/trace.cc")):
        return  # the macro definitions themselves
    toks = scan.toks
    n = len(toks)
    for i in range(n - 1):
        if toks[i].kind == "id" and toks[i].text in TRACE_MACROS \
                and toks[i + 1].text == "(":
            close = _find_matching(toks, i + 1, "(", ")")
            for a in toks[i + 2:close]:
                if a.text in ("++", "--") or a.text in ASSIGN_OPS:
                    findings.add(
                        scan, a.line, "R4",
                        f"side effect ('{a.text}') inside "
                        f"{toks[i].text} arguments; trace arguments "
                        f"are skipped when tracing is off, so this "
                        f"changes behavior with tracing on/off",
                        f"trace:{toks[i].text}", suppressed)
                    break


# --------------------- R6: sweep shared state -----------------------

#: Types that are legitimately shared between sweep workers: they
#: synchronize by construction.
R6_SYNC_TYPES = ("atomic", "mutex", "shared_mutex", "condition_variable",
                 "condition_variable_any", "once_flag", "CancelToken")

R6_CONST_WORDS = ("const", "constexpr", "constinit")

#: Statement-leading tokens that mean "not a variable declaration".
R6_NON_DECL_LEADERS = {"using", "typedef", "template", "namespace",
                       "struct", "class", "enum", "union", "extern",
                       "static_assert", "friend", "return", "if",
                       "for", "while", "switch", "do", "public",
                       "private", "protected", "case", "default"}


def _r6_statement_is_mutable_decl(span):
    """True when a token span declares unsynchronized mutable state.

    A declaration for R6's purposes is `Type name` followed by `=`,
    `{`, or `;` with no intervening `(` (which would make it a
    function declaration/definition), not marked const/constexpr, and
    not one of the synchronization types.
    """
    if not span or span[0].text in R6_NON_DECL_LEADERS:
        return False
    texts = [t.text for t in span]
    if any(w in texts for w in R6_CONST_WORDS):
        return False
    if any(w in texts for w in R6_SYNC_TYPES):
        return False
    # `Type name =|{|;` with the name preceded by another identifier
    # (or `>` closing a template argument list).
    for k in range(1, len(span)):
        t = span[k]
        if t.text == "(":
            return False  # function declaration / call
        if t.kind == "id" and k + 1 < len(span) \
                and span[k + 1].text in ("=", "{", ";") \
                and (span[k - 1].kind == "id"
                     or span[k - 1].text in (">", "*", "&")):
            return True
    return False


def pass_r6_sweep_shared_state(scan, suppressed, findings):
    """R6: mutable shared state reachable from sweep job paths.

    Scoped to the sweep engine's translation units (any file whose
    name contains "sweep"): the engine's contract is shared-nothing,
    so everything reachable by more than one worker — namespace-scope
    variables and function-local statics — must be const, atomic, or
    a synchronization primitive. Per-instance members are fine (each
    job owns its objects).
    """
    name = str(scan.rel).replace("\\", "/").rsplit("/", 1)[-1]
    if "sweep" not in name:
        return
    toks = scan.toks
    n = len(toks)

    # Brace-context walk: a variable declaration is namespace-scope
    # when every enclosing brace is a namespace brace.
    stack = []  # "ns" | "other" per open brace
    stmt_start = 0
    i = 0
    while i < n:
        t = toks[i].text
        if t == "{":
            opener = "other"
            for k in range(max(stmt_start, i - 8), i):
                if toks[k].text == "namespace":
                    opener = "ns"
                    break
            stack.append(opener)
            stmt_start = i + 1
        elif t == "}":
            if stack:
                stack.pop()
            stmt_start = i + 1
        elif t == ";":
            span = toks[stmt_start:i]
            if all(s == "ns" for s in stack) \
                    and _r6_statement_is_mutable_decl(span):
                findings.add(
                    scan, span[0].line, "R6",
                    "mutable namespace-scope state in a sweep "
                    "translation unit; sweep jobs are shared-nothing "
                    "— make it const, atomic, or mutex-guarded, or "
                    "move it into the job",
                    f"ns-state:{span[0].line}", suppressed)
            stmt_start = i + 1
        i += 1

    # Function-local statics: shared by every call, i.e. every worker.
    for fn in scan.functions:
        fname, lo, hi = fn.name, fn.body_lo, fn.body_hi
        j = lo
        while j < hi:
            if toks[j].text == "static":
                end = next((k for k in range(j, hi)
                            if toks[k].text in (";", "{", "=")), hi)
                span = toks[j:end]
                texts = [t.text for t in span]
                if not any(w in texts for w in R6_CONST_WORDS) \
                        and not any(w in texts
                                    for w in R6_SYNC_TYPES):
                    findings.add(
                        scan, toks[j].line, "R6",
                        f"mutable function-local static in "
                        f"'{fname}' on a sweep job path; every "
                        f"worker shares it — make it atomic or "
                        f"mutex-guarded, or hoist it into per-job "
                        f"state",
                        f"fn-static:{toks[j].line}", suppressed)
                j = end
            j += 1


def _resolve_type(name, scan_locals, cls_info, model, depth=0):
    """Resolve an identifier to a declared type string, via aliases."""
    if depth > 4:
        return ""
    ty = scan_locals.get(name, "")
    if not ty and cls_info is not None:
        ty = cls_info.members.get(name, "")
    if not ty:
        ty = ""
    out = []
    for w in ty.split():
        if w in model.aliases:
            out.append(model.aliases[w])
        else:
            out.append(w)
    resolved = " ".join(out)
    if resolved in model.aliases:
        return model.aliases[resolved]
    return resolved


def _collect_locals(toks, lo, hi):
    """Very light local-decl harvest: `Type [&|*] name =|{|;` inside a
    body (the `:` alternative catches range-for bindings)."""
    out = {}
    for s, e in _statements(toks, lo, hi):
        span = toks[s:e]
        for k in range(1, len(span)):
            prev_is_type = span[k - 1].kind == "id" or (
                span[k - 1].text in ("&", "*") and k >= 2
                and span[k - 2].kind == "id")
            if span[k].kind == "id" and k + 1 < len(span) \
                    and span[k + 1].text in ("=", "{", ";", ":") \
                    and prev_is_type:
                out.setdefault(span[k].text,
                               _type_str(span[:k]))
                break
    return out


def pass_r3_determinism(scan, model, suppressed, findings):
    """R3: unordered iteration into observable state; pointer keys."""
    toks = scan.toks
    n = len(toks)

    # Pointer-keyed associative containers, aliases resolved.
    for s, e in _statements(toks):
        ty = _type_str(toks[s:e])
        expanded = " ".join(
            model.aliases.get(w, w) for w in ty.split())
        if re.search(r"\b(?:unordered_)?(?:map|set)\s*<[^,>]*\*",
                     expanded):
            findings.add(
                scan, toks[s].line, "R3",
                "pointer-keyed associative container (possibly via "
                "an alias); iteration order is allocator-dependent "
                "and can leak into stats",
                "ptr-key", suppressed)

    # Range-for over unordered containers writing observable state.
    for fn in scan.functions:
        lo, hi = fn.body_lo, fn.body_hi
        cls_info = model.classes.get(fn.cls)
        locals_ = _collect_locals(toks, lo, hi)
        i = lo
        while i < hi:
            if toks[i].text == "for" and i + 1 < hi \
                    and toks[i + 1].text == "(":
                close = _find_matching(toks, i + 1, "(", ")")
                head = toks[i + 2:close]
                colon = next((k for k, t in enumerate(head)
                              if t.text == ":"), None)
                if colon is not None:
                    cont = [t for t in head[colon + 1:]
                            if t.kind == "id"]
                    ty = ""
                    for c in cont:
                        ty = _resolve_type(c.text, locals_, cls_info,
                                           model)
                        if ty:
                            break
                        if c.text in ("unordered_map",
                                      "unordered_set"):
                            ty = c.text
                            break
                    if "unordered_map" in ty or "unordered_set" in ty:
                        body_lo = close + 1
                        if body_lo < hi and toks[body_lo].text == "{":
                            body_hi = _find_matching(
                                toks, body_lo, "{", "}")
                        else:
                            body_hi = next(
                                (k for k in range(body_lo, hi)
                                 if toks[k].text == ";"), hi)
                        body = toks[body_lo:body_hi]
                        writes = any(
                            t.text in OBSERVABLE_IN_LOOP
                            or t.text in ("++", "--")
                            or t.text in ASSIGN_OPS
                            for t in body)
                        if writes:
                            findings.add(
                                scan, toks[i].line, "R3",
                                "iteration over an unordered "
                                "container writes stats/trace/"
                                "output; the visit order is hash-"
                                "seed and allocator noise — use an "
                                "ordered container or sort first",
                                "unordered-iter", suppressed)
                i = close + 1
                continue
            i += 1


# ------------------------- R2: stats completeness -------------------

MUTATION_STMT_PRECEDERS = {";", "{", "}", ")", ":", "else", "do"}


def collect_r2_facts(scan, model):
    """Harvest bumps, registered identifiers, and other reads."""
    toks = scan.toks

    def member_path(idx):
        """Parse `_x` or `_s.f` starting at idx; ('' if not id)."""
        if idx >= len(toks) or toks[idx].kind != "id":
            return None, idx
        base = toks[idx].text
        if idx + 2 < len(toks) and toks[idx + 1].text == "." \
                and toks[idx + 2].kind == "id":
            return (base, toks[idx + 2].text), idx + 3
        return (base, None), idx + 1

    def owns_member(info, name, seen=None):
        """Member of the class or, transitively, of a base class."""
        if info is None:
            return False
        if name in info.members:
            return True
        seen = seen or set()
        seen.add(info.name)
        return any(
            owns_member(model.classes.get(b), name, seen)
            for b in info.bases
            if b in model.classes and b not in seen)

    for fn in scan.functions:
        cls_name, fname = fn.cls, fn.name
        lo, hi = fn.body_lo, fn.body_hi
        info = model.classes.get(cls_name)
        in_register = fname == "registerStats"
        in_reset = fname == "resetStats"
        # a pure accessor's `return _x;` is not a "real" read
        is_accessor = (info is not None
                       and info.accessors.get(fname) is not None)
        if in_register:
            for t in toks[lo:hi]:
                if t.kind == "id":
                    model.registered_ids.add(t.text)
            continue
        i = lo
        while i < hi:
            t = toks[i]
            prev = toks[i - 1] if i > lo else None
            # prefix:  ++_x;   ++_s.f;
            if t.text in ("++", "--") and (
                    prev is None
                    or prev.text in MUTATION_STMT_PRECEDERS):
                path, after = member_path(i + 1)
                if path and owns_member(info, path[0]) \
                        and after < hi and toks[after].text == ";":
                    _note_bump(model, info, path, scan.rel,
                               toks[i].line)
                    i = after + 1
                    continue
            # statement-initial member path: postfix bump, += or read
            if t.kind == "id" and owns_member(info, t.text) and (
                    prev is None
                    or prev.text in MUTATION_STMT_PRECEDERS):
                path, after = member_path(i)
                if path and after < hi:
                    nxt = toks[after].text
                    if nxt in ("++", "--") and after + 1 < hi \
                            and toks[after + 1].text == ";":
                        _note_bump(model, info, path, scan.rel,
                                   toks[i].line)
                        i = after + 2
                        continue
                    if nxt == "+=":
                        _note_bump(model, info, path, scan.rel,
                                   toks[i].line)
                        i = after + 1
                        continue
            # any other appearance of a member id = a "real" read,
            # unless we are inside resetStats or a pure accessor
            if t.kind == "id" and info is not None \
                    and t.text in info.members \
                    and not in_reset and not is_accessor:
                nxt = toks[i + 1].text if i + 1 < hi else ""
                prev_t = prev.text if prev is not None else ""
                is_bump_ctx = nxt in ("++", "--", "+=") \
                    or prev_t in ("++", "--")
                if not is_bump_ctx:
                    model.other_reads.add((cls_name, t.text))
            i += 1

    # accessor bodies don't count as reads; they were parsed from the
    # class body scan and are exactly `return _x;`


def _note_bump(model, info, path, rel, line):
    base, field = path
    cls_name = info.name if info is not None else ""
    key = (cls_name, base if field is None else f"{base}.{field}")
    model.bumps.setdefault(key, []).append((str(rel), line))


def _class_in_stats_scope(info, model, rel_files):
    """True when the class participates in the stats system."""
    seen = set()

    def walk(ci):
        if ci.name in seen:
            return False
        seen.add(ci.name)
        if "registerStats" in ci.declares or "resetStats" in \
                ci.declares:
            return True
        return any(walk(model.classes[b]) for b in ci.bases
                   if b in model.classes)

    if walk(info):
        return True
    # directory scope: component code participates even without its
    # own registerStats (its owner may register through accessors)
    return any(any(d in str(f) for d in STATS_SCOPE_DIRS)
               for f in rel_files)


def pass_r2_completeness(model, suppressions_by_file, findings):
    """Cross-TU: every pure counter bump must be registered."""
    # accessor name -> member, for every class (global indirection)
    accessor_member = {}
    for info in model.classes.values():
        for acc, member in info.accessors.items():
            accessor_member.setdefault(acc, set()).add(
                (info.name, member))

    registered_members = set(model.registered_ids)
    for acc in model.registered_ids:
        for _cls, member in accessor_member.get(acc, ()):
            registered_members.add(member)

    for (cls_name, member), sites in sorted(model.bumps.items()):
        info = model.classes.get(cls_name)
        if info is None:
            continue
        base, _, field = member.partition(".")
        leaf = field or base
        # Only uint64_t counters; struct fields (e.g. _stats.hits)
        # are checked by their leaf name.
        if not field:
            ty = info.members.get(base, "")
            if "uint64_t" not in ty:
                continue
            if (cls_name, base) in model.other_reads:
                continue  # feeds simulation logic; not a pure stat
        site_file, site_line = sites[0]
        if not _class_in_stats_scope(info, model, info.files):
            continue
        # A class that itself declares the stats protocol is checked
        # wherever it lives (fixtures included); otherwise require the
        # bump site to be component code under the stats-scope dirs.
        declares_protocol = _class_in_stats_scope(info, model, [])
        if not declares_protocol \
                and not any(d in site_file for d in STATS_SCOPE_DIRS):
            continue
        if leaf in registered_members:
            continue
        sup = suppressions_by_file.get(site_file, {})
        findings.add(
            site_file, site_line, "R2",
            f"counter '{member}' of {cls_name} is bumped here but "
            f"never registered: it appears in no registerStats() "
            f"body and no accessor returning it is called from one, "
            f"so it is missing from the stats JSON",
            f"counter:{cls_name}.{member}", sup)


# --------------------------------------------------------------------
# Dataflow layer: def-use chains + cross-TU call summaries (R7, R9)
# --------------------------------------------------------------------

#: Builtin scalar types whose uninitialized locals R7 tracks. Class
#: types default-construct, so only these can hold garbage.
SCALAR_TYPES = {"int", "unsigned", "long", "short", "uint64_t",
                "uint32_t", "uint16_t", "uint8_t", "int64_t", "int32_t",
                "size_t", "ssize_t", "double", "float", "bool", "char"}

_SINK_FN_RE = re.compile(R7_SINK_FN_PATTERN)
_BARRIER_FN_RE = re.compile(R7_BARRIER_FN_PATTERN)


def _parse_params(toks, sig_lo, sig_hi):
    """[(name, type-ish text), ...] for a parameter-list token span."""
    params = []
    chunks = []
    depth = 0
    start = sig_lo
    for i in range(sig_lo, sig_hi):
        t = toks[i].text
        if t in ("(", "<", "[", "{"):
            depth += 1
        elif t in (")", ">", "]", "}"):
            depth = max(0, depth - 1)
        elif t == ">>":
            depth = max(0, depth - 2)
        elif t == "," and depth == 0:
            chunks.append((start, i))
            start = i + 1
    if sig_hi > start:
        chunks.append((start, sig_hi))
    for lo, hi in chunks:
        span = toks[lo:hi]
        eq = next((k for k, t in enumerate(span) if t.text == "="),
                  len(span))
        span = span[:eq]
        ids = [t for t in span if t.kind == "id"]
        if not ids:
            continue
        name = ids[-1].text if len(ids) >= 2 else ""
        params.append((name, _type_str(span)))
    return params


def _split_args(toks, lo, hi):
    """Top-level comma split of a call-argument token range."""
    out = []
    depth = 0
    start = lo
    for i in range(lo, hi):
        t = toks[i].text
        if t in ("(", "<", "[", "{"):
            depth += 1
        elif t in (")", ">", "]", "}"):
            depth = max(0, depth - 1)
        elif t == "," and depth == 0:
            out.append((start, i))
            start = i + 1
    if hi > start:
        out.append((start, hi))
    return out


class FuncSummary:
    """What a callee does with taint, keyed by bare function name.
    Overloads and same-named methods are merged (conservative)."""

    __slots__ = ("returns_taint", "returns_raw", "param_sinks")

    def __init__(self):
        self.returns_taint = None  # reason string, or None
        self.returns_raw = False   # returns a .raw()-derived value
        self.param_sinks = {}      # param index -> sink description


class Dataflow:
    """Per-function def-use walk with cross-TU summaries.

    Two summary rounds propagate facts through call chains and member
    assignments (round one records leaf facts, round two folds them
    into callers — enough for the helper-into-member-into-sink chains
    this codebase actually has), then an emission round reports:

      R7: a nondeterministic value (unordered iteration order, clock,
          pointer cast, uninitialized read — possibly via a callee's
          return value or a struct member) reaching a stats
          registration call or a JSON/golden/merge emitter, with no
          sort/normalize barrier in between.
      R9: a .raw() value round-tripping through locals/returns into
          arithmetic or a strong-type constructor — the multi-
          statement, cross-function version of R1.
    """

    def __init__(self, scans, model):
        self.scans = scans      # [(FileScan, suppressions), ...]
        self.model = model
        self.summaries = {}     # fname -> FuncSummary
        self.member_taint = {}  # (class, member) -> reason

    def run(self, findings):
        for _round in range(2):
            for scan, sup in self.scans:
                for fn in scan.functions:
                    self._walk(scan, fn, None, sup)
        for scan, sup in self.scans:
            if _exempt(scan.rel):
                continue
            for fn in scan.functions:
                self._walk(scan, fn, findings, sup)

    # -- helpers ----------------------------------------------------

    def _type_of(self, name, locals_ty, cls_info):
        ty = locals_ty.get(name, "")
        if not ty and cls_info is not None:
            ty = cls_info.members.get(name, "")
        out = []
        for w in ty.split():
            out.append(self.model.aliases.get(w, w))
        return " ".join(out)

    def _member_reason(self, base, field, locals_ty, cls_info):
        """Taint of `base.field` via the declared type of `base`."""
        ty = self._type_of(base, locals_ty, cls_info)
        for w in ty.split():
            reason = self.member_taint.get((w, field))
            if reason:
                return reason
        return None

    def _is_barrier(self, name):
        return name in R7_BARRIER_CALLS or \
            _BARRIER_FN_RE.search(name) is not None

    #: Operators that end an arithmetic chain: a raw value merely
    #: *compared* (or selected, or passed alongside) is not escaping.
    _RESET_OPS = {"==", "!=", "<", ">", "<=", ">=", "&&", "||", "?",
                  ":", ",", ";", "=", "<<", ">>", "&", "|", "^", "!"}

    def _eval(self, toks, lo, hi, env):
        """Evaluate an expression span.

        Returns (reason, raw_ids, raw_combo, direct_raw): the first
        nondeterminism reason found (or None), the set of raw-value
        carriers read by the span, whether a raw value is an
        *operand* of +,-,*,/,% here (or already was one, for "arith"
        carriers) — adjacency matters: `a == b` or arithmetic on
        unrelated operands in the same statement does not count —
        and the number of direct .raw() calls.
        """
        taint, rawv, uninit, locals_ty, cls_info, own_cls = env
        reason = None
        raw_ids = set()
        raw_combo = False
        direct_raw = 0
        last_raw = False      # most recent operand was raw-derived
        pending_arith = False  # an ARITH op awaits its right operand

        def operand(is_raw):
            nonlocal last_raw, pending_arith, raw_combo
            if pending_arith and (is_raw or last_raw):
                raw_combo = True
            pending_arith = False
            last_raw = is_raw

        k = lo
        while k < hi:
            t = toks[k]
            if t.text in ARITH_OPS:
                if last_raw:
                    raw_combo = True
                pending_arith = True
                k += 1
                continue
            if t.text in self._RESET_OPS:
                last_raw = False
                pending_arith = False
                k += 1
                continue
            if t.text == "." and k + 2 < hi \
                    and toks[k + 1].text == "raw" \
                    and toks[k + 2].text == "(":
                direct_raw += 1
                operand(True)
                k += 3
                continue
            if t.kind == "num":
                operand(False)
                k += 1
                continue
            if t.kind != "id":
                k += 1
                continue
            nxt = toks[k + 1].text if k + 1 < hi else ""
            if t.text in R7_POINTER_SOURCES:
                reason = reason or "pointer-value cast " \
                    f"('{t.text}')"
            elif t.text in R7_CLOCK_SOURCES:
                reason = reason or f"wall-clock/time source " \
                    f"('{t.text}')"
            elif nxt == "(" and t.text not in CONTROL_KEYWORDS:
                sm = self.summaries.get(t.text)
                is_raw_call = False
                if sm is not None and not self._is_barrier(t.text):
                    if sm.returns_taint and reason is None:
                        reason = f"{sm.returns_taint}, via " \
                            f"{t.text}()"
                    if sm.returns_raw:
                        raw_ids.add(t.text + "()")
                        is_raw_call = True
                operand(is_raw_call)
            else:
                if reason is None and t.text in taint:
                    reason = taint[t.text]
                if reason is None and t.text in uninit:
                    reason = f"read of uninitialized '{t.text}'"
                if reason is None and own_cls is not None:
                    reason = self.member_taint.get(
                        (own_cls, t.text))
                if reason is None and nxt == "." and k + 2 < hi \
                        and toks[k + 2].kind == "id":
                    reason = self._member_reason(
                        t.text, toks[k + 2].text, locals_ty,
                        cls_info)
                is_carrier = t.text in rawv
                if is_carrier:
                    raw_ids.add(t.text)
                    if rawv[t.text] == "arith":
                        raw_combo = True
                operand(is_carrier)
            k += 1
        return reason, raw_ids, raw_combo, direct_raw

    # -- the walk ---------------------------------------------------

    def _walk(self, scan, fn, findings, sup):
        toks = scan.toks
        model = self.model
        cls_info = model.classes.get(fn.cls) if fn.cls else None
        params = _parse_params(toks, fn.sig_lo, fn.sig_hi)
        summary = self.summaries.setdefault(fn.name, FuncSummary())
        sink_fn = _SINK_FN_RE.search(fn.name) is not None

        taint = {}      # local/loop var -> reason
        rawv = {}       # var -> "plain" | "arith"
        uninit = set()  # declared scalars with no initializer yet
        locals_ty = {}  # name -> declared type text
        param_names = []
        for pname, pty in params:
            if pname:
                locals_ty[pname] = pty
                param_names.append(pname)
        env = (taint, rawv, uninit, locals_ty, cls_info, fn.cls)

        for s, e in _statements(toks, fn.body_lo, fn.body_hi):
            if s >= e:
                continue

            # `using clock = std::chrono::steady_clock;` — taint the
            # alias name so `clock::now()` reads as a clock source.
            if toks[s].text == "using" and s + 2 < e \
                    and toks[s + 2].text == "=":
                if any(toks[k].kind == "id"
                       and toks[k].text in R7_CLOCK_SOURCES
                       for k in range(s + 3, e)):
                    taint[toks[s + 1].text] = \
                        "wall-clock/time source (aliased)"
                continue

            # for-heads: bind the loop variable, then process any
            # trailing single-statement body as part of this span.
            if toks[s].text == "for" and s + 1 < e \
                    and toks[s + 1].text == "(":
                close = _find_matching(toks, s + 1, "(", ")")
                if close < e:
                    colon = next(
                        (k for k in range(s + 2, close)
                         if toks[k].text == ":"), None)
                    if colon is not None:
                        before = [toks[k] for k in range(s + 2, colon)
                                  if toks[k].kind == "id"]
                        loopvar = before[-1].text if before else None
                        creason = None
                        for k in range(colon + 1, close):
                            t = toks[k]
                            if t.kind != "id":
                                continue
                            if k + 1 < close \
                                    and toks[k + 1].text == "(" \
                                    and self._is_barrier(t.text):
                                # iterating a barrier call's result:
                                # the order is normalized by name
                                break
                            if t.text in ("unordered_map",
                                          "unordered_set"):
                                creason = ("unordered-container "
                                           "iteration order")
                                break
                            ty = self._type_of(t.text, locals_ty,
                                               cls_info)
                            if "unordered_map" in ty \
                                    or "unordered_set" in ty:
                                creason = (
                                    f"iteration order of unordered "
                                    f"container '{t.text}'")
                                break
                            if t.text in taint:
                                creason = taint[t.text]
                                break
                        if loopvar and creason:
                            taint[loopvar] = creason
                    s = close + 1
                else:
                    s = s + 2  # classic for: skip `for (`, keep init
                if s >= e:
                    continue

            # Pre-scan: barriers clear their arguments; a scalar
            # passed to any call (or address-taken) may be written,
            # so it stops counting as uninitialized.
            k = s
            while k < e - 1:
                t = toks[k]
                if t.text == "&" and toks[k + 1].kind == "id":
                    uninit.discard(toks[k + 1].text)
                if t.kind == "id" and toks[k + 1].text == "(" \
                        and t.text not in CONTROL_KEYWORDS:
                    close = _find_matching(toks, k + 1, "(", ")")
                    for a in range(k + 2, min(close, e)):
                        if toks[a].kind == "id":
                            uninit.discard(toks[a].text)
                    if self._is_barrier(t.text):
                        for a in range(k + 2, min(close, e)):
                            if toks[a].kind == "id":
                                taint.pop(toks[a].text, None)
                k += 1

            # return: feed the summary.
            if toks[s].text == "return":
                reason, raw_ids, _rc, direct = self._eval(
                    toks, s + 1, e, env)
                if reason and summary.returns_taint is None:
                    summary.returns_taint = reason
                if direct or raw_ids:
                    summary.returns_raw = True

            # Sink scan. In summary rounds this records param->sink
            # facts; in the emit round it reports tainted arguments.
            k = s
            while k < e - 1:
                t = toks[k]
                if t.kind == "id" and toks[k + 1].text == "(" \
                        and t.text not in CONTROL_KEYWORDS:
                    close = min(_find_matching(toks, k + 1, "(", ")"),
                                e)
                    sink_desc = None
                    if t.text in R7_SINK_CALLS:
                        sink_desc = f"stats sink '{t.text}()'"
                    else:
                        sm = self.summaries.get(t.text)
                        if sm is not None and sm.param_sinks \
                                and not self._is_barrier(t.text):
                            sink_desc = (
                                f"'{t.text}()', which passes it to "
                                + next(iter(sorted(
                                    sm.param_sinks.values()))))
                    if sink_desc:
                        for pi, pname in enumerate(param_names):
                            if any(toks[a].kind == "id"
                                   and toks[a].text == pname
                                   for a in range(k + 2, close)):
                                summary.param_sinks.setdefault(
                                    pi, sink_desc)
                        if findings is not None:
                            reason, _ri, _rc, _d = self._eval(
                                toks, k + 2, close, env)
                            if reason:
                                findings.add(
                                    scan, t.line, "R7",
                                    f"nondeterministic value "
                                    f"({reason}) reaches "
                                    f"{sink_desc} without a sort/"
                                    f"normalize barrier; the golden "
                                    f"output would differ run to "
                                    f"run",
                                    f"taint:{t.text}:{t.line}", sup)
                k += 1

            # Inside a JSON/golden/merge emitter, appending or
            # streaming tainted data is itself a sink.
            if findings is not None and sink_fn:
                op_pos = next(
                    (k for k in range(s, e)
                     if toks[k].text in ("+=", "<<")), None)
                if op_pos is not None:
                    reason, _ri, _rc, _d = self._eval(
                        toks, op_pos + 1, e, env)
                    if reason:
                        findings.add(
                            scan, toks[op_pos].line, "R7",
                            f"nondeterministic value ({reason}) is "
                            f"appended to ordered output inside "
                            f"'{fn.name}()'; sort or normalize it "
                            f"first",
                            f"taint:{fn.name}:{toks[op_pos].line}",
                            sup)

            # R9 whole-statement checks (emit round only).
            if findings is not None:
                reason, raw_ids, raw_combo, direct = \
                    self._eval(toks, s, e, env)
                if len(raw_ids) + min(direct, 1) >= 2 \
                        and raw_combo and direct < 2 and raw_ids:
                    names = ", ".join(sorted(raw_ids))
                    findings.add(
                        scan, toks[s].line, "R9",
                        f"arithmetic combines .raw() escapes that "
                        f"round-tripped through locals/returns "
                        f"({names}); keep this math inside the "
                        f"strong types (util/strong_types.hh)",
                        f"interproc-arith:{toks[s].line}", sup)
                k = s
                while k < e - 1:
                    t = toks[k]
                    if t.kind == "id" and t.text in STRONG_TYPES \
                            and toks[k + 1].text == "(" \
                            and (k == 0 or toks[k - 1].text not in
                                 ("class", "struct", "::", "new")):
                        close = min(
                            _find_matching(toks, k + 1, "(", ")"), e)
                        a_reason, a_raw, a_combo, a_direct = \
                            self._eval(toks, k + 2, close, env)
                        if a_raw and a_direct == 0 and a_combo:
                            names = ", ".join(sorted(a_raw))
                            findings.add(
                                scan, t.line, "R9",
                                f"strong-type constructor "
                                f"'{t.text}(...)' re-wraps .raw() "
                                f"values that escaped earlier "
                                f"({names}) after arithmetic — an "
                                f"interprocedural escape-and-"
                                f"re-enter round trip",
                                f"interproc-reentry:{t.line}", sup)
                    k += 1

            # Assignment / declaration: update the def-use state.
            depth = 0
            op_k = None
            op = None
            for k in range(s, e):
                tt = toks[k].text
                if tt in ("(", "[", "{"):
                    depth += 1
                elif tt in (")", "]", "}"):
                    depth = max(0, depth - 1)
                elif depth == 0 and tt in ASSIGN_OPS:
                    op_k = k
                    op = tt
                    break
            if op_k is not None:
                lhs_ids = []
                lhs_path = False  # member access / subscript on LHS
                depth = 0
                for k in range(s, op_k):
                    tt = toks[k].text
                    if tt in ("(", "[", "{"):
                        lhs_path = lhs_path or tt == "["
                        depth += 1
                    elif tt in (")", "]", "}"):
                        depth = max(0, depth - 1)
                    elif depth == 0 and tt in (".", "->"):
                        lhs_path = True
                    elif depth == 0 and toks[k].kind == "id":
                        lhs_ids.append(toks[k].text)
                if not lhs_ids:
                    continue
                target = lhs_ids[-1]
                reason, raw_ids, raw_combo, direct = \
                    self._eval(toks, op_k + 1, e, env)
                is_decl = len(lhs_ids) >= 2 and not lhs_path \
                    and toks[s].text not in ("if", "while")
                if is_decl:
                    # `Type name = ...`: record the declared type.
                    locals_ty.setdefault(
                        target,
                        " ".join(lhs_ids[:-1]))
                uninit.discard(target)
                # Raw-carrier tracking is restricted to plain scalar
                # locals: a struct field or strong-typed variable
                # cannot hold a raw escape, and tracking leaf names
                # of member paths conflates unrelated state.
                ty_words = locals_ty.get(target, "").split()
                scalar_ok = not ty_words or any(
                    w in SCALAR_TYPES or w == "auto"
                    for w in ty_words)
                track_raw = not lhs_path and scalar_ok
                is_raw = bool(raw_ids) or direct > 0
                if op == "=":
                    if not lhs_path:
                        if reason:
                            taint[target] = reason
                        else:
                            taint.pop(target, None)
                    if track_raw:
                        if is_raw:
                            rawv[target] = \
                                "arith" if raw_combo else "plain"
                        else:
                            rawv.pop(target, None)
                else:
                    if reason and not lhs_path:
                        taint[target] = reason
                    if track_raw and (is_raw or target in rawv):
                        rawv[target] = "arith"
                # Member writes feed the cross-function member map:
                # `_x = ...` (this-member) or `obj.field = ...` with
                # a resolvable object type.
                if reason:
                    base = lhs_ids[0]
                    if cls_info is not None \
                            and base in cls_info.members:
                        if len(lhs_ids) == 1:
                            self.member_taint.setdefault(
                                (fn.cls, base), reason)
                        else:
                            for w in self._type_of(
                                    base, locals_ty,
                                    cls_info).split():
                                if w in model.classes:
                                    self.member_taint.setdefault(
                                        (w, lhs_ids[1]), reason)
                    elif len(lhs_ids) >= 2:
                        for w in self._type_of(
                                base, locals_ty, cls_info).split():
                            if w in model.classes:
                                self.member_taint.setdefault(
                                    (w, lhs_ids[-1]), reason)
            else:
                # Declaration with no initializer: `uint64_t x;`
                span = toks[s:e]
                texts = [t.text for t in span]
                if len(span) >= 2 and span[0].kind == "id" \
                        and span[0].text not in CONTROL_KEYWORDS \
                        and "(" not in texts \
                        and any(w in SCALAR_TYPES for w in texts):
                    ids = [t.text for t in span if t.kind == "id"
                           and t.text not in SCALAR_TYPES
                           and t.text not in ("std", "signed",
                                              "static")]
                    if len(ids) == 1:
                        uninit.add(ids[0])
                        locals_ty.setdefault(
                            ids[0], _type_str(span[:-1]))


def pass_r7_r9_dataflow(scans, model, findings):
    """Run the dataflow engine over every scanned file."""
    Dataflow(scans, model).run(findings)


# ------------------------- R8: lock discipline -----------------------

def _r8_member_decls(toks, lo, hi):
    """Member-declaration spans of a class body (functions skipped)."""
    out = []
    i = lo
    start = lo
    while i < hi:
        t = toks[i].text
        if t == "{":
            prev = toks[i - 1].text if i > lo else ""
            close = _find_matching(toks, i, "{", "}")
            if prev == ")" or prev in ("const", "override",
                                       "noexcept", "final", "else",
                                       "try"):
                # function body: discard the pending statement
                i = close + 1
                start = i
                continue
            i = close + 1  # brace init: skip it, statement continues
            continue
        if t == ";":
            if i > start:
                out.append(toks[start:i])
            start = i + 1
            i += 1
            continue
        if t in ("public", "private", "protected") and i + 1 < hi \
                and toks[i + 1].text == ":":
            start = i + 2
            i += 2
            continue
        i += 1
    return out


_R8_SKIP_LEADERS = {"using", "typedef", "friend", "static_assert",
                    "template", "enum", "class", "struct", "union",
                    "public", "private", "protected", "operator",
                    "explicit", "virtual"}


def _r8_classify(span):
    """(member-name or None, annotated) for one member-decl span.

    Returns (None, _) when the span is not a mutable unsynchronized
    data member (function declarations, constants, sync types, and
    already-annotated members all come back None).
    """
    if span[0].text in _R8_SKIP_LEADERS:
        return None, False
    annotated = False
    core = []
    k = 0
    while k < len(span):
        t = span[k]
        if t.kind == "id" and t.text in R8_ALL_ANNOTATIONS:
            if t.text in R8_GUARD_ANNOTATIONS:
                annotated = True
            if k + 1 < len(span) and span[k + 1].text == "(":
                k = _find_matching(span, k + 1, "(", ")") + 1
            else:
                k += 1
            continue
        core.append(t)
        k += 1
    if annotated:
        return None, True
    texts = [t.text for t in core]
    if "(" in texts:
        return None, False  # function/constructor declaration
    if any(w in texts for w in R6_CONST_WORDS):
        return None, False
    if any(w in texts for w in R8_SYNC_TYPES):
        return None, False
    stop = texts.index("=") if "=" in texts else len(core)
    ids = [t.text for t in core[:stop]
           if t.kind == "id" and t.text not in ("std", "mutable",
                                                "static", "unsigned",
                                                "signed", "long",
                                                "short")]
    if len(ids) < 2:
        return None, False  # need at least `Type name`
    return ids[-1], False


def pass_r8_lock_discipline(scan, suppressed, findings):
    """R8: annotation coverage for mutex-owning classes and
    concurrency translation units.

    Two audits:
      - Any class that owns a mutex (Mutex / std::mutex member) or
        already annotates at least one member must annotate *every*
        mutable non-sync data member with PSB_GUARDED_BY /
        PSB_PT_GUARDED_BY. Half-annotated classes are how stale lock
        discipline slips past clang (-Wthread-safety only checks
        what is annotated).
      - A translation unit that includes util/thread_annotations.hh
        (detected on the raw text — it is on the sweep concurrency
        surface by definition) must not declare bare mutable
        namespace-scope state; it must be const, atomic, a sync
        primitive, or guarded (and therefore a class member).
    """
    if _exempt(scan.rel):
        return
    toks = scan.toks

    for cname, lo, hi in scan.class_spans:
        decls = _r8_member_decls(toks, lo, hi)
        classified = [(_r8_classify(span), span) for span in decls]
        in_scope = any(ann for (name, ann), _s in classified) or any(
            any(t.kind == "id" and t.text in R8_MUTEX_TYPES
                for t in span)
            for span in decls)
        if not in_scope:
            continue
        for (name, _ann), span in classified:
            if name is None:
                continue
            findings.add(
                scan, span[0].line, "R8",
                f"member '{cname}::{name}' is mutable, shares the "
                f"class with a mutex, but carries no PSB_GUARDED_BY "
                f"annotation — clang -Wthread-safety cannot check "
                f"accesses to it (util/thread_annotations.hh)",
                f"member:{cname}.{name}", suppressed)

    if "thread_annotations.hh" not in scan.raw:
        return
    stack = []
    stmt_start = 0
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "{":
            opener = "other"
            for k in range(max(stmt_start, i - 8), i):
                if toks[k].text == "namespace":
                    opener = "ns"
                    break
            if opener == "other" and toks[i - 1].kind == "id" \
                    and all(s == "ns" for s in stack):
                # namespace-scope brace initializer: skip the group,
                # the declaration statement continues to the `;`.
                i = _find_matching(toks, i, "{", "}") + 1
                continue
            stack.append(opener)
            stmt_start = i + 1
        elif t == "}":
            if stack:
                stack.pop()
            stmt_start = i + 1
        elif t == ";":
            span = toks[stmt_start:i]
            if span and all(s == "ns" for s in stack) \
                    and span[0].text not in R6_NON_DECL_LEADERS \
                    and not any(x.text in R6_CONST_WORDS
                                for x in span) \
                    and not any(x.kind == "id"
                                and x.text in R8_SYNC_TYPES
                                for x in span):
                # `Type name [= init]` with no parens = a mutable
                # namespace-scope variable in a concurrency TU.
                texts = [x.text for x in span]
                if "(" not in texts:
                    ids = [x for x in span if x.kind == "id"]
                    if len(ids) >= 2:
                        findings.add(
                            scan, span[0].line, "R8",
                            f"mutable namespace-scope variable "
                            f"'{ids[-1].text}' in a concurrency "
                            f"translation unit (includes "
                            f"thread_annotations.hh); make it "
                            f"const, atomic, or a PSB_GUARDED_BY "
                            f"class member",
                            f"ns:{ids[-1].text}", suppressed)
            stmt_start = i + 1
        i += 1


# --------------------------------------------------------------------
# Hot-path call-graph layer (R10, R11, R12)
# --------------------------------------------------------------------

#: Bare (receiver-less) stdlib calls that throw — the sto* family.
#: The rest of R11_THROWING_CALLS (.at(), .value(), .substr()) only
#: means "throwing" as a method call on a receiver.
_R11_BARE_THROWING = frozenset(
    c for c in R11_THROWING_CALLS if c.startswith("sto"))

#: Rules enforced over the hot-path call graph.
HOT_RULES = ("R10", "R11", "R12")


class HotPathGraph:
    """Interprocedural call graph rooted at PSB_HOT_PATH functions.

    Built once over the merged cross-TU model (deterministic: scans
    arrive in sorted path order and every walk below iterates sorted
    keys), then queried per rule:

      R10  any reachable heap allocation: operator new, malloc-family
           or make_* calls, growth methods on std containers, sized
           container/string construction.
      R11  any reachable throw statement, throwing stdlib call
           (.at(), sto*, optional::value, substr), or recursion cycle
           inside the hot subgraph.
      R12  virtual or indirect dispatch that cannot be resolved to a
           complete in-tree callee set: std::function invocation,
           `(*fp)(...)` calls, virtual calls with no in-tree
           implementation or an unresolvable receiver.

    Call edges: bare calls resolve through the caller's own class
    hierarchy and the free-function table; `recv.m()` / `recv->m()`
    resolve the receiver's declared type through locals, parameters,
    members (including inherited ones), smart-pointer/container
    element types, and call-result return types. A virtual call on an
    in-tree class fans out to every in-tree override in the subtree —
    the whole override set becomes hot, which is exactly the
    devirtualization contract R12 audits.

    Suppression prunes the graph per rule: `allow(Rn)` on a call-site
    line cuts that edge (the sanctioned-subtree escape hatch — e.g.
    workload trace generation under PSB_ALLOC_GUARD_PAUSE), and
    `allow(Rn)` on a function's declaration removes the function from
    rule Rn's graph entirely (matching Model.decl_allows semantics).
    """

    def __init__(self, scans, model):
        self.scans = scans
        self.model = model
        self.funcs = {}     # (cls-or-"", name) -> [(scan, fn, sup)]
        self.children = {}  # class -> set of direct derived classes
        self.edges = {}     # key -> [ {callee, scan, line, allows} ]
        self.prims = {}     # key -> [(rule, scan, line, msg, ukey, sup)]
        self.hot_keys = []  # resolved root keys, sorted
        self._subtree_cache = {}
        self._build()

    # -- construction ------------------------------------------------

    def _build(self):
        model = self.model
        for scan, sup in self.scans:
            for fn in scan.functions:
                key = (fn.cls or "", fn.name)
                self.funcs.setdefault(key, []).append((scan, fn, sup))
        for name, info in model.classes.items():
            for b in info.bases:
                self.children.setdefault(b, set()).add(name)

        roots = set()
        for cls, name in sorted(model.hot_roots):
            key = self._impl(cls, name) if cls else (
                ("", name) if ("", name) in self.funcs else None)
            if key is not None:
                roots.add(key)
            # a virtual root pulls in its in-tree overrides too: the
            # annotation on the interface makes every implementation
            # hot (Prefetcher::tick -> all prefetchers' tick).
            if cls and self._is_virtual(cls, name):
                for t in self._virtual_targets(cls, name):
                    roots.add(t)
        self.hot_keys = sorted(roots)

        for key in sorted(self.funcs):
            for scan, fn, sup in self.funcs[key]:
                self._extract(key, scan, fn, sup)

    # -- hierarchy helpers -------------------------------------------

    def _bases(self, cls):
        info = self.model.classes.get(cls)
        return info.bases if info else ()

    def _is_virtual(self, cls, name, seen=None):
        seen = seen if seen is not None else set()
        if cls in seen:
            return False
        seen.add(cls)
        if (cls, name) in self.model.virtuals:
            return True
        return any(self._is_virtual(b, name, seen)
                   for b in self._bases(cls))

    def _impl(self, cls, name, seen=None):
        """Nearest implementation of `name` at or above `cls`."""
        seen = seen if seen is not None else set()
        if cls in seen:
            return None
        seen.add(cls)
        if (cls, name) in self.funcs:
            return (cls, name)
        for b in self._bases(cls):
            found = self._impl(b, name, seen)
            if found:
                return found
        return None

    def _subtree(self, cls):
        """`cls` plus every in-tree class transitively derived."""
        if cls in self._subtree_cache:
            return self._subtree_cache[cls]
        out = {cls}
        work = [cls]
        while work:
            c = work.pop()
            for d in sorted(self.children.get(c, ())):
                if d not in out:
                    out.add(d)
                    work.append(d)
        self._subtree_cache[cls] = out
        return out

    def _virtual_targets(self, cls, name):
        """Every in-tree implementation a virtual call can reach."""
        targets = {(d, name) for d in self._subtree(cls)
                   if (d, name) in self.funcs}
        up = self._impl(cls, name)
        if up:
            targets.add(up)
        return sorted(targets)

    def _member_type(self, cls, name, seen=None):
        seen = seen if seen is not None else set()
        if not cls or cls in seen:
            return ""
        seen.add(cls)
        info = self.model.classes.get(cls)
        if info is None:
            return ""
        if name in info.members:
            return info.members[name]
        for b in info.bases:
            ty = self._member_type(b, name, seen)
            if ty:
                return ty
        return ""

    def _type_words(self, ty):
        out = []
        for w in ty.split():
            for w2 in self.model.aliases.get(w, w).split():
                out.append(self.model.aliases.get(w2, w2))
        return out

    # -- extraction ---------------------------------------------------

    def _allows_at(self, sup, line):
        out = set()
        for ln in (line, line - 1):
            out |= sup.get(ln, set())
        return out

    def _edge(self, key, callee, scan, line, sup):
        allows = self._allows_at(sup, line) | \
            self.model.decl_allows.get(callee, set())
        self.edges.setdefault(key, []).append(
            {"callee": callee, "scan": scan, "line": line,
             "allows": allows})

    def _prim(self, key, rule, scan, line, msg, ukey, sup):
        self.prims.setdefault(key, []).append(
            (rule, scan, line, msg, ukey, sup))

    def _recv_words(self, key, scan, fn, locals_ty, i):
        """Declared-type words of the receiver ending at token i
        (the token before `.`/`->`). Empty list = unresolvable."""
        toks = scan.toks
        r = toks[i]
        if r.kind == "id":
            if r.text == "this":
                return [fn.cls] if fn.cls else []
            ty = locals_ty.get(r.text, "") or \
                self._member_type(fn.cls or "", r.text)
            if not ty and r.text in self.model.classes:
                return [r.text]  # static-ish `Class.m` — unusual
            if not ty and i - 1 > fn.body_lo \
                    and toks[i - 1].text in (".", "->"):
                # chained member access: `base.member.m(...)` — type
                # the member through the base's resolved class
                for w in self._recv_words(key, scan, fn,
                                          locals_ty, i - 2):
                    if w in self.model.classes:
                        ty = self._member_type(w, r.text)
                        if ty:
                            break
            if not ty:
                # last resort: the name is a member of in-tree classes
                # with one unambiguous type (e.g. a public `priority`
                # reached through an unresolved receiver)
                cand = {
                    info.members[r.text]
                    for info in self.model.classes.values()
                    if r.text in info.members
                }
                if len(cand) == 1:
                    ty = next(iter(cand))
            return self._type_words(ty)
        if r.text == "]":
            # container element access: `base[i].m(...)`
            j = i
            depth = 0
            while j > fn.body_lo:
                if toks[j].text == "]":
                    depth += 1
                elif toks[j].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j > fn.body_lo and toks[j - 1].kind == "id":
                base = toks[j - 1].text
                ty = locals_ty.get(base, "") or \
                    self._member_type(fn.cls or "", base)
                words = self._type_words(ty)
                # Indexing a container yields the *element* type:
                # `_pht[i].value()` dispatches on SatCounter, not on
                # the std::vector holding it.
                if any(w in R10_ALLOC_CONTAINERS for w in words):
                    words = [w for w in words
                             if w != "std"
                             and w not in R10_ALLOC_CONTAINERS]
                return words
            return []
        if r.text == ")":
            # call result: `g(...).m(...)` — use g's return type
            j = i
            depth = 0
            while j > fn.body_lo:
                if toks[j].text == ")":
                    depth += 1
                elif toks[j].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j > fn.body_lo and toks[j - 1].kind == "id":
                g = toks[j - 1].text
                tkey = None
                if fn.cls:
                    tkey = self._impl(fn.cls, g)
                if tkey is None and ("", g) in self.funcs:
                    tkey = ("", g)
                if tkey is not None:
                    ret = self.funcs[tkey][0][1].ret
                    return self._type_words(ret)
            return []
        return []

    def _extract(self, key, scan, fn, sup):
        toks = scan.toks
        lo, hi = fn.body_lo, fn.body_hi
        locals_ty = {}
        for pname, pty in _parse_params(toks, fn.sig_lo, fn.sig_hi):
            if pname:
                locals_ty[pname] = pty
        locals_ty.update(_collect_locals(toks, lo, hi))

        i = lo
        while i < hi:
            t = toks[i]
            nxt = toks[i + 1].text if i + 1 < hi else ""
            if t.kind == "id" and t.text == "throw":
                self._prim(key, "R11", scan, t.line,
                           "throw statement",
                           f"throw:{t.line}", sup)
            elif t.kind == "id" and t.text == "new" \
                    and (i == lo or toks[i - 1].text not in
                         ("operator", "delete")):
                self._prim(key, "R10", scan, t.line,
                           "operator new",
                           f"new:{t.line}", sup)
            elif t.text == "(" and i + 4 < hi \
                    and toks[i + 1].text == "*" \
                    and toks[i + 2].kind == "id" \
                    and toks[i + 3].text == ")" \
                    and toks[i + 4].text == "(":
                self._prim(key, "R12", scan, t.line,
                           f"indirect call through "
                           f"'(*{toks[i + 2].text})'",
                           f"indirect:{t.line}", sup)
            elif t.kind == "id" and nxt == "<" \
                    and t.text in R10_ALLOC_CALLS:
                # template-call syntax: make_unique<T>(...)
                self._prim(key, "R10", scan, t.line,
                           f"allocating call '{t.text}<...>()'",
                           f"alloc:{t.text}:{t.line}", sup)
            elif t.kind == "id" and nxt == "(" \
                    and t.text not in CONTROL_KEYWORDS:
                self._call_site(key, scan, fn, sup, locals_ty, i)
            i += 1

    def _call_site(self, key, scan, fn, sup, locals_ty, i):
        toks = scan.toks
        name = toks[i].text
        line = toks[i].line
        prev = toks[i - 1] if i > 0 else None

        if prev is not None and prev.text in (".", "->"):
            self._method_call(key, scan, fn, sup, locals_ty, i)
            return
        # `Type name(...)` constructor-style declaration
        if prev is not None and prev.kind == "id":
            if prev.text in R10_ALLOC_CONTAINERS:
                self._prim(key, "R10", scan, line,
                           f"construction of allocating "
                           f"'std::{prev.text}'",
                           f"ctor:{line}", sup)
                return
            if prev.text in self.model.classes:
                ctor = (prev.text, prev.text)
                if ctor in self.funcs:
                    self._edge(key, ctor, scan, line, sup)
                return
        # sized construction of a templated container:
        # `std::vector<X> v(n)` — prev token is the closing '>'
        if prev is not None and prev.text == ">":
            j = i - 1
            depth = 0
            while j > fn.body_lo:
                if toks[j].text == ">":
                    depth += 1
                elif toks[j].text == "<":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j > fn.body_lo and toks[j - 1].kind == "id" \
                    and toks[j - 1].text in R10_ALLOC_CONTAINERS:
                self._prim(key, "R10", scan, line,
                           f"construction of allocating "
                           f"'std::{toks[j - 1].text}<...>'",
                           f"ctor:{line}", sup)
            return
        if name in self.model.classes:
            ctor = (name, name)
            if ctor in self.funcs:
                self._edge(key, ctor, scan, line, sup)
            return
        if name in R10_ALLOC_CALLS:
            self._prim(key, "R10", scan, line,
                       f"allocating call '{name}()'",
                       f"alloc:{name}:{line}", sup)
            return
        if name in _R11_BARE_THROWING:
            self._prim(key, "R11", scan, line,
                       f"throwing call '{name}()'",
                       f"throwcall:{name}:{line}", sup)
            return
        # indirect call through a std::function-typed local/member
        ty = locals_ty.get(name, "") or \
            self._member_type(fn.cls or "", name)
        words = self._type_words(ty)
        if any(w in R12_INDIRECT_TYPES for w in words):
            self._prim(key, "R12", scan, line,
                       f"indirect call through std::function "
                       f"'{name}'",
                       f"indirect:{name}:{line}", sup)
            return
        # own-class method (virtual-aware: a bare call is `this->`)
        if fn.cls:
            if self._is_virtual(fn.cls, name):
                for tkey in self._virtual_targets(fn.cls, name):
                    self._edge(key, tkey, scan, line, sup)
                return
            impl = self._impl(fn.cls, name)
            if impl is not None:
                self._edge(key, impl, scan, line, sup)
                return
        if ("", name) in self.funcs:
            self._edge(key, ("", name), scan, line, sup)

    def _method_call(self, key, scan, fn, sup, locals_ty, i):
        toks = scan.toks
        name = toks[i].text
        line = toks[i].line
        if i < 2:
            return
        words = self._recv_words(key, scan, fn, locals_ty, i - 2)
        # The receiver's *principal* type word decides the dispatch:
        # for `std::deque<RobEntry>` that is the container (deque),
        # not the element class, so container growth on a class-typed
        # element is still caught. Smart-pointer and cv words are
        # transparent (`std::unique_ptr<OoOCore>` dispatches on
        # OoOCore).
        principal = next(
            (w for w in words
             if w not in ("std", "const", "mutable", "unique_ptr",
                          "shared_ptr", "::", "<", ">", ",", "*",
                          "&")),
            None)
        if principal in R10_ALLOC_CONTAINERS:
            if name in R10_GROWTH_METHODS:
                self._prim(key, "R10", scan, line,
                           f"'.{name}()' grows 'std::{principal}'",
                           f"grow:{name}:{line}", sup)
            elif name in R11_THROWING_CALLS:
                self._prim(key, "R11", scan, line,
                           f"throwing call '.{name}()'",
                           f"throwcall:{name}:{line}", sup)
            # other container methods (size/begin/operator[]) are fine
            return
        if principal in self.model.classes:
            recv_cls = principal
            if self._is_virtual(recv_cls, name):
                targets = self._virtual_targets(recv_cls, name)
                if targets:
                    for tkey in targets:
                        # A fan-out edge from an override back onto
                        # itself through an explicit receiver is the
                        # decorator-forwarding pattern (wrapper calls
                        # inner.f() and the wrapper's own override is
                        # in the callee set) — not provable recursion.
                        # Bare self-calls still form cycles.
                        if tkey == key:
                            continue
                        self._edge(key, tkey, scan, line, sup)
                else:
                    self._prim(
                        key, "R12", scan, line,
                        f"virtual call '.{name}()' on "
                        f"'{recv_cls}' has no in-tree "
                        f"implementation to devirtualize to",
                        f"virt:{name}:{line}", sup)
            else:
                impl = self._impl(recv_cls, name)
                if impl is not None:
                    self._edge(key, impl, scan, line, sup)
            return
        if any(w in R12_INDIRECT_TYPES for w in words):
            self._prim(key, "R12", scan, line,
                       f"indirect call '.{name}()' through a "
                       f"std::function object",
                       f"indirect:{name}:{line}", sup)
            return
        if any(w in R10_ALLOC_CONTAINERS for w in words) \
                and name in R10_GROWTH_METHODS:
            cont = next(w for w in words
                        if w in R10_ALLOC_CONTAINERS)
            self._prim(key, "R10", scan, line,
                       f"'.{name}()' grows 'std::{cont}'",
                       f"grow:{name}:{line}", sup)
            return
        if name in R11_THROWING_CALLS:
            self._prim(key, "R11", scan, line,
                       f"throwing call '.{name}()'",
                       f"throwcall:{name}:{line}", sup)
            return
        if not words and any(k[1] == name
                             for k in self.model.virtuals):
            self._prim(key, "R12", scan, line,
                       f"cannot resolve the receiver of virtual "
                       f"call '.{name}()' — the callee set is "
                       f"unknown",
                       f"virt:{name}:{line}", sup)

    # -- reachability and reporting ----------------------------------

    def _label(self, key):
        cls, name = key
        return f"{cls}::{name}" if cls else name

    def _reach(self, rule):
        """BFS from the hot roots; returns {key: parent-or-None}.

        With a rule, `allow(rule)` on a call-site line cuts that edge
        and `allow(rule)` on a declaration removes the function; with
        rule=None the graph is unpruned (size metrics).
        """
        def banned(k):
            return rule is not None and \
                rule in self.model.decl_allows.get(k, ())

        parent = {}
        queue = []
        for r in self.hot_keys:
            if r not in parent and not banned(r):
                parent[r] = None
                queue.append(r)
        qi = 0
        while qi < len(queue):
            k = queue[qi]
            qi += 1
            for e in self.edges.get(k, ()):
                if rule is not None and rule in e["allows"]:
                    continue
                c = e["callee"]
                if c not in parent and not banned(c):
                    parent[c] = k
                    queue.append(c)
        return parent

    def _path(self, parent, key):
        chain = []
        k = key
        while k is not None:
            chain.append(self._label(k))
            k = parent.get(k)
        chain.reverse()
        if len(chain) > 5:
            chain = chain[:2] + ["..."] + chain[-2:]
        return " -> ".join(chain)

    def _report_cycles(self, rule, parent, findings):
        """Recursion cycles inside the rule's hot subgraph (R11)."""
        color = {}  # 0 absent, 1 on stack, 2 done
        reported = set()

        def edges_of(k):
            out = []
            for e in self.edges.get(k, ()):
                if rule in e["allows"]:
                    continue
                if e["callee"] in parent:
                    out.append(e)
            return out

        for root in sorted(parent):
            if color.get(root):
                continue
            stack = [(root, iter(edges_of(root)))]
            color[root] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for e in it:
                    c = e["callee"]
                    if color.get(c) == 1:
                        pair = (node, c)
                        if pair not in reported:
                            reported.add(pair)
                            findings.add(
                                e["scan"], e["line"], rule,
                                f"recursion cycle on the per-cycle "
                                f"hot path: '{self._label(node)}' "
                                f"calls '{self._label(c)}' which is "
                                f"already on the call stack — "
                                f"unbounded recursion cannot be "
                                f"proven allocation- and "
                                f"overflow-free",
                                f"recursion:{self._label(node)}:"
                                f"{e['line']}",
                                self._sup_of(e["scan"]))
                    elif not color.get(c):
                        color[c] = 1
                        stack.append((c, iter(edges_of(c))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    stack.pop()

    def _sup_of(self, scan):
        return scan.sup

    def run(self, findings):
        for rule in HOT_RULES:
            parent = self._reach(rule)
            for fkey in sorted(parent):
                for (r, scan, line, msg, ukey, sup) in \
                        self.prims.get(fkey, ()):
                    if r != rule:
                        continue
                    findings.add(
                        scan, line, rule,
                        f"{msg} in '{self._label(fkey)}' on the "
                        f"per-cycle hot path (reachable as "
                        f"{self._path(parent, fkey)}); "
                        f"{RULES[rule][1]}",
                        f"hot:{ukey}", sup)
            if rule == "R11":
                self._report_cycles(rule, parent, findings)

    def stats(self):
        """Deterministic size metrics for psb-bench / bench-diff."""
        parent = self._reach(None)
        n_edges = sum(len(self.edges.get(k, ())) for k in parent)
        return {"hot_roots": len(self.hot_keys),
                "hot_reachable": len(parent),
                "hot_edges": n_edges}


# --------------------------------------------------------------------
# libclang deepening pass (optional; used by CI)
# --------------------------------------------------------------------

def load_libclang():
    try:
        import clang.cindex as ci
        ci.Index.create()
        return ci
    except Exception:
        return None


def libclang_pass(ci, compile_db_dir, root, src_root, suppressions,
                  findings, seen_keys):
    """Deepen R1a and R3 with real types from clang.cindex.

    Findings are merged into `findings`, deduplicated against
    `seen_keys` (file:line:rule) produced by the token engine. Any
    parse failure degrades to a warning: the token engine remains the
    floor, clang only raises it.
    """
    import re as _re
    index = ci.Index.create()
    try:
        db = ci.CompilationDatabase.fromDirectory(str(compile_db_dir))
        cmds = list(db.getAllCompileCommands())
    except Exception as e:  # pragma: no cover
        print(f"psb_analyze: libclang: cannot load compile DB: {e}",
              file=sys.stderr)
        return False

    uint64_spellings = ("uint64_t", "unsigned long", "uint_fast64_t")
    ptrkey_re = _re.compile(
        r"(?:unordered_)?(?:map|set)<[^,>]*\*")

    def rel_of(loc):
        try:
            p = pathlib.Path(str(loc.file)).resolve()
            return p.relative_to(root)
        except Exception:
            return None

    def in_scope(loc):
        if loc.file is None:
            return False
        p = pathlib.Path(str(loc.file)).resolve()
        try:
            p.relative_to(src_root)
        except ValueError:
            return False
        return not str(p).endswith(EXEMPT_FILES)

    def emit(cursor, rule, message, key):
        rel = rel_of(cursor.location)
        if rel is None:
            return
        line = cursor.location.line
        dedup = (str(rel), line, rule)
        if dedup in seen_keys:
            return
        seen_keys.add(dedup)
        findings.add(str(rel), line, rule, message, key,
                     suppressions.get(str(rel), {}))

    def walk(cursor):
        for c in cursor.get_children():
            try:
                if c.kind == ci.CursorKind.PARM_DECL \
                        and in_scope(c.location):
                    canon = c.type.get_canonical().spelling
                    if any(s in canon for s in uint64_spellings) \
                            and "*" not in canon \
                            and DOMAIN_NAME_RE.match(c.spelling or ""):
                        emit(c, "R1",
                             f"raw {canon} parameter '{c.spelling}' "
                             f"carries an address/cycle quantity; "
                             f"use the strong domain types",
                             f"param:{c.spelling}")
                elif c.kind == ci.CursorKind.CXX_FOR_RANGE_STMT \
                        and in_scope(c.location):
                    kids = list(c.get_children())
                    if kids:
                        ty = kids[0].type.get_canonical().spelling
                        if "unordered_map" in ty \
                                or "unordered_set" in ty:
                            emit(c, "R3",
                                 "range-for over an unordered "
                                 "container (resolved type: "
                                 f"{ty.split('<')[0]}<...>); if the "
                                 "body feeds stats or traces the "
                                 "order is nondeterministic",
                                 "unordered-iter")
                elif c.kind in (ci.CursorKind.FIELD_DECL,
                                ci.CursorKind.VAR_DECL) \
                        and in_scope(c.location):
                    canon = c.type.get_canonical().spelling
                    if ptrkey_re.search(canon.replace(" ", "")):
                        emit(c, "R3",
                             f"pointer-keyed container "
                             f"({canon.split('<')[0]}<...>); "
                             f"iteration order is allocator noise",
                             "ptr-key")
            except Exception:
                pass
            walk(c)

    parsed = 0
    for cmd in cmds:
        args = [a for a in cmd.arguments][1:]
        # drop the output/source/compile-mode arguments
        clean = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a == cmd.filename or a.endswith(".cc") \
                    or a.endswith(".cpp"):
                continue
            clean.append(a)
        try:
            tu = index.parse(cmd.filename, args=clean)
            walk(tu.cursor)
            parsed += 1
        except Exception as e:
            print(f"psb_analyze: libclang: failed to parse "
                  f"{cmd.filename}: {e}", file=sys.stderr)
    print(f"psb_analyze: libclang pass parsed {parsed}/{len(cmds)} "
          f"TUs", file=sys.stderr)
    return parsed > 0


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def _scan_one(item):
    """Tokenize and scope-scan one file into a private Model.

    Top-level so a multiprocessing pool can pickle it. Everything
    cross-file (R2 facts, rule passes, the dataflow layer) runs
    after the merge, so the per-file work is embarrassingly
    parallel and the merged result is independent of worker order.
    """
    path_str, rel_str = item
    text = pathlib.Path(path_str).read_text(errors="replace")
    toks, sup = tokenize(text)
    scan = FileScan(pathlib.Path(rel_str), toks, raw=text, sup=sup)
    local = Model()
    scan.scan(local)
    return rel_str, scan, sup, local


def _merge_model(dst, src):
    """Fold one file's Model into the cross-TU model.

    Called in sorted-path order for every job count, with the same
    first-wins/overwrite policy per field the serial scan had — the
    merged model (and therefore every finding) is byte-identical
    whether the scans ran on 1 worker or 8.
    """
    for name, ci in src.classes.items():
        d = dst.cls(name)
        d.bases.extend(b for b in ci.bases if b not in d.bases)
        for m, ty in ci.members.items():
            d.members.setdefault(m, ty)
        d.accessors.update(ci.accessors)
        d.declares |= ci.declares
        d.files |= ci.files
    dst.aliases.update(src.aliases)
    dst.hot_roots |= src.hot_roots
    dst.virtuals |= src.virtuals
    for k, rules in src.decl_allows.items():
        dst.decl_allows.setdefault(k, set()).update(rules)


def analyze_files(files, root, jobs=1):
    """Run the token/scope + dataflow engine over `files`."""
    items = []
    for path in sorted(files):
        rel = path.relative_to(root) if path.is_absolute() else path
        items.append((str(path), str(rel)))

    results = None
    if jobs > 1 and len(items) > 1:
        try:
            import multiprocessing as mp
            with mp.Pool(min(jobs, len(items))) as pool:
                results = pool.map(_scan_one, items)
        except (ImportError, OSError) as e:
            print(f"psb_analyze: worker pool unavailable ({e}); "
                  f"falling back to serial scan", file=sys.stderr)
    if results is None:
        results = [_scan_one(it) for it in items]

    # Merge in input (= sorted path) order, never completion order.
    model = Model()
    scans = []
    suppressions = {}
    for rel_str, scan, sup, local in results:
        _merge_model(model, local)
        scans.append((scan, sup))
        suppressions[rel_str] = sup

    for scan, _sup in scans:
        collect_r2_facts(scan, model)

    findings = Findings()
    for scan, sup in scans:
        pass_r1_params(scan, sup, findings)
        pass_r1_raw_arith(scan, sup, findings)
        pass_r1_reentry(scan, model, sup, findings)
        pass_r3_determinism(scan, model, sup, findings)
        pass_r4_trace_purity(scan, sup, findings)
        pass_r6_sweep_shared_state(scan, sup, findings)
        pass_r8_lock_discipline(scan, sup, findings)
    pass_r2_completeness(model, suppressions, findings)
    pass_r7_r9_dataflow(scans, model, findings)
    graph = HotPathGraph(scans, model)
    graph.run(findings)
    findings.callgraph = graph.stats()
    _apply_decl_allows(scans, model, findings)
    return findings, suppressions


def _apply_decl_allows(scans, model, findings):
    """Satellite of the allow() contract: a suppression on a
    function's *declaration* (header) also suppresses findings inside
    the matching out-of-line *definition* — for every rule, not just
    the call-graph ones (which already prune their graph on it)."""
    if not model.decl_allows:
        return
    spans = []  # (file, line_lo, line_hi, rules)
    for scan, _sup in scans:
        toks = scan.toks
        for fn in scan.functions:
            rules = model.decl_allows.get((fn.cls or "", fn.name))
            if not rules or fn.body_lo >= len(toks):
                continue
            lo_line = toks[max(fn.body_lo - 1, 0)].line
            hi_line = toks[min(fn.body_hi, len(toks) - 1)].line
            spans.append((str(scan.rel), lo_line, hi_line, rules))
    if not spans:
        return
    kept = []
    for f in findings.items:
        drop = any(f["file"] == file and lo <= f["line"] <= hi
                   and f["rule"] in rules
                   for file, lo, hi, rules in spans)
        if not drop:
            kept.append(f)
    findings.items = kept


def load_baseline(path):
    if path is None or not path.exists():
        return set()
    try:
        data = json.loads(path.read_text())
        return {f["key"] for f in data.get("findings", [])}
    except (ValueError, KeyError) as e:
        print(f"psb_analyze: bad baseline {path}: {e}",
              file=sys.stderr)
        sys.exit(EXIT_ERROR)


def run_tree(args):
    root = pathlib.Path(args.root).resolve()
    src = root / "src"
    dir_mode = not src.is_dir()
    if dir_mode:
        # Directory mode: analyze the .hh/.cc files under `root`
        # directly (fixture corpora, vendored subtrees). No compile
        # database applies, so the token engine runs alone.
        files = sorted(root.rglob("*.hh")) + sorted(root.rglob("*.cc"))
        if not files:
            print(f"psb_analyze: no src/ and no .hh/.cc files under "
                  f"{root}", file=sys.stderr)
            return EXIT_ERROR
        print(f"psb_analyze: directory mode ({len(files)} files, "
              f"token engine only)", file=sys.stderr)
        compile_db = None
    else:
        compile_db = None
        cand = pathlib.Path(args.compile_db) if args.compile_db \
            else root / "build" / "compile_commands.json"
        if cand.exists():
            compile_db = cand.resolve()
            cml = root / "CMakeLists.txt"
            if cml.exists() \
                    and compile_db.stat().st_mtime < \
                    cml.stat().st_mtime:
                msg = (f"psb_analyze: {cand} is older than "
                       f"CMakeLists.txt — stale compile database; "
                       f"re-run: cmake -B build -S {root}")
                if args.backend == "internal":
                    print(msg + " (continuing: token engine only)",
                          file=sys.stderr)
                    compile_db = None
                else:
                    print(msg, file=sys.stderr)
                    return EXIT_NO_COMPILE_DB
        else:
            msg = (f"psb_analyze: {cand} not found — configure "
                   f"first: cmake -B build -S {root}")
            if args.backend == "internal":
                print(msg + " (continuing: token engine only)",
                      file=sys.stderr)
            else:
                print(msg, file=sys.stderr)
                return EXIT_NO_COMPILE_DB
        files = sorted(src.rglob("*.hh")) + sorted(src.rglob("*.cc"))
        # The rules apply to the offline tooling and the benchmark
        # layer too: a nondeterministic merge key in psb-sweep or a
        # tainted bench JSON field corrupts golden output the same
        # way simulator code would.
        tools_dir = root / "tools"
        if tools_dir.is_dir():
            files += sorted(tools_dir.glob("*.cc"))
        bench_dir = root / "bench"
        if bench_dir.is_dir():
            files += sorted(bench_dir.rglob("*.hh"))
            files += sorted(bench_dir.rglob("*.cc"))
    findings, suppressions = analyze_files(files, root,
                                           jobs=args.jobs)

    backend = "internal"
    if args.backend in ("auto", "libclang"):
        ci = load_libclang()
        if ci is None:
            if args.backend == "libclang":
                print("psb_analyze: clang.cindex not importable "
                      "(pip install libclang)", file=sys.stderr)
                return EXIT_ERROR
        elif compile_db is not None:
            seen = {(f["file"], f["line"], f["rule"])
                    for f in findings.items}
            if libclang_pass(ci, compile_db.parent, root, src.resolve(),
                             suppressions, findings, seen):
                backend = "internal+libclang"
            elif args.backend == "libclang":
                return EXIT_ERROR
    print(f"psb_analyze: backend={backend}", file=sys.stderr)

    baseline = load_baseline(
        pathlib.Path(args.baseline) if args.baseline
        else root / "tools" / "psb_analyze_baseline.json")
    fresh = [f for f in findings.sorted() if f["key"] not in baseline]

    if args.json:
        payload = {"backend": backend, "root": str(root),
                   "findings": fresh}
        pathlib.Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if args.callgraph_json:
        pathlib.Path(args.callgraph_json).write_text(
            json.dumps(findings.callgraph, indent=2, sort_keys=True)
            + "\n")

    for f in fresh:
        print(format_finding(f["file"], f["line"], f["rule"],
                             f["message"]))
    if fresh:
        print(f"psb_analyze: {len(fresh)} finding(s)",
              file=sys.stderr)
        return EXIT_FINDINGS
    print("psb_analyze: clean")
    return EXIT_CLEAN


def run_self_test(args):
    fixture_dir = pathlib.Path(
        args.root if args.root != "." or not args.self_test
        else ".").resolve()
    if args.self_test and args.root == ".":
        # default: tests/analyze next to this script's repo root
        fixture_dir = (pathlib.Path(__file__).resolve().parent.parent
                       / "tests" / "analyze")
    golden_path = fixture_dir / "golden_findings.json"
    if not golden_path.exists():
        print(f"psb_analyze: no golden_findings.json in {fixture_dir}",
              file=sys.stderr)
        return EXIT_ERROR
    golden = json.loads(golden_path.read_text())

    failures = []
    for name, expected_rules in sorted(golden.items()):
        path = fixture_dir / name
        if not path.exists():
            failures.append(f"{name}: fixture missing")
            continue
        files = [path]
        prelude = fixture_dir / "fixture_prelude.hh"
        if prelude.exists():
            files.append(prelude)
        findings, _sup = analyze_files(files, fixture_dir)
        got = sorted({f["rule"] for f in findings.items
                      if f["file"] == name})
        want = sorted(expected_rules)
        if got != want:
            detail = "; ".join(
                format_finding(f['file'], f['line'], f['rule'],
                               f['message'])
                for f in findings.sorted() if f["file"] == name)
            failures.append(
                f"{name}: expected rules {want}, got {got}"
                + (f" [{detail}]" if detail else ""))

    # Suppression round trip for the dataflow rules: inserting one
    # `// psb-analyze: allow(Rn)` above the first finding must
    # silence exactly that finding and nothing else — proving the
    # suppression plumbing reaches the new passes (the bad fixtures
    # carry at least two findings each so "exactly one" is a real
    # assertion, not 1 -> 0).
    import tempfile
    for rule in ("R7", "R8", "R9", "R10", "R11", "R12"):
        name = next((n for n, rules in sorted(golden.items())
                     if rule in rules), None)
        if name is None:
            failures.append(f"roundtrip {rule}: no bad fixture "
                            f"declares this rule in the golden file")
            continue
        path = fixture_dir / name
        if not path.exists():
            continue  # already reported missing above
        findings, _sup = analyze_files([path], fixture_dir)
        mine = sorted(
            (f for f in findings.items
             if f["rule"] == rule and f["file"] == name),
            key=lambda f: f["line"])
        if not mine:
            failures.append(f"roundtrip {rule}: {name} produced no "
                            f"{rule} findings to suppress")
            continue
        before = len(mine)
        lines = path.read_text().splitlines(keepends=True)
        lines.insert(mine[0]["line"] - 1,
                     f"// psb-analyze: allow({rule})\n")
        with tempfile.TemporaryDirectory() as td:
            tmp = pathlib.Path(td) / name
            tmp.write_text("".join(lines))
            redo, _sup = analyze_files([tmp], pathlib.Path(td))
            after = len([f for f in redo.items
                         if f["rule"] == rule and f["file"] == name])
        if after != before - 1:
            failures.append(
                f"roundtrip {rule}: allow() above line "
                f"{mine[0]['line']} of {name} changed the finding "
                f"count {before} -> {after}, expected "
                f"{before - 1}")

    # Declaration-site suppression round trip: an allow() on a method
    # *declaration* must also silence the matching out-of-line
    # *definition*. The clean fixture carries exactly that shape;
    # stripping the allow comment must surface the finding again —
    # proving the suppression is doing the work, not the fixture
    # being accidentally clean.
    decl_fixture = fixture_dir / "r10_decl_allow_clean.hh"
    if decl_fixture.exists():
        text = decl_fixture.read_text()
        stripped_lines = [
            ln for ln in text.splitlines(keepends=True)
            if "psb-analyze:" not in ln]
        if len(stripped_lines) == len(text.splitlines(keepends=True)):
            failures.append("decl-allow: r10_decl_allow_clean.hh has "
                            "no psb-analyze: allow() comment to "
                            "strip")
        else:
            with tempfile.TemporaryDirectory() as td:
                tmp = pathlib.Path(td) / decl_fixture.name
                tmp.write_text("".join(stripped_lines))
                redo, _sup = analyze_files([tmp], pathlib.Path(td))
                surfaced = [f for f in redo.items
                            if f["rule"] == "R10"]
            if not surfaced:
                failures.append(
                    "decl-allow: stripping the declaration-site "
                    "allow() from r10_decl_allow_clean.hh surfaced "
                    "no R10 finding — the clean fixture is not "
                    "exercising declaration-site suppression")
    else:
        failures.append("decl-allow: fixture r10_decl_allow_clean.hh "
                        "missing")

    if failures:
        for f in failures:
            print(f"psb_analyze --self-test FAIL: {f}")
        print(f"psb_analyze: self-test {len(failures)} failure(s)",
              file=sys.stderr)
        return EXIT_FINDINGS
    print(f"psb_analyze: self-test ok "
          f"({len(golden)} fixtures, exact rule match; suppression "
          f"round trip for R7-R12; declaration-site allow() round "
          f"trip)")
    return EXIT_CLEAN


def main():
    ap = argparse.ArgumentParser(
        description="Compile-aware AST-level analyzer for the PSB "
                    "tree; see tools/psb_rules.py for the rule "
                    "catalog shared with psb_lint.")
    ap.add_argument("root", nargs="?", default=".",
                    help="repo root (default .) or, with "
                         "--self-test, the fixture directory")
    ap.add_argument("--compile-db",
                    help="path to compile_commands.json (default: "
                         "<root>/build/compile_commands.json)")
    ap.add_argument("--backend",
                    choices=("auto", "internal", "libclang"),
                    default="auto")
    ap.add_argument("--baseline",
                    help="findings baseline JSON (default: "
                         "<root>/tools/psb_analyze_baseline.json)")
    ap.add_argument("--json", help="write findings JSON here")
    ap.add_argument("--callgraph-json",
                    help="write hot-path call-graph size metrics "
                         "(hot_roots/hot_reachable/hot_edges) here; "
                         "psb-bench embeds them as deterministic "
                         "fields so bench-diff catches discipline "
                         "regressions")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="tokenize/scan N files in parallel; "
                         "findings are byte-identical at any N")
    ap.add_argument("--self-test", action="store_true",
                    help="run the tests/analyze fixture corpus")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rid, (slug, why) in RULES.items():
            print(f"{rid}  {slug:22s} {why}")
        return EXIT_CLEAN
    if args.self_test:
        return run_self_test(args)
    return run_tree(args)


if __name__ == "__main__":
    sys.exit(main())
