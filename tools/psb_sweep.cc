/**
 * @file
 * psb-sweep — run a design-space sweep from a declarative JSON spec
 * on the parallel sweep engine (sim/sweep.hh) and emit one merged
 * stats document keyed by job id.
 *
 * Usage:
 *   psb-sweep SPEC.json [options]
 *     --jobs N        worker threads (overrides the spec's "jobs")
 *     --out PATH      merged stats JSON ("-" = stdout, the default)
 *     --retries N     extra attempts after a job failure (default 0)
 *     --timeout-ms N  per-job deadline, 0 = none (default 0)
 *     --list          print the expanded job keys and exit
 *     --quiet         suppress the per-job progress lines
 *     --help
 *
 * The merged document is byte-identical regardless of --jobs and of
 * job completion order (jobs are keyed and sorted; every value comes
 * from the deterministic %.17g stats writer). Exit status: 0 when
 * every job succeeded, 1 otherwise (the merged document is still
 * written, with per-job "status"/"error" members).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/sweep.hh"
#include "sim/sweep_spec.hh"

namespace
{

using namespace psb;

[[noreturn]] void
usage(int code)
{
    std::fputs(
        "psb-sweep: run a config x workload sweep in parallel\n"
        "  psb-sweep SPEC.json [options]\n"
        "  --jobs N        worker threads (overrides the spec)\n"
        "  --out PATH      merged stats JSON (\"-\" = stdout)\n"
        "  --retries N     extra attempts after a job failure\n"
        "  --timeout-ms N  per-job deadline in ms (0 = none)\n"
        "  --list          print the expanded job keys and exit\n"
        "  --quiet         no per-job progress lines\n"
        "  --help\n"
        "spec: {\"jobs\": N, \"workloads\": [...], \"seeds\": [...],\n"
        "       \"base\": {key: value, ...}, \"axes\": {key: [v, ...]}}\n"
        "config keys mirror the psb-sim flags (sim/config.hh)\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

uint64_t
parseNum(const char *value, const char *flag)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') {
        std::fprintf(stderr, "psb-sweep: bad value '%s' for %s\n",
                     value, flag);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string specPath;
    std::string outPath = "-";
    uint64_t jobsOverride = 0;
    uint64_t retries = 0;
    uint64_t timeoutMs = 0;
    bool quiet = false;
    bool listOnly = false;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "psb-sweep: %s needs a value\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(0);
        } else if (flag == "--jobs") {
            jobsOverride = parseNum(value(), "--jobs");
            if (jobsOverride == 0) {
                std::fputs("psb-sweep: --jobs must be positive\n",
                           stderr);
                return 2;
            }
        } else if (flag == "--out") {
            outPath = value();
        } else if (flag == "--retries") {
            retries = parseNum(value(), "--retries");
        } else if (flag == "--timeout-ms") {
            timeoutMs = parseNum(value(), "--timeout-ms");
        } else if (flag == "--quiet") {
            quiet = true;
        } else if (flag == "--list") {
            listOnly = true;
        } else if (!flag.empty() && flag[0] == '-') {
            std::fprintf(stderr, "psb-sweep: unknown flag '%s'\n",
                         flag.c_str());
            usage(2);
        } else if (specPath.empty()) {
            specPath = flag;
        } else {
            std::fprintf(stderr, "psb-sweep: extra argument '%s'\n",
                         flag.c_str());
            usage(2);
        }
    }
    if (specPath.empty()) {
        std::fputs("psb-sweep: missing SPEC.json\n", stderr);
        usage(2);
    }

    std::ifstream specFile(specPath, std::ios::binary);
    if (!specFile) {
        std::fprintf(stderr, "psb-sweep: cannot read '%s'\n",
                     specPath.c_str());
        return 2;
    }
    std::ostringstream specText;
    specText << specFile.rdbuf();

    SweepSpec spec;
    std::string error;
    if (!parseSweepSpec(specText.str(), spec, error)) {
        std::fprintf(stderr, "psb-sweep: %s\n", error.c_str());
        return 2;
    }

    std::vector<SweepRun> runs;
    if (!expandSweepSpec(spec, runs, error)) {
        std::fprintf(stderr, "psb-sweep: %s\n", error.c_str());
        return 2;
    }
    if (listOnly) {
        for (const SweepRun &run : runs)
            std::printf("%s\n", run.key.c_str());
        std::fprintf(stderr, "psb-sweep: %zu job(s)\n", runs.size());
        return 0;
    }

    std::vector<SweepJob> jobs;
    jobs.reserve(runs.size());
    for (const SweepRun &run : runs)
        jobs.push_back(makeSimJob(run));

    SweepOptions opts;
    opts.jobs = jobsOverride ? unsigned(jobsOverride) : spec.jobs;
    opts.maxRetries = unsigned(retries);
    opts.timeout = std::chrono::milliseconds(timeoutMs);
    opts.progress = quiet ? nullptr : &std::cerr;

    if (!quiet) {
        std::fprintf(stderr,
                     "psb-sweep: %zu job(s) on %u worker thread(s)\n",
                     jobs.size(), opts.jobs);
    }

    SweepEngine engine(opts);
    std::vector<JobResult> results = engine.run(jobs);
    std::string merged = SweepEngine::mergeStatsJson(results);

    if (outPath == "-") {
        std::fputs(merged.c_str(), stdout);
    } else {
        std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "psb-sweep: cannot write '%s'\n",
                         outPath.c_str());
            return 2;
        }
        out << merged;
    }

    unsigned failed = 0;
    for (const JobResult &r : results)
        failed += r.status != JobStatus::Ok ? 1 : 0;
    if (failed > 0) {
        std::fprintf(stderr, "psb-sweep: %u of %zu job(s) failed\n",
                     failed, results.size());
        return 1;
    }
    if (!quiet) {
        std::fprintf(stderr, "psb-sweep: all %zu job(s) ok\n",
                     results.size());
    }
    return 0;
}
