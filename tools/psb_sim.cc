/**
 * @file
 * psb-sim — the command-line front end to the simulator: pick a
 * workload and a machine configuration, run, and get the full report.
 * The downstream-user entry point that needs no C++.
 *
 * Usage:
 *   psb-sim [options]
 *     --workload NAME     health|burg|deltablue|gs|sis|turb3d|
 *                         graph|hashjoin|logscan|fuzz
 *                         (default health)
 *     --fuzz-spec PATH    fuzz scenario JSON ("-" = stdin); implies
 *                         and requires --workload fuzz
 *     --prefetcher NAME   none|pcstride|psb|sequential|nextline|
 *                         markov|mindelta          (default psb)
 *     --alloc NAME        2miss|conf|always        (default conf)
 *     --sched NAME        rr|priority              (default priority)
 *     --insts N           measured instructions    (default 1000000)
 *     --warmup N          warm-up instructions     (default 250000)
 *     --seed N            workload seed            (default 1)
 *     --l1d-kb N          L1D capacity in KB       (default 32)
 *     --l1d-assoc N       L1D associativity        (default 4)
 *     --buffers N         stream buffers           (default 8)
 *     --entries N         entries per buffer       (default 4)
 *     --markov-entries N  Markov table entries     (default 2048)
 *     --delta-bits N      Markov delta width       (default 16)
 *     --order K           order-K context predictor instead of SFM
 *     --nodis             disable memory disambiguation
 *     --tlb-cache         cache TLB translations in buffers (§4.5)
 *     --no-fastforward    tick every cycle (A/B timing; results are
 *                         identical either way)
 *     --assert-no-alloc   abort on any heap allocation inside the
 *                         steady-state cycle loop (needs a
 *                         PSB_ALLOC_GUARD build; rule R10)
 *     --stats-json PATH   write every registered stat as
 *                         deterministic JSON ("-" = stdout)
 *     --stats             print the full stats registry as text
 *     --trace FLAGS       enable event tracing: comma-separated flag
 *                         list (psb,sched,sfm,markov,bus,cache,mshr,
 *                         cpu) or "all"
 *     --trace-out PATH    trace sink ("-" = stdout; default stderr)
 *     --trace-format F    text|jsonl|chrome         (default text)
 *     --trace-start N     first traced cycle        (default 0)
 *     --trace-end N       first untraced cycle      (default none)
 *     --interval-stats N  emit a stats-delta JSONL record every N
 *                         measured cycles (requires --interval-out)
 *     --interval-out PATH interval time-series sink ("-" = stdout)
 *     --help
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <iostream>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "util/alloc_guard.hh"
#include "util/logging.hh"
#include "util/trace.hh"
#include "workloads/fuzz_workload.hh"
#include "workloads/workload.hh"

namespace
{

using namespace psb;

[[noreturn]] void
usage(int code)
{
    std::fputs(
        "psb-sim: run one predictor-directed stream buffer "
        "simulation\n"
        "  --workload NAME     health|burg|deltablue|gs|sis|turb3d|"
        "graph|hashjoin|logscan|fuzz\n"
        "  --fuzz-spec PATH    fuzz scenario JSON (\"-\" = stdin); "
        "requires --workload fuzz\n"
        "  --prefetcher NAME   none|pcstride|psb|sequential|nextline|"
        "markov|mindelta\n"
        "  --alloc NAME        2miss|conf|always\n"
        "  --sched NAME        rr|priority\n"
        "  --insts N --warmup N --seed N\n"
        "  --l1d-kb N --l1d-assoc N\n"
        "  --buffers N --entries N --markov-entries N --delta-bits N\n"
        "  --order K --nodis --tlb-cache --no-fastforward\n"
        "  --assert-no-alloc   fatal heap use in the steady-state "
        "loop (PSB_ALLOC_GUARD builds)\n"
        "  --stats-json PATH --stats\n"
        "  --trace FLAGS       comma list of psb,sched,sfm,markov,bus,"
        "cache,mshr,cpu or all\n"
        "  --trace-out PATH    trace sink (\"-\" = stdout; default "
        "stderr)\n"
        "  --trace-format F    text|jsonl|chrome (chrome opens in "
        "chrome://tracing)\n"
        "  --trace-start N --trace-end N   traced cycle window\n"
        "  --interval-stats N  stats-delta JSONL record every N "
        "measured cycles\n"
        "  --interval-out PATH interval time-series sink (\"-\" = "
        "stdout)\n"
        "  --help\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

uint64_t
parseNum(const char *value, const char *flag)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') {
        std::fprintf(stderr, "psb-sim: bad value '%s' for %s\n", value,
                     flag);
        std::exit(1);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "health";
    std::string fuzzSpecPath;
    std::string statsJsonPath;
    std::string traceFlags;
    std::string traceOut;
    std::string traceFormat = "text";
    uint64_t traceStart = 0;
    uint64_t traceEnd = ~uint64_t(0);
    uint64_t intervalCycles = 0;
    std::string intervalOut;
    bool printStats = false;
    uint64_t seed = 1;
    SimConfig cfg;
    cfg.prefetcher = PrefetcherKind::Psb;
    cfg.psb.alloc = AllocPolicy::Confidence;
    cfg.psb.sched = SchedPolicy::Priority;
    cfg.warmupInstructions = 250'000;
    cfg.maxInstructions = 1'000'000;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "psb-sim: %s needs a value\n",
                             flag.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(0);
        } else if (flag == "--workload") {
            workload = value();
        } else if (flag == "--fuzz-spec") {
            fuzzSpecPath = value();
        } else if (flag == "--prefetcher") {
            std::string v = value();
            if (v == "none")
                cfg.prefetcher = PrefetcherKind::None;
            else if (v == "pcstride")
                cfg.prefetcher = PrefetcherKind::PcStride;
            else if (v == "psb")
                cfg.prefetcher = PrefetcherKind::Psb;
            else if (v == "sequential")
                cfg.prefetcher = PrefetcherKind::Sequential;
            else if (v == "nextline")
                cfg.prefetcher = PrefetcherKind::NextLine;
            else if (v == "markov")
                cfg.prefetcher = PrefetcherKind::MarkovDemand;
            else if (v == "mindelta")
                cfg.prefetcher = PrefetcherKind::MinDelta;
            else
                usage(1);
        } else if (flag == "--alloc") {
            std::string v = value();
            if (v == "2miss")
                cfg.psb.alloc = AllocPolicy::TwoMiss;
            else if (v == "conf")
                cfg.psb.alloc = AllocPolicy::Confidence;
            else if (v == "always")
                cfg.psb.alloc = AllocPolicy::Always;
            else
                usage(1);
        } else if (flag == "--sched") {
            std::string v = value();
            if (v == "rr")
                cfg.psb.sched = SchedPolicy::RoundRobin;
            else if (v == "priority")
                cfg.psb.sched = SchedPolicy::Priority;
            else
                usage(1);
        } else if (flag == "--insts") {
            cfg.maxInstructions = parseNum(value(), "--insts");
        } else if (flag == "--warmup") {
            cfg.warmupInstructions = parseNum(value(), "--warmup");
        } else if (flag == "--seed") {
            seed = parseNum(value(), "--seed");
        } else if (flag == "--l1d-kb") {
            cfg.memory.l1d.sizeBytes =
                parseNum(value(), "--l1d-kb") * 1024;
        } else if (flag == "--l1d-assoc") {
            cfg.memory.l1d.assoc =
                unsigned(parseNum(value(), "--l1d-assoc"));
        } else if (flag == "--buffers") {
            cfg.psb.buffers.numBuffers =
                unsigned(parseNum(value(), "--buffers"));
        } else if (flag == "--entries") {
            cfg.psb.buffers.entriesPerBuffer =
                unsigned(parseNum(value(), "--entries"));
        } else if (flag == "--markov-entries") {
            cfg.sfm.markov.entries =
                unsigned(parseNum(value(), "--markov-entries"));
        } else if (flag == "--delta-bits") {
            cfg.sfm.markov.deltaBits =
                unsigned(parseNum(value(), "--delta-bits"));
        } else if (flag == "--order") {
            cfg.psbContextOrder = unsigned(parseNum(value(), "--order"));
        } else if (flag == "--stats-json") {
            statsJsonPath = value();
        } else if (flag == "--stats") {
            printStats = true;
        } else if (flag == "--trace") {
            traceFlags = value();
        } else if (flag == "--trace-out") {
            traceOut = value();
        } else if (flag == "--trace-format") {
            traceFormat = value();
        } else if (flag == "--trace-start") {
            traceStart = parseNum(value(), "--trace-start");
        } else if (flag == "--trace-end") {
            traceEnd = parseNum(value(), "--trace-end");
        } else if (flag == "--interval-stats") {
            intervalCycles = parseNum(value(), "--interval-stats");
            if (intervalCycles == 0)
                fatal("--interval-stats period must be positive");
        } else if (flag == "--interval-out") {
            intervalOut = value();
        } else if (flag == "--nodis") {
            cfg.core.disambiguation = DisambiguationMode::None;
        } else if (flag == "--tlb-cache") {
            cfg.psb.buffers.cacheTlbTranslation = true;
        } else if (flag == "--no-fastforward") {
            cfg.fastForward = false;
        } else if (flag == "--assert-no-alloc") {
            if (!AllocGuard::compiledIn()) {
                fatal("--assert-no-alloc needs a PSB_ALLOC_GUARD "
                      "build (cmake --preset alloc-guard)");
            }
            AllocGuard::arm();
        } else {
            std::fprintf(stderr, "psb-sim: unknown flag '%s'\n",
                         flag.c_str());
            usage(1);
        }
    }

    std::unique_ptr<Workload> trace;
    if (!fuzzSpecPath.empty()) {
        if (workload != "fuzz")
            fatal("--fuzz-spec requires --workload fuzz");
        std::ostringstream text;
        if (fuzzSpecPath == "-") {
            text << std::cin.rdbuf();
        } else {
            std::ifstream in(fuzzSpecPath, std::ios::binary);
            if (!in)
                fatal("cannot read fuzz spec '%s'",
                      fuzzSpecPath.c_str());
            text << in.rdbuf();
        }
        FuzzSpec spec;
        std::string error;
        if (!parseFuzzSpec(text.str(), spec, error))
            fatal("%s: %s", fuzzSpecPath.c_str(), error.c_str());
        trace = std::make_unique<FuzzWorkload>(spec);
    } else {
        trace = psb::makeWorkload(workload, seed);
    }
    if (!trace) {
        std::fprintf(stderr, "psb-sim: unknown workload '%s'\n",
                     workload.c_str());
        return 1;
    }

    if (!traceFlags.empty()) {
        std::string bad;
        auto mask = TraceManager::parseFlags(traceFlags, bad);
        if (!mask) {
            fatal("unknown trace flag '%s' (valid: %s, or 'all')",
                  bad.c_str(), TraceManager::validFlagList().c_str());
        }
        auto format = TraceManager::parseFormat(traceFormat);
        if (!format) {
            fatal("unknown trace format '%s' (valid: text, jsonl, "
                  "chrome)",
                  traceFormat.c_str());
        }
        Cycle window_start{traceStart};
        Cycle window_end = traceEnd == ~uint64_t(0) ? Cycle::max()
                                                    : Cycle{traceEnd};
        if (traceOut.empty()) {
            TraceManager::get().configure(*mask, *format, std::cerr,
                                          window_start, window_end);
        } else if (!TraceManager::get().configureFile(
                       *mask, *format, traceOut, window_start,
                       window_end)) {
            fatal("cannot write trace to '%s'", traceOut.c_str());
        }
    } else if (traceOut != "" || traceFormat != "text" ||
               traceStart != 0 || traceEnd != ~uint64_t(0)) {
        fatal("--trace-out/--trace-format/--trace-start/--trace-end "
              "need --trace FLAGS");
    }

    if (intervalCycles > 0 && intervalOut.empty())
        fatal("--interval-stats needs --interval-out PATH");
    if (intervalCycles == 0 && !intervalOut.empty())
        fatal("--interval-out needs --interval-stats N");

    cfg.harmonize();
    psb::Simulator sim(cfg, *trace);

    std::ofstream intervalFile;
    if (intervalCycles > 0) {
        if (intervalOut == "-") {
            sim.setIntervalStats(intervalCycles, std::cout);
        } else {
            intervalFile.open(intervalOut,
                              std::ios::binary | std::ios::trunc);
            if (!intervalFile) {
                fatal("cannot write interval stats to '%s'",
                      intervalOut.c_str());
            }
            sim.setIntervalStats(intervalCycles, intervalFile);
        }
    }

    psb::SimResult r = sim.run();
    TraceManager::get().finish();
    psb::printReport(workload + " / " + cfg.label(), r);

    if (printStats) {
        std::fputs(psb::formatStatsReport(workload + " stats",
                                          sim.statsRegistry())
                       .c_str(),
                   stdout);
    }

    if (!statsJsonPath.empty()) {
        std::string json = sim.statsJson();
        if (statsJsonPath == "-") {
            std::fputs(json.c_str(), stdout);
        } else {
            std::ofstream out(statsJsonPath,
                              std::ios::binary | std::ios::trunc);
            if (!out) {
                std::fprintf(stderr,
                             "psb-sim: cannot write stats JSON to "
                             "'%s'\n",
                             statsJsonPath.c_str());
                return 1;
            }
            out << json;
        }
    }
    return 0;
}
