#!/usr/bin/env python3
"""Summarize and validate a psb-sim event trace.

Reads a trace produced by ``psb-sim --trace ... --trace-format
jsonl|chrome`` and checks it against the schema the simulator promises:

* every record carries the expected fields with the expected types;
* flag names are drawn from the known set;
* event cycles are monotonically non-decreasing (the trace is written
  in simulation order);
* span (begin/end) events balance: every stream-buffer alloc has a
  matching dealloc/replace, with no end before a begin — the lifetime
  accounting the Chrome view depends on.

With ``--intervals FILE --stats STATS.json`` it additionally checks the
interval-stats invariant: per-interval deltas sum to the final
``--stats-json`` counter for every scalar stat.

Exit status is 0 when every check passes, 1 otherwise.

Usage:
  tools/psb_trace.py TRACE [--format jsonl|chrome] [--quiet]
  tools/psb_trace.py --intervals f.jsonl --stats stats.json [--quiet]
"""

import argparse
import collections
import json
import sys

VALID_FLAGS = ("psb", "sched", "sfm", "markov", "bus", "cache", "mshr",
               "cpu", "prefetch")

JSONL_FIELDS = {
    "cycle": int,
    "flag": str,
    "kind": str,
    "name": str,
    "track": int,
    "args": str,
}


class TraceError(Exception):
    pass


def parse_jsonl(path):
    """Yield (cycle, flag, kind, name, track) tuples from a JSONL trace."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: bad JSON: {exc}")
            for field, typ in JSONL_FIELDS.items():
                if field not in rec:
                    raise TraceError(
                        f"{path}:{lineno}: missing field '{field}'")
                if not isinstance(rec[field], typ):
                    raise TraceError(
                        f"{path}:{lineno}: field '{field}' is not "
                        f"{typ.__name__}")
            if rec["kind"] not in ("I", "B", "E"):
                raise TraceError(
                    f"{path}:{lineno}: bad kind '{rec['kind']}'")
            yield (rec["cycle"], rec["flag"], rec["kind"], rec["name"],
                   rec["track"], rec["args"])


def parse_chrome(path):
    """Yield event tuples from a Chrome trace-event JSON array."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            events = json.load(fh)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: bad JSON: {exc}")
    if not isinstance(events, list):
        raise TraceError(f"{path}: top level is not a JSON array")
    kind_of = {"B": "B", "E": "E", "i": "I"}
    for n, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise TraceError(f"{path}: event {n} is not an object")
        ph = ev.get("ph")
        if ph == "M":  # metadata (process names)
            continue
        if ph not in kind_of:
            raise TraceError(f"{path}: event {n} has bad ph '{ph}'")
        cat = ev.get("cat")
        if cat == "meta":
            continue
        for field in ("name", "cat", "ts", "pid", "tid"):
            if field not in ev:
                raise TraceError(
                    f"{path}: event {n} missing field '{field}'")
        yield (int(ev["ts"]), ev["cat"], kind_of[ph], ev["name"],
               int(ev["tid"]) - 1,
               ev.get("args", {}).get("detail", ""))


class PrefetchLifecycle:
    """Per-lineage-track state for the prefetch lifecycle check.

    The attribution layer promises: each track opens at most one "pf"
    span (issue), closes it exactly once, and reports its terminal
    outcome ("pf.outcome" instant) exactly once.  Tracks whose span is
    still open when the trace window closes get a synthetic end at the
    final emitted cycle, with no outcome — those are exempted; an
    outcome without a begin means the issue fell before the window
    opened, which is also legal.
    """

    __slots__ = ("begins", "outcomes", "end_cycle", "has_end")

    def __init__(self):
        self.begins = 0
        self.outcomes = 0
        self.end_cycle = None
        self.has_end = False


def check_prefetch_event(pf_tracks, label, cycle, kind, name, track):
    if kind in ("B", "E") and name != "pf":
        raise TraceError(
            f"{label}: prefetch span event named '{name}' at cycle "
            f"{cycle}; lifecycle spans must be named 'pf'")
    if kind == "I" and name != "pf.outcome":
        raise TraceError(
            f"{label}: prefetch instant named '{name}' at cycle "
            f"{cycle}; terminal outcomes must be named 'pf.outcome'")
    state = pf_tracks.setdefault(track, PrefetchLifecycle())
    if kind == "B":
        state.begins += 1
        if state.begins > 1:
            raise TraceError(
                f"{label}: track {track} issued twice (second 'pf' "
                f"begin at cycle {cycle}); lineage ids are unique")
    elif kind == "E":
        state.has_end = True
        state.end_cycle = cycle
    else:
        state.outcomes += 1
        if state.outcomes > 1:
            raise TraceError(
                f"{label}: track {track} has a second terminal "
                f"outcome at cycle {cycle}; outcomes are "
                f"exactly-once per lineage")


def check_prefetch_lifecycles(pf_tracks, label, last_cycle):
    """Post-stream check: every opened lineage settled exactly once."""
    for track, state in sorted(pf_tracks.items()):
        if state.begins == 0:
            continue  # outcome/end only: issue predates the window
        if state.outcomes == 1:
            continue
        # A span force-closed at the trace's final emitted cycle is
        # the writer's synthetic end for a window-clipped lifetime.
        if state.has_end and state.end_cycle == last_cycle:
            continue
        raise TraceError(
            f"{label}: prefetch track {track} was issued but never "
            f"reported a terminal outcome — the conservation "
            f"invariant (issued == settled) is broken in the trace")


def validate_events(events, label):
    """Run all event-stream checks; return (counts, spans, n_events)."""
    counts = collections.Counter()
    kind_counts = collections.Counter()
    open_spans = collections.Counter()
    pf_tracks = {}
    last_cycle = None
    n = 0
    for cycle, flag, kind, name, track, _args in events:
        n += 1
        if flag not in VALID_FLAGS:
            raise TraceError(f"{label}: unknown flag '{flag}'")
        if last_cycle is not None and cycle < last_cycle:
            raise TraceError(
                f"{label}: cycle went backwards ({last_cycle} -> "
                f"{cycle})")
        last_cycle = cycle
        counts[flag] += 1
        kind_counts[kind] += 1
        if flag == "prefetch":
            check_prefetch_event(pf_tracks, label, cycle, kind, name,
                                 track)
        key = (flag, name, track)
        if kind == "B":
            open_spans[key] += 1
        elif kind == "E":
            if open_spans[key] == 0:
                raise TraceError(
                    f"{label}: end without begin for {key} at cycle "
                    f"{cycle}")
            open_spans[key] -= 1
    unbalanced = {k: v for k, v in open_spans.items() if v}
    if unbalanced:
        raise TraceError(
            f"{label}: {len(unbalanced)} span(s) never closed "
            f"(first: {sorted(unbalanced)[0]}) — every alloc needs a "
            f"matching dealloc/replace")
    check_prefetch_lifecycles(pf_tracks, label, last_cycle)
    return counts, kind_counts, n


def check_intervals(interval_path, stats_path):
    """Check that per-interval scalar deltas sum to the final stats."""
    with open(stats_path, "r", encoding="utf-8") as fh:
        final = json.load(fh)

    sums = collections.defaultdict(int)
    n_intervals = 0
    prev_end = None
    with open(interval_path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            for field in ("interval", "start", "end", "delta", "values"):
                if field not in rec:
                    raise TraceError(
                        f"{interval_path}:{lineno}: missing '{field}'")
            if rec["interval"] != n_intervals:
                raise TraceError(
                    f"{interval_path}:{lineno}: interval index "
                    f"{rec['interval']}, expected {n_intervals}")
            if prev_end is not None and rec["start"] != prev_end:
                raise TraceError(
                    f"{interval_path}:{lineno}: start {rec['start']} != "
                    f"previous end {prev_end}")
            prev_end = rec["end"]
            n_intervals += 1
            for path, delta in rec["delta"].items():
                sums[path] += delta

    # Every counter-kind stat must telescope: the writer only puts
    # Scalar stats in "delta", so the delta paths *are* the counter
    # set (JSON types can't tell — integer-valued reals like
    # percentiles also parse as int).
    missing = [p for p in sums if p not in final]
    if missing:
        raise TraceError(
            f"interval stats contain unknown paths: {missing[:5]}")
    mismatches = []
    n_checked = 0
    for path, total in sorted(sums.items()):
        n_checked += 1
        if total != final[path]:
            mismatches.append((path, total, final[path]))
    if mismatches:
        lines = "\n".join(
            f"  {p}: sum(deltas)={s} final={f}"
            for p, s, f in mismatches[:10])
        raise TraceError(
            f"{len(mismatches)} counter(s) whose interval deltas do "
            f"not sum to the final value:\n{lines}")
    return n_intervals, n_checked


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", nargs="?", help="trace file to validate")
    ap.add_argument("--format", choices=("jsonl", "chrome"),
                    default="jsonl", help="trace format (default jsonl)")
    ap.add_argument("--intervals", metavar="FILE",
                    help="interval-stats JSONL to validate")
    ap.add_argument("--stats", metavar="STATS.json",
                    help="final --stats-json dump (with --intervals)")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the summary; errors only")
    args = ap.parse_args()

    if not args.trace and not args.intervals:
        ap.error("need a trace file and/or --intervals")
    if bool(args.intervals) != bool(args.stats):
        ap.error("--intervals and --stats go together")

    try:
        if args.trace:
            parse = parse_chrome if args.format == "chrome" else \
                parse_jsonl
            counts, kinds, n = validate_events(parse(args.trace),
                                               args.trace)
            if not args.quiet:
                print(f"{args.trace}: {n} events OK")
                for flag in VALID_FLAGS:
                    if counts[flag]:
                        print(f"  {flag:8s} {counts[flag]}")
                print(f"  kinds: instant={kinds['I']} begin="
                      f"{kinds['B']} end={kinds['E']}")
        if args.intervals:
            n_iv, n_stats = check_intervals(args.intervals, args.stats)
            if not args.quiet:
                print(f"{args.intervals}: {n_iv} intervals, "
                      f"{n_stats} counters telescope to the final "
                      f"stats")
    except (TraceError, OSError) as exc:
        print(f"psb_trace: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
