/**
 * @file
 * psb-report — render one consolidated, deterministic run report from
 * the observability documents the simulator family produces.
 *
 * Usage:
 *   psb-report --stats-json FILE [options]
 *     --stats-json FILE      flat stats dump (required)
 *     --intervals FILE       --interval-stats JSONL series
 *     --sweep FILE           psb-sweep merged document
 *     --bench FILE           BENCH_psb.json trajectory
 *     --bench-baseline FILE  baseline BENCH document (enables deltas)
 *     --golden FILE          golden stats file (drift summary)
 *     --title STR            report heading
 *     --md PATH              write Markdown report ("-" = stdout)
 *     --html PATH            write HTML report ("-" = stdout)
 *     --help
 *
 * At least one of --md / --html is required. The output is a pure
 * function of the input documents (see sim/run_report.hh), so two
 * invocations over identical files are byte-identical — CI diffs
 * exactly this. Exit status: 0 = ok, 2 = usage, I/O, or parse error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/run_report.hh"

namespace
{

struct Options
{
    psb::RunReportInputs inputs;
    std::string statsPath;
    std::string intervalsPath;
    std::string sweepPath;
    std::string benchPath;
    std::string benchBaselinePath;
    std::string goldenPath;
    std::string mdPath;
    std::string htmlPath;
};

[[noreturn]] void
usage(int code)
{
    std::fputs(
        "psb-report: render a consolidated run report\n"
        "  psb-report --stats-json FILE [--intervals FILE]\n"
        "             [--sweep FILE] [--bench FILE]\n"
        "             [--bench-baseline FILE] [--golden FILE]\n"
        "             [--title STR] [--md PATH] [--html PATH]\n"
        "  At least one of --md / --html; \"-\" writes to stdout.\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "psb-report: %s needs a value\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h")
            usage(0);
        else if (flag == "--stats-json")
            opts.statsPath = value();
        else if (flag == "--intervals")
            opts.intervalsPath = value();
        else if (flag == "--sweep")
            opts.sweepPath = value();
        else if (flag == "--bench")
            opts.benchPath = value();
        else if (flag == "--bench-baseline")
            opts.benchBaselinePath = value();
        else if (flag == "--golden")
            opts.goldenPath = value();
        else if (flag == "--title")
            opts.inputs.title = value();
        else if (flag == "--md")
            opts.mdPath = value();
        else if (flag == "--html")
            opts.htmlPath = value();
        else {
            std::fprintf(stderr, "psb-report: unknown argument '%s'\n",
                         flag.c_str());
            usage(2);
        }
    }
    if (opts.statsPath.empty()) {
        std::fputs("psb-report: --stats-json is required\n", stderr);
        usage(2);
    }
    if (opts.mdPath.empty() && opts.htmlPath.empty()) {
        std::fputs("psb-report: need at least one of --md / --html\n",
                   stderr);
        usage(2);
    }
    return opts;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "psb-report: cannot read '%s'\n",
                     path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** Load @p path into @p out when the flag was given at all. */
bool
readOptional(const std::string &path, std::string &out)
{
    return path.empty() || readFile(path, out);
}

bool
writeOutput(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return true;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "psb-report: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    out.write(text.data(), std::streamsize(text.size()));
    return bool(out);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    if (!readFile(opts.statsPath, opts.inputs.statsJson) ||
        !readOptional(opts.intervalsPath, opts.inputs.intervalsJsonl) ||
        !readOptional(opts.sweepPath, opts.inputs.sweepJson) ||
        !readOptional(opts.benchPath, opts.inputs.benchJson) ||
        !readOptional(opts.benchBaselinePath,
                      opts.inputs.benchBaselineJson) ||
        !readOptional(opts.goldenPath, opts.inputs.goldenJson))
        return 2;

    std::string error;
    if (!opts.mdPath.empty()) {
        std::string text;
        if (!psb::renderRunReport(opts.inputs,
                                  psb::ReportFormat::Markdown, text,
                                  error)) {
            std::fprintf(stderr, "psb-report: %s\n", error.c_str());
            return 2;
        }
        if (!writeOutput(opts.mdPath, text))
            return 2;
    }
    if (!opts.htmlPath.empty()) {
        std::string text;
        if (!psb::renderRunReport(opts.inputs, psb::ReportFormat::Html,
                                  text, error)) {
            std::fprintf(stderr, "psb-report: %s\n", error.c_str());
            return 2;
        }
        if (!writeOutput(opts.htmlPath, text))
            return 2;
    }
    return 0;
}
