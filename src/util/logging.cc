#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

#include "util/thread_annotations.hh"

namespace psb
{

namespace
{

/**
 * Serializes whole report lines. Call sites are reachable from
 * sweep-engine worker threads (sim/sweep.hh); without the lock the
 * three stdio writes below could interleave between threads and shred
 * the prefix/message/newline structure mid-line.
 */
Mutex g_reportMu;

void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list args)
    PSB_EXCLUDES(g_reportMu)
{
    MutexLock lock(g_reportMu);
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
    std::fflush(stream);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "panic: ", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "warn: ", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stdout, "info: ", fmt, args);
    va_end(args);
}

} // namespace psb
