#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace psb
{

namespace
{

void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
    std::fflush(stream);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "panic: ", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "warn: ", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stdout, "info: ", fmt, args);
    va_end(args);
}

} // namespace psb
