#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace psb
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
JsonValue::asUInt(uint64_t &out) const
{
    if (kind != Kind::Number || number < 0.0)
        return false;
    double integral = 0.0;
    if (std::modf(number, &integral) != 0.0)
        return false;
    out = uint64_t(integral);
    return true;
}

bool
JsonValue::asConfigToken(std::string &out) const
{
    switch (kind) {
      case Kind::Number:
        out = raw;
        return true;
      case Kind::String:
        out = str;
        return true;
      case Kind::Bool:
        out = boolean ? "true" : "false";
        return true;
      default:
        return false;
    }
}

namespace
{

/** Recursive-descent cursor with offset-stamped errors. */
struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;
    int depth = 0;

    static constexpr int maxDepth = 64;

    bool
    fail(const std::string &what)
    {
        std::ostringstream msg;
        msg << what << " at offset " << pos;
        error = msg.str();
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("dangling escape");
                char esc = text[pos++];
                switch (esc) {
                  case '"':  out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/':  out.push_back('/'); break;
                  case 'n':  out.push_back('\n'); break;
                  case 't':  out.push_back('\t'); break;
                  case 'r':  out.push_back('\r'); break;
                  default:
                    return fail(std::string("unsupported escape '\\") +
                                esc + "'");
                }
            } else {
                out.push_back(c);
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos;
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected number");
        out.kind = JsonValue::Kind::Number;
        out.raw = text.substr(start, pos - start);
        char *end = nullptr;
        out.number = std::strtod(out.raw.c_str(), &end);
        if (end != out.raw.c_str() + out.raw.size())
            return fail("malformed number '" + out.raw + "'");
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth > maxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        bool ok = false;
        char c = text[pos];
        if (c == '{') {
            ok = parseObject(out);
        } else if (c == '[') {
            ok = parseArray(out);
        } else if (c == '"') {
            out.kind = JsonValue::Kind::String;
            ok = parseString(out.str);
        } else if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            ok = literal("true") || fail("bad literal");
        } else if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            ok = literal("false") || fail("bad literal");
        } else if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            ok = literal("null") || fail("bad literal");
        } else {
            ok = parseNumber(out);
        }
        --depth;
        return ok;
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos; // '{'
        skipSpace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            if (out.find(key) != nullptr)
                return fail("duplicate key \"" + key + "\"");
            skipSpace();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':'");
            ++pos;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        skipSpace();
        if (pos >= text.size() || text[pos] != '}')
            return fail("expected '}'");
        ++pos;
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos; // '['
        skipSpace();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipSpace();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        skipSpace();
        if (pos >= text.size() || text[pos] != ']')
            return fail("expected ']'");
        ++pos;
        return true;
    }
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    Parser p{text, 0, {}, 0};
    if (!p.parseValue(out)) {
        error = p.error;
        return false;
    }
    p.skipSpace();
    if (p.pos != text.size()) {
        p.fail("trailing garbage after document");
        error = p.error;
        return false;
    }
    return true;
}

} // namespace psb
