/**
 * @file
 * Fixed-capacity FIFO ring over preallocated storage — the hot-path
 * replacement for std::deque in bounded hardware structures (ROB,
 * history rings). Capacity is set once (constructor or reset()); after
 * that no member function touches the heap, so rule R10 (no allocation
 * reachable from a PSB_HOT_PATH root, DESIGN.md §14) holds by
 * construction. push_back() on a full ring and pop_front()/front() on
 * an empty one are programming errors, asserted rather than grown —
 * the modelled structures are capacity-checked by their own occupancy
 * logic before insertion.
 */

#ifndef PSB_UTIL_FIXED_RING_HH
#define PSB_UTIL_FIXED_RING_HH

#include <cstddef>
#include <iterator>
#include <vector>

#include "util/logging.hh"

namespace psb
{

/** See file comment. */
template <typename T>
class FixedRing
{
  public:
    explicit FixedRing(std::size_t capacity = 0) : _slots(capacity) {}

    /** Re-size to @p capacity and clear; the one allocating call,
     *  construction-time only. */
    void
    reset(std::size_t capacity)
    {
        _slots.assign(capacity, T{});
        _head = 0;
        _count = 0;
    }

    bool empty() const { return _count == 0; }
    bool full() const { return _count == _slots.size(); }
    std::size_t size() const { return _count; }
    std::size_t capacity() const { return _slots.size(); }

    T &
    front()
    {
        psb_assert(_count > 0, "front() on empty FixedRing");
        return _slots[_head];
    }

    const T &
    front() const
    {
        psb_assert(_count > 0, "front() on empty FixedRing");
        return _slots[_head];
    }

    T &
    back()
    {
        psb_assert(_count > 0, "back() on empty FixedRing");
        return _slots[physical(_count - 1)];
    }

    const T &
    back() const
    {
        psb_assert(_count > 0, "back() on empty FixedRing");
        return _slots[physical(_count - 1)];
    }

    /** Logical index: 0 is the oldest element (FIFO order). */
    T &operator[](std::size_t i) { return _slots[physical(i)]; }
    const T &
    operator[](std::size_t i) const
    {
        return _slots[physical(i)];
    }

    void
    push_back(const T &v)
    {
        psb_assert(_count < _slots.size(), "FixedRing overflow");
        _slots[physical(_count)] = v;
        ++_count;
    }

    void
    pop_front()
    {
        psb_assert(_count > 0, "pop_front() on empty FixedRing");
        _head = next(_head);
        --_count;
    }

    void
    clear()
    {
        _head = 0;
        _count = 0;
    }

    /** Forward iterator in FIFO order (oldest first). */
    template <typename Ring, typename Value>
    class Iter
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = Value;
        using difference_type = std::ptrdiff_t;
        using pointer = Value *;
        using reference = Value &;

        Iter(Ring *ring, std::size_t i) : _ring(ring), _i(i) {}

        Value &operator*() const { return (*_ring)[_i]; }
        Value *operator->() const { return &(*_ring)[_i]; }

        Iter &
        operator++()
        {
            ++_i;
            return *this;
        }

        bool
        operator==(const Iter &o) const
        {
            return _ring == o._ring && _i == o._i;
        }

        bool operator!=(const Iter &o) const { return !(*this == o); }

      private:
        Ring *_ring;
        std::size_t _i;
    };

    using iterator = Iter<FixedRing, T>;
    using const_iterator = Iter<const FixedRing, const T>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, _count); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, _count); }

  private:
    std::size_t next(std::size_t i) const
    {
        return i + 1 == _slots.size() ? 0 : i + 1;
    }

    std::size_t
    physical(std::size_t logical) const
    {
        std::size_t i = _head + logical;
        if (i >= _slots.size())
            i -= _slots.size();
        return i;
    }

    std::vector<T> _slots;
    std::size_t _head = 0;
    std::size_t _count = 0;
};

} // namespace psb

#endif // PSB_UTIL_FIXED_RING_HH
