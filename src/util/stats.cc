#include "util/stats.hh"

#include <cstdio>

#include "util/logging.hh"
#include "util/stats_json.hh"

namespace psb
{

double
Histogram::cdfAt(uint64_t v) const
{
    if (_total == 0)
        return 0.0;
    uint64_t acc = 0;
    size_t limit = (v < _buckets.size() - 1) ? size_t(v) : _buckets.size() - 2;
    for (size_t i = 0; i <= limit; ++i)
        acc += _buckets[i];
    if (v >= _buckets.size() - 1)
        acc += _buckets.back();
    return double(acc) / double(_total);
}

uint64_t
Histogram::percentile(double p) const
{
    if (_total == 0)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    // Rank of the percentile sample, 1-based; p == 0 still selects the
    // first sample so the result is an observed value.
    uint64_t target = uint64_t(p * double(_total));
    if (double(target) < p * double(_total))
        ++target; // ceil
    if (target == 0)
        target = 1;
    if (target > _total)
        target = _total;
    uint64_t acc = 0;
    for (size_t i = 0; i < _buckets.size(); ++i) {
        acc += _buckets[i];
        if (acc >= target)
            return i;
    }
    return _buckets.size() - 1; // unreachable: acc == _total by here
}

void
Histogram::reset()
{
    for (auto &b : _buckets)
        b = 0;
    _total = 0;
}

void
StatsRegistry::add(const std::string &path, std::function<StatValue()> fn)
{
    psb_assert(!path.empty(), "stat path must not be empty");
    auto [it, inserted] = _stats.emplace(path, std::move(fn));
    (void)it;
    if (!inserted)
        panic("duplicate stat registration: %s", path.c_str());
}

void
StatsRegistry::addScalar(const std::string &path, ScalarFn fn)
{
    add(path,
        [fn = std::move(fn)] { return StatValue::makeScalar(fn()); });
}

void
StatsRegistry::addReal(const std::string &path, RealFn fn)
{
    add(path, [fn = std::move(fn)] { return StatValue::makeReal(fn()); });
}

void
StatsRegistry::addAverage(const std::string &path, const Average *avg)
{
    addScalar(path + ".count", [avg] { return avg->count(); });
    addReal(path + ".sum", [avg] { return avg->sum(); });
    addReal(path + ".mean", [avg] { return avg->mean(); });
}

void
StatsRegistry::addHistogram(const std::string &path, const Histogram *hist)
{
    for (size_t i = 0; i < hist->numBuckets(); ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), ".bucket%03zu", i);
        addScalar(path + name, [hist, i] { return hist->bucket(i); });
    }
    addScalar(path + ".overflow",
              [hist] { return hist->bucket(hist->numBuckets()); });
    addScalar(path + ".samples", [hist] { return hist->total(); });
}

bool
StatsRegistry::has(const std::string &path) const
{
    return _stats.count(path) != 0;
}

std::map<std::string, StatValue>
StatsRegistry::snapshot() const
{
    std::map<std::string, StatValue> out;
    for (const auto &[path, fn] : _stats)
        out.emplace(path, fn());
    return out;
}

std::string
StatsRegistry::toJson() const
{
    return statsToJson(snapshot());
}

} // namespace psb
