#include "util/stats.hh"

namespace psb
{

double
Histogram::cdfAt(uint64_t v) const
{
    if (_total == 0)
        return 0.0;
    uint64_t acc = 0;
    size_t limit = (v < _buckets.size() - 1) ? size_t(v) : _buckets.size() - 2;
    for (size_t i = 0; i <= limit; ++i)
        acc += _buckets[i];
    if (v >= _buckets.size() - 1)
        acc += _buckets.back();
    return double(acc) / double(_total);
}

void
Histogram::reset()
{
    for (auto &b : _buckets)
        b = 0;
    _total = 0;
}

} // namespace psb
