/**
 * @file
 * Saturating counter, the basic building block of the paper's confidence
 * mechanisms (accuracy counters saturate at 7, stream-buffer priority
 * counters at 12) and of two-bit branch-predictor state.
 */

#ifndef PSB_UTIL_SAT_COUNTER_HH
#define PSB_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "util/logging.hh"

namespace psb
{

/**
 * An unsigned saturating counter in [0, max].
 *
 * Increments and decrements clamp at the bounds instead of wrapping.
 * Arbitrary step sizes are supported because the paper's priority
 * counters are incremented by 2 on a stream-buffer hit but aged by 1.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param max Saturation ceiling (inclusive).
     * @param initial Starting value, clamped to [0, max].
     */
    explicit SatCounter(uint32_t max, uint32_t initial = 0)
        : _max(max), _value(initial > max ? max : initial)
    {
        psb_assert(max > 0, "saturating counter needs max > 0");
    }

    /** Current counter value. */
    uint32_t value() const { return _value; }

    /** Saturation ceiling. */
    uint32_t max() const { return _max; }

    /** True when the counter sits at its ceiling. */
    bool saturated() const { return _value == _max; }

    /** Add @p step, clamping at the ceiling (branchless). */
    void
    increment(uint32_t step = 1)
    {
        // The 64-bit sum cannot wrap, so min() alone clamps; compiles
        // to an add + cmov with no data-dependent branch (these
        // counters are bumped on every buffer hit and aging event).
        uint64_t sum = uint64_t(_value) + step;
        _value = uint32_t(sum < _max ? sum : _max);
    }

    /** Subtract @p step, clamping at zero (branchless). */
    void
    decrement(uint32_t step = 1)
    {
        _value -= (step < _value) ? step : _value;
    }

    /** Force the counter to @p v, clamped to [0, max]. */
    void set(uint32_t v) { _value = (v > _max) ? _max : v; }

    /** Reset to zero. */
    void reset() { _value = 0; }

  private:
    uint32_t _max = 1;
    uint32_t _value = 0;
};

} // namespace psb

#endif // PSB_UTIL_SAT_COUNTER_HH
