/**
 * @file
 * Statistics primitives and the central StatsRegistry.
 *
 * Two layers live here:
 *  - Accumulators (Average, Histogram) and helpers (percent, ratio)
 *    that components keep as plain members, exactly as before.
 *  - A StatsRegistry that every component registers its counters with
 *    under a hierarchical dotted path ("l1d.misses",
 *    "psb.buffer3.priority_peak"). Registration stores a *reader*
 *    (callback or bound pointer), so the registry always reflects the
 *    live values — including after a warm-up resetStats(). snapshot()
 *    materialises a sorted path -> value map and toJson() renders it
 *    deterministically (sorted keys, fixed float formatting) for the
 *    golden-stats harness and stats-diff tooling.
 *
 * Modelled loosely on gem5's stats package but kept deliberately
 * small; the bench harnesses still read raw struct fields directly.
 */

#ifndef PSB_UTIL_STATS_HH
#define PSB_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace psb
{

/** A running mean over samples (used for e.g.\ average load latency). */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    /**
     * Record @p n identical samples at once. Bulk recording keeps
     * >2^32-event streams testable without 2^32 calls.
     */
    void
    sampleN(double v, uint64_t n)
    {
        _sum += v * double(n);
        _count += n;
    }

    /** Mean of all samples, or 0 when empty. */
    double mean() const { return _count ? _sum / double(_count) : 0.0; }

    /** Number of samples recorded. */
    uint64_t count() const { return _count; }

    /** Sum of all samples. */
    double sum() const { return _sum; }

    void
    reset()
    {
        _sum = 0.0;
        _count = 0;
    }

  private:
    double _sum = 0.0;
    uint64_t _count = 0;
};

/**
 * A fixed-bucket histogram over integer samples. Samples beyond the
 * last bucket are accumulated in an overflow bucket.
 */
class Histogram
{
  public:
    /** @param buckets Number of in-range buckets ([0, buckets)). */
    explicit Histogram(size_t buckets) : _buckets(buckets + 1, 0) {}

    /** Record one sample. */
    void sample(uint64_t v) { sampleN(v, 1); }

    /** Record @p n samples of value @p v at once. */
    void
    sampleN(uint64_t v, uint64_t n)
    {
        size_t idx = (v < _buckets.size() - 1) ? v : _buckets.size() - 1;
        _buckets[idx] += n;
        _total += n;
    }

    /** Count in bucket @p i (the final index is the overflow bucket). */
    uint64_t bucket(size_t i) const { return _buckets.at(i); }

    /** Number of in-range buckets (excluding overflow). */
    size_t numBuckets() const { return _buckets.size() - 1; }

    /** Total number of samples recorded. */
    uint64_t total() const { return _total; }

    /** Fraction of samples with value <= @p v (inclusive CDF). */
    double cdfAt(uint64_t v) const;

    /**
     * Smallest bucket value v such that at least ceil(p * total)
     * samples are <= v. Samples that landed in the overflow bucket
     * resolve to numBuckets() (the overflow index) — the true value is
     * unknown, only that it is >= the bucket range. Returns 0 for an
     * empty histogram. @p p is clamped to [0, 1].
     */
    uint64_t percentile(double p) const;

    void reset();

  private:
    std::vector<uint64_t> _buckets;
    uint64_t _total = 0;
};

/** Percentage helper: 100 * num / denom, or 0 when denom == 0. */
inline double
percent(uint64_t num, uint64_t denom)
{
    return denom ? 100.0 * double(num) / double(denom) : 0.0;
}

/** Ratio helper: num / denom, or 0 when denom == 0. */
inline double
ratio(uint64_t num, uint64_t denom)
{
    return denom ? double(num) / double(denom) : 0.0;
}

/**
 * One exported statistic value: either an exact integer counter or a
 * derived real number (ratio, mean, utilisation).
 */
struct StatValue
{
    enum class Kind
    {
        Scalar, ///< exact 64-bit event/cycle counter
        Real,   ///< derived floating-point value
    };

    Kind kind = Kind::Scalar;
    uint64_t scalar = 0;
    double real = 0.0;

    static StatValue
    makeScalar(uint64_t v)
    {
        StatValue s;
        s.kind = Kind::Scalar;
        s.scalar = v;
        return s;
    }

    static StatValue
    makeReal(double v)
    {
        StatValue s;
        s.kind = Kind::Real;
        s.real = v;
        return s;
    }

    /** The value as a double regardless of kind. */
    double
    asReal() const
    {
        return kind == Kind::Scalar ? double(scalar) : real;
    }
};

/**
 * The central registry of every component's named statistics.
 *
 * Components register *readers* under hierarchical dotted paths at
 * construction time; the registry never copies values until
 * snapshot() is called, so warm-up resets are reflected for free.
 * Paths must be unique — a duplicate registration is a simulator bug
 * and panics.
 */
class StatsRegistry
{
  public:
    using ScalarFn = std::function<uint64_t()>;
    using RealFn = std::function<double()>;

    /** Register an integer counter read through @p fn. */
    void addScalar(const std::string &path, ScalarFn fn);

    /**
     * Register an integer counter bound to @p counter. The pointee
     * must outlive the registry (all components do: they are owned by
     * the Simulator that owns the registry).
     */
    void
    addScalar(const std::string &path, const uint64_t *counter)
    {
        addScalar(path, [counter] { return *counter; });
    }

    /** Register a derived real-valued statistic. */
    void addReal(const std::string &path, RealFn fn);

    /**
     * Register an Average as three stats: path.count, path.sum, and
     * path.mean.
     */
    void addAverage(const std::string &path, const Average *avg);

    /**
     * Register a Histogram as one stat per bucket (path.bucketNN,
     * zero-padded so lexicographic order is numeric order), plus
     * path.overflow and path.samples.
     */
    void addHistogram(const std::string &path, const Histogram *hist);

    bool has(const std::string &path) const;
    size_t size() const { return _stats.size(); }

    /** Evaluate every reader; sorted by path (std::map ordering). */
    std::map<std::string, StatValue> snapshot() const;

    /**
     * Deterministic flat-JSON dump: one "path": value member per
     * stat, keys sorted, scalars as integers, reals formatted with
     * round-trip-exact fixed formatting. Byte-identical across runs
     * with identical stats.
     */
    std::string toJson() const;

  private:
    void add(const std::string &path, std::function<StatValue()> fn);

    std::map<std::string, std::function<StatValue()>> _stats;
};

} // namespace psb

#endif // PSB_UTIL_STATS_HH
