#include "util/alloc_guard.hh"

#include <atomic>

#ifdef PSB_ALLOC_GUARD
#include <cstdio>
#include <cstdlib>
#include <new>
#endif

namespace psb
{
namespace AllocGuard
{

namespace
{
// Process-wide arming flag. Relaxed is enough: arming happens once,
// before the audited region, on the thread that runs it.
std::atomic<bool> g_armed{false};
} // namespace

void
arm()
{
    g_armed.store(true, std::memory_order_relaxed);
}

bool
armed()
{
    return g_armed.load(std::memory_order_relaxed);
}

#ifdef PSB_ALLOC_GUARD

bool
compiledIn()
{
    return true;
}

namespace detail
{

State &
state()
{
    thread_local State s;
    return s;
}

} // namespace detail

uint64_t
scopedAllocs()
{
    return detail::state().inScope;
}

NoAllocScope::NoAllocScope(const char *what) : _what(what)
{
    detail::State &s = detail::state();
    _prevWhat = s.what;
    s.what = what;
    _enterCount = s.inScope;
    ++s.depth;
}

NoAllocScope::~NoAllocScope()
{
    detail::State &s = detail::state();
    --s.depth;
    s.what = _prevWhat;
}

uint64_t
NoAllocScope::allocs() const
{
    return detail::state().inScope - _enterCount;
}

PauseScope::PauseScope()
{
    ++detail::state().pause;
}

PauseScope::~PauseScope()
{
    --detail::state().pause;
}

namespace
{

/**
 * The one counting hook every interposed operator funnels through.
 * No allocation and no iostreams in here: when armed, the report goes
 * straight to stderr with fprintf (unbuffered stream) and the process
 * aborts, so a debugger breakpoint on abort() lands on the offending
 * allocation's full stack.
 */
void
noteAllocation(std::size_t bytes)
{
    detail::State &s = detail::state();
    if (s.depth <= 0 || s.pause > 0)
        return;
    ++s.inScope;
    if (armed()) {
        std::fprintf(stderr,
                     "AllocGuard: heap allocation of %zu bytes inside "
                     "no-alloc scope '%s' — the per-cycle hot path "
                     "must not allocate (rule R10)\n",
                     bytes, s.what ? s.what : "?");
        std::abort();
    }
}

void *
guardedAlloc(std::size_t bytes)
{
    noteAllocation(bytes);
    if (bytes == 0)
        bytes = 1;
    void *p = std::malloc(bytes);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
guardedAllocAligned(std::size_t bytes, std::size_t align)
{
    noteAllocation(bytes);
    if (bytes == 0)
        bytes = align;
    void *p = std::aligned_alloc(align, (bytes + align - 1) / align * align);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

} // namespace

} // namespace AllocGuard
} // namespace psb

// ---------------------------------------------------------------------
// Global operator new/delete replacement (counting interposers).
// Every form forwards to malloc/free; the replacement is legal per
// [replacement.functions] and process-global, but only allocations
// made inside an open NoAllocScope on the owning thread are counted.
// ---------------------------------------------------------------------

void *
operator new(std::size_t bytes)
{
    return psb::AllocGuard::guardedAlloc(bytes);
}

void *
operator new[](std::size_t bytes)
{
    return psb::AllocGuard::guardedAlloc(bytes);
}

void *
operator new(std::size_t bytes, const std::nothrow_t &) noexcept
{
    psb::AllocGuard::noteAllocation(bytes);
    return std::malloc(bytes ? bytes : 1);
}

void *
operator new[](std::size_t bytes, const std::nothrow_t &) noexcept
{
    psb::AllocGuard::noteAllocation(bytes);
    return std::malloc(bytes ? bytes : 1);
}

void *
operator new(std::size_t bytes, std::align_val_t align)
{
    return psb::AllocGuard::guardedAllocAligned(
        bytes, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t bytes, std::align_val_t align)
{
    return psb::AllocGuard::guardedAllocAligned(
        bytes, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

#else // !PSB_ALLOC_GUARD

bool
compiledIn()
{
    return false;
}

uint64_t
scopedAllocs()
{
    return 0;
}

} // namespace AllocGuard
} // namespace psb

#endif // PSB_ALLOC_GUARD
