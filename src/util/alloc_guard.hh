/**
 * @file
 * Runtime cross-check for the hot-path no-allocation rule (R10).
 *
 * When the build defines PSB_ALLOC_GUARD (CMake option of the same
 * name; the `alloc-guard` preset turns it on), alloc_guard.cc
 * replaces the global operator new/delete family with counting
 * interposers. A NoAllocScope then audits a region of code: every
 * allocation performed on the owning thread while the scope is open
 * (and not paused) is counted, and — when the guard is *armed* — a
 * single allocation is a fatal error naming the region.
 *
 * The simulator wraps its steady-state cycle loop (after warm-up) in
 * PSB_NO_ALLOC_SCOPE, and pauses the audit around the one legitimate
 * allocator: workload trace generation (TraceSource::next), whose
 * synthetic benchmarks run real allocating algorithms by design. The
 * result is a dynamic proof that the per-cycle simulator path —
 * core, caches, TLB, MSHRs, predictors, stream buffers, attribution
 * — performs zero heap allocations in steady state, cross-checking
 * the static call-graph proof of tools/psb_analyze.py (R10).
 *
 * Arming: `psb-sim --assert-no-alloc` (the alloc_guard ctest) or
 * AllocGuard::arm(). Without PSB_ALLOC_GUARD the whole facility
 * compiles to empty inline no-ops, and scopedAllocs() reports 0 —
 * which is also the value psb-bench records as `steady_state_allocs`
 * in release builds (the guarded debug ctest is the enforcing gate).
 *
 * Counters are thread-local: a sweep worker auditing its own job
 * never sees another worker's allocations.
 */

#ifndef PSB_UTIL_ALLOC_GUARD_HH
#define PSB_UTIL_ALLOC_GUARD_HH

#include <cstdint>

namespace psb
{
namespace AllocGuard
{

/** True when the counting interposers are compiled in. */
bool compiledIn();

/**
 * Make an in-scope allocation fatal (process-wide). The alloc_guard
 * ctest arms the guard; unarmed scopes only count.
 */
void arm();
bool armed();

/** Allocations observed inside any scope on this thread, cumulative
 *  across scopes (psb-bench exports this as steady_state_allocs). */
uint64_t scopedAllocs();

#ifdef PSB_ALLOC_GUARD

namespace detail
{
/** Thread-local audit state, mutated by the interposers. */
struct State
{
    int depth = 0;       ///< open NoAllocScope nesting
    int pause = 0;       ///< open PauseScope nesting
    uint64_t inScope = 0;///< allocations while depth>0 && pause==0
    const char *what = nullptr; ///< innermost scope label
};
State &state();
} // namespace detail

/** Audit a region: count (and, armed, forbid) heap allocations. */
class NoAllocScope
{
  public:
    explicit NoAllocScope(const char *what);
    ~NoAllocScope();
    NoAllocScope(const NoAllocScope &) = delete;
    NoAllocScope &operator=(const NoAllocScope &) = delete;

    /** Allocations observed so far inside this scope. */
    uint64_t allocs() const;

  private:
    const char *_what;
    const char *_prevWhat;
    uint64_t _enterCount;
};

/** Suspend the innermost audit (workload trace generation). */
class PauseScope
{
  public:
    PauseScope();
    ~PauseScope();
    PauseScope(const PauseScope &) = delete;
    PauseScope &operator=(const PauseScope &) = delete;
};

#else // !PSB_ALLOC_GUARD — everything is a no-op

class NoAllocScope
{
  public:
    explicit NoAllocScope(const char *) {}
    uint64_t allocs() const { return 0; }
};

class PauseScope
{
  public:
    PauseScope() {}
    ~PauseScope() {} // non-trivial: silences unused-variable warnings
};

#endif // PSB_ALLOC_GUARD

} // namespace AllocGuard
} // namespace psb

/** Open a named no-allocation audit scope for the current block. */
#define PSB_NO_ALLOC_SCOPE(what)                  \
    [[maybe_unused]] ::psb::AllocGuard::NoAllocScope \
        psb_no_alloc_scope_(what)

/** Suspend the enclosing audit for the current block. */
#define PSB_ALLOC_GUARD_PAUSE() \
    [[maybe_unused]] ::psb::AllocGuard::PauseScope psb_alloc_guard_pause_

#endif // PSB_UTIL_ALLOC_GUARD_HH
