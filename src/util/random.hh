/**
 * @file
 * Deterministic pseudo-random number generator used by the synthetic
 * workloads and the property tests. A fixed, seedable generator keeps
 * every simulation and test bit-reproducible across runs and platforms
 * (std::mt19937 would also work, but xorshift* is cheaper and the
 * workloads draw a lot of numbers).
 */

#ifndef PSB_UTIL_RANDOM_HH
#define PSB_UTIL_RANDOM_HH

#include <cstdint>

namespace psb
{

/** xorshift64* PRNG (Marsaglia / Vigna). Period 2^64 - 1. */
class Xorshift64
{
  public:
    explicit Xorshift64(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : _state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        _state ^= _state >> 12;
        _state ^= _state << 25;
        _state ^= _state >> 27;
        return _state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p percent / 100. */
    bool
    percentChance(unsigned percent)
    {
        return below(100) < percent;
    }

  private:
    uint64_t _state;
};

} // namespace psb

#endif // PSB_UTIL_RANDOM_HH
