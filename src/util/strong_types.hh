/**
 * @file
 * Strong numeric domain types for the three address/time domains the
 * PSB design juggles (see DESIGN.md §"Type-domain conventions"):
 *
 *  - ByteAddr    a full virtual byte address (PCs, effective addresses)
 *  - BlockAddr   a cache-block *number* (byte address >> line bits)
 *  - BlockDelta  a signed distance between block numbers — the unit the
 *                differential Markov table stores in 16 bits
 *  - Cycle       an absolute simulation cycle
 *  - CycleDelta  a duration in cycles (latencies, transfer times)
 *
 * Each type is an opaque wrapper over its raw integer with only the
 * arithmetic that is physically meaningful:
 *
 *    BlockAddr + BlockDelta -> BlockAddr
 *    BlockAddr - BlockAddr  -> BlockDelta
 *    ByteAddr  + offset     -> ByteAddr   (byte offsets are plain ints)
 *    ByteAddr  - ByteAddr   -> int64_t    (byte distance)
 *    Cycle     + CycleDelta -> Cycle
 *    Cycle     - Cycle      -> CycleDelta
 *
 * Cross-domain arithmetic (ByteAddr + BlockAddr, Cycle + BlockDelta,
 * BlockAddr used as a byte address, ...) does not compile; conversions
 * between the byte and block domains are explicit and carry the line
 * size (toBlock/toByte). tests/test_strong_types.cc pins the whole
 * contract down, including the non-compilability of the illegal ops.
 *
 * Everything is constexpr and trivially copyable: with optimisation on,
 * the wrappers compile to exactly the raw-integer code they replaced.
 */

#ifndef PSB_UTIL_STRONG_TYPES_HH
#define PSB_UTIL_STRONG_TYPES_HH

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>

namespace psb
{

class BlockAddr;
class BlockDelta;
class CycleDelta;

/** A full virtual byte address: PCs and load/store effective addresses. */
class ByteAddr
{
  public:
    constexpr ByteAddr() = default;
    constexpr explicit ByteAddr(uint64_t v) : _v(v) {}

    /** The raw 64-bit address value. */
    constexpr uint64_t raw() const { return _v; }

    /** The cache-block number of this address: raw() >> line_bits. */
    constexpr BlockAddr toBlock(unsigned line_bits) const;

    /** This address rounded down to a multiple of @p align_bytes
     *  (power of two): the usual line-align operation. */
    constexpr ByteAddr
    alignDown(uint64_t align_bytes) const
    {
        return ByteAddr(_v & ~(align_bytes - 1));
    }

    /** All-ones sentinel ("no address"). */
    static constexpr ByteAddr max() { return ByteAddr(~uint64_t(0)); }

    constexpr ByteAddr &
    operator+=(uint64_t off)
    {
        _v += off;
        return *this;
    }

    constexpr auto operator<=>(const ByteAddr &) const = default;

  private:
    uint64_t _v = 0;
};

/** Byte-offset arithmetic stays within the byte domain. */
constexpr ByteAddr
operator+(ByteAddr a, uint64_t off)
{
    return ByteAddr(a.raw() + off);
}

constexpr ByteAddr
operator-(ByteAddr a, uint64_t off)
{
    return ByteAddr(a.raw() - off);
}

/** Distance between two byte addresses, in bytes. */
constexpr int64_t
operator-(ByteAddr a, ByteAddr b)
{
    return int64_t(a.raw() - b.raw());
}

/** A signed distance between two cache-block numbers. */
class BlockDelta
{
  public:
    constexpr BlockDelta() = default;
    constexpr explicit BlockDelta(int64_t blocks) : _v(blocks) {}

    /** The raw signed distance, in blocks. */
    constexpr int64_t raw() const { return _v; }

    /** The distance in bytes for a 1 << line_bits block size. */
    constexpr int64_t
    toBytes(unsigned line_bits) const
    {
        return _v * (int64_t(1) << line_bits);
    }

    /**
     * True when the delta is representable as a @p bits-wide signed
     * integer — the storage test the differential Markov table applies
     * before recording a transition (paper §4.2, Figure 4).
     */
    constexpr bool
    fitsIn(unsigned bits) const
    {
        int64_t lim = int64_t(1) << (bits - 1);
        return _v >= -lim && _v < lim;
    }

    /**
     * The delta clamped to the @p bits-wide signed range
     * [-2^(bits-1), 2^(bits-1) - 1] — the saturating helper for
     * tables that store rather than reject out-of-range deltas.
     */
    constexpr BlockDelta
    saturatedTo(unsigned bits) const
    {
        int64_t lim = int64_t(1) << (bits - 1);
        if (_v < -lim)
            return BlockDelta(-lim);
        if (_v >= lim)
            return BlockDelta(lim - 1);
        return *this;
    }

    constexpr BlockDelta operator-() const { return BlockDelta(-_v); }

    constexpr auto operator<=>(const BlockDelta &) const = default;

  private:
    int64_t _v = 0;
};

constexpr BlockDelta
operator+(BlockDelta a, BlockDelta b)
{
    return BlockDelta(a.raw() + b.raw());
}

constexpr BlockDelta
operator-(BlockDelta a, BlockDelta b)
{
    return BlockDelta(a.raw() - b.raw());
}

/** A cache-block number: a byte address stripped of its line offset. */
class BlockAddr
{
  public:
    constexpr BlockAddr() = default;
    constexpr explicit BlockAddr(uint64_t block_num) : _v(block_num) {}

    /** The raw block number. */
    constexpr uint64_t raw() const { return _v; }

    /** The (line-aligned) byte address of this block. */
    constexpr ByteAddr
    toByte(unsigned line_bits) const
    {
        return ByteAddr(_v << line_bits);
    }

    /** All-ones sentinel ("no block"). */
    static constexpr BlockAddr max() { return BlockAddr(~uint64_t(0)); }

    constexpr BlockAddr &
    operator+=(BlockDelta d)
    {
        _v = uint64_t(int64_t(_v) + d.raw());
        return *this;
    }

    constexpr auto operator<=>(const BlockAddr &) const = default;

  private:
    uint64_t _v = 0;
};

constexpr BlockAddr
operator+(BlockAddr a, BlockDelta d)
{
    return BlockAddr(uint64_t(int64_t(a.raw()) + d.raw()));
}

constexpr BlockDelta
operator-(BlockAddr a, BlockAddr b)
{
    return BlockDelta(int64_t(a.raw() - b.raw()));
}

/**
 * @p base displaced by @p d, or nullopt when the result would fall
 * below block 0 — the bounds check tables need before following a
 * stored (possibly negative) delta off a block number.
 */
constexpr std::optional<BlockAddr>
checkedAdd(BlockAddr base, BlockDelta d)
{
    int64_t next = int64_t(base.raw()) + d.raw();
    if (next < 0)
        return std::nullopt;
    return BlockAddr(uint64_t(next));
}

constexpr BlockAddr
ByteAddr::toBlock(unsigned line_bits) const
{
    return BlockAddr(_v >> line_bits);
}

/** A duration in cycles: latencies, penalties, transfer times. */
class CycleDelta
{
  public:
    constexpr CycleDelta() = default;
    constexpr explicit CycleDelta(uint64_t cycles) : _v(cycles) {}

    /** The raw cycle count of this duration. */
    constexpr uint64_t raw() const { return _v; }

    constexpr CycleDelta &
    operator+=(CycleDelta o)
    {
        _v += o.raw();
        return *this;
    }

    constexpr auto operator<=>(const CycleDelta &) const = default;

  private:
    uint64_t _v = 0;
};

constexpr CycleDelta
operator+(CycleDelta a, CycleDelta b)
{
    return CycleDelta(a.raw() + b.raw());
}

constexpr CycleDelta
operator-(CycleDelta a, CycleDelta b)
{
    return CycleDelta(a.raw() - b.raw());
}

/** Scaling a duration (e.g.\ bytes x cycles-per-byte) is meaningful. */
constexpr CycleDelta
operator*(CycleDelta d, uint64_t n)
{
    return CycleDelta(d.raw() * n);
}

constexpr CycleDelta
operator*(uint64_t n, CycleDelta d)
{
    return CycleDelta(n * d.raw());
}

/** Dividing a duration (e.g.\ latency / pipeline depth) is meaningful.
 *  Integer division: the result truncates toward zero. */
constexpr CycleDelta
operator/(CycleDelta d, uint64_t n)
{
    return CycleDelta(d.raw() / n);
}

/** An absolute simulation cycle. */
class Cycle
{
  public:
    constexpr Cycle() = default;
    constexpr explicit Cycle(uint64_t v) : _v(v) {}

    /** The raw cycle number. */
    constexpr uint64_t raw() const { return _v; }

    /** All-ones sentinel ("never" / "not scheduled"). */
    static constexpr Cycle max() { return Cycle(~uint64_t(0)); }

    constexpr Cycle &
    operator++()
    {
        ++_v;
        return *this;
    }

    constexpr Cycle &
    operator+=(CycleDelta d)
    {
        _v += d.raw();
        return *this;
    }

    constexpr auto operator<=>(const Cycle &) const = default;

  private:
    uint64_t _v = 0;
};

constexpr Cycle
operator+(Cycle c, CycleDelta d)
{
    return Cycle(c.raw() + d.raw());
}

constexpr Cycle
operator-(Cycle c, CycleDelta d)
{
    return Cycle(c.raw() - d.raw());
}

/** Elapsed duration between two absolute cycles (a >= b). */
constexpr CycleDelta
operator-(Cycle a, Cycle b)
{
    return CycleDelta(a.raw() - b.raw());
}

/** The later / earlier of two absolute cycles. */
constexpr Cycle
maxCycle(Cycle a, Cycle b)
{
    return a < b ? b : a;
}

constexpr Cycle
minCycle(Cycle a, Cycle b)
{
    return a < b ? a : b;
}

inline std::ostream &
operator<<(std::ostream &os, ByteAddr a)
{
    return os << "0x" << std::hex << a.raw() << std::dec;
}

inline std::ostream &
operator<<(std::ostream &os, BlockAddr a)
{
    return os << "blk:0x" << std::hex << a.raw() << std::dec;
}

inline std::ostream &
operator<<(std::ostream &os, BlockDelta d)
{
    return os << d.raw() << "blk";
}

inline std::ostream &
operator<<(std::ostream &os, Cycle c)
{
    return os << c.raw();
}

inline std::ostream &
operator<<(std::ostream &os, CycleDelta d)
{
    return os << d.raw();
}

} // namespace psb

template <>
struct std::hash<psb::ByteAddr>
{
    size_t
    operator()(psb::ByteAddr a) const noexcept
    {
        return std::hash<uint64_t>{}(a.raw());
    }
};

template <>
struct std::hash<psb::BlockAddr>
{
    size_t
    operator()(psb::BlockAddr a) const noexcept
    {
        return std::hash<uint64_t>{}(a.raw());
    }
};

template <>
struct std::hash<psb::BlockDelta>
{
    size_t
    operator()(psb::BlockDelta d) const noexcept
    {
        return std::hash<int64_t>{}(d.raw());
    }
};

template <>
struct std::hash<psb::Cycle>
{
    size_t
    operator()(psb::Cycle c) const noexcept
    {
        return std::hash<uint64_t>{}(c.raw());
    }
};

template <>
struct std::hash<psb::CycleDelta>
{
    size_t
    operator()(psb::CycleDelta d) const noexcept
    {
        return std::hash<uint64_t>{}(d.raw());
    }
};

#endif // PSB_UTIL_STRONG_TYPES_HH
