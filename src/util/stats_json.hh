/**
 * @file
 * Deterministic flat-JSON serialisation for stats snapshots, plus the
 * matching parser used by the stats-diff tool and the round-trip
 * tests.
 *
 * The dump format is deliberately flat — one member per stat, the
 * hierarchical path kept in the key:
 *
 *   {
 *     "core.cycles": 123456,
 *     "core.ipc": 0.2980000000000000426
 *   }
 *
 * Determinism contract: keys are emitted in sorted order (the
 * snapshot is a std::map), scalars print as plain integers, and reals
 * print with "%.17g" so every distinct double has exactly one
 * spelling and parses back bit-exact. Two runs with identical stats
 * therefore produce byte-identical files.
 */

#ifndef PSB_UTIL_STATS_JSON_HH
#define PSB_UTIL_STATS_JSON_HH

#include <map>
#include <string>

#include "util/stats.hh"

namespace psb
{

/** One parsed stat: the raw JSON token and its numeric value. */
struct ParsedStat
{
    std::string raw;    ///< the number exactly as it appeared
    double value = 0.0;
};

/** Format one real-valued stat with the round-trip-exact spelling. */
std::string formatStatReal(double v);

/** Render a snapshot as the deterministic flat-JSON dump. */
std::string statsToJson(const std::map<std::string, StatValue> &snapshot);

/**
 * Parse a flat-JSON stats dump produced by statsToJson().
 * @param text The JSON document.
 * @param out Parsed stats keyed by path (cleared first).
 * @param error Human-readable parse error when returning false.
 * @retval true on success.
 */
bool parseStatsJson(const std::string &text,
                    std::map<std::string, ParsedStat> &out,
                    std::string &error);

} // namespace psb

#endif // PSB_UTIL_STATS_JSON_HH
