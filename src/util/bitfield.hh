/**
 * @file
 * Small bit-manipulation helpers shared by the cache, predictor, and
 * prefetcher tables.
 */

#ifndef PSB_UTIL_BITFIELD_HH
#define PSB_UTIL_BITFIELD_HH

#include <cstdint>

namespace psb
{

/** True iff @p v is a non-zero power of two. */
constexpr bool
isPowerOf2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); returns 0 for v == 0 or 1. */
constexpr unsigned
floorLog2(uint64_t v)
{
    unsigned result = 0;
    while (v > 1) {
        v >>= 1;
        ++result;
    }
    return result;
}

/** ceil(log2(v)). */
constexpr unsigned
ceilLog2(uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Index of the lowest set bit; 64 when @p v == 0. */
inline unsigned
countTrailingZeros(uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return v ? unsigned(__builtin_ctzll(v)) : 64;
#else
    if (v == 0)
        return 64;
    unsigned n = 0;
    while ((v & 1) == 0) {
        v >>= 1;
        ++n;
    }
    return n;
#endif
}

/** A mask with the low @p bits set. */
constexpr uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~uint64_t(0) : (uint64_t(1) << bits) - 1;
}

/** Sign-extend the low @p bits of @p v to 64 bits. */
constexpr int64_t
signExtend(uint64_t v, unsigned bits)
{
    const uint64_t sign_bit = uint64_t(1) << (bits - 1);
    const uint64_t m = mask(bits);
    v &= m;
    return (v & sign_bit) ? int64_t(v | ~m) : int64_t(v);
}

/** True iff the signed value @p v is representable in @p bits bits. */
constexpr bool
fitsSigned(int64_t v, unsigned bits)
{
    if (bits >= 64)
        return true;
    const int64_t lo = -(int64_t(1) << (bits - 1));
    const int64_t hi = (int64_t(1) << (bits - 1)) - 1;
    return v >= lo && v <= hi;
}

} // namespace psb

#endif // PSB_UTIL_BITFIELD_HH
