#include "util/table_printer.hh"

#include <cstdio>
#include <sstream>

namespace psb
{

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::fmt(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    return buf;
}

std::string
TablePrinter::str() const
{
    if (_rows.empty())
        return "";

    size_t cols = 0;
    for (const auto &row : _rows)
        cols = std::max(cols, row.size());

    std::vector<size_t> widths(cols, 0);
    for (const auto &row : _rows) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    for (size_t r = 0; r < _rows.size(); ++r) {
        const auto &row = _rows[r];
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << "\n";
        if (r == 0) {
            size_t line = 0;
            for (size_t c = 0; c < cols; ++c)
                line += widths[c] + (c + 1 < cols ? 2 : 0);
            out << std::string(line, '-') << "\n";
        }
    }
    return out.str();
}

void
TablePrinter::print() const
{
    std::fputs(str().c_str(), stdout);
}

} // namespace psb
