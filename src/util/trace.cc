#include "util/trace.hh"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/logging.hh"

namespace psb
{

std::atomic<uint32_t> g_traceMask{0};

namespace
{

/** Canonical flag names, indexed by TraceFlag value. */
const char *const kFlagNames[kNumTraceFlags] = {
    "psb",  "sched", "sfm", "markov",   "bus",
    "cache", "mshr", "cpu", "prefetch",
};

/** Escape a detail string for embedding in a JSON string literal. */
std::string
jsonEscape(const char *s)
{
    std::string out;
    for (const char *p = s; *p; ++p) {
        switch (*p) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if ((unsigned char)*p < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", *p);
                out += buf;
            } else {
                out += *p;
            }
        }
    }
    return out;
}

/** Key identifying one open span for the balance bookkeeping. */
std::string
spanKey(TraceFlag flag, const char *name, int track)
{
    return std::string(kFlagNames[unsigned(flag)]) + "|" + name + "|" +
           std::to_string(track);
}

} // namespace

TraceManager &
TraceManager::get()
{
    static TraceManager instance;
    return instance;
}

const char *
TraceManager::flagName(TraceFlag flag)
{
    return kFlagNames[unsigned(flag)];
}

std::string
TraceManager::validFlagList()
{
    std::string out;
    for (unsigned i = 0; i < kNumTraceFlags; ++i) {
        if (i)
            out += ",";
        out += kFlagNames[i];
    }
    return out;
}

std::optional<uint32_t>
TraceManager::parseFlags(const std::string &csv, std::string &bad_token)
{
    uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string token = csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        if (token == "all") {
            mask |= (uint32_t(1) << kNumTraceFlags) - 1;
            continue;
        }
        bool found = false;
        for (unsigned i = 0; i < kNumTraceFlags; ++i) {
            if (token == kFlagNames[i]) {
                mask |= uint32_t(1) << i;
                found = true;
                break;
            }
        }
        if (!found) {
            bad_token = token;
            return std::nullopt;
        }
    }
    return mask;
}

std::optional<TraceManager::Format>
TraceManager::parseFormat(const std::string &name)
{
    if (name == "text")
        return Format::Text;
    if (name == "jsonl")
        return Format::Jsonl;
    if (name == "chrome")
        return Format::Chrome;
    return std::nullopt;
}

void
TraceManager::configure(uint32_t mask, Format format, std::ostream &out,
                        Cycle window_start, Cycle window_end)
{
    MutexLock lock(_mu);
    finishLocked();
    _owned.reset();
    _out = &out;
    _format = format;
    _windowStart = window_start;
    _windowEnd = window_end;
    _now = Cycle{};
    _lastEmitted = Cycle{};
    _events = 0;
    _chromeFirst = true;
    _openSpans.clear();
    _active = true;
    g_traceMask.store(mask & ((uint32_t(1) << kNumTraceFlags) - 1),
                      std::memory_order_relaxed);
    if (_format == Format::Chrome)
        writeChromePreamble();
}

bool
TraceManager::configureFile(uint32_t mask, Format format,
                            const std::string &path, Cycle window_start,
                            Cycle window_end)
{
    if (path == "-") {
        configure(mask, format, std::cout, window_start, window_end);
        return true;
    }
    auto file = std::make_unique<std::ofstream>(
        path, std::ios::binary | std::ios::trunc);
    if (!*file)
        return false;
    configure(mask, format, *file, window_start, window_end);
    MutexLock lock(_mu);
    _owned = std::move(file);
    return true;
}

void
TraceManager::writeChromePreamble()
{
    // One Chrome "process" per flag, named up front so the viewer
    // shows component names instead of bare pids. Deterministic:
    // every flag in enum order, enabled or not.
    *_out << "[\n";
    for (unsigned i = 0; i < kNumTraceFlags; ++i) {
        *_out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
              << (i + 1)
              << ",\"tid\":0,\"args\":{\"name\":\"" << kFlagNames[i]
              << "\"}}";
        *_out << ",\n";
    }
    // The comma chain continues from the metadata block.
    _chromeFirst = false;
    *_out << "{\"name\":\"trace_begin\",\"cat\":\"meta\",\"ph\":\"i\","
             "\"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"g\"}";
}

void
TraceManager::writeEvent(TraceFlag flag, char phase, Cycle cycle,
                         const char *name, int track, const char *detail)
{
    const char *fname = kFlagNames[unsigned(flag)];
    switch (_format) {
      case Format::Text:
        *_out << "[" << cycle.raw() << "] " << fname;
        if (track >= 0)
            *_out << "." << track;
        if (phase != 'I')
            *_out << " " << phase;
        *_out << " " << name;
        if (detail[0])
            *_out << " " << detail;
        *_out << "\n";
        break;
      case Format::Jsonl:
        *_out << "{\"cycle\":" << cycle.raw() << ",\"flag\":\"" << fname
              << "\",\"kind\":\"" << phase << "\",\"name\":\""
              << jsonEscape(name) << "\",\"track\":" << track
              << ",\"args\":\"" << jsonEscape(detail) << "\"}\n";
        break;
      case Format::Chrome: {
        if (!_chromeFirst)
            *_out << ",\n";
        _chromeFirst = false;
        const char *ph = phase == 'B' ? "B" : phase == 'E' ? "E" : "i";
        *_out << "{\"name\":\"" << jsonEscape(name) << "\",\"cat\":\""
              << fname << "\",\"ph\":\"" << ph
              << "\",\"ts\":" << cycle.raw()
              << ",\"pid\":" << (unsigned(flag) + 1)
              << ",\"tid\":" << (track + 1);
        if (phase == 'I')
            *_out << ",\"s\":\"t\"";
        if (phase != 'E' && detail[0])
            *_out << ",\"args\":{\"detail\":\"" << jsonEscape(detail)
                  << "\"}";
        *_out << "}";
        break;
      }
    }
    ++_events;
    _lastEmitted = cycle;
}

void
TraceManager::emit(TraceFlag flag, char phase, const char *name,
                   int track, const char *fmt, va_list args)
{
    // PSB_REQUIRES(_mu): the public entry points below hold the lock.
    if (!_active || !_out)
        return;
    if (_now < _windowStart || _now >= _windowEnd)
        return;

    char detail[512];
    detail[0] = '\0';
    if (fmt && fmt[0]) {
        std::vsnprintf(detail, sizeof(detail), fmt, args);
        detail[sizeof(detail) - 1] = '\0';
    }

    if (phase == 'B')
        ++_openSpans[spanKey(flag, name, track)];
    writeEvent(flag, phase, _now, name, track, detail);
}

void
TraceManager::instant(TraceFlag flag, const char *name, int track,
                      const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    {
        MutexLock lock(_mu);
        emit(flag, 'I', name, track, fmt, args);
    }
    va_end(args);
}

void
TraceManager::begin(TraceFlag flag, const char *name, int track,
                    const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    {
        MutexLock lock(_mu);
        emit(flag, 'B', name, track, fmt, args);
    }
    va_end(args);
}

void
TraceManager::end(TraceFlag flag, const char *name, int track)
{
    MutexLock lock(_mu);
    if (!_active || !_out)
        return;
    // An end whose begin was never emitted (span opened before the
    // trace window, or after it closed) is dropped so begins and ends
    // stay balanced in the output.
    auto it = _openSpans.find(spanKey(flag, name, track));
    if (it == _openSpans.end() || it->second == 0)
        return;
    if (--it->second == 0)
        _openSpans.erase(it);
    Cycle cycle = _now;
    if (cycle >= _windowEnd)
        cycle = _lastEmitted;
    writeEvent(flag, 'E', cycle, name, track, "");
}

void
TraceManager::finish()
{
    MutexLock lock(_mu);
    finishLocked();
}

void
TraceManager::finishLocked()
{
    if (!_active) {
        g_traceMask.store(0, std::memory_order_relaxed);
        return;
    }
    // Close spans still open (streams live at the end of the run) so
    // every begin has a matching end. Map order is deterministic.
    for (const auto &[key, depth] : _openSpans) {
        std::size_t bar1 = key.find('|');
        std::size_t bar2 = key.rfind('|');
        std::string fname = key.substr(0, bar1);
        std::string name = key.substr(bar1 + 1, bar2 - bar1 - 1);
        int track = std::stoi(key.substr(bar2 + 1));
        TraceFlag flag = TraceFlag::Psb;
        for (unsigned i = 0; i < kNumTraceFlags; ++i) {
            if (fname == kFlagNames[i])
                flag = TraceFlag(i);
        }
        for (unsigned d = 0; d < depth; ++d)
            writeEvent(flag, 'E', _lastEmitted, name.c_str(), track, "");
    }
    _openSpans.clear();
    if (_out && _format == Format::Chrome)
        *_out << "\n]\n";
    if (_out)
        _out->flush();
    _active = false;
    g_traceMask.store(0, std::memory_order_relaxed);
}

void
TraceManager::reset()
{
    MutexLock lock(_mu);
    finishLocked();
    _out = nullptr;
    _owned.reset();
    _events = 0;
}

} // namespace psb
