/**
 * @file
 * Column-aligned ASCII table output used by the bench harnesses to
 * print the paper's tables and figure series in a diff-friendly way.
 */

#ifndef PSB_UTIL_TABLE_PRINTER_HH
#define PSB_UTIL_TABLE_PRINTER_HH

#include <string>
#include <vector>

namespace psb
{

/**
 * Accumulates rows of string cells and prints them with columns padded
 * to the widest cell. The first row added is treated as the header and
 * underlined on output.
 */
class TablePrinter
{
  public:
    /** Add a row of cells. All rows should have the same arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string fmt(double v, int precision = 2);

    /** Convenience: format an unsigned integer. */
    static std::string fmt(uint64_t v);

    /** Render the table to a string. */
    std::string str() const;

    /** Print the table to stdout. */
    void print() const;

  private:
    std::vector<std::vector<std::string>> _rows;
};

} // namespace psb

#endif // PSB_UTIL_TABLE_PRINTER_HH
