/**
 * @file
 * Gated event-tracing layer, in the spirit of gem5's DPRINTF flags.
 *
 * Every component traces through one process-wide TraceManager under a
 * named per-component flag (psb, sched, sfm, markov, bus, cache, mshr,
 * cpu). The PSB_TRACE family of macros tests a single global bitmask
 * before evaluating any argument, so a disabled flag costs exactly one
 * predicted-not-taken branch at the call site — the zero-cost-when-off
 * contract the golden-stats harness depends on (see DESIGN.md
 * §"Observability"). Compiling with -DPSB_TRACE_DISABLED removes the
 * call sites entirely.
 *
 * Three pluggable sinks render the event stream:
 *  - Text:   one human-readable line per event (gem5-trace style).
 *  - Jsonl:  one JSON object per line, deterministic field order;
 *            consumed by tools/psb_trace.py.
 *  - Chrome: a trace-event (catapult) JSON array that loads directly
 *            in chrome://tracing or Perfetto. Stream-buffer lifetimes
 *            appear as duration events (one track per buffer) and
 *            hits/thrashes/priority bumps as instants; ts is in
 *            simulated cycles rendered as microseconds.
 *
 * Determinism: events carry only simulation state (cycles, addresses,
 * counters), never wall-clock time or pointers, so a traced run is
 * byte-identical across repeats — the determinism contract extends to
 * traces (tests/test_tracing.cc pins this down).
 *
 * Span accounting: begin()/end() pairs (stream-buffer lifetimes) are
 * balanced by construction — finish() emits synthetic end events for
 * spans still open at the end of the run, and an end whose begin fell
 * outside the trace window is dropped, so every emitted begin has
 * exactly one matching end (tools/psb_trace.py validates this).
 *
 * Thread safety: the enable mask is an atomic read with relaxed order
 * on the macro fast path (still one load + test when off), and every
 * TraceManager member is PSB_GUARDED_BY the manager's internal Mutex
 * (util/thread_annotations.hh), acquired by each public method — so a
 * stray traced call from a sweep worker corrupts nothing. Concurrent
 * *useful* tracing is still unsupported (events would interleave in
 * one sink), which is why SweepEngine::run refuses jobs > 1 while any
 * flag is enabled. Rule R8 audits the annotation coverage and clang
 * -Wthread-safety enforces the locking under PSB_WERROR.
 */

#ifndef PSB_UTIL_TRACE_HH
#define PSB_UTIL_TRACE_HH

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>

#include "util/strong_types.hh"
#include "util/thread_annotations.hh"

namespace psb
{

/** One trace flag per component subsystem. */
enum class TraceFlag : unsigned
{
    Psb,    ///< stream-buffer decisions: alloc, hit, thrash, priority
    Sched,  ///< predictor-port / prefetch-slot arbitration
    Sfm,    ///< SFM predictor training and predictions, stride table
    Markov, ///< differential Markov table updates and overflows
    Bus,    ///< bus transactions and occupancy
    Cache,  ///< cache insertions, evictions, L2 outcomes
    Mshr,   ///< MSHR allocations, merges
    Cpu,    ///< core events: mispredicts, stalls, load misses
    Prefetch, ///< prefetch lifecycle: issue span + terminal outcome
    NumFlags,
};

constexpr unsigned kNumTraceFlags = unsigned(TraceFlag::NumFlags);

/**
 * The global enable mask read by the PSB_TRACE macros. Bit i enables
 * TraceFlag(i). Written only by TraceManager::configure()/reset();
 * components must treat it as read-only (and read it only through
 * traceEnabled()). Atomic because sweep workers read it (through
 * traceAnyEnabled() gates) while the main thread may configure; the
 * relaxed load keeps the disabled fast path at one load + test.
 */
extern std::atomic<uint32_t> g_traceMask;

/** True iff @p flag is enabled. The macro fast path. */
inline bool
traceEnabled(TraceFlag flag)
{
    return (g_traceMask.load(std::memory_order_relaxed) &
            (uint32_t(1) << unsigned(flag))) != 0;
}

/** True iff any flag is enabled (gates per-cycle bookkeeping). */
inline bool
traceAnyEnabled()
{
    return g_traceMask.load(std::memory_order_relaxed) != 0;
}

/** See file comment. */
class TraceManager
{
  public:
    /** Sink output format. */
    enum class Format
    {
        Text,   ///< human-readable lines
        Jsonl,  ///< one JSON object per line (tools/psb_trace.py)
        Chrome, ///< chrome://tracing / Perfetto trace-event JSON
    };

    /** The process-wide manager. */
    static TraceManager &get();

    /**
     * Enable tracing: events for flags in @p mask go to @p out in
     * @p format, restricted to cycles in [window_start, window_end).
     * @p out is not owned and must outlive the manager or the next
     * reset(). Any previously configured sink is finished first.
     */
    void configure(uint32_t mask, Format format, std::ostream &out,
                   Cycle window_start = Cycle{},
                   Cycle window_end = Cycle::max());

    /**
     * As configure(), but writing to @p path ("-" = stdout). The
     * stream is owned by the manager.
     * @retval false when the file cannot be opened (mask left clear).
     */
    bool configureFile(uint32_t mask, Format format,
                       const std::string &path,
                       Cycle window_start = Cycle{},
                       Cycle window_end = Cycle::max());

    /**
     * Close out the trace: emit synthetic end events for open spans,
     * write the Chrome trailer, flush, and clear the enable mask. Safe
     * to call when tracing was never configured.
     */
    void finish();

    /** finish() and detach the sink (drops an owned stream). */
    void reset();

    /**
     * The current simulation cycle, maintained by the driving loop
     * (Simulator::run) via setNow(). Events are stamped with it, so
     * components need no cycle plumbing of their own.
     */
    Cycle
    now() const
    {
        MutexLock lock(_mu);
        return _now;
    }

    void
    setNow(Cycle now)
    {
        MutexLock lock(_mu);
        _now = now;
    }

    /** Emit an instant event. Use via PSB_TRACE. */
    void instant(TraceFlag flag, const char *name, int track,
                 const char *fmt, ...)
        __attribute__((format(printf, 5, 6)));

    /** Open a duration span. Use via PSB_TRACE_BEGIN. */
    void begin(TraceFlag flag, const char *name, int track,
               const char *fmt, ...)
        __attribute__((format(printf, 5, 6)));

    /**
     * Close the innermost open span with this (flag, name, track).
     * Dropped silently when no such span is open (its begin fell
     * outside the trace window). Use via PSB_TRACE_END.
     */
    void end(TraceFlag flag, const char *name, int track);

    /** Events emitted since configure() (window-filtered). */
    uint64_t
    eventCount() const
    {
        MutexLock lock(_mu);
        return _events;
    }

    /** Canonical lower-case name of @p flag. */
    static const char *flagName(TraceFlag flag);

    /**
     * Parse a comma-separated flag list ("psb,sched" or "all") into a
     * mask. On an unknown name returns std::nullopt and stores the
     * offending token in @p bad_token.
     */
    static std::optional<uint32_t> parseFlags(const std::string &csv,
                                              std::string &bad_token);

    /** Parse a format name (text|jsonl|chrome). */
    static std::optional<Format> parseFormat(const std::string &name);

    /** All valid flag names, comma-separated (for error messages). */
    static std::string validFlagList();

  private:
    TraceManager() = default;

    void emit(TraceFlag flag, char phase, const char *name, int track,
              const char *fmt, va_list args) PSB_REQUIRES(_mu);
    void writeEvent(TraceFlag flag, char phase, Cycle cycle,
                    const char *name, int track, const char *detail)
        PSB_REQUIRES(_mu);
    void writeChromePreamble() PSB_REQUIRES(_mu);
    /** finish() body for callers already holding the lock. */
    void finishLocked() PSB_REQUIRES(_mu);

    /**
     * Guards every member below. Public methods acquire it; private
     * helpers document the expectation with PSB_REQUIRES instead.
     * mutable so const accessors (now, eventCount) can lock.
     */
    mutable Mutex _mu;

    std::ostream *_out PSB_GUARDED_BY(_mu) = nullptr;
    std::unique_ptr<std::ostream> _owned PSB_GUARDED_BY(_mu);
    Format _format PSB_GUARDED_BY(_mu) = Format::Text;
    Cycle _windowStart PSB_GUARDED_BY(_mu) = {};
    Cycle _windowEnd PSB_GUARDED_BY(_mu) = Cycle::max();
    Cycle _now PSB_GUARDED_BY(_mu) = {};
    Cycle _lastEmitted PSB_GUARDED_BY(_mu) = {};
    uint64_t _events PSB_GUARDED_BY(_mu) = 0;
    bool _chromeFirst PSB_GUARDED_BY(_mu) = true;
    bool _active PSB_GUARDED_BY(_mu) = false;
    /** Open begin() spans: key -> nesting depth, for balanced closes. */
    std::map<std::string, unsigned> _openSpans PSB_GUARDED_BY(_mu);
};

} // namespace psb

/*
 * The tracing macros. `flag` is a bare TraceFlag enumerator name
 * (PSB_TRACE(Psb, ...)); the remaining arguments are an event name, an
 * integer track (buffer index etc., -1 for none), and a printf-style
 * detail string. Arguments are NOT evaluated when the flag is off: the
 * whole call compiles to one predicted-not-taken branch on a global
 * bitmask, and to nothing at all under -DPSB_TRACE_DISABLED.
 */
#ifdef PSB_TRACE_DISABLED

#define PSB_TRACE(flag, ...)                                             \
    do {                                                                 \
    } while (0)
#define PSB_TRACE_BEGIN(flag, ...)                                       \
    do {                                                                 \
    } while (0)
#define PSB_TRACE_END(flag, ...)                                         \
    do {                                                                 \
    } while (0)
#define PSB_TRACE_SET_NOW(cycle)                                         \
    do {                                                                 \
    } while (0)

#else

#define PSB_TRACE(flag, ...)                                             \
    do {                                                                 \
        if (__builtin_expect(                                            \
                ::psb::traceEnabled(::psb::TraceFlag::flag), 0)) {       \
            ::psb::TraceManager::get().instant(::psb::TraceFlag::flag,   \
                                               __VA_ARGS__);             \
        }                                                                \
    } while (0)

#define PSB_TRACE_BEGIN(flag, ...)                                       \
    do {                                                                 \
        if (__builtin_expect(                                            \
                ::psb::traceEnabled(::psb::TraceFlag::flag), 0)) {       \
            ::psb::TraceManager::get().begin(::psb::TraceFlag::flag,     \
                                             __VA_ARGS__);               \
        }                                                                \
    } while (0)

#define PSB_TRACE_END(flag, ...)                                         \
    do {                                                                 \
        if (__builtin_expect(                                            \
                ::psb::traceEnabled(::psb::TraceFlag::flag), 0)) {       \
            ::psb::TraceManager::get().end(::psb::TraceFlag::flag,       \
                                           __VA_ARGS__);                 \
        }                                                                \
    } while (0)

/** Advance the manager's cycle stamp; gated so idle cost is one test. */
#define PSB_TRACE_SET_NOW(cycle)                                         \
    do {                                                                 \
        if (__builtin_expect(::psb::traceAnyEnabled(), 0))               \
            ::psb::TraceManager::get().setNow(cycle);                    \
    } while (0)

#endif // PSB_TRACE_DISABLED

#endif // PSB_UTIL_TRACE_HH
