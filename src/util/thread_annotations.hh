/**
 * @file
 * Clang thread-safety annotation layer and the annotated
 * synchronization primitives the concurrency-bearing subsystems
 * (sim/sweep, util/logging, util/trace) are written against.
 *
 * The PSB_* attribute macros expand to Clang's thread-safety
 * attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html)
 * under clang and to nothing elsewhere, so the annotations are free on
 * gcc and enforced — as compile errors under PSB_WERROR — wherever
 * clang builds the tree with -Wthread-safety.
 *
 * Why wrapper types instead of annotating std::mutex usage directly:
 * libstdc++'s std::mutex and std::lock_guard carry no thread-safety
 * attributes, so Clang's analysis cannot see their acquire/release
 * semantics and would flag every guarded access as unlocked. Mutex,
 * MutexLock, and CondVar below are thin zero-overhead wrappers whose
 * lock operations ARE annotated; all shared mutable state in the tree
 * is declared PSB_GUARDED_BY one of these Mutexes (rule R8 in
 * tools/psb_rules.py audits that coverage, and clang -Wthread-safety
 * then proves the locking discipline around every access).
 *
 * Conventions (DESIGN.md §12):
 *  - every mutable member of a class that owns a Mutex is either
 *    PSB_GUARDED_BY that Mutex, a synchronization type itself
 *    (Mutex/CondVar/std::atomic/CancelToken), or carries an inline
 *    `// psb-analyze: allow(R8)` with the external-synchronization
 *    protocol that replaces the lock (e.g. slot ownership);
 *  - mutable namespace-scope state in a concurrency-bearing TU is
 *    const, atomic, or PSB_GUARDED_BY a namespace-scope Mutex;
 *  - private `*Locked()` helpers that expect the lock held are
 *    annotated PSB_REQUIRES(mu) instead of re-acquiring.
 */

#ifndef PSB_UTIL_THREAD_ANNOTATIONS_HH
#define PSB_UTIL_THREAD_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define PSB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PSB_THREAD_ANNOTATION(x) // not clang: annotations are free
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define PSB_CAPABILITY(x) PSB_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define PSB_SCOPED_CAPABILITY PSB_THREAD_ANNOTATION(scoped_lockable)

/** The declared variable may only be accessed while holding @p x. */
#define PSB_GUARDED_BY(x) PSB_THREAD_ANNOTATION(guarded_by(x))

/** The pointee of the declared pointer is guarded by @p x. */
#define PSB_PT_GUARDED_BY(x) PSB_THREAD_ANNOTATION(pt_guarded_by(x))

/** The function may only be called while holding the capabilities. */
#define PSB_REQUIRES(...)                                                \
    PSB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** The function acquires the capability and does not release it. */
#define PSB_ACQUIRE(...)                                                 \
    PSB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases the (held-on-entry) capability. */
#define PSB_RELEASE(...)                                                 \
    PSB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** try_lock-style: acquires iff it returns @p __VA_ARGS__'s first arg. */
#define PSB_TRY_ACQUIRE(...)                                             \
    PSB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** The function must NOT be called while holding the capabilities. */
#define PSB_EXCLUDES(...)                                                \
    PSB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Escape hatch; every use needs a comment justifying it. */
#define PSB_NO_THREAD_SAFETY_ANALYSIS                                    \
    PSB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace psb
{

/**
 * Annotated std::mutex. Also a BasicLockable, so CondVar can wait on
 * it directly (via std::condition_variable_any).
 */
class PSB_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() PSB_ACQUIRE()
    {
        _m.lock();
    }

    void
    unlock() PSB_RELEASE()
    {
        _m.unlock();
    }

    bool
    try_lock() PSB_TRY_ACQUIRE(true)
    {
        return _m.try_lock();
    }

  private:
    std::mutex _m;
};

/** Annotated RAII lock over a Mutex (std::lock_guard analog). */
class PSB_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) PSB_ACQUIRE(mu) : _mu(mu)
    {
        _mu.lock();
    }

    ~MutexLock() PSB_RELEASE() { _mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &_mu;
};

/**
 * Condition variable waiting on a Mutex. Built on
 * std::condition_variable_any, which accepts any BasicLockable — the
 * Mutex itself is passed as the lock, so no unannotated
 * std::unique_lock ever appears at a call site.
 */
class CondVar
{
  public:
    /** Atomically release @p mu, sleep, and re-acquire before return. */
    void
    wait(Mutex &mu) PSB_REQUIRES(mu)
    {
        _cv.wait(mu);
    }

    /** As wait(), but wakes after @p rel_time even without a notify. */
    template <class Rep, class Period>
    void
    waitFor(Mutex &mu,
            const std::chrono::duration<Rep, Period> &rel_time)
        PSB_REQUIRES(mu)
    {
        _cv.wait_for(mu, rel_time);
    }

    void notifyOne() { _cv.notify_one(); }
    void notifyAll() { _cv.notify_all(); }

  private:
    std::condition_variable_any _cv;
};

} // namespace psb

#endif // PSB_UTIL_THREAD_ANNOTATIONS_HH
