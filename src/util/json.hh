/**
 * @file
 * Minimal recursive JSON reader for configuration inputs (the sweep
 * spec, chiefly). Deliberately small: objects, arrays, strings with
 * basic escapes, numbers, booleans, and null — everything a
 * declarative spec needs and nothing more.
 *
 * Two properties matter here and distinguish this from a generic
 * parser:
 *  - Object keys keep their *insertion order* (a vector of pairs, not
 *    a map), so axis expansion order is exactly the order the spec
 *    author wrote.
 *  - Duplicate keys inside one object are a hard parse error, never a
 *    silent last-one-wins. A sweep spec that says "buffers" twice is
 *    a bug in the spec, and accepting it would make the job grid
 *    differ from what the author believes they asked for.
 *
 * Numbers keep their source spelling in `raw` alongside the parsed
 * double, so integer values round-trip exactly into config fields and
 * job keys.
 */

#ifndef PSB_UTIL_JSON_HH
#define PSB_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace psb
{

/** One parsed JSON value; a tagged tree. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string raw;  ///< number: the spelling as written
    std::string str;  ///< string payload
    std::vector<JsonValue> array;
    /** Members in insertion order; keys verified unique at parse. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /**
     * The value as a non-negative integer. @retval false when the
     * value is not a number, is negative, or has a fractional part.
     */
    bool asUInt(uint64_t &out) const;

    /**
     * Render the value as the flat token a config key expects:
     * numbers keep their source spelling, strings their payload,
     * booleans "true"/"false". @retval false for arrays/objects/null.
     */
    bool asConfigToken(std::string &out) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected).
 * @param out The parsed tree (overwritten).
 * @param error Human-readable message with offset when returning false.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

} // namespace psb

#endif // PSB_UTIL_JSON_HH
