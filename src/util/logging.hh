/**
 * @file
 * Error-reporting and status-message helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts so a debugger or core dump can be attached.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid argument); exits with code 1.
 * warn()   — something is modelled approximately but the run continues.
 * inform() — plain status output.
 *
 * Thread safety: call sites are reachable from sweep-engine worker
 * threads, so every function here emits its whole line under one
 * internal Mutex (util/thread_annotations.hh) — concurrent reports
 * never interleave mid-line. The lock discipline is annotated for
 * clang -Wthread-safety and audited by rule R8 (tools/psb_rules.py).
 */

#ifndef PSB_UTIL_LOGGING_HH
#define PSB_UTIL_LOGGING_HH

#include <atomic>
#include <cstdarg>

namespace psb
{

/** Print a formatted message prefixed with "panic:" and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message prefixed with "fatal:" and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * warn(), but at most once per call site. For per-event modelling
 * approximations (an MSHR-full fill falling back to untracked, say)
 * that would otherwise repeat millions of times and flood stderr on a
 * long run: the first occurrence is reported, the rest are silent.
 * The flag is atomic: call sites are reachable from sweep-engine
 * worker threads (sim/sweep.hh), where a plain static would race.
 */
#define warn_once(...)                                                   \
    do {                                                                 \
        static std::atomic<bool> psb_warned_once_{false};                \
        if (!psb_warned_once_.exchange(true,                             \
                                       std::memory_order_relaxed)) {     \
            ::psb::warn(__VA_ARGS__);                                    \
        }                                                                \
    } while (0)

/**
 * Assert-like macro that survives NDEBUG builds. Use for simulator
 * invariants whose violation means the model itself is broken.
 */
#define psb_assert(cond, ...)                                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::psb::panic("assertion '%s' failed at %s:%d", #cond,        \
                         __FILE__, __LINE__);                            \
        }                                                                \
    } while (0)

} // namespace psb

#endif // PSB_UTIL_LOGGING_HH
