#include "util/stats_json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace psb
{

namespace
{

/** Minimal escaping; stat paths are [a-z0-9._] but stay safe anyway. */
std::string
escapeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
formatStatReal(double v)
{
    // Stats are ratios, means, and utilisations of finite counters;
    // a non-finite value is a modelling bug, not a formatting choice.
    psb_assert(std::isfinite(v), "non-finite stat value");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
statsToJson(const std::map<std::string, StatValue> &snapshot)
{
    std::ostringstream out;
    out << "{\n";
    bool first = true;
    for (const auto &[path, value] : snapshot) {
        if (!first)
            out << ",\n";
        first = false;
        out << "  \"" << escapeKey(path) << "\": ";
        if (value.kind == StatValue::Kind::Scalar) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%llu",
                          (unsigned long long)value.scalar);
            out << buf;
        } else {
            out << formatStatReal(value.real);
        }
    }
    out << "\n}\n";
    return out.str();
}

namespace
{

/** Cursor over the JSON text with one-line error reporting. */
struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        std::ostringstream msg;
        msg << what << " at offset " << pos;
        error = msg.str();
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    expect(char c)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("dangling escape");
                c = text[pos++];
            }
            out.push_back(c);
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos;
        return true;
    }

    bool
    parseNumber(ParsedStat &out)
    {
        skipSpace();
        size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        if (pos == start)
            return fail("expected number");
        out.raw = text.substr(start, pos - start);
        char *end = nullptr;
        out.value = std::strtod(out.raw.c_str(), &end);
        if (end != out.raw.c_str() + out.raw.size())
            return fail("malformed number '" + out.raw + "'");
        return true;
    }
};

} // namespace

bool
parseStatsJson(const std::string &text,
               std::map<std::string, ParsedStat> &out, std::string &error)
{
    out.clear();
    Parser p{text, 0, {}};

    if (!p.expect('{')) {
        error = p.error;
        return false;
    }

    p.skipSpace();
    if (p.pos < text.size() && text[p.pos] == '}') {
        ++p.pos;
        return true;
    }

    while (true) {
        std::string key;
        ParsedStat stat;
        if (!p.parseString(key) || !p.expect(':') ||
            !p.parseNumber(stat)) {
            error = p.error;
            return false;
        }
        if (!out.emplace(key, std::move(stat)).second) {
            error = "duplicate key '" + key + "'";
            return false;
        }
        p.skipSpace();
        if (p.pos < text.size() && text[p.pos] == ',') {
            ++p.pos;
            continue;
        }
        break;
    }

    if (!p.expect('}')) {
        error = p.error;
        return false;
    }
    return true;
}

} // namespace psb
