/**
 * @file
 * The hot-path discipline annotation (DESIGN.md §14).
 *
 * PSB_HOT_PATH marks a function as a *per-cycle hot-path root*: code
 * that runs every simulated cycle (or for every cache/TLB/MSHR probe,
 * predictor lookup, or stream-buffer scheduling decision) and
 * therefore must uphold the hot-path discipline the ≥3x
 * cycles-per-second goal rests on:
 *
 *   R10  no heap allocation — no operator new/malloc, no growing
 *        std containers, no std::string construction — anywhere in
 *        the call graph below the root;
 *   R11  no throw statements, no throwing stdlib calls (.at(),
 *        stoi(), optional::value(), ...), no unbounded recursion;
 *   R12  no unresolved virtual or indirect dispatch: every virtual
 *        call must resolve to a known in-tree override set, and
 *        std::function / function-pointer calls need an explicit
 *        `// psb-analyze: allow(R12)` with a rationale.
 *
 * The contract is *checked*, not aspirational: tools/psb_analyze.py
 * builds an interprocedural call graph over the annotated roots and
 * proves the three rules statically, and the debug-build AllocGuard
 * (util/alloc_guard.hh) cross-checks R10 dynamically by interposing
 * operator new over the steady-state cycle loop.
 *
 * Usage — annotate the *declaration* (in a src/ header; psb_lint
 * flags annotations in tests/ or tools/):
 *
 *     PSB_HOT_PATH bool tick(Cycle now);
 *
 * The macro expands to the compiler's `hot` attribute (better block
 * placement and more aggressive inlining for the annotated function)
 * where supported and to nothing elsewhere; its analyzer-visible
 * effect is the token itself, which psb_analyze reads as the root
 * marker.
 */

#ifndef PSB_UTIL_HOT_PATH_HH
#define PSB_UTIL_HOT_PATH_HH

#if defined(__GNUC__) || defined(__clang__)
#define PSB_HOT_PATH __attribute__((hot))
#else
#define PSB_HOT_PATH
#endif

#endif // PSB_UTIL_HOT_PATH_HH
