#include "cpu/branch_predictor.hh"

#include <cstddef>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace psb
{

GsharePredictor::GsharePredictor(const GshareConfig &cfg)
    : _cfg(cfg),
      _pht(std::size_t(1) << cfg.historyBits, SatCounter(3, 1)),
      _btb(cfg.btbEntries),
      _historyMask(mask(cfg.historyBits))
{
    psb_assert(cfg.historyBits >= 1 && cfg.historyBits <= 24,
               "gshare history must be 1..24 bits");
    psb_assert(cfg.btbEntries % cfg.btbAssoc == 0,
               "BTB entries must divide into sets");
    psb_assert(isPowerOf2(cfg.btbEntries / cfg.btbAssoc),
               "BTB sets must be a power of two");
}

unsigned
GsharePredictor::phtIndex(Addr pc) const
{
    return unsigned(((pc.raw() >> 2) ^ _history) & _historyMask);
}

unsigned
GsharePredictor::btbSet(Addr pc) const
{
    unsigned sets = _cfg.btbEntries / _cfg.btbAssoc;
    return unsigned((pc.raw() >> 2) & (sets - 1));
}

bool
GsharePredictor::predict(Addr pc, Addr &predicted_target) const
{
    ++_lookups;
    predicted_target = Addr{};
    const BtbEntry *set = &_btb[std::size_t(btbSet(pc)) * _cfg.btbAssoc];
    for (unsigned w = 0; w < _cfg.btbAssoc; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            predicted_target = set[w].target;
            break;
        }
    }
    return _pht[phtIndex(pc)].value() >= 2;
}

bool
GsharePredictor::update(Addr pc, bool taken, Addr target)
{
    Addr predicted_target{};
    --_lookups; // predict() below is bookkeeping, not a real lookup
    bool predicted_taken = predict(pc, predicted_target);

    bool correct = (predicted_taken == taken) &&
        (!taken || predicted_target == target);
    if (!correct)
        ++_mispredicts;

    SatCounter &ctr = _pht[phtIndex(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();

    _history = ((_history << 1) | (taken ? 1 : 0)) & _historyMask;

    if (taken) {
        BtbEntry *set = &_btb[std::size_t(btbSet(pc)) * _cfg.btbAssoc];
        BtbEntry *victim = &set[0];
        for (unsigned w = 0; w < _cfg.btbAssoc; ++w) {
            if (set[w].valid && set[w].pc == pc) {
                victim = &set[w];
                break;
            }
            if (!set[w].valid) {
                victim = &set[w];
            } else if (victim->valid &&
                       set[w].lastUse < victim->lastUse) {
                victim = &set[w];
            }
        }
        victim->pc = pc;
        victim->target = target;
        victim->valid = true;
        victim->lastUse = ++_useStamp;
    }
    return correct;
}

} // namespace psb
