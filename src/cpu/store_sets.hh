/**
 * @file
 * Memory disambiguation policies.
 *
 * The paper's baseline uses *perfect store sets* [11]: a load depends
 * only on stores that actually write the memory it reads, so false
 * dependences never delay loads and prefetching speedups are not
 * inflated by a conservative disambiguation policy. Figure 11
 * contrasts this with no disambiguation (loads wait for all prior
 * stores to issue). Both policies are implemented directly in the
 * out-of-order core; this file provides the mode selection and, as an
 * extension beyond the paper, a learned Chrysos & Emer-style store-set
 * predictor (SSIT + LFST) for the ablation benches.
 */

#ifndef PSB_CPU_STORE_SETS_HH
#define PSB_CPU_STORE_SETS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/micro_op.hh"

namespace psb
{

class StatsRegistry;

/** How loads are ordered against earlier stores. */
enum class DisambiguationMode
{
    None,     ///< a load issues only after all prior stores issued
    Perfect,  ///< paper baseline: depend only on true aliases
    Learned,  ///< extension: learned store sets (SSIT/LFST)
};

const char *disambiguationModeName(DisambiguationMode mode);

/**
 * Learned store sets: loads and stores that alias are placed in a
 * common set; a load with a set waits for the last fetched store of
 * that set. Periodic invalidation keeps stale sets from accumulating.
 */
class StoreSetPredictor
{
  public:
    /**
     * @param ssit_entries Store-set identifier table size (2^n).
     * @param lfst_entries Last-fetched-store table size.
     * @param clear_interval Accesses between whole-table invalidations.
     */
    StoreSetPredictor(unsigned ssit_entries = 4096,
                      unsigned lfst_entries = 256,
                      uint64_t clear_interval = 1 << 18);

    /**
     * A memory op at @p pc is dispatched; sequence number @p seq.
     * @return The sequence number of the store this op must wait for,
     *         or 0 when unconstrained.
     */
    uint64_t dispatch(Addr pc, bool is_store, uint64_t seq);

    /** A store with sequence @p seq issued; clear it from the LFST. */
    void storeIssued(Addr pc, uint64_t seq);

    /** A load at @p load_pc violated ordering against @p store_pc. */
    void recordViolation(Addr load_pc, Addr store_pc);

    uint64_t violations() const { return _violations; }

    /** Export the violation counter under @p prefix. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    /** Zero the violation counter (end-of-warm-up); the SSIT/LFST
     *  contents are learned state and are kept. */
    void resetStats() { _violations = 0; }

  private:
    unsigned ssitIndex(Addr pc) const;

    struct SsitEntry
    {
        uint16_t setId = 0;
        bool valid = false;
    };

    struct LfstEntry
    {
        uint64_t storeSeq = 0; ///< 0 = empty
    };

    std::vector<SsitEntry> _ssit;
    std::vector<LfstEntry> _lfst;
    uint16_t _nextSetId = 1;
    uint64_t _accesses = 0;
    uint64_t _clearInterval;
    uint64_t _violations = 0;
};

} // namespace psb

#endif // PSB_CPU_STORE_SETS_HH
