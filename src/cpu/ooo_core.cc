#include "cpu/ooo_core.hh"

#include "util/alloc_guard.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace psb
{

OoOCore::OoOCore(const CoreConfig &cfg, MemoryHierarchy &hierarchy,
                 Prefetcher &prefetcher, TraceSource &trace)
    : _cfg(cfg),
      _hierarchy(hierarchy),
      _prefetcher(prefetcher),
      _trace(trace),
      _gshare(cfg.gshare),
      _rob(cfg.robEntries),
      _intDivFreeAt(cfg.numIntMulDiv, Cycle{}),
      _fpDivFreeAt(cfg.numFpMulDiv, Cycle{})
{
    psb_assert(cfg.robEntries > 0 && cfg.lsqEntries > 0,
               "ROB and LSQ must be non-empty");
}

bool
OoOCore::tick(Cycle now)
{
    if (done())
        return false;
    ++_stats.cycles;
    _nextWake = Cycle::max();
    _progress = false;
    commitStage(now);
    issueStage(now);
    fetchStage(now);
    // Anything committed/issued/fetched can unblock more work next
    // cycle; and a wake computed for the past means "retry at once".
    if (_progress || _nextWake <= now)
        _nextWake = now + CycleDelta(1);
    return true;
}

// ---------------------------------------------------------------------
// Functional units
// ---------------------------------------------------------------------

CycleDelta
OoOCore::execLatency(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu:  return CycleDelta(1);
      case OpClass::IntMult: return CycleDelta(3);
      case OpClass::IntDiv:  return CycleDelta(12);
      case OpClass::FpAdd:   return CycleDelta(2);
      case OpClass::FpMult:  return CycleDelta(4);
      case OpClass::FpDiv:   return CycleDelta(12);
      case OpClass::Branch:  return CycleDelta(1);
      case OpClass::Nop:     return CycleDelta(1);
      case OpClass::Load:
      case OpClass::Store:   return CycleDelta(1); // address generation
    }
    return CycleDelta(1);
}

bool
OoOCore::fuAvailable(OpClass cls, Cycle now)
{
    if (_fuCountersCycle != now) {
        _fuCountersCycle = now;
        _usedIntAlu = _usedLdSt = _usedFpAdd = 0;
        _usedIntMul = _usedFpMul = 0;
    }
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        return _usedIntAlu < _cfg.numIntAlu;
      case OpClass::Load:
      case OpClass::Store:
        return _usedLdSt < _cfg.numLdSt;
      case OpClass::FpAdd:
        return _usedFpAdd < _cfg.numFpAdd;
      case OpClass::IntMult:
        return _usedIntMul < _cfg.numIntMulDiv;
      case OpClass::FpMult:
        return _usedFpMul < _cfg.numFpMulDiv;
      case OpClass::IntDiv:
        for (Cycle t : _intDivFreeAt) {
            if (t <= now)
                return true;
        }
        return false;
      case OpClass::FpDiv:
        for (Cycle t : _fpDivFreeAt) {
            if (t <= now)
                return true;
        }
        return false;
    }
    return false;
}

void
OoOCore::consumeFu(OpClass cls, Cycle now)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        ++_usedIntAlu;
        break;
      case OpClass::Load:
      case OpClass::Store:
        ++_usedLdSt;
        break;
      case OpClass::FpAdd:
        ++_usedFpAdd;
        break;
      case OpClass::IntMult:
        ++_usedIntMul;
        break;
      case OpClass::FpMult:
        ++_usedFpMul;
        break;
      case OpClass::IntDiv:
        // Divides are unpipelined: occupy a shared MULT/DIV unit.
        for (Cycle &t : _intDivFreeAt) {
            if (t <= now) {
                t = now + execLatency(cls);
                return;
            }
        }
        panic("IntDiv issued with no free unit");
      case OpClass::FpDiv:
        for (Cycle &t : _fpDivFreeAt) {
            if (t <= now) {
                t = now + execLatency(cls);
                return;
            }
        }
        panic("FpDiv issued with no free unit");
    }
}

// ---------------------------------------------------------------------
// Dependence tracking
// ---------------------------------------------------------------------

/**
 * The cycle @p producer_seq's result is available: Cycle(0) when it
 * already is, Cycle::max() when the producer has not even issued yet
 * (its own issue attempt earlier in the ROB supplies the wake-up).
 *
 * Readiness is monotonic — doneAt is fixed at issue, committed
 * producers stay committed — so once a producer is known ready the
 * seq is cleared to 0 and later cycles skip the ROB walk entirely
 * (findEntry dominated the issue-stage profile before this).
 */
Cycle
OoOCore::producerReadyAt(uint64_t &producer_seq, Cycle now) const
{
    if (producer_seq == 0)
        return Cycle(0);
    const RobEntry *producer = findEntry(producer_seq);
    if (!producer) {
        producer_seq = 0; // producer already committed
        return Cycle(0);
    }
    if (!producer->issued)
        return Cycle::max();
    if (producer->doneAt <= now)
        producer_seq = 0;
    return producer->doneAt;
}

Cycle
OoOCore::operandsReadyAt(RobEntry &entry, Cycle now) const
{
    return maxCycle(producerReadyAt(entry.src1Producer, now),
                    producerReadyAt(entry.src2Producer, now));
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

bool
OoOCore::commitStore(RobEntry &entry, Cycle now)
{
    Addr addr = entry.op.effAddr;
    ++_stats.l1dAccesses;
    ++_stats.stores;

    ProbeResult probe = _hierarchy.probeData(addr, now);
    if (probe.resident) {
        ++_stats.l1dHits;
        _hierarchy.touchData(addr, /*is_write=*/true);
        return true;
    }

    if (probe.inFlight) {
        ++_stats.l1dMisses;
        ++_stats.l1dInFlight;
        // The tag is resident, the fill is on its way; mark dirty.
        _hierarchy.touchData(addr, /*is_write=*/true);
        return true;
    }

    // Stores search the stream buffers too: a predicted block services
    // the write-allocate without another L2 round trip.
    PrefetchLookup sb = _prefetcher.lookup(addr, now);
    if (sb.hit) {
        ++_stats.sbServiced;
        BlockAddr block = _hierarchy.blockOf(addr);
        if (sb.dataPending) {
            ++_stats.l1dMisses;
            ++_stats.l1dInFlight;
            _hierarchy.registerInFlightFill(block, sb.ready, now);
        } else {
            ++_stats.l1dHits;
            _hierarchy.fillFromStreamBuffer(block, now);
        }
        _hierarchy.touchData(addr, /*is_write=*/true);
        return true;
    }
    ++_stats.l1dMisses;

    FillOutcome fill = _hierarchy.missToL2(addr, now, /*is_write=*/true);
    if (fill.mshrStall) {
        ++_stats.mshrStallRetries;
        PSB_TRACE(Cpu, "mshr_stall", -1, "pc=%llu addr=%llu store=1",
                  (unsigned long long)entry.op.pc.raw(),
                  (unsigned long long)addr.raw());
        --_stats.l1dMisses;
        --_stats.l1dAccesses;
        --_stats.stores;
        return false; // hold commit; retry next cycle
    }
    return true;
}

void
OoOCore::commitStage(Cycle now)
{
    unsigned committed = 0;
    while (committed < _cfg.commitWidth && !_rob.empty()) {
        RobEntry &head = _rob.front();
        if (!head.issued)
            break; // issue stage supplies the wake-up
        if (head.doneAt > now) {
            clampWake(head.doneAt);
            break;
        }
        if (head.op.isStore()) {
            if (!commitStore(head, now)) {
                // MSHR-full: the failed attempt itself counted a
                // retry, so every stalled cycle must really tick.
                clampWake(now + CycleDelta(1));
                break;
            }
            --_storesInRob;
        }
        if (head.op.isMem())
            --_memOpsInRob;
        ++_stats.instructions;
        _rob.pop_front();
        ++committed;
    }
    if (committed)
        _progress = true;
}

// ---------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------

bool
OoOCore::executeLoad(RobEntry &entry, Cycle now)
{
    const Addr addr = entry.op.effAddr;
    const unsigned size = entry.op.memSize;

    // Memory disambiguation against earlier stores (skipped outright
    // when the ROB holds none — the common case for load-heavy code).
    // The alias is fixed at the first attempt (see RobEntry::aliasSeq),
    // so MSHR-stall retries skip the ROB walk; only the None policy
    // re-scans, since it needs the issue status of every prior store.
    const RobEntry *alias = nullptr;
    bool all_prior_stores_issued = true;
    if (_cfg.disambiguation == DisambiguationMode::None ||
        !entry.aliasKnown) {
        if (_storesInRob > 0) {
            for (auto it = _rob.begin(); it != _rob.end(); ++it) {
                if (it->seq >= entry.seq)
                    break;
                if (!it->op.isStore())
                    continue;
                if (!it->issued)
                    all_prior_stores_issued = false;
                Addr s = it->op.effAddr;
                if (s < addr + size && addr < s + it->op.memSize)
                    alias = &*it; // youngest older aliasing store wins
            }
        }
        entry.aliasSeq = alias ? alias->seq : 0;
        entry.aliasKnown = true;
    } else if (entry.aliasSeq != 0) {
        alias = findEntry(entry.aliasSeq); // null once committed
    }

    switch (_cfg.disambiguation) {
      case DisambiguationMode::None:
        // A load waits until all prior stores have issued.
        if (!all_prior_stores_issued)
            return false;
        break;
      case DisambiguationMode::Perfect:
        // Perfect store sets: wait only for a true alias.
        if (alias && !alias->issued)
            return false;
        break;
      case DisambiguationMode::Learned:
        if (entry.waitStoreSeq != 0) {
            const RobEntry *dep = findEntry(entry.waitStoreSeq);
            if (dep && dep->op.isStore() && !dep->issued)
                return false;
        }
        // An unissued alias the predictor did not connect would be an
        // ordering violation in real hardware; charge the squash.
        if (alias && !alias->issued) {
            ++_stats.orderViolations;
            PSB_TRACE(Cpu, "order_violation", -1,
                      "load_pc=%llu store_pc=%llu",
                      (unsigned long long)entry.op.pc.raw(),
                      (unsigned long long)alias->op.pc.raw());
            _storeSets.recordViolation(entry.op.pc, alias->op.pc);
            if (_fetchResumeAt != waitingForBranch) {
                Cycle resume = now + _cfg.mispredictPenalty;
                if (resume > _fetchResumeAt)
                    _fetchResumeAt = resume;
            }
            // Every retry cycle repeats this accounting: never skip.
            clampWake(now + CycleDelta(1));
            return false; // re-issue once the alias has issued
        }
        break;
    }

    ++_stats.loads;
    entry.storeForwarded = false;

    if (alias) {
        // Value bypassed from the store queue (2-cycle forward).
        ++_stats.storeForwards;
        entry.storeForwarded = true;
        Cycle base = alias->doneAt > now ? alias->doneAt : now;
        entry.doneAt = base + _cfg.storeForwardLatency;
        _stats.loadLatency.sample(double((entry.doneAt - now).raw()));
        _prefetcher.trainLoad(entry.op.pc, addr, /*l1_miss=*/false,
                              /*store_forwarded=*/true);
        return true;
    }

    ++_stats.l1dAccesses;
    ProbeResult probe = _hierarchy.probeData(addr, now);
    CycleDelta extra = probe.tlbPenalty;
    bool l1_miss = false;

    if (probe.resident) {
        ++_stats.l1dHits;
        _hierarchy.touchData(addr, /*is_write=*/false);
        entry.doneAt = now + _hierarchy.config().l1Latency + extra;
    } else if (probe.inFlight) {
        // Delayed hit: an earlier access already requested this block.
        // Counts as a miss (paper §6) but carries no new block
        // transition, so it does not train the predictor below.
        ++_stats.l1dMisses;
        ++_stats.l1dInFlight;
        Cycle data = probe.ready > now ? probe.ready : now;
        entry.doneAt = data + _hierarchy.config().l1Latency + extra;
    } else {
        l1_miss = true;
        // Stream buffers are searched in parallel with the L1D.
        PrefetchLookup sb = _prefetcher.lookup(addr, now);
        if (sb.hit) {
            ++_stats.sbServiced;
            BlockAddr block = _hierarchy.blockOf(addr);
            if (sb.dataPending) {
                // Tag hit, data in flight: tag moves into an MSHR.
                // Per the paper's accounting the access is a miss
                // (the block is still in flight).
                ++_stats.l1dMisses;
                ++_stats.l1dInFlight;
                _hierarchy.registerInFlightFill(block, sb.ready, now);
                entry.doneAt =
                    sb.ready + _hierarchy.config().l1Latency + extra;
                _stats.loadMissLatency.sample(
                    (entry.doneAt - now).raw());
                PSB_TRACE(Cpu, "load.miss", -1,
                          "pc=%llu addr=%llu kind=sb_pending",
                          (unsigned long long)entry.op.pc.raw(),
                          (unsigned long long)addr.raw());
            } else {
                // Data ready in the buffer: the block moves into the
                // L1D and the access is serviced on-chip — a hit for
                // the Figure 7 miss-rate accounting.
                ++_stats.l1dHits;
                _hierarchy.fillFromStreamBuffer(block, now);
                entry.doneAt =
                    now + _hierarchy.config().l1Latency + extra;
            }
        } else {
            ++_stats.l1dMisses;
            FillOutcome fill =
                _hierarchy.missToL2(addr, now, /*is_write=*/false);
            if (fill.mshrStall) {
                // No MSHR: the load cannot issue this cycle. The
                // retry counter advances every stalled cycle, so the
                // span cannot be skipped.
                ++_stats.mshrStallRetries;
                --_stats.loads;
                --_stats.l1dAccesses;
                --_stats.l1dMisses;
                clampWake(now + CycleDelta(1));
                PSB_TRACE(Cpu, "mshr_stall", -1, "pc=%llu addr=%llu",
                          (unsigned long long)entry.op.pc.raw(),
                          (unsigned long long)addr.raw());
                return false;
            }
            entry.doneAt = fill.ready + extra;
            _stats.loadMissLatency.sample((entry.doneAt - now).raw());
            PSB_TRACE(Cpu, "load.miss", -1,
                      "pc=%llu addr=%llu kind=demand l2_hit=%d",
                      (unsigned long long)entry.op.pc.raw(),
                      (unsigned long long)addr.raw(), int(fill.l2Hit));
            // Allocation request: missed the L1D and the buffers.
            _prefetcher.demandMiss(entry.op.pc, addr, now);
        }
    }

    _stats.loadLatency.sample(double((entry.doneAt - now).raw()));
    _prefetcher.trainLoad(entry.op.pc, addr, l1_miss,
                          /*store_forwarded=*/false);
    return true;
}

void
OoOCore::issueStage(Cycle now)
{
    unsigned issued = 0;
    const unsigned unissued_total = _unissuedCount;
    unsigned unissued_seen = 0;
    for (auto &entry : _rob) {
        if (issued >= _cfg.issueWidth || unissued_seen == unissued_total)
            break;
        if (entry.issued)
            continue;
        ++unissued_seen;
        if (entry.dispatchCycle >= now) {
            clampWake(entry.dispatchCycle + CycleDelta(1));
            continue;
        }
        // Unready operands wake the entry when the slowest issued
        // producer finishes; an unissued producer is older in the ROB
        // and already supplied its own wake-up this pass. An unknown
        // ready time can only become known after an issue, so the
        // epoch check skips the producer probes on stall cycles.
        Cycle ready = entry.opReadyAt;
        if (ready == Cycle::max() &&
            entry.readyCheckEpoch != _issueEpoch) {
            ready = entry.opReadyAt = operandsReadyAt(entry, now);
            entry.readyCheckEpoch = _issueEpoch;
        }
        if (ready > now) {
            if (ready != Cycle::max())
                clampWake(ready);
            continue;
        }
        if (!fuAvailable(entry.op.op, now)) {
            clampWake(now + CycleDelta(1));
            continue;
        }

        if (entry.op.isLoad()) {
            // A false return without a clamp is a disambiguation wait
            // on an older, unissued store — that store's own issue
            // attempt above supplied the wake-up.
            if (!executeLoad(entry, now))
                continue;
        } else if (entry.op.isStore()) {
            // Address generation; the cache write happens at commit.
            entry.doneAt = now + execLatency(OpClass::Store);
            if (_cfg.disambiguation == DisambiguationMode::Learned)
                _storeSets.storeIssued(entry.op.pc, entry.seq);
        } else {
            entry.doneAt = now + execLatency(entry.op.op);
        }

        consumeFu(entry.op.op, now);
        entry.issued = true;
        ++issued;
        --_unissuedCount;
        ++_issueEpoch;

        if (entry.op.isBranch() && entry.seq == _redirectBranchSeq) {
            // The mispredicted branch resolves; fetch restarts after
            // the minimum front-end refill penalty.
            _fetchResumeAt = entry.doneAt + _cfg.mispredictPenalty;
            _redirectBranchSeq = 0;
        }
    }
    if (issued)
        _progress = true;
}

// ---------------------------------------------------------------------
// Fetch / dispatch
// ---------------------------------------------------------------------

void
OoOCore::fetchStage(Cycle now)
{
    if (_fetchResumeAt == waitingForBranch)
        return; // the redirect branch issuing restarts fetch
    if (now < _fetchResumeAt) {
        clampWake(_fetchResumeAt);
        return;
    }

    unsigned fetched = 0;
    unsigned branches = 0;

    while (fetched < _cfg.fetchWidth) {
        if (_rob.size() >= _cfg.robEntries)
            break;

        if (!_havePending) {
            // Workload trace generation runs real allocating
            // algorithms by design; it is the one sanctioned heap
            // user inside the steady-state no-alloc scope. The
            // allow() is the static counterpart of the pause: it
            // prunes the generator subtree out of the R10 graph.
            PSB_ALLOC_GUARD_PAUSE();
            // psb-analyze: allow(R10)
            if (!_trace.next(_pendingOp)) {
                _traceDone = true;
                break;
            }
            _havePending = true;
        }

        if (_pendingOp.isMem() && _memOpsInRob >= _cfg.lsqEntries)
            break;

        // Instruction cache: one access per new fetch block.
        Addr fetch_block = _pendingOp.pc.alignDown(
            _hierarchy.config().l1i.blockBytes);
        if (fetch_block != _curFetchBlock) {
            Cycle ready = _hierarchy.instFetch(_pendingOp.pc, now);
            _curFetchBlock = fetch_block;
            if (ready > now + _hierarchy.config().l1Latency) {
                _fetchResumeAt = ready;
                clampWake(ready);
                break;
            }
        }

        RobEntry entry;
        entry.op = _pendingOp;
        entry.seq = _nextSeq++;
        entry.dispatchCycle = now;
        _havePending = false;

        // Register dependences: record the current last writers.
        if (entry.op.src1 != regNone)
            entry.src1Producer = _regLastWriter[entry.op.src1];
        if (entry.op.src2 != regNone)
            entry.src2Producer = _regLastWriter[entry.op.src2];
        if (entry.op.dst != regNone)
            _regLastWriter[entry.op.dst] = entry.seq;

        if (entry.op.isMem()) {
            ++_memOpsInRob;
            if (entry.op.isStore())
                ++_storesInRob;
            if (_cfg.disambiguation == DisambiguationMode::Learned) {
                entry.waitStoreSeq = _storeSets.dispatch(
                    entry.op.pc, entry.op.isStore(), entry.seq);
            }
        }

        bool is_branch = entry.op.isBranch();
        bool taken = entry.op.taken;
        Addr pc = entry.op.pc;
        Addr target = entry.op.target;
        uint64_t seq = entry.seq;

        _rob.push_back(entry);
        ++fetched;
        ++_unissuedCount;

        if (is_branch) {
            ++_stats.branches;
            ++branches;
            bool correct = _gshare.update(pc, taken, target);
            if (!correct) {
                ++_stats.mispredicts;
                PSB_TRACE(Cpu, "mispredict", -1, "pc=%llu taken=%d",
                          (unsigned long long)pc.raw(), int(taken));
                // Fetch stops until this branch resolves at execute.
                _fetchResumeAt = waitingForBranch;
                _redirectBranchSeq = seq;
                break;
            }
            if (taken)
                break; // fetch continues at the target next cycle
            if (branches >= _cfg.maxBranchesPerFetch)
                break;
        }
    }
    if (fetched)
        _progress = true;
}

void
OoOCore::registerStats(StatsRegistry &reg) const
{
    reg.addScalar("core.cycles", &_stats.cycles);
    reg.addScalar("core.instructions", &_stats.instructions);
    reg.addScalar("core.loads", &_stats.loads);
    reg.addScalar("core.stores", &_stats.stores);
    reg.addScalar("core.branches", &_stats.branches);
    reg.addScalar("core.mispredicts", &_stats.mispredicts);
    reg.addScalar("core.store_forwards", &_stats.storeForwards);
    reg.addScalar("core.mshr_stall_retries", &_stats.mshrStallRetries);
    reg.addScalar("core.order_violations", &_stats.orderViolations);
    reg.addScalar("core.sb_serviced", &_stats.sbServiced);
    reg.addReal("core.ipc", [this] { return _stats.ipc(); });
    reg.addAverage("core.load_latency", &_stats.loadLatency);

    reg.addReal("l1d.latency.p50", [this] {
        return double(_stats.loadMissLatency.percentile(0.50));
    });
    reg.addReal("l1d.latency.p90", [this] {
        return double(_stats.loadMissLatency.percentile(0.90));
    });
    reg.addReal("l1d.latency.p99", [this] {
        return double(_stats.loadMissLatency.percentile(0.99));
    });
    reg.addScalar("l1d.latency.samples", [this] {
        return _stats.loadMissLatency.total();
    });
    reg.addScalar("l1d.latency.overflow", [this] {
        return _stats.loadMissLatency.bucket(
            _stats.loadMissLatency.numBuckets());
    });

    reg.addScalar("l1d.accesses", &_stats.l1dAccesses);
    reg.addScalar("l1d.hits", &_stats.l1dHits);
    reg.addScalar("l1d.misses", &_stats.l1dMisses);
    reg.addScalar("l1d.in_flight", &_stats.l1dInFlight);
    reg.addReal("l1d.miss_rate",
                [this] { return _stats.l1dMissRate(); });

    _storeSets.registerStats(reg, "core.store_sets");
}

} // namespace psb
