/**
 * @file
 * The out-of-order processor timing model (paper §5.1): an 8-wide
 * dynamically scheduled core with a 128-entry re-order buffer, a
 * 64-entry load/store queue, a gshare-driven fetch unit making up to
 * two branch predictions per cycle, the paper's functional-unit pool
 * (8 int ALUs, 4 load/store units, 2 FP adders, 2 int MULT/DIV, 2 FP
 * MULT/DIV; divides unpipelined), an 8-cycle minimum branch
 * misprediction penalty, a 2-cycle store-forward latency, and
 * selectable memory disambiguation (perfect store sets / none /
 * learned).
 *
 * The model is trace-driven: it consumes MicroOps from a TraceSource,
 * so wrong-path execution is not simulated; a misprediction instead
 * stalls fetch until the branch resolves plus the refill penalty
 * (substitution documented in DESIGN.md §4).
 *
 * Loads look up the prefetcher in parallel with the L1D; the miss
 * accounting follows the paper ("an access to a cache block which is
 * not currently resident in the cache" is a miss, in-flight blocks
 * included), and the prefetcher is trained at execute/write-back on
 * the true miss stream with store-forwarded loads excluded.
 */

#ifndef PSB_CPU_OOO_CORE_HH
#define PSB_CPU_OOO_CORE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "cpu/store_sets.hh"
#include "memory/hierarchy.hh"
#include "prefetch/prefetcher.hh"
#include "trace/trace_source.hh"
#include "util/fixed_ring.hh"
#include "util/hot_path.hh"
#include "util/stats.hh"

namespace psb
{

/** Core parameters; defaults are the paper's baseline. */
struct CoreConfig
{
    unsigned fetchWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned maxBranchesPerFetch = 2;
    unsigned robEntries = 128;
    unsigned lsqEntries = 64;
    CycleDelta mispredictPenalty{8}; ///< minimum front-end refill
    CycleDelta storeForwardLatency{2};
    DisambiguationMode disambiguation = DisambiguationMode::Perfect;
    GshareConfig gshare;

    unsigned numIntAlu = 8;
    unsigned numLdSt = 4;
    unsigned numFpAdd = 2;
    unsigned numIntMulDiv = 2;
    unsigned numFpMulDiv = 2;
};

/** Execution statistics gathered by the core. */
struct CoreStats
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;

    uint64_t l1dAccesses = 0;   ///< loads + committed stores
    uint64_t l1dHits = 0;
    uint64_t l1dMisses = 0;     ///< includes in-flight accesses (paper)
    uint64_t l1dInFlight = 0;   ///< of the misses, merged into a fill
    uint64_t sbServiced = 0;    ///< misses serviced by the prefetcher
    uint64_t storeForwards = 0;
    uint64_t mshrStallRetries = 0;
    uint64_t orderViolations = 0; ///< learned-disambiguation squashes

    Average loadLatency;        ///< issue-to-data cycles per load
    /** Issue-to-data cycles of L1D load misses (p50/p90/p99 export). */
    Histogram loadMissLatency{256};

    double ipc() const { return cycles ? double(instructions) / double(cycles) : 0.0; }
    double l1dMissRate() const { return ratio(l1dMisses, l1dAccesses); }
};

/** See file comment. */
class OoOCore
{
  public:
    OoOCore(const CoreConfig &cfg, MemoryHierarchy &hierarchy,
            Prefetcher &prefetcher, TraceSource &trace);

    /**
     * Advance one cycle: commit, issue, fetch (reverse pipeline order
     * so a result is visible to dependants one cycle later).
     * @retval false when the trace is exhausted and the pipeline empty.
     */
    PSB_HOT_PATH bool tick(Cycle now);

    /**
     * The earliest cycle after the last tick() at which this core can
     * make progress or change any stat, computed from pipeline wake
     * conditions (head commit time, operand readiness, fetch resume).
     * Cycle::max() means "no wake known" — callers must then tick
     * cycle by cycle. Every cycle strictly before the returned wake
     * is a pure idle tick (only the cycle counter advances), which is
     * what makes the simulator's fast-forward exact.
     */
    Cycle nextWake() const { return _nextWake; }

    /**
     * Account @p n skipped idle cycles: the only core-side effect of
     * an idle tick is the cycle counter.
     */
    void skipIdleCycles(uint64_t n) { _stats.cycles += n; }

    /** True when no more work remains. */
    bool done() const { return _traceDone && _rob.empty(); }

    const CoreStats &stats() const { return _stats; }

    /** Zero the statistics (end-of-warm-up). */
    void
    resetStats()
    {
        _stats = CoreStats{};
        _storeSets.resetStats();
    }

    /**
     * Register the execution stats under "core." plus the L1D
     * hit/miss accounting under "l1d." (the core keeps it because the
     * paper's miss definition depends on in-flight state the cache
     * cannot see).
     */
    void registerStats(StatsRegistry &reg) const;

    const GsharePredictor &branchPredictor() const { return _gshare; }

  private:
    struct RobEntry
    {
        MicroOp op;
        uint64_t seq = 0;
        Cycle dispatchCycle{};
        Cycle doneAt{};
        bool issued = false;
        bool storeForwarded = false;
        uint64_t src1Producer = 0; ///< producing op's seq, 0 = ready
        uint64_t src2Producer = 0;
        uint64_t waitStoreSeq = 0; ///< learned store-set dependence
        /**
         * Cached operandsReadyAt() result; Cycle::max() = not yet
         * known (some producer unissued). A concrete value is final:
         * producers' doneAt is fixed at issue and committed producers
         * stay committed, so the issue stage computes it once.
         */
        Cycle opReadyAt = Cycle::max();
        /**
         * Youngest older aliasing store of a load, fixed at the first
         * execute attempt: effective addresses are known at dispatch
         * (trace-driven) and no older store can appear later. 0 = no
         * alias. Commit order guarantees a committed cached alias
         * means every older store has left the ROB, matching what a
         * fresh scan would find.
         */
        uint64_t aliasSeq = 0;
        bool aliasKnown = false;
        /**
         * _issueEpoch value at the last operandsReadyAt() attempt that
         * came back unknown. Readiness only becomes known when a
         * producer issues, so re-checks are pointless until the epoch
         * moves (0 = never checked).
         */
        uint64_t readyCheckEpoch = 0;
    };

    PSB_HOT_PATH void commitStage(Cycle now);
    PSB_HOT_PATH void issueStage(Cycle now);
    void fetchStage(Cycle now);

    /** Pull _nextWake earlier, to the next cycle work could happen. */
    void
    clampWake(Cycle at)
    {
        if (at < _nextWake)
            _nextWake = at;
    }

    Cycle operandsReadyAt(RobEntry &entry, Cycle now) const;
    Cycle producerReadyAt(uint64_t &producer_seq, Cycle now) const;

    /** ROB entry with sequence number @p seq, or null once committed.
     *  Seqs are dense, so this is an index into the ring. Inline:
     *  called for every producer check and cached alias lookup. */
    const RobEntry *
    findEntry(uint64_t seq) const
    {
        if (_rob.empty() || seq < _rob.front().seq ||
            seq > _rob.back().seq)
            return nullptr;
        return &_rob[std::size_t(seq - _rob.front().seq)];
    }

    bool fuAvailable(OpClass cls, Cycle now);
    void consumeFu(OpClass cls, Cycle now);
    CycleDelta execLatency(OpClass cls) const;

    /** @retval false when the load cannot issue this cycle. */
    bool executeLoad(RobEntry &entry, Cycle now);
    /** Store data-cache access at commit time. @retval false = stall. */
    bool commitStore(RobEntry &entry, Cycle now);

    CoreConfig _cfg;
    MemoryHierarchy &_hierarchy;
    Prefetcher &_prefetcher;
    TraceSource &_trace;
    GsharePredictor _gshare;
    StoreSetPredictor _storeSets;

    /** Preallocated at robEntries capacity: the ROB is a fixed
     *  hardware structure, and push/pop on the per-cycle hot path
     *  must not allocate (rule R10). */
    FixedRing<RobEntry> _rob;
    uint64_t _nextSeq = 1;
    unsigned _memOpsInRob = 0;
    unsigned _storesInRob = 0;   ///< skip the alias scan when zero
    unsigned _unissuedCount = 0; ///< issue-stage early exit
    uint64_t _issueEpoch = 1;    ///< bumped per issue (see RobEntry)
    std::array<uint64_t, numArchRegs> _regLastWriter{};

    /** Earliest possible next activity (see nextWake()); recomputed
     *  by every tick(). Progress in a tick forces now + 1. */
    Cycle _nextWake{};
    bool _progress = false;

    bool _traceDone = false;
    MicroOp _pendingOp;
    bool _havePending = false;

    Cycle _fetchResumeAt{};
    static constexpr Cycle waitingForBranch = Cycle::max();
    uint64_t _redirectBranchSeq = 0;
    Addr _curFetchBlock = Addr::max();

    // Per-cycle functional-unit issue counters (pipelined units) and
    // busy-until times for the unpipelined divide units.
    Cycle _fuCountersCycle = Cycle::max();
    unsigned _usedIntAlu = 0;
    unsigned _usedLdSt = 0;
    unsigned _usedFpAdd = 0;
    unsigned _usedIntMul = 0;
    unsigned _usedFpMul = 0;
    std::vector<Cycle> _intDivFreeAt;
    std::vector<Cycle> _fpDivFreeAt;

    CoreStats _stats;
};

} // namespace psb

#endif // PSB_CPU_OOO_CORE_HH
