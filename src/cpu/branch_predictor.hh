/**
 * @file
 * McFarling gshare branch direction predictor [20] plus a small BTB,
 * driving the baseline fetch unit ("We use a McFarling gshare predictor
 * to drive our fetch unit. Two predictions can be made per cycle with
 * up to 8 instructions fetched", paper §5.1).
 */

#ifndef PSB_CPU_BRANCH_PREDICTOR_HH
#define PSB_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "trace/micro_op.hh"
#include "util/sat_counter.hh"

namespace psb
{

/** gshare configuration. */
struct GshareConfig
{
    unsigned historyBits = 14;  ///< 16K-entry pattern history table
    unsigned btbEntries = 512;
    unsigned btbAssoc = 4;
};

/** gshare + BTB. The trace-driven core resolves branches at execute
 *  time; predict() and update() are separated so the caller can model
 *  the delay between the two. */
class GsharePredictor
{
  public:
    explicit GsharePredictor(const GshareConfig &cfg = {});

    /**
     * Predict the branch at @p pc.
     * @param predicted_target Out: BTB target (0 when the BTB misses).
     * @return Predicted direction.
     */
    bool predict(Addr pc, Addr &predicted_target) const;

    /**
     * Update predictor state with the resolved outcome and return
     * whether the fetch engine had been steered correctly (direction
     * right, and for taken branches a matching BTB target).
     */
    bool update(Addr pc, bool taken, Addr target);

    uint64_t lookups() const { return _lookups; }
    uint64_t mispredicts() const { return _mispredicts; }

  private:
    unsigned phtIndex(Addr pc) const;
    unsigned btbSet(Addr pc) const;

    struct BtbEntry
    {
        Addr pc{};
        Addr target{};
        bool valid = false;
        uint64_t lastUse = 0;
    };

    GshareConfig _cfg;
    std::vector<SatCounter> _pht;
    std::vector<BtbEntry> _btb;
    uint64_t _history = 0;
    uint64_t _historyMask;
    uint64_t _useStamp = 0;
    mutable uint64_t _lookups = 0;
    uint64_t _mispredicts = 0;
};

} // namespace psb

#endif // PSB_CPU_BRANCH_PREDICTOR_HH
