#include "cpu/store_sets.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace psb
{

const char *
disambiguationModeName(DisambiguationMode mode)
{
    switch (mode) {
      case DisambiguationMode::None:    return "NoDis";
      case DisambiguationMode::Perfect: return "Dis";
      case DisambiguationMode::Learned: return "LearnedSS";
    }
    return "Unknown";
}

StoreSetPredictor::StoreSetPredictor(unsigned ssit_entries,
                                     unsigned lfst_entries,
                                     uint64_t clear_interval)
    : _ssit(ssit_entries), _lfst(lfst_entries),
      _clearInterval(clear_interval)
{
    psb_assert(isPowerOf2(ssit_entries), "SSIT size must be 2^n");
    psb_assert(lfst_entries > 0, "LFST needs entries");
}

unsigned
StoreSetPredictor::ssitIndex(Addr pc) const
{
    return unsigned((pc.raw() >> 2) & (_ssit.size() - 1));
}

uint64_t
StoreSetPredictor::dispatch(Addr pc, bool is_store, uint64_t seq)
{
    if (++_accesses % _clearInterval == 0) {
        // Periodic clearing prevents stale aliases from serialising
        // unrelated code forever (Chrysos & Emer's cyclic clear).
        for (auto &e : _ssit)
            e.valid = false;
        for (auto &e : _lfst)
            e.storeSeq = 0;
    }

    SsitEntry &entry = _ssit[ssitIndex(pc)];
    if (!entry.valid)
        return 0;

    LfstEntry &lfst = _lfst[entry.setId % _lfst.size()];
    uint64_t wait_for = lfst.storeSeq;
    if (is_store)
        lfst.storeSeq = seq;
    return wait_for;
}

void
StoreSetPredictor::storeIssued(Addr pc, uint64_t seq)
{
    SsitEntry &entry = _ssit[ssitIndex(pc)];
    if (!entry.valid)
        return;
    LfstEntry &lfst = _lfst[entry.setId % _lfst.size()];
    if (lfst.storeSeq == seq)
        lfst.storeSeq = 0;
}

void
StoreSetPredictor::recordViolation(Addr load_pc, Addr store_pc)
{
    ++_violations;
    SsitEntry &load_entry = _ssit[ssitIndex(load_pc)];
    SsitEntry &store_entry = _ssit[ssitIndex(store_pc)];

    if (load_entry.valid && store_entry.valid) {
        // Merge: both adopt the smaller set id.
        uint16_t merged = std::min(load_entry.setId, store_entry.setId);
        load_entry.setId = merged;
        store_entry.setId = merged;
    } else if (load_entry.valid) {
        store_entry = load_entry;
    } else if (store_entry.valid) {
        load_entry = store_entry;
    } else {
        load_entry.setId = _nextSetId;
        store_entry.setId = _nextSetId;
        load_entry.valid = store_entry.valid = true;
        if (++_nextSetId == 0)
            _nextSetId = 1;
    }
}

void
StoreSetPredictor::registerStats(StatsRegistry &reg,
                                 const std::string &prefix) const
{
    reg.addScalar(prefix + ".violations", &_violations);
}

} // namespace psb
