/**
 * @file
 * Predictor-Directed Stream Buffers — the paper's primary contribution
 * (§4).
 *
 * A PSB decouples stream following from any fixed stride: each stream
 * buffer carries *per-stream history* (StreamState) and one *shared,
 * stateless* address predictor generates the next prefetch address for
 * whichever buffer wins the single predictor port each cycle. The
 * prediction is written back into the stream's history so prediction n
 * follows from prediction n-1; the base of the recursion is the cache
 * miss that allocated the buffer. The predictor tables themselves are
 * updated only in the write-back stage on true L1D load misses.
 *
 * Lifecycle of a stream (paper §4.1):
 *  - Allocation: a load misses the L1D and every stream buffer. An
 *    allocation filter gates the allocation — either the generalised
 *    two-miss filter or accuracy-confidence thresholding (§4.3). On
 *    allocation the load's PC, current address, stride, and confidence
 *    are copied predictor -> buffer; the predictor is not modified.
 *  - Prediction: each cycle one buffer (round-robin or priority, §4.4)
 *    uses the predictor. The predicted block is searched in *all*
 *    buffers; a duplicate is dropped (history still advances), else it
 *    lands in a free entry marked ready-to-prefetch.
 *  - Prefetching: when the L1-L2 bus is free at the start of a cycle,
 *    one buffer (same two policies) issues its oldest unissued entry.
 *  - Lookup: loads search every entry of every buffer in parallel with
 *    the L1D. A hit moves the block to the L1D (or its tag into an
 *    MSHR when the fill is still in flight), frees the entry, and
 *    bumps the buffer's priority counter by 2.
 *  - Aging: every agingPeriod allocation requests, all priority
 *    counters decay by 1 so stale high-confidence streams can be
 *    reclaimed.
 */

#ifndef PSB_CORE_PSB_HH
#define PSB_CORE_PSB_HH

#include <cstdint>

#include "memory/hierarchy.hh"
#include "predictors/address_predictor.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/scheduler.hh"
#include "prefetch/stream_buffer.hh"
#include "util/hot_path.hh"

namespace psb
{

/** Allocation filter choice (paper §4.3). */
enum class AllocPolicy
{
    TwoMiss,    ///< two misses in a row, both correctly predictable
    Confidence, ///< accuracy-confidence threshold + priority contest
    Always,     ///< no filter: every miss allocates (Jouppi [19])
};

const char *allocPolicyName(AllocPolicy policy);

/** Full PSB configuration; defaults reproduce ConfAlloc-Priority. */
struct PsbConfig
{
    StreamBufferConfig buffers;
    AllocPolicy alloc = AllocPolicy::Confidence;
    SchedPolicy sched = SchedPolicy::Priority;
};

/** See file comment. */
class PredictorDirectedStreamBuffers : public Prefetcher
{
  public:
    /**
     * @param cfg Buffer geometry and policies.
     * @param predictor The shared address predictor (not owned; any
     *        AddressPredictor can direct the buffers).
     * @param hierarchy The memory system prefetches are issued into.
     */
    PredictorDirectedStreamBuffers(const PsbConfig &cfg,
                                   AddressPredictor &predictor,
                                   MemoryHierarchy &hierarchy);

    PSB_HOT_PATH PrefetchLookup lookup(Addr addr, Cycle now) override;
    PSB_HOT_PATH void trainLoad(Addr pc, Addr addr, bool l1_miss,
                                bool store_forwarded) override;
    PSB_HOT_PATH void demandMiss(Addr pc, Addr addr, Cycle now) override;
    PSB_HOT_PATH void tick(Cycle now) override;

    /**
     * Fast-forward support: a span of ticks is replayable iff no
     * buffer could win the predictor port (so makePrediction() would
     * only bump the no-candidate count) and no pending prefetch could
     * reach a free L1-L2 bus cycle (so issuePrefetch() would either
     * return on the busy bus or bump its no-candidate count). The
     * replay applies exactly those counter bumps.
     */
    bool fastForwardTicks(Cycle from, uint64_t n) override;

    const PrefetcherStats &stats() const override { return _stats; }
    void resetStats() override;

    /**
     * Common prefetcher stats plus per-buffer telemetry
     * (prefix.bufferN.{priority,priority_peak,hits,stream_allocs,
     * allocated}) and the two arbitration schedulers
     * (prefix.sched.{predict,prefetch}.*).
     */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const override;

    const StreamBufferFile &bufferFile() const { return _file; }
    const PsbConfig &config() const { return _cfg; }

  private:
    PSB_HOT_PATH void makePrediction(Cycle now);
    PSB_HOT_PATH void issuePrefetch(Cycle now);
    bool tryAllocate(Addr pc, Addr addr);
    /** Settle evicted-unused terminals before @p buf is re-allocated. */
    void settleThrashedStream(const StreamBuffer &buf);

    PsbConfig _cfg;
    AddressPredictor &_predictor;
    MemoryHierarchy &_hierarchy;
    StreamBufferFile _file;
    BufferScheduler _predictSched;
    BufferScheduler _prefetchSched;
    unsigned _agingCountdown;
    PrefetcherStats _stats;
};

} // namespace psb

#endif // PSB_CORE_PSB_HH
