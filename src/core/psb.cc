#include "core/psb.hh"

#include "util/logging.hh"
#include "util/trace.hh"

namespace psb
{

const char *
allocPolicyName(AllocPolicy policy)
{
    switch (policy) {
      case AllocPolicy::TwoMiss:    return "2Miss";
      case AllocPolicy::Confidence: return "ConfAlloc";
      case AllocPolicy::Always:     return "Always";
    }
    return "Unknown";
}

PredictorDirectedStreamBuffers::PredictorDirectedStreamBuffers(
    const PsbConfig &cfg, AddressPredictor &predictor,
    MemoryHierarchy &hierarchy)
    : _cfg(cfg),
      _predictor(predictor),
      _hierarchy(hierarchy),
      _file(cfg.buffers),
      _predictSched(cfg.sched, cfg.buffers.numBuffers, "predict"),
      _prefetchSched(cfg.sched, cfg.buffers.numBuffers, "prefetch"),
      _agingCountdown(cfg.buffers.agingPeriod)
{
}

PrefetchLookup
PredictorDirectedStreamBuffers::lookup(Addr addr, Cycle now)
{
    ++_stats.lookups;
    PrefetchLookup result;

    BlockAddr block = _file.blockOf(addr);
    auto hit = _file.findBlock(block);
    if (!hit)
        return result;

    StreamBuffer &buf = _file.buffer(hit->buf);
    const SbEntry &entry = buf.entries()[hit->entry];

    if (!entry.prefetched) {
        // The prediction was right but its prefetch has not issued
        // yet: no data to provide. The entry is left in place — the
        // access may be retrying an MSHR-full stall, and a completed
        // demand fill reconciles it via demandMiss() instead.
        return result;
    }

    ++_stats.hits;
    ++_stats.prefetchesUsed;
    result.hit = true;
    result.ready = entry.ready;
    result.dataPending = entry.ready > now;
    if (result.dataPending)
        ++_stats.hitsPending;

    // "Every time there is a lookup and the stream buffer gets a hit,
    // the priority counter is incremented by a constant value (2)."
    buf.priority.increment(_cfg.buffers.priorityHitIncrement);
    buf.notePriorityPeak();
    ++buf.hitCount;
    buf.lastHitStamp = _file.nextStamp();
    PSB_TRACE(Psb, "hit", int(hit->buf), "block=%llu priority=%u%s",
              (unsigned long long)block.raw(), buf.priority.value(),
              result.dataPending ? " pending" : "");

    // The entry is freed for a new prediction and prefetch.
    _attrib.use(entry.lineage, now, entry.ready);
    buf.clearEntry(hit->entry);
    return result;
}

void
PredictorDirectedStreamBuffers::trainLoad(Addr pc, Addr addr, bool l1_miss,
                                          bool store_forwarded)
{
    // The tables predict the miss stream: update only on L1D misses,
    // and never for loads whose value came from a store forward.
    if (!l1_miss || store_forwarded)
        return;
    _predictor.train(pc, addr);
}

void
PredictorDirectedStreamBuffers::settleThrashedStream(
    const StreamBuffer &buf)
{
    // Re-allocating a live stream wipes its entries: every prefetched
    // one dies evicted-unused (the attribution layer reclassifies
    // issue-time redundancies itself).
    if (!buf.allocated())
        return;
    for (const SbEntry &e : buf.entries()) {
        if (e.valid && e.prefetched)
            _attrib.terminal(e.lineage,
                             PrefetchOutcomeKind::EvictedUnused);
    }
}

bool
PredictorDirectedStreamBuffers::tryAllocate(Addr pc, Addr addr)
{
    if (_cfg.alloc == AllocPolicy::Always) {
        unsigned victim = _file.lruBuffer();
        StreamBuffer &buf = _file.buffer(victim);
        settleThrashedStream(buf);
        buf.allocateStream(_predictor.allocateStream(pc, addr),
                           _predictor.confidence(pc));
        buf.allocStamp = buf.lastHitStamp = _file.nextStamp();
        return true;
    }

    if (_cfg.alloc == AllocPolicy::TwoMiss) {
        // Generalised two-miss filter: the last two misses of this
        // load were both correctly predictable (stride or Markov).
        if (!_predictor.twoMissFilterPass(pc, addr))
            return false;
        unsigned victim = _file.lruBuffer();
        StreamBuffer &buf = _file.buffer(victim);
        settleThrashedStream(buf);
        buf.allocateStream(_predictor.allocateStream(pc, addr),
                           _predictor.confidence(pc));
        buf.allocStamp = buf.lastHitStamp = _file.nextStamp();
        return true;
    }

    // Confidence allocation (§4.3): the load's accuracy confidence
    // must reach the threshold, and must be >= the priority counter of
    // at least one stream buffer — otherwise every current stream has
    // proven more useful than this load and no buffer is stolen.
    uint32_t conf = _predictor.confidence(pc);
    if (conf < _cfg.buffers.allocConfThreshold)
        return false;
    unsigned victim = _file.minPriorityBuffer();
    StreamBuffer &buf = _file.buffer(victim);
    if (buf.allocated() && buf.priority.value() > conf)
        return false;
    settleThrashedStream(buf);
    buf.allocateStream(_predictor.allocateStream(pc, addr), conf);
    buf.allocStamp = buf.lastHitStamp = _file.nextStamp();
    return true;
}

void
PredictorDirectedStreamBuffers::demandMiss(Addr pc, Addr addr, Cycle)
{
    // A demand fill is under way for this block. If a buffer had
    // predicted it but the prefetch never issued, release the entry —
    // the prediction was right, just too late (no accuracy penalty:
    // it was never a prefetch). The stream itself is tracking
    // correctly, so this is not an allocation request.
    BlockAddr block = _file.blockOf(addr);
    if (auto tag = _file.findBlock(block)) {
        StreamBuffer &buf = _file.buffer(tag->buf);
        if (!buf.entries()[tag->entry].prefetched) {
            ++_stats.lateTagHits;
            PSB_TRACE(Psb, "late_tag_hit", int(tag->buf), "block=%llu",
                      (unsigned long long)block.raw());
            buf.clearEntry(tag->entry);
            return;
        }
    }

    ++_stats.allocationRequests;

    // Aging (§4.4): every agingPeriod allocation requests, decay every
    // buffer's priority so long-lived streams can be reclaimed.
    if (--_agingCountdown == 0) {
        _agingCountdown = _cfg.buffers.agingPeriod;
        for (unsigned b = 0; b < _file.numBuffers(); ++b)
            _file.buffer(b).priority.decrement();
        PSB_TRACE(Psb, "aging", -1, "period=%u",
                  _cfg.buffers.agingPeriod);
    }

    if (tryAllocate(pc, addr)) {
        ++_stats.allocations;
    } else {
        ++_stats.allocationsFiltered;
        PSB_TRACE(Psb, "alloc.filtered", -1, "pc=%llu addr=%llu",
                  (unsigned long long)pc.raw(),
                  (unsigned long long)addr.raw());
    }
}

void
PredictorDirectedStreamBuffers::makePrediction(Cycle now)
{
    // One buffer per cycle gets the shared predictor port.
    auto candidate = [this](unsigned b) {
        const StreamBuffer &buf = _file.buffer(b);
        return buf.allocated() && buf.freeEntry() >= 0;
    };
    auto tie_stamp = [this](unsigned b) {
        return _file.buffer(b).lastPredictStamp;
    };
    int winner = _predictSched.pick(_file, candidate, tie_stamp);
    if (winner < 0)
        return;

    StreamBuffer &buf = _file.buffer(unsigned(winner));
    buf.lastPredictStamp = _file.nextStamp();

    auto predicted = _predictor.predictNext(buf.state);
    if (!predicted)
        return;
    ++_stats.predictions;
    PSB_TRACE(Psb, "predict", winner, "block=%llu",
              (unsigned long long)predicted->raw());

    // Non-overlapping streams: a block already present in any buffer
    // is not predicted again. The stream history has already advanced.
    BlockAddr block = *predicted;
    if (_file.contains(block)) {
        ++_stats.duplicateSuppressed;
        PSB_TRACE(Psb, "predict.duplicate", winner, "block=%llu",
                  (unsigned long long)block.raw());
        return;
    }

    int slot = buf.freeEntry();
    psb_assert(slot >= 0, "scheduler picked a buffer with no free entry");
    buf.fillEntry(slot, block, buf.state.lastSource);
    (void)now;
}

void
PredictorDirectedStreamBuffers::issuePrefetch(Cycle now)
{
    // "We only allow prefetches to occur if the L1-L2 bus is free at
    // the start of any given cycle."
    if (!_hierarchy.l1ToL2BusFree(now))
        return;

    auto candidate = [this](unsigned b) {
        const StreamBuffer &buf = _file.buffer(b);
        return buf.allocated() && buf.pendingPrefetchEntry() >= 0;
    };
    auto tie_stamp = [this](unsigned b) {
        return _file.buffer(b).lastPrefetchStamp;
    };
    int winner = _prefetchSched.pick(_file, candidate, tie_stamp);
    if (winner < 0)
        return;

    StreamBuffer &buf = _file.buffer(unsigned(winner));
    buf.lastPrefetchStamp = _file.nextStamp();

    int slot = buf.pendingPrefetchEntry();
    const SbEntry &entry = buf.entries()[slot];

    // Paper §4.5 option: a buffer that cached its page translation
    // only consults the TLB when the stream leaves the page.
    bool translate = true;
    if (_cfg.buffers.cacheTlbTranslation) {
        uint64_t page = entry.block.toByte(_file.lineBits()).raw() /
                        _hierarchy.config().pageBytes;
        if (buf.translatedPage == page) {
            translate = false;
            ++_stats.tlbTranslationsSkipped;
        } else {
            buf.translatedPage = page;
        }
    }

    PrefetchOutcome outcome =
        _hierarchy.prefetch(entry.block, now, translate);
    PrefetchOrigin origin;
    origin.source = entry.source;
    origin.loadPc = buf.state.loadPc;
    origin.stride = buf.state.stride;
    origin.confidence = buf.state.confidence;
    origin.slot = winner;
    uint64_t lineage = _attrib.issue(
        origin, entry.block, now, outcome.ready,
        _hierarchy.demandHasBlock(entry.block, now));
    buf.markPrefetched(slot, outcome.ready, lineage);
    ++_stats.prefetchesIssued;
    PSB_TRACE(Psb, "prefetch", winner,
              "block=%llu ready=%llu translate=%d",
              (unsigned long long)entry.block.raw(),
              (unsigned long long)outcome.ready.raw(), int(translate));
}

void
PredictorDirectedStreamBuffers::tick(Cycle now)
{
    makePrediction(now);
    issuePrefetch(now);
}

bool
PredictorDirectedStreamBuffers::fastForwardTicks(Cycle from, uint64_t n)
{
    bool predict_candidate = false;
    bool prefetch_candidate = false;
    for (unsigned b = 0; b < _file.numBuffers(); ++b) {
        const StreamBuffer &buf = _file.buffer(b);
        if (!buf.allocated())
            continue;
        if (buf.freeEntry() >= 0)
            predict_candidate = true;
        if (buf.pendingPrefetchEntry() >= 0)
            prefetch_candidate = true;
    }

    // A buffer would win the predictor port and advance its stream.
    if (predict_candidate)
        return false;

    // issuePrefetch() consults the scheduler only on bus-free cycles.
    uint64_t bus_free = _hierarchy.l1L2Bus().freeCyclesIn(from, n);

    // A queued prefetch would issue on the first free bus cycle.
    if (prefetch_candidate && bus_free > 0)
        return false;

    // Idle span: every cycle's makePrediction() comes up empty, and
    // every bus-free cycle's issuePrefetch() does too.
    _predictSched.addNoCandidatePicks(n);
    if (!prefetch_candidate)
        _prefetchSched.addNoCandidatePicks(bus_free);
    return true;
}

void
PredictorDirectedStreamBuffers::resetStats()
{
    _stats = PrefetcherStats{};
    _attrib.resetStats();
    _predictSched.resetStats();
    _prefetchSched.resetStats();
    for (unsigned b = 0; b < _file.numBuffers(); ++b)
        _file.buffer(b).resetBufferStats();
}

void
PredictorDirectedStreamBuffers::registerStats(StatsRegistry &reg,
                                              const std::string &prefix)
    const
{
    Prefetcher::registerStats(reg, prefix);
    for (unsigned b = 0; b < _file.numBuffers(); ++b) {
        const StreamBuffer &buf = _file.buffer(b);
        std::string base = prefix + ".buffer" + std::to_string(b);
        reg.addScalar(base + ".priority",
                      [&buf] { return uint64_t(buf.priority.value()); });
        reg.addScalar(base + ".priority_peak",
                      [&buf] { return uint64_t(buf.priorityPeak); });
        reg.addScalar(base + ".hits", &buf.hitCount);
        reg.addScalar(base + ".stream_allocs", &buf.streamAllocs);
        reg.addScalar(base + ".allocated",
                      [&buf] { return uint64_t(buf.allocated()); });
    }
    _predictSched.registerStats(reg, prefix + ".sched.predict");
    _prefetchSched.registerStats(reg, prefix + ".sched.prefetch");
}

} // namespace psb
