#include "prefetch/markov_prefetcher.hh"

namespace psb
{

MarkovPrefetcher::MarkovPrefetcher(MemoryHierarchy &hierarchy,
                                   const MarkovTableConfig &table,
                                   unsigned buffer_entries,
                                   bool adaptive)
    : _hierarchy(hierarchy), _table(table), _buffer(buffer_entries),
      _adaptive(adaptive), _badness(table.entries, 0)
{
}

void
MarkovPrefetcher::creditSource(BlockAddr source, bool used)
{
    if (!_adaptive)
        return;
    uint8_t &ctr = _badness[source.raw() & (_badness.size() - 1)];
    if (used) {
        if (ctr > 0)
            --ctr;
    } else {
        if (ctr < 3)
            ++ctr;
    }
}

bool
MarkovPrefetcher::sourceDisabled(BlockAddr source) const
{
    if (!_adaptive)
        return false;
    // "When the sign bit of the counter is set, the relevant entry in
    // the prediction table is disabled."
    return (_badness[source.raw() & (_badness.size() - 1)] & 0x2) != 0;
}

PrefetchLookup
MarkovPrefetcher::lookup(Addr addr, Cycle now)
{
    ++_stats.lookups;
    PrefetchLookup result;
    BlockAddr block = _hierarchy.blockOf(addr);

    for (auto &e : _buffer) {
        if (!e.valid || e.block != block)
            continue;
        if (!e.prefetched) {
            // Not yet issued: nothing to provide; reconciled on the
            // demand-fill path.
            return result;
        }
        ++_stats.hits;
        ++_stats.prefetchesUsed;
        result.hit = true;
        result.ready = e.ready;
        result.dataPending = e.ready > now;
        if (result.dataPending)
            ++_stats.hitsPending;
        creditSource(e.sourceBlock, /*used=*/true);
        _attrib.use(e.lineage, now, e.ready);
        e.valid = false;
        return result;
    }
    return result;
}

void
MarkovPrefetcher::trainLoad(Addr, Addr addr, bool l1_miss,
                            bool store_forwarded)
{
    if (!l1_miss || store_forwarded)
        return;
    BlockAddr block = _hierarchy.blockOf(addr);
    if (_haveLastMiss && _lastMiss != block) {
        // "Prefetch requests from disabled entries are tracked so
        // that they can be enabled when they start making correct
        // predictions": score the suppressed prediction against the
        // observed transition.
        if (sourceDisabled(_lastMiss)) {
            if (auto pred = _table.lookup(_lastMiss))
                creditSource(_lastMiss, *pred == block);
        }
        // Record the global miss-to-miss transition.
        _table.update(_lastMiss, block);
    }
    _lastMiss = block;
    _haveLastMiss = true;
}

void
MarkovPrefetcher::enqueue(BlockAddr block, BlockAddr source)
{
    for (const auto &e : _buffer) {
        if (e.valid && e.block == block)
            return;
    }
    BufEntry *victim = &_buffer[0];
    for (auto &e : _buffer) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.fifoStamp < victim->fifoStamp)
            victim = &e;
    }
    // "When a prefetch is discarded from the prefetch buffer without
    // being used, the corresponding counter is incremented."
    if (victim->valid && victim->prefetched) {
        creditSource(victim->sourceBlock, /*used=*/false);
        _attrib.terminal(victim->lineage, PrefetchOutcomeKind::Replaced);
    }
    *victim = BufEntry{};
    victim->block = block;
    victim->sourceBlock = source;
    victim->valid = true;
    victim->fifoStamp = ++_stamp;
}

void
MarkovPrefetcher::demandMiss(Addr, Addr addr, Cycle)
{
    // Release any matching prediction whose prefetch never issued.
    BlockAddr fill_block = _hierarchy.blockOf(addr);
    for (auto &e : _buffer) {
        if (e.valid && !e.prefetched && e.block == fill_block) {
            ++_stats.lateTagHits;
            e.valid = false;
        }
    }
    ++_stats.allocationRequests;
    // One-shot: predict the successor of this miss, then idle until
    // the next miss. No re-indexing with predicted addresses.
    BlockAddr block = _hierarchy.blockOf(addr);
    if (auto next = _table.lookup(block)) {
        // Disabled entries issue no prefetch; trainLoad() keeps
        // scoring them so they re-enable once correct again.
        if (sourceDisabled(block)) {
            ++_disabledSuppressed;
        } else {
            ++_stats.predictions;
            enqueue(*next, block);
        }
    }
}

void
MarkovPrefetcher::tick(Cycle now)
{
    if (!_hierarchy.l1ToL2BusFree(now))
        return;
    BufEntry *oldest = nullptr;
    for (auto &e : _buffer) {
        if (e.valid && !e.prefetched &&
            (!oldest || e.fifoStamp < oldest->fifoStamp)) {
            oldest = &e;
        }
    }
    if (!oldest)
        return;
    PrefetchOutcome outcome = _hierarchy.prefetch(oldest->block, now);
    oldest->prefetched = true;
    oldest->ready = outcome.ready;
    PrefetchOrigin origin;
    origin.source = PredictionSource::Markov;
    origin.slot = int(oldest - _buffer.data());
    oldest->lineage = _attrib.issue(
        origin, oldest->block, now, outcome.ready,
        _hierarchy.demandHasBlock(oldest->block, now));
    ++_stats.prefetchesIssued;
}

bool
MarkovPrefetcher::fastForwardTicks(Cycle from, uint64_t n)
{
    // Same reasoning as NextLinePrefetcher: idle ticks are stat-free,
    // so quiescence (or a bus busy for the whole span) suffices.
    for (const auto &e : _buffer) {
        if (e.valid && !e.prefetched)
            return _hierarchy.l1L2Bus().freeCyclesIn(from, n) == 0;
    }
    return true;
}

void
MarkovPrefetcher::registerStats(StatsRegistry &reg,
                                const std::string &prefix) const
{
    Prefetcher::registerStats(reg, prefix);
    reg.addScalar(prefix + ".disabled_suppressed",
                  &_disabledSuppressed);
}

} // namespace psb
