/**
 * @file
 * Prefetch lifecycle attribution (DESIGN.md §13).
 *
 * Every issued prefetch receives a deterministic *lineage id* (a
 * monotonic counter starting at 1; 0 means "no lineage") tagged with
 * its origin — the predictor source that produced the address, the
 * stream's load PC / stride / confidence, and the stream-buffer slot —
 * and is then tracked to exactly one terminal outcome:
 *
 *   used_timely      demand hit and the data had arrived
 *   used_late        demand hit while the fill was still in flight
 *                    (cycles of lateness are histogrammed)
 *   evicted_unused   the owning stream was thrashed before any use
 *   replaced         FIFO/LRU victim in a non-stream prefetch buffer
 *   squashed         still live at end-of-sim (finalize())
 *   redundant_demand the block was already resident or demand-in-
 *                    flight at issue time and was never used
 *
 * The hard conservation invariant — issued == the sum over terminal
 * outcomes — is asserted fatally by finalize() and re-checked by
 * tests/test_attribution.cc for every prefetcher backend.
 *
 * Determinism rules: lineage ids are assigned in issue order, live
 * records are kept in a lineage-sorted flat vector so finalize()
 * squashes in lineage order (rule R3), and the registered
 * `prefetch.attrib.*` stats export only counters and percentile
 * scalars — byte-identical across runs and across psb-sweep --jobs
 * counts.
 *
 * Lineage ids survive resetStats() (end-of-warm-up): entries filled
 * before the reset still carry their old ids, so restarting the
 * counter would alias two different prefetches. Terminals arriving for
 * a pre-reset id land in `stale_terminals` instead of an outcome
 * bucket, keeping the measured-region conservation sum exact.
 *
 * Lifecycle trace events (flag `prefetch`): issue opens a "pf" span on
 * track = lineage id, the terminal emits a "pf.outcome" instant on the
 * same track and closes the span — one prefetch's whole life is one
 * row in chrome://tracing. tools/psb_trace.py validates the schema.
 */

#ifndef PSB_PREFETCH_ATTRIBUTION_HH
#define PSB_PREFETCH_ATTRIBUTION_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "predictors/address_predictor.hh"
#include "trace/micro_op.hh"
#include "util/hot_path.hh"
#include "util/stats.hh"

namespace psb
{

/** Terminal lifecycle outcome of one issued prefetch. */
enum class PrefetchOutcomeKind : uint8_t
{
    UsedTimely,
    UsedLate,
    EvictedUnused,
    Replaced,
    Squashed,
    RedundantDemand,
    NumOutcomes,
};

/** Canonical snake_case name of @p kind (stats / trace vocabulary). */
const char *prefetchOutcomeName(PrefetchOutcomeKind kind);

/** Where a prefetch came from, captured at issue time. */
struct PrefetchOrigin
{
    PredictionSource source = PredictionSource::None;
    Addr loadPc{};          ///< PC of the load that owns the stream
    BlockDelta stride{};    ///< stream stride at issue (blocks)
    uint32_t confidence = 0;///< SFM accuracy confidence at issue
    int slot = -1;          ///< stream-buffer index (-1: no stream)
};

/** See file comment. */
class PrefetchAttribution
{
  public:
    PrefetchAttribution();

    /**
     * Record a prefetch leaving for the memory system. Returns its
     * lineage id (never 0). @p redundant_with_demand is the issue-time
     * probe result of MemoryHierarchy::demandHasBlock().
     */
    PSB_HOT_PATH uint64_t issue(const PrefetchOrigin &origin,
                                BlockAddr block, Cycle now, Cycle ready,
                                bool redundant_with_demand);

    /**
     * A demand access consumed the prefetched block: terminal outcome
     * used_timely when @p ready <= @p now, used_late otherwise (the
     * lateness, ready - now, is histogrammed). @p lineage 0 is
     * ignored; an unknown id counts as a stale terminal.
     */
    PSB_HOT_PATH void use(uint64_t lineage, Cycle now, Cycle ready);

    /**
     * A non-use terminal outcome for @p lineage (evicted_unused /
     * replaced). When the record was redundant-with-demand at issue,
     * the outcome is reclassified as redundant_demand. @p lineage 0 is
     * ignored; an unknown id counts as a stale terminal.
     */
    PSB_HOT_PATH void terminal(uint64_t lineage,
                               PrefetchOutcomeKind kind);

    /**
     * End-of-sim: squash every still-live prefetch (in lineage order),
     * then fatally assert the conservation invariant
     * issued == sum of terminal outcome counters.
     */
    PSB_HOT_PATH void finalize(Cycle now);

    /**
     * Zero counters/histograms and drop live records (end-of-warm-up).
     * The lineage counter is NOT reset — see file comment.
     */
    void resetStats();

    /** Register the `<prefix>.*` stats subtree (see DESIGN.md §13). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    uint64_t issued() const { return _issued; }
    uint64_t outcome(PrefetchOutcomeKind kind) const
    {
        return _outcomes[unsigned(kind)];
    }
    /** Sum over all terminal outcome counters. */
    uint64_t outcomeTotal() const;
    uint64_t staleTerminals() const { return _staleTerminals; }
    uint64_t liveCount() const { return uint64_t(_liveCount); }
    const Histogram &useDistance() const { return _useDistance; }
    const Histogram &lateness() const { return _lateness; }

  private:
    /** Issue-time facts kept until the terminal outcome arrives. */
    struct Live
    {
        uint64_t lineage = 0;
        PredictionSource source = PredictionSource::None;
        Cycle issueCycle{};
        Cycle ready{};
        bool redundant = false; ///< demand already had the block
    };

    static constexpr unsigned kNumSources =
        unsigned(PredictionSource::NumSources);
    static constexpr unsigned kNumOutcomes =
        unsigned(PrefetchOutcomeKind::NumOutcomes);

    /** Count (and trace) the terminal @p kind for a live record. */
    void settle(uint64_t lineage, const Live &rec,
                PrefetchOutcomeKind kind);

    /** Live record with @p lineage (binary search), or nullptr. */
    Live *findLive(uint64_t lineage);
    /** Remove @p rec from the live prefix, preserving the order. */
    void eraseLive(Live *rec);

    uint64_t _nextLineage = 0; ///< last id assigned; survives resets
    uint64_t _issued = 0;
    uint64_t _staleTerminals = 0;
    uint64_t _outcomes[kNumOutcomes] = {};
    uint64_t _sourceIssued[kNumSources] = {};
    uint64_t _sourceOutcome[kNumSources][kNumOutcomes] = {};
    Histogram _useDistance;  ///< issue-to-use distance (cycles)
    Histogram _lateness;     ///< used_late only: ready - now (cycles)
    // Live records as a lineage-sorted flat pool: ids are assigned
    // monotonically so appending keeps the order, eraseLive() shifts
    // the tail left, and finalize() squashes by walking the used
    // prefix in lineage order (rule R3: deterministic output). The
    // pool is preallocated at construction so the per-issue path
    // never touches the heap (rule R10) — every live record mirrors
    // an entry in a bounded hardware structure, so the used prefix
    // cannot outgrow the pool in any in-tree configuration.
    std::vector<Live> _live;
    std::size_t _liveCount = 0;
};

} // namespace psb

#endif // PSB_PREFETCH_ATTRIBUTION_HH
