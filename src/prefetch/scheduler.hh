/**
 * @file
 * Stream-buffer arbitration (paper §4.4). The predictor port and the
 * L1-L2 bus are single resources contended for by up to eight buffers;
 * each cycle one buffer wins each resource, chosen either round-robin
 * (separate rotation pointers per resource) or by priority counter
 * (highest first, LRU breaking ties).
 */

#ifndef PSB_PREFETCH_SCHEDULER_HH
#define PSB_PREFETCH_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "prefetch/stream_buffer.hh"

namespace psb
{

class StatsRegistry;

/** Arbitration policy for the predictor port and prefetch bus slot. */
enum class SchedPolicy
{
    RoundRobin,
    Priority,
};

const char *schedPolicyName(SchedPolicy policy);

/**
 * Picks the stream buffer that wins one shared resource this cycle.
 * Instantiate one per resource so round-robin keeps independent
 * pointers ("a pointer is kept to the last stream buffer to perform a
 * prediction and another pointer for the last entry to issue a
 * prefetch").
 */
class BufferScheduler
{
  public:
    /** @param label Resource name for trace events ("predict"...). */
    BufferScheduler(SchedPolicy policy, unsigned num_buffers,
                    const char *label = "sched");

    /**
     * Choose among buffers for which @p candidate returns true.
     *
     * @param file The stream-buffer file.
     * @param candidate Whether a buffer can use the resource now.
     * @param tie_stamp Last-use stamp for LRU tie-breaking under the
     *        priority policy (lower = less recently used = wins).
     * @return Winning buffer index, or -1 when no candidate exists.
     */
    int pick(const StreamBufferFile &file,
             const std::function<bool(unsigned)> &candidate,
             const std::function<uint64_t(unsigned)> &tie_stamp);

    SchedPolicy policy() const { return _policy; }

    /** Arbitration outcomes: picks with and without a candidate. */
    uint64_t grants() const { return _grants; }
    uint64_t noCandidatePicks() const { return _noCandidate; }

    /** Zero the accounting (end-of-warm-up); pointers are kept. */
    void
    resetStats()
    {
        _grants = 0;
        _noCandidate = 0;
    }

    /** Register grants and no_candidate under @p prefix. */
    void registerStats(StatsRegistry &reg, const std::string &prefix) const;

  private:
    SchedPolicy _policy;
    unsigned _numBuffers;
    const char *_label;
    unsigned _rrPtr = 0;
    uint64_t _grants = 0;
    uint64_t _noCandidate = 0;
};

} // namespace psb

#endif // PSB_PREFETCH_SCHEDULER_HH
