/**
 * @file
 * Stream-buffer arbitration (paper §4.4). The predictor port and the
 * L1-L2 bus are single resources contended for by up to eight buffers;
 * each cycle one buffer wins each resource, chosen either round-robin
 * (separate rotation pointers per resource) or by priority counter
 * (highest first, LRU breaking ties).
 */

#ifndef PSB_PREFETCH_SCHEDULER_HH
#define PSB_PREFETCH_SCHEDULER_HH

#include <cstdint>
#include <string>

#include "prefetch/stream_buffer.hh"
#include "util/hot_path.hh"
#include "util/trace.hh"

namespace psb
{

class StatsRegistry;

/** Arbitration policy for the predictor port and prefetch bus slot. */
enum class SchedPolicy
{
    RoundRobin,
    Priority,
};

const char *schedPolicyName(SchedPolicy policy);

/**
 * Picks the stream buffer that wins one shared resource this cycle.
 * Instantiate one per resource so round-robin keeps independent
 * pointers ("a pointer is kept to the last stream buffer to perform a
 * prediction and another pointer for the last entry to issue a
 * prefetch").
 */
class BufferScheduler
{
  public:
    /** @param label Resource name for trace events ("predict"...). */
    BufferScheduler(SchedPolicy policy, unsigned num_buffers,
                    const char *label = "sched");

    /**
     * Choose among buffers for which @p candidate returns true.
     *
     * A template so the per-cycle call binds the caller's lambdas
     * directly (this is on the simulator's hottest path; going
     * through std::function showed up in profiles).
     *
     * @param file The stream-buffer file.
     * @param candidate Whether a buffer can use the resource now.
     * @param tie_stamp Last-use stamp for LRU tie-breaking under the
     *        priority policy (lower = less recently used = wins).
     * @return Winning buffer index, or -1 when no candidate exists.
     */
    template <typename CandidateFn, typename StampFn>
    PSB_HOT_PATH int
    pick(const StreamBufferFile &file, const CandidateFn &candidate,
         const StampFn &tie_stamp)
    {
        if (_policy == SchedPolicy::RoundRobin) {
            for (unsigned i = 1; i <= _numBuffers; ++i) {
                unsigned b = (_rrPtr + i) % _numBuffers;
                if (candidate(b)) {
                    _rrPtr = b;
                    ++_grants;
                    PSB_TRACE(Sched, "grant", int(b),
                              "resource=%s policy=rr", _label);
                    return int(b);
                }
            }
            ++_noCandidate;
            return -1;
        }

        // Priority: highest counter first, least-recently-used on
        // ties.
        int best = -1;
        for (unsigned b = 0; b < _numBuffers; ++b) {
            if (!candidate(b))
                continue;
            if (best < 0) {
                best = int(b);
                continue;
            }
            uint32_t pb = file.buffer(b).priority.value();
            uint32_t pbest =
                file.buffer(unsigned(best)).priority.value();
            if (pb > pbest ||
                (pb == pbest &&
                 tie_stamp(b) < tie_stamp(unsigned(best)))) {
                best = int(b);
            }
        }
        if (best >= 0) {
            ++_grants;
            PSB_TRACE(Sched, "grant", best,
                      "resource=%s policy=priority priority=%u", _label,
                      file.buffer(unsigned(best)).priority.value());
        } else {
            ++_noCandidate;
        }
        return best;
    }

    /**
     * Replay @p n picks that would each have found no candidate: the
     * fast-forward path's stand-in for calling pick() once per idle
     * cycle (round-robin pointers are untouched by empty picks).
     */
    void addNoCandidatePicks(uint64_t n) { _noCandidate += n; }

    SchedPolicy policy() const { return _policy; }

    /** Arbitration outcomes: picks with and without a candidate. */
    uint64_t grants() const { return _grants; }
    uint64_t noCandidatePicks() const { return _noCandidate; }

    /** Zero the accounting (end-of-warm-up); pointers are kept. */
    void
    resetStats()
    {
        _grants = 0;
        _noCandidate = 0;
    }

    /** Register grants and no_candidate under @p prefix. */
    void registerStats(StatsRegistry &reg, const std::string &prefix) const;

  private:
    SchedPolicy _policy;
    unsigned _numBuffers;
    const char *_label;
    unsigned _rrPtr = 0;
    uint64_t _grants = 0;
    uint64_t _noCandidate = 0;
};

} // namespace psb

#endif // PSB_PREFETCH_SCHEDULER_HH
