#include "prefetch/sequential_stream_buffers.hh"

namespace psb
{

SequentialStreamBuffers::SequentialStreamBuffers(
    const StreamBufferConfig &buffers, MemoryHierarchy &hierarchy,
    bool filtered)
    : _predictor(buffers.blockBytes),
      _psb(PsbConfig{buffers,
                     filtered ? AllocPolicy::TwoMiss : AllocPolicy::Always,
                     SchedPolicy::RoundRobin},
           _predictor, hierarchy)
{
}

PrefetchLookup
SequentialStreamBuffers::lookup(Addr addr, Cycle now)
{
    return _psb.lookup(addr, now);
}

void
SequentialStreamBuffers::trainLoad(Addr pc, Addr addr, bool l1_miss,
                                   bool store_forwarded)
{
    _psb.trainLoad(pc, addr, l1_miss, store_forwarded);
}

void
SequentialStreamBuffers::demandMiss(Addr pc, Addr addr, Cycle now)
{
    _psb.demandMiss(pc, addr, now);
}

void
SequentialStreamBuffers::tick(Cycle now)
{
    _psb.tick(now);
}

const PrefetcherStats &
SequentialStreamBuffers::stats() const
{
    return _psb.stats();
}

} // namespace psb
