#include "prefetch/min_delta_stream_buffers.hh"

#include <cstdlib>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace psb
{

MinDeltaPredictor::MinDeltaPredictor(const MinDeltaConfig &cfg)
    : _cfg(cfg), _lineBits(floorLog2(cfg.blockBytes)),
      _chunks(cfg.chunkTableEntries),
      _history(std::size_t(cfg.chunkTableEntries) * cfg.historyDepth)
{
    psb_assert(isPowerOf2(cfg.chunkBytes), "chunk size must be 2^n");
    psb_assert(isPowerOf2(cfg.chunkTableEntries),
               "chunk table entries must be 2^n");
    psb_assert(cfg.historyDepth >= 1, "need at least one past miss");
}

uint64_t
MinDeltaPredictor::chunkOf(Addr addr) const
{
    return addr.raw() / _cfg.chunkBytes;
}

unsigned
MinDeltaPredictor::indexOf(Addr addr) const
{
    return unsigned(chunkOf(addr) & (_cfg.chunkTableEntries - 1));
}

void
MinDeltaPredictor::train(Addr, Addr addr)
{
    unsigned idx = indexOf(addr);
    ChunkEntry &entry = _chunks[idx];
    Addr *ring = &_history[std::size_t(idx) * _cfg.historyDepth];
    uint64_t chunk = chunkOf(addr);

    if (!entry.valid || entry.chunk != chunk) {
        entry = ChunkEntry{};
        entry.chunk = chunk;
        entry.valid = true;
    }

    // Consecutive-miss tracking for the allocation filter: misses to
    // the same chunk back to back.
    entry.consecutiveMisses =
        (_haveLastMiss && chunkOf(_lastMissAddr) == chunk)
            ? entry.consecutiveMisses + 1
            : 0;

    // Minimum signed delta against the past N miss addresses of this
    // chunk; sub-block deltas round to one block with the delta's sign
    // (Palacharla & Kessler's rule).
    if (entry.recentCount > 0) {
        int64_t best = 0;
        bool have = false;
        for (unsigned i = 0; i < entry.recentCount; ++i) {
            // Oldest-first walk of the ring, so ties on |delta| keep
            // resolving to the oldest miss exactly as the previous
            // grow-and-trim vector did.
            unsigned slot = (entry.recentHead + _cfg.historyDepth -
                             entry.recentCount + i) %
                            _cfg.historyDepth;
            Addr past = ring[slot];
            int64_t delta = addr - past;
            if (delta == 0)
                continue;
            if (!have || std::llabs(delta) < std::llabs(best)) {
                best = delta;
                have = true;
            }
        }
        if (have) {
            if (std::llabs(best) < int64_t(_cfg.blockBytes)) {
                entry.stride = best < 0 ? -int64_t(_cfg.blockBytes)
                                        : int64_t(_cfg.blockBytes);
            } else {
                entry.stride = best;
            }
        }
    }

    ring[entry.recentHead] = addr;
    entry.recentHead = (entry.recentHead + 1) % _cfg.historyDepth;
    if (entry.recentCount < _cfg.historyDepth)
        ++entry.recentCount;

    _lastMissAddr = addr;
    _haveLastMiss = true;
}

std::optional<BlockAddr>
MinDeltaPredictor::predictNext(StreamState &state) const
{
    if (state.stride == BlockDelta{})
        return std::nullopt;
    state.lastAddr += state.stride;
    state.lastSource = PredictionSource::MinDelta;
    return state.lastAddr;
}

StreamState
MinDeltaPredictor::allocateStream(Addr pc, Addr addr) const
{
    StreamState state;
    state.loadPc = pc;
    state.lastAddr = addr.toBlock(_lineBits);
    // The byte stride is re-applied to a line-aligned base on every
    // prediction, so it advances the stream by a constant number of
    // whole blocks: floor(stride / blockBytes). Sub-block strides are
    // already rounded to a full block (with sign) during training.
    state.stride = BlockDelta(strideFor(addr) >> _lineBits);
    // No per-load accuracy counter in this scheme: a fixed confidence
    // of 1 lets it pass the ConfAlloc threshold if ever combined.
    state.confidence = 1;
    return state;
}

uint32_t
MinDeltaPredictor::confidence(Addr) const
{
    return 1;
}

bool
MinDeltaPredictor::twoMissFilterPass(Addr, Addr addr) const
{
    const ChunkEntry &entry = _chunks[indexOf(addr)];
    return entry.valid && entry.chunk == chunkOf(addr) &&
           entry.consecutiveMisses >= 1 && entry.stride != 0;
}

int64_t
MinDeltaPredictor::strideFor(Addr addr) const
{
    const ChunkEntry &entry = _chunks[indexOf(addr)];
    if (!entry.valid || entry.chunk != chunkOf(addr))
        return 0;
    return entry.stride;
}

MinDeltaStreamBuffers::MinDeltaStreamBuffers(
    const StreamBufferConfig &buffers, const MinDeltaConfig &table,
    MemoryHierarchy &hierarchy)
    : _predictor(table),
      _psb(PsbConfig{buffers, AllocPolicy::TwoMiss,
                     SchedPolicy::RoundRobin},
           _predictor, hierarchy)
{
}

PrefetchLookup
MinDeltaStreamBuffers::lookup(Addr addr, Cycle now)
{
    return _psb.lookup(addr, now);
}

void
MinDeltaStreamBuffers::trainLoad(Addr pc, Addr addr, bool l1_miss,
                                 bool store_forwarded)
{
    _psb.trainLoad(pc, addr, l1_miss, store_forwarded);
}

void
MinDeltaStreamBuffers::demandMiss(Addr pc, Addr addr, Cycle now)
{
    _psb.demandMiss(pc, addr, now);
}

void
MinDeltaStreamBuffers::tick(Cycle now)
{
    _psb.tick(now);
}

const PrefetcherStats &
MinDeltaStreamBuffers::stats() const
{
    return _psb.stats();
}

} // namespace psb
