/**
 * @file
 * Demand-based Markov prefetcher (Joseph & Grunwald [18]), paper §3.2:
 * on a cache miss, the miss address indexes a Markov table and the
 * recorded successors are prefetched; the prefetcher then idles until
 * the next miss — predicted addresses are *not* fed back to generate
 * further predictions. Contrast with the PSB, which re-feeds its own
 * predictions through per-stream history and therefore runs ahead.
 *
 * Included as a historical baseline for the ablation benches: it
 * isolates how much of PSB's win comes from the running-ahead
 * structure rather than from Markov prediction itself.
 */

#ifndef PSB_PREFETCH_MARKOV_PREFETCHER_HH
#define PSB_PREFETCH_MARKOV_PREFETCHER_HH

#include <vector>

#include "memory/hierarchy.hh"
#include "predictors/markov_table.hh"
#include "prefetch/prefetcher.hh"

namespace psb
{

/** One-shot, miss-triggered Markov prefetcher with the accuracy-based
 *  adaptivity of [18]: a two-bit saturating counter per prediction
 *  entry is incremented when its prefetch is discarded unused and
 *  decremented when used; entries whose counter's sign bit is set are
 *  disabled, but their requests keep being tracked so they re-enable
 *  once they start predicting correctly again. */
class MarkovPrefetcher : public Prefetcher
{
  public:
    MarkovPrefetcher(MemoryHierarchy &hierarchy,
                     const MarkovTableConfig &table = {},
                     unsigned buffer_entries = 16,
                     bool adaptive = true);

    PrefetchLookup lookup(Addr addr, Cycle now) override;
    void trainLoad(Addr pc, Addr addr, bool l1_miss,
                   bool store_forwarded) override;
    void demandMiss(Addr pc, Addr addr, Cycle now) override;
    void tick(Cycle now) override;
    bool fastForwardTicks(Cycle from, uint64_t n) override;
    const PrefetcherStats &stats() const override { return _stats; }

    void
    resetStats() override
    {
        _stats = PrefetcherStats{};
        _disabledSuppressed = 0;
        _attrib.resetStats();
    }

    /** Common prefetcher stats plus the adaptivity suppression
     *  counter (prefix.disabled_suppressed). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const override;

    const MarkovTable &table() const { return _table; }

  private:
    struct BufEntry
    {
        BlockAddr block{};
        BlockAddr sourceBlock{}; ///< table entry that predicted this
        bool valid = false;
        bool prefetched = false;
        Cycle ready{};
        uint64_t fifoStamp = 0;
        uint64_t lineage = 0; ///< attribution id (0 until issued)
    };

    void enqueue(BlockAddr block, BlockAddr source);
    void creditSource(BlockAddr source, bool used);
    bool sourceDisabled(BlockAddr source) const;

    MemoryHierarchy &_hierarchy;
    MarkovTable _table;
    std::vector<BufEntry> _buffer;
    BlockAddr _lastMiss{};
    bool _haveLastMiss = false;
    bool _adaptive;
    /** Two-bit accuracy counters keyed like the Markov table. */
    std::vector<uint8_t> _badness;
    uint64_t _disabledSuppressed = 0;
    uint64_t _stamp = 0;
    PrefetcherStats _stats;

  public:
    /** Predictions suppressed by the adaptivity counters (stat). */
    uint64_t disabledSuppressed() const { return _disabledSuppressed; }
};

} // namespace psb

#endif // PSB_PREFETCH_MARKOV_PREFETCHER_HH
