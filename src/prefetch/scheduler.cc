#include "prefetch/scheduler.hh"

#include "util/logging.hh"
#include "util/stats.hh"
#include "util/trace.hh"

namespace psb
{

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::RoundRobin: return "RR";
      case SchedPolicy::Priority:   return "Priority";
    }
    return "Unknown";
}

BufferScheduler::BufferScheduler(SchedPolicy policy, unsigned num_buffers,
                                 const char *label)
    : _policy(policy), _numBuffers(num_buffers), _label(label)
{
    psb_assert(num_buffers > 0, "scheduler needs at least one buffer");
}

void
BufferScheduler::registerStats(StatsRegistry &reg,
                               const std::string &prefix) const
{
    reg.addScalar(prefix + ".grants", &_grants);
    reg.addScalar(prefix + ".no_candidate", &_noCandidate);
}

} // namespace psb
