#include "prefetch/scheduler.hh"

#include "util/logging.hh"
#include "util/stats.hh"
#include "util/trace.hh"

namespace psb
{

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::RoundRobin: return "RR";
      case SchedPolicy::Priority:   return "Priority";
    }
    return "Unknown";
}

BufferScheduler::BufferScheduler(SchedPolicy policy, unsigned num_buffers,
                                 const char *label)
    : _policy(policy), _numBuffers(num_buffers), _label(label)
{
    psb_assert(num_buffers > 0, "scheduler needs at least one buffer");
}

int
BufferScheduler::pick(const StreamBufferFile &file,
                      const std::function<bool(unsigned)> &candidate,
                      const std::function<uint64_t(unsigned)> &tie_stamp)
{
    if (_policy == SchedPolicy::RoundRobin) {
        for (unsigned i = 1; i <= _numBuffers; ++i) {
            unsigned b = (_rrPtr + i) % _numBuffers;
            if (candidate(b)) {
                _rrPtr = b;
                ++_grants;
                PSB_TRACE(Sched, "grant", int(b), "resource=%s policy=rr",
                          _label);
                return int(b);
            }
        }
        ++_noCandidate;
        return -1;
    }

    // Priority: highest counter first, least-recently-used on ties.
    int best = -1;
    for (unsigned b = 0; b < _numBuffers; ++b) {
        if (!candidate(b))
            continue;
        if (best < 0) {
            best = int(b);
            continue;
        }
        uint32_t pb = file.buffer(b).priority.value();
        uint32_t pbest = file.buffer(unsigned(best)).priority.value();
        if (pb > pbest ||
            (pb == pbest && tie_stamp(b) < tie_stamp(unsigned(best)))) {
            best = int(b);
        }
    }
    if (best >= 0) {
        ++_grants;
        PSB_TRACE(Sched, "grant", best,
                  "resource=%s policy=priority priority=%u", _label,
                  file.buffer(unsigned(best)).priority.value());
    } else {
        ++_noCandidate;
    }
    return best;
}

void
BufferScheduler::registerStats(StatsRegistry &reg,
                               const std::string &prefix) const
{
    reg.addScalar(prefix + ".grants", &_grants);
    reg.addScalar(prefix + ".no_candidate", &_noCandidate);
}

} // namespace psb
