#include "prefetch/next_line_prefetcher.hh"

namespace psb
{

NextLinePrefetcher::NextLinePrefetcher(MemoryHierarchy &hierarchy,
                                       unsigned buffer_entries,
                                       unsigned degree)
    : _hierarchy(hierarchy), _degree(degree), _buffer(buffer_entries)
{
}

PrefetchLookup
NextLinePrefetcher::lookup(Addr addr, Cycle now)
{
    ++_stats.lookups;
    PrefetchLookup result;
    BlockAddr block = _hierarchy.blockOf(addr);

    for (auto &e : _buffer) {
        if (!e.valid || e.block != block)
            continue;
        if (!e.prefetched) {
            // Not yet issued: nothing to provide; reconciled on the
            // demand-fill path.
            return result;
        }
        ++_stats.hits;
        ++_stats.prefetchesUsed;
        result.hit = true;
        result.ready = e.ready;
        result.dataPending = e.ready > now;
        if (result.dataPending)
            ++_stats.hitsPending;
        _attrib.use(e.lineage, now, e.ready);
        e.valid = false;
        return result;
    }
    return result;
}

void
NextLinePrefetcher::trainLoad(Addr, Addr, bool, bool)
{
}

void
NextLinePrefetcher::enqueue(BlockAddr block)
{
    // Already queued or in flight: nothing to do.
    for (const auto &e : _buffer) {
        if (e.valid && e.block == block)
            return;
    }
    // Replace an invalid entry, else the FIFO-oldest one.
    BufEntry *victim = &_buffer[0];
    for (auto &e : _buffer) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.fifoStamp < victim->fifoStamp)
            victim = &e;
    }
    if (victim->valid && victim->prefetched)
        _attrib.terminal(victim->lineage, PrefetchOutcomeKind::Replaced);
    *victim = BufEntry{};
    victim->block = block;
    victim->valid = true;
    victim->fifoStamp = ++_stamp;
}

void
NextLinePrefetcher::demandMiss(Addr, Addr addr, Cycle)
{
    // Release any matching prediction whose prefetch never issued.
    BlockAddr fill_block = _hierarchy.blockOf(addr);
    for (auto &e : _buffer) {
        if (e.valid && !e.prefetched && e.block == fill_block) {
            ++_stats.lateTagHits;
            e.valid = false;
        }
    }
    ++_stats.allocationRequests;
    BlockAddr block = _hierarchy.blockOf(addr);
    for (unsigned d = 1; d <= _degree; ++d) {
        ++_stats.predictions;
        enqueue(block + BlockDelta(d));
    }
}

void
NextLinePrefetcher::tick(Cycle now)
{
    if (!_hierarchy.l1ToL2BusFree(now))
        return;
    // Issue the FIFO-oldest queued prefetch.
    BufEntry *oldest = nullptr;
    for (auto &e : _buffer) {
        if (e.valid && !e.prefetched &&
            (!oldest || e.fifoStamp < oldest->fifoStamp)) {
            oldest = &e;
        }
    }
    if (!oldest)
        return;
    PrefetchOutcome outcome = _hierarchy.prefetch(oldest->block, now);
    oldest->prefetched = true;
    oldest->ready = outcome.ready;
    PrefetchOrigin origin;
    origin.source = PredictionSource::NextLine;
    origin.slot = int(oldest - _buffer.data());
    oldest->lineage = _attrib.issue(
        origin, oldest->block, now, outcome.ready,
        _hierarchy.demandHasBlock(oldest->block, now));
    ++_stats.prefetchesIssued;
}

bool
NextLinePrefetcher::fastForwardTicks(Cycle from, uint64_t n)
{
    // An idle tick here touches no state at all (the bus gate and the
    // empty scan both return without counting), so a span is
    // replayable iff nothing is queued, or something is queued but
    // the bus stays busy for the whole span.
    for (const auto &e : _buffer) {
        if (e.valid && !e.prefetched)
            return _hierarchy.l1L2Bus().freeCyclesIn(from, n) == 0;
    }
    return true;
}

} // namespace psb
