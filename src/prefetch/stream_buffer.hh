/**
 * @file
 * The stream-buffer storage shared by every stream-buffer prefetcher
 * in this library (the PC-stride baseline and the predictor-directed
 * design).
 *
 * Follows Farkas et al. [13,14] as modelled by the paper: 8 buffers of
 * 4 entries each, *fully-associative* lookup across all entries of all
 * buffers (not Jouppi's FIFO head probe), non-overlapping streams
 * enforced by searching every buffer before inserting a prediction,
 * and LRU selection of the entry a new prediction lands in.
 */

#ifndef PSB_PREFETCH_STREAM_BUFFER_HH
#define PSB_PREFETCH_STREAM_BUFFER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "predictors/address_predictor.hh"
#include "trace/micro_op.hh"
#include "util/bitfield.hh"
#include "util/hot_path.hh"
#include "util/sat_counter.hh"

namespace psb
{

/** Shared stream-buffer parameters; defaults are the paper's. */
struct StreamBufferConfig
{
    unsigned numBuffers = 8;
    unsigned entriesPerBuffer = 4;
    unsigned blockBytes = 32;
    uint32_t priorityMax = 12;       ///< priority counter saturation
    uint32_t priorityHitIncrement = 2;
    unsigned agingPeriod = 10;       ///< allocation requests per -1 aging
    uint32_t allocConfThreshold = 1; ///< confidence-allocation threshold
    /**
     * Paper §4.5 option: store the TLB translation with the stream
     * buffer so a lookup is only needed when the stream crosses a
     * page boundary.
     */
    bool cacheTlbTranslation = false;
};

/** One stream-buffer entry: a predicted block and its fill status. */
struct SbEntry
{
    BlockAddr block{};
    bool valid = false;      ///< holds a prediction
    bool prefetched = false; ///< fill request has been issued
    Cycle ready{};           ///< data-arrival cycle (when prefetched)
    /** Attribution lineage id assigned at prefetch issue (0: none). */
    uint64_t lineage = 0;
    /** Predictor mechanism that produced this entry's address. */
    PredictionSource source = PredictionSource::None;
};

/**
 * One stream buffer: N entries plus the per-stream prediction state
 * and the priority counter of paper §4.4.
 */
class StreamBuffer
{
  public:
    /** @param index Position in the owning file (trace track id). */
    StreamBuffer(unsigned num_entries, uint32_t priority_max,
                 unsigned index = 0);

    /** Reset entries and install a new stream (allocation). */
    void allocateStream(const StreamState &state, uint32_t priority_init);

    /** Index of the entry holding @p block, or -1. */
    PSB_HOT_PATH int findEntry(BlockAddr block) const;

    /**
     * Index of an entry free to take a new prediction, or -1. The
     * lowest free index, matching a linear scan — prefetch issue order
     * depends on it.
     */
    int
    freeEntry() const
    {
        uint64_t free = ~_validMask & _fullMask;
        return free ? int(countTrailingZeros(free)) : -1;
    }

    /** Index of a valid entry whose prefetch has not issued, or -1. */
    int
    pendingPrefetchEntry() const
    {
        return _pendingMask ? int(countTrailingZeros(_pendingMask)) : -1;
    }

    /**
     * Install a prediction for @p block into free entry @p idx,
     * tagged with the predictor @p source that produced it.
     */
    void fillEntry(int idx, BlockAddr block,
                   PredictionSource source = PredictionSource::None);

    /**
     * Record that entry @p idx's fill was issued, arriving @p ready,
     * carrying attribution @p lineage (0 when untracked).
     */
    void markPrefetched(int idx, Cycle ready, uint64_t lineage = 0);

    /** Invalidate entry @p idx (hit consumed it / late tag hit). */
    void clearEntry(int idx);

    bool allocated() const { return _allocated; }
    void deallocate() { _allocated = false; }

    const std::vector<SbEntry> &entries() const { return _entries; }

    /** Per-stream predictor history (paper Figure 2). */
    StreamState state;

    /** Priority counter: +2 on hit, aged -1, copies accuracy at alloc. */
    SatCounter priority;

    /** Cached page translation (§4.5 option); ~0 = none cached. */
    uint64_t translatedPage = ~uint64_t(0);

    /** Stamps for LRU victim choice and scheduler tie-breaking. */
    uint64_t lastHitStamp = 0;
    uint64_t allocStamp = 0;
    uint64_t lastPredictStamp = 0;
    uint64_t lastPrefetchStamp = 0;

    /** Per-buffer accounting exported through the stats registry. */
    uint64_t hitCount = 0;     ///< lookups this buffer serviced
    uint64_t streamAllocs = 0; ///< streams installed into this buffer
    uint32_t priorityPeak = 0; ///< high-water of the priority counter

    /** Record the current priority value into the high-water mark. */
    void
    notePriorityPeak()
    {
        if (priority.value() > priorityPeak)
            priorityPeak = priority.value();
    }

    /** Zero the per-buffer accounting (end-of-warm-up). */
    void
    resetBufferStats()
    {
        hitCount = 0;
        streamAllocs = 0;
        priorityPeak = priority.value();
    }

  private:
    std::vector<SbEntry> _entries;
    // Occupancy summarised as bitmasks so the per-cycle scheduler
    // candidate checks (free slot? pending prefetch?) are O(1); every
    // entry mutation goes through fillEntry/markPrefetched/clearEntry
    // to keep them in sync with _entries.
    uint64_t _validMask = 0;   ///< bit i: _entries[i].valid
    uint64_t _pendingMask = 0; ///< bit i: valid && !prefetched
    uint64_t _fullMask = 0;    ///< low entriesPerBuffer bits
    unsigned _index = 0;
    bool _allocated = false;
};

/**
 * The file of stream buffers: associative lookup and duplicate
 * suppression across all buffers.
 */
class StreamBufferFile
{
  public:
    explicit StreamBufferFile(const StreamBufferConfig &cfg);

    /** Location of a tag match. */
    struct TagHit
    {
        unsigned buf = 0;
        int entry = -1;
    };

    /** Search every entry of every buffer for @p block. */
    PSB_HOT_PATH std::optional<TagHit> findBlock(BlockAddr block) const;

    /** True iff some buffer already holds a prediction for @p block. */
    PSB_HOT_PATH bool contains(BlockAddr block) const;

    /**
     * The buffer to replace on a filter-based allocation (two-miss /
     * always policies): the oldest-allocated buffer, preferring
     * unallocated ones. Deliberately blind to hit activity — this is
     * what lets stream thrashing evict productive streams, the
     * behaviour confidence allocation fixes (paper §6: confidence
     * "avoids replacing stream buffers that are receiving a lot of
     * hits").
     */
    unsigned lruBuffer() const;

    /** Buffer with the lowest priority counter (ties: least priority
     *  then least-recently-hit), used by confidence allocation. */
    unsigned minPriorityBuffer() const;

    // Indexing is unchecked: every caller iterates i < numBuffers(),
    // and .at()'s throw path is banned on the hot path (rule R11).
    StreamBuffer &buffer(unsigned i) { return _buffers[i]; }
    const StreamBuffer &buffer(unsigned i) const { return _buffers[i]; }
    unsigned numBuffers() const { return unsigned(_buffers.size()); }

    /** The block number of @p addr at this file's block size. */
    BlockAddr blockOf(Addr addr) const
    {
        return addr.toBlock(_lineBits);
    }

    /** log2 of the configured block size. */
    unsigned lineBits() const { return _lineBits; }

    const StreamBufferConfig &config() const { return _cfg; }

    /** Monotonic stamp source shared by owner policies. */
    uint64_t nextStamp() { return ++_stamp; }

  private:
    StreamBufferConfig _cfg;
    unsigned _lineBits;
    std::vector<StreamBuffer> _buffers;
    uint64_t _stamp = 0;
};

} // namespace psb

#endif // PSB_PREFETCH_STREAM_BUFFER_HH
