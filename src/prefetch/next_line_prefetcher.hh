/**
 * @file
 * Next-Line Prefetching (Smith [31]), the paper's §3.2 example of
 * demand-based prefetching: a cache miss triggers a prefetch of the
 * next sequential block. The original tagged-bit scheme marks cache
 * blocks; we model the equivalent behaviour with a small prefetch
 * buffer beside the L1D so the design composes with the same
 * Prefetcher interface the stream buffers use (the substitution is
 * noted in DESIGN.md).
 */

#ifndef PSB_PREFETCH_NEXT_LINE_PREFETCHER_HH
#define PSB_PREFETCH_NEXT_LINE_PREFETCHER_HH

#include <deque>
#include <vector>

#include "memory/hierarchy.hh"
#include "prefetch/prefetcher.hh"

namespace psb
{

/** Demand-triggered next-sequential-block prefetcher. */
class NextLinePrefetcher : public Prefetcher
{
  public:
    /**
     * @param buffer_entries Capacity of the FIFO prefetch buffer.
     * @param degree Sequential blocks prefetched per triggering miss.
     */
    NextLinePrefetcher(MemoryHierarchy &hierarchy,
                       unsigned buffer_entries = 16, unsigned degree = 1);

    PrefetchLookup lookup(Addr addr, Cycle now) override;
    void trainLoad(Addr pc, Addr addr, bool l1_miss,
                   bool store_forwarded) override;
    void demandMiss(Addr pc, Addr addr, Cycle now) override;
    void tick(Cycle now) override;
    bool fastForwardTicks(Cycle from, uint64_t n) override;
    const PrefetcherStats &stats() const override { return _stats; }

    void
    resetStats() override
    {
        _stats = PrefetcherStats{};
        _attrib.resetStats();
    }

  private:
    struct BufEntry
    {
        BlockAddr block{};
        bool valid = false;
        bool prefetched = false;
        Cycle ready{};
        uint64_t fifoStamp = 0;
        uint64_t lineage = 0; ///< attribution id (0 until issued)
    };

    void enqueue(BlockAddr block);

    MemoryHierarchy &_hierarchy;
    unsigned _degree;
    std::vector<BufEntry> _buffer;
    uint64_t _stamp = 0;
    PrefetcherStats _stats;
};

} // namespace psb

#endif // PSB_PREFETCH_NEXT_LINE_PREFETCHER_HH
