/**
 * @file
 * Palacharla & Kessler minimum-delta stream buffers [22] — the
 * address-indexed non-unit-stride detection scheme of paper §3.3.2:
 * memory is divided into chunks, each chunk tracks its recent miss
 * addresses, and a stream's stride is "the minimum signed difference
 * between the miss address and the past N miss addresses" of its
 * chunk; deltas smaller than an L1 block round up to one block with
 * the delta's sign. Allocation uses their filter (two consecutive
 * misses to the same chunk).
 *
 * The paper implemented this scheme and found it "uniformly
 * outperformed by the per-load stride detector of Farkas et al.", so
 * it reports only PC-stride results; bench/ablation_prefetchers
 * reproduces that comparison. Expressed, like the other stream-buffer
 * designs, as a PredictorDirectedStreamBuffers instance around a
 * MinDeltaPredictor.
 */

#ifndef PSB_PREFETCH_MIN_DELTA_STREAM_BUFFERS_HH
#define PSB_PREFETCH_MIN_DELTA_STREAM_BUFFERS_HH

#include <cstdint>
#include <vector>

#include "core/psb.hh"
#include "predictors/address_predictor.hh"

namespace psb
{

/** Minimum-delta detection configuration. */
struct MinDeltaConfig
{
    unsigned chunkBytes = 4096;   ///< memory region per stride entry
    unsigned chunkTableEntries = 256; ///< power of two
    unsigned historyDepth = 4;    ///< N past miss addresses per chunk
    unsigned blockBytes = 32;
};

/** Address-region-indexed minimum-delta stride predictor. */
class MinDeltaPredictor : public AddressPredictor
{
  public:
    explicit MinDeltaPredictor(const MinDeltaConfig &cfg = {});

    void train(Addr pc, Addr addr) override;
    std::optional<BlockAddr>
    predictNext(StreamState &state) const override;
    StreamState allocateStream(Addr pc, Addr addr) const override;
    uint32_t confidence(Addr pc) const override;

    /** Palacharla-Kessler filter: two consecutive misses per chunk. */
    bool twoMissFilterPass(Addr pc, Addr addr) const override;

    /** Current minimum-delta stride for the chunk of @p addr. */
    int64_t strideFor(Addr addr) const;

  private:
    struct ChunkEntry
    {
        uint64_t chunk = 0;
        unsigned recentHead = 0;  ///< next write slot in the ring
        unsigned recentCount = 0; ///< valid ring entries (<= depth)
        unsigned consecutiveMisses = 0;
        int64_t stride = 0;
        bool valid = false;
    };

    unsigned indexOf(Addr addr) const;
    uint64_t chunkOf(Addr addr) const;

    MinDeltaConfig _cfg;
    unsigned _lineBits;
    std::vector<ChunkEntry> _chunks;
    /** Per-chunk miss-history rings, historyDepth slots each, laid
     *  out flat and sized once at construction so training (which
     *  runs on the per-cycle hot path) never touches the heap. */
    std::vector<Addr> _history;
    Addr _lastMissAddr{};
    bool _haveLastMiss = false;
    /** Chunk of the most recent trained miss (for the filter). */
    mutable uint64_t _lastChunk = ~uint64_t(0);
};

/** The Palacharla-Kessler stream-buffer design. */
class MinDeltaStreamBuffers : public Prefetcher
{
  public:
    MinDeltaStreamBuffers(const StreamBufferConfig &buffers,
                          const MinDeltaConfig &table,
                          MemoryHierarchy &hierarchy);

    PrefetchLookup lookup(Addr addr, Cycle now) override;
    void trainLoad(Addr pc, Addr addr, bool l1_miss,
                   bool store_forwarded) override;
    void demandMiss(Addr pc, Addr addr, Cycle now) override;
    void tick(Cycle now) override;

    bool
    fastForwardTicks(Cycle from, uint64_t n) override
    {
        return _psb.fastForwardTicks(from, n);
    }

    const PrefetcherStats &stats() const override;
    void resetStats() override { _psb.resetStats(); }

    /** The inner PSB owns the live attribution state. */
    void endOfSim(Cycle now) override { _psb.endOfSim(now); }

    /** Delegate to the inner PSB so per-buffer stats are exported. */
    void
    registerStats(StatsRegistry &reg,
                  const std::string &prefix) const override
    {
        _psb.registerStats(reg, prefix);
    }

    const MinDeltaPredictor &predictor() const { return _predictor; }

  private:
    MinDeltaPredictor _predictor;
    PredictorDirectedStreamBuffers _psb;
};

} // namespace psb

#endif // PSB_PREFETCH_MIN_DELTA_STREAM_BUFFERS_HH
