/** @file See attribution.hh. */

#include "prefetch/attribution.hh"

#include "util/logging.hh"
#include "util/trace.hh"

namespace psb
{

namespace
{

// Distance/lateness histogram range: one bucket per cycle up to the
// longest latency chain the modelled hierarchy produces (memory plus
// queueing); longer samples land in the overflow bucket and resolve to
// the overflow index in the exported percentiles.
constexpr size_t kDistanceBuckets = 1024;

// Initial live-pool capacity. Live records mirror entries of bounded
// hardware structures (stream-buffer entries, prefetch-buffer slots),
// so a few hundred is already generous; the pool only grows on the
// explicitly-allowed overflow path in issue().
constexpr size_t kLiveReserve = 1024;

} // namespace

const char *
predictionSourceName(PredictionSource source)
{
    switch (source) {
    case PredictionSource::None:
        return "none";
    case PredictionSource::Stride:
        return "stride";
    case PredictionSource::Markov:
        return "markov";
    case PredictionSource::Context:
        return "context";
    case PredictionSource::Sequential:
        return "sequential";
    case PredictionSource::LastAddress:
        return "last_address";
    case PredictionSource::MinDelta:
        return "min_delta";
    case PredictionSource::NextLine:
        return "next_line";
    case PredictionSource::NumSources:
        break;
    }
    panic("invalid PredictionSource %u", unsigned(source));
}

const char *
prefetchOutcomeName(PrefetchOutcomeKind kind)
{
    switch (kind) {
    case PrefetchOutcomeKind::UsedTimely:
        return "used_timely";
    case PrefetchOutcomeKind::UsedLate:
        return "used_late";
    case PrefetchOutcomeKind::EvictedUnused:
        return "evicted_unused";
    case PrefetchOutcomeKind::Replaced:
        return "replaced";
    case PrefetchOutcomeKind::Squashed:
        return "squashed";
    case PrefetchOutcomeKind::RedundantDemand:
        return "redundant_demand";
    case PrefetchOutcomeKind::NumOutcomes:
        break;
    }
    panic("invalid PrefetchOutcomeKind %u", unsigned(kind));
}

PrefetchAttribution::PrefetchAttribution()
    : _useDistance(kDistanceBuckets), _lateness(kDistanceBuckets)
{
    _live.resize(kLiveReserve);
}

PrefetchAttribution::Live *
PrefetchAttribution::findLive(uint64_t lineage)
{
    // Binary search over the lineage-sorted used prefix.
    size_t lo = 0;
    size_t hi = _liveCount;
    while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (_live[mid].lineage < lineage)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < _liveCount && _live[lo].lineage == lineage)
        return &_live[lo];
    return nullptr;
}

void
PrefetchAttribution::eraseLive(Live *rec)
{
    size_t idx = size_t(rec - _live.data());
    for (size_t i = idx + 1; i < _liveCount; ++i)
        _live[i - 1] = _live[i];
    --_liveCount;
}

uint64_t
PrefetchAttribution::issue(const PrefetchOrigin &origin, BlockAddr block,
                           Cycle now, Cycle ready,
                           bool redundant_with_demand)
{
    uint64_t lineage = ++_nextLineage;
    ++_issued;
    ++_sourceIssued[unsigned(origin.source)];

    if (_liveCount == _live.size()) {
        // Pool overflow: never expected (the live set is bounded by
        // hardware capacity), so the growth sits outside the
        // steady-state no-alloc guarantee — an armed AllocGuard turns
        // it into a hard failure rather than hiding it.
        _live.resize(_live.size() * 2); // psb-analyze: allow(R10)
    }
    Live &rec = _live[_liveCount++];
    rec.lineage = lineage;
    rec.source = origin.source;
    rec.issueCycle = now;
    rec.ready = ready;
    rec.redundant = redundant_with_demand;

    PSB_TRACE_BEGIN(
        Prefetch, "pf", int(lineage & 0x7fffffff),
        "src=%s block=%llu pc=%llu stride=%lld conf=%u slot=%d "
        "ready=%llu redundant=%d",
        predictionSourceName(origin.source),
        (unsigned long long)block.raw(),
        (unsigned long long)origin.loadPc.raw(),
        (long long)origin.stride.raw(), origin.confidence, origin.slot,
        (unsigned long long)ready.raw(), int(redundant_with_demand));
    return lineage;
}

void
PrefetchAttribution::settle(uint64_t lineage, const Live &rec,
                            PrefetchOutcomeKind kind)
{
    ++_outcomes[unsigned(kind)];
    ++_sourceOutcome[unsigned(rec.source)][unsigned(kind)];
    PSB_TRACE(Prefetch, "pf.outcome", int(lineage & 0x7fffffff),
              "outcome=%s src=%s", prefetchOutcomeName(kind),
              predictionSourceName(rec.source));
    PSB_TRACE_END(Prefetch, "pf", int(lineage & 0x7fffffff));
}

void
PrefetchAttribution::use(uint64_t lineage, Cycle now, Cycle ready)
{
    if (lineage == 0)
        return;
    Live *rec = findLive(lineage);
    if (rec == nullptr) {
        // Pre-reset lineage: count it out of band (see file comment)
        // but still close the trace span its issue opened.
        ++_staleTerminals;
        PSB_TRACE(Prefetch, "pf.outcome", int(lineage & 0x7fffffff),
                  "outcome=stale src=none");
        PSB_TRACE_END(Prefetch, "pf", int(lineage & 0x7fffffff));
        return;
    }
    bool timely = ready <= now;
    _useDistance.sample((now - rec->issueCycle).raw());
    if (!timely)
        _lateness.sample((ready - now).raw());
    settle(lineage, *rec,
           timely ? PrefetchOutcomeKind::UsedTimely
                  : PrefetchOutcomeKind::UsedLate);
    eraseLive(rec);
}

void
PrefetchAttribution::terminal(uint64_t lineage, PrefetchOutcomeKind kind)
{
    if (lineage == 0)
        return;
    Live *rec = findLive(lineage);
    if (rec == nullptr) {
        ++_staleTerminals;
        PSB_TRACE(Prefetch, "pf.outcome", int(lineage & 0x7fffffff),
                  "outcome=stale src=none");
        PSB_TRACE_END(Prefetch, "pf", int(lineage & 0x7fffffff));
        return;
    }
    // A prefetch that duplicated demand work and was never used is a
    // redundancy, whatever structural event finally discarded it.
    if (rec->redundant)
        kind = PrefetchOutcomeKind::RedundantDemand;
    settle(lineage, *rec, kind);
    eraseLive(rec);
}

void
PrefetchAttribution::finalize(Cycle now)
{
    (void)now;
    // The live prefix is ordered by lineage id, so squash order — and
    // therefore trace and counter state — is deterministic.
    for (size_t i = 0; i < _liveCount; ++i) {
        const Live &rec = _live[i];
        settle(rec.lineage, rec,
               rec.redundant ? PrefetchOutcomeKind::RedundantDemand
                             : PrefetchOutcomeKind::Squashed);
    }
    _liveCount = 0;
    psb_assert(_issued == outcomeTotal(),
               "prefetch lifecycle conservation violated: "
               "issued != sum of terminal outcomes");
}

uint64_t
PrefetchAttribution::outcomeTotal() const
{
    uint64_t total = 0;
    for (unsigned k = 0; k < kNumOutcomes; ++k)
        total += _outcomes[k];
    return total;
}

void
PrefetchAttribution::resetStats()
{
    // _nextLineage deliberately kept: see file comment.
    _issued = 0;
    _staleTerminals = 0;
    for (unsigned k = 0; k < kNumOutcomes; ++k)
        _outcomes[k] = 0;
    for (unsigned s = 0; s < kNumSources; ++s) {
        _sourceIssued[s] = 0;
        for (unsigned k = 0; k < kNumOutcomes; ++k)
            _sourceOutcome[s][k] = 0;
    }
    _useDistance.reset();
    _lateness.reset();
    _liveCount = 0;
}

void
PrefetchAttribution::registerStats(StatsRegistry &reg,
                                   const std::string &prefix) const
{
    reg.addScalar(prefix + ".issued", [this] { return _issued; });
    reg.addScalar(prefix + ".live",
                  [this] { return uint64_t(_liveCount); });
    reg.addScalar(prefix + ".stale_terminals",
                  [this] { return _staleTerminals; });
    for (unsigned k = 0; k < kNumOutcomes; ++k) {
        auto kind = PrefetchOutcomeKind(k);
        reg.addScalar(prefix + ".outcome." + prefetchOutcomeName(kind),
                      [this, k] { return _outcomes[k]; });
    }
    for (unsigned s = 0; s < kNumSources; ++s) {
        std::string sp = prefix + ".source." +
                         predictionSourceName(PredictionSource(s));
        reg.addScalar(sp + ".issued",
                      [this, s] { return _sourceIssued[s]; });
        for (unsigned k = 0; k < kNumOutcomes; ++k) {
            auto kind = PrefetchOutcomeKind(k);
            reg.addScalar(sp + "." + prefetchOutcomeName(kind),
                          [this, s, k] { return _sourceOutcome[s][k]; });
        }
    }
    // Percentiles are exported as scalars rather than the full
    // per-bucket histogram dump to keep the goldens compact; the
    // overflow bucket resolves to numBuckets() by Histogram contract.
    reg.addScalar(prefix + ".use_distance.p50",
                  [this] { return _useDistance.percentile(0.50); });
    reg.addScalar(prefix + ".use_distance.p90",
                  [this] { return _useDistance.percentile(0.90); });
    reg.addScalar(prefix + ".use_distance.p99",
                  [this] { return _useDistance.percentile(0.99); });
    reg.addScalar(prefix + ".use_distance.samples",
                  [this] { return _useDistance.total(); });
    reg.addScalar(prefix + ".lateness.p50",
                  [this] { return _lateness.percentile(0.50); });
    reg.addScalar(prefix + ".lateness.p90",
                  [this] { return _lateness.percentile(0.90); });
    reg.addScalar(prefix + ".lateness.p99",
                  [this] { return _lateness.percentile(0.99); });
    reg.addScalar(prefix + ".lateness.samples",
                  [this] { return _lateness.total(); });
    reg.addReal(prefix + ".accuracy", [this] {
        return ratio(_outcomes[unsigned(
                         PrefetchOutcomeKind::UsedTimely)] +
                         _outcomes[unsigned(
                             PrefetchOutcomeKind::UsedLate)],
                     _issued);
    });
    reg.addReal(prefix + ".timeliness", [this] {
        uint64_t used =
            _outcomes[unsigned(PrefetchOutcomeKind::UsedTimely)] +
            _outcomes[unsigned(PrefetchOutcomeKind::UsedLate)];
        return ratio(
            _outcomes[unsigned(PrefetchOutcomeKind::UsedTimely)], used);
    });
}

} // namespace psb
