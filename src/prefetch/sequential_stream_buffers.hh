/**
 * @file
 * Jouppi-style sequential stream buffers [19] (paper §3.3.2): every
 * miss allocates a buffer that prefetches consecutive cache blocks.
 * Expressed in the PSB framework as a NextBlockPredictor with the
 * Always allocation policy and round-robin arbitration. Kept as an
 * additional historical baseline and a thrashing demonstration for the
 * ablation benches (no allocation filter means high contention).
 */

#ifndef PSB_PREFETCH_SEQUENTIAL_STREAM_BUFFERS_HH
#define PSB_PREFETCH_SEQUENTIAL_STREAM_BUFFERS_HH

#include "core/psb.hh"
#include "predictors/last_address_predictor.hh"

namespace psb
{

/** Jouppi sequential stream buffers, with an optional 2-miss filter
 *  (Palacharla & Kessler's allocation filter [22]). */
class SequentialStreamBuffers : public Prefetcher
{
  public:
    SequentialStreamBuffers(const StreamBufferConfig &buffers,
                            MemoryHierarchy &hierarchy,
                            bool filtered = false);

    PrefetchLookup lookup(Addr addr, Cycle now) override;
    void trainLoad(Addr pc, Addr addr, bool l1_miss,
                   bool store_forwarded) override;
    void demandMiss(Addr pc, Addr addr, Cycle now) override;
    void tick(Cycle now) override;

    bool
    fastForwardTicks(Cycle from, uint64_t n) override
    {
        return _psb.fastForwardTicks(from, n);
    }

    const PrefetcherStats &stats() const override;
    void resetStats() override { _psb.resetStats(); }

    /** The inner PSB owns the live attribution state. */
    void endOfSim(Cycle now) override { _psb.endOfSim(now); }

    /** Delegate to the inner PSB so per-buffer stats are exported. */
    void
    registerStats(StatsRegistry &reg,
                  const std::string &prefix) const override
    {
        _psb.registerStats(reg, prefix);
    }

  private:
    NextBlockPredictor _predictor;
    PredictorDirectedStreamBuffers _psb;
};

} // namespace psb

#endif // PSB_PREFETCH_SEQUENTIAL_STREAM_BUFFERS_HH
