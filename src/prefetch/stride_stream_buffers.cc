#include "prefetch/stride_stream_buffers.hh"

namespace psb
{

FarkasStridePredictor::FarkasStridePredictor(const StrideTableConfig &cfg)
    : _cfg(cfg), _table(cfg)
{
}

void
FarkasStridePredictor::train(Addr pc, Addr addr)
{
    StrideTrainResult result = _table.train(pc, addr);
    if (!result.firstTouch)
        _table.recordOutcome(pc, result.stridePredicted);
}

std::optional<BlockAddr>
FarkasStridePredictor::predictNext(StreamState &state) const
{
    state.lastAddr += state.stride;
    state.lastSource = PredictionSource::Stride;
    return state.lastAddr;
}

StreamState
FarkasStridePredictor::allocateStream(Addr pc, Addr addr) const
{
    StreamState state;
    state.loadPc = pc;
    state.lastAddr = addr.toBlock(_table.lineBits());
    state.stride = _table.predictedStride(pc);
    state.confidence = _table.confidence(pc);
    return state;
}

uint32_t
FarkasStridePredictor::confidence(Addr pc) const
{
    return _table.confidence(pc);
}

bool
FarkasStridePredictor::twoMissFilterPass(Addr pc, Addr) const
{
    return _table.strideFilterPass(pc);
}

StrideStreamBuffers::StrideStreamBuffers(const StreamBufferConfig &buffers,
                                         const StrideTableConfig &table,
                                         MemoryHierarchy &hierarchy)
    : _predictor(table),
      _psb(PsbConfig{buffers, AllocPolicy::TwoMiss,
                     SchedPolicy::RoundRobin},
           _predictor, hierarchy)
{
}

PrefetchLookup
StrideStreamBuffers::lookup(Addr addr, Cycle now)
{
    return _psb.lookup(addr, now);
}

void
StrideStreamBuffers::trainLoad(Addr pc, Addr addr, bool l1_miss,
                               bool store_forwarded)
{
    _psb.trainLoad(pc, addr, l1_miss, store_forwarded);
}

void
StrideStreamBuffers::demandMiss(Addr pc, Addr addr, Cycle now)
{
    _psb.demandMiss(pc, addr, now);
}

void
StrideStreamBuffers::tick(Cycle now)
{
    _psb.tick(now);
}

const PrefetcherStats &
StrideStreamBuffers::stats() const
{
    return _psb.stats();
}

} // namespace psb
