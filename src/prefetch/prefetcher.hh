/**
 * @file
 * The prefetcher interface the out-of-order core drives.
 *
 * The core looks the prefetcher up in parallel with the L1D on every
 * load (paper: "we assume the data cache lookup latency is the same as
 * the stream buffer lookup latency"), trains it in the write-back
 * stage, reports demand misses that also missed the buffers (the
 * allocation trigger), and ticks it once per cycle so it can make one
 * prediction and issue one prefetch when the L1-L2 bus is free.
 */

#ifndef PSB_PREFETCH_PREFETCHER_HH
#define PSB_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <string>

#include "prefetch/attribution.hh"
#include "trace/micro_op.hh"
#include "util/stats.hh"

namespace psb
{

/** Result of looking an address up in the prefetcher's storage. */
struct PrefetchLookup
{
    bool hit = false;        ///< tag matched a prefetched block
    Cycle ready{};           ///< cycle the block's data is available
    bool dataPending = false;///< tag hit but the fill is still in flight
};

/** Statistics common to all prefetchers. */
struct PrefetcherStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;           ///< tag hits on prefetched data
    uint64_t hitsPending = 0;    ///< of which the data was in flight
    uint64_t lateTagHits = 0;    ///< tag matched a not-yet-issued entry
    uint64_t prefetchesIssued = 0;
    uint64_t prefetchesUsed = 0;
    uint64_t allocationRequests = 0;
    uint64_t allocations = 0;
    uint64_t allocationsFiltered = 0;
    uint64_t predictions = 0;
    uint64_t duplicateSuppressed = 0;
    uint64_t tlbTranslationsSkipped = 0; ///< §4.5 cached translations

    /** Paper Figure 6: prefetches used / prefetches made. */
    double
    accuracy() const
    {
        return prefetchesIssued
            ? double(prefetchesUsed) / double(prefetchesIssued)
            : 0.0;
    }
};

/** Abstract hardware prefetcher sitting beside the L1 data cache. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Search the prefetch storage for the block containing @p addr, in
     * parallel with the L1D lookup. A hit frees the matching entry;
     * the caller is responsible for moving the block into the L1D
     * (MemoryHierarchy::fillFromStreamBuffer / registerInFlightFill).
     */
    virtual PrefetchLookup lookup(Addr addr, Cycle now) = 0;

    /**
     * Write-back-stage training for a committed load.
     *
     * @param pc The load's PC.
     * @param addr The load's effective address.
     * @param l1_miss The load missed in the L1D (prediction tables are
     *        trained on the miss stream only).
     * @param store_forwarded The load got its value from a store
     *        forward; such loads are never entered in the tables.
     */
    virtual void trainLoad(Addr pc, Addr addr, bool l1_miss,
                           bool store_forwarded) = 0;

    /**
     * A load missed both the L1D and the prefetcher: an allocation
     * request (and the aging event for priority counters).
     */
    virtual void demandMiss(Addr pc, Addr addr, Cycle now) = 0;

    /** Advance one cycle: predict and/or issue prefetches. */
    virtual void tick(Cycle now) = 0;

    /**
     * Replay @p n consecutive idle ticks [@p from, @p from + @p n) in
     * O(1), for the simulator's event-driven fast-forward. An
     * implementation must return true ONLY when ticking those cycles
     * one by one would have left its architectural state unchanged,
     * and must apply any per-idle-cycle stat bumps (e.g. scheduler
     * no-candidate counts) itself so a fast-forwarded run stays
     * byte-identical to a cycle-by-cycle run. Returning false makes
     * the simulator tick through the span normally; the conservative
     * default is always correct.
     *
     * The contract holds because the core is quiescent over a skipped
     * span: no lookups, training, or demand misses arrive, so the
     * only inputs that change are the cycle number and bus occupancy.
     */
    virtual bool fastForwardTicks(Cycle from, uint64_t n)
    {
        (void)from;
        (void)n;
        return false;
    }

    virtual const PrefetcherStats &stats() const = 0;

    /** Zero the statistics (end-of-warm-up); state is kept. */
    virtual void resetStats() = 0;

    /**
     * End-of-simulation hook: settle every still-live prefetch to its
     * squashed/redundant terminal outcome and fatally check the
     * attribution conservation invariant (attribution.hh). Called by
     * Simulator::run() before the final interval-stats record so the
     * squash counters land inside the measured region. Wrapper
     * prefetchers forward to the implementation that owns the live
     * attribution state.
     */
    virtual void
    endOfSim(Cycle now)
    {
        _attrib.finalize(now);
    }

    /** Lifecycle attribution ledger (read-only; tests and reports). */
    const PrefetchAttribution &attribution() const { return _attrib; }

    /**
     * Register this prefetcher's stats under @p prefix. The default
     * registers the common PrefetcherStats counters by reading
     * stats() at snapshot time, plus the prefetch.attrib.* lifecycle
     * subtree (a fixed path: the simulator owns exactly one prefetcher
     * per registry); implementations with extra internal state
     * (per-buffer counters, schedulers) extend it.
     */
    virtual void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        _attrib.registerStats(reg, "prefetch.attrib");
        reg.addScalar(prefix + ".lookups",
                      [this] { return stats().lookups; });
        reg.addScalar(prefix + ".hits", [this] { return stats().hits; });
        reg.addScalar(prefix + ".hits_pending",
                      [this] { return stats().hitsPending; });
        reg.addScalar(prefix + ".late_tag_hits",
                      [this] { return stats().lateTagHits; });
        reg.addScalar(prefix + ".issued",
                      [this] { return stats().prefetchesIssued; });
        reg.addScalar(prefix + ".used",
                      [this] { return stats().prefetchesUsed; });
        reg.addScalar(prefix + ".allocation_requests",
                      [this] { return stats().allocationRequests; });
        reg.addScalar(prefix + ".allocations",
                      [this] { return stats().allocations; });
        reg.addScalar(prefix + ".allocations_filtered",
                      [this] { return stats().allocationsFiltered; });
        reg.addScalar(prefix + ".predictions",
                      [this] { return stats().predictions; });
        reg.addScalar(prefix + ".duplicate_suppressed",
                      [this] { return stats().duplicateSuppressed; });
        reg.addScalar(prefix + ".tlb_translations_skipped",
                      [this] { return stats().tlbTranslationsSkipped; });
        reg.addReal(prefix + ".accuracy",
                    [this] { return stats().accuracy(); });
    }

  protected:
    /** Lifecycle ledger shared by every concrete prefetcher. */
    PrefetchAttribution _attrib;
};

/** The no-prefetching baseline. */
class NullPrefetcher : public Prefetcher
{
  public:
    PrefetchLookup
    lookup(Addr, Cycle) override
    {
        ++_stats.lookups;
        return {};
    }

    void trainLoad(Addr, Addr, bool, bool) override {}
    void demandMiss(Addr, Addr, Cycle) override {}
    void tick(Cycle) override {}
    bool fastForwardTicks(Cycle, uint64_t) override { return true; }
    const PrefetcherStats &stats() const override { return _stats; }

    void
    resetStats() override
    {
        _stats = PrefetcherStats{};
        _attrib.resetStats();
    }

  private:
    PrefetcherStats _stats;
};

} // namespace psb

#endif // PSB_PREFETCH_PREFETCHER_HH
