#include "prefetch/stream_buffer.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace psb
{

StreamBuffer::StreamBuffer(unsigned num_entries, uint32_t priority_max,
                           unsigned index)
    : priority(priority_max), _entries(num_entries),
      _fullMask(mask(num_entries)), _index(index)
{
    psb_assert(num_entries <= 64,
               "entry occupancy masks hold at most 64 entries");
}

void
StreamBuffer::allocateStream(const StreamState &new_state,
                             uint32_t priority_init)
{
    // Stream lifetimes render as Chrome duration events, one track per
    // buffer: re-allocating a live buffer is a replacement (thrash), so
    // the old span closes where the new one opens.
    if (_allocated) {
        PSB_TRACE(Psb, "thrash", int(_index),
                  "old_addr=%llu old_priority=%u",
                  (unsigned long long)state.lastAddr.raw(),
                  priority.value());
        PSB_TRACE_END(Psb, "stream", int(_index));
    }
    state = new_state;
    priority.set(priority_init);
    translatedPage = ~uint64_t(0);
    for (auto &e : _entries)
        e = SbEntry{};
    _validMask = 0;
    _pendingMask = 0;
    _allocated = true;
    ++streamAllocs;
    notePriorityPeak();
    PSB_TRACE_BEGIN(Psb, "stream", int(_index),
                    "block=%llu priority=%u",
                    (unsigned long long)state.lastAddr.raw(),
                    priority.value());
}

int
StreamBuffer::findEntry(BlockAddr block) const
{
    for (uint64_t m = _validMask; m != 0; m &= m - 1) {
        unsigned i = countTrailingZeros(m);
        if (_entries[i].block == block)
            return int(i);
    }
    return -1;
}

void
StreamBuffer::fillEntry(int idx, BlockAddr block, PredictionSource source)
{
    psb_assert(idx >= 0 && size_t(idx) < _entries.size(),
               "stream buffer entry index out of range");
    psb_assert(!_entries[idx].valid, "filling an occupied entry");
    _entries[idx].block = block;
    _entries[idx].valid = true;
    _entries[idx].prefetched = false;
    _entries[idx].lineage = 0;
    _entries[idx].source = source;
    _validMask |= uint64_t(1) << idx;
    _pendingMask |= uint64_t(1) << idx;
}

void
StreamBuffer::markPrefetched(int idx, Cycle ready, uint64_t lineage)
{
    psb_assert(idx >= 0 && size_t(idx) < _entries.size(),
               "stream buffer entry index out of range");
    psb_assert(_entries[idx].valid, "prefetching an invalid entry");
    _entries[idx].prefetched = true;
    _entries[idx].ready = ready;
    _entries[idx].lineage = lineage;
    _pendingMask &= ~(uint64_t(1) << idx);
}

void
StreamBuffer::clearEntry(int idx)
{
    psb_assert(idx >= 0 && size_t(idx) < _entries.size(),
               "stream buffer entry index out of range");
    _entries[idx] = SbEntry{};
    _validMask &= ~(uint64_t(1) << idx);
    _pendingMask &= ~(uint64_t(1) << idx);
}

StreamBufferFile::StreamBufferFile(const StreamBufferConfig &cfg)
    : _cfg(cfg), _lineBits(floorLog2(cfg.blockBytes))
{
    psb_assert(cfg.numBuffers > 0, "need at least one stream buffer");
    psb_assert(cfg.entriesPerBuffer > 0, "need at least one entry");
    psb_assert(isPowerOf2(cfg.blockBytes), "block size must be 2^n");
    _buffers.reserve(cfg.numBuffers);
    for (unsigned i = 0; i < cfg.numBuffers; ++i)
        _buffers.emplace_back(cfg.entriesPerBuffer, cfg.priorityMax, i);
}

std::optional<StreamBufferFile::TagHit>
StreamBufferFile::findBlock(BlockAddr block) const
{
    for (unsigned b = 0; b < _buffers.size(); ++b) {
        if (!_buffers[b].allocated())
            continue;
        int e = _buffers[b].findEntry(block);
        if (e >= 0)
            return TagHit{b, e};
    }
    return std::nullopt;
}

bool
StreamBufferFile::contains(BlockAddr block) const
{
    return findBlock(block).has_value();
}

unsigned
StreamBufferFile::lruBuffer() const
{
    unsigned victim = 0;
    for (unsigned b = 0; b < _buffers.size(); ++b) {
        if (!_buffers[b].allocated())
            return b;
        if (_buffers[b].allocStamp < _buffers[victim].allocStamp)
            victim = b;
    }
    return victim;
}

unsigned
StreamBufferFile::minPriorityBuffer() const
{
    unsigned best = 0;
    for (unsigned b = 1; b < _buffers.size(); ++b) {
        uint32_t pb = _buffers[b].allocated()
            ? _buffers[b].priority.value() : 0;
        uint32_t pv = _buffers[best].allocated()
            ? _buffers[best].priority.value() : 0;
        if (pb < pv ||
            (pb == pv &&
             _buffers[b].lastHitStamp < _buffers[best].lastHitStamp)) {
            best = b;
        }
    }
    return best;
}

} // namespace psb
