/**
 * @file
 * PC-stride stream buffers — the Farkas et al. [13] design the paper
 * compares against ("PCStride"): each stream buffer is assigned a
 * fixed stride at allocation time from a PC-indexed two-delta stride
 * table, allocation is gated by the two-miss filter (two misses in a
 * row with identical strides), and arbitration is round-robin.
 *
 * The paper frames PSB as the generalisation of this design; we
 * implement it literally that way — a PredictorDirectedStreamBuffers
 * instance directed by FarkasStridePredictor, whose predictNext()
 * never consults a shared table: it just adds the stride captured in
 * the buffer at allocation ("when a stream buffer is allocated, it is
 * assigned a predicted stride to use to generate all of its prefetch
 * addresses", Figure 1).
 */

#ifndef PSB_PREFETCH_STRIDE_STREAM_BUFFERS_HH
#define PSB_PREFETCH_STRIDE_STREAM_BUFFERS_HH

#include <memory>

#include "core/psb.hh"
#include "predictors/address_predictor.hh"
#include "predictors/stride_table.hh"

namespace psb
{

/** The stride-only predictor behind Farkas-style stream buffers. */
class FarkasStridePredictor : public AddressPredictor
{
  public:
    explicit FarkasStridePredictor(const StrideTableConfig &cfg = {});

    void train(Addr pc, Addr addr) override;

    /** lastAddr + the stride fixed at allocation; no table access. */
    std::optional<BlockAddr>
    predictNext(StreamState &state) const override;

    StreamState allocateStream(Addr pc, Addr addr) const override;
    uint32_t confidence(Addr pc) const override;

    /** Farkas filter: two misses in a row with identical strides. */
    bool twoMissFilterPass(Addr pc, Addr addr) const override;

    const StrideTable &table() const { return _table; }

  private:
    StrideTableConfig _cfg;
    StrideTable _table;
};

/** Farkas et al. PC-stride stream buffers (paper's "PCStride"). */
class StrideStreamBuffers : public Prefetcher
{
  public:
    StrideStreamBuffers(const StreamBufferConfig &buffers,
                        const StrideTableConfig &table,
                        MemoryHierarchy &hierarchy);

    PrefetchLookup lookup(Addr addr, Cycle now) override;
    void trainLoad(Addr pc, Addr addr, bool l1_miss,
                   bool store_forwarded) override;
    void demandMiss(Addr pc, Addr addr, Cycle now) override;
    void tick(Cycle now) override;

    bool
    fastForwardTicks(Cycle from, uint64_t n) override
    {
        return _psb.fastForwardTicks(from, n);
    }

    const PrefetcherStats &stats() const override;
    void resetStats() override { _psb.resetStats(); }

    /** The inner PSB owns the live attribution state. */
    void endOfSim(Cycle now) override { _psb.endOfSim(now); }

    /** Delegate to the inner PSB so per-buffer stats are exported. */
    void
    registerStats(StatsRegistry &reg,
                  const std::string &prefix) const override
    {
        _psb.registerStats(reg, prefix);
    }

    const FarkasStridePredictor &predictor() const { return _predictor; }

  private:
    FarkasStridePredictor _predictor;
    PredictorDirectedStreamBuffers _psb;
};

} // namespace psb

#endif // PSB_PREFETCH_STRIDE_STREAM_BUFFERS_HH
