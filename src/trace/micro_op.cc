#include "trace/micro_op.hh"

namespace psb
{

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:  return "IntAlu";
      case OpClass::IntMult: return "IntMult";
      case OpClass::IntDiv:  return "IntDiv";
      case OpClass::FpAdd:   return "FpAdd";
      case OpClass::FpMult:  return "FpMult";
      case OpClass::FpDiv:   return "FpDiv";
      case OpClass::Load:    return "Load";
      case OpClass::Store:   return "Store";
      case OpClass::Branch:  return "Branch";
      case OpClass::Nop:     return "Nop";
    }
    return "Unknown";
}

} // namespace psb
