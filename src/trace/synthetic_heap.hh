/**
 * @file
 * A simulated heap: allocates *addresses* (no backing storage) in the
 * workload's virtual address space. Pointer-intensive workloads build
 * their data structures out of nodes whose fields live at these
 * addresses, so the load/store streams they emit have the layout
 * properties real allocators produce — sequentially allocated nodes are
 * near one another, freed-and-reallocated nodes recycle addresses, and
 * an optional scatter mode breaks spatial locality the way a long-lived
 * fragmented heap does.
 */

#ifndef PSB_TRACE_SYNTHETIC_HEAP_HH
#define PSB_TRACE_SYNTHETIC_HEAP_HH

#include <cstdint>
#include <map>
#include <vector>

#include "trace/micro_op.hh"
#include "util/random.hh"

namespace psb
{

/**
 * Deterministic address allocator with optional fragmentation.
 *
 * Three behaviours matter for prefetcher studies and are modelled here:
 *  - bump allocation (malloc-like): consecutive allocations are
 *    adjacent, giving pointer chains an incidental stride;
 *  - free lists: freed blocks are recycled LIFO per size class, the
 *    source of the paper's "abundance of short lived heap objects"
 *    behaviour (deltablue);
 *  - scatter: each allocation is displaced by a random multiple of the
 *    cache block size, destroying incidental strides so only a Markov
 *    predictor can follow the resulting chains.
 */
class SyntheticHeap
{
  public:
    /**
     * @param base First address handed out (default well above null
     *             and the synthetic code segment).
     * @param scatter_blocks If non-zero, each fresh allocation is
     *             displaced by a random amount in [0, scatter_blocks)
     *             cache blocks.
     * @param seed PRNG seed for scatter displacement.
     */
    explicit SyntheticHeap(Addr base = Addr{0x10000000},
                           unsigned scatter_blocks = 0,
                           uint64_t seed = 12345);

    /**
     * Allocate @p size bytes aligned to @p align (power of two).
     * Recycles a freed block of the same size class when available.
     */
    Addr alloc(uint64_t size, uint64_t align = 8);

    /** Return a block to the size-class free list for recycling. */
    void free(Addr addr, uint64_t size);

    /** Total bytes of fresh (non-recycled) allocations. */
    uint64_t bytesAllocated() const { return _bytesAllocated; }

    /** Current bump-pointer position. */
    Addr top() const { return _top; }

    /** Number of allocations satisfied from a free list. */
    uint64_t recycledCount() const { return _recycled; }

  private:
    Addr _top;
    unsigned _scatterBlocks;
    Xorshift64 _rng;
    uint64_t _bytesAllocated = 0;
    uint64_t _recycled = 0;
    /** size class -> LIFO free list of addresses. */
    std::map<uint64_t, std::vector<Addr>> _freeLists;
};

} // namespace psb

#endif // PSB_TRACE_SYNTHETIC_HEAP_HH
