/**
 * @file
 * The dynamic instruction record consumed by the timing model.
 *
 * The paper's simulator was execution-driven over Alpha binaries; this
 * reproduction is trace-driven: synthetic workloads (src/workloads) run
 * real algorithms over a simulated heap and emit a stream of MicroOps
 * carrying exactly the information the out-of-order core and the
 * prefetchers need — PC, operation class, register dependences, effective
 * address, and branch outcome. See DESIGN.md §4 for the substitution
 * rationale.
 */

#ifndef PSB_TRACE_MICRO_OP_HH
#define PSB_TRACE_MICRO_OP_HH

#include <cstdint>

#include "util/strong_types.hh"

namespace psb
{

/**
 * Simulated virtual address. An alias for the strong ByteAddr domain
 * type: PCs and effective addresses are byte addresses; cache-block
 * numbers live in the separate BlockAddr domain (util/strong_types.hh).
 */
using Addr = ByteAddr;

/** Operation classes, mirroring the baseline's functional-unit pool. */
enum class OpClass : uint8_t
{
    IntAlu,   ///< 1-cycle integer op (8 units)
    IntMult,  ///< 3-cycle integer multiply (2 units)
    IntDiv,   ///< 12-cycle integer divide (unpipelined)
    FpAdd,    ///< 2-cycle FP add (2 units)
    FpMult,   ///< 4-cycle FP multiply (2 units)
    FpDiv,    ///< 12-cycle FP divide (unpipelined)
    Load,     ///< memory read through L1D + stream buffers (4 ld/st units)
    Store,    ///< memory write (4 ld/st units)
    Branch,   ///< conditional or unconditional control transfer
    Nop,      ///< consumes a fetch/commit slot only
};

/** Number of distinct OpClass values. */
constexpr unsigned numOpClasses = 10;

/** Architectural register namespace used by the trace generators. */
constexpr uint8_t numArchRegs = 64;

/** Sentinel meaning "no register operand". */
constexpr uint8_t regNone = 0xff;

/**
 * One dynamic instruction. Workloads assign PCs from a per-routine
 * static code layout so that PC-indexed structures (the stride table,
 * gshare) behave as they would on a real binary.
 */
struct MicroOp
{
    Addr pc{};             ///< instruction address
    OpClass op = OpClass::Nop;
    uint8_t dst = regNone; ///< destination register
    uint8_t src1 = regNone;
    uint8_t src2 = regNone;
    Addr effAddr{};        ///< effective address (Load/Store)
    uint8_t memSize = 8;   ///< access size in bytes (Load/Store)
    bool taken = false;    ///< branch outcome (Branch)
    Addr target{};         ///< branch target (Branch)

    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return op == OpClass::Branch; }
};

/** Human-readable name of an op class (for traces and test output). */
const char *opClassName(OpClass op);

} // namespace psb

#endif // PSB_TRACE_MICRO_OP_HH
