/**
 * @file
 * Interface between workloads and the timing model: a pull-based stream
 * of MicroOps. The core fetches ops one at a time; a source that runs
 * dry ends the simulation region.
 */

#ifndef PSB_TRACE_TRACE_SOURCE_HH
#define PSB_TRACE_TRACE_SOURCE_HH

#include "trace/micro_op.hh"

namespace psb
{

/** Abstract producer of a dynamic instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next dynamic instruction.
     *
     * @param op Filled in on success.
     * @retval true an op was produced; false the stream has ended.
     */
    virtual bool next(MicroOp &op) = 0;
};

} // namespace psb

#endif // PSB_TRACE_TRACE_SOURCE_HH
