#include "trace/synthetic_heap.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace psb
{

namespace
{
/// Cache block size assumed for scatter displacement granularity.
constexpr uint64_t scatterGranule = 32;
} // namespace

SyntheticHeap::SyntheticHeap(Addr base, unsigned scatter_blocks,
                             uint64_t seed)
    : _top(base), _scatterBlocks(scatter_blocks), _rng(seed)
{
}

Addr
SyntheticHeap::alloc(uint64_t size, uint64_t align)
{
    psb_assert(size > 0, "zero-size allocation");
    psb_assert(isPowerOf2(align), "alignment must be a power of two");

    auto it = _freeLists.find(size);
    if (it != _freeLists.end() && !it->second.empty()) {
        Addr addr = it->second.back();
        it->second.pop_back();
        ++_recycled;
        return addr;
    }

    if (_scatterBlocks > 0)
        _top += _rng.below(_scatterBlocks) * scatterGranule;

    _top = (_top + (align - 1)).alignDown(align);
    Addr addr = _top;
    _top += size;
    _bytesAllocated += size;
    return addr;
}

void
SyntheticHeap::free(Addr addr, uint64_t size)
{
    _freeLists[size].push_back(addr);
}

} // namespace psb
