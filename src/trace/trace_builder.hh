/**
 * @file
 * TraceBuilder: the base class synthetic workloads derive from. It
 * implements TraceSource over an internal op queue and exposes emit
 * helpers (load/store/alu/branch) so workload code reads like the
 * algorithm it models. A workload overrides step(), which advances the
 * algorithm by one unit of work and emits the corresponding ops.
 */

#ifndef PSB_TRACE_TRACE_BUILDER_HH
#define PSB_TRACE_TRACE_BUILDER_HH

#include <deque>

#include "trace/micro_op.hh"
#include "trace/trace_source.hh"

namespace psb
{

/**
 * Queue-backed trace source with emit helpers.
 *
 * next() drains the queue, calling step() whenever the queue runs dry.
 * step() returns false when the workload has no more work, ending the
 * trace.
 */
class TraceBuilder : public TraceSource
{
  public:
    bool next(MicroOp &op) override;

    /** Number of ops emitted so far (for sizing sanity checks). */
    uint64_t emitted() const { return _emitted; }

  protected:
    /**
     * Advance the workload one step, emitting its ops.
     * @retval false when the workload is finished.
     */
    virtual bool step() = 0;

    /** Emit a single-cycle integer ALU op. */
    void emitAlu(Addr pc, uint8_t dst, uint8_t src1 = regNone,
                 uint8_t src2 = regNone, OpClass cls = OpClass::IntAlu);

    /** Emit a load of @p size bytes at @p addr into @p dst. */
    void emitLoad(Addr pc, uint8_t dst, Addr addr,
                  uint8_t base_src = regNone, uint8_t size = 8);

    /** Emit a store of @p size bytes of register @p val_src to @p addr. */
    void emitStore(Addr pc, Addr addr, uint8_t val_src,
                   uint8_t base_src = regNone, uint8_t size = 8);

    /** Emit a conditional branch. */
    void emitBranch(Addr pc, bool taken, Addr target,
                    uint8_t src = regNone);

    /** Emit @p n dependence-free filler ALU ops starting at @p pc. */
    void emitFiller(Addr pc, unsigned n);

  private:
    std::deque<MicroOp> _queue;
    uint64_t _emitted = 0;
    bool _done = false;
};

} // namespace psb

#endif // PSB_TRACE_TRACE_BUILDER_HH
