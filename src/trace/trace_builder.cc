#include "trace/trace_builder.hh"

namespace psb
{

bool
TraceBuilder::next(MicroOp &op)
{
    while (_queue.empty()) {
        if (_done)
            return false;
        if (!step()) {
            _done = true;
            if (_queue.empty())
                return false;
        }
    }
    op = _queue.front();
    _queue.pop_front();
    return true;
}

void
TraceBuilder::emitAlu(Addr pc, uint8_t dst, uint8_t src1, uint8_t src2,
                      OpClass cls)
{
    MicroOp op;
    op.pc = pc;
    op.op = cls;
    op.dst = dst;
    op.src1 = src1;
    op.src2 = src2;
    _queue.push_back(op);
    ++_emitted;
}

void
TraceBuilder::emitLoad(Addr pc, uint8_t dst, Addr addr, uint8_t base_src,
                       uint8_t size)
{
    MicroOp op;
    op.pc = pc;
    op.op = OpClass::Load;
    op.dst = dst;
    op.src1 = base_src;
    op.effAddr = addr;
    op.memSize = size;
    _queue.push_back(op);
    ++_emitted;
}

void
TraceBuilder::emitStore(Addr pc, Addr addr, uint8_t val_src,
                        uint8_t base_src, uint8_t size)
{
    MicroOp op;
    op.pc = pc;
    op.op = OpClass::Store;
    op.src1 = val_src;
    op.src2 = base_src;
    op.effAddr = addr;
    op.memSize = size;
    _queue.push_back(op);
    ++_emitted;
}

void
TraceBuilder::emitBranch(Addr pc, bool taken, Addr target, uint8_t src)
{
    MicroOp op;
    op.pc = pc;
    op.op = OpClass::Branch;
    op.src1 = src;
    op.taken = taken;
    op.target = target;
    _queue.push_back(op);
    ++_emitted;
}

void
TraceBuilder::emitFiller(Addr pc, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        emitAlu(pc + 4 * i, regNone);
}

} // namespace psb
