/**
 * @file
 * Data TLB. The predictor stores virtual effective addresses, so every
 * prefetch performs a TLB translation (and replacement on a miss) —
 * effectively TLB prefetching, paper §4.5. The paper observed this to
 * be performance-neutral because its benchmarks had few TLB misses; we
 * model it anyway so the effect can be measured.
 */

#ifndef PSB_MEMORY_TLB_HH
#define PSB_MEMORY_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/micro_op.hh"
#include "util/hot_path.hh"

namespace psb
{

class StatsRegistry;

/** Fully-associative, LRU-replaced translation buffer. */
class Tlb
{
  public:
    /**
     * @param num_entries TLB capacity.
     * @param page_bytes Page size (power of two).
     * @param miss_penalty Cycles added to an access on a TLB miss.
     */
    Tlb(unsigned num_entries, uint64_t page_bytes, CycleDelta miss_penalty);

    /**
     * Translate the page of @p vaddr, filling the entry on a miss.
     * @return Extra latency cycles (0 on a hit, missPenalty on a miss).
     */
    PSB_HOT_PATH CycleDelta translate(Addr vaddr);

    /** True iff the page of @p vaddr is currently mapped (no update). */
    bool probe(Addr vaddr) const;

    uint64_t accesses() const { return _accesses; }
    uint64_t misses() const { return _misses; }
    CycleDelta missPenalty() const { return _missPenalty; }

    void
    resetStats()
    {
        _accesses = 0;
        _misses = 0;
    }

    /** Register accesses, misses, and miss_rate under @p prefix. */
    void registerStats(StatsRegistry &reg, const std::string &prefix) const;

  private:
    struct Entry
    {
        uint64_t vpn = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    uint64_t vpnOf(Addr vaddr) const { return vaddr.raw() / _pageBytes; }

    std::vector<Entry> _entries;
    uint64_t _pageBytes;
    CycleDelta _missPenalty;
    uint64_t _useStamp = 0;
    uint64_t _accesses = 0;
    uint64_t _misses = 0;
    // MRU shortcut: consecutive accesses to one page (the common case,
    // and every cycle of an MSHR-stall retry) skip the associative
    // scan. _lastIdx is revalidated against the entry before use.
    uint64_t _lastVpn = ~uint64_t(0);
    size_t _lastIdx = 0;
};

} // namespace psb

#endif // PSB_MEMORY_TLB_HH
