/**
 * @file
 * Main-memory model: fixed access latency (120 cycles in the baseline)
 * with limited-depth pipelining of outstanding accesses. Transfer
 * bandwidth to the L2 is modelled by the L2<->memory Bus, not here.
 */

#ifndef PSB_MEMORY_MAIN_MEMORY_HH
#define PSB_MEMORY_MAIN_MEMORY_HH

#include <cstdint>
#include <string>

#include "trace/micro_op.hh"

namespace psb
{

class StatsRegistry;

/** DRAM array with a fixed access time and an issue interval. */
class MainMemory
{
  public:
    /**
     * @param access_latency Cycles from request to first data.
     * @param issue_interval Minimum cycles between accepted accesses
     *        (models bank/controller occupancy; 1 = fully pipelined).
     */
    explicit MainMemory(CycleDelta access_latency,
                        CycleDelta issue_interval = CycleDelta{4});

    /**
     * Schedule an access arriving at @p now.
     * @return The cycle the data is available at the memory pins.
     */
    Cycle access(Cycle now);

    uint64_t accesses() const { return _accesses; }
    CycleDelta latency() const { return _latency; }

    /** Zero the accounting (end-of-warm-up); timing state is kept. */
    void resetStats() { _accesses = 0; }

    /** Register the access count under @p prefix. */
    void registerStats(StatsRegistry &reg, const std::string &prefix) const;

  private:
    CycleDelta _latency;
    CycleDelta _issueInterval;
    Cycle _nextAccept{};
    uint64_t _accesses = 0;
};

} // namespace psb

#endif // PSB_MEMORY_MAIN_MEMORY_HH
