/**
 * @file
 * Occupancy-based bus model. The paper rewrote SimpleScalar's memory
 * hierarchy "to better model bus occupancy, bandwidth, and pipelining"
 * and states that "only one request (miss or prefetch) can be
 * processed by the bus from the L1 to the L2 cache at a time": the bus
 * is a serial channel. Both the L1<->L2 bus (8 B/cycle) and the
 * L2<->memory bus (4 B/cycle) are instances.
 *
 * A transaction occupies the channel for one request beat plus the
 * payload transfer time, charged contiguously when the transaction
 * starts; the device-side latency (L2 pipeline, DRAM access) is
 * modelled by the caller on top of the returned slot. Back-to-back
 * transactions queue, so demand misses experience bus contention and
 * prefetches are naturally throttled to idle bus slots via freeAt() —
 * the paper's issue rule ("only allow prefetches to occur if the
 * L1-L2 bus is free at the start of any given cycle").
 */

#ifndef PSB_MEMORY_BUS_HH
#define PSB_MEMORY_BUS_HH

#include <cstdint>
#include <string>

#include "trace/micro_op.hh"

namespace psb
{

class StatsRegistry;

/** The bus cycles granted to one transaction. */
struct BusSlot
{
    Cycle start{}; ///< first cycle (the request beat)
    Cycle end{};   ///< one past the last transfer cycle
};

/** A serial, single-transaction-at-a-time bus. */
class Bus
{
  public:
    /**
     * @param bytes_per_cycle Transfer bandwidth. Must be non-zero.
     * @param name Bus name for trace events ("l1l2", "l2mem").
     */
    explicit Bus(unsigned bytes_per_cycle, const char *name = "bus");

    /** True iff no transaction occupies the bus at cycle @p now. */
    bool freeAt(Cycle now) const { return _busyUntil <= now; }

    /**
     * How many of the @p n cycles starting at @p from the bus is free
     * for, in closed form. Valid only while no new transaction is
     * queued during the span; the simulator's fast-forward path uses
     * it to replay bus-gated idle cycles without ticking each one.
     */
    uint64_t
    freeCyclesIn(Cycle from, uint64_t n) const
    {
        if (_busyUntil <= from)
            return n;
        uint64_t busy = (_busyUntil - from).raw();
        return busy >= n ? 0 : n - busy;
    }

    /**
     * Queue a transaction carrying @p payload_bytes: one request beat
     * plus the payload transfer, starting no earlier than @p earliest
     * and after any transaction already queued.
     */
    BusSlot transact(Cycle earliest, unsigned payload_bytes);

    /** Cycles to move @p bytes across this bus (excl.\ request beat). */
    CycleDelta transferCycles(unsigned bytes) const;

    /** Cycles this bus has spent occupied. */
    uint64_t busyCycles() const { return _busyCycles; }

    /** Number of transactions carried. */
    uint64_t transfers() const { return _transfers; }

    void
    resetStats()
    {
        _busyCycles = 0;
        _transfers = 0;
    }

    /** Register busy_cycles and transfers under @p prefix. */
    void registerStats(StatsRegistry &reg, const std::string &prefix) const;

  private:
    unsigned _bytesPerCycle;
    const char *_name;
    Cycle _busyUntil{};
    uint64_t _busyCycles = 0;
    uint64_t _transfers = 0;
};

} // namespace psb

#endif // PSB_MEMORY_BUS_HH
