#include "memory/tlb.hh"

#include "util/stats.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace psb
{

Tlb::Tlb(unsigned num_entries, uint64_t page_bytes, CycleDelta miss_penalty)
    : _entries(num_entries), _pageBytes(page_bytes),
      _missPenalty(miss_penalty)
{
    psb_assert(num_entries > 0, "TLB needs at least one entry");
    psb_assert(isPowerOf2(page_bytes), "page size must be a power of two");
}

CycleDelta
Tlb::translate(Addr vaddr)
{
    ++_accesses;
    uint64_t vpn = vpnOf(vaddr);

    if (vpn == _lastVpn && _entries[_lastIdx].valid &&
        _entries[_lastIdx].vpn == vpn) {
        _entries[_lastIdx].lastUse = ++_useStamp;
        return CycleDelta{};
    }

    for (size_t i = 0; i < _entries.size(); ++i) {
        Entry &e = _entries[i];
        if (e.valid && e.vpn == vpn) {
            e.lastUse = ++_useStamp;
            _lastVpn = vpn;
            _lastIdx = i;
            return CycleDelta{};
        }
    }

    ++_misses;
    Entry *victim = &_entries[0];
    for (auto &e : _entries) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = ++_useStamp;
    _lastVpn = vpn;
    _lastIdx = size_t(victim - _entries.data());
    return _missPenalty;
}

bool
Tlb::probe(Addr vaddr) const
{
    uint64_t vpn = vpnOf(vaddr);
    for (const auto &e : _entries) {
        if (e.valid && e.vpn == vpn)
            return true;
    }
    return false;
}

void
Tlb::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    reg.addScalar(prefix + ".accesses", &_accesses);
    reg.addScalar(prefix + ".misses", &_misses);
    reg.addReal(prefix + ".miss_rate",
                [this] { return ratio(_misses, _accesses); });
}

} // namespace psb
