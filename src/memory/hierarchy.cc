#include "memory/hierarchy.hh"

#include "util/logging.hh"
#include "util/trace.hh"

namespace psb
{

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &cfg)
    : _cfg(cfg),
      _l1d(cfg.l1d, "l1d"),
      _l1i(cfg.l1i, "l1i"),
      _l2(cfg.l2, "l2"),
      _l1L2Bus(cfg.l1L2BusBytesPerCycle, "l1_l2"),
      _l2MemBus(cfg.l2MemBusBytesPerCycle, "l2_mem"),
      _memory(cfg.memLatency, cfg.memIssueInterval),
      _dataMshrs(cfg.l1dMshrs, "data"),
      _instMshrs(cfg.l1iMshrs, "inst"),
      _dtlb(cfg.tlbEntries, cfg.pageBytes, cfg.tlbMissPenalty),
      _l2AcceptInterval(cfg.l2Latency / cfg.l2PipelineDepth)
{
    psb_assert(cfg.l2PipelineDepth > 0, "L2 pipeline depth must be > 0");
    if (_l2AcceptInterval == CycleDelta{})
        _l2AcceptInterval = CycleDelta(1);
}

ProbeResult
MemoryHierarchy::probeData(Addr addr, Cycle now)
{
    ProbeResult result;
    result.tlbPenalty = _dtlb.translate(addr);

    BlockAddr block = _l1d.blockOf(addr);
    if (auto ready = _dataMshrs.lookup(block, now)) {
        result.inFlight = true;
        result.ready = *ready;
        return result;
    }
    result.resident = _l1d.probe(addr);
    return result;
}

void
MemoryHierarchy::touchData(Addr addr, bool is_write)
{
    _l1d.touch(addr, is_write);
}

Cycle
MemoryHierarchy::l2AndBelow(Addr addr, Cycle arrive, bool &l2_hit)
{
    // The L2 is "pipelined three accesses deep": a new lookup may
    // start every latency/depth cycles.
    Cycle start = maxCycle(arrive, _l2NextAccept);
    _l2NextAccept = start + _l2AcceptInterval;

    ++_stats.l2Accesses;
    if (_l2.touch(addr)) {
        ++_stats.l2Hits;
        l2_hit = true;
        PSB_TRACE(Cache, "l2.hit", -1, "block=%llu",
                  (unsigned long long)_l2.blockOf(addr).raw());
        return start + _cfg.l2Latency;
    }

    ++_stats.l2Misses;
    l2_hit = false;
    PSB_TRACE(Cache, "l2.miss", -1, "block=%llu",
              (unsigned long long)_l2.blockOf(addr).raw());

    // The L2 lookup determines the miss; the memory transaction then
    // queues on the L2-memory bus, and the data is available at the
    // L2 after the DRAM access plus the line transfer back.
    Cycle lookup_done = start + _cfg.l2Latency;
    BusSlot slot = _l2MemBus.transact(lookup_done, _cfg.l2.blockBytes);
    Cycle mem_ready = _memory.access(slot.start + CycleDelta(1));
    Cycle data_at_l2 =
        mem_ready + _l2MemBus.transferCycles(_cfg.l2.blockBytes);
    if (data_at_l2 < slot.end)
        data_at_l2 = slot.end;

    if (auto evicted = _l2.insert(addr)) {
        if (evicted->dirty) {
            ++_stats.l2Writebacks;
            _l2MemBus.transact(data_at_l2, _cfg.l2.blockBytes);
        }
    }
    return data_at_l2;
}

FillOutcome
MemoryHierarchy::missToL2(Addr addr, Cycle now, bool is_write)
{
    FillOutcome outcome;
    if (_dataMshrs.full(now)) {
        outcome.mshrStall = true;
        return outcome;
    }

    Addr block = _l1d.blockAlign(addr);

    // The transaction queues on the L1-L2 bus (one request at a time);
    // the L2/memory latency and the return transfer stack on top.
    BusSlot slot = _l1L2Bus.transact(now, _cfg.l1d.blockBytes);
    Cycle l2_ready =
        l2AndBelow(addr, slot.start + CycleDelta(1), outcome.l2Hit);
    Cycle ready =
        l2_ready + _l1L2Bus.transferCycles(_cfg.l1d.blockBytes);
    if (ready < slot.end)
        ready = slot.end;

    if (auto evicted = _l1d.insert(block, is_write)) {
        if (evicted->dirty) {
            ++_stats.l1Writebacks;
            // Writeback occupies the L1-L2 bus and dirties the L2.
            _l1L2Bus.transact(ready, _cfg.l1d.blockBytes);
            if (!_l2.touch(evicted->blockAddr, /*is_write=*/true))
                _l2.insert(evicted->blockAddr, /*dirty=*/true);
        }
    }

    _dataMshrs.allocate(_l1d.blockOf(block), ready);
    outcome.ready = ready;
    return outcome;
}

PrefetchOutcome
MemoryHierarchy::prefetch(BlockAddr block, Cycle now, bool translate)
{
    PrefetchOutcome outcome;
    Addr addr = block.toByte(_l1d.lineBits());
    // The predictor works on virtual addresses; translate at prefetch
    // time, replacing the DTLB entry if necessary (paper §4.5). A
    // stream buffer that caches its page translation skips this step
    // while the stream stays inside the page.
    if (translate)
        outcome.tlbPenalty = _dtlb.translate(addr);
    ++_stats.prefetches;

    BusSlot slot =
        _l1L2Bus.transact(now + outcome.tlbPenalty, _cfg.l1d.blockBytes);
    bool l2_hit = false;
    Cycle l2_ready = l2AndBelow(addr, slot.start + CycleDelta(1), l2_hit);
    Cycle ready =
        l2_ready + _l1L2Bus.transferCycles(_cfg.l1d.blockBytes);
    if (ready < slot.end)
        ready = slot.end;

    if (l2_hit)
        ++_stats.prefetchL2Hits;
    outcome.l2Hit = l2_hit;
    outcome.ready = ready;
    return outcome;
}

void
MemoryHierarchy::fillFromStreamBuffer(BlockAddr block, Cycle now)
{
    if (auto evicted = _l1d.insert(block.toByte(_l1d.lineBits()))) {
        if (evicted->dirty) {
            ++_stats.l1Writebacks;
            _l1L2Bus.transact(now, _cfg.l1d.blockBytes);
            if (!_l2.touch(evicted->blockAddr, /*is_write=*/true))
                _l2.insert(evicted->blockAddr, /*dirty=*/true);
        }
    }
}

void
MemoryHierarchy::registerInFlightFill(BlockAddr block, Cycle ready,
                                      Cycle now)
{
    fillFromStreamBuffer(block, now);
    if (!_dataMshrs.full(now) &&
        !_dataMshrs.lookup(block, now).has_value()) {
        _dataMshrs.allocate(block, ready);
    } else if (_dataMshrs.full(now)) {
        // Model approximation: the in-flight stream-buffer fill is
        // honoured but not merge-tracked when every MSHR is busy.
        warn_once("L1D MSHRs full; in-flight stream-buffer fill not "
                  "tracked (fills still complete; merges not counted)");
    }
}

void
MemoryHierarchy::resetStats()
{
    _stats = HierarchyStats{};
    _l1L2Bus.resetStats();
    _l2MemBus.resetStats();
    _dtlb.resetStats();
    _dataMshrs.resetStats();
    _instMshrs.resetStats();
    _memory.resetStats();
}

void
MemoryHierarchy::registerStats(StatsRegistry &reg) const
{
    reg.addScalar("l2.accesses", &_stats.l2Accesses);
    reg.addScalar("l2.hits", &_stats.l2Hits);
    reg.addScalar("l2.misses", &_stats.l2Misses);
    reg.addReal("l2.miss_rate", [this] {
        return ratio(_stats.l2Misses, _stats.l2Accesses);
    });
    reg.addScalar("l2.writebacks", &_stats.l2Writebacks);
    reg.addScalar("l2.prefetches", &_stats.prefetches);
    reg.addScalar("l2.prefetch_hits", &_stats.prefetchL2Hits);

    reg.addScalar("l1d.writebacks", &_stats.l1Writebacks);

    reg.addScalar("l1i.accesses", &_stats.instFetches);
    reg.addScalar("l1i.misses", &_stats.instMisses);
    reg.addScalar("l1i.hits", [this] {
        return _stats.instFetches - _stats.instMisses;
    });

    _l1L2Bus.registerStats(reg, "bus.l1_l2");
    _l2MemBus.registerStats(reg, "bus.l2_mem");
    _dataMshrs.registerStats(reg, "mshr.data");
    _instMshrs.registerStats(reg, "mshr.inst");
    _dtlb.registerStats(reg, "tlb.data");
    _memory.registerStats(reg, "mem");
}

Cycle
MemoryHierarchy::instFetch(Addr pc, Cycle now)
{
    ++_stats.instFetches;
    BlockAddr block = _l1i.blockOf(pc);

    if (auto ready = _instMshrs.lookup(block, now))
        return *ready;
    if (_l1i.touch(pc))
        return now + _cfg.l1Latency;

    ++_stats.instMisses;
    BusSlot slot = _l1L2Bus.transact(now, _cfg.l1i.blockBytes);
    bool l2_hit = false;
    Cycle l2_ready = l2AndBelow(pc, slot.start + CycleDelta(1), l2_hit);
    Cycle ready =
        l2_ready + _l1L2Bus.transferCycles(_cfg.l1i.blockBytes);
    if (ready < slot.end)
        ready = slot.end;

    _l1i.insert(_l1i.blockAlign(pc));
    if (!_instMshrs.full(now))
        _instMshrs.allocate(block, ready);
    else
        // Model approximation: the fetch still completes at the L2
        // latency, but later fetches of this line cannot merge.
        warn_once("L1I MSHRs full; instruction fill not tracked "
                  "(fetches still complete; merges not counted)");
    return ready;
}

} // namespace psb
