/**
 * @file
 * MemoryHierarchy: the paper's rewritten SimpleScalar memory system —
 * L1 data and instruction caches, a unified pipelined L2, main memory,
 * and the two buses whose occupancy and bandwidth the paper models
 * explicitly (L1<->L2 at 8 bytes/cycle, L2<->memory at 4 bytes/cycle).
 *
 * The out-of-order core orchestrates the L1-level hit/miss protocol
 * (because a load consults the stream buffers in parallel with the L1
 * tags); this class provides the primitive steps:
 *
 *   probeData()              L1D tags + MSHR + TLB state for one access
 *   touchData()              LRU/dirty update on an L1D hit
 *   missToL2()               full demand-fill path (bus, L2, memory)
 *   prefetch()               stream-buffer fill path (bus, L2, memory)
 *   fillFromStreamBuffer()   stream-buffer hit moves a block into L1D
 *   registerInFlightFill()   stream-buffer tag-hit with data pending:
 *                            the tag moves into an L1D MSHR (paper §4.1)
 *   instFetch()              instruction-side access
 *
 * Bus transactions are split: a one-beat address/request phase at issue
 * and a full line-transfer phase when data returns, so several misses
 * can overlap in the L2/memory while the bus carries one transfer at a
 * time.
 */

#ifndef PSB_MEMORY_HIERARCHY_HH
#define PSB_MEMORY_HIERARCHY_HH

#include <cstdint>

#include "util/stats.hh"

#include "memory/bus.hh"
#include "memory/cache.hh"
#include "memory/main_memory.hh"
#include "memory/mshr.hh"
#include "memory/tlb.hh"

namespace psb
{

/** All memory-system parameters; defaults are the paper's baseline. */
struct MemoryConfig
{
    CacheGeometry l1d{32 * 1024, 4, 32};
    CacheGeometry l1i{32 * 1024, 2, 32};
    CacheGeometry l2{1024 * 1024, 4, 64};

    CycleDelta l1Latency{1};  ///< L1 (and stream-buffer) lookup latency
    CycleDelta l2Latency{12};
    unsigned l2PipelineDepth = 3; ///< L2 "pipelined three accesses deep"
    CycleDelta memLatency{120};
    CycleDelta memIssueInterval{4};

    unsigned l1L2BusBytesPerCycle = 8;
    unsigned l2MemBusBytesPerCycle = 4;

    unsigned l1dMshrs = 8;
    unsigned l1iMshrs = 4;

    unsigned tlbEntries = 128;
    uint64_t pageBytes = 8192;
    CycleDelta tlbMissPenalty{30};
};

/** L1D-tag/MSHR/TLB state for one data access. */
struct ProbeResult
{
    bool resident = false;   ///< hit in the L1D tag array (data present)
    bool inFlight = false;   ///< block being filled; data at readyCycle
    Cycle ready{};           ///< valid when inFlight
    CycleDelta tlbPenalty{}; ///< extra cycles charged for a DTLB miss
};

/** Result of a demand fill issued to the L2/memory. */
struct FillOutcome
{
    bool mshrStall = false;  ///< no MSHR free; retry next cycle
    bool l2Hit = false;
    Cycle ready{};           ///< cycle the block arrives at the L1
};

/** Result of a stream-buffer prefetch request. */
struct PrefetchOutcome
{
    bool l2Hit = false;
    Cycle ready{};           ///< cycle the block arrives at the buffer
    CycleDelta tlbPenalty{};
};

/** Aggregated memory-system statistics. */
struct HierarchyStats
{
    uint64_t l2Accesses = 0;
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    uint64_t l1Writebacks = 0;
    uint64_t l2Writebacks = 0;
    uint64_t prefetches = 0;
    uint64_t prefetchL2Hits = 0;
    uint64_t instFetches = 0;
    uint64_t instMisses = 0;
};

/** See file comment. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryConfig &cfg);

    /** L1D tag/MSHR lookup plus DTLB translation for one access. */
    ProbeResult probeData(Addr addr, Cycle now);

    /** Record an L1D hit (LRU update; dirty bit for writes). */
    void touchData(Addr addr, bool is_write);

    /**
     * Demand-miss fill: request beat on the L1-L2 bus, pipelined L2
     * lookup, memory on an L2 miss, line transfer back, L1D insertion
     * and MSHR tracking. Dirty victims generate writeback traffic.
     */
    FillOutcome missToL2(Addr addr, Cycle now, bool is_write);

    /**
     * Stream-buffer prefetch of the block at @p block_addr (virtual).
     * Performs the DTLB translation (TLB prefetching, paper §4.5) and
     * moves the block from L2 — or memory on an L2 miss — toward the
     * buffer over the L1-L2 bus. Does not touch the L1D.
     *
     * The caller is responsible for the paper's issue rule: prefetches
     * only start when the L1-L2 bus is free at the start of the cycle
     * (see l1ToL2BusFree()).
     */
    PrefetchOutcome prefetch(BlockAddr block, Cycle now,
                             bool translate = true);

    /** Paper's prefetch gating condition. */
    bool l1ToL2BusFree(Cycle now) const { return _l1L2Bus.freeAt(now); }

    /**
     * Read-only redundancy probe for prefetch attribution: is @p block
     * already covered by the demand path — resident in the L1D (demand
     * misses insert their line at miss time) or tracked by a data MSHR
     * whose fill is still in flight? No LRU update, no stat bumps, so
     * probing never perturbs the modelled state.
     */
    bool
    demandHasBlock(BlockAddr block, Cycle now) const
    {
        return _l1d.probe(block.toByte(_l1d.lineBits())) ||
               _dataMshrs.tracks(block, now);
    }

    /** Stream-buffer hit with data ready: block moves into the L1D. */
    void fillFromStreamBuffer(BlockAddr block, Cycle now);

    /**
     * Stream-buffer tag hit with data still in flight: the tag moves
     * into an L1D MSHR and the data cache handles the block when it
     * arrives (paper §4.1). If every MSHR is busy the fill is still
     * honoured, just without merge tracking.
     */
    void registerInFlightFill(BlockAddr block, Cycle ready, Cycle now);

    /** Instruction fetch of the line containing @p pc. */
    Cycle instFetch(Addr pc, Cycle now);

    /** Align to the L1 line size. */
    Addr blockAlign(Addr addr) const { return _l1d.blockAlign(addr); }

    /** Block number of @p addr at the L1 line size. */
    BlockAddr blockOf(Addr addr) const { return _l1d.blockOf(addr); }

    const HierarchyStats &stats() const { return _stats; }

    /** Zero all accounting (end-of-warm-up). Cache state is kept. */
    void resetStats();

    /**
     * Register every memory-system stat: the L2 and L1I counters kept
     * here, plus the buses, MSHR files, DTLB, and main memory under
     * their own component paths. (The L1D hit/miss accounting lives
     * with the core — see the SetAssocCache file comment — so the
     * "l1d." stats are registered by OoOCore::registerStats.)
     */
    void registerStats(StatsRegistry &reg) const;
    const Bus &l1L2Bus() const { return _l1L2Bus; }
    const Bus &l2MemBus() const { return _l2MemBus; }
    const Tlb &dtlb() const { return _dtlb; }
    const MshrFile &dataMshrs() const { return _dataMshrs; }
    const SetAssocCache &l1d() const { return _l1d; }
    const SetAssocCache &l2() const { return _l2; }
    const MemoryConfig &config() const { return _cfg; }

  private:
    /**
     * Shared L2-and-below path: deliver the L2 line containing
     * @p addr, filling the L2 from memory if needed.
     * @param arrive Cycle the request reaches the L2.
     * @param l2_hit Out: whether the L2 had the line.
     * @return Cycle the data is available at the L2 for return transfer.
     */
    Cycle l2AndBelow(Addr addr, Cycle arrive, bool &l2_hit);

    MemoryConfig _cfg;
    SetAssocCache _l1d;
    SetAssocCache _l1i;
    SetAssocCache _l2;
    Bus _l1L2Bus;
    Bus _l2MemBus;
    MainMemory _memory;
    MshrFile _dataMshrs;
    MshrFile _instMshrs;
    Tlb _dtlb;
    Cycle _l2NextAccept{};
    CycleDelta _l2AcceptInterval;
    HierarchyStats _stats;
};

} // namespace psb

#endif // PSB_MEMORY_HIERARCHY_HH
