#include "memory/bus.hh"

#include "util/logging.hh"
#include "util/stats.hh"
#include "util/trace.hh"

namespace psb
{

Bus::Bus(unsigned bytes_per_cycle, const char *name)
    : _bytesPerCycle(bytes_per_cycle), _name(name)
{
    psb_assert(bytes_per_cycle > 0, "bus needs non-zero bandwidth");
}

CycleDelta
Bus::transferCycles(unsigned bytes) const
{
    uint64_t cycles = (bytes + _bytesPerCycle - 1) / _bytesPerCycle;
    return CycleDelta(cycles ? cycles : 1);
}

BusSlot
Bus::transact(Cycle earliest, unsigned payload_bytes)
{
    Cycle start = maxCycle(earliest, _busyUntil);
    CycleDelta duration = CycleDelta(1) + transferCycles(payload_bytes);
    _busyUntil = start + duration;
    _busyCycles += duration.raw();
    ++_transfers;
    PSB_TRACE(Bus, "transact", -1,
              "bus=%s bytes=%u start=%llu end=%llu", _name, payload_bytes,
              (unsigned long long)start.raw(),
              (unsigned long long)_busyUntil.raw());
    return BusSlot{start, _busyUntil};
}

void
Bus::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    reg.addScalar(prefix + ".busy_cycles", &_busyCycles);
    reg.addScalar(prefix + ".transfers", &_transfers);
}

} // namespace psb
