/**
 * @file
 * Set-associative cache tag model with true-LRU replacement and dirty
 * bits. Only tags and metadata are modelled — no data storage — which
 * is all a timing-and-prefetching study needs.
 *
 * The baseline configuration (paper §5.1): 32K 4-way 32-byte-line L1
 * data cache, 32K 2-way 32-byte-line L1 instruction cache, and a 1 MB
 * unified L2 with 64-byte lines.
 */

#ifndef PSB_MEMORY_CACHE_HH
#define PSB_MEMORY_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/micro_op.hh"
#include "util/hot_path.hh"

namespace psb
{

/** Shape of a cache: total capacity, associativity, and line size. */
struct CacheGeometry
{
    uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned blockBytes = 32;

    uint64_t numSets() const { return sizeBytes / (assoc * blockBytes); }
};

/** Result of a victim selection: the evicted block, if any. */
struct Eviction
{
    Addr blockAddr{};  ///< line-aligned byte address of the victim
    bool dirty = false;
};

/**
 * Tag-only set-associative cache with LRU replacement.
 *
 * All addresses passed in are full byte addresses; the cache masks them
 * to block granularity internally. Accounting (accesses/hits/misses) is
 * kept by the caller (MemoryHierarchy) because hit/miss semantics in
 * this reproduction depend on in-flight state the cache cannot see
 * (the paper counts accesses to in-flight blocks as misses).
 */
class SetAssocCache
{
  public:
    /** @param name Cache name for trace events ("l1d", "l2"...). */
    explicit SetAssocCache(const CacheGeometry &geom,
                           const char *name = "cache");

    /** True iff the block containing @p addr is resident. No LRU update. */
    PSB_HOT_PATH bool probe(Addr addr) const;

    /**
     * Reference the block containing @p addr: updates LRU and, for
     * writes, the dirty bit.
     * @retval true on hit.
     */
    PSB_HOT_PATH bool touch(Addr addr, bool is_write = false);

    /**
     * Install the block containing @p addr, evicting the set's LRU
     * block if the set is full.
     * @return The eviction, if a valid block was displaced.
     */
    PSB_HOT_PATH std::optional<Eviction> insert(Addr addr,
                                                bool dirty = false);

    /** Remove the block containing @p addr if present. */
    void invalidate(Addr addr);

    /** Drop all blocks (used between simulation regions). */
    void flush();

    /** Block address (byte address masked to line granularity). */
    Addr blockAlign(Addr addr) const
    {
        return addr.alignDown(_geom.blockBytes);
    }

    /** The block number of @p addr at this cache's line size. */
    BlockAddr blockOf(Addr addr) const
    {
        return addr.toBlock(_blockShift);
    }

    /** log2 of the line size. */
    unsigned lineBits() const { return _blockShift; }

    const CacheGeometry &geometry() const { return _geom; }

    /** Number of currently valid blocks (test/debug aid). */
    uint64_t validBlocks() const;

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr addr) const;
    uint64_t tagOf(Addr addr) const;

    CacheGeometry _geom;
    const char *_name;
    uint64_t _blockMask;
    unsigned _blockShift;
    uint64_t _numSets;
    uint64_t _useStamp = 0;
    std::vector<Line> _lines; ///< numSets x assoc, row-major
};

} // namespace psb

#endif // PSB_MEMORY_CACHE_HH
