#include "memory/main_memory.hh"

#include "util/logging.hh"
#include "util/stats.hh"

namespace psb
{

MainMemory::MainMemory(CycleDelta access_latency, CycleDelta issue_interval)
    : _latency(access_latency), _issueInterval(issue_interval)
{
    psb_assert(issue_interval.raw() > 0, "issue interval must be non-zero");
}

Cycle
MainMemory::access(Cycle now)
{
    Cycle start = maxCycle(now, _nextAccept);
    _nextAccept = start + _issueInterval;
    ++_accesses;
    return start + _latency;
}

void
MainMemory::registerStats(StatsRegistry &reg,
                          const std::string &prefix) const
{
    reg.addScalar(prefix + ".accesses", &_accesses);
}

} // namespace psb
