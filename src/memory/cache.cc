#include "memory/cache.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace psb
{

SetAssocCache::SetAssocCache(const CacheGeometry &geom, const char *name)
    : _geom(geom),
      _name(name),
      _blockMask(geom.blockBytes - 1),
      _blockShift(floorLog2(geom.blockBytes)),
      _numSets(geom.numSets()),
      _lines(_numSets * geom.assoc)
{
    psb_assert(isPowerOf2(geom.blockBytes), "block size must be 2^n");
    psb_assert(isPowerOf2(_numSets), "set count must be 2^n");
    psb_assert(geom.assoc >= 1, "associativity must be >= 1");
    psb_assert(geom.sizeBytes % (geom.assoc * geom.blockBytes) == 0,
               "capacity not divisible into sets");
}

unsigned
SetAssocCache::setIndex(Addr addr) const
{
    return unsigned(addr.toBlock(_blockShift).raw() & (_numSets - 1));
}

uint64_t
SetAssocCache::tagOf(Addr addr) const
{
    return addr.toBlock(_blockShift).raw() >> floorLog2(_numSets);
}

bool
SetAssocCache::probe(Addr addr) const
{
    const Line *set = &_lines[size_t(setIndex(addr)) * _geom.assoc];
    uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

bool
SetAssocCache::touch(Addr addr, bool is_write)
{
    Line *set = &_lines[size_t(setIndex(addr)) * _geom.assoc];
    uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++_useStamp;
            if (is_write)
                set[w].dirty = true;
            return true;
        }
    }
    return false;
}

std::optional<Eviction>
SetAssocCache::insert(Addr addr, bool dirty)
{
    unsigned set_idx = setIndex(addr);
    Line *set = &_lines[size_t(set_idx) * _geom.assoc];
    uint64_t tag = tagOf(addr);

    // Re-insertion of a resident block just refreshes its state.
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++_useStamp;
            set[w].dirty = set[w].dirty || dirty;
            return std::nullopt;
        }
    }

    unsigned victim = 0;
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (!set[w].valid) {
            victim = w;
            break;
        }
        if (set[w].lastUse < set[victim].lastUse)
            victim = w;
    }

    std::optional<Eviction> evicted;
    if (set[victim].valid) {
        BlockAddr victim_block{
            (set[victim].tag << floorLog2(_numSets)) | set_idx};
        evicted = Eviction{victim_block.toByte(_blockShift),
                           set[victim].dirty};
        PSB_TRACE(Cache, "evict", -1,
                  "cache=%s victim=%llu dirty=%d for=%llu", _name,
                  (unsigned long long)victim_block.raw(),
                  int(set[victim].dirty),
                  (unsigned long long)addr.toBlock(_blockShift).raw());
    }

    set[victim].tag = tag;
    set[victim].valid = true;
    set[victim].dirty = dirty;
    set[victim].lastUse = ++_useStamp;
    return evicted;
}

void
SetAssocCache::invalidate(Addr addr)
{
    Line *set = &_lines[size_t(setIndex(addr)) * _geom.assoc];
    uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].valid = false;
            set[w].dirty = false;
            return;
        }
    }
}

void
SetAssocCache::flush()
{
    for (auto &line : _lines) {
        line.valid = false;
        line.dirty = false;
    }
}

uint64_t
SetAssocCache::validBlocks() const
{
    uint64_t n = 0;
    for (const auto &line : _lines)
        n += line.valid ? 1 : 0;
    return n;
}

} // namespace psb
