#include "memory/mshr.hh"

#include "util/logging.hh"
#include "util/stats.hh"
#include "util/trace.hh"

namespace psb
{

MshrFile::MshrFile(unsigned num_entries, const char *name)
    : _capacity(num_entries), _name(name), _entries(num_entries)
{
    psb_assert(num_entries > 0, "MSHR file needs at least one entry");
}

void
MshrFile::retire(Cycle now)
{
    if (_liveCount == 0 || now < _minReady)
        return; // nothing can have completed yet
    Cycle next = Cycle::max();
    for (auto &e : _entries) {
        if (!e.valid)
            continue;
        if (e.ready <= now) {
            e.valid = false;
            --_liveCount;
        } else if (e.ready < next) {
            next = e.ready;
        }
    }
    _minReady = next;
}

std::optional<Cycle>
MshrFile::lookup(BlockAddr block, Cycle now)
{
    retire(now);
    if (_liveCount == 0)
        return std::nullopt;
    if (_lastMissValid && block == _lastMissBlock)
        return std::nullopt;
    for (auto &e : _entries) {
        if (e.valid && e.block == block) {
            ++_merges;
            PSB_TRACE(Mshr, "merge", -1, "file=%s block=%llu ready=%llu",
                      _name, (unsigned long long)block.raw(),
                      (unsigned long long)e.ready.raw());
            return e.ready;
        }
    }
    _lastMissBlock = block;
    _lastMissValid = true;
    return std::nullopt;
}

bool
MshrFile::full(Cycle now)
{
    retire(now);
    return _liveCount == _capacity;
}

void
MshrFile::allocate(BlockAddr block, Cycle ready)
{
    for (auto &e : _entries) {
        if (e.valid && e.block == block)
            panic("MSHR double-allocation of block %#llx",
                  (unsigned long long)block.raw());
    }
    for (auto &e : _entries) {
        if (!e.valid) {
            e.valid = true;
            e.block = block;
            e.ready = ready;
            ++_liveCount;
            if (ready < _minReady)
                _minReady = ready;
            _lastMissValid = false;
            ++_allocations;
            PSB_TRACE(Mshr, "allocate", -1,
                      "file=%s block=%llu ready=%llu", _name,
                      (unsigned long long)block.raw(),
                      (unsigned long long)ready.raw());
            return;
        }
    }
    panic("MSHR allocate with no free entry; call full() first");
}

unsigned
MshrFile::occupancy(Cycle now)
{
    retire(now);
    return _liveCount;
}

void
MshrFile::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    reg.addScalar(prefix + ".allocations", &_allocations);
    reg.addScalar(prefix + ".merges", &_merges);
    reg.addScalar(prefix + ".capacity", [this] { return uint64_t(_capacity); });
}

} // namespace psb
