/**
 * @file
 * Miss Status Holding Registers. Track cache blocks that have been
 * requested from the next level but have not yet arrived. Subsequent
 * accesses to an in-flight block merge into the existing entry instead
 * of generating new bus traffic — and, per the paper's accounting,
 * still count as cache misses ("accesses to in-flight data count as
 * cache misses", §6).
 */

#ifndef PSB_MEMORY_MSHR_HH
#define PSB_MEMORY_MSHR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/micro_op.hh"
#include "util/hot_path.hh"

namespace psb
{

class StatsRegistry;

/** A small fully-associative file of in-flight block fills. */
class MshrFile
{
  public:
    /**
     * @param num_entries Capacity; requests beyond it must stall.
     * @param name File name for trace events ("l1d", "l1i").
     */
    explicit MshrFile(unsigned num_entries, const char *name = "mshr");

    /**
     * If the block is in flight at @p now, return the cycle its data
     * arrives. Entries whose fill has completed are retired lazily.
     */
    PSB_HOT_PATH std::optional<Cycle> lookup(BlockAddr block, Cycle now);

    /**
     * Read-only probe: is @p block in flight at @p now? Unlike
     * lookup(), this neither retires entries nor counts a merge, so
     * observers (the prefetch-attribution redundancy check) can probe
     * without perturbing stats or state. Entries retire lazily, so a
     * completed fill may still sit in the file — it is only *tracked*
     * while its data has not arrived (ready > now).
     */
    bool
    tracks(BlockAddr block, Cycle now) const
    {
        for (const Entry &e : _entries) {
            if (e.valid && e.block == block && e.ready > now)
                return true;
        }
        return false;
    }

    /** True iff no entry is free at @p now (after retiring done fills). */
    bool full(Cycle now);

    /**
     * Track a new in-flight fill. The caller must have checked full().
     * Allocating a block that is already tracked extends nothing and is
     * a modelling bug.
     */
    PSB_HOT_PATH void allocate(BlockAddr block, Cycle ready);

    /** Number of live entries at @p now. */
    unsigned occupancy(Cycle now);

    /** Total allocations performed (stat). */
    uint64_t allocations() const { return _allocations; }

    /** Total merged (secondary) accesses observed via lookup() (stat). */
    uint64_t merges() const { return _merges; }

    unsigned capacity() const { return _capacity; }

    /** Zero the accounting (end-of-warm-up); entries are kept. */
    void
    resetStats()
    {
        _allocations = 0;
        _merges = 0;
    }

    /** Register allocations and merges under @p prefix. */
    void registerStats(StatsRegistry &reg, const std::string &prefix) const;

  private:
    struct Entry
    {
        BlockAddr block{};
        Cycle ready{};
        bool valid = false;
    };

    void retire(Cycle now);

    unsigned _capacity;
    const char *_name;
    std::vector<Entry> _entries;
    // Live-entry count plus the earliest outstanding ready time, so
    // retire() is a no-op (and full() is O(1)) until a fill actually
    // completes — full() is polled every cycle of an MSHR stall.
    unsigned _liveCount = 0;
    Cycle _minReady = Cycle::max();
    // Negative-lookup cache: an MSHR-stalled access polls the same
    // absent block every cycle. Entries only leave the file between
    // allocations, so a miss result stays a miss until allocate().
    BlockAddr _lastMissBlock{};
    bool _lastMissValid = false;
    uint64_t _allocations = 0;
    uint64_t _merges = 0;
};

} // namespace psb

#endif // PSB_MEMORY_MSHR_HH
