#include "predictors/context_predictor.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace psb
{

ContextPredictor::ContextPredictor(const ContextConfig &cfg)
    : _cfg(cfg), _lineBits(floorLog2(cfg.stride.blockBytes)),
      _stride(cfg.stride), _entries(cfg.entries)
{
    psb_assert(isPowerOf2(cfg.entries), "context entries must be 2^n");
    psb_assert(cfg.historyLength >= 1 &&
                   cfg.historyLength <= maxHistory,
               "history length must be 1..4");
}

BlockAddr
ContextPredictor::blockOf(Addr addr) const
{
    return addr.toBlock(_lineBits);
}

uint64_t
ContextPredictor::hashHistory(
    const std::array<BlockAddr, maxHistory> &blocks,
    unsigned filled) const
{
    // Fold the last k block numbers; older entries are rotated so
    // order matters (pattern ABA differs from AAB).
    uint64_t hash = 0;
    unsigned k = _cfg.historyLength < filled ? _cfg.historyLength
                                             : filled;
    for (unsigned i = 0; i < k; ++i) {
        uint64_t block_num = blocks[i].raw();
        unsigned rot = 7 * i;
        hash ^= rot ? ((block_num << rot) | (block_num >> (64 - rot)))
                    : block_num;
    }
    // splitmix64 finaliser: propagate high bits into the low index
    // bits (block numbers are often multiples of large powers of two).
    hash ^= hash >> 33;
    hash *= 0xff51afd7ed558ccdull;
    hash ^= hash >> 29;
    hash *= 0xc4ceb9fe1a85ec53ull;
    hash ^= hash >> 32;
    return hash;
}

unsigned
ContextPredictor::indexOf(uint64_t hash) const
{
    return unsigned(hash & (_cfg.entries - 1));
}

uint32_t
ContextPredictor::tagOf(uint64_t hash) const
{
    return uint32_t((hash >> 32) & mask(_cfg.tagBits));
}

unsigned
ContextPredictor::historySlot(const StreamState &state) const
{
    return unsigned(state.historyToken % numStreamSlots);
}

void
ContextPredictor::train(Addr pc, Addr addr)
{
    BlockAddr block = blockOf(addr);
    StrideTrainResult result = _stride.train(pc, addr);
    if (result.firstTouch) {
        History &h =
            _trainHistory[(pc.raw() >> 2) % numStreamSlots];
        h.blocks = {block, BlockAddr{}, BlockAddr{}, BlockAddr{}};
        h.filled = 1;
        return;
    }

    History &h = _trainHistory[(pc.raw() >> 2) % numStreamSlots];

    // Correctness of the combination (for confidence and the filter).
    bool markov_correct = false;
    if (h.filled > 0) {
        uint64_t hash = hashHistory(h.blocks, h.filled);
        const Entry &e = _entries[indexOf(hash)];
        markov_correct = e.valid && e.tag == tagOf(hash) &&
                         e.next == block;
    }
    _stride.recordOutcome(pc, result.stridePredicted || markov_correct);

    // Stride filtering, as in the SFM predictor.
    const StrideEntry *entry = _stride.lookup(pc);
    bool stride_captured =
        entry && (entry->strideRepeated || result.stridePredicted);
    if (!stride_captured && h.filled > 0) {
        uint64_t hash = hashHistory(h.blocks, h.filled);
        Entry &e = _entries[indexOf(hash)];
        e.tag = tagOf(hash);
        e.next = block;
        e.valid = true;
    }

    // Advance the rolling training history.
    for (unsigned i = maxHistory - 1; i > 0; --i)
        h.blocks[i] = h.blocks[i - 1];
    h.blocks[0] = block;
    if (h.filled < maxHistory)
        ++h.filled;
}

StreamState
ContextPredictor::allocateStream(Addr pc, Addr addr) const
{
    StreamState state;
    state.loadPc = pc;
    state.lastAddr = blockOf(addr);
    state.stride = _stride.predictedStride(pc);
    state.confidence = _stride.confidence(pc);
    state.historyToken = _nextSlot++;

    // The stream's speculative history starts from the training-side
    // history of this load (the paper copies "any additional
    // prediction information" from predictor to buffer).
    History &h = _streamHistory[historySlot(state)];
    h = _trainHistory[(pc.raw() >> 2) % numStreamSlots];
    if (h.filled == 0 || h.blocks[0] != state.lastAddr) {
        for (unsigned i = maxHistory - 1; i > 0; --i)
            h.blocks[i] = h.blocks[i - 1];
        h.blocks[0] = state.lastAddr;
        if (h.filled < maxHistory)
            ++h.filled;
    }
    return state;
}

std::optional<BlockAddr>
ContextPredictor::predictNext(StreamState &state) const
{
    History &h = _streamHistory[historySlot(state)];

    std::optional<BlockAddr> next;
    if (h.filled > 0) {
        uint64_t hash = hashHistory(h.blocks, h.filled);
        const Entry &e = _entries[indexOf(hash)];
        if (e.valid && e.tag == tagOf(hash))
            next = e.next;
    }
    state.lastSource =
        next ? PredictionSource::Context : PredictionSource::Stride;
    if (!next)
        next = state.lastAddr + state.stride;

    // Advance the stream's speculative history, not the tables.
    for (unsigned i = maxHistory - 1; i > 0; --i)
        h.blocks[i] = h.blocks[i - 1];
    h.blocks[0] = *next;
    if (h.filled < maxHistory)
        ++h.filled;
    state.lastAddr = *next;
    return next;
}

uint32_t
ContextPredictor::confidence(Addr pc) const
{
    return _stride.confidence(pc);
}

bool
ContextPredictor::twoMissFilterPass(Addr pc, Addr) const
{
    return _stride.twoCorrectInARow(pc);
}

uint64_t
ContextPredictor::population() const
{
    uint64_t n = 0;
    for (const auto &e : _entries)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace psb
