/**
 * @file
 * Stride-Filtered Markov (SFM) predictor, the paper's §4.2: a PC-indexed
 * two-delta stride table in front of a differential Markov table.
 *
 * Update (write-back stage, L1D load misses only, store-forwarded loads
 * excluded): the load's PC indexes the stride table; if the observed
 * stride matches neither the last stride nor the two-delta stride, the
 * last-address -> current-address transition is recorded in the Markov
 * table. The stride table thus *filters* stride-predictable transitions
 * out of the Markov table, leaving its 2K entries for pointer behaviour.
 *
 * Prediction (per stream, stateless w.r.t. the tables): look the
 * stream's last address up in the Markov table; on a hit the Markov
 * target is the next prefetch address, otherwise last address + the
 * stride assigned at allocation (Figure 3).
 *
 * The accuracy-confidence counter (saturating at 7) lives with the
 * stride entry and counts whether the *combination* would have
 * predicted each observed miss (§4.3).
 *
 * Modes StrideOnly / MarkovOnly expose the two halves individually for
 * the ablation benches.
 */

#ifndef PSB_PREDICTORS_SFM_PREDICTOR_HH
#define PSB_PREDICTORS_SFM_PREDICTOR_HH

#include "predictors/address_predictor.hh"
#include "predictors/diff_markov_table.hh"
#include "predictors/stride_table.hh"
#include "util/hot_path.hh"

namespace psb
{

/** Which halves of the hybrid are active. */
enum class SfmMode
{
    Sfm,        ///< stride-filtered Markov (the paper's predictor)
    StrideOnly, ///< two-delta stride predictions only
    MarkovOnly, ///< unfiltered Markov (every transition recorded)
};

/** SFM predictor configuration; defaults are the paper's. */
struct SfmConfig
{
    StrideTableConfig stride;
    DiffMarkovConfig markov;
    SfmMode mode = SfmMode::Sfm;
};

/** See file comment. */
class SfmPredictor : public AddressPredictor
{
  public:
    explicit SfmPredictor(const SfmConfig &cfg = {});

    PSB_HOT_PATH void train(Addr pc, Addr addr) override;
    PSB_HOT_PATH std::optional<BlockAddr>
    predictNext(StreamState &state) const override;
    StreamState allocateStream(Addr pc, Addr addr) const override;
    uint32_t confidence(Addr pc) const override;
    bool twoMissFilterPass(Addr pc, Addr addr) const override;

    /** Fraction-of-misses-predicted stats (coverage measurement). */
    uint64_t trainEvents() const { return _trainEvents; }
    uint64_t correctPredictions() const { return _correct; }

    /** Export train_events, correct_predictions, coverage, and the
     *  Markov table's update/overflow/population counters. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const override;

    void
    resetStats() override
    {
        _trainEvents = 0;
        _correct = 0;
        _markov.resetStats();
    }

    const StrideTable &strideTable() const { return _stride; }
    const DiffMarkovTable &markovTable() const { return _markov; }
    const SfmConfig &config() const { return _cfg; }

  private:
    SfmConfig _cfg;
    unsigned _lineBits;
    StrideTable _stride;
    DiffMarkovTable _markov;
    uint64_t _trainEvents = 0;
    uint64_t _correct = 0;
};

} // namespace psb

#endif // PSB_PREDICTORS_SFM_PREDICTOR_HH
