#include "predictors/markov_table.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace psb
{

MarkovTable::MarkovTable(const MarkovTableConfig &cfg)
    : _cfg(cfg), _indexBits(floorLog2(cfg.entries)), _entries(cfg.entries)
{
    psb_assert(isPowerOf2(cfg.entries), "markov entries must be 2^n");
    psb_assert(isPowerOf2(cfg.blockBytes), "block size must be 2^n");
    psb_assert(cfg.tagBits >= 1 && cfg.tagBits <= 32,
               "partial tag must be 1..32 bits");
}

unsigned
MarkovTable::indexOf(BlockAddr block) const
{
    return unsigned(block.raw() & mask(_indexBits));
}

uint32_t
MarkovTable::tagOf(BlockAddr block) const
{
    return uint32_t((block.raw() >> _indexBits) & mask(_cfg.tagBits));
}

void
MarkovTable::update(BlockAddr from, BlockAddr to)
{
    Entry &entry = _entries[indexOf(from)];
    entry.tag = tagOf(from);
    entry.next = to;
    entry.valid = true;
}

std::optional<BlockAddr>
MarkovTable::lookup(BlockAddr from) const
{
    const Entry &entry = _entries[indexOf(from)];
    if (!entry.valid || entry.tag != tagOf(from))
        return std::nullopt;
    return entry.next;
}

uint64_t
MarkovTable::population() const
{
    uint64_t n = 0;
    for (const auto &e : _entries)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace psb
