#include "predictors/markov_table.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace psb
{

MarkovTable::MarkovTable(const MarkovTableConfig &cfg)
    : _cfg(cfg), _indexBits(floorLog2(cfg.entries)), _entries(cfg.entries)
{
    psb_assert(isPowerOf2(cfg.entries), "markov entries must be 2^n");
    psb_assert(isPowerOf2(cfg.blockBytes), "block size must be 2^n");
    psb_assert(cfg.tagBits >= 1 && cfg.tagBits <= 32,
               "partial tag must be 1..32 bits");
}

uint64_t
MarkovTable::blockNum(Addr addr) const
{
    return addr / _cfg.blockBytes;
}

unsigned
MarkovTable::indexOf(uint64_t block_num) const
{
    return block_num & mask(_indexBits);
}

uint32_t
MarkovTable::tagOf(uint64_t block_num) const
{
    return (block_num >> _indexBits) & mask(_cfg.tagBits);
}

void
MarkovTable::update(Addr from, Addr to)
{
    uint64_t from_block = blockNum(from);
    Entry &entry = _entries[indexOf(from_block)];
    entry.tag = tagOf(from_block);
    entry.next = (to / _cfg.blockBytes) * _cfg.blockBytes;
    entry.valid = true;
}

std::optional<Addr>
MarkovTable::lookup(Addr from) const
{
    uint64_t from_block = blockNum(from);
    const Entry &entry = _entries[indexOf(from_block)];
    if (!entry.valid || entry.tag != tagOf(from_block))
        return std::nullopt;
    return entry.next;
}

uint64_t
MarkovTable::population() const
{
    uint64_t n = 0;
    for (const auto &e : _entries)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace psb
