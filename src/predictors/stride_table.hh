/**
 * @file
 * PC-indexed two-delta stride table.
 *
 * This one structure serves three roles from the paper:
 *  1. the PC-stride predictor of Farkas et al. [13] that drives the
 *     baseline stride stream buffers (stride copied into the buffer at
 *     allocation, 2-miss allocation filter);
 *  2. the stride front half of the Stride-Filtered Markov predictor
 *     (§4.2) — addresses it predicts correctly are kept out of the
 *     Markov table;
 *  3. the home of the per-load accuracy confidence counter that guides
 *     PSB allocation (§4.3).
 *
 * Only loads that miss in the L1 data cache are entered, which is why
 * a small 256-entry 4-way table "captures all the critical loads that
 * miss" (§6). Addresses are tracked at cache-block granularity.
 */

#ifndef PSB_PREDICTORS_STRIDE_TABLE_HH
#define PSB_PREDICTORS_STRIDE_TABLE_HH

#include <cstdint>
#include <vector>

#include "trace/micro_op.hh"
#include "util/hot_path.hh"
#include "util/sat_counter.hh"

namespace psb
{

/** Configuration for the stride table. Defaults match the paper. */
struct StrideTableConfig
{
    unsigned entries = 256;
    unsigned assoc = 4;
    unsigned blockBytes = 32;       ///< prediction granularity
    uint32_t confidenceMax = 7;     ///< accuracy counter saturation
};

/**
 * A two-delta stride entry: the predicted stride is replaced only when
 * a new stride has been seen twice in a row [12, 28].
 */
struct StrideEntry
{
    Addr pc{};
    BlockAddr lastAddr{};    ///< block of the last miss address
    BlockDelta lastStride{}; ///< most recent stride (blocks)
    BlockDelta stride2d{};   ///< two-delta (predicted) stride (blocks)
    SatCounter accuracy;     ///< SFM accuracy confidence (§4.3)
    /** Last two train() outcomes for the generalised 2-miss filter. */
    bool lastCorrect = false;
    bool prevCorrect = false;
    /** Farkas filter state: last two strides were identical. */
    bool strideRepeated = false;
    bool valid = false;
    uint64_t lastUse = 0;
};

/** Outcome of one training step, consumed by SfmPredictor. */
struct StrideTrainResult
{
    bool firstTouch = false;    ///< entry was just allocated
    BlockAddr prevAddr{};       ///< entry's lastAddr before this update
    BlockDelta observedStride{};
    bool stridePredicted = false; ///< two-delta stride was correct
};

/** Set-associative, LRU-replaced two-delta stride table. */
class StrideTable
{
  public:
    explicit StrideTable(const StrideTableConfig &cfg = {});

    /**
     * Record a miss of load @p pc at @p addr and advance the two-delta
     * state. Does not touch the accuracy counter — the owner decides
     * correctness (for SFM it also depends on the Markov table) and
     * calls recordOutcome().
     */
    StrideTrainResult train(Addr pc, Addr addr);

    /**
     * Update the accuracy confidence and 2-miss history of @p pc after
     * the owner determined whether its predictor combination would
     * have predicted this miss.
     */
    void recordOutcome(Addr pc, bool correct);

    /** Read-only lookup. @return nullptr when @p pc is not tracked. */
    PSB_HOT_PATH const StrideEntry *lookup(Addr pc) const;

    /** Predicted (two-delta) stride for @p pc, 0 when untracked. */
    BlockDelta predictedStride(Addr pc) const;

    /** Accuracy-confidence value for @p pc, 0 when untracked. */
    uint32_t confidence(Addr pc) const;

    /**
     * Farkas-style two-miss filter: the load missed at least twice in
     * a row with identical strides.
     */
    bool strideFilterPass(Addr pc) const;

    /**
     * PSB's generalised filter: the last two misses were both
     * predicted correctly (per recordOutcome()).
     */
    bool twoCorrectInARow(Addr pc) const;

    const StrideTableConfig &config() const { return _cfg; }

    /** log2 of the prediction granularity (cfg.blockBytes). */
    unsigned lineBits() const { return _lineBits; }

  private:
    StrideEntry *find(Addr pc);
    const StrideEntry *find(Addr pc) const;
    unsigned setOf(Addr pc) const;

    StrideTableConfig _cfg;
    unsigned _numSets;
    unsigned _lineBits;
    std::vector<StrideEntry> _entries;
    uint64_t _useStamp = 0;
};

} // namespace psb

#endif // PSB_PREDICTORS_STRIDE_TABLE_HH
