/**
 * @file
 * First-order Markov transition table storing absolute next addresses
 * (Joseph & Grunwald [18], Charney & Puzak [6] style). Indexed by the
 * previous miss address, returns the address that followed it last
 * time. Works at cache-block granularity.
 *
 * This is the classic formulation; the paper's space-efficient variant
 * (16-bit block deltas, 4 KB of data storage) is DiffMarkovTable. Both
 * are kept so the ablation benches can quantify the compression cost.
 */

#ifndef PSB_PREDICTORS_MARKOV_TABLE_HH
#define PSB_PREDICTORS_MARKOV_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/micro_op.hh"
#include "util/hot_path.hh"

namespace psb
{

/** Markov table shape. Defaults follow the paper's 2K-entry table. */
struct MarkovTableConfig
{
    unsigned entries = 2048;   ///< power of two
    unsigned blockBytes = 32;  ///< prediction granularity
    unsigned tagBits = 16;     ///< partial-tag width
};

/** Direct-mapped, partial-tagged, absolute-address Markov table. */
class MarkovTable
{
  public:
    explicit MarkovTable(const MarkovTableConfig &cfg = {});

    /** Record the transition @p from -> @p to. */
    void update(BlockAddr from, BlockAddr to);

    /**
     * Predict the block that followed @p from last time.
     * @return nullopt when the entry is absent or the tag mismatches.
     */
    PSB_HOT_PATH std::optional<BlockAddr> lookup(BlockAddr from) const;

    /** Number of live entries (test/debug aid). */
    uint64_t population() const;

    const MarkovTableConfig &config() const { return _cfg; }

  private:
    struct Entry
    {
        uint32_t tag = 0;
        BlockAddr next{};
        bool valid = false;
    };

    unsigned indexOf(BlockAddr block) const;
    uint32_t tagOf(BlockAddr block) const;

    MarkovTableConfig _cfg;
    unsigned _indexBits;
    std::vector<Entry> _entries;
};

} // namespace psb

#endif // PSB_PREDICTORS_MARKOV_TABLE_HH
