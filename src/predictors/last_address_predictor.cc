#include "predictors/last_address_predictor.hh"

#include "util/bitfield.hh"

namespace psb
{

namespace
{

StrideTableConfig
withBlock(StrideTableConfig cfg, unsigned block_bytes)
{
    cfg.blockBytes = block_bytes;
    return cfg;
}

} // namespace

NextBlockPredictor::NextBlockPredictor(unsigned block_bytes,
                                       const StrideTableConfig &table)
    : _lineBits(floorLog2(block_bytes)),
      _table(withBlock(table, block_bytes))
{
}

void
NextBlockPredictor::train(Addr pc, Addr addr)
{
    BlockAddr block = addr.toBlock(_lineBits);
    StrideTrainResult result = _table.train(pc, addr);
    if (result.firstTouch)
        return;
    _table.recordOutcome(pc, result.prevAddr + BlockDelta(1) == block);
}

std::optional<BlockAddr>
NextBlockPredictor::predictNext(StreamState &state) const
{
    state.lastAddr += BlockDelta(1);
    state.lastSource = PredictionSource::Sequential;
    return state.lastAddr;
}

StreamState
NextBlockPredictor::allocateStream(Addr pc, Addr addr) const
{
    StreamState state;
    state.loadPc = pc;
    state.lastAddr = addr.toBlock(_lineBits);
    state.stride = BlockDelta(1);
    state.confidence = _table.confidence(pc);
    return state;
}

uint32_t
NextBlockPredictor::confidence(Addr pc) const
{
    return _table.confidence(pc);
}

bool
NextBlockPredictor::twoMissFilterPass(Addr pc, Addr) const
{
    return _table.twoCorrectInARow(pc);
}

LastAddressPredictor::LastAddressPredictor(unsigned block_bytes,
                                           const StrideTableConfig &table)
    : _lineBits(floorLog2(block_bytes)),
      _table(withBlock(table, block_bytes))
{
}

void
LastAddressPredictor::train(Addr pc, Addr addr)
{
    BlockAddr block = addr.toBlock(_lineBits);
    StrideTrainResult result = _table.train(pc, addr);
    if (result.firstTouch)
        return;
    _table.recordOutcome(pc, result.prevAddr == block);
}

std::optional<BlockAddr>
LastAddressPredictor::predictNext(StreamState &state) const
{
    state.lastSource = PredictionSource::LastAddress;
    return state.lastAddr;
}

StreamState
LastAddressPredictor::allocateStream(Addr pc, Addr addr) const
{
    StreamState state;
    state.loadPc = pc;
    state.lastAddr = addr.toBlock(_lineBits);
    state.stride = BlockDelta{};
    state.confidence = _table.confidence(pc);
    return state;
}

uint32_t
LastAddressPredictor::confidence(Addr pc) const
{
    return _table.confidence(pc);
}

bool
LastAddressPredictor::twoMissFilterPass(Addr pc, Addr) const
{
    return _table.twoCorrectInARow(pc);
}

} // namespace psb
