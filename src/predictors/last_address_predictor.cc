#include "predictors/last_address_predictor.hh"

namespace psb
{

namespace
{

StrideTableConfig
withBlock(StrideTableConfig cfg, unsigned block_bytes)
{
    cfg.blockBytes = block_bytes;
    return cfg;
}

} // namespace

NextBlockPredictor::NextBlockPredictor(unsigned block_bytes,
                                       const StrideTableConfig &table)
    : _blockBytes(block_bytes), _table(withBlock(table, block_bytes))
{
}

void
NextBlockPredictor::train(Addr pc, Addr addr)
{
    Addr block = addr & ~Addr(_blockBytes - 1);
    StrideTrainResult result = _table.train(pc, addr);
    if (result.firstTouch)
        return;
    _table.recordOutcome(pc, result.prevAddr + _blockBytes == block);
}

std::optional<Addr>
NextBlockPredictor::predictNext(StreamState &state) const
{
    state.lastAddr += _blockBytes;
    return state.lastAddr;
}

StreamState
NextBlockPredictor::allocateStream(Addr pc, Addr addr) const
{
    StreamState state;
    state.loadPc = pc;
    state.lastAddr = addr & ~Addr(_blockBytes - 1);
    state.stride = _blockBytes;
    state.confidence = _table.confidence(pc);
    return state;
}

uint32_t
NextBlockPredictor::confidence(Addr pc) const
{
    return _table.confidence(pc);
}

bool
NextBlockPredictor::twoMissFilterPass(Addr pc, Addr) const
{
    return _table.twoCorrectInARow(pc);
}

LastAddressPredictor::LastAddressPredictor(unsigned block_bytes,
                                           const StrideTableConfig &table)
    : _blockBytes(block_bytes), _table(withBlock(table, block_bytes))
{
}

void
LastAddressPredictor::train(Addr pc, Addr addr)
{
    Addr block = addr & ~Addr(_blockBytes - 1);
    StrideTrainResult result = _table.train(pc, addr);
    if (result.firstTouch)
        return;
    _table.recordOutcome(pc, result.prevAddr == block);
}

std::optional<Addr>
LastAddressPredictor::predictNext(StreamState &state) const
{
    return state.lastAddr;
}

StreamState
LastAddressPredictor::allocateStream(Addr pc, Addr addr) const
{
    StreamState state;
    state.loadPc = pc;
    state.lastAddr = addr & ~Addr(_blockBytes - 1);
    state.stride = 0;
    state.confidence = _table.confidence(pc);
    return state;
}

uint32_t
LastAddressPredictor::confidence(Addr pc) const
{
    return _table.confidence(pc);
}

bool
LastAddressPredictor::twoMissFilterPass(Addr pc, Addr) const
{
    return _table.twoCorrectInARow(pc);
}

} // namespace psb
