#include "predictors/sfm_predictor.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/trace.hh"

namespace psb
{

SfmPredictor::SfmPredictor(const SfmConfig &cfg)
    : _cfg(cfg), _lineBits(floorLog2(cfg.stride.blockBytes)),
      _stride(cfg.stride), _markov(cfg.markov)
{
    psb_assert(cfg.stride.blockBytes == cfg.markov.blockBytes,
               "stride and markov tables must share a granularity");
}

void
SfmPredictor::train(Addr pc, Addr addr)
{
    BlockAddr block = addr.toBlock(_lineBits);
    const bool use_stride = _cfg.mode != SfmMode::MarkovOnly;
    const bool use_markov = _cfg.mode != SfmMode::StrideOnly;

    StrideTrainResult result = _stride.train(pc, addr);
    if (result.firstTouch)
        return;

    ++_trainEvents;

    // Would the active predictor combination have predicted this miss?
    bool stride_correct = use_stride && result.stridePredicted;
    bool markov_correct = false;
    if (use_markov) {
        if (auto pred = _markov.lookup(result.prevAddr))
            markov_correct = (*pred == block);
    }
    bool correct = stride_correct || markov_correct;
    if (correct)
        ++_correct;
    _stride.recordOutcome(pc, correct);
    PSB_TRACE(Sfm, "train", -1,
              "pc=%llu block=%llu stride_ok=%d markov_ok=%d",
              (unsigned long long)pc.raw(),
              (unsigned long long)block.raw(), int(stride_correct),
              int(markov_correct));

    if (!use_markov)
        return;

    // Stride filtering (§4.2): record the transition only when the
    // observed stride matches neither the last stride nor the
    // two-delta stride. MarkovOnly mode records every transition.
    const StrideEntry *entry = _stride.lookup(pc);
    bool stride_captured =
        use_stride && entry &&
        (entry->strideRepeated || result.stridePredicted);
    if (!stride_captured)
        _markov.update(result.prevAddr, block);
}

std::optional<BlockAddr>
SfmPredictor::predictNext(StreamState &state) const
{
    const bool use_stride = _cfg.mode != SfmMode::MarkovOnly;
    const bool use_markov = _cfg.mode != SfmMode::StrideOnly;

    std::optional<BlockAddr> next;
    bool from_markov = false;
    if (use_markov) {
        next = _markov.lookup(state.lastAddr);
        from_markov = next.has_value();
    }
    if (!next && use_stride)
        next = state.lastAddr + state.stride;
    if (!next)
        return std::nullopt;

    PSB_TRACE(Sfm, "predict", -1, "block=%llu source=%s",
              (unsigned long long)next->raw(),
              from_markov ? "markov" : "stride");
    state.lastAddr = *next;
    state.lastSource = from_markov ? PredictionSource::Markov
                                   : PredictionSource::Stride;
    return next;
}

StreamState
SfmPredictor::allocateStream(Addr pc, Addr addr) const
{
    StreamState state;
    state.loadPc = pc;
    state.lastAddr = addr.toBlock(_lineBits);
    state.stride = _stride.predictedStride(pc);
    state.confidence = _stride.confidence(pc);
    return state;
}

uint32_t
SfmPredictor::confidence(Addr pc) const
{
    return _stride.confidence(pc);
}

bool
SfmPredictor::twoMissFilterPass(Addr pc, Addr) const
{
    return _stride.twoCorrectInARow(pc);
}

void
SfmPredictor::registerStats(StatsRegistry &reg,
                            const std::string &prefix) const
{
    reg.addScalar(prefix + ".train_events", &_trainEvents);
    reg.addScalar(prefix + ".correct_predictions", &_correct);
    reg.addReal(prefix + ".coverage",
                [this] { return ratio(_correct, _trainEvents); });
    reg.addScalar(prefix + ".markov.updates",
                  [this] { return _markov.updates(); });
    reg.addScalar(prefix + ".markov.overflows",
                  [this] { return _markov.overflows(); });
    reg.addScalar(prefix + ".markov.population",
                  [this] { return _markov.population(); });
}

} // namespace psb
