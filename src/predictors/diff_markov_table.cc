#include "predictors/diff_markov_table.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace psb
{

DiffMarkovTable::DiffMarkovTable(const DiffMarkovConfig &cfg)
    : _cfg(cfg), _indexBits(floorLog2(cfg.entries)), _entries(cfg.entries)
{
    psb_assert(isPowerOf2(cfg.entries), "markov entries must be 2^n");
    psb_assert(isPowerOf2(cfg.blockBytes), "block size must be 2^n");
    psb_assert(cfg.deltaBits >= 2 && cfg.deltaBits <= 63,
               "delta width must be 2..63 bits");
}

unsigned
DiffMarkovTable::indexOf(uint64_t block_num) const
{
    return block_num & mask(_indexBits);
}

uint32_t
DiffMarkovTable::tagOf(uint64_t block_num) const
{
    return (block_num >> _indexBits) & mask(_cfg.tagBits);
}

bool
DiffMarkovTable::update(Addr from, Addr to)
{
    int64_t delta =
        int64_t(blockNum(to)) - int64_t(blockNum(from));
    if (!fitsSigned(delta, _cfg.deltaBits)) {
        ++_overflows;
        return false;
    }
    uint64_t from_block = blockNum(from);
    Entry &entry = _entries[indexOf(from_block)];
    entry.tag = tagOf(from_block);
    entry.deltaBlocks = delta;
    entry.valid = true;
    ++_updates;
    return true;
}

std::optional<Addr>
DiffMarkovTable::lookup(Addr from) const
{
    uint64_t from_block = blockNum(from);
    const Entry &entry = _entries[indexOf(from_block)];
    if (!entry.valid || entry.tag != tagOf(from_block))
        return std::nullopt;
    int64_t next_block = int64_t(from_block) + entry.deltaBlocks;
    if (next_block < 0)
        return std::nullopt;
    return Addr(next_block) * _cfg.blockBytes;
}

uint64_t
DiffMarkovTable::population() const
{
    uint64_t n = 0;
    for (const auto &e : _entries)
        n += e.valid ? 1 : 0;
    return n;
}

uint64_t
DiffMarkovTable::dataBytes() const
{
    return (uint64_t(_cfg.entries) * _cfg.deltaBits + 7) / 8;
}

} // namespace psb
