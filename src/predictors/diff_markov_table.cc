#include "predictors/diff_markov_table.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace psb
{

DiffMarkovTable::DiffMarkovTable(const DiffMarkovConfig &cfg)
    : _cfg(cfg), _indexBits(floorLog2(cfg.entries)), _entries(cfg.entries)
{
    psb_assert(isPowerOf2(cfg.entries), "markov entries must be 2^n");
    psb_assert(isPowerOf2(cfg.blockBytes), "block size must be 2^n");
    psb_assert(cfg.deltaBits >= 2 && cfg.deltaBits <= 63,
               "delta width must be 2..63 bits");
}

unsigned
DiffMarkovTable::indexOf(BlockAddr block) const
{
    return unsigned(block.raw() & mask(_indexBits));
}

uint32_t
DiffMarkovTable::tagOf(BlockAddr block) const
{
    return uint32_t((block.raw() >> _indexBits) & mask(_cfg.tagBits));
}

bool
DiffMarkovTable::update(BlockAddr from, BlockAddr to)
{
    BlockDelta delta = to - from;
    if (!delta.fitsIn(_cfg.deltaBits)) {
        ++_overflows;
        PSB_TRACE(Markov, "overflow", -1, "from=%llu delta=%lld",
                  (unsigned long long)from.raw(),
                  (long long)delta.raw());
        return false;
    }
    Entry &entry = _entries[indexOf(from)];
    bool replaced = entry.valid && entry.tag != tagOf(from);
    entry.tag = tagOf(from);
    entry.delta = delta;
    entry.valid = true;
    ++_updates;
    PSB_TRACE(Markov, "update", -1, "from=%llu delta=%lld replaced=%d",
              (unsigned long long)from.raw(), (long long)delta.raw(),
              int(replaced));
    return true;
}

std::optional<BlockAddr>
DiffMarkovTable::lookup(BlockAddr from) const
{
    const Entry &entry = _entries[indexOf(from)];
    if (!entry.valid || entry.tag != tagOf(from))
        return std::nullopt;
    // A stored negative delta can point below block 0; checkedAdd
    // keeps the displacement inside the block domain.
    return checkedAdd(from, entry.delta);
}

uint64_t
DiffMarkovTable::population() const
{
    uint64_t n = 0;
    for (const auto &e : _entries)
        n += e.valid ? 1 : 0;
    return n;
}

uint64_t
DiffMarkovTable::dataBytes() const
{
    return (uint64_t(_cfg.entries) * _cfg.deltaBits + 7) / 8;
}

} // namespace psb
