/**
 * @file
 * The address-predictor interface that directs a Predictor-Directed
 * Stream Buffer.
 *
 * The paper's key structural idea (§4): PSB splits prediction into
 *  - a *stateless* shared predictor (the tables), updated only in the
 *    write-back stage when a load misses the L1D, and
 *  - *per-stream history* stored inside each stream buffer, advanced
 *    speculatively each time the buffer makes a prediction.
 *
 * StreamState is that per-stream history. predictNext() reads the
 * tables and advances only the StreamState — never the tables — so
 * prediction n is generated from prediction n-1 while the architectural
 * tables stay consistent with the true miss stream.
 *
 * Any address predictor implementing this interface can direct the
 * stream buffers (paper §7); SfmPredictor is the one the paper
 * evaluates, and examples/custom_predictor.cc shows a user-defined one.
 */

#ifndef PSB_PREDICTORS_ADDRESS_PREDICTOR_HH
#define PSB_PREDICTORS_ADDRESS_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <string>

#include "trace/micro_op.hh"

namespace psb
{

class StatsRegistry;

/**
 * Which prediction mechanism produced an address. Every predictNext()
 * implementation stamps StreamState::lastSource with one of these so
 * the prefetch attribution layer (prefetch/attribution.hh) can break
 * accuracy and timeliness down per predictor source.
 */
enum class PredictionSource : uint8_t
{
    None,        ///< no prediction made yet / untagged
    Stride,      ///< stride table (SFM stride half, Farkas PC-stride)
    Markov,      ///< differential Markov table (SFM or demand Markov)
    Context,     ///< order-k context predictor
    Sequential,  ///< next-block sequential predictor
    LastAddress, ///< last-address (stride 0) predictor
    MinDelta,    ///< Palacharla-Kessler minimum-delta detector
    NextLine,    ///< tagged next-line prefetcher (no stream state)
    NumSources,
};

/** Canonical lower-case name of @p source (stats / trace vocabulary). */
const char *predictionSourceName(PredictionSource source);

/**
 * Per-stream prediction history, stored with each stream buffer
 * (paper Figure 2: Load PC, History, Stride, Confidence, Last Address).
 */
struct StreamState
{
    Addr loadPc{};        ///< PC of the load that allocated the stream
    BlockAddr lastAddr{}; ///< last (speculative) block predicted
    BlockDelta stride{};  ///< stride assigned at allocation (blocks)
    uint32_t confidence = 0; ///< accuracy confidence copied at allocation
    /**
     * Figure 2's "History" field: opaque, predictor-defined state for
     * predictors that need more than the last address (the order-k
     * ContextPredictor keys its shadow history with it; the
     * minimum-delta predictor keeps its byte-precision stride here).
     * The SFM predictor leaves it unused.
     */
    uint64_t historyToken = 0;
    /** Mechanism behind the most recent predictNext() on this stream. */
    PredictionSource lastSource = PredictionSource::None;
};

/** Shared, stateless-at-prediction-time address predictor. */
class AddressPredictor
{
  public:
    virtual ~AddressPredictor() = default;

    /**
     * Train the tables on a write-back-stage L1D load miss. The caller
     * filters out loads that received their value from a store forward
     * (paper §4.2: those are not stored in the prediction table).
     *
     * @param pc The load's PC.
     * @param addr The load's effective (miss) address.
     */
    virtual void train(Addr pc, Addr addr) = 0;

    /**
     * Generate the next prefetch address for a stream and advance the
     * stream's speculative history. The tables are not modified.
     *
     * @return The predicted block, or nullopt when the predictor has
     *         no prediction for this state.
     */
    virtual std::optional<BlockAddr>
    predictNext(StreamState &state) const = 0;

    /**
     * Build the initial per-stream state for a stream buffer allocated
     * by a miss of load @p pc at @p addr (copies prediction info from
     * predictor to buffer; the predictor itself is not modified).
     */
    virtual StreamState allocateStream(Addr pc, Addr addr) const = 0;

    /**
     * Current accuracy-confidence counter for @p pc (saturates at 7 in
     * the paper's configuration; 0 when the load is not tracked).
     */
    virtual uint32_t confidence(Addr pc) const = 0;

    /**
     * PSB's generalised two-miss filter test (paper §4.3): true when
     * load @p pc missed twice in a row and both misses would have been
     * predicted correctly by the stride or Markov predictor. The miss
     * address is provided for address-indexed schemes (e.g.\ the
     * Palacharla-Kessler minimum-delta detector).
     */
    virtual bool twoMissFilterPass(Addr pc, Addr addr) const = 0;

    /**
     * Register predictor-internal stats under @p prefix. Default: the
     * predictor keeps no exported counters.
     */
    virtual void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        (void)reg;
        (void)prefix;
    }

    /** Zero exported counters (end-of-warm-up); tables are kept. */
    virtual void resetStats() {}
};

} // namespace psb

#endif // PSB_PREDICTORS_ADDRESS_PREDICTOR_HH
