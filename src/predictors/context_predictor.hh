/**
 * @file
 * Order-k context (Markov) predictor — paper §2.2.
 *
 * An order-k predictor indexes its transition table with a hash of the
 * last k (block) addresses instead of just the last one. The paper
 * simulated higher-order Markov predictors and the correlation
 * predictor of Bekerman et al. and "saw little to no improvement in
 * prediction accuracy and coverage over first order" for its
 * benchmarks; this class exists so bench/ablation_order can reproduce
 * that claim inside the PSB framework.
 *
 * Implemented as a full AddressPredictor: a two-delta stride filter in
 * front (same as SFM) with an order-k hashed-history Markov table
 * behind it. With historyLength == 1 it degenerates to (a hashed-index
 * variant of) the SFM predictor.
 */

#ifndef PSB_PREDICTORS_CONTEXT_PREDICTOR_HH
#define PSB_PREDICTORS_CONTEXT_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "predictors/address_predictor.hh"
#include "predictors/stride_table.hh"

namespace psb
{

/** Order-k context predictor configuration. */
struct ContextConfig
{
    StrideTableConfig stride;   ///< front-end filter (paper defaults)
    unsigned entries = 2048;    ///< transition-table entries (2^n)
    unsigned historyLength = 2; ///< k: addresses hashed into the index
    unsigned tagBits = 16;
};

/**
 * Per-stream history for the context predictor is the last k predicted
 * block addresses; they are packed into StreamState::lastAddr plus a
 * shadow history table indexed by a small stream id. To keep
 * StreamState predictor-agnostic (the paper stores "History" bits in
 * the buffer), the predictor maintains the shadow history internally,
 * keyed by the low bits of StreamState::loadPc combined with the
 * allocation address — see historySlot().
 */
class ContextPredictor : public AddressPredictor
{
  public:
    explicit ContextPredictor(const ContextConfig &cfg = {});

    void train(Addr pc, Addr addr) override;
    std::optional<BlockAddr>
    predictNext(StreamState &state) const override;
    StreamState allocateStream(Addr pc, Addr addr) const override;
    uint32_t confidence(Addr pc) const override;
    bool twoMissFilterPass(Addr pc, Addr addr) const override;

    uint64_t population() const;
    const ContextConfig &config() const { return _cfg; }

  private:
    static constexpr unsigned maxHistory = 4;
    static constexpr unsigned numStreamSlots = 64;

    struct Entry
    {
        uint32_t tag = 0;
        BlockAddr next{};
        bool valid = false;
    };

    /** Rolling per-context history (training side). */
    struct History
    {
        std::array<BlockAddr, maxHistory> blocks{};
        unsigned filled = 0;
    };

    uint64_t hashHistory(const std::array<BlockAddr, maxHistory> &blocks,
                         unsigned filled) const;
    unsigned indexOf(uint64_t hash) const;
    uint32_t tagOf(uint64_t hash) const;
    BlockAddr blockOf(Addr addr) const;
    unsigned historySlot(const StreamState &state) const;

    ContextConfig _cfg;
    unsigned _lineBits;
    StrideTable _stride;
    std::vector<Entry> _entries;
    /** Training-side history per load PC (folded into 64 slots). */
    mutable std::array<History, numStreamSlots> _trainHistory{};
    /** Speculative per-stream history (prediction side). */
    mutable std::array<History, numStreamSlots> _streamHistory{};
    /** Stream-slot allocator for StreamState::historyToken. */
    mutable uint64_t _nextSlot = 0;
};

} // namespace psb

#endif // PSB_PREDICTORS_CONTEXT_PREDICTOR_HH
