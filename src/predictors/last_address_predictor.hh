/**
 * @file
 * Two minimal AddressPredictor implementations.
 *
 * NextBlockPredictor always predicts the next sequential cache block —
 * directing the PSB with it recovers Jouppi-style sequential stream
 * buffers inside the PSB framework, which the ablation benches use to
 * isolate the value of the SFM predictor from the value of the
 * confidence/priority machinery.
 *
 * LastAddressPredictor predicts that the stream stays on its last
 * block. It is intentionally trivial: examples/custom_predictor.cc
 * uses these two classes to show how little code a new predictor needs.
 *
 * Both reuse StrideTable purely as per-PC bookkeeping (last address,
 * accuracy confidence, two-miss history) so they compose with PSB's
 * allocation filters exactly like the SFM predictor does.
 */

#ifndef PSB_PREDICTORS_LAST_ADDRESS_PREDICTOR_HH
#define PSB_PREDICTORS_LAST_ADDRESS_PREDICTOR_HH

#include "predictors/address_predictor.hh"
#include "predictors/stride_table.hh"

namespace psb
{

/** Predicts last address + one cache block, always. */
class NextBlockPredictor : public AddressPredictor
{
  public:
    explicit NextBlockPredictor(unsigned block_bytes = 32,
                                const StrideTableConfig &table = {});

    void train(Addr pc, Addr addr) override;
    std::optional<BlockAddr>
    predictNext(StreamState &state) const override;
    StreamState allocateStream(Addr pc, Addr addr) const override;
    uint32_t confidence(Addr pc) const override;
    bool twoMissFilterPass(Addr pc, Addr addr) const override;

  private:
    unsigned _lineBits;
    StrideTable _table;
};

/** Predicts the stream never leaves its last block (degenerate). */
class LastAddressPredictor : public AddressPredictor
{
  public:
    explicit LastAddressPredictor(unsigned block_bytes = 32,
                                  const StrideTableConfig &table = {});

    void train(Addr pc, Addr addr) override;
    std::optional<BlockAddr>
    predictNext(StreamState &state) const override;
    StreamState allocateStream(Addr pc, Addr addr) const override;
    uint32_t confidence(Addr pc) const override;
    bool twoMissFilterPass(Addr pc, Addr addr) const override;

  private:
    unsigned _lineBits;
    StrideTable _table;
};

} // namespace psb

#endif // PSB_PREDICTORS_LAST_ADDRESS_PREDICTOR_HH
