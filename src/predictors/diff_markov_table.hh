/**
 * @file
 * Differential Markov table — the paper's space reduction (§4.2):
 * instead of absolute next addresses, each entry stores only the
 * *difference* between consecutive cache-miss addresses, counted in
 * cache blocks. With 16-bit entries and 2K entries the data storage is
 * 4 KB, and Figure 4 shows 16 bits capture almost all transitions.
 *
 * A transition whose block delta does not fit the configured bit width
 * cannot be represented and is simply not recorded — exactly the
 * coverage loss Figure 4 quantifies; bench/fig4_markov_bits sweeps the
 * width to regenerate that figure.
 */

#ifndef PSB_PREDICTORS_DIFF_MARKOV_TABLE_HH
#define PSB_PREDICTORS_DIFF_MARKOV_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/micro_op.hh"
#include "util/hot_path.hh"

namespace psb
{

/** Differential Markov table shape. Defaults match the paper. */
struct DiffMarkovConfig
{
    unsigned entries = 2048;  ///< power of two
    unsigned blockBytes = 32; ///< granularity of the stored deltas
    unsigned deltaBits = 16;  ///< signed width of the stored difference
    unsigned tagBits = 16;    ///< partial-tag width
};

/** Direct-mapped, partial-tagged, delta-compressed Markov table. */
class DiffMarkovTable
{
  public:
    explicit DiffMarkovTable(const DiffMarkovConfig &cfg = {});

    /**
     * Record the transition @p from -> @p to.
     * @retval true when the delta fit in deltaBits and was recorded.
     */
    bool update(BlockAddr from, BlockAddr to);

    /**
     * Predict the block that followed @p from: the indexing block
     * plus the stored signed delta (paper: "a stream buffer adds its
     * last missing address to the signed offset contained in the
     * table").
     */
    PSB_HOT_PATH std::optional<BlockAddr> lookup(BlockAddr from) const;

    /** Transitions rejected because the delta overflowed deltaBits. */
    uint64_t overflows() const { return _overflows; }

    /** Transitions recorded. */
    uint64_t updates() const { return _updates; }

    /** Zero the update/overflow counters (end-of-warm-up); the table
     *  contents are state, not statistics, and are kept. The counters
     *  are exported by the owning SfmPredictor::registerStats() via
     *  the updates()/overflows()/population() accessors (the cross-TU
     *  registration psb_analyze verifies). */
    void
    resetStats() // psb-analyze: allow(R2)
    {
        _overflows = 0;
        _updates = 0;
    }

    uint64_t population() const;

    /** Bytes of delta data storage (entries * deltaBits / 8). */
    uint64_t dataBytes() const;

    const DiffMarkovConfig &config() const { return _cfg; }

  private:
    struct Entry
    {
        uint32_t tag = 0;
        BlockDelta delta{};
        bool valid = false;
    };

    unsigned indexOf(BlockAddr block) const;
    uint32_t tagOf(BlockAddr block) const;

    DiffMarkovConfig _cfg;
    unsigned _indexBits;
    std::vector<Entry> _entries;
    uint64_t _overflows = 0;
    uint64_t _updates = 0;
};

} // namespace psb

#endif // PSB_PREDICTORS_DIFF_MARKOV_TABLE_HH
