#include "predictors/stride_table.hh"

#include <cstddef>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace psb
{

StrideTable::StrideTable(const StrideTableConfig &cfg)
    : _cfg(cfg),
      _numSets(cfg.entries / cfg.assoc),
      _lineBits(floorLog2(cfg.blockBytes)),
      _entries(cfg.entries)
{
    psb_assert(cfg.assoc >= 1 && cfg.entries % cfg.assoc == 0,
               "stride table entries must divide into sets");
    psb_assert(isPowerOf2(_numSets), "stride table sets must be 2^n");
    psb_assert(isPowerOf2(cfg.blockBytes), "block size must be 2^n");
    for (auto &e : _entries)
        e.accuracy = SatCounter(cfg.confidenceMax);
}

unsigned
StrideTable::setOf(Addr pc) const
{
    // Instructions are word-aligned; drop the low bits, then xor-fold
    // the whole word so no PC bit is ignored — routines laid out at
    // power-of-two spacings anywhere in the address space must not
    // collapse onto a handful of sets.
    uint64_t h = pc.raw() >> 2;
    h ^= h >> 32;
    h ^= h >> 16;
    h ^= h >> 8;
    return unsigned(h & (_numSets - 1));
}

StrideEntry *
StrideTable::find(Addr pc)
{
    StrideEntry *set = &_entries[std::size_t(setOf(pc)) * _cfg.assoc];
    for (unsigned w = 0; w < _cfg.assoc; ++w) {
        if (set[w].valid && set[w].pc == pc)
            return &set[w];
    }
    return nullptr;
}

const StrideEntry *
StrideTable::find(Addr pc) const
{
    return const_cast<StrideTable *>(this)->find(pc);
}

StrideTrainResult
StrideTable::train(Addr pc, Addr addr)
{
    StrideTrainResult result;
    BlockAddr block = addr.toBlock(_lineBits);

    StrideEntry *entry = find(pc);
    if (!entry) {
        // Allocate the set's LRU way.
        StrideEntry *set = &_entries[std::size_t(setOf(pc)) * _cfg.assoc];
        entry = &set[0];
        for (unsigned w = 0; w < _cfg.assoc; ++w) {
            if (!set[w].valid) {
                entry = &set[w];
                break;
            }
            if (set[w].lastUse < entry->lastUse)
                entry = &set[w];
        }
        PSB_TRACE(Sfm, "stride.alloc", -1, "pc=%llu evicted_pc=%llu",
                  (unsigned long long)pc.raw(),
                  entry->valid ? (unsigned long long)entry->pc.raw() : 0ULL);
        *entry = StrideEntry{};
        entry->accuracy = SatCounter(_cfg.confidenceMax);
        entry->pc = pc;
        entry->lastAddr = block;
        entry->valid = true;
        entry->lastUse = ++_useStamp;
        result.firstTouch = true;
        result.prevAddr = block;
        return result;
    }

    entry->lastUse = ++_useStamp;
    result.prevAddr = entry->lastAddr;
    BlockDelta stride = block - entry->lastAddr;
    result.observedStride = stride;
    result.stridePredicted = (entry->lastAddr + entry->stride2d == block);

    // Two-delta update: only adopt a new stride once seen twice.
    entry->strideRepeated = (stride == entry->lastStride);
    if (entry->strideRepeated)
        entry->stride2d = stride;
    entry->lastStride = stride;
    entry->lastAddr = block;
    return result;
}

void
StrideTable::recordOutcome(Addr pc, bool correct)
{
    StrideEntry *entry = find(pc);
    if (!entry)
        return;
    if (correct)
        entry->accuracy.increment();
    else
        entry->accuracy.decrement();
    entry->prevCorrect = entry->lastCorrect;
    entry->lastCorrect = correct;
}

const StrideEntry *
StrideTable::lookup(Addr pc) const
{
    return find(pc);
}

BlockDelta
StrideTable::predictedStride(Addr pc) const
{
    const StrideEntry *entry = find(pc);
    return entry ? entry->stride2d : BlockDelta{};
}

uint32_t
StrideTable::confidence(Addr pc) const
{
    const StrideEntry *entry = find(pc);
    return entry ? entry->accuracy.value() : 0;
}

bool
StrideTable::strideFilterPass(Addr pc) const
{
    const StrideEntry *entry = find(pc);
    return entry && entry->strideRepeated;
}

bool
StrideTable::twoCorrectInARow(Addr pc) const
{
    const StrideEntry *entry = find(pc);
    return entry && entry->lastCorrect && entry->prevCorrect;
}

} // namespace psb
