#include "sim/interval_stats.hh"

#include "util/logging.hh"
#include "util/stats_json.hh"

namespace psb
{

IntervalStatsWriter::IntervalStatsWriter(const StatsRegistry &registry,
                                         uint64_t period,
                                         std::ostream &out)
    : _registry(registry), _period(period), _out(&out)
{
    psb_assert(period > 0, "interval-stats period must be positive");
}

void
IntervalStatsWriter::start(Cycle now)
{
    _intervalStart = now;
    _index = 0;
    _started = true;
    // Zero baseline (not a snapshot): the registry was just reset for
    // the measured region, and starting from zero makes the deltas
    // telescope to the final counters even for stats the reset does
    // not clear.
    _prevScalars.clear();
}

void
IntervalStatsWriter::emitInterval(Cycle end)
{
    auto snap = _registry.snapshot();
    *_out << "{\"interval\":" << _index << ",\"start\":"
          << _intervalStart.raw() << ",\"end\":" << end.raw()
          << ",\"delta\":{";
    bool first = true;
    for (const auto &[path, value] : snap) {
        if (value.kind != StatValue::Kind::Scalar)
            continue;
        uint64_t prev = 0;
        if (auto it = _prevScalars.find(path); it != _prevScalars.end())
            prev = it->second;
        int64_t delta = int64_t(value.scalar) - int64_t(prev);
        _prevScalars[path] = value.scalar;
        if (!first)
            *_out << ",";
        first = false;
        *_out << "\"" << path << "\":" << delta;
    }
    *_out << "},\"values\":{";
    first = true;
    for (const auto &[path, value] : snap) {
        if (value.kind != StatValue::Kind::Real)
            continue;
        if (!first)
            *_out << ",";
        first = false;
        *_out << "\"" << path << "\":" << formatStatReal(value.real);
    }
    *_out << "}}\n";
    ++_index;
    _intervalStart = end;
}

void
IntervalStatsWriter::finish(Cycle now)
{
    if (!_started)
        return;
    // The trailing partial interval keeps the delta sum exact; skip it
    // only when the run ended exactly on a boundary.
    if (now > _intervalStart)
        emitInterval(now);
    _out->flush();
    _started = false;
}

} // namespace psb
