#include "sim/config.hh"

namespace psb
{

const char *
prefetcherKindName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:         return "None";
      case PrefetcherKind::PcStride:     return "PCStride";
      case PrefetcherKind::Psb:          return "PSB";
      case PrefetcherKind::Sequential:   return "Sequential";
      case PrefetcherKind::NextLine:     return "NextLine";
      case PrefetcherKind::MarkovDemand: return "MarkovDemand";
      case PrefetcherKind::MinDelta:     return "MinDelta";
    }
    return "Unknown";
}

void
SimConfig::harmonize()
{
    unsigned block = memory.l1d.blockBytes;
    psb.buffers.blockBytes = block;
    sfm.stride.blockBytes = block;
    sfm.markov.blockBytes = block;
    stride.blockBytes = block;
}

std::string
SimConfig::label() const
{
    switch (prefetcher) {
      case PrefetcherKind::None:
        return "Base";
      case PrefetcherKind::PcStride:
        return "PCStride";
      case PrefetcherKind::Psb:
        return std::string(allocPolicyName(psb.alloc)) + "-" +
               schedPolicyName(psb.sched);
      default:
        return prefetcherKindName(prefetcher);
    }
}

const char *
paperConfigName(PaperConfig cfg)
{
    switch (cfg) {
      case PaperConfig::Base:              return "Base";
      case PaperConfig::PcStride:          return "PCStride";
      case PaperConfig::TwoMissRR:         return "2Miss-RR";
      case PaperConfig::TwoMissPriority:   return "2Miss-Priority";
      case PaperConfig::ConfAllocRR:       return "ConfAlloc-RR";
      case PaperConfig::ConfAllocPriority: return "ConfAlloc-Priority";
    }
    return "Unknown";
}

SimConfig
makePaperConfig(PaperConfig cfg)
{
    SimConfig sim;
    switch (cfg) {
      case PaperConfig::Base:
        sim.prefetcher = PrefetcherKind::None;
        break;
      case PaperConfig::PcStride:
        sim.prefetcher = PrefetcherKind::PcStride;
        break;
      case PaperConfig::TwoMissRR:
        sim.prefetcher = PrefetcherKind::Psb;
        sim.psb.alloc = AllocPolicy::TwoMiss;
        sim.psb.sched = SchedPolicy::RoundRobin;
        break;
      case PaperConfig::TwoMissPriority:
        sim.prefetcher = PrefetcherKind::Psb;
        sim.psb.alloc = AllocPolicy::TwoMiss;
        sim.psb.sched = SchedPolicy::Priority;
        break;
      case PaperConfig::ConfAllocRR:
        sim.prefetcher = PrefetcherKind::Psb;
        sim.psb.alloc = AllocPolicy::Confidence;
        sim.psb.sched = SchedPolicy::RoundRobin;
        break;
      case PaperConfig::ConfAllocPriority:
        sim.prefetcher = PrefetcherKind::Psb;
        sim.psb.alloc = AllocPolicy::Confidence;
        sim.psb.sched = SchedPolicy::Priority;
        break;
    }
    sim.harmonize();
    return sim;
}

} // namespace psb
