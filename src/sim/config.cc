#include "sim/config.hh"

#include <cstdlib>

namespace psb
{

namespace
{

/** Strict non-negative integer parse; rejects empty/partial tokens. */
bool
parseUInt(const std::string &value, uint64_t &out)
{
    // Digits only: strtoull would silently wrap "-5" to a huge value.
    if (value.empty() || value[0] < '0' || value[0] > '9')
        return false;
    char *end = nullptr;
    out = std::strtoull(value.c_str(), &end, 10);
    return end == value.c_str() + value.size();
}

bool
parseBool(const std::string &value, bool &out)
{
    if (value == "true") {
        out = true;
        return true;
    }
    if (value == "false") {
        out = false;
        return true;
    }
    return false;
}

bool
badValue(const std::string &key, const std::string &value,
         const char *expected, std::string &error)
{
    error = "bad value '" + value + "' for config key '" + key +
            "' (expected " + expected + ")";
    return false;
}

} // namespace

const std::vector<std::string> &
simConfigKeys()
{
    static const std::vector<std::string> keys = {
        "alloc",       "buffers",    "delta-bits", "entries",
        "fastforward", "insts",      "l1d-assoc",  "l1d-kb",
        "markov-entries", "nodis",   "order",      "prefetcher",
        "sched",       "tlb-cache",  "warmup",
    };
    return keys;
}

bool
applyConfigKey(SimConfig &cfg, const std::string &key,
               const std::string &value, std::string &error)
{
    uint64_t n = 0;
    bool b = false;
    if (key == "prefetcher") {
        if (value == "none")
            cfg.prefetcher = PrefetcherKind::None;
        else if (value == "pcstride")
            cfg.prefetcher = PrefetcherKind::PcStride;
        else if (value == "psb")
            cfg.prefetcher = PrefetcherKind::Psb;
        else if (value == "sequential")
            cfg.prefetcher = PrefetcherKind::Sequential;
        else if (value == "nextline")
            cfg.prefetcher = PrefetcherKind::NextLine;
        else if (value == "markov")
            cfg.prefetcher = PrefetcherKind::MarkovDemand;
        else if (value == "mindelta")
            cfg.prefetcher = PrefetcherKind::MinDelta;
        else
            return badValue(key, value,
                            "none|pcstride|psb|sequential|nextline|"
                            "markov|mindelta",
                            error);
        return true;
    }
    if (key == "alloc") {
        if (value == "2miss")
            cfg.psb.alloc = AllocPolicy::TwoMiss;
        else if (value == "conf")
            cfg.psb.alloc = AllocPolicy::Confidence;
        else if (value == "always")
            cfg.psb.alloc = AllocPolicy::Always;
        else
            return badValue(key, value, "2miss|conf|always", error);
        return true;
    }
    if (key == "sched") {
        if (value == "rr")
            cfg.psb.sched = SchedPolicy::RoundRobin;
        else if (value == "priority")
            cfg.psb.sched = SchedPolicy::Priority;
        else
            return badValue(key, value, "rr|priority", error);
        return true;
    }
    if (key == "nodis" || key == "tlb-cache" || key == "fastforward") {
        if (!parseBool(value, b))
            return badValue(key, value, "true|false", error);
        if (key == "nodis") {
            cfg.core.disambiguation = b ? DisambiguationMode::None
                                        : DisambiguationMode::Perfect;
        } else if (key == "tlb-cache") {
            cfg.psb.buffers.cacheTlbTranslation = b;
        } else {
            cfg.fastForward = b;
        }
        return true;
    }
    // Every remaining key takes a non-negative integer.
    if (!parseUInt(value, n)) {
        bool known = false;
        for (const std::string &k : simConfigKeys())
            known = known || k == key;
        if (!known) {
            error = "unknown config key '" + key + "'";
            return false;
        }
        return badValue(key, value, "a non-negative integer", error);
    }
    if (key == "insts") {
        cfg.maxInstructions = n;
    } else if (key == "warmup") {
        cfg.warmupInstructions = n;
    } else if (key == "l1d-kb") {
        cfg.memory.l1d.sizeBytes = n * 1024;
    } else if (key == "l1d-assoc") {
        cfg.memory.l1d.assoc = unsigned(n);
    } else if (key == "buffers") {
        cfg.psb.buffers.numBuffers = unsigned(n);
    } else if (key == "entries") {
        cfg.psb.buffers.entriesPerBuffer = unsigned(n);
    } else if (key == "markov-entries") {
        cfg.sfm.markov.entries = unsigned(n);
    } else if (key == "delta-bits") {
        cfg.sfm.markov.deltaBits = unsigned(n);
    } else if (key == "order") {
        cfg.psbContextOrder = unsigned(n);
    } else {
        error = "unknown config key '" + key + "'";
        return false;
    }
    return true;
}

const char *
prefetcherKindName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:         return "None";
      case PrefetcherKind::PcStride:     return "PCStride";
      case PrefetcherKind::Psb:          return "PSB";
      case PrefetcherKind::Sequential:   return "Sequential";
      case PrefetcherKind::NextLine:     return "NextLine";
      case PrefetcherKind::MarkovDemand: return "MarkovDemand";
      case PrefetcherKind::MinDelta:     return "MinDelta";
    }
    return "Unknown";
}

void
SimConfig::harmonize()
{
    unsigned block = memory.l1d.blockBytes;
    psb.buffers.blockBytes = block;
    sfm.stride.blockBytes = block;
    sfm.markov.blockBytes = block;
    stride.blockBytes = block;
}

std::string
SimConfig::label() const
{
    switch (prefetcher) {
      case PrefetcherKind::None:
        return "Base";
      case PrefetcherKind::PcStride:
        return "PCStride";
      case PrefetcherKind::Psb:
        return std::string(allocPolicyName(psb.alloc)) + "-" +
               schedPolicyName(psb.sched);
      default:
        return prefetcherKindName(prefetcher);
    }
}

const char *
paperConfigName(PaperConfig cfg)
{
    switch (cfg) {
      case PaperConfig::Base:              return "Base";
      case PaperConfig::PcStride:          return "PCStride";
      case PaperConfig::TwoMissRR:         return "2Miss-RR";
      case PaperConfig::TwoMissPriority:   return "2Miss-Priority";
      case PaperConfig::ConfAllocRR:       return "ConfAlloc-RR";
      case PaperConfig::ConfAllocPriority: return "ConfAlloc-Priority";
    }
    return "Unknown";
}

SimConfig
makePaperConfig(PaperConfig cfg)
{
    SimConfig sim;
    switch (cfg) {
      case PaperConfig::Base:
        sim.prefetcher = PrefetcherKind::None;
        break;
      case PaperConfig::PcStride:
        sim.prefetcher = PrefetcherKind::PcStride;
        break;
      case PaperConfig::TwoMissRR:
        sim.prefetcher = PrefetcherKind::Psb;
        sim.psb.alloc = AllocPolicy::TwoMiss;
        sim.psb.sched = SchedPolicy::RoundRobin;
        break;
      case PaperConfig::TwoMissPriority:
        sim.prefetcher = PrefetcherKind::Psb;
        sim.psb.alloc = AllocPolicy::TwoMiss;
        sim.psb.sched = SchedPolicy::Priority;
        break;
      case PaperConfig::ConfAllocRR:
        sim.prefetcher = PrefetcherKind::Psb;
        sim.psb.alloc = AllocPolicy::Confidence;
        sim.psb.sched = SchedPolicy::RoundRobin;
        break;
      case PaperConfig::ConfAllocPriority:
        sim.prefetcher = PrefetcherKind::Psb;
        sim.psb.alloc = AllocPolicy::Confidence;
        sim.psb.sched = SchedPolicy::Priority;
        break;
    }
    sim.harmonize();
    return sim;
}

} // namespace psb
