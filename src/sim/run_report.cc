/** @file See run_report.hh. */

#include "sim/run_report.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "prefetch/attribution.hh"
#include "util/json.hh"
#include "util/stats_json.hh"

namespace psb
{

namespace
{

/** One rendered table: a header row plus data rows, all strings. */
struct Table
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** One report section: heading, prose lines, tables — in order. */
struct Section
{
    std::string heading;
    std::vector<std::string> paragraphs;
    std::vector<Table> tables;
};

using StatsMap = std::map<std::string, ParsedStat>;

const char *const kOutcomeNames[] = {
    "used_timely",  "used_late", "evicted_unused",
    "replaced",     "squashed",  "redundant_demand",
};

const ParsedStat *
findStat(const StatsMap &stats, const std::string &key)
{
    auto it = stats.find(key);
    return it == stats.end() ? nullptr : &it->second;
}

double
statValue(const StatsMap &stats, const std::string &key)
{
    const ParsedStat *s = findStat(stats, key);
    return s ? s->value : 0.0;
}

/** The stat's source spelling, or "-" when absent. */
std::string
statToken(const StatsMap &stats, const std::string &key)
{
    const ParsedStat *s = findStat(stats, key);
    return s ? s->raw : std::string("-");
}

std::string
fmtUint(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

/** Fixed-precision percentage: deterministic for deterministic input. */
std::string
fmtPercent(double num, double denom)
{
    double pct = denom > 0.0 ? 100.0 * num / denom : 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", pct);
    return buf;
}

std::string
fmtRatio(double num, double denom)
{
    double r = denom > 0.0 ? num / denom : 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", r);
    return buf;
}

std::string
fmtSigned(int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+" PRId64, v);
    return buf;
}

// ------------------------------------------------------------------ //
// Section builders
// ------------------------------------------------------------------ //

Section
buildSummary(const StatsMap &stats)
{
    Section sec;
    sec.heading = "Run summary";
    Table t;
    t.header = {"Metric", "Value"};
    // A fixed, ordered selection; absent keys are skipped so the
    // section degrades gracefully for partial documents.
    const char *const keys[] = {
        "core.instructions", "core.cycles",   "core.ipc",
        "l1d.accesses",      "l1d.misses",    "l1d.miss_rate",
        "l2.accesses",       "l2.misses",     "l2.prefetches",
        "l2.prefetch_hits",
    };
    for (const char *key : keys) {
        if (const ParsedStat *s = findStat(stats, key))
            t.rows.push_back({key, s->raw});
    }
    if (t.rows.empty())
        sec.paragraphs.push_back("No core/memory stats in this document.");
    else
        sec.tables.push_back(std::move(t));
    return sec;
}

Section
buildAttribution(const StatsMap &stats)
{
    Section sec;
    sec.heading = "Prefetch attribution";
    const ParsedStat *issued_stat =
        findStat(stats, "prefetch.attrib.issued");
    if (!issued_stat) {
        sec.paragraphs.push_back(
            "No prefetch.attrib stats in this document.");
        return sec;
    }
    double issued = issued_stat->value;
    double used =
        statValue(stats, "prefetch.attrib.outcome.used_timely") +
        statValue(stats, "prefetch.attrib.outcome.used_late");
    double timely =
        statValue(stats, "prefetch.attrib.outcome.used_timely");
    sec.paragraphs.push_back(
        "Issued " + issued_stat->raw + " prefetches; accuracy " +
        fmtRatio(used, issued) + " (used / issued), timeliness " +
        fmtRatio(timely, used) + " (timely / used).");
    if (const ParsedStat *misses = findStat(stats, "l1d.misses")) {
        sec.paragraphs.push_back(
            "Coverage " + fmtRatio(used, used + misses->value) +
            " (used prefetches / (used + remaining L1D misses)).");
    }

    Table outcomes;
    outcomes.header = {"Outcome", "Count", "Share of issued"};
    for (const char *name : kOutcomeNames) {
        std::string key =
            std::string("prefetch.attrib.outcome.") + name;
        outcomes.rows.push_back({name, statToken(stats, key),
                                 fmtPercent(statValue(stats, key),
                                            issued)});
    }
    sec.tables.push_back(std::move(outcomes));

    Table timing;
    timing.header = {"Distribution", "p50", "p90", "p99", "samples"};
    for (const char *dist : {"use_distance", "lateness"}) {
        std::string base = std::string("prefetch.attrib.") + dist;
        timing.rows.push_back({dist, statToken(stats, base + ".p50"),
                               statToken(stats, base + ".p90"),
                               statToken(stats, base + ".p99"),
                               statToken(stats, base + ".samples")});
    }
    sec.tables.push_back(std::move(timing));

    Table sources;
    sources.header = {"Source",   "Issued",   "Timely",
                      "Late",     "Evicted",  "Replaced",
                      "Squashed", "Redundant", "Accuracy"};
    for (unsigned s = 0; s < unsigned(PredictionSource::NumSources);
         ++s) {
        std::string base = std::string("prefetch.attrib.source.") +
                           predictionSourceName(PredictionSource(s));
        double src_issued = statValue(stats, base + ".issued");
        if (src_issued <= 0.0)
            continue; // sources this run never exercised
        double src_used = statValue(stats, base + ".used_timely") +
                          statValue(stats, base + ".used_late");
        sources.rows.push_back(
            {predictionSourceName(PredictionSource(s)),
             statToken(stats, base + ".issued"),
             statToken(stats, base + ".used_timely"),
             statToken(stats, base + ".used_late"),
             statToken(stats, base + ".evicted_unused"),
             statToken(stats, base + ".replaced"),
             statToken(stats, base + ".squashed"),
             statToken(stats, base + ".redundant_demand"),
             fmtRatio(src_used, src_issued)});
    }
    if (!sources.rows.empty())
        sec.tables.push_back(std::move(sources));
    return sec;
}

bool
buildIntervals(const std::string &jsonl, const StatsMap &stats,
               Section &sec, std::string &error)
{
    sec.heading = "Interval series";
    std::map<std::string, int64_t> delta_sums;
    uint64_t records = 0;
    uint64_t first_start = 0, last_end = 0;
    std::istringstream lines(jsonl);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        JsonValue rec;
        if (!parseJson(line, rec, error)) {
            error = "interval record " + std::to_string(records) +
                    ": " + error;
            return false;
        }
        uint64_t start = 0, end = 0;
        if (const JsonValue *v = rec.find("start"))
            v->asUInt(start);
        if (const JsonValue *v = rec.find("end"))
            v->asUInt(end);
        if (records == 0)
            first_start = start;
        last_end = end;
        if (const JsonValue *delta = rec.find("delta")) {
            for (const auto &[path, value] : delta->object)
                delta_sums[path] += int64_t(value.number);
        }
        ++records;
    }

    // Re-verify the telescoping contract: per-path delta sums must
    // equal the final stats document's scalar values.
    uint64_t mismatches = 0;
    for (const auto &[path, sum] : delta_sums) {
        const ParsedStat *fin = findStat(stats, path);
        if (!fin || int64_t(fin->value) != sum)
            ++mismatches;
    }
    sec.paragraphs.push_back(
        fmtUint(records) + " interval records covering cycles " +
        fmtUint(first_start) + ".." + fmtUint(last_end) + ".");
    sec.paragraphs.push_back(
        mismatches == 0
            ? "Telescoping check: OK (every scalar delta series sums "
              "to its final stats value)."
            : "Telescoping check: FAILED for " + fmtUint(mismatches) +
                  " stat paths.");
    return true;
}

bool
buildSweep(const std::string &json, Section &sec, std::string &error)
{
    sec.heading = "Sweep cells";
    JsonValue doc;
    if (!parseJson(json, doc, error)) {
        error = "sweep document: " + error;
        return false;
    }
    const JsonValue *jobs = doc.find("jobs");
    if (!jobs || !jobs->isObject()) {
        error = "sweep document: missing \"jobs\" object";
        return false;
    }
    Table t;
    t.header = {"Config cell", "Status", "IPC", "PF issued",
                "PF accuracy"};
    std::vector<const std::pair<std::string, JsonValue> *> cells;
    cells.reserve(jobs->object.size());
    for (const auto &member : jobs->object)
        cells.push_back(&member);
    std::sort(cells.begin(), cells.end(),
              [](const auto *a, const auto *b) {
                  return a->first < b->first;
              });
    for (const auto *cell : cells) {
        const JsonValue &job = cell->second;
        std::string status = "?";
        if (const JsonValue *s = job.find("status"))
            status = s->str;
        std::string ipc = "-", issued = "-", accuracy = "-";
        if (const JsonValue *stats_obj = job.find("stats")) {
            double used = 0.0, issued_n = 0.0;
            for (const auto &[path, value] : stats_obj->object) {
                if (path == "core.ipc")
                    ipc = value.raw;
                else if (path == "prefetch.attrib.issued") {
                    issued = value.raw;
                    issued_n = value.number;
                } else if (path ==
                               "prefetch.attrib.outcome.used_timely" ||
                           path == "prefetch.attrib.outcome.used_late")
                    used += value.number;
            }
            if (issued != "-")
                accuracy = fmtRatio(used, issued_n);
        }
        t.rows.push_back({cell->first, status, ipc, issued, accuracy});
    }
    sec.paragraphs.push_back(fmtUint(uint64_t(t.rows.size())) +
                             " config cells.");
    sec.tables.push_back(std::move(t));
    return true;
}

bool
buildBench(const std::string &json, const std::string &baseline_json,
           Section &sec, std::string &error)
{
    sec.heading = "Bench trajectory";
    JsonValue doc;
    if (!parseJson(json, doc, error)) {
        error = "bench document: " + error;
        return false;
    }
    JsonValue baseline;
    bool have_baseline = !baseline_json.empty();
    if (have_baseline && !parseJson(baseline_json, baseline, error)) {
        error = "bench baseline document: " + error;
        return false;
    }

    // One table per harness group, cells sorted; only the
    // deterministic (non-"wall_") fields are reported, matching the
    // bench-diff gate's notion of comparable content.
    std::vector<std::string> groups;
    for (const auto &[name, value] : doc.object) {
        if (value.isObject() && value.find("cells"))
            groups.push_back(name);
    }
    std::sort(groups.begin(), groups.end());
    for (const std::string &group : groups) {
        const JsonValue *cells = doc.find(group)->find("cells");
        const JsonValue *base_cells = nullptr;
        if (have_baseline) {
            if (const JsonValue *bg = baseline.find(group))
                base_cells = bg->find("cells");
        }
        Table t;
        t.header = {"Cell (" + group + ")", "Cycles", "Instructions"};
        if (base_cells) {
            t.header.push_back("Baseline cycles");
            t.header.push_back("Delta");
        }
        std::vector<const std::pair<std::string, JsonValue> *> rows;
        for (const auto &member : cells->object)
            rows.push_back(&member);
        std::sort(rows.begin(), rows.end(),
                  [](const auto *a, const auto *b) {
                      return a->first < b->first;
                  });
        for (const auto *row : rows) {
            std::string cycles = "-", insts = "-";
            if (const JsonValue *v = row->second.find("cycles"))
                cycles = v->raw;
            if (const JsonValue *v = row->second.find("instructions"))
                insts = v->raw;
            std::vector<std::string> cols = {row->first, cycles, insts};
            if (base_cells) {
                std::string base_cycles = "-", delta = "-";
                if (const JsonValue *bc = base_cells->find(row->first)) {
                    if (const JsonValue *v = bc->find("cycles")) {
                        base_cycles = v->raw;
                        int64_t d = int64_t(row->second.find("cycles")
                                                ? row->second
                                                      .find("cycles")
                                                      ->number
                                                : 0.0) -
                                    int64_t(v->number);
                        delta = fmtSigned(d);
                    }
                }
                cols.push_back(base_cycles);
                cols.push_back(delta);
            }
            t.rows.push_back(std::move(cols));
        }
        sec.tables.push_back(std::move(t));
    }
    if (sec.tables.empty())
        sec.paragraphs.push_back("No harness groups in this document.");
    return true;
}

Section
buildGoldenDrift(const StatsMap &stats, const StatsMap &golden)
{
    Section sec;
    sec.heading = "Golden drift";
    uint64_t added = 0, removed = 0, changed = 0;
    Table t;
    t.header = {"Stat", "Golden", "Current"};
    constexpr size_t kMaxListed = 20;
    for (const auto &[path, value] : stats) {
        auto it = golden.find(path);
        if (it == golden.end()) {
            ++added;
        } else if (it->second.raw != value.raw) {
            ++changed;
            if (t.rows.size() < kMaxListed)
                t.rows.push_back({path, it->second.raw, value.raw});
        }
    }
    for (const auto &[path, value] : golden) {
        (void)value;
        if (stats.find(path) == stats.end())
            ++removed;
    }
    sec.paragraphs.push_back(
        fmtUint(added) + " stats added, " + fmtUint(removed) +
        " removed, " + fmtUint(changed) +
        " changed relative to the golden document.");
    if (!t.rows.empty()) {
        if (changed > kMaxListed)
            sec.paragraphs.push_back("First " + fmtUint(kMaxListed) +
                                     " changed stats:");
        sec.tables.push_back(std::move(t));
    }
    return sec;
}

// ------------------------------------------------------------------ //
// Renderers
// ------------------------------------------------------------------ //

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '&':
            out += "&amp;";
            break;
        case '<':
            out += "&lt;";
            break;
        case '>':
            out += "&gt;";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
renderMarkdown(const std::string &title,
               const std::vector<Section> &sections)
{
    std::string out = "# " + title + "\n";
    for (const Section &sec : sections) {
        out += "\n## " + sec.heading + "\n";
        for (const std::string &p : sec.paragraphs)
            out += "\n" + p + "\n";
        for (const Table &t : sec.tables) {
            out += "\n|";
            for (const std::string &h : t.header)
                out += " " + h + " |";
            out += "\n|";
            for (size_t i = 0; i < t.header.size(); ++i)
                out += " --- |";
            out += "\n";
            for (const auto &row : t.rows) {
                out += "|";
                for (const std::string &cell : row)
                    out += " " + cell + " |";
                out += "\n";
            }
        }
    }
    return out;
}

std::string
renderHtml(const std::string &title,
           const std::vector<Section> &sections)
{
    std::string out =
        "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
        "<title>" +
        htmlEscape(title) +
        "</title>\n<style>\n"
        "body { font-family: sans-serif; margin: 2em; }\n"
        "table { border-collapse: collapse; margin: 1em 0; }\n"
        "th, td { border: 1px solid #999; padding: 0.3em 0.7em; "
        "text-align: left; }\n"
        "th { background: #eee; }\n"
        "</style>\n</head>\n<body>\n<h1>" +
        htmlEscape(title) + "</h1>\n";
    for (const Section &sec : sections) {
        out += "<h2>" + htmlEscape(sec.heading) + "</h2>\n";
        for (const std::string &p : sec.paragraphs)
            out += "<p>" + htmlEscape(p) + "</p>\n";
        for (const Table &t : sec.tables) {
            out += "<table>\n<tr>";
            for (const std::string &h : t.header)
                out += "<th>" + htmlEscape(h) + "</th>";
            out += "</tr>\n";
            for (const auto &row : t.rows) {
                out += "<tr>";
                for (const std::string &cell : row)
                    out += "<td>" + htmlEscape(cell) + "</td>";
                out += "</tr>\n";
            }
            out += "</table>\n";
        }
    }
    out += "</body>\n</html>\n";
    return out;
}

} // namespace

bool
renderRunReport(const RunReportInputs &in, ReportFormat format,
                std::string &out, std::string &error)
{
    StatsMap stats;
    if (!parseStatsJson(in.statsJson, stats, error)) {
        error = "stats document: " + error;
        return false;
    }

    std::vector<Section> sections;
    sections.push_back(buildSummary(stats));
    sections.push_back(buildAttribution(stats));

    if (!in.intervalsJsonl.empty()) {
        Section sec;
        if (!buildIntervals(in.intervalsJsonl, stats, sec, error))
            return false;
        sections.push_back(std::move(sec));
    }
    if (!in.sweepJson.empty()) {
        Section sec;
        if (!buildSweep(in.sweepJson, sec, error))
            return false;
        sections.push_back(std::move(sec));
    }
    if (!in.benchJson.empty()) {
        Section sec;
        if (!buildBench(in.benchJson, in.benchBaselineJson, sec, error))
            return false;
        sections.push_back(std::move(sec));
    }
    if (!in.goldenJson.empty()) {
        StatsMap golden;
        if (!parseStatsJson(in.goldenJson, golden, error)) {
            error = "golden document: " + error;
            return false;
        }
        sections.push_back(buildGoldenDrift(stats, golden));
    }

    std::string title =
        in.title.empty() ? std::string("PSB run report") : in.title;
    out = format == ReportFormat::Markdown
              ? renderMarkdown(title, sections)
              : renderHtml(title, sections);
    return true;
}

} // namespace psb
