/**
 * @file
 * Consolidated run-report rendering for tools/psb-report.
 *
 * Ingests the observability documents the simulator family already
 * produces — a flat --stats-json dump, an --interval-stats JSONL
 * series, a psb-sweep merged document, one or two BENCH_psb.json
 * trajectory documents, and a golden stats file — and renders one
 * deterministic Markdown or HTML report:
 *
 *   - run summary (instructions, cycles, IPC, memory-system totals)
 *   - prefetch attribution: lifecycle outcome table, accuracy /
 *     coverage / timeliness, per-source breakdown, distance and
 *     lateness percentiles (DESIGN.md §13)
 *   - interval series summary with the telescoping check re-verified
 *   - per-cell sweep table (IPC + attribution accuracy per config)
 *   - bench trajectory with deltas against a baseline document
 *   - golden-drift summary (added / removed / changed stats)
 *
 * Determinism contract: the output is a pure function of the input
 * documents — no timestamps, hostnames, or wall-clock facts; all maps
 * are sorted; parsed numbers are re-emitted with their source
 * spelling and derived values through fixed-precision formatting. Two
 * invocations over identical inputs are byte-identical (the report
 * ctest and CI job diff exactly this).
 */

#ifndef PSB_SIM_RUN_REPORT_HH
#define PSB_SIM_RUN_REPORT_HH

#include <string>

namespace psb
{

/** Raw input documents (file contents, not paths). Empty = absent. */
struct RunReportInputs
{
    std::string title;             ///< report heading (optional)
    std::string statsJson;         ///< --stats-json dump (required)
    std::string intervalsJsonl;    ///< --interval-stats series
    std::string sweepJson;         ///< psb-sweep merged document
    std::string benchJson;         ///< BENCH_psb.json trajectory
    std::string benchBaselineJson; ///< baseline BENCH document
    std::string goldenJson;        ///< golden stats for drift summary
};

enum class ReportFormat
{
    Markdown,
    Html,
};

/**
 * Render the report for @p in as @p format into @p out.
 * @retval false (with @p error set) when a provided document fails to
 *         parse; absent optional documents simply omit their section.
 */
bool renderRunReport(const RunReportInputs &in, ReportFormat format,
                     std::string &out, std::string &error);

} // namespace psb

#endif // PSB_SIM_RUN_REPORT_HH
