/**
 * @file
 * Deterministic microbenchmark harness behind the psb-bench tool: a
 * registry of hot-path kernels (cache/TLB/MSHR probes, predictor
 * table lookups, stream-buffer scheduling, the per-cycle core loop)
 * plus the Figure 5 whole-simulation throughput matrix, emitted as a
 * stable JSON document (BENCH_psb.json) that tracks the simulator's
 * performance trajectory across PRs.
 *
 * The determinism contract (pinned by tests/test_bench_harness.cc):
 *
 *  - Every kernel runs a *fixed* iteration count and folds its work
 *    into a checksum plus named counters, all pure functions of the
 *    kernel's seeded stimulus. Two emissions of the same harness
 *    differ ONLY in fields whose key starts with "wall_".
 *  - JSON object keys are emitted in sorted order with fixed integer
 *    and "%.3f" float formatting, so the document is byte-stable and
 *    diffs line up across runs and machines.
 *
 * Wall times are medians of N repeats of the whole kernel loop. They
 * are the one intentional nondeterminism in this repository, which is
 * why this translation unit carries the explicit psb-analyze R3
 * suppressions at each clock call site — everything the simulator
 * itself observes stays clock-free (DESIGN.md §11).
 *
 * tools/bench_diff compares two documents with compareBenchJson():
 * non-wall fields must match exactly; wall fields are gated on a
 * relative-regression threshold.
 */

#ifndef PSB_SIM_BENCH_HARNESS_HH
#define PSB_SIM_BENCH_HARNESS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace psb
{

/** How psb-bench runs the kernel registry and the fig5 matrix. */
struct BenchHarnessOptions
{
    /** Repeats per kernel (and per fig5 cell); the median wall time
     *  is reported. Odd values give a true median. */
    unsigned repeats = 3;
    /** Reduced iteration counts and a 2x2 fig5 matrix (CI-sized). */
    bool quick = false;
    /** Case-sensitive substring filter on kernel names; "" = all. */
    std::string filter;
    /** Skip the whole-simulation fig5 section entirely. */
    bool skipSims = false;
    /** Measured / warm-up instructions for each fig5 matrix cell. */
    uint64_t simInstructions = 200'000;
    uint64_t simWarmup = 50'000;
    /** Hot-path call-graph size (tools/psb_analyze.py
     *  --callgraph-json, loaded via `psb-bench --callgraph`); zeros
     *  when not supplied. Deterministic meta fields: a grown graph in
     *  the trajectory flags a discipline change alongside the wall
     *  numbers. */
    uint64_t hotCallgraphRoots = 0;
    uint64_t hotCallgraphReachable = 0;
    uint64_t hotCallgraphEdges = 0;
};

/** One kernel's measurement: deterministic fields + median wall. */
struct BenchKernelResult
{
    std::string name;
    uint64_t iterations = 0;
    /** Folded digest of every iteration's work (deterministic). */
    uint64_t checksum = 0;
    /** Extra deterministic counters, emitted key-sorted. */
    std::vector<std::pair<std::string, uint64_t>> counters;
    /** Median-of-repeats wall time per iteration (nondeterministic). */
    double wallNsPerIter = 0.0;
    /** Fastest repeat, per iteration (nondeterministic). */
    double wallNsPerIterMin = 0.0;
};

/** One fig5 whole-simulation cell ("workload/Config"). */
struct BenchSimResult
{
    std::string name;
    uint64_t cycles = 0;       ///< simulated cycles (deterministic)
    uint64_t instructions = 0; ///< committed insts (deterministic)
    /** Heap allocations observed inside the steady-state no-alloc
     *  scope (util/alloc_guard.hh). Deterministic and expected 0:
     *  guarded debug builds count them for real, release builds
     *  report 0 by construction — the alloc_guard ctest is the
     *  enforcing gate, this field keeps the trajectory honest. */
    uint64_t steadyStateAllocs = 0;
    double wallMs = 0.0;       ///< median-of-repeats (nondeterministic)
    double wallCyclesPerSec = 0.0; ///< cycles / median wall
};

/**
 * The kernel registry and runner. A kernel is a callable taking its
 * iteration count and a counter sink, returning a checksum; it must
 * be a pure function of those iterations (fresh state per call, all
 * randomness from fixed-seed Xorshift64).
 */
class BenchHarness
{
  public:
    using KernelFn = std::function<uint64_t(
        uint64_t iterations,
        std::vector<std::pair<std::string, uint64_t>> &counters)>;

    explicit BenchHarness(const BenchHarnessOptions &opts);

    /**
     * Register a kernel. @p iterations is used in full runs,
     * @p quick_iterations under --quick; both are part of the
     * deterministic output (the checksum depends on them).
     */
    void addKernel(const std::string &name, uint64_t iterations,
                   uint64_t quick_iterations, KernelFn fn);

    /** Registered names, in registration order (for --list). */
    std::vector<std::string> kernelNames() const;

    /** Run every kernel passing the filter; results name-sorted. */
    std::vector<BenchKernelResult> runKernels() const;

    /**
     * Run the fig5 whole-simulation matrix (6 workloads x the paper's
     * 6 configurations; --quick shrinks it to 2x2) and append an
     * aggregate "total" row. Empty when opts.skipSims.
     */
    std::vector<BenchSimResult> runSimMatrix() const;

    const BenchHarnessOptions &options() const { return _opts; }

  private:
    struct Kernel
    {
        std::string name;
        uint64_t iterations;
        uint64_t quickIterations;
        KernelFn fn;
    };

    BenchHarnessOptions _opts;
    std::vector<Kernel> _kernels;
};

/**
 * Register the standard hot-path kernel set (the paths the profiling
 * rounds in DESIGN.md §11 identified): cache_lookup, markov_probe,
 * mshr_search, ooo_core_loop, satcounter_update, sfm_predict,
 * stream_buffer_sched, stride_probe, tlb_lookup.
 */
void registerDefaultKernels(BenchHarness &harness);

/**
 * Render the full BENCH document: {"fig5": {...}, "kernels": {...},
 * "meta": {...}} with sorted keys (see file comment for the
 * byte-stability contract).
 */
std::string benchJson(const std::vector<BenchKernelResult> &kernels,
                      const std::vector<BenchSimResult> &sims,
                      const BenchHarnessOptions &opts);

/**
 * Replace the value of every "wall_*" field with 0 so two emissions
 * of the same harness can be byte-compared; everything else is left
 * untouched.
 */
std::string maskWallFields(const std::string &json);

/** Outcome of comparing two BENCH documents (tools/bench_diff). */
struct BenchCompareResult
{
    /** A deterministic field differs, or the documents' shapes do. */
    bool mismatch = false;
    /** A wall field regressed beyond the threshold. */
    bool regression = false;
    std::vector<std::string> messages;
};

/**
 * Compare @p old_json (baseline) against @p new_json: non-wall leaves
 * must be identical; "wall_*" leaves may regress by at most
 * @p max_regress_pct percent (for "*per_sec*" keys lower is worse,
 * for plain wall times higher is worse). Parse failures are reported
 * as a mismatch.
 */
BenchCompareResult compareBenchJson(const std::string &old_json,
                                    const std::string &new_json,
                                    double max_regress_pct);

} // namespace psb

#endif // PSB_SIM_BENCH_HARNESS_HH
