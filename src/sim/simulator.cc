#include "sim/simulator.hh"

#include "predictors/context_predictor.hh"
#include "prefetch/markov_prefetcher.hh"
#include "prefetch/min_delta_stream_buffers.hh"
#include "prefetch/next_line_prefetcher.hh"
#include "prefetch/sequential_stream_buffers.hh"
#include "prefetch/stride_stream_buffers.hh"
#include "util/alloc_guard.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace psb
{

namespace
{

/**
 * Transparent prefetcher decorator that exposes the committed L1D
 * load-miss stream to an observer (Figure 4 harness).
 */
class HookedPrefetcher : public Prefetcher
{
  public:
    HookedPrefetcher(Prefetcher &inner,
                     const std::function<void(Addr, Addr)> *hook)
        : _inner(inner), _hook(hook)
    {}

    PrefetchLookup
    lookup(Addr addr, Cycle now) override
    {
        return _inner.lookup(addr, now);
    }

    void
    trainLoad(Addr pc, Addr addr, bool l1_miss,
              bool store_forwarded) override
    {
        // The observer hook is a measurement-harness callback, not
        // modelled hardware; its dispatch is sanctioned on the hot
        // path (and a null/empty hook short-circuits above).
        if (l1_miss && !store_forwarded && *_hook)
            (*_hook)(pc, addr); // psb-analyze: allow(R12)
        _inner.trainLoad(pc, addr, l1_miss, store_forwarded);
    }

    void
    demandMiss(Addr pc, Addr addr, Cycle now) override
    {
        _inner.demandMiss(pc, addr, now);
    }

    void tick(Cycle now) override { _inner.tick(now); }

    bool
    fastForwardTicks(Cycle from, uint64_t n) override
    {
        return _inner.fastForwardTicks(from, n);
    }

    const PrefetcherStats &stats() const override { return _inner.stats(); }
    void resetStats() override { _inner.resetStats(); }
    void endOfSim(Cycle now) override { _inner.endOfSim(now); }

    void
    registerStats(StatsRegistry &reg,
                  const std::string &prefix) const override
    {
        _inner.registerStats(reg, prefix);
    }

  private:
    Prefetcher &_inner;
    const std::function<void(Addr, Addr)> *_hook;
};

} // namespace

Simulator::Simulator(const SimConfig &cfg, TraceSource &trace) : _cfg(cfg)
{
    _cfg.harmonize();
    _hierarchy = std::make_unique<MemoryHierarchy>(_cfg.memory);

    switch (_cfg.prefetcher) {
      case PrefetcherKind::None:
        _prefetcher = std::make_unique<NullPrefetcher>();
        break;
      case PrefetcherKind::PcStride:
        _prefetcher = std::make_unique<StrideStreamBuffers>(
            _cfg.psb.buffers, _cfg.stride, *_hierarchy);
        break;
      case PrefetcherKind::Psb: {
        if (_cfg.psbContextOrder > 0) {
            ContextConfig ctx;
            ctx.stride = _cfg.sfm.stride;
            ctx.entries = _cfg.sfm.markov.entries;
            ctx.historyLength = _cfg.psbContextOrder;
            auto pred = std::make_unique<ContextPredictor>(ctx);
            _prefetcher =
                std::make_unique<PredictorDirectedStreamBuffers>(
                    _cfg.psb, *pred, *_hierarchy);
            _predictor = std::move(pred);
        } else {
            auto sfm = std::make_unique<SfmPredictor>(_cfg.sfm);
            _prefetcher =
                std::make_unique<PredictorDirectedStreamBuffers>(
                    _cfg.psb, *sfm, *_hierarchy);
            _predictor = std::move(sfm);
        }
        break;
      }
      case PrefetcherKind::Sequential:
        _prefetcher = std::make_unique<SequentialStreamBuffers>(
            _cfg.psb.buffers, *_hierarchy);
        break;
      case PrefetcherKind::NextLine:
        _prefetcher = std::make_unique<NextLinePrefetcher>(*_hierarchy);
        break;
      case PrefetcherKind::MarkovDemand: {
        MarkovTableConfig table;
        table.blockBytes = _cfg.memory.l1d.blockBytes;
        _prefetcher = std::make_unique<MarkovPrefetcher>(*_hierarchy,
                                                         table);
        break;
      }
      case PrefetcherKind::MinDelta: {
        MinDeltaConfig table;
        table.blockBytes = _cfg.memory.l1d.blockBytes;
        _prefetcher = std::make_unique<MinDeltaStreamBuffers>(
            _cfg.psb.buffers, table, *_hierarchy);
        break;
      }
    }

    _hookWrapper =
        std::make_unique<HookedPrefetcher>(*_prefetcher, &_missHook);
    _core = std::make_unique<OoOCore>(_cfg.core, *_hierarchy,
                                      *_hookWrapper, trace);
    buildStatsRegistry();
}

namespace
{

/** Registry prefix for each prefetcher kind (issue naming: "psb.*"). */
const char *
prefetcherStatsPrefix(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:         return "prefetcher";
      case PrefetcherKind::PcStride:     return "pcstride";
      case PrefetcherKind::Psb:          return "psb";
      case PrefetcherKind::Sequential:   return "seqsb";
      case PrefetcherKind::NextLine:     return "nextline";
      case PrefetcherKind::MarkovDemand: return "markov";
      case PrefetcherKind::MinDelta:     return "mindelta";
    }
    return "prefetcher";
}

} // namespace

void
Simulator::buildStatsRegistry()
{
    _core->registerStats(_registry);
    _hierarchy->registerStats(_registry);
    _prefetcher->registerStats(_registry,
                               prefetcherStatsPrefix(_cfg.prefetcher));
    if (_predictor)
        _predictor->registerStats(_registry, "sfm_predictor");

    // Cross-component derived values (the SimResult figures).
    _registry.addReal("sim.l1_l2_bus_util", [this] {
        return ratio(_hierarchy->l1L2Bus().busyCycles(),
                     _core->stats().cycles);
    });
    _registry.addReal("sim.l2_mem_bus_util", [this] {
        return ratio(_hierarchy->l2MemBus().busyCycles(),
                     _core->stats().cycles);
    });
    _registry.addReal("sim.pct_loads", [this] {
        return percent(_core->stats().loads,
                       _core->stats().instructions);
    });
    _registry.addReal("sim.pct_stores", [this] {
        return percent(_core->stats().stores,
                       _core->stats().instructions);
    });
}

Simulator::~Simulator() = default;

void
Simulator::setMissHook(std::function<void(Addr, Addr)> hook)
{
    _missHook = std::move(hook);
}

void
Simulator::setIntervalStats(uint64_t period, std::ostream &out)
{
    _intervalStats =
        std::make_unique<IntervalStatsWriter>(_registry, period, out);
}

void
Simulator::resetAllStats()
{
    _core->resetStats();
    _hierarchy->resetStats();
    _prefetcher->resetStats();
    if (_predictor)
        _predictor->resetStats();
}

void
Simulator::maybeFastForward()
{
    // Skip ahead to the core's next possible activity, provided the
    // prefetcher agrees the span is idle and replays its idle-cycle
    // counters (scheduler no-candidate picks). Idle core cycles have
    // no effect beyond the cycle counter, so the skip is exact: every
    // stat and every piece of architectural state matches the
    // cycle-by-cycle run (asserted by tests/test_properties.cc).
    Cycle wake = _core->nextWake();
    if (wake == Cycle::max() || wake <= _now)
        return;
    uint64_t n = (wake - _now).raw();
    if (_intervalStats && _intervalStats->started()) {
        // Land exactly on the interval boundary so the record's
        // "end" cycle matches the unskipped run.
        Cycle boundary = _intervalStats->nextBoundary();
        if (boundary <= _now)
            return;
        uint64_t cap = (boundary - _now).raw();
        if (n > cap)
            n = cap;
    }
    if (n == 0 || !_hookWrapper->fastForwardTicks(_now, n))
        return;
    _core->skipIdleCycles(n);
    _now += CycleDelta(n);
    if (_intervalStats && _intervalStats->started()) {
        // Interval snapshots are an observability side-channel: they
        // allocate by design and pause the guard (static counterpart:
        // the allow() below keeps the writer out of the hot graph).
        PSB_ALLOC_GUARD_PAUSE();
        _intervalStats->tick(_now); // psb-analyze: allow(R10)
    }
}

void
Simulator::stepCycle()
{
    if (_cfg.fastForward)
        maybeFastForward();
    PSB_TRACE_SET_NOW(_now);
    _core->tick(_now);
    _hookWrapper->tick(_now);
    ++_now;
}

SimResult
Simulator::run()
{
    while (!_core->done() &&
           _core->stats().instructions < _cfg.warmupInstructions)
        stepCycle();

    resetAllStats();
    if (_intervalStats)
        _intervalStats->start(_now);

    {
        // Steady state: the per-cycle hot path must not touch the
        // heap (rule R10). Under a PSB_ALLOC_GUARD build this scope
        // counts — and, armed via --assert-no-alloc, forbids — every
        // allocation; the observability side-channels that
        // legitimately allocate (workload trace generation in
        // OoOCore::fetchStage, interval stats snapshots) sit inside
        // PSB_ALLOC_GUARD_PAUSE blocks. The scope closes before the
        // interval writer's final record and gather(), which are
        // teardown, not per-cycle work.
        PSB_NO_ALLOC_SCOPE("steady-state cycle loop");
        while (!_core->done() &&
               _core->stats().instructions < _cfg.maxInstructions) {
            stepCycle();
            if (_intervalStats) {
                PSB_ALLOC_GUARD_PAUSE();
                _intervalStats->tick(_now);
            }
        }

        // Settle prefetch attribution (squash still-live prefetches
        // and check the conservation invariant) BEFORE the final
        // interval record, so the squash counters land inside the
        // measured region and the interval deltas still telescope to
        // the final document. The settle path is per-cycle-class
        // work and stays inside the no-alloc scope.
        PSB_TRACE_SET_NOW(_now);
        _hookWrapper->endOfSim(_now);
    }

    if (_intervalStats)
        _intervalStats->finish(_now);
    return gather();
}

SimResult
Simulator::gather() const
{
    SimResult r;
    r.core = _core->stats();
    r.memory = _hierarchy->stats();
    r.prefetch = _prefetcher->stats();
    r.tlbMisses = _hierarchy->dtlb().misses();

    r.ipc = r.core.ipc();
    r.l1dMissRate = r.core.l1dMissRate();
    r.avgLoadLatency = r.core.loadLatency.mean();
    r.prefetchAccuracy = r.prefetch.accuracy();

    uint64_t cycles = r.core.cycles;
    r.l1L2BusUtil = ratio(_hierarchy->l1L2Bus().busyCycles(), cycles);
    r.l2MemBusUtil = ratio(_hierarchy->l2MemBus().busyCycles(), cycles);
    r.pctLoads = percent(r.core.loads, r.core.instructions);
    r.pctStores = percent(r.core.stores, r.core.instructions);
    return r;
}

} // namespace psb
