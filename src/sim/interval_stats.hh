/**
 * @file
 * Periodic interval-stats time-series over the StatsRegistry.
 *
 * Every N measured cycles the writer takes a registry snapshot and
 * emits one JSONL record holding the *delta* of every scalar stat
 * since the previous interval plus the point-in-time value of every
 * real (derived) stat:
 *
 *   {"interval":0,"start":0,"end":5000,
 *    "delta":{"core.cycles":5000,...},
 *    "values":{"core.ipc":0.29,...}}
 *
 * The baseline for interval 0 is all-zeros, taken at start() right
 * after the warm-up stats reset, and finish() emits the final partial
 * interval, so for every scalar stat the per-interval deltas
 * telescope exactly to the final --stats-json counter. Deltas are
 * signed: level-like scalars (buffer occupancy, live MSHR count,
 * priority counters) legitimately fall between snapshots.
 *
 * Determinism contract: keys sorted (std::map snapshots), reals in
 * %.17g via formatStatReal, no wall-clock anywhere — repeated runs
 * produce byte-identical files.
 */

#ifndef PSB_SIM_INTERVAL_STATS_HH
#define PSB_SIM_INTERVAL_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "util/stats.hh"
#include "util/strong_types.hh"

namespace psb
{

/** See file comment. */
class IntervalStatsWriter
{
  public:
    /**
     * @param registry Registry to snapshot (must outlive the writer).
     * @param period Interval length in measured cycles (> 0).
     * @param out Sink for the JSONL records (not owned).
     */
    IntervalStatsWriter(const StatsRegistry &registry, uint64_t period,
                        std::ostream &out);

    /**
     * Anchor the series at measurement start: record @p now as the
     * origin and treat the (just reset) registry as all-zeros so
     * interval deltas sum to the final counters.
     */
    void start(Cycle now);

    /** Call once per measured cycle; emits a record every period. */
    void
    tick(Cycle now)
    {
        if ((now - _intervalStart).raw() >= _period)
            emitInterval(now);
    }

    /** Emit the final (possibly partial) interval and flush. */
    void finish(Cycle now);

    /** True between start() and finish(). */
    bool started() const { return _started; }

    /**
     * The cycle the next record will be emitted at. Fast-forward must
     * never jump past this boundary: the record's "end" field carries
     * the cycle number tick() first crossed the period at.
     */
    Cycle nextBoundary() const { return _intervalStart + CycleDelta(_period); }

    /** Number of records emitted so far. */
    uint64_t intervalsEmitted() const { return _index; }

  private:
    void emitInterval(Cycle end);

    const StatsRegistry &_registry;
    uint64_t _period;
    std::ostream *_out;
    Cycle _intervalStart{};
    uint64_t _index = 0;
    bool _started = false;
    /** Scalar values at the previous interval boundary. */
    std::map<std::string, uint64_t> _prevScalars;
};

} // namespace psb

#endif // PSB_SIM_INTERVAL_STATS_HH
