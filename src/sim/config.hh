/**
 * @file
 * Top-level simulation configuration: core + memory + prefetcher
 * selection. The defaults reproduce the paper's baseline machine
 * (§5.1) with no prefetching; helpers build the six prefetching
 * configurations evaluated in §6 (PCStride, and PSB with
 * {2Miss, ConfAlloc} x {RR, Priority}).
 */

#ifndef PSB_SIM_CONFIG_HH
#define PSB_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/psb.hh"
#include "cpu/ooo_core.hh"
#include "memory/hierarchy.hh"
#include "predictors/sfm_predictor.hh"

namespace psb
{

/** Which prefetcher sits beside the L1D. */
enum class PrefetcherKind
{
    None,         ///< baseline, no prefetching
    PcStride,     ///< Farkas et al. PC-stride stream buffers
    Psb,          ///< predictor-directed stream buffers (SFM)
    Sequential,   ///< Jouppi sequential stream buffers
    NextLine,     ///< Smith next-line prefetching
    MarkovDemand, ///< Joseph & Grunwald demand Markov prefetcher
    MinDelta,     ///< Palacharla & Kessler minimum-delta buffers
};

const char *prefetcherKindName(PrefetcherKind kind);

/** Everything needed to build one simulation. */
struct SimConfig
{
    CoreConfig core;
    MemoryConfig memory;

    PrefetcherKind prefetcher = PrefetcherKind::None;
    PsbConfig psb;              ///< policies for Psb/PcStride kinds
    SfmConfig sfm;              ///< predictor for the Psb kind
    StrideTableConfig stride;   ///< table for the PcStride kind
    /**
     * For the Psb kind: 0 directs the buffers with the SFM predictor
     * (the paper's choice); k > 0 uses the order-k ContextPredictor
     * instead (paper §2.2's higher-order comparison).
     */
    unsigned psbContextOrder = 0;

    uint64_t warmupInstructions = 200'000;
    uint64_t maxInstructions = 2'000'000;

    /**
     * Keep derived block sizes consistent: the stream buffers and
     * prediction tables operate at the L1D line granularity.
     */
    void harmonize();

    /** A short label like "ConfAlloc-Priority" or "PCStride". */
    std::string label() const;
};

/** The paper's five prefetching configurations plus the baseline. */
enum class PaperConfig
{
    Base,
    PcStride,
    TwoMissRR,
    TwoMissPriority,
    ConfAllocRR,
    ConfAllocPriority,
};

/** All six, in the paper's figure order. */
constexpr PaperConfig paperConfigs[] = {
    PaperConfig::Base,
    PaperConfig::PcStride,
    PaperConfig::TwoMissRR,
    PaperConfig::TwoMissPriority,
    PaperConfig::ConfAllocRR,
    PaperConfig::ConfAllocPriority,
};

const char *paperConfigName(PaperConfig cfg);

/** Build a SimConfig for one of the paper's evaluated machines. */
SimConfig makePaperConfig(PaperConfig cfg);

} // namespace psb

#endif // PSB_SIM_CONFIG_HH
