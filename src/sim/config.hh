/**
 * @file
 * Top-level simulation configuration: core + memory + prefetcher
 * selection. The defaults reproduce the paper's baseline machine
 * (§5.1) with no prefetching; helpers build the six prefetching
 * configurations evaluated in §6 (PCStride, and PSB with
 * {2Miss, ConfAlloc} x {RR, Priority}).
 */

#ifndef PSB_SIM_CONFIG_HH
#define PSB_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/psb.hh"
#include "cpu/ooo_core.hh"
#include "memory/hierarchy.hh"
#include "predictors/sfm_predictor.hh"

namespace psb
{

/** Which prefetcher sits beside the L1D. */
enum class PrefetcherKind
{
    None,         ///< baseline, no prefetching
    PcStride,     ///< Farkas et al. PC-stride stream buffers
    Psb,          ///< predictor-directed stream buffers (SFM)
    Sequential,   ///< Jouppi sequential stream buffers
    NextLine,     ///< Smith next-line prefetching
    MarkovDemand, ///< Joseph & Grunwald demand Markov prefetcher
    MinDelta,     ///< Palacharla & Kessler minimum-delta buffers
};

const char *prefetcherKindName(PrefetcherKind kind);

/** Everything needed to build one simulation. */
struct SimConfig
{
    CoreConfig core;
    MemoryConfig memory;

    PrefetcherKind prefetcher = PrefetcherKind::None;
    PsbConfig psb;              ///< policies for Psb/PcStride kinds
    SfmConfig sfm;              ///< predictor for the Psb kind
    StrideTableConfig stride;   ///< table for the PcStride kind
    /**
     * For the Psb kind: 0 directs the buffers with the SFM predictor
     * (the paper's choice); k > 0 uses the order-k ContextPredictor
     * instead (paper §2.2's higher-order comparison).
     */
    unsigned psbContextOrder = 0;

    uint64_t warmupInstructions = 200'000;
    uint64_t maxInstructions = 2'000'000;

    /**
     * Event-driven fast-forward: skip cycles in which provably
     * nothing can happen (no commit, issue, fetch, or prefetcher
     * activity), replaying their only side effects (cycle and
     * idle-arbitration counters) in O(1). Results are byte-identical
     * with the flag on or off (tested in tests/test_properties.cc);
     * the off switch exists for A/B timing and for that test.
     */
    bool fastForward = true;

    /**
     * Keep derived block sizes consistent: the stream buffers and
     * prediction tables operate at the L1D line granularity.
     */
    void harmonize();

    /** A short label like "ConfAlloc-Priority" or "PCStride". */
    std::string label() const;
};

/**
 * Every key accepted by applyConfigKey(), sorted, for error messages
 * and for spec validation (the sweep engine's "base"/"axes" sections
 * use exactly these names, which mirror the psb-sim flags).
 */
const std::vector<std::string> &simConfigKeys();

/**
 * Apply one "key = value" pair to @p cfg, strictly: an unknown key, a
 * malformed value, or an out-of-domain enum name is an error, never
 * silently ignored (a typo'd key in a sweep spec would otherwise run
 * the wrong machine and report it under the right label).
 *
 * Keys mirror the psb-sim flags: prefetcher, alloc, sched, insts,
 * warmup, l1d-kb, l1d-assoc, buffers, entries, markov-entries,
 * delta-bits, order, nodis, tlb-cache. Values are flat tokens
 * ("psb", "32", "true").
 *
 * @param error Set to a message naming the key (and the accepted
 *        grammar where helpful) when returning false.
 * @retval true when @p cfg was updated.
 */
bool applyConfigKey(SimConfig &cfg, const std::string &key,
                    const std::string &value, std::string &error);

/** The paper's five prefetching configurations plus the baseline. */
enum class PaperConfig
{
    Base,
    PcStride,
    TwoMissRR,
    TwoMissPriority,
    ConfAllocRR,
    ConfAllocPriority,
};

/** All six, in the paper's figure order. */
constexpr PaperConfig paperConfigs[] = {
    PaperConfig::Base,
    PaperConfig::PcStride,
    PaperConfig::TwoMissRR,
    PaperConfig::TwoMissPriority,
    PaperConfig::ConfAllocRR,
    PaperConfig::ConfAllocPriority,
};

const char *paperConfigName(PaperConfig cfg);

/** Build a SimConfig for one of the paper's evaluated machines. */
SimConfig makePaperConfig(PaperConfig cfg);

} // namespace psb

#endif // PSB_SIM_CONFIG_HH
