#include "sim/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <exception>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "util/logging.hh"
#include "util/thread_annotations.hh"
#include "util/trace.hh"

namespace psb
{

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:       return "ok";
      case JobStatus::Failed:   return "failed";
      case JobStatus::TimedOut: return "timed_out";
    }
    return "unknown";
}

namespace
{

/*
 * The engine's only wall-clock access point. Wall time is control
 * plane — timeout enforcement and progress display — and must never
 * reach a job result or the merged document (DESIGN.md §10), which is
 * why the R3 determinism suppression is justified here.
 */
// psb-analyze: allow(R3)
using WallClock = std::chrono::steady_clock;
using WallTime = WallClock::time_point;

WallTime
nowWall()
{
    return WallClock::now();
}

/** State shared by the workers and the supervising caller thread. */
struct Pool
{
    Mutex mu;
    CondVar cv;
    /** Completed slot indices, FIFO, drained by the caller thread. */
    std::deque<size_t> done PSB_GUARDED_BY(mu);
    std::atomic<size_t> next{0};
};

/**
 * Per-job state. A slot is touched by exactly one worker at a time;
 * the `running`/`deadline`/`started` control fields are additionally
 * guarded by the pool mutex because the supervising thread reads them
 * for timeout enforcement.
 */
struct JobSlot
{
    /// Set before any worker starts, const afterwards — the thread
    /// launch is the publication barrier, so no lock to name.
    Pool *pool = nullptr; // psb-analyze: allow(R8)
    /*
     * `job` and `result` follow the slot-ownership protocol instead
     * of a lock: the cursor hands each slot to exactly one worker,
     * and the caller reads `result` only after join(). R8 is
     * suppressed because no lock exists to name.
     */
    const SweepJob *job = nullptr; // psb-analyze: allow(R8)
    CancelToken cancel;
    JobResult result; // psb-analyze: allow(R8)
    bool running PSB_GUARDED_BY(pool->mu) = false;
    bool deadlineSet PSB_GUARDED_BY(pool->mu) = false;
    WallTime deadline PSB_GUARDED_BY(pool->mu) = {};
    WallTime started PSB_GUARDED_BY(pool->mu) = {};
};

void
runOneJob(JobSlot &slot, const SweepOptions &opts)
{
    JobResult &res = slot.result;
    res.key = slot.job->key;
    unsigned attempt = 0;
    while (true) {
        JobContext ctx{&slot.cancel, attempt};
        JobOutcome out;
        ++res.attempts;
        try {
            out = slot.job->run(ctx);
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
        } catch (...) {
            out.ok = false;
            out.error = "unknown exception";
        }
        // Completed work is never discarded: a success that raced the
        // deadline still counts (and keeps results timing-independent
        // whenever every job completes).
        if (out.ok) {
            res.status = JobStatus::Ok;
            res.payload = std::move(out.payload);
            res.error.clear();
            return;
        }
        if (slot.cancel.cancelled()) {
            res.status = JobStatus::TimedOut;
            res.error = "timed out after " +
                        std::to_string(opts.timeout.count()) + "ms";
            return;
        }
        res.status = JobStatus::Failed;
        res.error = out.error.empty() ? "job failed" : out.error;
        if (attempt >= opts.maxRetries)
            return;
        ++attempt;
    }
}

void
workerLoop(Pool &pool, std::vector<std::unique_ptr<JobSlot>> &slots,
           const SweepOptions &opts)
{
    while (true) {
        size_t idx = pool.next.fetch_add(1, std::memory_order_relaxed);
        if (idx >= slots.size())
            return;
        JobSlot &slot = *slots[idx];
        {
            MutexLock lock(pool.mu);
            slot.running = true;
            slot.started = nowWall();
            if (opts.timeout.count() > 0) {
                slot.deadline = slot.started + opts.timeout;
                slot.deadlineSet = true;
            }
        }
        runOneJob(slot, opts);
        {
            MutexLock lock(pool.mu);
            slot.running = false;
            pool.done.push_back(idx);
        }
        pool.cv.notifyOne();
    }
}

/** JSON string escaping for job keys and error messages. */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/**
 * Re-indent an embedded flat stats JSON document (as produced by
 * StatsRegistry::toJson()) so it nests under the per-job object:
 * every line after the first gets @p indent leading spaces.
 */
std::string
indentPayload(const std::string &payload, unsigned indent)
{
    std::string body = payload;
    while (!body.empty() && body.back() == '\n')
        body.pop_back();
    if (body.empty())
        return "{}";
    std::string pad(indent, ' ');
    std::string out;
    out.reserve(body.size() + 256);
    for (size_t i = 0; i < body.size(); ++i) {
        out.push_back(body[i]);
        if (body[i] == '\n')
            out += pad;
    }
    return out;
}

} // namespace

std::vector<JobResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    {
        std::set<std::string> keys;
        for (const SweepJob &job : jobs) {
            if (!keys.insert(job.key).second)
                panic("sweep: duplicate job key '%s'", job.key.c_str());
            psb_assert(bool(job.run), "sweep job without a run fn");
        }
    }
    if (_opts.jobs > 1 && traceAnyEnabled()) {
        fatal("sweep: event tracing is process-global and cannot run "
              "under concurrent jobs; disable tracing or use 1 job");
    }

    Pool pool;
    std::vector<std::unique_ptr<JobSlot>> slots;
    slots.reserve(jobs.size());
    for (const SweepJob &job : jobs) {
        slots.push_back(std::make_unique<JobSlot>());
        slots.back()->pool = &pool;
        slots.back()->job = &job;
    }

    size_t nworkers = std::max<size_t>(
        1, std::min<size_t>(_opts.jobs, slots.size()));
    std::vector<std::thread> workers;
    workers.reserve(nworkers);
    for (size_t i = 0; i < nworkers; ++i) {
        workers.emplace_back(workerLoop, std::ref(pool),
                             std::ref(slots), std::cref(_opts));
    }

    size_t completed = 0;
    {
        MutexLock lock(pool.mu);
        while (completed < slots.size()) {
            if (pool.done.empty()) {
                if (_opts.timeout.count() > 0) {
                    pool.cv.waitFor(pool.mu,
                                    std::chrono::milliseconds(10));
                    WallTime now = nowWall();
                    for (auto &slot : slots) {
                        if (slot->running && slot->deadlineSet &&
                            now >= slot->deadline &&
                            !slot->cancel.cancelled()) {
                            slot->cancel.cancel();
                        }
                    }
                } else {
                    pool.cv.wait(pool.mu);
                }
                continue;
            }
            size_t idx = pool.done.front();
            pool.done.pop_front();
            ++completed;
            if (_opts.progress != nullptr) {
                const JobSlot &slot = *slots[idx];
                double secs =
                    std::chrono::duration<double>(nowWall() -
                                                  slot.started)
                        .count();
                char timing[32];
                std::snprintf(timing, sizeof(timing), "%.2fs", secs);
                *_opts.progress
                    << "[" << completed << "/" << slots.size() << "] "
                    << slot.result.key << ": "
                    << jobStatusName(slot.result.status);
                if (slot.result.attempts > 1) {
                    *_opts.progress << " (attempts "
                                    << slot.result.attempts << ")";
                }
                *_opts.progress << " (" << timing << ")" << std::endl;
            }
        }
    }
    for (std::thread &w : workers)
        w.join();

    std::vector<JobResult> results;
    results.reserve(slots.size());
    for (auto &slot : slots)
        results.push_back(std::move(slot->result));
    std::sort(results.begin(), results.end(),
              [](const JobResult &a, const JobResult &b) {
                  return a.key < b.key;
              });
    return results;
}

std::string
SweepEngine::mergeStatsJson(const std::vector<JobResult> &results)
{
    std::ostringstream out;
    out << "{\n  \"jobs\": {";
    bool first = true;
    for (const JobResult &r : results) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    \"" << escapeJson(r.key) << "\": {\n"
            << "      \"status\": \"" << jobStatusName(r.status)
            << "\",\n"
            << "      \"attempts\": " << r.attempts << ",\n";
        if (r.status == JobStatus::Ok) {
            out << "      \"stats\": " << indentPayload(r.payload, 6);
        } else {
            out << "      \"error\": \"" << escapeJson(r.error)
                << "\"";
        }
        out << "\n    }";
    }
    out << "\n  }\n}\n";
    return out.str();
}

} // namespace psb
